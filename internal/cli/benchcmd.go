package cli

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"mpcgraph/internal/bench"
	"mpcgraph/internal/registry"
)

// runBench regenerates the experiment tables through the same harness as
// the mpcbench command; the flag set mirrors mpcbench so trajectories
// migrate by replacing "mpcbench" with "mpcgraph bench".
func runBench(args []string, env Env) error {
	fs := flag.NewFlagSet("mpcgraph bench", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	var (
		experiment = fs.String("experiment", "", "experiment id (E1..E18); empty runs all")
		seed       = fs.Uint64("seed", 2018, "root random seed")
		trials     = fs.Int("trials", 3, "trials per randomized cell")
		quick      = fs.Bool("quick", false, "reduced instance sizes")
		workers    = fs.Int("workers", 0, "parallel workers (0 = all cores, 1 = sequential); tables are identical for every value")
		jsonOut    = fs.Bool("json", false, "emit one JSON object per table instead of aligned text")
		check      = fs.Bool("check", false, "fail unless every registered (Problem, Model) pair has a valid benchmark entry")
		remote     = fs.String("remote", "", "base URL of a running mpcgraphd; registry-sweep solves (E18) run against the daemon, bit-identical to in-process")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	cfg := bench.Config{Seed: *seed, Trials: *trials, Quick: *quick, Workers: *workers}
	if *remote != "" {
		cfg.Solver = remoteSolver(*remote, 8, 2*time.Minute)
	}
	if *check {
		if err := bench.VerifyRegistryCoverage(bench.Config{Seed: *seed, Trials: 1, Quick: true, Workers: *workers}); err != nil {
			return err
		}
		fmt.Fprintf(env.Stdout, "registry coverage ok: %d algorithms benchmarked\n", len(registry.Pairs()))
		return nil
	}
	if *experiment == "" {
		if *jsonOut {
			return bench.RunAllJSON(cfg, env.Stdout)
		}
		bench.RunAll(cfg, env.Stdout)
		return nil
	}
	for _, id := range strings.Split(*experiment, ",") {
		tab, err := bench.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			return err
		}
		if *jsonOut {
			if err := tab.RenderJSON(env.Stdout); err != nil {
				return err
			}
			continue
		}
		tab.Render(env.Stdout)
	}
	return nil
}
