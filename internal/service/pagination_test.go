package service

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"
)

// Table-driven cursor-pagination coverage for GET /v1/jobs: empty
// pages, cursors past the end, the state filter interacting with the
// cursor, and order stability across inserts. The server is workerless
// so lifecycle states are fully deterministic: submissions stay queued
// until the test cancels them.

type listPage struct {
	Jobs []*JobView `json:"jobs"`
	Next string     `json:"next,omitempty"`
}

// listJobs fetches one page and asserts the HTTP status.
func listJobs(t *testing.T, base string, query url.Values, wantStatus int) *listPage {
	t.Helper()
	resp, data := getBody(t, base+"/v1/jobs?"+query.Encode())
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET /v1/jobs?%s: status %d, want %d: %s", query.Encode(), resp.StatusCode, wantStatus, data)
	}
	if wantStatus != 200 {
		return nil
	}
	var page listPage
	if err := json.Unmarshal(data, &page); err != nil {
		t.Fatalf("bad list page %s: %v", data, err)
	}
	return &page
}

func pageIDs(p *listPage) []string {
	ids := make([]string, len(p.Jobs))
	for i, j := range p.Jobs {
		ids[i] = j.ID
	}
	return ids
}

// queueJob submits one uniquely-keyed job to a workerless server and
// returns its id (state: queued, forever).
func queueJob(t *testing.T, base string, seed uint64) string {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/jobs", &JobRequest{
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 100, Seed: seed},
		Options:  OptionsRequest{Seed: seed},
	})
	if resp.StatusCode != 201 {
		t.Fatalf("submit: %s: %s", resp.Status, data)
	}
	return decodeView(t, data).ID
}

func TestListCursorPagination(t *testing.T) {
	q := func(kv ...string) url.Values {
		v := url.Values{}
		for i := 0; i < len(kv); i += 2 {
			v.Set(kv[i], kv[i+1])
		}
		return v
	}

	t.Run("empty table", func(t *testing.T) {
		s := idleServer(t, Config{})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		for _, query := range []url.Values{q(), q("limit", "5"), q("state", "done")} {
			page := listJobs(t, ts.URL, query, 200)
			if len(page.Jobs) != 0 || page.Next != "" {
				t.Errorf("empty table, query %s: %d jobs, next %q", query.Encode(), len(page.Jobs), page.Next)
			}
		}
	})

	// One populated server for the cursor cases: six queued jobs, the
	// 2nd and 4th canceled.
	s := idleServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain(time.Second)
	})
	var ids []string
	for seed := uint64(1); seed <= 6; seed++ {
		ids = append(ids, queueJob(t, ts.URL, seed))
	}
	for _, id := range []string{ids[1], ids[3]} {
		if status := cancelJobHTTP(t, ts, id); status != 200 {
			t.Fatalf("DELETE %s: status %d", id, status)
		}
	}

	cases := []struct {
		name     string
		query    url.Values
		status   int
		wantIDs  []string
		wantNext string
	}{
		{"full listing", q(), 200, ids, ""},
		{"first page", q("limit", "2"), 200, ids[:2], ids[1]},
		{"second page", q("limit", "2", "after", ids[1]), 200, ids[2:4], ids[3]},
		{"final page is exactly full", q("limit", "2", "after", ids[3]), 200, ids[4:6], ""},
		{"cursor at last id", q("after", ids[5]), 200, nil, ""},
		{"cursor past end with limit", q("after", ids[5], "limit", "1"), 200, nil, ""},
		{"unknown cursor", q("after", "j99999999"), 400, nil, ""},
		{"state filter", q("state", "canceled"), 200, []string{ids[1], ids[3]}, ""},
		{"state filter + cursor", q("state", "canceled", "after", ids[1]), 200, []string{ids[3]}, ""},
		{"state filter + cursor + limit", q("state", "queued", "after", ids[0], "limit", "2"), 200,
			[]string{ids[2], ids[4]}, ids[4]},
		{"cursor may be a filtered-out job", q("state", "queued", "after", ids[3]), 200,
			[]string{ids[4], ids[5]}, ""},
		{"bad limit", q("limit", "zero"), 400, nil, ""},
		{"zero limit", q("limit", "0"), 400, nil, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			page := listJobs(t, ts.URL, tc.query, tc.status)
			if tc.status != 200 {
				return
			}
			got := pageIDs(page)
			if fmt.Sprint(got) != fmt.Sprint(tc.wantIDs) {
				t.Errorf("page ids %v, want %v", got, tc.wantIDs)
			}
			if page.Next != tc.wantNext {
				t.Errorf("next cursor %q, want %q", page.Next, tc.wantNext)
			}
		})
	}

	t.Run("stable order across inserts", func(t *testing.T) {
		// Walk one page, insert new jobs, resume from the cursor: the
		// resumed page starts exactly after the cursor in the original
		// order, and the inserts appear at the end, never earlier.
		first := listJobs(t, ts.URL, q("limit", "3"), 200)
		if len(first.Jobs) != 3 || first.Next == "" {
			t.Fatalf("first page: %d jobs, next %q", len(first.Jobs), first.Next)
		}
		newID := queueJob(t, ts.URL, 100)
		rest := listJobs(t, ts.URL, q("after", first.Next), 200)
		got := pageIDs(rest)
		want := append(append([]string{}, ids[3:]...), newID)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("resumed page %v, want %v (insert must append, not reorder)", got, want)
		}
		// The pre-insert prefix is untouched.
		again := listJobs(t, ts.URL, q("limit", "3"), 200)
		if fmt.Sprint(pageIDs(again)) != fmt.Sprint(pageIDs(first)) {
			t.Errorf("first page changed across insert: %v vs %v", pageIDs(again), pageIDs(first))
		}
	})
}
