package bench

import (
	"math"

	"mpcgraph/internal/baseline"
	"mpcgraph/internal/graph"
	"mpcgraph/internal/mis"
	"mpcgraph/internal/rng"
)

// misSizes returns the n sweep for the MIS experiments.
func misSizes(cfg Config) []int {
	if cfg.Quick {
		return []int{1 << 10, 1 << 11}
	}
	return []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
}

// sqrtDegGNP samples G(n, p) with expected degree ~sqrt(n), the regime
// where the prefix phases are exercised hardest.
func sqrtDegGNP(n int, src *rng.Source) *graph.Graph {
	return graph.GNP(n, 1/math.Sqrt(float64(n)), src)
}

func init() {
	register(Experiment{ID: "E1", Title: "MIS round complexity vs n (Theorem 1.1)", Run: runE1})
	register(Experiment{ID: "E2", Title: "MIS per-machine memory (Theorem 1.1)", Run: runE2})
	register(Experiment{ID: "E3", Title: "Residual degree after rank prefix (Lemma 3.1)", Run: runE3})
	register(Experiment{ID: "E11", Title: "CONGESTED-CLIQUE MIS rounds and Lenzen loads", Run: runE11})
	register(Experiment{ID: "E14", Title: "Greedy dependency depth vs prefix compression", Run: runE14})
}

func runE1(cfg Config) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "MIS round complexity vs n",
		Claim:   "Theorem 1.1: MIS in O(log log Δ) MPC rounds with Õ(n) memory; Luby's baseline needs Θ(log n).",
		Columns: []string{"n", "Δ", "loglogΔ", "phases", "rounds(ours)", "iters(Luby)", "rounds/loglogΔ"},
		Notes:   "rounds(ours) counts every charged MPC round incl. the sparsified stage; the ratio column should stay near-constant while Luby grows with log n.",
	}
	for _, n := range misSizes(cfg) {
		var phases, rounds, luby, maxDeg []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := rng.Hash(cfg.Seed, 1, uint64(n), uint64(trial))
			g := sqrtDegGNP(n, rng.New(seed))
			res, err := mis.RandGreedyMPC(g, mis.Options{Seed: seed, Workers: cfg.Workers})
			if err != nil {
				continue
			}
			lr := baseline.LubyMIS(g, rng.New(seed+1))
			phases = append(phases, float64(res.Phases))
			rounds = append(rounds, float64(res.Rounds))
			luby = append(luby, float64(lr.Iterations))
			maxDeg = append(maxDeg, float64(g.MaxDegree()))
		}
		ll := loglog(int(mean(maxDeg)))
		t.Rows = append(t.Rows, []string{
			fi(n), f1(mean(maxDeg)), f2(ll), f1(mean(phases)),
			f1(mean(rounds)), f1(mean(luby)), f1(mean(rounds) / ll),
		})
	}
	return t
}

func runE2(cfg Config) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "MIS per-machine memory",
		Claim:   "Theorem 1.1: every machine handles Õ(n) bits, i.e. O(n) words; phase gathers carry O(n) edges w.h.p. (Eq. (1)).",
		Columns: []string{"n", "m(edges)", "maxLoad(words)", "maxLoad/n", "maxPhaseGather/n", "violations"},
		Notes:   "maxLoad is the largest per-round per-machine in/out volume across the whole run, audited by the simulator.",
	}
	for _, n := range misSizes(cfg) {
		seed := rng.Hash(cfg.Seed, 2, uint64(n))
		g := sqrtDegGNP(n, rng.New(seed))
		res, err := mis.RandGreedyMPC(g, mis.Options{Seed: seed, Workers: cfg.Workers})
		if err != nil {
			continue
		}
		var maxGather int64
		for _, ph := range res.PhaseInfos {
			if ph.GatheredEdgeWords > maxGather {
				maxGather = ph.GatheredEdgeWords
			}
		}
		t.Rows = append(t.Rows, []string{
			fi(n), fi(g.NumEdges()), fi(int(res.MaxMachineWords)),
			f2(float64(res.MaxMachineWords) / float64(n)),
			f2(float64(maxGather) / float64(n)),
			fi(res.Violations),
		})
	}
	return t
}

func runE3(cfg Config) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Residual degree after rank prefix",
		Claim:   "Lemma 3.1: after simulating greedy up to rank r, the residual max degree is at most 20·n·ln(n)/r w.h.p.",
		Columns: []string{"n", "r", "residualΔ(max over trials)", "bound 20·n·ln n/r", "slack"},
	}
	n := 1 << 13
	if cfg.Quick {
		n = 1 << 11
	}
	for _, div := range []int{128, 32, 8, 2} {
		r := n / div
		var worst float64
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := rng.Hash(cfg.Seed, 3, uint64(div), uint64(trial))
			src := rng.New(seed)
			g := graph.GNP(n, 64/float64(n), src)
			perm := src.Perm(n)
			_, maxDeg := mis.ResidualAfterRank(g, perm, r)
			if float64(maxDeg) > worst {
				worst = float64(maxDeg)
			}
		}
		bound := 20 * float64(n) * math.Log(float64(n)) / float64(r)
		t.Rows = append(t.Rows, []string{
			fi(n), fi(r), f1(worst), f1(bound), f2(bound / math.Max(worst, 1)),
		})
	}
	return t
}

func runE11(cfg Config) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "CONGESTED-CLIQUE MIS",
		Claim:   "Theorem 1.1: O(log log Δ) CONGESTED-CLIQUE rounds; every Lenzen routing stays within n words per player (Section 2).",
		Columns: []string{"n", "Δ", "rounds", "rounds/loglogΔ", "maxPlayerLoad/n", "violations"},
	}
	sizes := misSizes(cfg)
	if !cfg.Quick && len(sizes) > 3 {
		sizes = sizes[:3] // the clique simulation is O(n) players; cap the sweep
	}
	for _, n := range sizes {
		var rounds, load, deg []float64
		viol := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := rng.Hash(cfg.Seed, 11, uint64(n), uint64(trial))
			g := sqrtDegGNP(n, rng.New(seed))
			res, err := mis.RandGreedyCongestedClique(g, mis.Options{Seed: seed, Workers: cfg.Workers})
			if err != nil {
				continue
			}
			rounds = append(rounds, float64(res.Rounds))
			load = append(load, float64(res.MaxMachineWords)/float64(n))
			deg = append(deg, float64(g.MaxDegree()))
			viol += res.Violations
		}
		ll := loglog(int(mean(deg)))
		t.Rows = append(t.Rows, []string{
			fi(n), f1(mean(deg)), f1(mean(rounds)), f1(mean(rounds) / ll), f2(maxf(load)), fi(viol),
		})
	}
	return t
}

func runE14(cfg Config) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "Greedy dependency depth vs prefix compression",
		Claim:   "[FN18]: randomized greedy has Θ(log n) parallel dependency depth; the paper compresses it into O(log log Δ) phases.",
		Columns: []string{"n", "log2 n", "greedyDepth", "ourPhases", "our+sparsified", "depth/phases"},
	}
	for _, n := range misSizes(cfg) {
		var depth, phases, total []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := rng.Hash(cfg.Seed, 14, uint64(n), uint64(trial))
			src := rng.New(seed)
			g := sqrtDegGNP(n, src)
			perm := src.Perm(n)
			depth = append(depth, float64(baseline.GreedyDependencyDepth(g, perm)))
			res, err := mis.RandGreedyMPC(g, mis.Options{Seed: seed, Workers: cfg.Workers})
			if err != nil {
				continue
			}
			phases = append(phases, float64(res.Phases))
			total = append(total, float64(res.Phases+res.SparsifiedIterations))
		}
		t.Rows = append(t.Rows, []string{
			fi(n), f1(math.Log2(float64(n))), f1(mean(depth)), f1(mean(phases)),
			f1(mean(total)), f2(mean(depth) / math.Max(mean(phases), 1)),
		})
	}
	return t
}
