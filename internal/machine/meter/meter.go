// Package meter is the model-agnostic charging layer of the machine
// substrate: one algorithm trajectory charges its communication against
// a Meter, and the Meter's backend — an MPC cluster or a
// CONGESTED-CLIQUE — translates each charge into that model's rounds,
// loads and budgets on the shared internal/machine core.
//
// The algorithm state never reads anything back from the meter, so one
// algorithm run produces bit-identical outputs under every backend —
// only the audited costs differ, which is exactly the paper's claim
// that the same technique runs in the Õ(n)-memory MPC model and (via
// Lenzen routing) in the CONGESTED-CLIQUE. The matching family charges
// through this package; adding a further model (e.g. the
// strongly-sublinear regime of Behnezhad–Hajiaghayi–Harris 2019) means
// adding one backend here, not a new simulator.
package meter

import (
	"context"
	"math"

	"mpcgraph/internal/congest"
	"mpcgraph/internal/model"
	"mpcgraph/internal/mpc"
)

// Costs is a snapshot of a meter's audited totals.
type Costs struct {
	// Rounds is the number of model rounds charged so far.
	Rounds int
	// MaxMachineWords is the largest per-round load on any machine or
	// player observed so far.
	MaxMachineWords int64
	// TotalWords is the cumulative communication volume.
	TotalWords int64
	// Violations counts capacity/budget violations (non-strict mode).
	Violations int
}

// Meter abstracts the simulator backend an algorithm charges its
// communication against. The primitives are the communication shapes of
// the paper's Section 4 simulation; each backend charges them in its
// own currency.
type Meter interface {
	// Shuffle charges the phase-start repartitioning: machine class j of
	// the m classes receives its induced subgraph of inducedWords[j]
	// words (the Lemma 4.7 audit).
	Shuffle(m int, inducedWords []int64) error
	// ResultSync charges the end-of-phase freeze synchronization: a
	// gather of frozenWords words followed by a broadcast of the same.
	ResultSync(m int, frozenWords int64) error
	// DirectRound charges one direct Central-Rand iteration: one word
	// each way per active edge.
	DirectRound(activeEdges int64) error
	// Gather charges one coordinator gather of words words (the
	// filtering completion's per-round sample shipment).
	Gather(words int64) error
	// SetActive reports the current undecided-vertex count for tracing.
	SetActive(vertices int)
	// Costs returns the audited totals so far.
	Costs() Costs
	// Close releases the backend's pooled routing scratch for reuse by
	// the next meter. Call it after the final Costs snapshot; the meter
	// must not be used afterwards. Idempotent.
	Close()
}

// Config carries everything needed to stand up either backend.
type Config struct {
	// N is the vertex count of the input graph.
	N int
	// Machines is the MPC machine count (also the phase-m cap); 0 means
	// SimMachines(N).
	Machines int
	// MemoryFactor sets per-machine memory to MemoryFactor·N words.
	MemoryFactor float64
	// Strict makes capacity/budget violations fail the charge.
	Strict bool
	// Workers bounds goroutine fan-out in the backend.
	Workers int
	// Ctx, when non-nil, cancels charges between rounds.
	Ctx context.Context
	// Trace, when non-nil, observes every metered round.
	Trace model.TraceFunc
}

// ResolveMemoryFactor applies the repository-wide per-machine memory
// default of 16·n words (the constant behind the paper's Õ(n)).
func ResolveMemoryFactor(f float64) float64 {
	if f == 0 {
		return 16
	}
	return f
}

// SimMachines returns the MPC machine count used by the matching
// simulation and as the per-phase partition cap: ⌈√n⌉+1. The cap is
// shared by every backend so the algorithm trajectory is identical
// across models.
func SimMachines(n int) int {
	return int(math.Ceil(math.Sqrt(float64(n)))) + 1
}

// FoldCosts builds a Costs snapshot from the shared metric fields of
// either backend: the reported per-round maximum is the larger of the
// in/out maxima.
func FoldCosts(rounds int, maxIn, maxOut, total int64, violations int) Costs {
	return Costs{
		Rounds:          rounds,
		MaxMachineWords: max(maxIn, maxOut),
		TotalWords:      total,
		Violations:      violations,
	}
}

// New builds the backend for the selected model.
func New(m model.Model, cfg Config) (Meter, error) {
	if cfg.Machines == 0 {
		cfg.Machines = SimMachines(cfg.N)
	}
	if m == model.CongestedClique {
		return newCliqueMeter(cfg)
	}
	return newMPCMeter(cfg)
}

// mpcMeter charges an MPC cluster with ⌈√n⌉+1 machines of
// MemoryFactor·n words each — the deployment of Section 4.3.
type mpcMeter struct {
	cluster *mpc.Cluster
}

func newMPCMeter(cfg Config) (*mpcMeter, error) {
	cluster, err := mpc.NewCluster(mpc.Config{
		Machines:      cfg.Machines,
		CapacityWords: int64(cfg.MemoryFactor * float64(cfg.N)),
		Strict:        cfg.Strict,
		Workers:       cfg.Workers,
		Ctx:           cfg.Ctx,
		Trace:         cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &mpcMeter{cluster: cluster}, nil
}

// Shuffle meters the phase-start repartitioning: machine i's inbox is
// its induced subgraph, delivered from the edges' previous homes. The
// senders are modeled as the m previous holders contributing equal
// shares; the audited quantity is the receiving machine's load.
func (mm *mpcMeter) Shuffle(m int, inducedWords []int64) error {
	out := mm.cluster.Outboxes()
	for j := 0; j < m; j++ {
		w := inducedWords[j]
		if w == 0 {
			continue
		}
		share := w / int64(m)
		rem := w % int64(m)
		for i := 0; i < m; i++ {
			words := share
			if int64(i) < rem {
				words++
			}
			if words > 0 {
				out[i] = append(out[i], mpc.Message{To: j, Words: words})
			}
		}
	}
	_, err := mm.cluster.Exchange(out)
	return err
}

// ResultSync meters the end-of-phase freeze synchronization: a gather
// of the frozen list followed by a broadcast.
func (mm *mpcMeter) ResultSync(m int, frozenWords int64) error {
	parts := make([]mpc.Message, mm.cluster.Machines())
	share := frozenWords / int64(m)
	rem := frozenWords % int64(m)
	for i := 0; i < m; i++ {
		w := share
		if int64(i) < rem {
			w++
		}
		parts[i] = mpc.Message{Words: w}
	}
	if _, err := mm.cluster.GatherTo(0, parts); err != nil {
		return err
	}
	_, err := mm.cluster.BroadcastFrom(0, frozenWords, nil)
	return err
}

// DirectRound meters one direct Central-Rand iteration: every active
// edge carries one word each way between the machines hosting its
// endpoints, as 2·activeEdges words spread evenly across machine pairs.
func (mm *mpcMeter) DirectRound(activeEdges int64) error {
	m := mm.cluster.Machines()
	out := mm.cluster.Outboxes()
	words := 2 * activeEdges
	per := words / int64(m)
	rem := words % int64(m)
	for i := 0; i < m; i++ {
		w := per
		if int64(i) < rem {
			w++
		}
		if w > 0 {
			out[i] = append(out[i], mpc.Message{To: (i + 1) % m, Words: w})
		}
	}
	_, err := mm.cluster.Exchange(out)
	return err
}

func (mm *mpcMeter) Gather(words int64) error {
	m := mm.cluster.Machines()
	parts := make([]mpc.Message, m)
	share, rem := words/int64(m), words%int64(m)
	for i := 0; i < m; i++ {
		w := share
		if int64(i) < rem {
			w++
		}
		parts[i] = mpc.Message{Words: w}
	}
	_, err := mm.cluster.GatherTo(0, parts)
	return err
}

func (mm *mpcMeter) SetActive(vertices int) { mm.cluster.SetActive(vertices) }

func (mm *mpcMeter) Costs() Costs {
	met := mm.cluster.Metrics()
	return FoldCosts(met.Rounds, met.MaxInWords, met.MaxOutWords, met.TotalWords, met.Violations)
}

func (mm *mpcMeter) Close() { mm.cluster.Close() }

// cliqueMeter charges a CONGESTED-CLIQUE of n players with the standard
// one-word pair budget. Bulk deliveries ride Lenzen's routing scheme in
// n-word chunks; broadcasts ride the relay tree at n-1 words per player
// per round — the standard simulation of Õ(n)-memory MPC algorithms in
// the clique (Section 2 of the paper).
type cliqueMeter struct {
	q *congest.Clique
}

func newCliqueMeter(cfg Config) (*cliqueMeter, error) {
	players := cfg.N
	if players < 2 {
		players = 2
	}
	q, err := congest.New(congest.Config{
		Players:         players,
		PairBudgetWords: 1,
		Strict:          cfg.Strict,
		Workers:         cfg.Workers,
		Ctx:             cfg.Ctx,
		Trace:           cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &cliqueMeter{q: q}, nil
}

// lenzenDeliver charges the delivery of total words with per-receiver
// maximum maxIn, chunked into Lenzen invocations of at most n words per
// receiver: the heaviest receiver's load is split evenly across the
// chunks, so each invocation carries its actual share rather than the
// whole per-receiver maximum.
func (cm *cliqueMeter) lenzenDeliver(total, maxIn int64) error {
	n := int64(cm.q.Players())
	if maxIn <= 0 {
		// The synchronization still happens even when nothing moved.
		return cm.q.ChargeRound(1, 0, 0, 0)
	}
	k := (maxIn + n - 1) / n
	inShare := (maxIn + k - 1) / k
	share, rem := total/k, total%k
	for i := int64(0); i < k; i++ {
		t := share
		if i < rem {
			t++
		}
		if err := cm.q.ChargeLenzen(min(t, n), min(inShare, t), t); err != nil {
			return err
		}
	}
	return nil
}

// broadcast charges delivering words words to every player, n-1 words
// per player per relay round.
func (cm *cliqueMeter) broadcast(words int64) error {
	n := int64(cm.q.Players())
	for remaining := words; ; {
		chunk := min(remaining, n-1)
		if chunk < 0 {
			chunk = 0
		}
		if err := cm.q.ChargeRound(1, chunk, chunk, chunk*n); err != nil {
			return err
		}
		remaining -= chunk
		if remaining <= 0 {
			return nil
		}
	}
}

func (cm *cliqueMeter) Shuffle(m int, inducedWords []int64) error {
	var total, maxIn int64
	for _, w := range inducedWords {
		total += w
		if w > maxIn {
			maxIn = w
		}
	}
	return cm.lenzenDeliver(total, maxIn)
}

func (cm *cliqueMeter) ResultSync(m int, frozenWords int64) error {
	if err := cm.lenzenDeliver(frozenWords, frozenWords); err != nil {
		return err
	}
	return cm.broadcast(frozenWords)
}

func (cm *cliqueMeter) DirectRound(activeEdges int64) error {
	n := int64(cm.q.Players())
	words := 2 * activeEdges
	per := words/n + 1
	return cm.q.ChargeRound(1, per, per, words)
}

func (cm *cliqueMeter) Gather(words int64) error {
	return cm.lenzenDeliver(words, words)
}

func (cm *cliqueMeter) SetActive(vertices int) { cm.q.SetActive(vertices) }

func (cm *cliqueMeter) Costs() Costs {
	met := cm.q.Metrics()
	return FoldCosts(met.Rounds, met.MaxPlayerIn, met.MaxPlayerOut, met.TotalWords, met.Violations)
}

func (cm *cliqueMeter) Close() { cm.q.Close() }
