// Package lockedio poses as mpcgraph/internal/service and
// reconstructs the PR-6 review bugs: disk I/O — an fsync, a stat
// probe — performed while the store mutex was held, stalling every
// reader behind the disk.
package lockedio

import (
	"os"
	"sync"
)

type store struct {
	mu    sync.Mutex
	idx   map[string]string
	dirty *os.File
}

// syncUnderLock is PR-6 bug shape 1: the fsync runs with mu held.
func (s *store) syncUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dirty.Sync() // want "lockedio: call reaches I/O"
}

// probe reaches the disk through os.Stat.
func (s *store) probe(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// getUnderLock is PR-6 bug shape 2: the I/O is one call away, inside a
// helper, but still executes within the critical section. The
// interprocedural pass follows the chain.
func (s *store) getUnderLock(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.probe(s.idx[key]) // want "lockedio: call reaches I/O"
}

// syncAfterUnlock is the PR-6 fix shape: snapshot under the lock, then
// block on the disk with the lock released. No finding.
func (s *store) syncAfterUnlock() error {
	s.mu.Lock()
	f := s.dirty
	s.mu.Unlock()
	return f.Sync()
}

type cache struct {
	mu sync.RWMutex
}

// readProbe shows a read lock is no excuse: writers still queue behind
// the disk while RLock is held.
func (c *cache) readProbe(path string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, err := os.Stat(path) // want "lockedio: call reaches I/O"
	return err == nil
}

// startupRemove documents the suppression path: the directive states
// the invariant that makes the held-lock I/O safe.
func (s *store) startupRemove(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockedio startup-only path; no concurrent readers exist yet
	_ = os.Remove(path)
}
