package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mpcgraph"
)

// solveReport computes one real Report to feed the codec and store
// tests — the exact object the daemon would persist.
func solveReport(t *testing.T, problem mpcgraph.Problem, n int, seed uint64) *mpcgraph.Report {
	t.Helper()
	scen := "gnp"
	if problem == mpcgraph.ProblemWeightedMatching {
		scen = "weighted-gnp"
	}
	in, err := mpcgraph.GenerateScenario(scen, n, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mpcgraph.Solve(nil, in, problem, mpcgraph.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCodecRoundTrip: decode(encode(rep)) reproduces every field of
// every problem's Report shape bit-for-bit.
func TestCodecRoundTrip(t *testing.T) {
	for _, problem := range []mpcgraph.Problem{
		mpcgraph.ProblemMIS,
		mpcgraph.ProblemMaximalMatching,
		mpcgraph.ProblemApproxMatching,
		mpcgraph.ProblemVertexCover,
		mpcgraph.ProblemWeightedMatching,
	} {
		t.Run(problem.String(), func(t *testing.T) {
			rep := solveReport(t, problem, 200, 3)
			got, err := decodeReport(encodeReport(rep))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			// Reports are plain data; JSON-compare then pin the non-JSON
			// float bits explicitly.
			want, _ := json.Marshal(rep)
			have, _ := json.Marshal(got)
			if !bytes.Equal(want, have) {
				t.Errorf("round trip diverged:\n want %s\n got  %s", want, have)
			}
			if got.Value != rep.Value || got.FractionalWeight != rep.FractionalWeight {
				t.Errorf("float bits diverged: %v/%v vs %v/%v",
					got.Value, got.FractionalWeight, rep.Value, rep.FractionalWeight)
			}
			if got.Wall != rep.Wall {
				t.Errorf("wall %v, want %v", got.Wall, rep.Wall)
			}
		})
	}
}

// TestCodecRejectsDamage: truncation anywhere, bit flips anywhere, and
// unknown versions all fail decoding — nothing damaged ever parses.
func TestCodecRejectsDamage(t *testing.T) {
	data := encodeReport(solveReport(t, mpcgraph.ProblemMIS, 150, 5))
	for _, cut := range []int{1, len(reportCodecVersion), len(data) / 2, len(data) - 1} {
		if _, err := decodeReport(data[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded", cut)
		}
	}
	for _, flip := range []int{0, len(reportCodecVersion) + 3, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[flip] ^= 0x40
		if _, err := decodeReport(bad); err == nil {
			t.Errorf("bit flip at %d decoded", flip)
		}
	}
	future := append([]byte("mpcgraphd-report-v9\n"), data[len(reportCodecVersion):]...)
	if _, err := decodeReport(future); err == nil {
		t.Errorf("unknown entry version decoded")
	}
}

// TestCodecRejectsOverflowedLength: a crafted entry whose matching
// count sits near 2^62 — chosen so count*4 wraps to a tiny byte size —
// must fail decoding as a quarantineable error. With a multiplied
// bounds check it instead passed the check and panicked in make(),
// crashing the daemon on a checksum-valid but hostile entry.
func TestCodecRejectsOverflowedLength(t *testing.T) {
	rep := solveReport(t, mpcgraph.ProblemMIS, 150, 5)
	data := encodeReport(rep)

	// Locate the matching-length field: magic, then the length-prefixed
	// problem and model strings, then the InMIS bool set (8-byte prefix
	// plus one byte per vertex; len of a nil set is 0, matching encode).
	off := len(reportCodecVersion)
	off += 8 + len(rep.Problem.String())
	off += 8 + len(rep.Model.String())
	off += 8 + len(rep.InMIS)
	binary.LittleEndian.PutUint64(data[off:], 1<<62+2) // decodes to count 2^62+1
	sum := sha256.Sum256(data[:len(data)-checksumLen])
	copy(data[len(data)-checksumLen:], sum[:])

	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("crafted entry panicked the decoder: %v", r)
		}
	}()
	if _, err := decodeReport(data); err == nil {
		t.Fatal("overflowed matching length decoded")
	}
}

// TestDiskStoreSurvivesReopen: a Put is recovered bit-identically by a
// fresh store on the same directory — the crash-recovery contract.
func TestDiskStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	rep := solveReport(t, mpcgraph.ProblemVertexCover, 200, 9)
	key := "ab" + string(bytes.Repeat([]byte{'3'}, 62))

	d1, err := openDiskStore(dir, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	d1.Put(key, rep)
	if st := d1.Stats(); st.Writes != 1 || st.WriteErrors != 0 {
		t.Fatalf("stats after put: %+v", st)
	}

	d2, err := openDiskStore(dir, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := d2.Get(key)
	if !ok {
		t.Fatal("reopened store missed the persisted entry")
	}
	want, _ := json.Marshal(rep)
	have, _ := json.Marshal(got)
	if !bytes.Equal(want, have) {
		t.Errorf("recovered Report differs:\n want %s\n got  %s", want, have)
	}
}

// TestDiskStoreQuarantinesTornWrite: a truncated entry (the torn-write
// shape an in-place corruption produces) is quarantined at scan, never
// served, and leaves the store healthy; a re-put then restores it.
func TestDiskStoreQuarantinesTornWrite(t *testing.T) {
	dir := t.TempDir()
	rep := solveReport(t, mpcgraph.ProblemMIS, 200, 9)
	key := string(bytes.Repeat([]byte{'c'}, 64))

	d1, err := openDiskStore(dir, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	d1.Put(key, rep)

	// Tear the entry: keep the first half only.
	path := filepath.Join(dir, key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := openDiskStore(dir, 16, nil)
	if err != nil {
		t.Fatalf("torn entry made recovery fatal: %v", err)
	}
	if _, ok := d2.Get(key); ok {
		t.Fatal("torn entry was served")
	}
	st := d2.Stats()
	if st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats after torn scan: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, key)); err != nil {
		t.Errorf("torn entry not in quarantine: %v", err)
	}

	// The recompute path: a fresh Put restores the entry bit-identically.
	d2.Put(key, rep)
	got, ok := d2.Get(key)
	if !ok {
		t.Fatal("re-put entry missed")
	}
	if !bytes.Equal(encodeReport(got), encodeReport(rep)) {
		t.Errorf("restored entry is not bit-identical")
	}
	if !bytes.Equal(mustReadFile(t, path), encodeReport(rep)) {
		t.Errorf("restored file bytes differ from canonical encoding")
	}
}

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDiskStoreScanHygiene: temp leftovers are deleted and foreign
// file names are quarantined, without failing startup.
func TestDiskStoreScanHygiene(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"half"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a key"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := openDiskStore(dir, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Entries != 0 || st.Quarantined != 1 {
		t.Fatalf("stats after scan: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"half")); !os.IsNotExist(err) {
		t.Errorf("temp leftover survived the scan")
	}
}

// TestDiskStoreWriteErrorDegrades: an injected write failure counts,
// degrades the tier, and loses only persistence — the entry is simply
// absent, never torn.
func TestDiskStoreWriteErrorDegrades(t *testing.T) {
	fp, err := parseFailpoints("disk-write-error")
	if err != nil {
		t.Fatal(err)
	}
	d, err := openDiskStore(t.TempDir(), 16, fp)
	if err != nil {
		t.Fatal(err)
	}
	key := string(bytes.Repeat([]byte{'d'}, 64))
	d.Put(key, solveReport(t, mpcgraph.ProblemMIS, 150, 2))
	st := d.Stats()
	if st.WriteErrors != 1 || !st.Degraded || st.Entries != 0 {
		t.Fatalf("stats after failed write: %+v", st)
	}
	if _, ok := d.Get(key); ok {
		t.Fatal("failed write served a hit")
	}
}

// TestDiskStoreJanitorBounds: the store evicts down to maxEntries,
// oldest first, and never grows past the bound.
func TestDiskStoreJanitorBounds(t *testing.T) {
	dir := t.TempDir()
	d, err := openDiskStore(dir, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := solveReport(t, mpcgraph.ProblemMIS, 150, 2)
	for i := 0; i < 6; i++ {
		d.Put(fmt.Sprintf("%064x", i), rep)
	}
	if st := d.Stats(); st.Entries > 3 {
		t.Fatalf("janitor left %d entries, bound 3", st.Entries)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, f := range files {
		if !f.IsDir() {
			n++
		}
	}
	if n > 3 {
		t.Errorf("%d entry files on disk, bound 3", n)
	}
}

// TestTieredCacheRace hammers Get/Put/eviction across both tiers from
// many goroutines; run under -race this pins the locking discipline.
func TestTieredCacheRace(t *testing.T) {
	disk, err := openDiskStore(t.TempDir(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := &tieredCache{mem: newResultCache(2), disk: disk}
	rep := solveReport(t, mpcgraph.ProblemMIS, 120, 1)
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := keys[(g+i)%len(keys)]
				if i%3 == 0 {
					c.Put(key, rep)
				}
				if got, _, ok := c.Get(key); ok && got == nil {
					t.Error("hit returned nil report")
				}
			}
		}()
	}
	wg.Wait()
	// Both tiers stay within bounds and the promoted entries still decode.
	if st := disk.Stats(); st.Entries > 4 {
		t.Errorf("disk tier grew to %d entries, bound 4", st.Entries)
	}
	for _, key := range keys {
		if got, _, ok := c.Get(key); ok {
			if !bytes.Equal(encodeReport(got), encodeReport(rep)) {
				t.Errorf("entry %s not bit-identical after the race", key[:8])
			}
		}
	}
}
