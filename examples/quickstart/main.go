// Quickstart: build a graph, then drive every registered algorithm
// through the unified Solve API and print the payload sizes plus the
// audited model costs from the uniform Report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mpcgraph"
)

func main() {
	// A random graph on 4096 vertices with expected degree ~16, plus a
	// weighted copy for the weighted-matching corollary.
	g := mpcgraph.RandomGraph(4096, 16.0/4096, 42)
	wg := mpcgraph.RandomWeightedGraph(4096, 16.0/4096, 1, 100, 42)
	fmt.Printf("input: %d vertices, %d edges, max degree %d\n\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// One Options struct covers every problem. Workers: 0 runs round
	// bodies on all cores (results are bit-identical for every setting);
	// Model selects MPC or the congested clique.
	opts := mpcgraph.Options{Seed: 7, Eps: 0.1, Workers: 0}
	ctx := context.Background()

	// Enumerate the algorithm registry: every (Problem, Model) pair the
	// library implements, with no hard-coded list — newly registered
	// algorithms appear here automatically.
	for _, algo := range mpcgraph.Algorithms() {
		runOpts := opts
		runOpts.Model = algo.Model
		var in mpcgraph.Instance = g
		if algo.Problem == mpcgraph.ProblemWeightedMatching {
			in = wg
		}
		rep, err := mpcgraph.Solve(ctx, in, algo.Problem, runOpts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-16s rounds %5d  maxLoad %7d  totalComm %10d  wall %s\n",
			algo.Problem, algo.Model, rep.Rounds, rep.MaxMachineWords, rep.TotalWords,
			rep.Wall.Round(time.Millisecond))
	}

	// Reading a specific payload: the Report carries the field for the
	// problem that ran (InMIS, M, InCover/FractionalWeight, Value).
	rep, err := mpcgraph.Solve(ctx, g, mpcgraph.ProblemMIS, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", payloadSummary(g, rep))

	// Long runs are observable and cancellable: Options.Trace streams
	// per-round progress, and a cancelled context aborts between rounds.
	traceOpts := opts
	events := 0
	traceOpts.Trace = func(ev mpcgraph.TraceEvent) { events++ }
	if _, err := mpcgraph.Solve(ctx, g, mpcgraph.ProblemApproxMatching, traceOpts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %d metered rounds of the matching pipeline\n", events)
}

// payloadSummary renders the MIS payload with its validation verdict.
func payloadSummary(g *mpcgraph.Graph, rep *mpcgraph.Report) string {
	size := 0
	for _, in := range rep.InMIS {
		if in {
			size++
		}
	}
	return fmt.Sprintf("MIS payload: size %d, validated=%v, %d phases, %d stages in the cost breakdown",
		size, mpcgraph.IsMaximalIndependentSet(g, rep.InMIS), rep.Phases, len(rep.Stages))
}
