// Package model holds the vocabulary shared by every layer of the
// unified Solve pipeline: the computation-model selector and the
// per-round trace event emitted by the metered simulators. It sits below
// internal/mpc, internal/congest and the algorithm packages so that the
// registry can dispatch on (Problem, Model) without import cycles.
package model

import (
	"errors"
	"fmt"
)

// Model selects the simulated computation model an algorithm runs on.
// The paper proves its bounds in the Õ(n)-memory MPC model and, via
// Lenzen routing, in the CONGESTED-CLIQUE model; both are metered here.
type Model int

const (
	// MPC is the Massively Parallel Computation model [KSV10]: machines
	// with S = Õ(n) words of memory proceeding in synchronous rounds.
	MPC Model = iota
	// CongestedClique is the CONGESTED-CLIQUE model [LPPSP03]: n players,
	// one word per ordered pair per round, Lenzen routing as an O(1)-round
	// primitive.
	CongestedClique
)

// String returns the kebab-case name used by the CLI and the registry.
func (m Model) String() string {
	switch m {
	case MPC:
		return "mpc"
	case CongestedClique:
		return "congested-clique"
	default:
		return "unknown-model"
	}
}

// ErrUnknownModel reports a model name that names no defined model.
// Returned (wrapped) by ParseModel; match with errors.Is.
var ErrUnknownModel = errors.New("unknown model")

// ParseModel resolves a kebab-case model name. The error wraps
// ErrUnknownModel and lists the valid names.
func ParseModel(name string) (Model, error) {
	switch name {
	case MPC.String():
		return MPC, nil
	case CongestedClique.String():
		return CongestedClique, nil
	}
	return 0, fmt.Errorf("%w %q (want %s or %s)", ErrUnknownModel, name, MPC, CongestedClique)
}

// TraceEvent is one observation of a metered simulator round, delivered
// through Options.Trace. Events fire once per metered communication step
// (a multi-round primitive such as a broadcast tree emits one event
// covering all its rounds).
type TraceEvent struct {
	// Round is the cumulative round count after the step.
	Round int
	// LiveWords is the communication volume of the step in machine words.
	LiveWords int64
	// ActiveVertices is the algorithm's most recently reported count of
	// still-undecided vertices (see the simulators' SetActive), or 0 if
	// the algorithm never reported one.
	ActiveVertices int
}

// TraceFunc observes TraceEvents. Implementations must be fast and must
// not retain the event past the call; they are invoked synchronously
// from the simulated round loop.
type TraceFunc func(TraceEvent)

// StageCost is one entry of a per-phase cost breakdown: the audited
// rounds and communication volume a named algorithm stage consumed.
// Every algorithm reports its run as a sequence of StageCosts whose
// Rounds and Words sum to the run totals.
type StageCost struct {
	// Name identifies the stage (e.g. "prefix@512", "invocation-2",
	// "direct", "finish").
	Name string
	// Rounds is the number of model rounds charged during the stage.
	Rounds int
	// Words is the communication volume charged during the stage.
	Words int64
}
