package matching

import (
	"context"
	"fmt"
	"math"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/machine/meter"
	"mpcgraph/internal/model"
	"mpcgraph/internal/par"
	"mpcgraph/internal/rng"
)

// SimOptions configures the MPC simulation of Central-Rand (the
// MPC-Simulation box in Section 4.3 of the paper).
type SimOptions struct {
	// Seed drives the thresholds and the vertex partitioning.
	Seed uint64
	// Eps is the paper's ε; values are clamped into [0.001, 0.25]. The
	// analysis assumes ε < 1/50; measured guarantees remain within the
	// claimed envelopes for the larger values the experiments sweep.
	Eps float64
	// MemoryFactor sets per-machine memory S = MemoryFactor·n words;
	// default 16.
	MemoryFactor float64
	// DCut is the degree bound at which the simulation switches to
	// direct iteration — the paper's log^20 n, which exceeds n at any
	// feasible scale; default max(16, log2(n)^2).
	DCut func(n int) float64
	// PhaseIterBeta controls iterations per phase:
	// I = max(1, β·log m / log(1/(1-ε))), so d drops to d^(1-β/2) per
	// phase; the default β = 0.2 realizes the d → d^0.9 schedule of the
	// paper's Section 4.2 sketch.
	PhaseIterBeta float64
	// PaperConstants uses the literal I = log m/(10 log 5) from the
	// pseudocode (floored at 1), which at feasible scale degenerates to
	// one iteration per phase; exposed for the ablation test.
	PaperConstants bool
	// FixedThreshold disables random thresholds (every T_{v,t} = 1-2ε),
	// the ablation of Section 4.2's "issue with the direct simulation".
	FixedThreshold bool
	// Strict makes memory violations fail the run.
	Strict bool
	// Probe, when non-nil, records the |y - ỹ| deviation and bad-vertex
	// statistics of Section 4.4.3 (experiment E12).
	Probe *DeviationProbe
	// Workers bounds the goroutines used for the per-machine round
	// bodies (0 = all cores, 1 = the exact sequential path). Results are
	// bit-identical for every setting: every floating-point sum is
	// computed entirely inside one vertex's loop body.
	Workers int
	// Model selects the metered backend: model.MPC (default) or
	// model.CongestedClique. The algorithm trajectory — and therefore the
	// output — is bit-identical across models; only the audited costs
	// differ.
	Model model.Model
	// Ctx, when non-nil, cancels the simulation between rounds.
	Ctx context.Context
	// Trace, when non-nil, observes every metered round.
	Trace model.TraceFunc
}

func (o SimOptions) withDefaults() SimOptions {
	if o.Eps == 0 {
		o.Eps = 0.1
	}
	if o.Eps < 0.001 {
		o.Eps = 0.001
	}
	if o.Eps > 0.25 {
		o.Eps = 0.25
	}
	o.MemoryFactor = meter.ResolveMemoryFactor(o.MemoryFactor)
	if o.DCut == nil {
		o.DCut = DefaultDCut
	}
	if o.PhaseIterBeta == 0 {
		o.PhaseIterBeta = 0.2
	}
	return o
}

// DefaultDCut is the default switch-to-direct threshold max(16, log2²n),
// the simulation-scale stand-in for the paper's log^20 n.
func DefaultDCut(n int) float64 {
	if n < 2 {
		return 16
	}
	l := math.Log2(float64(n))
	return math.Max(16, l*l)
}

// PhaseStat records per-phase instrumentation.
type PhaseStat struct {
	// D is the degree bound d at the phase start.
	D float64
	// Machines is m = ⌊√d⌋ for the phase.
	Machines int
	// Iterations is I, the iterations simulated locally in this phase.
	Iterations int
	// MaxInducedWords is the largest per-machine induced subgraph (in
	// words: |V_i| + 2|E(G'[V_i])|) — the Lemma 4.7 quantity (E7).
	MaxInducedWords int64
	// MaxActiveDegree is the largest active degree in G' at the phase
	// start; Lemma 4.6 asserts it never exceeds D.
	MaxActiveDegree int
	// Frozen counts vertices frozen during the phase (including the
	// end-of-phase Line (j) freezes).
	Frozen int
	// RemovedHeavy counts vertices removed at Line (i) for y > 1.
	RemovedHeavy int
}

// SimResult is the output of Simulate.
type SimResult struct {
	// Frac carries the fractional matching, vertex weights and cover.
	Frac *FracResult
	// Phases is the number of while-loop phases executed.
	Phases int
	// TotalIterations counts Central-Rand iterations simulated in phases.
	TotalIterations int
	// DirectIterations counts the Line (4) direct iterations.
	DirectIterations int
	// Rounds is the number of MPC rounds charged.
	Rounds int
	// MaxMachineWords is the largest per-round per-machine load.
	MaxMachineWords int64
	// TotalWords is the total communication volume.
	TotalWords int64
	// Violations counts capacity violations (non-strict mode).
	Violations int
	// PhaseStats carries per-phase instrumentation.
	PhaseStats []PhaseStat
	// Stages is the audited per-stage cost breakdown (one entry per
	// while-loop phase plus the direct stage). Rounds and Words sum to
	// the run totals.
	Stages []model.StageCost
}

// DeviationProbe accumulates the Section 4.4.3 coupling statistics: per
// phase, the maximum |y_v - ỹ_v| over compared vertices and iterations,
// and the number of "bad" vertices (frozen in exactly one of the two
// coupled processes). The hypothetical Central-Rand is restarted from the
// simulation state at each phase begin, exactly as the analysis assumes.
type DeviationProbe struct {
	// PhaseMaxDev[i] is the max |y - ỹ| observed in phase i.
	PhaseMaxDev []float64
	// PhaseBad[i] counts bad vertices in phase i.
	PhaseBad []int
	// PhaseMaxDiff[i] is the max over vertices of diff(v, t) at the end
	// of phase i — the Definition 4.12 weight-difference
	// Σ_{e∋v} |x_{e} - x^MPC_{e}| between the coupled processes.
	PhaseMaxDiff []float64
	// Compared is the total number of (vertex, iteration) comparisons.
	Compared int
}

// Simulate runs the paper's MPC-Simulation on g and returns the
// fractional matching, vertex cover, and audited model costs, metered on
// the backend selected by opts.Model.
func Simulate(g *graph.Graph, opts SimOptions) (*SimResult, error) {
	opts = opts.withDefaults()
	mt, err := meter.New(opts.Model, meter.Config{
		N:            g.NumVertices(),
		MemoryFactor: opts.MemoryFactor,
		Strict:       opts.Strict,
		Workers:      opts.Workers,
		Ctx:          opts.Ctx,
		Trace:        opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	// simulateOn snapshots the meter's costs before returning, so the
	// backend scratch can go back to the pool here.
	defer mt.Close()
	return simulateOn(g, opts, mt)
}

// simulateOn runs the simulation against an existing meter, so callers
// (the integral pipeline) can accumulate the costs of several
// invocations on one backend. Rounds, TotalWords and Violations in the
// result are deltas relative to the meter state at entry;
// MaxMachineWords is the meter's cumulative per-round maximum.
func simulateOn(g *graph.Graph, opts SimOptions, mt meter.Meter) (*SimResult, error) {
	opts = opts.withDefaults()
	n := g.NumVertices()
	eps := opts.Eps

	lo, hi := 1-4*eps, 1-2*eps
	if opts.FixedThreshold {
		lo = hi
	}
	oracle := rng.NewThresholdOracle(rng.Hash(opts.Seed, 0x7472), lo, hi)
	partSrc := rng.New(opts.Seed).SplitString("partition")

	st := newSimState(g, eps, opts.Workers)
	res := &SimResult{}
	base := mt.Costs()

	machines := meter.SimMachines(n)
	dCut := opts.DCut(n)
	d := float64(n)
	for d > dCut && res.Phases < 64 {
		m := int(math.Sqrt(d))
		if m < 2 {
			break
		}
		if m > machines {
			m = machines
		}
		iters := phaseIterations(m, eps, opts)
		before := mt.Costs()
		stat, err := st.runPhase(mt, oracle, partSrc, m, iters, opts.Probe)
		if err != nil {
			return nil, fmt.Errorf("phase %d: %w", res.Phases, err)
		}
		stat.D = d
		after := mt.Costs()
		res.Stages = append(res.Stages, model.StageCost{
			Name:   fmt.Sprintf("phase-%d", res.Phases),
			Rounds: after.Rounds - before.Rounds,
			Words:  after.TotalWords - before.TotalWords,
		})
		res.Phases++
		res.TotalIterations += iters
		res.PhaseStats = append(res.PhaseStats, stat)
		d *= math.Pow(1-eps, float64(iters))
	}

	// Line (4): direct simulation of Central-Rand until every edge is
	// frozen, one MPC round per iteration.
	beforeDirect := mt.Costs()
	direct, err := st.runDirect(mt, oracle)
	if err != nil {
		return nil, err
	}
	res.DirectIterations = direct
	res.TotalIterations += direct
	if afterDirect := mt.Costs(); afterDirect.Rounds > beforeDirect.Rounds {
		res.Stages = append(res.Stages, model.StageCost{
			Name:   "direct",
			Rounds: afterDirect.Rounds - beforeDirect.Rounds,
			Words:  afterDirect.TotalWords - beforeDirect.TotalWords,
		})
	}

	res.Frac = st.finalize()
	c := mt.Costs()
	res.Rounds = c.Rounds - base.Rounds
	res.MaxMachineWords = c.MaxMachineWords
	res.TotalWords = c.TotalWords - base.TotalWords
	res.Violations = c.Violations - base.Violations
	return res, nil
}

// phaseIterations returns I for a phase with m machines.
func phaseIterations(m int, eps float64, opts SimOptions) int {
	var iters int
	if opts.PaperConstants {
		iters = int(math.Log(float64(m)) / (10 * math.Log(5)))
	} else {
		iters = int(opts.PhaseIterBeta * math.Log(float64(m)) / (-math.Log1p(-eps)))
	}
	if iters < 1 {
		iters = 1
	}
	return iters
}

// simState is the global algorithm state shared by phases.
type simState struct {
	g       *graph.Graph
	eps     float64
	w0      float64
	t       int // global iteration counter
	workers int

	inV        []bool  // v ∈ V'
	freezeIter []int32 // iteration at which v froze; -1 while active
	cover      []bool  // frozen ∪ removed

	pow []float64 // pow[t] = (1-eps)^(-t), grown on demand

	// Per-phase scratch, allocated once and re-zeroed each phase so the
	// phase loop stays allocation-free in steady state.
	yold      []float64
	part      []int32
	localDeg  []int32
	globalDeg []int32
}

func newSimState(g *graph.Graph, eps float64, workers int) *simState {
	n := g.NumVertices()
	st := &simState{
		g:          g,
		eps:        eps,
		w0:         (1 - 2*eps) / math.Max(float64(n), 1),
		workers:    workers,
		inV:        make([]bool, n),
		freezeIter: make([]int32, n),
		cover:      make([]bool, n),
		pow:        []float64{1},
		yold:       make([]float64, n),
		part:       make([]int32, n),
		localDeg:   make([]int32, n),
		globalDeg:  make([]int32, n),
	}
	for i := range st.inV {
		st.inV[i] = true
		st.freezeIter[i] = -1
	}
	return st
}

// wAt returns the weight of an edge frozen at iteration t (or active at
// current iteration t): w0/(1-eps)^t.
func (st *simState) wAt(t int) float64 {
	for len(st.pow) <= t {
		st.pow = append(st.pow, st.pow[len(st.pow)-1]/(1-st.eps))
	}
	return st.w0 * st.pow[t]
}

// edgeWeightAt returns the current weight of edge {u,v} (both in V'),
// using the last iteration both endpoints were active, capped at now.
func (st *simState) edgeWeightAt(u, v int32, now int) float64 {
	tu, tv := st.freezeIter[u], st.freezeIter[v]
	te := now
	if tu >= 0 && int(tu) < te {
		te = int(tu)
	}
	if tv >= 0 && int(tv) < te {
		te = int(tv)
	}
	return st.wAt(te)
}

// frozen reports whether v froze already.
func (st *simState) frozen(v int32) bool { return st.freezeIter[v] >= 0 }

// runPhase executes one while-loop phase: partition, local simulation of
// I iterations, end-of-phase weight reconciliation, heavy removal and
// late freezing (Lines (a)-(j) of the pseudocode).
func (st *simState) runPhase(
	mt meter.Meter,
	oracle rng.ThresholdOracle,
	partSrc *rng.Source,
	m, iters int,
	probe *DeviationProbe,
) (PhaseStat, error) {
	g := st.g
	n := int32(g.NumVertices())
	stat := PhaseStat{Machines: m, Iterations: iters}

	// Line (b): y_old — weight of already-frozen edges at each active
	// vertex. Line (d): partition active vertices onto m machines. The
	// partition draw consumes a sequential RNG stream, so it stays on
	// one goroutine; everything after it is a read-only scan.
	yold, part := st.yold, st.part
	localDeg, globalDeg := st.localDeg, st.globalDeg // globalDeg feeds the probe's exact process
	activeCount := 0
	for v := int32(0); v < n; v++ {
		part[v] = -1
		if st.inV[v] && !st.frozen(v) {
			part[v] = int32(partSrc.Intn(m))
			activeCount++
		}
	}
	mt.SetActive(activeCount)
	// wAt grows its memo lazily; pre-grow it to the deepest iteration the
	// phase can reference so the parallel scan only reads it.
	st.wAt(st.t + iters)
	shards := par.ShardCount(st.workers, int(n))
	shardWords := make([][]int64, shards)
	for w := range shardWords {
		shardWords[w] = make([]int64, m)
	}
	par.For(st.workers, int(n), func(lo, hi, w int) {
		words := shardWords[w]
		for v := int32(lo); v < int32(hi); v++ {
			yold[v] = 0
			localDeg[v] = 0
			globalDeg[v] = 0
			if !st.inV[v] || st.frozen(v) {
				continue
			}
			words[part[v]]++
			for _, u := range g.Neighbors(v) {
				if !st.inV[u] {
					continue
				}
				if st.frozen(u) {
					yold[v] += st.wAt(int(st.freezeIter[u]))
					continue
				}
				globalDeg[v]++
				if part[u] == part[v] {
					localDeg[v]++
					if v < u {
						words[part[v]] += 2
					}
				}
			}
		}
	})
	inducedWords := make([]int64, m)
	for _, words := range shardWords {
		for j, w := range words {
			inducedWords[j] += w
		}
	}
	for _, w := range inducedWords {
		if w > stat.MaxInducedWords {
			stat.MaxInducedWords = w
		}
	}
	for v := int32(0); v < n; v++ {
		if int(globalDeg[v]) > stat.MaxActiveDegree {
			stat.MaxActiveDegree = int(globalDeg[v])
		}
	}

	// Charge the shuffle round: edges travel from their hash-home to the
	// owner machine of their partition class; the inbox of machine i is
	// exactly its induced subgraph (the Lemma 4.7 audit).
	if err := mt.Shuffle(m, inducedWords); err != nil {
		return stat, err
	}

	// Probe state: hypothetical Central-Rand restarted from the current
	// global state, per Section 4.4's coupling. hypoFreeze records the
	// iteration at which the hypothetical process froze each vertex
	// (-1 while active), so the Definition 4.12 weight difference is
	// computable at phase end.
	var hypoFreeze []int32
	if probe != nil {
		hypoFreeze = make([]int32, n)
		for i := range hypoFreeze {
			hypoFreeze[i] = -1
		}
		probe.PhaseMaxDev = append(probe.PhaseMaxDev, 0)
		probe.PhaseBad = append(probe.PhaseBad, 0)
		probe.PhaseMaxDiff = append(probe.PhaseMaxDiff, 0)
	}

	// Line (e): simulate I iterations on every machine in parallel. All
	// active edges carry weight w_t, so the local estimate reduces to
	// ỹ_{v,t} = m·w_t·localDeg(v) + y_old(v).
	frozenBefore := countFrozen(st)
	toFreeze := make([]int32, 0, 64)
	hypoToFreeze := make([]int32, 0, 64)
	for k := 0; k < iters; k++ {
		wt := st.wAt(st.t)
		toFreeze = toFreeze[:0]
		hypoToFreeze = hypoToFreeze[:0]
		if probe == nil {
			// The freeze predicate reads only pre-iteration state (the
			// thresholds come from a stateless oracle), so the scan fans
			// out; shard-order concatenation reproduces the sequential
			// ascending-vertex candidate order exactly.
			toFreeze = append(toFreeze, par.Collect(st.workers, int(n), func(lo, hi, _ int) []int32 {
				var out []int32
				for v := int32(lo); v < int32(hi); v++ {
					if !st.inV[v] || st.frozen(v) {
						continue
					}
					if float64(m)*wt*float64(localDeg[v])+yold[v] >= oracle.At(v, st.t) {
						out = append(out, v)
					}
				}
				return out
			})...)
		} else {
			// The probe couples the simulated and hypothetical processes
			// with shared running statistics; it runs at conformance
			// scale, so the combined scan stays sequential.
			for v := int32(0); v < n; v++ {
				if !st.inV[v] || st.frozen(v) {
					continue
				}
				yTilde := float64(m)*wt*float64(localDeg[v]) + yold[v]
				th := oracle.At(v, st.t)
				if yTilde >= th {
					toFreeze = append(toFreeze, v)
				}
				if hypoFreeze[v] < 0 {
					yExact := wt*float64(globalDeg[v]) + yold[v]
					probe.Compared++
					dev := math.Abs(yExact - yTilde)
					if dev > probe.PhaseMaxDev[len(probe.PhaseMaxDev)-1] {
						probe.PhaseMaxDev[len(probe.PhaseMaxDev)-1] = dev
					}
					if yExact >= th {
						hypoToFreeze = append(hypoToFreeze, v)
					}
					if (yExact >= th) != (yTilde >= th) {
						probe.PhaseBad[len(probe.PhaseBad)-1]++
					}
				}
			}
		}
		for _, v := range toFreeze {
			st.freezeIter[v] = int32(st.t)
			st.cover[v] = true
		}
		for _, v := range toFreeze {
			for _, u := range g.Neighbors(v) {
				if st.inV[u] && part[u] == part[v] && localDeg[u] > 0 {
					localDeg[u]--
				}
			}
		}
		if probe != nil {
			for _, v := range hypoToFreeze {
				hypoFreeze[v] = int32(st.t)
			}
			for _, v := range hypoToFreeze {
				for _, u := range g.Neighbors(v) {
					if st.inV[u] && hypoFreeze[u] < 0 && globalDeg[u] > 0 {
						globalDeg[u]--
					}
				}
			}
		}
		st.t++
	}

	// Definition 4.12: diff(v) = Σ_{e∋v} |x_e - x^MPC_e| over the edges
	// that were active at phase start, comparing the freeze schedules of
	// the two coupled processes.
	if probe != nil {
		diff := make([]float64, n)
		capIter := func(f int32) int {
			if f >= 0 && int(f) < st.t {
				return int(f)
			}
			return st.t
		}
		for v := int32(0); v < n; v++ {
			if part[v] < 0 {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if u <= v || part[u] < 0 {
					continue
				}
				simTe := capIter(st.freezeIter[v])
				if s2 := capIter(st.freezeIter[u]); s2 < simTe {
					simTe = s2
				}
				hypTe := capIter(hypoFreeze[v])
				if h2 := capIter(hypoFreeze[u]); h2 < hypTe {
					hypTe = h2
				}
				d := math.Abs(st.wAt(simTe) - st.wAt(hypTe))
				diff[v] += d
				diff[u] += d
			}
		}
		idx := len(probe.PhaseMaxDiff) - 1
		for v := int32(0); v < n; v++ {
			if diff[v] > probe.PhaseMaxDiff[idx] {
				probe.PhaseMaxDiff[idx] = diff[v]
			}
		}
	}

	// Charge the result exchange: frozen (v, iteration) pairs are
	// gathered and redistributed (1 gather + broadcast).
	frozenNow := countFrozen(st)
	frozenWords := int64(2 * (frozenNow - frozenBefore))
	if err := mt.ResultSync(m, frozenWords); err != nil {
		return stat, err
	}

	// Lines (g)-(h): reconcile edge weights from freeze iterations and
	// compute y^MPC over G[V'].
	y := st.computeY()
	// Line (i): remove heavy vertices (y > 1) from V'; they join the
	// reported cover.
	const heavyTol = 1e-12
	for v := int32(0); v < n; v++ {
		if st.inV[v] && y[v] > 1+heavyTol {
			st.inV[v] = false
			st.cover[v] = true
			stat.RemovedHeavy++
		}
	}
	// Line (j): freeze vertices with y > 1-2ε.
	for v := int32(0); v < n; v++ {
		if st.inV[v] && !st.frozen(v) && y[v] > 1-2*st.eps {
			st.freezeIter[v] = int32(st.t)
			st.cover[v] = true
		}
	}
	stat.Frozen = countFrozen(st) - frozenBefore
	return stat, nil
}

// runDirect executes Central-Rand directly from the current state until
// no active edge remains, one MPC round per iteration. Returns the number
// of iterations.
func (st *simState) runDirect(mt meter.Meter, oracle rng.ThresholdOracle) (int, error) {
	g := st.g
	n := int32(g.NumVertices())
	// Initialize exact incremental state. Each vertex gathers its own
	// frozen-weight sum and active degree (both endpoints see each edge),
	// so the scan fans out with per-vertex float sums kept whole.
	yFrozen := make([]float64, n)
	activeDeg := make([]int32, n)
	st.wAt(st.t) // pre-grow the weight memo
	acc := par.Reduce(st.workers, int(n), func(lo, hi, _ int) [2]int64 {
		var active, verts int64
		for v := int32(lo); v < int32(hi); v++ {
			if !st.inV[v] {
				continue
			}
			if !st.frozen(v) {
				verts++
			}
			s := 0.0
			for _, u := range g.Neighbors(v) {
				if !st.inV[u] {
					continue
				}
				if st.frozen(v) || st.frozen(u) {
					s += st.edgeWeightAt(v, u, st.t)
				} else {
					activeDeg[v]++
					active++
				}
			}
			yFrozen[v] = s
		}
		return [2]int64{active, verts}
	}, func(a, b [2]int64) [2]int64 { return [2]int64{a[0] + b[0], a[1] + b[1]} })
	activeEdges := int(acc[0] / 2)
	activeVerts := int(acc[1])
	maxIter := maxCentralIterations(int(n), st.eps) + st.t
	iters := 0
	toFreeze := make([]int32, 0, 64)
	for activeEdges > 0 && st.t < maxIter {
		mt.SetActive(activeVerts)
		if err := mt.DirectRound(int64(activeEdges)); err != nil {
			return iters, fmt.Errorf("direct iteration %d: %w", iters, err)
		}
		wt := st.wAt(st.t)
		toFreeze = append(toFreeze[:0], par.Collect(st.workers, int(n), func(lo, hi, _ int) []int32 {
			var out []int32
			for v := int32(lo); v < int32(hi); v++ {
				if !st.inV[v] || st.frozen(v) {
					continue
				}
				if wt*float64(activeDeg[v])+yFrozen[v] >= oracle.At(v, st.t) {
					out = append(out, v)
				}
			}
			return out
		})...)
		for _, v := range toFreeze {
			st.freezeIter[v] = int32(st.t)
			st.cover[v] = true
		}
		activeVerts -= len(toFreeze)
		// Deactivate edges whose first endpoint froze this iteration.
		for _, v := range toFreeze {
			for _, u := range g.Neighbors(v) {
				if !st.inV[u] {
					continue
				}
				// The edge {v,u} was active before this iteration iff u
				// was unfrozen or froze this very iteration after v —
				// guard with activeDeg bookkeeping: it was active iff
				// u's freezeIter is -1 or == t, and the edge not yet
				// deactivated. Using freezeIter == t for both endpoints
				// would double-deactivate; let the smaller id act.
				uf := st.freezeIter[u]
				if uf >= 0 && int(uf) < st.t {
					continue // already frozen earlier; edge was frozen
				}
				if uf == int32(st.t) && u < v {
					continue // peer freeze, edge handled by u's loop
				}
				w := wt
				yFrozen[v] += w
				yFrozen[u] += w
				activeDeg[v]--
				activeDeg[u]--
				activeEdges--
			}
		}
		st.t++
		iters++
	}
	// Defensive: if the cap fired, freeze remaining active endpoints so
	// the cover property holds (cannot happen for sane ε; tested).
	if activeEdges > 0 {
		for v := int32(0); v < n; v++ {
			if st.inV[v] && !st.frozen(v) && activeDeg[v] > 0 {
				st.freezeIter[v] = int32(st.t)
				st.cover[v] = true
			}
		}
	}
	return iters, nil
}

// computeY returns y^MPC over G[V'] at the current iteration. Each
// vertex gathers its own incident weights (every edge weight is
// recomputed on both sides), so the per-vertex float sums are formed
// entirely inside one loop body and the result is bit-identical for
// every worker count.
func (st *simState) computeY() []float64 {
	g := st.g
	n := g.NumVertices()
	y := make([]float64, n)
	st.wAt(st.t) // pre-grow the weight memo so the scan only reads it
	par.For(st.workers, n, func(lo, hi, _ int) {
		for v := int32(lo); v < int32(hi); v++ {
			if !st.inV[v] {
				continue
			}
			s := 0.0
			for _, u := range g.Neighbors(v) {
				if st.inV[u] {
					s += st.edgeWeightAt(v, u, st.t)
				}
			}
			y[v] = s
		}
	})
	return y
}

// finalize assembles the fractional matching output: edges inside the
// final V' carry their reconciled weights; edges touching removed
// vertices carry zero (they are covered by the removed endpoints).
// X entries are disjoint per edge and each Y entry is gathered inside
// one vertex's body, so both fills fan out deterministically.
func (st *simState) finalize() *FracResult {
	g := st.g
	n := g.NumVertices()
	ix := graph.NewEdgeIndexWorkers(g, st.workers)
	res := &FracResult{
		Ix:         ix,
		X:          make([]float64, ix.NumEdges()),
		Y:          make([]float64, n),
		Cover:      st.cover,
		Iterations: st.t,
	}
	st.wAt(st.t) // pre-grow the weight memo
	par.For(st.workers, n, func(lo, hi, _ int) {
		for v := int32(lo); v < int32(hi); v++ {
			if !st.inV[v] {
				continue
			}
			s := 0.0
			for _, u := range g.Neighbors(v) {
				if !st.inV[u] {
					continue
				}
				w := st.edgeWeightAt(v, u, st.t)
				s += w
				if v < u {
					res.X[ix.ID(v, u)] = w
				}
			}
			res.Y[v] = s
		}
	})
	return res
}

func countFrozen(st *simState) int {
	c := 0
	for v := range st.freezeIter {
		if st.freezeIter[v] >= 0 {
			c++
		}
	}
	return c
}
