// Package main is allowed both time.Now (operational tooling) and
// os.Exit (a binary's prerogative). No findings from either analyzer.
package main

import (
	"fmt"
	"os"
	"time"
)

func main() {
	fmt.Println(time.Now())
	os.Exit(0)
}
