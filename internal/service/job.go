package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mpcgraph"
	"mpcgraph/internal/obs"
)

// JobState is the lifecycle of one submitted job:
//
//	queued -> running -> done | failed
//	queued | running  -> canceled
//
// A cache hit completes the job as done at submission time without ever
// entering the queue (its view carries cacheHit: true and the serving
// tier in cacheTier). A coalesced follower rides another job's
// computation: it is queued/running while the leader computes and
// completes when the shared flight does.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// maxTraceEvents bounds the per-job trace buffer. The paper's
// algorithms run O(log log n)–O(log n) metered steps, so real runs stay
// far below this; the bound only guards the resident daemon against a
// pathological workload. Overflow drops the newest events and is
// reported in the job view.
const maxTraceEvents = 1 << 16

// Job is one submitted solve. Mutable state is guarded by mu; the
// resolved request fields are immutable after submission.
type Job struct {
	ID string

	// Immutable after resolve.
	problem  mpcgraph.Problem
	model    mpcgraph.Model
	opts     mpcgraph.Options
	instance mpcgraph.Instance
	source   string // human-readable instance origin for the job view
	timeout  time.Duration
	noCache  bool
	cacheKey string

	// flight is the computation this job rides (its own, as leader, or
	// another job's, as follower). Nil for jobs completed from cache at
	// submission. Set once, under Server.mu, before the job is visible
	// to any worker.
	flight    *flight
	coalesced bool

	// notify, when non-nil, observes the job's one terminal transition
	// (done, failed or canceled). It is set before the job is visible
	// and invoked exactly once, after j.mu is released — batches use it
	// to stream member completions without holding any job lock.
	notify func(*Job)
	// batchID names the batch this job was expanded from (empty for
	// single-job submissions). Set before the job is visible.
	batchID string

	// tel is the server's telemetry bundle; lg is the job-correlated
	// logger derived from it (nil when logging is off). Both are set
	// before the job is visible.
	tel *telemetry
	lg  *obs.Logger

	mu        sync.Mutex
	state     JobState
	err       string
	report    *mpcgraph.Report
	cacheHit  bool
	cacheTier CacheTier
	created   time.Time
	started   time.Time
	finished  time.Time
	timings   jobTimings
	deadline  *time.Timer // fires cancelJob when timeoutMs lapses

	// Trace buffer: appended by the solve's Trace callback, replayed and
	// followed by the streaming endpoint. changed is closed and replaced
	// on every append and on the terminal transition, so followers can
	// select on it together with their client's context.
	trace        []mpcgraph.TraceEvent
	traceDropped int
	changed      chan struct{}
}

func newJob(id string, tel *telemetry) *Job {
	now := time.Now()
	j := &Job{
		ID:        id,
		state:     StateQueued,
		cacheTier: TierNone,
		created:   now,
		changed:   make(chan struct{}),
		tel:       tel,
		lg:        tel.log.With(obs.F("job", id)),
	}
	j.timings.received = now
	return j
}

// currentState reads the lifecycle state.
func (j *Job) currentState() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// terminal reports whether the job reached a final state.
func (j *Job) terminal() bool {
	switch j.currentState() {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// signalLocked wakes every trace follower; callers hold j.mu.
func (j *Job) signalLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// stopDeadlineLocked releases the deadline timer; callers hold j.mu.
func (j *Job) stopDeadlineLocked() {
	if j.deadline != nil {
		j.deadline.Stop()
		j.deadline = nil
	}
}

// stampQueued records admission to the job queue (leaders only).
// Idempotent: a batch leader is stamped once even if re-placed.
func (j *Job) stampQueued() {
	j.mu.Lock()
	if j.timings.queued.IsZero() {
		j.timings.queued = time.Now()
	}
	j.mu.Unlock()
}

// stampDequeued records the worker pickup and returns the queue wait
// (ok is false when the job never carried a queued stamp).
func (j *Job) stampDequeued() (time.Duration, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	now := time.Now()
	j.timings.dequeued = now
	if j.timings.queued.IsZero() {
		return 0, false
	}
	return now.Sub(j.timings.queued), true
}

// stampAttached records a follower coalescing onto an existing flight.
func (j *Job) stampAttached() {
	j.mu.Lock()
	j.timings.attached = time.Now()
	j.mu.Unlock()
}

// stampProbe records one cache-tier probe duration and feeds the probe
// histogram.
func (j *Job) stampProbe(tier CacheTier, d time.Duration) {
	j.mu.Lock()
	switch tier {
	case TierMemory:
		j.timings.memProbe, j.timings.memProbed = d, true
	case TierDisk:
		j.timings.diskProbe, j.timings.diskProbed = d, true
	}
	j.mu.Unlock()
	if j.tel != nil {
		j.tel.cacheProbe.With(string(tier)).Observe(d)
	}
}

// markPersisted records the write-through completion on a still-live
// rider; terminal riders (canceled mid-flight) keep their record as is.
func (j *Job) markPersisted(at time.Time) {
	j.mu.Lock()
	switch j.state {
	case StateQueued, StateRunning:
		j.timings.persisted = at
	}
	j.mu.Unlock()
}

// armDeadline schedules the per-job deadline, measured from submission
// so it bounds queue wait plus execution. Exceeding it cancels only
// this rider: a coalesced computation keeps running for the riders
// that still want it. Idempotent: batch members arm at record creation
// and again when placed, and must not leak the first timer.
func (j *Job) armDeadline() {
	if j.timeout <= 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.deadline != nil {
		return
	}
	switch j.state {
	case StateQueued, StateRunning:
	default:
		// Already terminal (e.g. completed or canceled before arming):
		// a timer armed now would have no stopDeadlineLocked to release
		// it and would linger until it fired.
		return
	}
	j.deadline = time.AfterFunc(time.Until(j.created.Add(j.timeout)), func() {
		j.cancelJob("job deadline exceeded (timeoutMs bounds queue wait plus execution)")
	})
}

// appendTrace is the Options.Trace callback of a running job.
func (j *Job) appendTrace(ev mpcgraph.TraceEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.trace) >= maxTraceEvents {
		j.traceDropped++
		return
	}
	j.trace = append(j.trace, ev)
	j.signalLocked()
}

// completeCached finishes a job from a cache hit: at submission time
// (L1) or after the unlocked disk probe (L2, where the job is briefly
// visible and cancellable, so riders already terminal stay terminal).
func (j *Job) completeCached(rep *mpcgraph.Report, tier CacheTier) {
	j.mu.Lock()
	switch j.state {
	case StateQueued, StateRunning:
	default:
		j.mu.Unlock()
		return
	}
	now := time.Now()
	j.state = StateDone
	j.report = rep
	j.cacheHit = true
	j.cacheTier = tier
	j.started = now
	j.finished = now
	j.timings.settled = now
	j.stopDeadlineLocked()
	j.signalLocked()
	j.mu.Unlock()
	j.notifyTerminal()
}

// markRunning transitions a queued rider to running when its flight's
// computation starts.
func (j *Job) markRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.timings.solving = j.started
	j.signalLocked()
}

// complete finishes a rider with the flight's Report. Riders that
// canceled while the computation ran stay canceled.
func (j *Job) complete(rep *mpcgraph.Report) {
	j.mu.Lock()
	switch j.state {
	case StateQueued, StateRunning:
	default:
		j.mu.Unlock()
		return
	}
	j.state = StateDone
	j.report = rep
	if j.started.IsZero() {
		j.started = j.created
	}
	j.finished = time.Now()
	j.timings.settled = j.finished
	j.stopDeadlineLocked()
	j.signalLocked()
	j.mu.Unlock()
	j.notifyTerminal()
}

// fail finishes a rider with the flight's error.
func (j *Job) fail(err error) {
	j.mu.Lock()
	switch j.state {
	case StateQueued, StateRunning:
	default:
		j.mu.Unlock()
		return
	}
	j.state = StateFailed
	j.err = err.Error()
	if j.started.IsZero() {
		j.started = j.created
	}
	j.finished = time.Now()
	j.timings.settled = j.finished
	j.stopDeadlineLocked()
	j.signalLocked()
	j.mu.Unlock()
	j.notifyTerminal()
}

// cancelJob moves a queued or running job to canceled. The job record
// terminates immediately; the underlying computation (if this job
// rides a flight) is aborted only when the last live rider has
// canceled, so canceling one rider never takes down the others.
func (j *Job) cancelJob(reason string) bool {
	j.mu.Lock()
	switch j.state {
	case StateQueued, StateRunning:
	default:
		j.mu.Unlock()
		return false
	}
	j.state = StateCanceled
	j.err = reason
	j.finished = time.Now()
	j.timings.settled = j.finished
	f := j.flight
	if f != nil {
		j.timings.detached = j.finished
	}
	j.stopDeadlineLocked()
	j.signalLocked()
	j.mu.Unlock()
	if f != nil {
		f.detach()
	}
	j.notifyTerminal()
	return true
}

// notifyTerminal fires the terminal-transition observer, records the
// end-to-end latency histogram, and emits the terminal log event. The
// state machine admits exactly one terminal transition per job, so all
// of it runs exactly once; callers invoke it with j.mu released.
func (j *Job) notifyTerminal() {
	if j.tel != nil {
		j.mu.Lock()
		state := j.state
		e2e := j.finished.Sub(j.created)
		hit := j.cacheHit
		tier := j.cacheTier
		coalesced := j.coalesced
		errMsg := j.err
		j.mu.Unlock()
		j.tel.jobE2E.With(string(state)).Observe(e2e)
		fields := []obs.Field{
			obs.F("state", string(state)),
			obs.F("ms", durMs(e2e)),
			obs.F("cacheHit", hit),
			obs.F("tier", string(tier)),
		}
		if coalesced {
			fields = append(fields, obs.F("coalesced", true))
		}
		if errMsg != "" {
			fields = append(fields, obs.F("error", errMsg))
		}
		j.lg.Info(context.Background(), "job.terminal", fields...)
	}
	if j.notify != nil {
		j.notify(j)
	}
}

// run executes the job's flight on a worker goroutine. j is always the
// flight's leader — followers never enter the queue; that is the point
// of coalescing.
func (j *Job) run(s *Server) {
	f := j.flight
	if f == nil || f.ctx.Err() != nil {
		// Every rider canceled while the leader sat in the queue (or the
		// job predates its flight — impossible by construction). The
		// original riders are already terminal, but a rider may have
		// raced its attach against the final detach (submit checks
		// ctx.Err under Server.mu, detach cancels without it) — fail any
		// such straggler rather than strand it queued forever.
		failDroppedRiders(s, f)
		return
	}

	// The computation starts: every current rider shows running, and
	// riders attaching from now on attach as running.
	s.mu.Lock()
	f.started = true
	riders := append([]*Job(nil), f.riders...)
	s.mu.Unlock()
	for _, r := range riders {
		r.markRunning()
	}

	opts := j.opts
	opts.Trace = j.appendTrace

	// Fault injection (see failpoint.go); inert unless armed.
	if d, ok := s.fp.duration("solve-delay"); ok {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-f.ctx.Done():
			t.Stop()
		}
	}
	if s.fp.enabled("solve-stall") {
		<-f.ctx.Done()
	}

	var (
		rep *mpcgraph.Report
		err error
	)
	if f.ctx.Err() == nil {
		s.mu.Lock()
		s.solves++
		s.mu.Unlock()
		// The histogram records once per Solve call — the operation
		// boundary — never inside the metered round loop, so the
		// instrumentation is invisible to the routing benchmarks.
		j.lg.Info(f.ctx, "job.solve.start",
			obs.F("problem", j.problem.String()),
			obs.F("model", j.model.String()),
			obs.F("source", j.source))
		solveStart := time.Now()
		rep, err = mpcgraph.Solve(f.ctx, j.instance, j.problem, opts)
		elapsed := time.Since(solveStart)
		j.tel.solve.With(j.problem.String(), j.model.String()).Observe(elapsed)
		j.lg.Info(f.ctx, "job.solve.done",
			obs.F("ms", durMs(elapsed)),
			obs.F("ok", err == nil))
	} else {
		err = f.ctx.Err()
	}

	switch {
	case err == nil:
		// Persist before fan-out: a rider observed done implies the
		// result is already cached (both tiers), so a crash right after
		// a client saw completion can always be recovered from disk.
		// Even a noCache leader stores its result: the flag skips the
		// lookup (forcing the cold recompute), not the refresh.
		s.cache.Put(j.cacheKey, rep)
		persistedAt := time.Now()
		j.lg.Debug(context.Background(), "job.persisted")
		for _, r := range s.dropFlight(f) {
			r.markPersisted(persistedAt)
			r.complete(rep)
		}
	case f.ctx.Err() != nil:
		// Aborted between metered rounds: every rider already canceled
		// itself (client DELETE, deadline, or drain) — except a rider
		// whose attach raced the final detach; fail it so nothing stays
		// queued on a flight that will never complete.
		failDroppedRiders(s, f)
	default:
		for _, r := range s.dropFlight(f) {
			r.fail(err)
		}
	}
}

// failDroppedRiders retires a canceled flight and fails any rider that
// is not already terminal. fail is a no-op on terminal jobs, so the
// common case (every rider canceled itself) is untouched; only a rider
// that attached in the cancel-to-dequeue window is affected.
func failDroppedRiders(s *Server, f *flight) {
	for _, r := range s.dropFlight(f) {
		r.fail(fmt.Errorf("service: coalesced computation canceled before completion"))
	}
}

// dropFlight retires a flight: unregisters it (so new submissions
// start a fresh computation) and returns its riders for fan-out.
func (s *Server) dropFlight(f *flight) []*Job {
	if f == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f.done = true
	if s.flights[f.key] == f {
		delete(s.flights, f.key)
	}
	return append([]*Job(nil), f.riders...)
}

// placement classifies how place settled an admitted job — or that it
// still needs a queue slot.
type placement int

const (
	placedMemory    placement = iota // completed from the L1 cache
	placedCoalesced                  // attached to an identical in-flight computation
	placedDisk                       // completed from the persistent tier
	placeEnqueue                     // new flight registered; the caller must enqueue the leader
)

// place runs the cache-aware dedup ladder for a job already recorded in
// s.jobs: memory probe, single-flight attach, then (after registering a
// fresh flight) the unlocked disk probe. It is shared by single-job
// submission and the batch feeder — the dedup semantics of a batch are
// exactly those of its members submitted one by one. When it returns
// placeEnqueue the returned flight's leader must be enqueued (or the
// flight dropped) by the caller.
func (s *Server) place(job *Job) (*flight, placement) {
	s.mu.Lock()
	if !job.noCache {
		// Only the in-memory tier is probed under s.mu: a disk probe here
		// would stall every endpoint that takes s.mu behind one file read.
		probeStart := time.Now()
		rep, ok := s.cache.memGet(job.cacheKey)
		job.stampProbe(TierMemory, time.Since(probeStart))
		if ok {
			job.completeCached(rep, TierMemory)
			s.mu.Unlock()
			return nil, placedMemory
		}
		// Single-flight: an identical computation is already in flight —
		// ride it instead of burning a second worker on a bit-identical
		// result. The follower keeps its own record, deadline and cancel.
		// Attach only to a live flight: one whose context survived (a
		// canceled flight still registered until its leader dequeues
		// would complete no one) and that has not already fanned out.
		if f, ok := s.flights[job.cacheKey]; ok && !f.done && f.ctx.Err() == nil {
			f.attachLocked(job)
			leader := f.riders[0].ID // read under s.mu; riders is s.mu-guarded
			s.coalesces++
			s.mu.Unlock()
			job.stampAttached()
			job.lg.Debug(context.Background(), "job.coalesced",
				obs.F("leader", leader))
			job.armDeadline()
			return f, placedCoalesced
		}
	}

	// Register the flight before the unlocked disk probe so identical
	// submissions arriving meanwhile coalesce onto this one — the probe
	// itself is single-flighted. noCache flights stay private: their
	// contract is a forced cold run, so others must not ride them.
	f := newFlight(job.cacheKey, job)
	if !job.noCache {
		s.flights[job.cacheKey] = f
	}
	s.mu.Unlock()

	// Armed before the queue send so a worker can never complete the job
	// while the timer is still being created (the late timer would leak
	// until it fired); armDeadline skips already-terminal jobs.
	job.armDeadline()

	if !job.noCache {
		probeStart := time.Now()
		rep, ok := s.cache.diskGet(job.cacheKey)
		job.stampProbe(TierDisk, time.Since(probeStart))
		if ok {
			// Recovered from the persistent tier: complete every rider
			// (followers may have attached during the probe) as a disk hit.
			for _, r := range s.dropFlight(f) {
				r.completeCached(rep, TierDisk)
			}
			return f, placedDisk
		}
	}
	return f, placeEnqueue
}

// submit resolves a request into a Job, serves it from cache when
// possible, coalesces it onto an identical in-flight computation, or
// admits it to the queue as a new flight's leader. It returns the job
// and an HTTP status hint for failures (0 on success).
func (s *Server) submit(req *JobRequest) (*Job, int, error) {
	problem, model, opts, instance, source, err := req.resolve(s.cfg)
	if err != nil {
		return nil, requestErrorStatus(err), err
	}
	key, err := CacheKey(instance, problem, model, opts)
	if err != nil {
		return nil, 400, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, 503, fmt.Errorf("service: draining, not accepting jobs")
	}
	s.nextID++
	job := newJob(fmt.Sprintf("j%08d", s.nextID), s.tel)
	job.problem, job.model, job.opts = problem, model, opts
	job.instance, job.source = instance, source
	job.timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	job.noCache = req.NoCache
	job.cacheKey = key
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.evictTerminalLocked()
	s.mu.Unlock()

	job.lg.Info(context.Background(), "job.submit",
		obs.F("problem", problem.String()),
		obs.F("model", model.String()),
		obs.F("source", source),
		obs.F("key", key))

	f, p := s.place(job)
	if p != placeEnqueue {
		return job, 0, nil
	}

	// The draining re-check and the queue send stay under one critical
	// section so a submission admitted past the check is visible to the
	// backlog sweep of a Drain that starts right after.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		for _, r := range s.dropFlight(f) {
			r.cancelJob("server draining")
		}
		return job, 503, fmt.Errorf("service: draining, not accepting jobs")
	}
	// Stamped before the send: a worker may dequeue the instant the
	// send lands, and the dequeued stamp must never precede queued.
	job.stampQueued()
	select {
	case s.queue <- job:
		s.mu.Unlock()
		job.lg.Debug(context.Background(), "job.queued")
		return job, 0, nil
	default:
		s.mu.Unlock()
		// Admission control: the queue is full. The riders are retained
		// as canceled so the clients can inspect the rejection.
		for _, r := range s.dropFlight(f) {
			r.cancelJob("queue full")
		}
		return job, 429, fmt.Errorf("service: job queue full (depth %d)", s.cfg.QueueDepth)
	}
}

// lookup returns the job by id.
func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}
