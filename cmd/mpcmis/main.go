// Command mpcmis computes a maximal independent set with the paper's
// O(log log Δ)-round algorithm, on either an edge-list file or a
// generated random graph, and reports the audited model costs.
//
// Usage:
//
//	mpcmis -input graph.txt            # edge-list file ("u v" per line)
//	mpcmis -n 10000 -p 0.01            # G(n, p) instance
//	mpcmis -n 4096 -p 0.02 -clique     # CONGESTED-CLIQUE simulation
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"mpcgraph"
	"mpcgraph/internal/graphio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpcmis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpcmis", flag.ContinueOnError)
	var (
		input  = fs.String("input", "", "edge-list file; empty generates G(n,p)")
		n      = fs.Int("n", 1<<12, "vertices for the generated instance")
		p      = fs.Float64("p", 0.01, "edge probability for the generated instance")
		seed   = fs.Uint64("seed", 1, "random seed")
		clique = fs.Bool("clique", false, "simulate in the CONGESTED-CLIQUE model")
		strict = fs.Bool("strict", false, "fail on any memory/bandwidth violation")
		out    = fs.String("out", "", "write MIS vertex ids to this file ('-' for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := loadOrGenerate(*input, *n, *p, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// The model is an option of the unified Solve pipeline, not a
	// separate entry point.
	opts := mpcgraph.Options{Seed: *seed, Strict: *strict}
	if *clique {
		opts.Model = mpcgraph.ModelCongestedClique
	}
	rep, err := mpcgraph.Solve(context.Background(), g, mpcgraph.ProblemMIS, opts)
	if err != nil {
		return err
	}
	if !mpcgraph.IsMaximalIndependentSet(g, rep.InMIS) {
		return fmt.Errorf("internal error: output failed validation")
	}
	size := 0
	for _, in := range rep.InMIS {
		if in {
			size++
		}
	}
	model := "MPC"
	if *clique {
		model = "CONGESTED-CLIQUE"
	}
	fmt.Printf("MIS: size=%d (validated maximal independent set)\n", size)
	fmt.Printf("%s cost: rounds=%d phases=%d maxMachineLoad=%d words totalComm=%d words\n",
		model, rep.Rounds, rep.Phases, rep.MaxMachineWords, rep.TotalWords)

	if *out != "" {
		return writeSet(*out, rep.InMIS)
	}
	return nil
}

func loadOrGenerate(path string, n int, p float64, seed uint64) (*mpcgraph.Graph, error) {
	if path == "" {
		return mpcgraph.RandomGraph(n, p, seed), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graphio.ReadEdgeList(f)
}

func writeSet(path string, set []bool) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	for v, in := range set {
		if in {
			if _, err := fmt.Fprintln(w, v); err != nil {
				return err
			}
		}
	}
	return nil
}
