// Quickstart: build a graph, run every algorithm of the library once, and
// print sizes plus the simulated MPC round counts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpcgraph"
)

func main() {
	// A random graph on 4096 vertices with expected degree ~16.
	g := mpcgraph.RandomGraph(4096, 16.0/4096, 42)
	fmt.Printf("input: %d vertices, %d edges, max degree %d\n\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// Workers: 0 runs every round body on all cores; Workers: 1 forces
	// the sequential path. Either way the results are bit-identical —
	// only the wall-clock time changes.
	opts := mpcgraph.Options{Seed: 7, Eps: 0.1, Workers: 0}

	// Maximal independent set in O(log log Δ) MPC rounds (Theorem 1.1).
	misRes, err := mpcgraph.MIS(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	misSize := 0
	for _, in := range misRes.InMIS {
		if in {
			misSize++
		}
	}
	fmt.Printf("MIS:            size %5d   rounds %4d   phases %d\n",
		misSize, misRes.Stats.Rounds, misRes.Phases)

	// (2+eps)-approximate maximum matching (Theorem 1.2).
	mRes, err := mpcgraph.ApproxMaxMatching(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matching 2+eps: size %5d   rounds %4d\n", mRes.M.Size(), mRes.Stats.Rounds)

	// (1+eps)-approximate maximum matching (Corollary 1.3).
	bRes, err := mpcgraph.OnePlusEpsMatching(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matching 1+eps: size %5d   rounds %4d\n", bRes.M.Size(), bRes.Stats.Rounds)

	// (2+eps)-approximate minimum vertex cover (Theorem 1.2).
	cRes, err := mpcgraph.ApproxMinVertexCover(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	coverSize := 0
	for _, in := range cRes.InCover {
		if in {
			coverSize++
		}
	}
	fmt.Printf("vertex cover:   size %5d   rounds %4d   dual lower bound %.0f\n",
		coverSize, cRes.Stats.Rounds, cRes.FractionalWeight)

	// Every output is validated.
	fmt.Printf("\nvalidated: MIS=%v matching=%v cover=%v\n",
		mpcgraph.IsMaximalIndependentSet(g, misRes.InMIS),
		mpcgraph.IsMatching(g, bRes.M),
		mpcgraph.IsVertexCover(g, cRes.InCover))
}
