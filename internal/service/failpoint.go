package service

import (
	"fmt"
	"strings"
	"time"
)

// Failpoints are the fault-injection facility behind `make chaos-smoke`
// and the resilience tests: named hooks at which the daemon injects a
// failure or a delay it would otherwise only exhibit under real
// hardware faults or load. They are strictly a test facility — the
// daemon enables them only when the MPCGRAPHD_FAILPOINTS environment
// variable is set (see runServe) or when a test sets Config.Failpoints
// directly — and they never change what a run computes, only whether
// and when the surrounding machinery fails.
//
// Catalog (comma-separated "name" or "name=value" entries):
//
//	solve-delay=<duration>  sleep before every Solve (canceled jobs skip
//	                        the remainder of the delay); makes queue
//	                        occupancy, SIGKILL-mid-queue and coalescing
//	                        windows deterministic
//	solve-stall             block every Solve until its job is canceled
//	                        (the "stuck solve" fault)
//	disk-write-error        every disk-tier write fails with an injected
//	                        error, driving the degraded-cache path
//	scan-corrupt            the startup scan treats every persisted
//	                        entry as corrupt and quarantines it
type failpoints struct {
	vals map[string]string
}

// parseFailpoints parses the comma-separated spec. An empty spec yields
// nil, which every method treats as "all failpoints disabled".
func parseFailpoints(spec string) (*failpoints, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	fp := &failpoints{vals: make(map[string]string)}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, _ := strings.Cut(entry, "=")
		switch name {
		case "solve-delay":
			if _, err := time.ParseDuration(val); err != nil {
				return nil, fmt.Errorf("service: failpoint %s needs a duration: %v", name, err)
			}
		case "solve-stall", "disk-write-error", "scan-corrupt":
		default:
			return nil, fmt.Errorf("service: unknown failpoint %q (see the failpoint catalog in docs/service.md)", name)
		}
		fp.vals[name] = val
	}
	return fp, nil
}

// enabled reports whether the named failpoint is armed. Nil-safe.
func (fp *failpoints) enabled(name string) bool {
	if fp == nil {
		return false
	}
	_, ok := fp.vals[name]
	return ok
}

// duration returns the parsed value of a duration-valued failpoint.
func (fp *failpoints) duration(name string) (time.Duration, bool) {
	if fp == nil {
		return 0, false
	}
	raw, ok := fp.vals[name]
	if !ok {
		return 0, false
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, false
	}
	return d, true
}
