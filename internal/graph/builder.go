package graph

import (
	"errors"
	"fmt"
	"sort"

	"mpcgraph/internal/par"
)

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges are deduplicated at Build time; self-loops are rejected eagerly
// because no algorithm in the paper is defined on them.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// NumVertices returns the number of vertices the built graph will have.
func (b *Builder) NumVertices() int { return b.n }

// AddEdge records the undirected edge {u, v}. It panics on out-of-range
// endpoints or self-loops; both indicate caller bugs rather than runtime
// conditions.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{u, v})
}

// Build constructs the graph, deduplicating parallel edges. It runs on
// all cores; BuildWorkers takes an explicit worker count.
func (b *Builder) Build() (*Graph, error) {
	return b.BuildWorkers(0)
}

// BuildWorkers is Build with an explicit Workers knob (0 = all cores,
// 1 = sequential). The edge list is parallel-merge-sorted, then the CSR
// arrays are built with a sharded counting sort: each worker counts the
// per-vertex degrees of its edge shard, the shard-order prefix sums fix
// every worker's write cursors, and the fill lands each adjacency entry
// exactly where the sequential pass would — the output is bit-identical
// for every worker count.
func (b *Builder) BuildWorkers(workers int) (*Graph, error) {
	if b.n == 0 && len(b.edges) > 0 {
		return nil, errors.New("graph: edges on zero vertices")
	}
	par.Sort(workers, b.edges, func(x, y [2]int32) bool {
		if x[0] != y[0] {
			return x[0] < y[0]
		}
		return x[1] < y[1]
	})
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			dedup = append(dedup, e)
		}
	}
	b.edges = dedup

	m := len(b.edges)
	shards := par.ShardCount(workers, m)
	// counts[w][v] = adjacency entries vertex v receives from shard w.
	counts := make([][]int32, shards)
	for w := range counts {
		counts[w] = make([]int32, b.n)
	}
	par.For(workers, m, func(lo, hi, w int) {
		c := counts[w]
		for _, e := range b.edges[lo:hi] {
			c[e[0]]++
			c[e[1]]++
		}
	})
	offsets := make([]int32, b.n+1)
	// cursors[w][v] = first slot of v's list that shard w writes; shards
	// write in shard order, so the fill reproduces the sequential entry
	// order exactly.
	cursors := make([][]int32, shards)
	for w := range cursors {
		cursors[w] = make([]int32, b.n)
	}
	for v := 0; v < b.n; v++ {
		deg := int32(0)
		for w := 0; w < shards; w++ {
			cursors[w][v] = deg
			deg += counts[w][v]
		}
		offsets[v+1] = offsets[v] + deg
	}
	adj := make([]int32, 2*m)
	par.For(workers, m, func(lo, hi, w int) {
		cur := cursors[w]
		for _, e := range b.edges[lo:hi] {
			u, v := e[0], e[1]
			adj[offsets[u]+cur[u]] = v
			cur[u]++
			adj[offsets[v]+cur[v]] = u
			cur[v]++
		}
	})
	g := &Graph{n: b.n, m: m, offsets: offsets, adj: adj}
	// Each per-vertex list must be sorted; inputs were sorted by (u,v) so
	// the lists of smaller endpoints are sorted, but entries pointing back
	// from larger endpoints interleave. Sort each list.
	par.For(workers, b.n, func(lo, hi, _ int) {
		for v := lo; v < hi; v++ {
			nb := g.adj[g.offsets[v]:g.offsets[v+1]]
			sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		}
	})
	return g, nil
}

// MustBuild is Build for programmatic construction where failure is a bug.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges constructs a graph directly from an edge list.
func FromEdges(n int, edges [][2]int32) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || int(e[0]) >= n || int(e[1]) >= n || e[0] == e[1] {
			return nil, fmt.Errorf("graph: invalid edge {%d,%d} for n=%d", e[0], e[1], n)
		}
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
