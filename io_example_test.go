package mpcgraph_test

// Godoc examples for the scenario engine: the workload catalog and the
// portable file formats. Like example_test.go, the Output comments are
// asserted by `go test`, so these pin the catalog names and the
// file round-trip behavior with fixed seeds.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"slices"

	"mpcgraph"
)

// ExampleSolve_fromFile loads an instance from disk (any supported
// format, here MatrixMarket) and solves it — the library half of
// `mpcgraph solve -problem mis -in web.mtx`.
func ExampleSolve_fromFile() {
	dir, err := os.MkdirTemp("", "mpcgraph-example")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "web.mtx")

	g := mpcgraph.RandomGraph(1000, 0.01, 42)
	if err := mpcgraph.WriteInstanceFile(path, g); err != nil {
		fmt.Println("error:", err)
		return
	}
	loaded, err := mpcgraph.ReadInstanceFile(path)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep, err := mpcgraph.Solve(context.Background(), loaded, mpcgraph.ProblemMIS, mpcgraph.Options{Seed: 7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The file round trip reconstructs the exact instance, so the
	// audited costs are bit-identical to solving g directly.
	direct, err := mpcgraph.Solve(context.Background(), g, mpcgraph.ProblemMIS, mpcgraph.Options{Seed: 7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("same rounds:", rep.Rounds == direct.Rounds)
	fmt.Println("same communication:", rep.TotalWords == direct.TotalWords)
	fmt.Println("same MIS:", slices.Equal(rep.InMIS, direct.InMIS))
	// Output:
	// same rounds: true
	// same communication: true
	// same MIS: true
}

// ExampleGenerateScenario materializes a catalog workload and feeds it
// to Solve — the library half of `mpcgraph solve -scenario ...`.
func ExampleGenerateScenario() {
	in, err := mpcgraph.GenerateScenario("ring-of-cliques", 120, 1, map[string]float64{"clique": 6})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	g := in.(*mpcgraph.Graph)
	rep, err := mpcgraph.Solve(context.Background(), g, mpcgraph.ProblemMIS, mpcgraph.Options{Seed: 3})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("n:", g.NumVertices())
	fmt.Println("max degree is the clique size:", g.MaxDegree() == 6)
	fmt.Println("valid:", mpcgraph.IsMaximalIndependentSet(g, rep.InMIS))
	// Output:
	// n: 120
	// max degree is the clique size: true
	// valid: true
}

// ExampleScenarios enumerates the workload catalog, which is stable and
// sorted like the algorithm registry.
func ExampleScenarios() {
	names := mpcgraph.Scenarios()
	fmt.Println("sorted:", slices.IsSorted(names))
	fmt.Println("has rmat:", slices.Contains(names, "rmat"))
	fmt.Println("has a weighted recipe:", slices.Contains(names, "weighted-gnp"))
	// Output:
	// sorted: true
	// has rmat: true
	// has a weighted recipe: true
}

// ExampleWriteInstanceFile round-trips a weighted instance through the
// weighted edge-list format; weights survive exactly.
func ExampleWriteInstanceFile() {
	dir, err := os.MkdirTemp("", "mpcgraph-example")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "prices.wel")

	b := mpcgraph.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	wg, err := mpcgraph.NewWeightedGraph(b.MustBuild(), []float64{1.25, 10})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := mpcgraph.WriteInstanceFile(path, wg); err != nil {
		fmt.Println("error:", err)
		return
	}
	loaded, err := mpcgraph.ReadInstanceFile(path)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	wg2 := loaded.(*mpcgraph.WeightedGraph)
	fmt.Println("weight of {0,1}:", wg2.EdgeWeight(0, 1))
	fmt.Println("weight of {1,2}:", wg2.EdgeWeight(1, 2))
	// Output:
	// weight of {0,1}: 1.25
	// weight of {1,2}: 10
}
