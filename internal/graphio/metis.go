package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mpcgraph/internal/graph"
)

// METIS/Chaco adjacency format:
//
//	% <comment>
//	<n> <m> [<fmt>]
//	<neighbors of vertex 1>
//	...
//	<neighbors of vertex n>
//
// Vertices are 1-based; each undirected edge appears in both endpoint
// lines; a blank line is a vertex with no neighbors, so blank lines are
// significant after the header. The fmt flag is the standard 3-digit
// code: only 0 (plain) and 1 (edge weights, "v1 w1 v2 w2 ...") are
// supported — vertex weights and sizes are rejected. Deviating from the
// integer-weight METIS spec, weights are parsed and written as positive
// reals so weighted instances round-trip exactly. The total number of
// adjacency entries must be 2m and the two mentions of an edge must
// agree on the weight. See docs/formats.md.

func readMETIS(r io.Reader) (*Data, error) {
	sc := newScanner(r)
	lineNo := 0
	// Header: the first non-comment line. Comments are only skipped
	// before the header and between vertex lines would change vertex
	// numbering, so after the header only '%'-prefixed lines are skipped.
	var header []string
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue
		}
		if line == "" {
			return nil, fmt.Errorf("graphio: line %d: blank line before METIS header", lineNo)
		}
		header = strings.Fields(line)
		break
	}
	if header == nil {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
		return nil, fmt.Errorf("graphio: missing METIS header")
	}
	if len(header) < 2 || len(header) > 3 {
		return nil, fmt.Errorf("graphio: line %d: METIS header wants '<n> <m> [<fmt>]', got %d fields", lineNo, len(header))
	}
	n, err := parseVertexCount(header[0], lineNo)
	if err != nil {
		return nil, err
	}
	m64, err := strconv.ParseInt(header[1], 10, 64)
	if err != nil || m64 < 0 {
		return nil, fmt.Errorf("graphio: line %d: bad edge count %q", lineNo, header[1])
	}
	weighted := false
	if len(header) == 3 {
		switch strings.TrimLeft(header[2], "0") {
		case "":
			// fmt 0/00/000: plain.
		case "1":
			weighted = true
		default:
			return nil, fmt.Errorf("graphio: line %d: unsupported METIS fmt %q (only edge weights, fmt 001, are supported)", lineNo, header[2])
		}
	}

	var (
		edges   [][2]int32
		weights []float64
		b       *graph.Builder
		entries int64
	)
	if !weighted {
		b = graph.NewBuilder(n)
	}
	for v := 0; v < n; {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("graphio: %w", err)
			}
			return nil, fmt.Errorf("graphio: METIS file ends after %d of %d vertex lines", v, n)
		}
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "%") {
			continue
		}
		u := int32(v)
		fields := strings.Fields(line)
		if weighted && len(fields)%2 != 0 {
			return nil, fmt.Errorf("graphio: line %d: odd token count %d on weighted METIS vertex line", lineNo, len(fields))
		}
		step := 1
		if weighted {
			step = 2
		}
		for i := 0; i < len(fields); i += step {
			t, err := parseVertex(fields[i], 1, n, lineNo)
			if err != nil {
				return nil, err
			}
			if t == u {
				return nil, fmt.Errorf("graphio: line %d: self-loop at %d", lineNo, u+1)
			}
			entries++
			if weighted {
				wt, err := parseWeight(fields[i+1], lineNo)
				if err != nil {
					return nil, err
				}
				edges = append(edges, [2]int32{u, t})
				weights = append(weights, wt)
			} else {
				b.AddEdge(u, t) // both mentions collapse at Build
			}
		}
		v++
	}
	// Only comments and trailing whitespace may follow the last vertex.
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "%") {
			return nil, fmt.Errorf("graphio: line %d: content after %d METIS vertex lines", lineNo, n)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if entries != 2*m64 {
		return nil, fmt.Errorf("graphio: %d adjacency entries but METIS header declared m=%d (want %d entries)", entries, m64, 2*m64)
	}
	if weighted {
		return assembleWeighted(n, edges, weights)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return Unweighted(g), nil
}

func writeMETIS(w io.Writer, d *Data) error {
	g := d.G
	bw := bufio.NewWriter(w)
	format := ""
	if d.WG != nil {
		format = " 001"
	}
	if _, err := fmt.Fprintf(bw, "%d %d%s\n", g.NumVertices(), g.NumEdges(), format); err != nil {
		return err
	}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for i, u := range g.Neighbors(v) {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(u) + 1)); err != nil {
				return err
			}
			if d.WG != nil {
				if _, err := fmt.Fprintf(bw, " %s", formatWeight(d.WG.EdgeWeight(v, u))); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
