// Network monitoring: place traffic monitors on routers so that every
// link has a monitored endpoint — a minimum vertex cover. The topology is
// a metro-style grid backbone with long-haul shortcuts. The paper's
// (2+ε)-approximate cover (Theorem 1.2) comes with a per-run certificate:
// the dual fractional matching weight lower-bounds any cover, so the
// printed ratio bound holds for this instance unconditionally.
//
//	go run ./examples/netmonitor
package main

import (
	"fmt"
	"log"

	"mpcgraph"
)

func main() {
	const rows, cols = 60, 80
	n := rows * cols
	b := mpcgraph.NewGraphBuilder(n)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	// Grid backbone.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	// Long-haul shortcuts between random routers.
	state := uint64(2463534242)
	next := func(bound int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(bound))
	}
	for k := 0; k < n/4; k++ {
		u, v := int32(next(n)), int32(next(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.MustBuild()
	fmt.Printf("topology: %d routers, %d links\n", g.NumVertices(), g.NumEdges())

	res, err := mpcgraph.ApproxMinVertexCover(g, mpcgraph.Options{Seed: 3, Eps: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	if !mpcgraph.IsVertexCover(g, res.InCover) {
		log.Fatal("cover failed validation")
	}
	monitors := 0
	for _, in := range res.InCover {
		if in {
			monitors++
		}
	}
	fmt.Printf("monitors placed: %d (every link observed)\n", monitors)
	fmt.Printf("certificate: any placement needs >= %.0f monitors (dual bound), so this run is within %.2fx of optimal\n",
		res.FractionalWeight, float64(monitors)/res.FractionalWeight)
	fmt.Printf("cluster cost: %d MPC rounds, max %d words per machine\n",
		res.Stats.Rounds, res.Stats.MaxMachineWords)
}
