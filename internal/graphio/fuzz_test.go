package graphio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList exercises the parser with arbitrary inputs: it must
// never panic, and on success the resulting graph must survive a
// write/read round trip unchanged. Run with `go test -fuzz=FuzzRead` for
// active fuzzing; the seed corpus doubles as a regression suite.
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"",
		"n 4\n0 1\n2 3\n",
		"# comment only\n",
		"0 1\n1 0\n0 1\n",
		"n 0\n",
		"n 10\n\n\n9 8\n",
		"0 999999\n",
		"n x\n",
		"1 1\n",
		"a b\n",
		"0 1 2\n",
		"n 2\n0 5\n",
		"-3 4\n",
		"n 3\n0 1\nn 5\n2 4\n",
		strings.Repeat("0 1\n", 1000),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if declaresHugeGraph(data) {
			return
		}
		// The fast reader must match the scanner reference bit for bit
		// on arbitrary bytes — same graph or same error string.
		for _, workers := range []int{1, 4} {
			readBoth(t, string(data), false, workers)
		}
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just need to not panic
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip re-read: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)",
				g.NumVertices(), g.NumEdges(), g2.NumVertices(), g2.NumEdges())
		}
	})
}

// declaresHugeGraph reports whether data contains a digit run of 7 or
// more characters — a vertex count or id in the millions. Such inputs
// are valid up to MaxVertices, but graph construction allocates O(n)
// memory, so a single 8-digit header would dominate the fuzz loop (and
// a 9-digit one, pre-cap, once timed out the whole run under -race);
// the fuzzers screen them out rather than spend their budget on
// allocator stress.
func declaresHugeGraph(data []byte) bool {
	run := 0
	for _, b := range data {
		if b >= '0' && b <= '9' {
			if run++; run >= 7 {
				return true
			}
		} else {
			run = 0
		}
	}
	return false
}

// fuzzFormat is the shared oracle for the structured-format fuzzers: a
// successful parse must survive a write/read round trip with the exact
// same instance (shape and weights); a rejected input must merely not
// panic.
func fuzzFormat(t *testing.T, data []byte, format Format) {
	t.Helper()
	if declaresHugeGraph(data) {
		return
	}
	d, err := Read(bytes.NewReader(data), format)
	if err != nil {
		return
	}
	var buf bytes.Buffer
	if err := Write(&buf, d, format); err != nil {
		t.Fatalf("write after successful read: %v", err)
	}
	d2, err := Read(bytes.NewReader(buf.Bytes()), format)
	if err != nil {
		t.Fatalf("round trip re-read: %v\nrendered:\n%s", err, buf.String())
	}
	if !sameData(d, d2) {
		t.Fatalf("round trip changed the instance:\nrendered:\n%s", buf.String())
	}
}

// FuzzReadWEL exercises the weighted-edge-list reader, mirroring
// FuzzReadEdgeList, so every structured graphio reader is fuzzed. Run
// with `go test -fuzz=FuzzReadWEL`.
func FuzzReadWEL(f *testing.F) {
	seeds := []string{
		"",
		"n 4\n0 1 1.5\n2 3 0.25\n",
		"# comment only\n",
		"0 1 2\n1 0 2\n0 1 2\n",
		"0 1 2\n1 0 3\n", // duplicate edge, conflicting weight
		"n 0\n",
		"0 1 0\n",    // zero weight
		"0 1 -2\n",   // negative weight
		"0 1 nan\n",  // not finite
		"0 1 +Inf\n", // not finite
		"0 1 1e309\n",
		"0 1 1e-300\n",
		"0 1 0.1\n2 3 3.0000000000000004\n", // weights needing exact round-trip
		"1 1 1\n",                           // self-loop
		"n 2\n0 5 1\n",                      // out of declared range
		"0 1\n",                             // missing weight column
		"0 1 2 3\n",                         // extra column
		"a b c\n",
		"n x\n",
		"n 3\n0 1 1\nn 5\n2 4 1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if !declaresHugeGraph(data) {
			for _, workers := range []int{1, 4} {
				readBoth(t, string(data), true, workers)
			}
		}
		fuzzFormat(t, data, FormatWeightedEdgeList)
	})
}

// FuzzReadDIMACS exercises the DIMACS edge-format reader, mirroring
// FuzzReadEdgeList. Run with `go test -fuzz=FuzzReadDIMACS`.
func FuzzReadDIMACS(f *testing.F) {
	seeds := []string{
		"",
		"p edge 0 0\n",
		"c comment\np edge 4 2\ne 1 2\ne 3 4\n",
		"p col 3 1\ne 1 3\n",
		"p edge 3 3\ne 1 2\ne 2 1\ne 1 2\n",
		"p edge 2 1\ne 1 1\n",
		"p edge 2 1\ne 0 1\n",
		"p edge 2 1\ne 1 99\n",
		"p edge 2 2\ne 1 2\n",
		"e 1 2\n",
		"p edge 2 1\np edge 2 1\ne 1 2\n",
		"p edge x y\n",
		"x 1 2\n",
		"c only a comment\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) { fuzzFormat(t, data, FormatDIMACS) })
}

// FuzzReadMETIS exercises the METIS adjacency reader, mirroring
// FuzzReadEdgeList. Run with `go test -fuzz=FuzzReadMETIS`.
func FuzzReadMETIS(f *testing.F) {
	seeds := []string{
		"",
		"0 0\n",
		"2 1\n2\n1\n",
		"3 2\n2 3\n1\n1\n",
		"% comment\n3 1\n2\n1\n\n",
		"2 1 001\n2 1.5\n1 1.5\n",
		"2 1 001\n2 1.5\n1 2.5\n",
		"2 1 011\n1 2\n1 1\n",
		"3 2\n2\n1\n",
		"2 1\n2\n1\n3\n",
		"2 1\n1\n2\n",
		"2 1\n2 1\n",
		"x y\n",
		"2 1 001\n2 0\n1 0\n",
		"4 2\n\n3\n2\n\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) { fuzzFormat(t, data, FormatMETIS) })
}

// FuzzReadMatrixMarket exercises the MatrixMarket coordinate reader.
// Run with `go test -fuzz=FuzzReadMatrixMarket`.
func FuzzReadMatrixMarket(f *testing.F) {
	seeds := []string{
		"",
		"%%MatrixMarket matrix coordinate pattern symmetric\n0 0 0\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 1.5\n",
		"%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 2 3\n2 1 3\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.5\n2 1 2.5\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n2 3 1\n2 1\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 1\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n2 2 2\n2 1\n",
		"%%MatrixMarket matrix coordinate complex symmetric\n2 2 1\n2 1 1 0\n",
		"%%MatrixMarket matrix array real general\n2 2\n1\n0\n0\n1\n",
		"% not a banner\n2 2 1\n2 1\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n\n3 3 1\n3 1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) { fuzzFormat(t, data, FormatMatrixMarket) })
}
