module mpcgraph

go 1.24
