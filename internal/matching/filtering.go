package matching

import (
	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

// FilterResult is the output of the [LMSV11] filtering algorithm.
type FilterResult struct {
	// M is the computed maximal matching.
	M graph.Matching
	// Rounds counts MPC rounds (one per filtering iteration plus the
	// final gather).
	Rounds int
	// MaxSampleWords is the largest sample shipped to the coordinator.
	MaxSampleWords int64
	// RoundWords records, per round, the words shipped to the
	// coordinator (len(RoundWords) == Rounds), so callers can charge the
	// run on a metered simulator after the fact.
	RoundWords []int64
}

// FilteringMaximalMatching implements the filtering technique of
// Lattanzi, Moseley, Suri and Vassilvitskii [LMSV11], the subroutine the
// paper invokes in Section 4.4.5 for instances with small maximum
// matching and the O(log n)-round baseline of experiment E13 at memory
// Θ(n): each round samples edges that fit one machine, computes a maximal
// matching of the sample centrally, keeps it, discards edges covered by
// matched vertices, and recurses on the remainder; w.h.p. the edge count
// halves per round.
func FilteringMaximalMatching(g *graph.Graph, memoryWords int64, src *rng.Source) *FilterResult {
	res := &FilterResult{M: graph.NewMatching(g.NumVertices())}
	if memoryWords < 4 {
		memoryWords = 4
	}
	active := g.EdgeList()
	capEdges := int(memoryWords / 2)
	for len(active) > capEdges {
		res.Rounds++
		// Sample each active edge independently so the expected sample
		// fits half the machine.
		p := float64(capEdges) / (2 * float64(len(active)))
		sample := make([][2]int32, 0, capEdges)
		for _, e := range active {
			if src.Bool(p) && len(sample) < capEdges {
				sample = append(sample, e)
			}
		}
		if w := int64(2 * len(sample)); w > res.MaxSampleWords {
			res.MaxSampleWords = w
		}
		res.RoundWords = append(res.RoundWords, int64(2*len(sample)))
		// Central maximal matching of the sample over free vertices.
		for _, e := range sample {
			if res.M[e[0]] == -1 && res.M[e[1]] == -1 {
				res.M.Match(e[0], e[1])
			}
		}
		// Filter: drop edges covered by matched vertices.
		kept := active[:0]
		for _, e := range active {
			if res.M[e[0]] == -1 && res.M[e[1]] == -1 {
				kept = append(kept, e)
			}
		}
		active = kept
	}
	// Final gather: the remainder fits one machine.
	if len(active) > 0 {
		res.Rounds++
		if w := int64(2 * len(active)); w > res.MaxSampleWords {
			res.MaxSampleWords = w
		}
		res.RoundWords = append(res.RoundWords, int64(2*len(active)))
		for _, e := range active {
			if res.M[e[0]] == -1 && res.M[e[1]] == -1 {
				res.M.Match(e[0], e[1])
			}
		}
	}
	return res
}
