// Package baseline implements the classical algorithms the paper compares
// against or builds on: sequential greedy MIS and matching, Luby's MIS
// [Lub86], Israeli–Itai maximal matching [II86], Hopcroft–Karp and
// Edmonds' blossom algorithm for exact maximum matchings, Kőnig's theorem
// for exact bipartite vertex covers, and exact brute force for tiny
// graphs. The exact algorithms supply the optima against which the
// paper's approximation guarantees are measured.
package baseline

import (
	"mpcgraph/internal/graph"
)

// GreedyMIS runs the sequential greedy algorithm over the given vertex
// order: a vertex joins the independent set when no earlier neighbor
// has. With a uniformly random order this is the "randomized greedy MIS"
// the paper's Section 3 simulates.
func GreedyMIS(g *graph.Graph, order []int32) []bool {
	n := g.NumVertices()
	inMIS := make([]bool, n)
	blocked := make([]bool, n)
	for _, v := range order {
		if blocked[v] {
			continue
		}
		inMIS[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return inMIS
}

// GreedyMaximalMatching scans edges in the given order and adds every
// edge whose endpoints are both free. Any scan order yields a maximal
// matching, hence a 2-approximate maximum matching and (via endpoints) a
// 2-approximate vertex cover.
func GreedyMaximalMatching(g *graph.Graph, edges [][2]int32) graph.Matching {
	m := graph.NewMatching(g.NumVertices())
	for _, e := range edges {
		if m[e[0]] == -1 && m[e[1]] == -1 {
			m.Match(e[0], e[1])
		}
	}
	return m
}

// VertexCoverFromMatching returns the endpoint set of a matching, which
// is a vertex cover when the matching is maximal (the classical
// 2-approximation the paper cites from [Lub86]-style reductions).
func VertexCoverFromMatching(n int, m graph.Matching) []bool {
	cover := make([]bool, n)
	for v, u := range m {
		if u >= 0 {
			cover[v] = true
		}
	}
	return cover
}

// GreedyDependencyDepth returns the parallel dependency depth of greedy
// MIS under the given order: the number of peeling rounds where each
// round removes, in parallel, every vertex that is a local minimum (in
// rank) among its still-present neighbors. Fischer and Noever [FN18]
// proved this is Θ(log n) for a random order; experiment E14 contrasts it
// with the O(log log Δ) phases of the paper's simulation.
func GreedyDependencyDepth(g *graph.Graph, order []int32) int {
	n := g.NumVertices()
	rank := make([]int32, n)
	for i, v := range order {
		rank[v] = int32(i)
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n
	depth := 0
	for remaining > 0 {
		depth++
		// A vertex resolves this round when its rank is smaller than the
		// rank of all alive neighbors: it then either joins the MIS or is
		// adjacent to a joining smaller-rank vertex. Both it and, on
		// joining, its neighbors leave the instance. This mirrors the
		// [BFS12]/[FN18] round structure.
		var joining []int32
		for v := int32(0); v < int32(n); v++ {
			if !alive[v] {
				continue
			}
			isMin := true
			for _, u := range g.Neighbors(v) {
				if alive[u] && rank[u] < rank[v] {
					isMin = false
					break
				}
			}
			if isMin {
				joining = append(joining, v)
			}
		}
		if len(joining) == 0 {
			break // disconnected leftovers; cannot happen with finite ranks
		}
		for _, v := range joining {
			if !alive[v] {
				continue
			}
			alive[v] = false
			remaining--
			for _, u := range g.Neighbors(v) {
				if alive[u] {
					alive[u] = false
					remaining--
				}
			}
		}
	}
	return depth
}
