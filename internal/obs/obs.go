// Package obs is the stdlib-only telemetry core shared by the daemon
// and the CLI: lock-cheap fixed-bucket latency histograms with
// Prometheus text exposition and snapshot quantile estimation, a
// leveled structured logger with context-threaded correlation fields,
// Go runtime telemetry, and a parser/validator for the Prometheus text
// format (used by `mpcgraph top` and the service-smoke gate).
//
// Clock discipline: this package touches the host clock only to form
// monotonic durations — an observation is time.Since of an earlier
// stamp, and a log line carries seconds since the logger was created,
// never a wall-clock timestamp. That is the contract under which the
// no-wall-clock analyzer (docs/analysis.md) allows time.Now here: host
// time measures latency, it never enters payloads, audited costs, or
// cache keys. Log shippers that need absolute timestamps stamp lines
// on arrival, where clock skew is their problem, not the daemon's.
package obs
