package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mpcgraph"
)

// JobState is the lifecycle of one submitted job:
//
//	queued -> running -> done | failed
//	queued | running  -> canceled
//
// A cache hit completes the job as done at submission time without ever
// entering the queue (its view carries cacheHit: true).
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// maxTraceEvents bounds the per-job trace buffer. The paper's
// algorithms run O(log log n)–O(log n) metered steps, so real runs stay
// far below this; the bound only guards the resident daemon against a
// pathological workload. Overflow drops the newest events and is
// reported in the job view.
const maxTraceEvents = 1 << 16

// Job is one submitted solve. Mutable state is guarded by mu; the
// resolved request fields are immutable after submission.
type Job struct {
	ID string

	// Immutable after resolve.
	problem  mpcgraph.Problem
	model    mpcgraph.Model
	opts     mpcgraph.Options
	instance mpcgraph.Instance
	source   string // human-readable instance origin for the job view
	timeout  time.Duration
	noCache  bool
	cacheKey string

	mu       sync.Mutex
	state    JobState
	err      string
	report   *mpcgraph.Report
	cacheHit bool
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc

	// Trace buffer: appended by the solve's Trace callback, replayed and
	// followed by the streaming endpoint. changed is closed and replaced
	// on every append and on the terminal transition, so followers can
	// select on it together with their client's context.
	trace        []mpcgraph.TraceEvent
	traceDropped int
	changed      chan struct{}
}

func newJob(id string) *Job {
	return &Job{
		ID:      id,
		state:   StateQueued,
		created: time.Now(),
		changed: make(chan struct{}),
	}
}

// currentState reads the lifecycle state.
func (j *Job) currentState() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// terminal reports whether the job reached a final state.
func (j *Job) terminal() bool {
	switch j.currentState() {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// signalLocked wakes every trace follower; callers hold j.mu.
func (j *Job) signalLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// appendTrace is the Options.Trace callback of a running job.
func (j *Job) appendTrace(ev mpcgraph.TraceEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.trace) >= maxTraceEvents {
		j.traceDropped++
		return
	}
	j.trace = append(j.trace, ev)
	j.signalLocked()
}

// completeCached finishes a job at submission time from a cache hit.
func (j *Job) completeCached(rep *mpcgraph.Report) {
	j.mu.Lock()
	defer j.mu.Unlock()
	now := time.Now()
	j.state = StateDone
	j.report = rep
	j.cacheHit = true
	j.started = now
	j.finished = now
	j.signalLocked()
}

// cancelJob moves a queued or running job toward canceled. A queued job
// transitions immediately (the worker will skip it); a running job is
// interrupted through its context and transitions when the solver
// returns. Terminal jobs are left untouched.
func (j *Job) cancelJob(reason string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = reason
		j.finished = time.Now()
		j.signalLocked()
		return true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return true
	default:
		return false
	}
}

// run executes the job on a worker goroutine.
func (j *Job) run(s *Server) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if j.timeout > 0 {
		// The deadline runs from submission, not from pickup, so it
		// bounds the client-visible latency — queue wait included.
		ctx, cancel = context.WithDeadline(context.Background(), j.created.Add(j.timeout))
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	j.cancel = cancel
	opts := j.opts
	opts.Trace = j.appendTrace
	j.signalLocked()
	j.mu.Unlock()
	defer cancel()

	rep, err := mpcgraph.Solve(ctx, j.instance, j.problem, opts)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.report = rep
		// Even a noCache run stores its result: the flag skips the
		// lookup (forcing the cold recompute), not the refresh.
		s.cache.Put(j.cacheKey, rep)
	case ctx.Err() != nil:
		// Interrupted between metered rounds: DELETE or deadline.
		j.state = StateCanceled
		j.err = fmt.Sprintf("%v (%v)", err, ctx.Err())
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	j.signalLocked()
}

// submit resolves a request into a Job, serves it from cache when
// possible, or admits it to the queue. It returns the job and an HTTP
// status hint for failures (0 on success).
func (s *Server) submit(req *JobRequest) (*Job, int, error) {
	problem, model, opts, instance, source, err := req.resolve(s.cfg)
	if err != nil {
		return nil, requestErrorStatus(err), err
	}
	key, err := CacheKey(instance, problem, model, opts)
	if err != nil {
		return nil, 400, err
	}

	// The draining check and the queue send stay under one critical
	// section so Drain cannot close the queue between them.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, 503, fmt.Errorf("service: draining, not accepting jobs")
	}
	s.nextID++
	job := newJob(fmt.Sprintf("j%08d", s.nextID))
	job.problem, job.model, job.opts = problem, model, opts
	job.instance, job.source = instance, source
	job.timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	job.noCache = req.NoCache
	job.cacheKey = key
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.evictTerminalLocked()

	if !job.noCache {
		if rep, ok := s.cache.Get(key); ok {
			job.completeCached(rep)
			return job, 0, nil
		}
	}
	select {
	case s.queue <- job:
		return job, 0, nil
	default:
		// Admission control: the queue is full. The job is retained as
		// canceled so the client can inspect the rejection.
		job.cancelJob("queue full")
		return job, 429, fmt.Errorf("service: job queue full (depth %d)", s.cfg.QueueDepth)
	}
}

// lookup returns the job by id.
func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}
