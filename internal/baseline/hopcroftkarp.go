package baseline

import (
	"mpcgraph/internal/graph"
)

// HopcroftKarp computes a maximum matching of a bipartite graph in
// O(E sqrt(V)) time. It supplies the exact optimum for the bipartite
// approximation-ratio experiments (E4, E6, E9).
func HopcroftKarp(bg *graph.Bipartite) graph.Matching {
	n := bg.NumVertices()
	m := graph.NewMatching(n)
	const inf = int32(1 << 30)
	dist := make([]int32, n)
	queue := make([]int32, 0, n)

	// bfs layers free left vertices; returns whether an augmenting path
	// exists.
	bfs := func() bool {
		queue = queue[:0]
		for v := int32(0); v < int32(n); v++ {
			if bg.Left[v] && m[v] == -1 {
				dist[v] = 0
				queue = append(queue, v)
			} else {
				dist[v] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range bg.Neighbors(v) {
				w := m[u] // u is on the right; w is its current mate (or -1)
				if w == -1 {
					found = true
					continue
				}
				if dist[w] == inf {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	// dfs searches for an augmenting path from left vertex v along the
	// BFS layering.
	var dfs func(v int32) bool
	dfs = func(v int32) bool {
		for _, u := range bg.Neighbors(v) {
			w := m[u]
			if w == -1 || (dist[w] == dist[v]+1 && dfs(w)) {
				m[v], m[u] = u, v
				return true
			}
		}
		dist[v] = inf
		return false
	}

	for bfs() {
		for v := int32(0); v < int32(n); v++ {
			if bg.Left[v] && m[v] == -1 {
				dfs(v)
			}
		}
	}
	return m
}

// KonigVertexCover derives a minimum vertex cover of a bipartite graph
// from a maximum matching via Kőnig's theorem: let Z be the set of
// vertices reachable from free left vertices by alternating paths; the
// cover is (Left \ Z) ∪ (Right ∩ Z). Its size equals the matching size.
func KonigVertexCover(bg *graph.Bipartite, m graph.Matching) []bool {
	n := bg.NumVertices()
	inZ := make([]bool, n)
	queue := make([]int32, 0, n)
	for v := int32(0); v < int32(n); v++ {
		if bg.Left[v] && m[v] == -1 {
			inZ[v] = true
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if bg.Left[v] {
			// Travel along non-matching edges to the right.
			for _, u := range bg.Neighbors(v) {
				if m[v] != u && !inZ[u] {
					inZ[u] = true
					queue = append(queue, u)
				}
			}
		} else if w := m[v]; w != -1 && !inZ[w] {
			// Travel along the matching edge back to the left.
			inZ[w] = true
			queue = append(queue, w)
		}
	}
	cover := make([]bool, n)
	for v := int32(0); v < int32(n); v++ {
		if bg.Left[v] {
			cover[v] = !inZ[v]
		} else {
			cover[v] = inZ[v]
		}
	}
	return cover
}
