package graph

import (
	"fmt"
	"testing"

	"mpcgraph/internal/rng"
)

// benchGraph is a mid-size G(n, p) instance with ~n·√n/2 edges, the
// density regime the MIS experiments run in.
func benchGraph(n int) *Graph {
	return GNP(n, 1/float64(int(1)<<7), rng.New(99))
}

func benchWorkerCounts() []int { return []int{1, 0} }

func BenchmarkSubgraph(b *testing.B) {
	g := benchGraph(1 << 14)
	keep := make([]bool, g.NumVertices())
	src := rng.New(5)
	for i := range keep {
		keep[i] = src.Bool(0.5)
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.SubgraphWorkers(keep, w)
			}
		})
	}
}

func BenchmarkBuilderBuild(b *testing.B) {
	base := benchGraph(1 << 14)
	edges := base.EdgeList()
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bld := NewBuilder(base.NumVertices())
				for _, e := range edges {
					bld.AddEdge(e[0], e[1])
				}
				if _, err := bld.BuildWorkers(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompactInduced(b *testing.B) {
	g := benchGraph(1 << 14)
	var vertices []int32
	for v := int32(0); v < int32(g.NumVertices()); v += 2 {
		vertices = append(vertices, v)
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.CompactInducedWorkers(vertices, w)
			}
		})
	}
}

func BenchmarkLineGraph(b *testing.B) {
	// Line graphs square the size; keep the base instance moderate.
	g := GNP(1<<11, 0.01, rng.New(3))
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.LineGraphWorkers(w)
			}
		})
	}
}

func BenchmarkMaxDegreeCached(b *testing.B) {
	g := benchGraph(1 << 14)
	g.MaxDegree() // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MaxDegree()
	}
}
