package cli

import (
	"testing"
	"time"
)

// TestBackoffDeterministic: identical seeds plan identical delay
// sequences — a replayed invocation retries at the same instants.
func TestBackoffDeterministic(t *testing.T) {
	plan := func() []time.Duration {
		b := newBackoff(42, "submit", 100*time.Millisecond, 5*time.Second, 8, 0)
		var ds []time.Duration
		for {
			d, ok := b.next(0)
			if !ok {
				break
			}
			ds = append(ds, d)
		}
		return ds
	}
	a, b := plan(), plan()
	if len(a) != 8 {
		t.Fatalf("planned %d delays, want 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs between identical plans: %v vs %v", i, a[i], b[i])
		}
	}
	// The exponential envelope with [d/2, d) jitter.
	for i, d := range a {
		env := 100 * time.Millisecond << i
		if env > 5*time.Second {
			env = 5 * time.Second
		}
		if d < env/2 || d >= env {
			t.Errorf("delay %d = %v outside [%v, %v)", i, d, env/2, env)
		}
	}
}

// TestBackoffHonorsRetryAfter: the server hint replaces the planned
// delay for that attempt.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	b := newBackoff(7, "submit", 100*time.Millisecond, 5*time.Second, 4, 0)
	d, ok := b.next(3 * time.Second)
	if !ok || d != 3*time.Second {
		t.Errorf("retry-after hint not honored: %v %t", d, ok)
	}
}

// TestBackoffBudget: the budget bounds the sum of planned sleeps, and
// exhaustion is reported before the overflowing sleep, not after.
func TestBackoffBudget(t *testing.T) {
	b := newBackoff(7, "submit", 100*time.Millisecond, 5*time.Second, 100, 250*time.Millisecond)
	var total time.Duration
	n := 0
	for {
		d, ok := b.next(0)
		if !ok {
			break
		}
		total += d
		n++
	}
	if total > 250*time.Millisecond {
		t.Errorf("planned sleeps total %v, budget 250ms", total)
	}
	if n == 0 || n >= 100 {
		t.Errorf("budget allowed %d attempts", n)
	}
}
