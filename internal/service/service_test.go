package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"mpcgraph"
	"mpcgraph/internal/graphio"
	"mpcgraph/internal/registry"
	"mpcgraph/internal/scenario"
)

// newTestServer starts a draining-safe daemon around t.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain(5 * time.Second)
	})
	return s, ts
}

// idleServer builds a Server whose queue is never drained: jobs stay
// deterministically queued, which is what the cancel/admission/eviction
// tests need. Built by build, not New, so no workers exist.
func idleServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeView(t *testing.T, data []byte) *JobView {
	t.Helper()
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("bad job view %s: %v", data, err)
	}
	return &v
}

// awaitTerminal polls until the job leaves the live states.
func awaitTerminal(t *testing.T, base, id string) *JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := getBody(t, base+"/v1/jobs/"+id)
		if resp.StatusCode != 200 {
			t.Fatalf("GET job: %s: %s", resp.Status, data)
		}
		v := decodeView(t, data)
		switch v.State {
		case StateDone, StateFailed, StateCanceled:
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

// submitWait submits and waits for a terminal state.
func submitWait(t *testing.T, base string, req *JobRequest) *JobView {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/jobs", req)
	if resp.StatusCode != 201 {
		t.Fatalf("submit: %s: %s", resp.Status, data)
	}
	return awaitTerminal(t, base, decodeView(t, data).ID)
}

// goldenEntry mirrors the pinned shape of testdata/golden_reports.json.
type goldenEntry struct {
	Case            string `json:"case"`
	Rounds          int    `json:"rounds"`
	Phases          int    `json:"phases"`
	MaxMachineWords int64  `json:"maxMachineWords"`
	TotalWords      int64  `json:"totalWords"`
	Violations      int    `json:"violations"`
	SolutionHash    uint64 `json:"solutionHash"`
}

func loadGoldens(t *testing.T) map[string]goldenEntry {
	t.Helper()
	data, err := os.ReadFile("../../testdata/golden_reports.json")
	if err != nil {
		t.Fatalf("read goldens: %v", err)
	}
	var entries []goldenEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]goldenEntry, len(entries))
	for _, e := range entries {
		out[e.Case] = e
	}
	return out
}

// stripVolatile zeroes the only fields allowed to differ between a cold
// run and its cache-hit replay.
func stripVolatile(v *JobView) *JobView {
	c := *v
	c.ID = ""
	c.CacheHit = false
	c.CacheTier = TierNone // which tier served the replay is operational
	c.Coalesced = false
	c.Source = "" // scenario vs upload origin; not part of the result
	c.CreatedAt, c.StartedAt, c.FinishedAt = "", "", ""
	c.Timings = nil // lifecycle stamps are operational, never deterministic
	c.TraceLen = 0  // a cache hit replays the Report, not the trace
	if c.Report != nil {
		r := *c.Report
		r.WallMs = 0
		c.Report = &r
	}
	return &c
}

// TestEveryPairCacheHitBitIdentical is the acceptance criterion: for
// every registered (problem, model) pair, a cache hit returns a Report
// bit-identical to the cold run — asserted field by field on the wire
// view, on the rendered solution bytes, and against the golden suite's
// pinned costs and solution hash.
func TestEveryPairCacheHitBitIdentical(t *testing.T) {
	goldens := loadGoldens(t)
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, pair := range registry.Pairs() {
		pair := pair
		t.Run(pair.String(), func(t *testing.T) {
			scen := "gnp"
			if pair.Problem.String() == "weighted-matching" {
				scen = "weighted-gnp"
			}
			req := &JobRequest{
				Problem:  pair.Problem.String(),
				Model:    pair.Model.String(),
				Scenario: &ScenarioRequest{Name: scen, N: 600, Seed: 7},
				Options:  OptionsRequest{Seed: 7},
			}
			cold := submitWait(t, ts.URL, req)
			if cold.State != StateDone {
				t.Fatalf("cold run: state %s (%s)", cold.State, cold.Error)
			}
			if cold.CacheHit {
				t.Fatalf("cold run claimed a cache hit")
			}
			if cold.Report == nil {
				t.Fatalf("cold run has no report")
			}

			hit := submitWait(t, ts.URL, req)
			if !hit.CacheHit {
				t.Fatalf("re-submit was not a cache hit")
			}
			if hit.CacheKey != cold.CacheKey {
				t.Fatalf("cache key changed between identical submissions")
			}
			coldJSON, _ := json.Marshal(stripVolatile(cold))
			hitJSON, _ := json.Marshal(stripVolatile(hit))
			if !bytes.Equal(coldJSON, hitJSON) {
				t.Errorf("cache hit is not bit-identical to the cold run:\n cold: %s\n hit:  %s", coldJSON, hitJSON)
			}

			_, coldSol := getBody(t, ts.URL+"/v1/jobs/"+cold.ID+"/solution")
			_, hitSol := getBody(t, ts.URL+"/v1/jobs/"+hit.ID+"/solution")
			if !bytes.Equal(coldSol, hitSol) {
				t.Errorf("cache hit solution differs from cold-run solution")
			}

			// The golden suite pins this exact (scenario, n, seed, pair)
			// cell, so the service's wire report must reproduce it.
			caseName := fmt.Sprintf("%s-n600-seed7/%s", scen, pair)
			g, ok := goldens[caseName]
			if !ok {
				t.Fatalf("no golden case %q", caseName)
			}
			r := cold.Report
			if r.Rounds != g.Rounds || r.Phases != g.Phases ||
				r.MaxMachineWords != g.MaxMachineWords || r.TotalWords != g.TotalWords ||
				r.Violations != g.Violations {
				t.Errorf("costs diverge from golden %s:\n got:  %+v\n want: %+v", caseName, r, g)
			}
			if want := fmt.Sprintf("%016x", g.SolutionHash); r.SolutionHash != want {
				t.Errorf("solution hash %s, golden %s", r.SolutionHash, want)
			}
		})
	}
}

// TestScenarioAndUploadShareCacheEntries: the cache is content-
// addressed, so the same logical instance hits whether it arrived as a
// catalog scenario or as an uploaded file in any format.
func TestScenarioAndUploadShareCacheEntries(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	scenarioReq := &JobRequest{
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 300, Seed: 9},
		Options:  OptionsRequest{Seed: 9},
	}
	cold := submitWait(t, ts.URL, scenarioReq)
	if cold.State != StateDone || cold.CacheHit {
		t.Fatalf("cold scenario run: state %s cacheHit %t", cold.State, cold.CacheHit)
	}

	in, err := mpcgraph.GenerateScenario("gnp", 300, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graphio.Write(&buf, graphio.Unweighted(in.(*mpcgraph.Graph)), graphio.FormatEdgeList); err != nil {
		t.Fatal(err)
	}
	uploadReq := &JobRequest{
		Problem: "mis",
		Graph:   &GraphRequest{Format: "el", Content: buf.String()},
		Options: OptionsRequest{Seed: 9},
	}
	hit := submitWait(t, ts.URL, uploadReq)
	if !hit.CacheHit {
		t.Fatalf("upload of the same instance missed the cache (keys %s vs %s)", cold.CacheKey, hit.CacheKey)
	}
	if !bytes.Equal(
		mustJSON(t, stripVolatile(cold)),
		mustJSON(t, stripVolatile(hit)),
	) {
		t.Errorf("upload cache hit differs from scenario cold run")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestNoCacheForcesColdRun: noCache skips the lookup but still
// refreshes the cache, and the recomputed run is bit-identical anyway.
func TestNoCacheForcesColdRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := &JobRequest{
		Problem:  "vertex-cover",
		Scenario: &ScenarioRequest{Name: "gnp", N: 300, Seed: 4},
		Options:  OptionsRequest{Seed: 4},
		NoCache:  true,
	}
	first := submitWait(t, ts.URL, req)
	if first.CacheHit {
		t.Fatalf("noCache run reported a cache hit")
	}
	second := submitWait(t, ts.URL, req)
	if second.CacheHit {
		t.Fatalf("second noCache run reported a cache hit")
	}
	if !bytes.Equal(mustJSON(t, stripVolatile(first)), mustJSON(t, stripVolatile(second))) {
		t.Errorf("recomputed run differs from first run (determinism violation)")
	}
	// noCache skips only the lookup: the results above still refreshed
	// the cache, so a normal submission now hits.
	reqCached := *req
	reqCached.NoCache = false
	third := submitWait(t, ts.URL, &reqCached)
	if !third.CacheHit {
		t.Errorf("normal submission missed the cache a noCache run should have refreshed")
	}
}

// TestJobDeadline: the deadline runs from submission, so a job whose
// deadline passes while it waits in the queue is canceled when a worker
// finally picks it up. An idle (worker-less) server makes the sequence
// deterministic: submit, let the deadline lapse, then run.
func TestJobDeadline(t *testing.T) {
	s := idleServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.URL+"/v1/jobs", &JobRequest{
		Problem:   "maximal-matching",
		Scenario:  &ScenarioRequest{Name: "gnp", N: 400, Seed: 2},
		Options:   OptionsRequest{Seed: 2},
		TimeoutMs: 1,
	})
	if resp.StatusCode != 201 {
		t.Fatalf("submit: %s: %s", resp.Status, data)
	}
	id := decodeView(t, data).ID
	job := <-s.queue
	time.Sleep(5 * time.Millisecond) // let the 1ms deadline lapse
	job.run(s)

	v := awaitTerminal(t, ts.URL, id)
	if v.State != StateCanceled {
		t.Fatalf("state %s (err %q), want canceled", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", v.Error)
	}
}

// TestCancelQueuedJob uses an idle (worker-less) server so the queued
// state is deterministic.
func TestCancelQueuedJob(t *testing.T) {
	s := idleServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.URL+"/v1/jobs", &JobRequest{
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 200, Seed: 1},
	})
	if resp.StatusCode != 201 {
		t.Fatalf("submit: %s: %s", resp.Status, data)
	}
	id := decodeView(t, data).ID

	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(delResp.Body)
	delResp.Body.Close()
	if delResp.StatusCode != 200 {
		t.Fatalf("cancel: %s: %s", delResp.Status, body)
	}
	if v := decodeView(t, body); v.State != StateCanceled {
		t.Fatalf("state %s, want canceled", v.State)
	}

	// A second DELETE finds the job terminal: 409, view unchanged.
	delResp2, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp2.Body.Close()
	if delResp2.StatusCode != 409 {
		t.Fatalf("re-cancel: %d, want 409", delResp2.StatusCode)
	}
}

// TestQueueFullRejects pins admission control on an idle server.
func TestQueueFullRejects(t *testing.T) {
	s := idleServer(t, Config{QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := &JobRequest{Problem: "mis", Scenario: &ScenarioRequest{Name: "gnp", N: 200, Seed: 1}, NoCache: true}
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/jobs", req)
		if resp.StatusCode != 201 {
			t.Fatalf("submit %d: %s: %s", i, resp.Status, data)
		}
	}
	resp, data := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != 429 {
		t.Fatalf("overflow submit: %d (%s), want 429", resp.StatusCode, data)
	}
	if v := decodeView(t, data); v.State != StateCanceled {
		t.Fatalf("rejected job state %s, want canceled", v.State)
	}
}

// TestBadRequests pins the error-status table.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	gnp := &ScenarioRequest{Name: "gnp", N: 100, Seed: 1}
	for _, tc := range []struct {
		name string
		req  *JobRequest
		want int
	}{
		{"unknown problem", &JobRequest{Problem: "shortest-path", Scenario: gnp}, 400},
		{"unknown model", &JobRequest{Problem: "mis", Model: "pram", Scenario: gnp}, 400},
		{"unsupported pair", &JobRequest{Problem: "weighted-matching", Model: "congested-clique",
			Scenario: &ScenarioRequest{Name: "weighted-gnp", N: 100, Seed: 1}}, 422},
		{"needs weighted instance", &JobRequest{Problem: "weighted-matching", Scenario: gnp}, 422},
		{"no instance", &JobRequest{Problem: "mis"}, 400},
		{"both instances", &JobRequest{Problem: "mis", Scenario: gnp,
			Graph: &GraphRequest{Format: "el", Content: "0 1\n"}}, 400},
		{"unknown scenario", &JobRequest{Problem: "mis", Scenario: &ScenarioRequest{Name: "nope"}}, 400},
		{"unknown scenario param", &JobRequest{Problem: "mis",
			Scenario: &ScenarioRequest{Name: "gnp", N: 100, Seed: 1, Params: map[string]float64{"nope": 1}}}, 400},
		{"unknown format", &JobRequest{Problem: "mis", Graph: &GraphRequest{Format: "xls", Content: "0 1\n"}}, 400},
		{"bad base64", &JobRequest{Problem: "mis", Graph: &GraphRequest{Format: "el", Content: "!!", Base64: true}}, 400},
		{"malformed upload", &JobRequest{Problem: "mis", Graph: &GraphRequest{Format: "el", Content: "0 0\n"}}, 400},
		{"no problem", &JobRequest{Scenario: gnp}, 400},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/jobs", tc.req)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d (%s), want %d", resp.StatusCode, data, tc.want)
			}
		})
	}
	resp, _ := getBody(t, ts.URL+"/v1/jobs/j999")
	if resp.StatusCode != 404 {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestTraceStreamNDJSON: the stream replays buffered events, follows
// live ones, and terminates with a done marker carrying the final
// state. Events must match what a direct Solve traces.
func TestTraceStreamNDJSON(t *testing.T) {
	s := idleServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.URL+"/v1/jobs", &JobRequest{
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 400, Seed: 3},
		Options:  OptionsRequest{Seed: 3},
	})
	if resp.StatusCode != 201 {
		t.Fatalf("submit: %s: %s", resp.Status, data)
	}
	id := decodeView(t, data).ID
	job, _ := s.lookup(id)

	// Connect the follower before the job runs, then run it.
	streamResp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	go func() {
		<-s.queue
		job.run(s)
	}()

	var events []traceEventView
	var end *traceEndView
	sc := bufio.NewScanner(streamResp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var probe map[string]any
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad stream line %s: %v", line, err)
		}
		if _, done := probe["done"]; done {
			end = &traceEndView{}
			if err := json.Unmarshal(line, end); err != nil {
				t.Fatal(err)
			}
			break
		}
		var ev traceEventView
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if end == nil || end.State != StateDone {
		t.Fatalf("stream did not end with done/state=done: %+v", end)
	}

	// The streamed events must be exactly the direct-solve trace.
	in, err := mpcgraph.GenerateScenario("gnp", 400, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []traceEventView
	_, err = mpcgraph.Solve(nil, in, mpcgraph.ProblemMIS, mpcgraph.Options{
		Seed: 3,
		Trace: func(ev mpcgraph.TraceEvent) {
			want = append(want, traceEventView{Round: ev.Round, LiveWords: ev.LiveWords, ActiveVertices: ev.ActiveVertices})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatalf("no trace events streamed")
	}
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Errorf("streamed trace differs from direct solve:\n got:  %v\n want: %v", events, want)
	}
}

// TestTraceStreamSSE checks the Accept-negotiated framing on a
// completed job (pure replay).
func TestTraceStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	v := submitWait(t, ts.URL, &JobRequest{
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 300, Seed: 5},
		Options:  OptionsRequest{Seed: 5},
	})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"/trace", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "event: trace\ndata: {") {
		t.Errorf("no SSE trace frame in:\n%s", text)
	}
	if !strings.HasSuffix(strings.TrimSpace(text), "}") || !strings.Contains(text, "event: done") {
		t.Errorf("no SSE done frame in:\n%s", text)
	}
	if got := strings.Count(text, "event: trace"); got != v.TraceLen {
		t.Errorf("replayed %d SSE events, job view reports %d", got, v.TraceLen)
	}
}

// TestListPagination walks the job table through the cursor.
func TestListPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var ids []string
	for i := 0; i < 5; i++ {
		v := submitWait(t, ts.URL, &JobRequest{
			Problem:  "mis",
			Scenario: &ScenarioRequest{Name: "ring", N: 50 + i, Seed: 1},
			Options:  OptionsRequest{Seed: 1},
		})
		ids = append(ids, v.ID)
	}
	var got []string
	after := ""
	for {
		url := ts.URL + "/v1/jobs?limit=2"
		if after != "" {
			url += "&after=" + after
		}
		resp, data := getBody(t, url)
		if resp.StatusCode != 200 {
			t.Fatalf("list: %s: %s", resp.Status, data)
		}
		var page struct {
			Jobs []*JobView `json:"jobs"`
			Next string     `json:"next"`
		}
		if err := json.Unmarshal(data, &page); err != nil {
			t.Fatal(err)
		}
		for _, j := range page.Jobs {
			got = append(got, j.ID)
		}
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	if fmt.Sprint(got) != fmt.Sprint(ids) {
		t.Errorf("paginated ids %v, want %v", got, ids)
	}

	resp, data := getBody(t, ts.URL+"/v1/jobs?state=done")
	if resp.StatusCode != 200 {
		t.Fatalf("filtered list: %s", resp.Status)
	}
	var page struct {
		Jobs []*JobView `json:"jobs"`
	}
	if err := json.Unmarshal(data, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 5 {
		t.Errorf("state=done returned %d jobs, want 5", len(page.Jobs))
	}

	// An unknown (e.g. evicted) cursor must fail loudly, not render as
	// an empty final page.
	resp, _ = getBody(t, ts.URL+"/v1/jobs?after=j99999999")
	if resp.StatusCode != 400 {
		t.Errorf("unknown cursor: %d, want 400", resp.StatusCode)
	}
}

// TestTerminalEviction bounds the retained job table.
func TestTerminalEviction(t *testing.T) {
	s := idleServer(t, Config{MaxJobsRetained: 3, QueueDepth: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 6; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/jobs", &JobRequest{
			Problem:  "mis",
			Scenario: &ScenarioRequest{Name: "ring", N: 40 + i, Seed: 1},
		})
		if resp.StatusCode != 201 {
			t.Fatalf("submit %d: %s: %s", i, resp.Status, data)
		}
		// Immediately cancel so the job is terminal and evictable.
		id := decodeView(t, data).ID
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp2, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
	}
	s.mu.Lock()
	retained := len(s.order)
	s.mu.Unlock()
	if retained > 4 { // bound + the latest submission
		t.Errorf("retained %d jobs, want <= 4", retained)
	}
}

// TestHealthzAndMetrics pins the operational surface, including the
// drain transition.
func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	v := submitWait(t, ts.URL, &JobRequest{
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 200, Seed: 6},
		Options:  OptionsRequest{Seed: 6},
	})
	submitWait(t, ts.URL, &JobRequest{ // cache hit
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 200, Seed: 6},
		Options:  OptionsRequest{Seed: 6},
	})
	if v.State != StateDone {
		t.Fatalf("job state %s", v.State)
	}

	resp, data := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %s: %s", resp.Status, data)
	}
	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if err := json.Unmarshal(data, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Draining {
		t.Errorf("health %+v", health)
	}

	_, metrics := getBody(t, ts.URL+"/metrics")
	text := string(metrics)
	for _, want := range []string{
		"mpcgraphd_up 1",
		"mpcgraphd_queue_depth 0",
		"mpcgraphd_jobs_inflight 0",
		"mpcgraphd_jobs_submitted_total 2",
		`mpcgraphd_cache_hits_total{tier="memory"} 1`,
		"mpcgraphd_cache_misses_total 1",
		`mpcgraphd_cache_entries{tier="memory"} 1`,
		"mpcgraphd_solves_total 1",
		"mpcgraphd_coalesced_total 0",
		`mpcgraphd_jobs{state="done"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}

	// Drain: health flips to 503/draining, submissions are rejected.
	s.Drain(5 * time.Second)
	resp, _ = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != 503 {
		t.Errorf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	resp, data = postJSON(t, ts.URL+"/v1/jobs", &JobRequest{
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 200, Seed: 6},
	})
	if resp.StatusCode != 503 {
		t.Errorf("submit while draining: %d (%s), want 503", resp.StatusCode, data)
	}
	_, metrics = getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "mpcgraphd_up 0") {
		t.Errorf("metrics did not flip mpcgraphd_up to 0")
	}
}

// TestDrainFinishesQueuedJobs: jobs admitted before Drain complete.
func TestDrainFinishesQueuedJobs(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var ids []string
	for i := 0; i < 4; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/jobs", &JobRequest{
			Problem:  "approx-matching",
			Scenario: &ScenarioRequest{Name: "gnp", N: 500 + i, Seed: 8},
			Options:  OptionsRequest{Seed: 8},
			NoCache:  true,
		})
		if resp.StatusCode != 201 {
			t.Fatalf("submit %d: %s: %s", i, resp.Status, data)
		}
		ids = append(ids, decodeView(t, data).ID)
	}
	s.Drain(30 * time.Second)
	for _, id := range ids {
		job, ok := s.lookup(id)
		if !ok {
			t.Fatalf("job %s evicted during drain", id)
		}
		if v := job.view(); v.State != StateDone {
			t.Errorf("job %s state %s after drain, want done", id, v.State)
		}
	}
}

// TestCatalogEnumeratesRegistries: every registry entry appears in the
// catalog endpoint automatically.
func TestCatalogEnumeratesRegistries(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, data := getBody(t, ts.URL+"/v1/catalog")
	if resp.StatusCode != 200 {
		t.Fatalf("catalog: %s: %s", resp.Status, data)
	}
	var body struct {
		Algorithms []string          `json:"algorithms"`
		Problems   []string          `json:"problems"`
		Models     []string          `json:"models"`
		Scenarios  []catalogScenario `json:"scenarios"`
		Formats    []catalogFormat   `json:"formats"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Algorithms) != len(registry.Pairs()) {
		t.Errorf("catalog lists %d algorithms, registry has %d", len(body.Algorithms), len(registry.Pairs()))
	}
	if len(body.Scenarios) != len(scenario.Names()) {
		t.Errorf("catalog lists %d scenarios, catalog package has %d", len(body.Scenarios), len(scenario.Names()))
	}
	if len(body.Formats) != len(graphio.Formats()) {
		t.Errorf("catalog lists %d formats, graphio has %d", len(body.Formats), len(graphio.Formats()))
	}
	if len(body.Problems) != len(registry.Problems()) || len(body.Models) != 2 {
		t.Errorf("catalog problems/models incomplete: %v / %v", body.Problems, body.Models)
	}
}
