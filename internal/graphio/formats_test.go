package graphio

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

// sameData reports structural equality of two parsed instances,
// including exact weight equality for weighted ones.
func sameData(a, b *Data) bool {
	if a.G.NumVertices() != b.G.NumVertices() || a.G.NumEdges() != b.G.NumEdges() {
		return false
	}
	if (a.WG == nil) != (b.WG == nil) {
		return false
	}
	same := true
	a.G.ForEachEdge(func(u, v int32) {
		if !b.G.HasEdge(u, v) {
			same = false
			return
		}
		if a.WG != nil && a.WG.EdgeWeight(u, v) != b.WG.EdgeWeight(u, v) {
			same = false
		}
	})
	return same
}

// corpus returns a spread of instances exercising isolated vertices,
// empty graphs, dense blocks, heavy tails and weights.
func corpus(t *testing.T) map[string]*Data {
	t.Helper()
	src := rng.New(9)
	withIsolated := graph.NewBuilder(12)
	withIsolated.AddEdge(3, 7)
	withIsolated.AddEdge(0, 11)
	wg := graph.RandomWeights(graph.GNP(60, 0.08, src), 0.5, 4.5, src)
	tiny := graph.NewBuilder(2)
	tiny.AddEdge(0, 1)
	return map[string]*Data{
		"empty":    Unweighted(graph.Empty(0)),
		"edgeless": Unweighted(graph.Empty(5)),
		"tiny":     Unweighted(tiny.MustBuild()),
		"isolated": Unweighted(withIsolated.MustBuild()),
		"gnp":      Unweighted(graph.GNP(80, 0.06, src)),
		"rmat":     Unweighted(graph.RMAT(64, 300, 0.57, 0.19, 0.19, src)),
		"clique":   Unweighted(graph.Complete(9)),
		"weighted": FromWeighted(wg),
	}
}

// TestRoundTripEveryFormat: read∘write = id for every format on every
// corpus instance the format can represent.
func TestRoundTripEveryFormat(t *testing.T) {
	for name, d := range corpus(t) {
		for _, f := range Formats() {
			t.Run(name+"/"+f.String(), func(t *testing.T) {
				var buf bytes.Buffer
				err := Write(&buf, d, f)
				if (d.WG != nil && !f.Weighted()) || (d.WG == nil && !f.Unweighted()) {
					if err == nil {
						t.Fatal("weight-incompatible write accepted")
					}
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				got, err := Read(bytes.NewReader(buf.Bytes()), f)
				if err != nil {
					t.Fatalf("re-read: %v\ninput:\n%s", err, buf.String())
				}
				if !sameData(d, got) {
					t.Fatalf("round trip changed the instance:\n%s", buf.String())
				}
			})
		}
	}
}

// TestFileRoundTrip covers the path-based API: extension-derived format,
// gzip compression, and magic-byte detection on read.
func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for name, d := range corpus(t) {
		for _, f := range Formats() {
			if (d.WG != nil && !f.Weighted()) || (d.WG == nil && !f.Unweighted()) {
				continue
			}
			for _, gz := range []string{"", ".gz"} {
				path := filepath.Join(dir, name+f.Extensions()[0]+gz)
				if err := WriteFile(path, d); err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				if gz == ".gz" {
					raw, err := os.ReadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					if len(raw) >= 2 && (raw[0] != 0x1f || raw[1] != 0x8b) {
						t.Fatalf("%s: not gzip-compressed", path)
					}
				}
				got, err := ReadFile(path)
				if err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				if !sameData(d, got) {
					t.Fatalf("%s: file round trip changed the instance", path)
				}
			}
		}
	}
}

// TestReadFileSniffing: unknown extensions fall back to content
// sniffing for MatrixMarket and DIMACS, and to the edge list otherwise.
func TestReadFileSniffing(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"mm.data":     "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n",
		"dimacs.data": "c hello\np edge 3 2\ne 1 2\ne 2 3\n",
		"el.data":     "n 3\n0 1\n1 2\n",
	}
	for name, body := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.G.NumVertices() != 3 || d.G.NumEdges() != 2 {
			t.Errorf("%s: got %v", name, d.G)
		}
	}
}

// TestReadFileGzipSniff: gzip is recognized by magic bytes even without
// a .gz extension.
func TestReadFileGzipSniff(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte("n 4\n0 1\n2 3\n")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plain.el")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.G.NumVertices() != 4 || d.G.NumEdges() != 2 {
		t.Errorf("got %v", d.G)
	}
}

func TestDetectFormat(t *testing.T) {
	cases := map[string]Format{
		"a/b/web.mtx":    FormatMatrixMarket,
		"web.mtx.gz":     FormatMatrixMarket,
		"g.el":           FormatEdgeList,
		"g.txt":          FormatEdgeList,
		"g.edges.gz":     FormatEdgeList,
		"w.wel":          FormatWeightedEdgeList,
		"inst.col":       FormatDIMACS,
		"inst.dimacs.gz": FormatDIMACS,
		"part.graph":     FormatMETIS,
		"part.metis":     FormatMETIS,
		"mystery.bin":    FormatUnknown,
		"noext":          FormatUnknown,
	}
	for path, want := range cases {
		if got := DetectFormat(path); got != want {
			t.Errorf("DetectFormat(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for _, f := range Formats() {
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFormat(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFormat("csv"); err == nil {
		t.Error("unknown format name accepted")
	}
}

// TestReaderErrors: each dialect rejects its documented malformations
// with an error instead of panicking or silently misreading.
func TestReaderErrors(t *testing.T) {
	cases := []struct {
		name   string
		format Format
		in     string
	}{
		{"dimacs-no-problem", FormatDIMACS, "e 1 2\n"},
		{"dimacs-double-problem", FormatDIMACS, "p edge 2 1\np edge 2 1\ne 1 2\n"},
		{"dimacs-count-short", FormatDIMACS, "p edge 3 2\ne 1 2\n"},
		{"dimacs-count-long", FormatDIMACS, "p edge 3 1\ne 1 2\ne 2 3\n"},
		{"dimacs-self-loop", FormatDIMACS, "p edge 3 1\ne 2 2\n"},
		{"dimacs-zero-vertex", FormatDIMACS, "p edge 3 1\ne 0 1\n"},
		{"dimacs-n-over-cap", FormatDIMACS, "p edge 999999999 0\n"},
		{"metis-n-over-cap", FormatMETIS, "999999999 0\n"},
		{"mm-n-over-cap", FormatMatrixMarket, "%%MatrixMarket matrix coordinate pattern symmetric\n999999999 999999999 0\n"},
		{"el-n-over-cap", FormatEdgeList, "n 999999999\n"},
		{"el-id-over-cap", FormatEdgeList, "0 999999999\n"},
		{"wel-n-over-cap", FormatWeightedEdgeList, "n 999999999\n"},
		{"dimacs-out-of-range", FormatDIMACS, "p edge 3 1\ne 1 4\n"},
		{"dimacs-junk-line", FormatDIMACS, "p edge 2 1\nx 1 2\ne 1 2\n"},
		{"metis-missing-header", FormatMETIS, ""},
		{"metis-truncated", FormatMETIS, "3 2\n2\n"},
		{"metis-extra-lines", FormatMETIS, "2 1\n2\n1\n3\n"},
		{"metis-entry-mismatch", FormatMETIS, "3 2\n2\n1\n\n"},
		{"metis-self-loop", FormatMETIS, "2 1\n1\n1\n"},
		{"metis-vertex-weights", FormatMETIS, "2 1 011\n1 2\n1 1\n"},
		{"metis-odd-weight-tokens", FormatMETIS, "2 1 001\n2 1.5\n1\n"},
		{"metis-nonpositive-weight", FormatMETIS, "2 1 001\n2 0\n1 0\n"},
		{"mm-no-banner", FormatMatrixMarket, "3 3 1\n1 2\n"},
		{"mm-array", FormatMatrixMarket, "%%MatrixMarket matrix array real general\n2 2\n1\n0\n0\n1\n"},
		{"mm-complex", FormatMatrixMarket, "%%MatrixMarket matrix coordinate complex symmetric\n2 2 1\n2 1 1 0\n"},
		{"mm-not-square", FormatMatrixMarket, "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n"},
		{"mm-diagonal", FormatMatrixMarket, "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1\n2 2\n"},
		{"mm-count-short", FormatMatrixMarket, "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n"},
		{"mm-conflicting-weights", FormatMatrixMarket, "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.5\n2 1 2.5\n"},
		{"wel-two-fields", FormatWeightedEdgeList, "0 1\n"},
		{"wel-negative-weight", FormatWeightedEdgeList, "0 1 -2\n"},
		{"wel-nan-weight", FormatWeightedEdgeList, "0 1 NaN\n"},
		{"wel-conflict", FormatWeightedEdgeList, "0 1 2\n1 0 3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.in), tc.format); err == nil {
				t.Errorf("input %q accepted", tc.in)
			}
		})
	}
}

// TestReaderLeniency: documented tolerances must keep working.
func TestReaderLeniency(t *testing.T) {
	cases := []struct {
		name   string
		format Format
		in     string
		n, m   int
	}{
		{"dimacs-dup-edges", FormatDIMACS, "p edge 3 3\ne 1 2\ne 2 1\ne 1 2\n", 3, 1},
		{"dimacs-p-col", FormatDIMACS, "p col 3 1\ne 1 3\n", 3, 1},
		{"metis-comment-between", FormatMETIS, "2 1\n% hi\n2\n1\n", 2, 1},
		{"metis-isolated-blank", FormatMETIS, "3 1\n2\n1\n\n", 3, 1},
		{"metis-fmt-000", FormatMETIS, "2 1 000\n2\n1\n", 2, 1},
		{"mm-general-both-orients", FormatMatrixMarket, "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n", 2, 1},
		{"mm-integer-weights", FormatMatrixMarket, "%%MatrixMarket matrix coordinate integer symmetric\n2 2 1\n2 1 3\n", 2, 1},
		{"wel-dup-agreeing", FormatWeightedEdgeList, "0 1 2.5\n1 0 2.5\n", 2, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Read(strings.NewReader(tc.in), tc.format)
			if err != nil {
				t.Fatal(err)
			}
			if d.G.NumVertices() != tc.n || d.G.NumEdges() != tc.m {
				t.Errorf("got n=%d m=%d, want n=%d m=%d", d.G.NumVertices(), d.G.NumEdges(), tc.n, tc.m)
			}
		})
	}
}
