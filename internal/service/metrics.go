package service

import (
	"fmt"
	"net/http"
	"time"
)

// The operational endpoints. /metrics speaks the Prometheus text
// exposition format (gauges and counters only, no client dependency)
// so any standard scraper can watch a resident daemon; /healthz is the
// liveness/readiness probe — 200 while serving, 503 once draining.

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, inflight := s.snapshotCounts()
	draining := s.Draining()
	body := struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
		QueueDepth    int     `json:"queueDepth"`
		Inflight      int     `json:"inflight"`
		Draining      bool    `json:"draining"`
	}{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		QueueDepth:    queued,
		Inflight:      inflight,
		Draining:      draining,
	}
	status := 200
	if draining {
		body.Status = "draining"
		status = 503
	}
	writeJSON(w, status, body)
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	queued, inflight := s.snapshotCounts()
	cache := s.cache.Stats()

	// Only the lifecycle state is read per job — never the full view,
	// whose report rendering is O(solution size) and would make every
	// scrape stall the submit path while s.mu is held.
	s.mu.Lock()
	byState := map[JobState]int{}
	for _, id := range s.order {
		byState[s.jobs[id].currentState()]++
	}
	total := s.nextID
	draining := s.draining
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP mpcgraphd_up Whether the daemon is serving (1) or draining (0).\n")
	p("# TYPE mpcgraphd_up gauge\n")
	up := 1
	if draining {
		up = 0
	}
	p("mpcgraphd_up %d\n", up)
	p("# HELP mpcgraphd_uptime_seconds Seconds since the daemon started.\n")
	p("# TYPE mpcgraphd_uptime_seconds gauge\n")
	p("mpcgraphd_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
	p("# HELP mpcgraphd_queue_depth Jobs admitted but not yet running.\n")
	p("# TYPE mpcgraphd_queue_depth gauge\n")
	p("mpcgraphd_queue_depth %d\n", queued)
	p("# HELP mpcgraphd_queue_capacity Bound of the job queue.\n")
	p("# TYPE mpcgraphd_queue_capacity gauge\n")
	p("mpcgraphd_queue_capacity %d\n", s.cfg.QueueDepth)
	p("# HELP mpcgraphd_jobs_inflight Jobs currently running on a worker.\n")
	p("# TYPE mpcgraphd_jobs_inflight gauge\n")
	p("mpcgraphd_jobs_inflight %d\n", inflight)
	p("# HELP mpcgraphd_jobs_submitted_total Jobs ever submitted.\n")
	p("# TYPE mpcgraphd_jobs_submitted_total counter\n")
	p("mpcgraphd_jobs_submitted_total %d\n", total)
	p("# HELP mpcgraphd_jobs Retained jobs by lifecycle state.\n")
	p("# TYPE mpcgraphd_jobs gauge\n")
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		p("mpcgraphd_jobs{state=%q} %d\n", st, byState[st])
	}
	p("# HELP mpcgraphd_cache_entries Resident entries of the result cache.\n")
	p("# TYPE mpcgraphd_cache_entries gauge\n")
	p("mpcgraphd_cache_entries %d\n", cache.Entries)
	p("# HELP mpcgraphd_cache_capacity Entry bound of the result cache.\n")
	p("# TYPE mpcgraphd_cache_capacity gauge\n")
	p("mpcgraphd_cache_capacity %d\n", cache.Capacity)
	p("# HELP mpcgraphd_cache_hits_total Result-cache hits.\n")
	p("# TYPE mpcgraphd_cache_hits_total counter\n")
	p("mpcgraphd_cache_hits_total %d\n", cache.Hits)
	p("# HELP mpcgraphd_cache_misses_total Result-cache misses.\n")
	p("# TYPE mpcgraphd_cache_misses_total counter\n")
	p("mpcgraphd_cache_misses_total %d\n", cache.Misses)
	p("# HELP mpcgraphd_cache_evictions_total Result-cache LRU evictions.\n")
	p("# TYPE mpcgraphd_cache_evictions_total counter\n")
	p("mpcgraphd_cache_evictions_total %d\n", cache.Evictions)
	p("# HELP mpcgraphd_workers Solve workers draining the queue.\n")
	p("# TYPE mpcgraphd_workers gauge\n")
	p("mpcgraphd_workers %d\n", s.cfg.Workers)
}
