package bench

import (
	"context"
	"fmt"
	"math"

	"mpcgraph/internal/baseline"
	"mpcgraph/internal/graph"
	"mpcgraph/internal/matching"
	"mpcgraph/internal/mis"
	"mpcgraph/internal/mpc"
	"mpcgraph/internal/rng"
)

func init() {
	register(Experiment{ID: "E4", Title: "Central: iterations and quality (Lemma 4.1)", Run: runE4})
	register(Experiment{ID: "E5", Title: "MPC-Simulation phase count (Lemmas 4.5/4.8)", Run: runE5})
	register(Experiment{ID: "E6", Title: "Integral (2+eps) matching & cover quality (Theorem 1.2)", Run: runE6})
	register(Experiment{ID: "E7", Title: "Per-machine induced subgraph size (Lemma 4.7)", Run: runE7})
	register(Experiment{ID: "E8", Title: "Randomized rounding yield (Lemma 5.1)", Run: runE8})
	register(Experiment{ID: "E9", Title: "(1+eps) matching via boosting (Corollary 1.3)", Run: runE9})
	register(Experiment{ID: "E10", Title: "(2+eps) weighted matching (Corollary 1.4)", Run: runE10})
	register(Experiment{ID: "E12", Title: "Random-threshold coupling deviation (Section 4.4.3)", Run: runE12})
	register(Experiment{ID: "E13", Title: "Round complexity vs O(log n) baselines at S=Θ(n)", Run: runE13})
}

func runE4(cfg Config) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Central algorithm",
		Claim:   "Lemma 4.1: Central ends in O(log n/eps) iterations; the frozen set is a (2+5eps)-approx vertex cover and X a (2+5eps)-approx fractional matching.",
		Columns: []string{"n", "eps", "iterations", "log_{1/(1-eps)} n", "coverRatio", "bound 2+5eps", "fracRatio", "feasible"},
		Notes:   "bipartite instances; optima from Hopcroft–Karp / Kőnig. coverRatio = |C|/|C*|, fracRatio = |M*|/W.",
	}
	sizes := []int{1 << 9, 1 << 11}
	if cfg.Quick {
		sizes = []int{1 << 8}
	}
	for _, half := range sizes {
		for _, eps := range []float64{0.1, 0.05} {
			seed := rng.Hash(cfg.Seed, 4, uint64(half), math.Float64bits(eps))
			bg := graph.RandomBipartite(half, half, 8/float64(half), rng.New(seed))
			res := matching.Central(bg.Graph, eps)
			opt := baseline.HopcroftKarp(bg).Size()
			coverRatio, fracRatio := math.NaN(), math.NaN()
			if opt > 0 {
				coverRatio = float64(res.CoverSize()) / float64(opt)
				fracRatio = float64(opt) / res.Weight()
			}
			feasible := "yes"
			for _, y := range res.Y {
				if y > 1+1e-9 {
					feasible = "NO"
				}
			}
			t.Rows = append(t.Rows, []string{
				fi(2 * half), f2(eps), fi(res.Iterations),
				f1(math.Log(float64(2*half)) / (-math.Log1p(-eps))),
				f3(coverRatio), f2(2 + 5*eps), f3(fracRatio), feasible,
			})
		}
	}
	return t
}

func runE5(cfg Config) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "MPC-Simulation phases",
		Claim:   "Lemma 4.8: O(log log n) phases; Lemma 4.5: O(log log n) rounds total with O(n) memory.",
		Columns: []string{"n", "loglog n", "phases", "directIters", "rounds", "rounds/loglog n", "violations"},
	}
	sizes := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	if cfg.Quick {
		sizes = []int{1 << 10, 1 << 12}
	}
	for _, n := range sizes {
		var phases, direct, rounds []float64
		viol := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := rng.Hash(cfg.Seed, 5, uint64(n), uint64(trial))
			g := graph.GNP(n, 16/float64(n), rng.New(seed))
			res, err := matching.Simulate(g, matching.SimOptions{Seed: seed, Eps: 0.1, Workers: cfg.Workers})
			if err != nil {
				continue
			}
			phases = append(phases, float64(res.Phases))
			direct = append(direct, float64(res.DirectIterations))
			rounds = append(rounds, float64(res.Rounds))
			viol += res.Violations
		}
		ll := loglog(n)
		t.Rows = append(t.Rows, []string{
			fi(n), f2(ll), f1(mean(phases)), f1(mean(direct)),
			f1(mean(rounds)), f1(mean(rounds) / ll), fi(viol),
		})
	}
	return t
}

func runE6(cfg Config) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Integral matching and vertex cover quality",
		Claim:   "Theorem 1.2: (2+eps)-approximate integral maximum matching and minimum vertex cover.",
		Columns: []string{"family", "eps", "|M*|", "|M|", "M-ratio", "|C*|", "|C|", "C-ratio", "bound"},
		Notes:   "matching optima from Edmonds/Hopcroft–Karp; exact |C*| is only computable on bipartite inputs (Kőnig), so C-ratio shows '-' elsewhere.",
	}
	type fam struct {
		name string
		g    *graph.Graph
		bg   *graph.Bipartite
	}
	mk := func(seed uint64) []fam {
		src := rng.New(seed)
		bg := graph.RandomBipartite(150, 150, 0.03, src)
		return []fam{
			{name: "gnp", g: graph.GNP(300, 0.03, src)},
			{name: "bipartite", g: bg.Graph, bg: bg},
			{name: "ring", g: graph.Ring(301)},
			{name: "powerlaw", g: graph.PreferentialAttachment(300, 3, src)},
		}
	}
	for _, eps := range []float64{0.5, 0.1} {
		for _, f := range mk(rng.Hash(cfg.Seed, 6, math.Float64bits(eps))) {
			res, err := matching.ApproxMaxMatching(f.g, matching.PipelineOptions{
				Seed: rng.Hash(cfg.Seed, 60, math.Float64bits(eps)), Eps: eps, Workers: cfg.Workers,
			})
			if err != nil {
				continue
			}
			mOpt := baseline.MaxMatchingGeneral(f.g).Size()
			mRatio := math.NaN()
			if res.M.Size() > 0 {
				mRatio = float64(mOpt) / float64(res.M.Size())
			}
			cover, err := matching.ApproxMinVertexCover(f.g, matching.PipelineOptions{
				Seed: rng.Hash(cfg.Seed, 61, math.Float64bits(eps)), Eps: eps, Workers: cfg.Workers,
			})
			if err != nil {
				continue
			}
			cSize := cover.Frac.CoverSize()
			cOptStr, cRatioStr := "-", "-"
			if f.bg != nil {
				cOpt := baseline.HopcroftKarp(f.bg).Size()
				cOptStr = fi(cOpt)
				if cOpt > 0 {
					cRatioStr = f3(float64(cSize) / float64(cOpt))
				}
			}
			t.Rows = append(t.Rows, []string{
				f.name, f2(eps), fi(mOpt), fi(res.M.Size()), f3(mRatio),
				cOptStr, fi(cSize), cRatioStr, f2(2 + eps),
			})
		}
	}
	return t
}

func runE7(cfg Config) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Per-machine induced subgraph size",
		Claim:   "Lemma 4.7: every G'[V_i] processed on one machine has O(n) edges w.h.p.",
		Columns: []string{"n", "phases", "max|G'[Vi]| words", "max/n", "violations"},
	}
	sizes := []int{1 << 12, 1 << 14, 1 << 16}
	if cfg.Quick {
		sizes = []int{1 << 11}
	}
	for _, n := range sizes {
		seed := rng.Hash(cfg.Seed, 7, uint64(n))
		g := graph.GNP(n, 24/float64(n), rng.New(seed))
		res, err := matching.Simulate(g, matching.SimOptions{Seed: seed, Eps: 0.1, Strict: true, Workers: cfg.Workers})
		if err != nil {
			t.Rows = append(t.Rows, []string{fi(n), "-", "-", "-", "AUDIT-FAIL"})
			continue
		}
		var worst int64
		for _, ps := range res.PhaseStats {
			if ps.MaxInducedWords > worst {
				worst = ps.MaxInducedWords
			}
		}
		t.Rows = append(t.Rows, []string{
			fi(n), fi(res.Phases), fi(int(worst)),
			f3(float64(worst) / float64(n)), fi(res.Violations),
		})
	}
	return t
}

func runE8(cfg Config) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Randomized rounding yield",
		Claim:   "Lemma 5.1: rounding returns a matching of size >= |C̃|/50 with probability >= 1-2exp(-|C̃|/5000).",
		Columns: []string{"n", "|C̃|", "trials", "mean|M|", "min|M|", "|C̃|/50", "mean 50|M|/|C̃|", "failures"},
		Notes:   "failures counts trials below the |C̃|/50 floor; the paper's constant 50 is loose — the realized yield ratio shows the slack.",
	}
	n := 1 << 13
	if cfg.Quick {
		n = 1 << 11
	}
	seed := rng.Hash(cfg.Seed, 8)
	g := graph.GNP(n, 16/float64(n), rng.New(seed))
	res, err := matching.Simulate(g, matching.SimOptions{Seed: seed, Eps: 0.1, Workers: cfg.Workers})
	if err != nil {
		t.Notes = "simulation failed: " + err.Error()
		return t
	}
	candidate := matching.CandidateSet(res.Frac, 5*0.1)
	cSize := graph.CountMarked(candidate)
	trials := 10 * cfg.Trials
	var sizes []float64
	failures := 0
	minSize := math.Inf(1)
	for i := 0; i < trials; i++ {
		m := matching.RoundFractional(g, res.Frac, candidate, rng.New(rng.Hash(seed, uint64(i))))
		s := float64(m.Size())
		sizes = append(sizes, s)
		if s < minSize {
			minSize = s
		}
		if s < float64(cSize)/50 {
			failures++
		}
	}
	t.Rows = append(t.Rows, []string{
		fi(n), fi(cSize), fi(trials), f1(mean(sizes)), f1(minSize),
		f1(float64(cSize) / 50), f2(50 * mean(sizes) / math.Max(float64(cSize), 1)), fi(failures),
	})
	return t
}

func runE9(cfg Config) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "(1+eps) matching via short-augmenting-path boosting",
		Claim:   "Corollary 1.3: (1+eps)-approximate matching in O(log log n)·(1/eps)^O(1/eps) rounds.",
		Columns: []string{"graph", "eps", "|M*|", "base|M|", "baseRatio", "boosted|M|", "boostRatio", "1+eps", "passes"},
		Notes:   "boosting is exact on bipartite inputs; on general graphs blossoms can hide augmenting paths (substitution documented in the OnePlusEpsMatching doc comment).",
	}
	half := 256
	if cfg.Quick {
		half = 96
	}
	for _, eps := range []float64{0.5, 0.2, 0.1} {
		seed := rng.Hash(cfg.Seed, 9, math.Float64bits(eps))
		bg := graph.RandomBipartite(half, half, 8/float64(half), rng.New(seed))
		rows := runBoostCase(t, "bipartite", bg.Graph, eps, seed, cfg.Workers, func() int {
			return baseline.HopcroftKarp(bg).Size()
		})
		t.Rows = append(t.Rows, rows)
		gg := graph.GNP(half, 8/float64(half), rng.New(seed+1))
		rows = runBoostCase(t, "general", gg, eps, seed+1, cfg.Workers, func() int {
			return baseline.MaxMatchingGeneral(gg).Size()
		})
		t.Rows = append(t.Rows, rows)
	}
	return t
}

func runBoostCase(t *Table, name string, g *graph.Graph, eps float64, seed uint64, workers int, opt func() int) []string {
	base, err := matching.ApproxMaxMatching(g, matching.PipelineOptions{Seed: seed, Eps: eps, Workers: workers})
	if err != nil {
		return []string{name, f2(eps), "-", "-", "-", "-", "-", "-", "-"}
	}
	boost, err := matching.BoostToOnePlusEps(context.Background(), g, base.M, eps)
	if err != nil {
		return []string{name, f2(eps), "-", "-", "-", "-", "-", "-", "-"}
	}
	mOpt := opt()
	ratio := func(sz int) string {
		if sz == 0 {
			return "-"
		}
		return f3(float64(mOpt) / float64(sz))
	}
	return []string{
		name, f2(eps), fi(mOpt), fi(base.M.Size()), ratio(base.M.Size()),
		fi(boost.M.Size()), ratio(boost.M.Size()), f2(1 + eps), fi(boost.Passes),
	}
}

func runE10(cfg Config) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "(2+eps) weighted matching",
		Claim:   "Corollary 1.4: (2+eps)-approximate maximum weighted matching in O(log log n · 1/eps) rounds.",
		Columns: []string{"n", "weights", "eps", "w(M*)", "w(ours)", "ratio", "bound", "w(greedy)"},
		Notes:   "exact w(M*) by brute force on the small instances (ratio = w(M*)/w(ours)); on the large instances no exact optimum is feasible, so ratio shows w(greedy)/w(ours) against the classical 2-approximate heavy-first greedy.",
	}
	// Small instance vs brute force.
	for _, eps := range []float64{0.2, 0.05} {
		seed := rng.Hash(cfg.Seed, 10, math.Float64bits(eps))
		src := rng.New(seed)
		g := graph.GNP(14, 0.4, src)
		wg := graph.RandomWeights(g, 1, 100, src)
		ours := matching.ApproxMaxWeightedMatching(wg, eps, seed)
		opt := baseline.BruteForceMaxWeightMatching(wg)
		greedy := matching.GreedyWeightedMatching(wg)
		ratio := math.NaN()
		if ours.Value > 0 {
			ratio = opt / ours.Value
		}
		t.Rows = append(t.Rows, []string{
			"14", "U[1,100)", f2(eps), f1(opt), f1(ours.Value), f3(ratio), f2(2 + eps), f1(greedy.Value),
		})
	}
	// Larger instance vs greedy reference, with the metered MPC variant
	// supplying audited rounds (the corollary's O(log log n · 1/eps)
	// claim realized through maximal-matching invocations).
	n := 400
	if cfg.Quick {
		n = 150
	}
	for _, spread := range []float64{10, 1000} {
		seed := rng.Hash(cfg.Seed, 101, math.Float64bits(spread))
		src := rng.New(seed)
		g := graph.GNP(n, 8/float64(n), src)
		wg := graph.RandomWeights(g, 1, spread, src)
		ours, err := matching.ApproxMaxWeightedMatchingMPC(wg, matching.WeightedMPCOptions{
			Eps: 0.1, Seed: seed, MemoryFactor: 16, Workers: cfg.Workers,
		})
		if err != nil {
			continue
		}
		greedy := matching.GreedyWeightedMatching(wg)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d (rounds=%d, invocations=%d)", n, ours.Rounds, ours.Improvements),
			fmt.Sprintf("U[1,%g)", spread), f2(0.1), "-", f1(ours.Value),
			f3(greedy.Value / math.Max(ours.Value, 1e-9)), f2(2.1), f1(greedy.Value),
		})
	}
	return t
}

func runE12(cfg Config) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Coupling deviation and bad vertices",
		Claim:   "Lemmas 4.11–4.15: with random thresholds, |y-ỹ| stays ~m^{-0.1} and bad vertices are rare; Section 4.2 warns fixed thresholds lose this guarantee.",
		Columns: []string{"n", "deg", "phases", "max|y-ỹ|", "maxDiff", "m^-0.1(first phase)", "bad%(random T)", "bad%(fixed T)"},
		Notes:   "dense instances (deg ≈ n/4) so that freezing decisions fall inside the partitioned phases, where the estimate ỹ actually differs from y; on sparse inputs all freezing happens in the exact direct stage and both columns are trivially zero. The fixed-threshold arm shows comparable AVERAGE-case badness — the pathology of Section 4.2 is worst-case correlated cascading, which random G(n,p) does not trigger; the random thresholds make the bound unconditional (Lemma 4.11).",
	}
	sizes := []int{1 << 10, 1 << 12}
	if cfg.Quick {
		sizes = []int{1 << 9}
	}
	for _, n := range sizes {
		seed := rng.Hash(cfg.Seed, 12, uint64(n))
		g := graph.GNP(n, 0.25, rng.New(seed))
		probe := &matching.DeviationProbe{}
		res, err := matching.Simulate(g, matching.SimOptions{Seed: seed, Eps: 0.1, Probe: probe, Workers: cfg.Workers})
		if err != nil {
			continue
		}
		probeFixed := &matching.DeviationProbe{}
		_, err = matching.Simulate(g, matching.SimOptions{Seed: seed, Eps: 0.1, Probe: probeFixed, FixedThreshold: true, Workers: cfg.Workers})
		if err != nil {
			continue
		}
		badPct := func(p *matching.DeviationProbe) float64 {
			bad := 0
			for _, b := range p.PhaseBad {
				bad += b
			}
			if p.Compared == 0 {
				return 0
			}
			return 100 * float64(bad) / float64(p.Compared)
		}
		firstM := math.Sqrt(float64(n))
		t.Rows = append(t.Rows, []string{
			fi(n), f1(g.AvgDegree()), fi(res.Phases), f4(maxf(probe.PhaseMaxDev)),
			f4(maxf(probe.PhaseMaxDiff)),
			f4(math.Pow(firstM, -0.1)), f3(badPct(probe)), f3(badPct(probeFixed)),
		})
	}
	return t
}

func runE13(cfg Config) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "Round complexity vs O(log n) baselines at S = Θ(n)",
		Claim:   "Section 1.2: at S=Θ(n), [LMSV11] filtering and [II86] need Θ(log n) rounds; the paper's algorithms need O(log log n).",
		Columns: []string{"n", "MIS rounds(ours)", "Luby rounds", "match rounds(ours)", "filtering rounds", "IsraeliItai rounds"},
		Notes:   "all columns are audited MPC rounds under the same simulator (Luby and Israeli–Itai run metered, two rounds per iteration). The paper's advantage is the SCALING: ours stays flat in n while the baselines grow with log n; absolute matching rounds carry the Θ(1/ε) constant of the direct stage (ε=0.1 here). Workload: expected degree √n, so filtering at S=2n pays ~log2(√n) halvings.",
	}
	sizes := []int{1 << 10, 1 << 12, 1 << 14}
	if cfg.Quick {
		sizes = []int{1 << 10}
	}
	for _, n := range sizes {
		var oursMIS, luby, oursMatch, filt, ii []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := rng.Hash(cfg.Seed, 13, uint64(n), uint64(trial))
			g := sqrtDegGNP(n, rng.New(seed))
			if r, err := mis.RandGreedyMPC(g, mis.Options{Seed: seed, Workers: cfg.Workers}); err == nil {
				oursMIS = append(oursMIS, float64(r.Rounds))
			}
			if c, err := mpc.NewCluster(mpc.Config{Machines: int(math.Sqrt(float64(n))) + 1, CapacityWords: int64(16 * n)}); err == nil {
				if r, err := baseline.LubyMISOnCluster(g, rng.New(seed+1), c); err == nil {
					luby = append(luby, float64(r.Rounds))
				}
				c.Close()
			}
			if res, err := matching.Simulate(g, matching.SimOptions{Seed: seed, Eps: 0.1, Workers: cfg.Workers}); err == nil {
				oursMatch = append(oursMatch, float64(res.Rounds))
			}
			filt = append(filt, float64(matching.FilteringMaximalMatching(g, int64(2*n), rng.New(seed+2)).Rounds))
			if c, err := mpc.NewCluster(mpc.Config{Machines: int(math.Sqrt(float64(n))) + 1, CapacityWords: int64(16 * n)}); err == nil {
				if r, err := baseline.IsraeliItaiOnCluster(g, rng.New(seed+3), c); err == nil {
					ii = append(ii, float64(r.Rounds))
				}
				c.Close()
			}
		}
		t.Rows = append(t.Rows, []string{
			fi(n), f1(mean(oursMIS)), f1(mean(luby)), f1(mean(oursMatch)), f1(mean(filt)), f1(mean(ii)),
		})
	}
	return t
}
