// Package maprange_noncore poses as mpcgraph/internal/graphio, which
// is outside the deterministic core set: map ranging is legal there
// (the package's own tests pin any order that matters). No findings.
package maprange_noncore

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
