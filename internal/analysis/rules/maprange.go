package rules

import (
	"go/ast"
	"go/types"

	"mpcgraph/internal/analysis"
)

// NewMapRange returns the maprange analyzer: ranging over a map type in
// a deterministic core package (see corePackages) is flagged, because
// Go randomizes map iteration order per run — the #1 nondeterminism
// hazard for a repository whose whole value proposition is bit-identical
// Reports across Workers settings, models, processes, and cache tiers.
//
// Two shapes are recognized as safe and not flagged:
//
//   - `for range m { ... }` with no iteration variables: the body runs
//     len(m) times and observes neither keys nor values, so order
//     cannot leak.
//   - The collect-then-sort idiom: a loop whose body only appends the
//     iteration variables to a slice, followed — later in the same
//     block — by a sort.* or slices.* call that mentions that slice
//     (registry.Pairs and scenario.Names are the canonical instances).
//
// Anything else needs either a real fix (sort the keys first) or a
// //lint:ignore maprange directive whose justification names the
// invariant that makes iteration order irrelevant (e.g. a commutative
// reduction into an order-independent accumulator).
func NewMapRange() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "maprange",
		Doc: "forbids ranging over maps in the deterministic core packages unless the keys are " +
			"collected and sorted (or iteration order provably cannot be observed)",
		Run: runMapRange,
	}
}

func runMapRange(pass *analysis.Pass) {
	if !inCore(pass.RelPath) {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				checkRange(pass, rs, block.List[i+1:])
			}
			return true
		})
	}
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if rs.Key == nil && rs.Value == nil {
		return // len-only repetition: order is unobservable
	}
	if sortedAfter(pass, rs, rest) {
		return
	}
	pass.Reportf(rs.For,
		"ranging over %s in a deterministic core package: map iteration order is randomized per run; collect the keys into a slice and sort it (a sort.*/slices.* call in the same block is recognized), or suppress with the invariant that makes order irrelevant",
		types.TypeString(t, types.RelativeTo(pass.Pkg)))
}

// sortedAfter recognizes the collect-then-sort idiom: every statement
// in the range body appends the iteration variables to slice variables,
// and a later statement in the enclosing block passes one of those
// slices to sort.* or slices.*.
func sortedAfter(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	collected := map[types.Object]bool{}
	for _, stmt := range rs.Body.List {
		asg, ok := stmt.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return false
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || pass.Info.Uses[id] != types.Universe.Lookup("append") {
			return false
		}
		lhs, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.Info.Uses[lhs]
		if obj == nil {
			obj = pass.Info.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		collected[obj] = true
	}
	for _, stmt := range rest {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			continue
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			continue
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && collected[pass.Info.Uses[id]] {
					found = true
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}
