package graphio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"mpcgraph/internal/scenario"
)

// The fast readers (fastread.go) promise strict parity with the
// scanner-based reference readers: the same graph and the same error
// string — byte for byte — on every input, for every worker count.
// This file pins that promise on a table of adversarial inputs, on
// large multi-shard inputs with planted faults, and on every scenario
// in the catalog.

// renderGraphEL renders a parsed graph back to canonical edge-list
// bytes; two parses are CSR-identical iff their renders match.
func renderGraphEL(t *testing.T, d *Data) string {
	t.Helper()
	if d == nil {
		return "<nil>"
	}
	var buf bytes.Buffer
	var err error
	if d.WG != nil {
		err = writeWeightedEdgeList(&buf, d.WG)
	} else {
		err = WriteEdgeList(&buf, d.G)
	}
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	return buf.String()
}

// readBoth parses input through the reference scanner reader and the
// fast reader at the given worker count, demanding identical outcomes.
// It returns the scanner outcome.
func readBoth(t *testing.T, input string, weighted bool, workers int) (*Data, error) {
	t.Helper()
	var refD *Data
	var refErr error
	if weighted {
		refD, refErr = readWELScanner(strings.NewReader(input))
	} else {
		g, err := readEdgeListScanner(strings.NewReader(input))
		refErr = err
		if err == nil {
			refD = Unweighted(g)
		}
	}
	var fastD *Data
	var fastErr error
	if weighted {
		fastD, fastErr = readWELFast(strings.NewReader(input), workers)
	} else {
		g, err := readEdgeListFast(strings.NewReader(input), workers)
		fastErr = err
		if err == nil {
			fastD = Unweighted(g)
		}
	}
	switch {
	case (refErr == nil) != (fastErr == nil):
		t.Fatalf("workers=%d: scanner err %v, fast err %v", workers, refErr, fastErr)
	case refErr != nil:
		if refErr.Error() != fastErr.Error() {
			t.Fatalf("workers=%d: error mismatch:\nscanner: %s\nfast:    %s", workers, refErr, fastErr)
		}
	default:
		if want, got := renderGraphEL(t, refD), renderGraphEL(t, fastD); want != got {
			t.Fatalf("workers=%d: graph mismatch:\nscanner:\n%s\nfast:\n%s", workers, want, got)
		}
	}
	return refD, refErr
}

// parityInputs is the adversarial corpus. Every ParseInt/ParseFloat
// corner the custom parsers replicate has a row, as do Unicode
// whitespace (which forces the per-line fallback), header precedence,
// arity faults and line accounting (CRLF, blanks, unterminated tails).
func parityInputs() map[string]string {
	return map[string]string{
		"empty":                 "",
		"blank-lines":           "\n \t \n\n",
		"comment-only":          "# just a comment\n",
		"indented-comment":      "  \t# indented\n",
		"no-trailing-newline":   "n 4\n0 1\n2 3",
		"crlf":                  "n 2\r\n0 1\r\n",
		"plain":                 "n 4\n0 1\n2 3\n",
		"no-header":             "5 3\n2 7\n",
		"dup-edges":             "0 1\n1 0\n0 1\n",
		"minus-zero-vertex":     "-0 1\n",
		"plus-sign-vertex":      "+5 6\n",
		"negative-vertex":       "-3 4\n",
		"leading-zeros":         "007 008\n",
		"int64-overflow":        "9223372036854775808 1\n",
		"uint64-overflow":       "99999999999999999999999 1\n",
		"vertex-at-cap":         "134217728 1\n",
		"trailing-junk-vertex":  "1x 2\n",
		"float-vertex":          "1e3 2\n",
		"empty-sign":            "+ 1\n",
		"self-loop":             "7 7\n",
		"self-loop-minus-zero":  "-0 0\n",
		"arity-short":           "3\n",
		"arity-long":            "0 1 2 3\n",
		"header-bare":           "n\n",
		"header-extra":          "n 2 3\n",
		"header-minus-zero":     "n -0\n",
		"header-plus":           "n +3\n0 1\n",
		"header-negative":       "n -2\n",
		"header-overflow":       "n 134217729\n",
		"header-junk":           "n x\n",
		"multi-header":          "n 3\n0 1\nn 5\n2 4\n",
		"header-after-edges":    "0 5\nn 2\n",
		"out-of-declared-range": "n 2\n0 5\n",
		"nbsp-separator":        "0 1\n",
		"unicode-line-sep":      "0 1\n",
		"nbsp-then-comment":     " # comment\n",
		"nbsp-bad-token":        "0 1 x\n",
		"high-byte-token":       "0 \xffb\n",
		"error-line-number":     "# c\n\n0 1\n\nbad line here\n",
	}
}

// welOnlyInputs exercises the weight column.
func welOnlyInputs() map[string]string {
	return map[string]string{
		"weights-plain":      "n 4\n0 1 1.5\n2 3 0.25\n",
		"weight-zero":        "0 1 0\n",
		"weight-negative":    "0 1 -2\n",
		"weight-nan":         "0 1 nan\n",
		"weight-inf":         "0 1 +Inf\n",
		"weight-1e309":       "0 1 1e309\n",
		"weight-hex-float":   "0 1 0x1p-2\n",
		"weight-underscore":  "0 1 1_0\n",
		"weight-junk":        "0 1 abc\n",
		"weight-missing":     "0 1\n",
		"weight-exact":       "0 1 0.1\n2 3 3.0000000000000004\n",
		"weight-conflict":    "0 1 2\n1 0 3\n",
		"weight-dup-agree":   "0 1 2\n1 0 2\n0 1 2\n",
		"weight-error-order": "x 1 1\n",
	}
}

func TestReaderParityTable(t *testing.T) {
	for name, input := range parityInputs() {
		elInput := input
		// Reuse the corpus for WEL by appending a weight column to edge
		// rows; error rows stay as-is (the u/v/header errors fire before
		// the weight parse, so the corpus still hits the same corners).
		welInput := addWeightColumn(input)
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("el/%s/workers=%d", name, workers), func(t *testing.T) {
				readBoth(t, elInput, false, workers)
			})
			t.Run(fmt.Sprintf("wel/%s/workers=%d", name, workers), func(t *testing.T) {
				readBoth(t, welInput, true, workers)
			})
		}
	}
	for name, input := range welOnlyInputs() {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("wel/%s/workers=%d", name, workers), func(t *testing.T) {
				readBoth(t, input, true, workers)
			})
		}
	}
}

// addWeightColumn appends " 1" to every line that looks like an edge
// row (two fields, not a header/comment), leaving faults untouched.
func addWeightColumn(input string) string {
	lines := strings.Split(input, "\n")
	for i, line := range lines {
		f := strings.Fields(line)
		if len(f) == 2 && f[0] != "n" && !strings.HasPrefix(strings.TrimSpace(line), "#") {
			lines[i] = line + " 1"
		}
	}
	return strings.Join(lines, "\n")
}

// TestReaderParityMultiShard plants faults deep inside inputs large
// enough to split across shards and windows: the reported error must be
// the earliest bad line with the exact global line number, headers must
// resolve last-one-wins, and clean parses must agree edge-for-edge.
func TestReaderParityMultiShard(t *testing.T) {
	build := func(lines int, mutate func(i int) (string, bool)) string {
		var sb strings.Builder
		for i := 0; i < lines; i++ {
			if s, ok := mutate(i); ok {
				sb.WriteString(s)
				continue
			}
			fmt.Fprintf(&sb, "%d %d\n", i%977, 1000+(i*7)%997)
		}
		return sb.String()
	}
	cases := map[string]string{
		"clean": build(20000, func(int) (string, bool) { return "", false }),
		"error-mid": build(20000, func(i int) (string, bool) {
			if i == 12345 {
				return "bogus row\n", true
			}
			if i == 19999 {
				return "later error\n", true
			}
			return "", false
		}),
		"error-first-line": build(20000, func(i int) (string, bool) {
			if i == 0 {
				return "x y\n", true
			}
			return "", false
		}),
		"late-header": build(20000, func(i int) (string, bool) {
			if i == 15000 {
				return "n 3000\n", true
			}
			if i == 17000 {
				return "n 2500\n", true
			}
			return "", false
		}),
		"comment-dense": build(20000, func(i int) (string, bool) {
			if i%3 == 0 {
				return "# filler\n", true
			}
			if i%7 == 0 {
				return "\n", true
			}
			return "", false
		}),
	}
	for name, input := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				readBoth(t, input, false, workers)
				readBoth(t, addWeightColumn(input), true, workers)
			})
		}
	}
}

// TestReaderParityTooLong pins the token-too-long behavior: a line
// whose content reaches the format's cap must produce the scanner's
// exact ErrTooLong-wrapped error, while parse errors on earlier lines
// still win.
func TestReaderParityTooLong(t *testing.T) {
	long := strings.Repeat("x", elMaxLine+16)
	cases := map[string]string{
		"bare-long-line":   long,
		"after-good-lines": "n 8\n0 1\n" + long,
		"after-bad-line":   "zz 1\n" + long,
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := readBoth(t, input, false, 4)
			if name != "after-bad-line" && !strings.Contains(err.Error(), "token too long") {
				t.Fatalf("want token-too-long error, got %v", err)
			}
		})
	}
}

// failReader yields its payload and then a non-EOF error, the way a
// broken pipe would.
type failReader struct {
	data []byte
	err  error
}

func (f *failReader) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, f.err
	}
	n := copy(p, f.data)
	f.data = f.data[n:]
	return n, nil
}

// TestReaderParityIOError pins the scanner's error ordering on stream
// failures: buffered complete and partial lines parse first (a parse
// error there wins), and only then does the I/O error surface.
func TestReaderParityIOError(t *testing.T) {
	boom := errors.New("boom")
	cases := map[string]struct {
		input     string
		wantIOErr bool
	}{
		"clean-buffered-lines":  {"n 4\n0 1\n2 3", true},
		"parse-error-buffered":  {"n 4\nx y\n0 1", false},
		"partial-line-buffered": {"0 1\n2 3", true},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			ref, refErr := readEdgeListScanner(&failReader{data: []byte(tc.input), err: boom})
			for _, workers := range []int{1, 4} {
				fast, fastErr := readEdgeListFast(&failReader{data: []byte(tc.input), err: boom}, workers)
				if (refErr == nil) != (fastErr == nil) || (refErr != nil && refErr.Error() != fastErr.Error()) {
					t.Fatalf("workers=%d: scanner err %v, fast err %v", workers, refErr, fastErr)
				}
				if tc.wantIOErr != errors.Is(fastErr, boom) {
					t.Fatalf("workers=%d: wantIOErr=%v, got %v", workers, tc.wantIOErr, fastErr)
				}
				_ = ref
				_ = fast
			}
		})
	}
}

// TestReaderParityScenarios renders every catalog scenario to both
// native formats and demands the fast and scanner readers agree on the
// bytes, for sequential and forced multi-shard parses.
func TestReaderParityScenarios(t *testing.T) {
	for _, name := range scenario.Names() {
		t.Run(name, func(t *testing.T) {
			inst, err := scenario.Generate(name, 200, 7, nil)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			var buf bytes.Buffer
			if err := WriteEdgeList(&buf, inst.G); err != nil {
				t.Fatalf("write el: %v", err)
			}
			for _, workers := range []int{1, 4} {
				readBoth(t, buf.String(), false, workers)
			}
			if inst.WG != nil {
				var wbuf bytes.Buffer
				if err := writeWeightedEdgeList(&wbuf, inst.WG); err != nil {
					t.Fatalf("write wel: %v", err)
				}
				for _, workers := range []int{1, 4} {
					readBoth(t, wbuf.String(), true, workers)
				}
			}
		})
	}
}

// TestWindowBoundaryParity slides a small input across the window
// boundary via a reader that returns one byte per Read call, making the
// windower accumulate in the smallest possible increments.
func TestWindowBoundaryParity(t *testing.T) {
	input := "n 9\n0 1\n# c\n2 3\n\n4 5\n"
	fast, err := readEdgeListFast(iotest1{strings.NewReader(input)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := readEdgeListScanner(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := renderGraphEL(t, Unweighted(ref))
	got := renderGraphEL(t, Unweighted(fast))
	if want != got {
		t.Fatalf("graph mismatch:\nscanner:\n%s\nfast:\n%s", want, got)
	}
}

// iotest1 is a one-byte-at-a-time reader (iotest.OneByteReader without
// the import).
type iotest1 struct{ r io.Reader }

func (o iotest1) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	return o.r.Read(p[:1])
}
