package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// suppressSrc carries one directive of each shape: a trailing comment,
// a comment on its own line above the statement, a directive for a
// different rule (must not suppress), and a malformed directive with no
// justification (must surface as a lint-ignore finding).
const suppressSrc = `package p

func f() {
	a() //lint:ignore demo the result is idempotent
	//lint:ignore demo the call is startup-only
	b()
	//lint:ignore other wrong rule entirely
	c()
	//lint:ignore demo
	d()
}
`

func TestApplySuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	finding := func(line int) Finding {
		return Finding{
			Pos:  token.Position{Filename: "s.go", Line: line, Column: 2},
			Rule: "demo",
			Msg:  "demo finding",
		}
	}
	// Lines: a() = 4 (trailing), b() = 6 (directive above), c() = 8
	// (directive above names another rule), d() = 10 (malformed above).
	in := []Finding{finding(4), finding(6), finding(8), finding(10)}
	out := ApplySuppressions(fset, []*ast.File{f}, in)

	byLine := map[int]Finding{}
	var malformed []Finding
	for _, f := range out {
		if f.Rule == "lint-ignore" {
			malformed = append(malformed, f)
			continue
		}
		byLine[f.Pos.Line] = f
	}
	if !byLine[4].Suppressed || byLine[4].Why != "the result is idempotent" {
		t.Errorf("trailing directive: got %+v", byLine[4])
	}
	if !byLine[6].Suppressed || byLine[6].Why != "the call is startup-only" {
		t.Errorf("directive-above: got %+v", byLine[6])
	}
	if byLine[8].Suppressed {
		t.Errorf("directive for another rule suppressed line 8: %+v", byLine[8])
	}
	if byLine[10].Suppressed {
		t.Errorf("malformed directive suppressed line 10: %+v", byLine[10])
	}
	if len(malformed) != 1 {
		t.Fatalf("want exactly 1 lint-ignore finding, got %d: %v", len(malformed), malformed)
	}
	if !strings.Contains(malformed[0].Msg, "malformed directive") || malformed[0].Pos.Line != 9 {
		t.Errorf("lint-ignore finding: got %+v", malformed[0])
	}
}

// TestMalformedDirectiveUnsuppressable pins the meta-rule: a
// lint-ignore finding cannot itself be silenced by a directive.
func TestMalformedDirectiveUnsuppressable(t *testing.T) {
	src := `package p

//lint:ignore lint-ignore trying to silence the meta-rule
//lint:ignore demo
func f() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	out := ApplySuppressions(fset, []*ast.File{f}, nil)
	n := 0
	for _, fd := range out {
		if fd.Rule == "lint-ignore" && !fd.Suppressed {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("want 1 unsuppressed lint-ignore finding, got %d: %v", n, out)
	}
}
