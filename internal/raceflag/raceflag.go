// Package raceflag reports whether the binary was compiled with the
// race detector. Allocation-ceiling regression tests skip under race:
// the race runtime adds its own allocations, so a ceiling tight enough
// to catch real regressions would flake under `make race`.
package raceflag
