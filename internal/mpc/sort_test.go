package mpc

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"mpcgraph/internal/rng"
)

func sortCluster(t *testing.T, machines int, capacity int64) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{Machines: machines, CapacityWords: capacity, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSampleSortCorrectness(t *testing.T) {
	src := rng.New(1)
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = src.Uint64() % 1000
	}
	c := sortCluster(t, 8, 1<<20)
	shards := DistributeEvenly(c, keys)
	out, err := SampleSort(c, shards, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySorted(out); err != nil {
		t.Fatal(err)
	}
	// Multiset preservation.
	var got []uint64
	for _, shard := range out {
		got = append(got, shard...)
	}
	if len(got) != len(keys) {
		t.Fatalf("lost items: %d vs %d", len(got), len(keys))
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestSampleSortRoundCount(t *testing.T) {
	// [GSZ11]: O(1) rounds. The implementation uses exactly 4 (gather,
	// 2-round broadcast, shuffle).
	src := rng.New(2)
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = src.Uint64()
	}
	c := sortCluster(t, 10, 1<<20)
	if _, err := SampleSort(c, DistributeEvenly(c, keys), src); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Rounds; got != 4 {
		t.Errorf("SampleSort used %d rounds, want 4", got)
	}
}

func TestSampleSortBalancedLoads(t *testing.T) {
	// Oversampled splitters keep every machine's bucket within a small
	// factor of N/m w.h.p.
	src := rng.New(3)
	const n, machines = 40000, 16
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = src.Uint64()
	}
	c := sortCluster(t, machines, 1<<20)
	out, err := SampleSort(c, DistributeEvenly(c, keys), src)
	if err != nil {
		t.Fatal(err)
	}
	ideal := n / machines
	for i, shard := range out {
		if len(shard) > 3*ideal {
			t.Errorf("machine %d holds %d items, ideal %d", i, len(shard), ideal)
		}
	}
}

func TestSampleSortAllDuplicateKeys(t *testing.T) {
	// The composite-key tie-break must spread identical keys evenly
	// rather than routing them all to one machine.
	src := rng.New(4)
	const n, machines = 20000, 8
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = 42
	}
	c := sortCluster(t, machines, 1<<20)
	out, err := SampleSort(c, DistributeEvenly(c, keys), src)
	if err != nil {
		t.Fatal(err)
	}
	ideal := n / machines
	for i, shard := range out {
		if len(shard) > 3*ideal {
			t.Errorf("duplicate-key skew: machine %d holds %d items (ideal %d)", i, len(shard), ideal)
		}
	}
	if err := VerifySorted(out); err != nil {
		t.Error(err)
	}
}

func TestSampleSortCapacityAudit(t *testing.T) {
	// Failure injection: machines too small for their N/m share.
	src := rng.New(5)
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = src.Uint64()
	}
	c := sortCluster(t, 4, 100) // 100 words per machine << 2500 share
	if _, err := SampleSort(c, DistributeEvenly(c, keys), src); err == nil {
		t.Error("expected capacity error")
	}
}

func TestSampleSortDegenerate(t *testing.T) {
	src := rng.New(6)
	c := sortCluster(t, 3, 1000)
	out, err := SampleSort(c, make([][]uint64, 3), src)
	if err != nil {
		t.Fatal(err)
	}
	for _, shard := range out {
		if len(shard) != 0 {
			t.Error("empty input produced items")
		}
	}
	single, _ := NewCluster(Config{Machines: 1})
	out, err = SampleSort(single, [][]uint64{{3, 1, 2}}, src)
	if err != nil || len(out[0]) != 3 || out[0][0] != 1 {
		t.Errorf("single machine sort wrong: %v %v", out, err)
	}
	if _, err := SampleSort(c, make([][]uint64, 5), src); err == nil {
		t.Error("shard/machine mismatch accepted")
	}
}

func TestSampleSortProperty(t *testing.T) {
	check := func(seed uint64, sz uint16) bool {
		n := int(sz)%2000 + 1
		src := rng.New(seed)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = src.Uint64() % 64 // heavy duplication on purpose
		}
		c, err := NewCluster(Config{Machines: 5, CapacityWords: 1 << 20, Strict: true})
		if err != nil {
			return false
		}
		out, err := SampleSort(c, DistributeEvenly(c, keys), src)
		if err != nil {
			return false
		}
		if VerifySorted(out) != nil {
			return false
		}
		cnt := 0
		for _, shard := range out {
			cnt += len(shard)
		}
		return cnt == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestVerifySorted(t *testing.T) {
	if err := VerifySorted([][]uint64{{1, 2}, {3}, {}, {4}}); err != nil {
		t.Errorf("sorted shards rejected: %v", err)
	}
	err := VerifySorted([][]uint64{{1, 5}, {3}})
	if !errors.Is(err, ErrUnsorted) {
		t.Errorf("unsorted shards accepted: %v", err)
	}
	if err := VerifySorted([][]uint64{{2, 1}}); err == nil {
		t.Error("locally unsorted shard accepted")
	}
}

func BenchmarkSampleSort(b *testing.B) {
	src := rng.New(1)
	keys := make([]uint64, 100000)
	for i := range keys {
		keys[i] = src.Uint64()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, _ := NewCluster(Config{Machines: 16, CapacityWords: 1 << 24})
		if _, err := SampleSort(c, DistributeEvenly(c, keys), src); err != nil {
			b.Fatal(err)
		}
	}
}
