// Command mpcgraphd is the long-running mpcgraph solve daemon: the full
// registry surface (problems × models × scenario catalog × graph upload
// in any supported format) exposed as an HTTP job API with a bounded
// queue, a content-addressed deterministic result cache — an in-memory
// LRU over an optional crash-safe disk tier — single-flight coalescing
// of identical submissions, batch admission for experiment sweeps
// (POST /v1/batches: server-side cache-aware dedup, aggregate views,
// NDJSON completion streaming, one-DELETE cancellation), per-round
// trace streaming, and Prometheus-style operational metrics.
//
// Usage:
//
//	mpcgraphd [-addr 127.0.0.1:8080] [-workers 2] [-queue 64]
//	          [-cache 1024] [-cache-dir DIR] [-disk-entries 65536]
//	          [-job-workers 0] [-drain 30s]
//	          [-log-level info] [-log-format json]
//
// With -cache-dir, completed results are persisted atomically (one
// file per cache key) and recovered on restart: a daemon killed at any
// instant — even SIGKILL mid-queue — serves every previously completed
// result from disk after restart, bit-identical and with zero
// recomputation. Damaged entries are quarantined, never served and
// never fatal. The MPCGRAPHD_FAILPOINTS environment variable arms
// fault-injection points for crash testing (see docs/service.md).
//
// The binary is a thin shim over `mpcgraph serve` (both share the flag
// surface and lifecycle of internal/cli). On startup it prints one
// line, "mpcgraphd listening on http://<addr>", then serves until
// SIGINT/SIGTERM, at which point it drains gracefully: new submissions
// are rejected with 503, queued and running jobs finish (bounded by
// -drain), and the process exits 0.
//
// The daemon is fully observable: /metrics exposes latency histograms
// (HTTP requests, queue wait, solve time per (problem, model), job
// end-to-end, disk ops, cache probes) alongside Go runtime gauges;
// stderr carries leveled structured logs (one JSON object per event,
// correlated by request/job/batch IDs — `-log-format text` for
// key=value lines, `-log-level debug` for per-request detail); and
// every job view includes a `timings` block of ordered per-phase
// lifecycle stamps. Watch it all live with `mpcgraph top`. See
// docs/observability.md.
//
// Drive it with `mpcgraph submit`/`mpcgraph batch`/`mpcgraph status`
// (or run the E18 registry sweep against it with `mpcgraph bench
// -remote`, bit-identical to in-process), or speak the HTTP API
// directly — see docs/service.md for the wire contract, the job
// lifecycle, cache semantics and the /healthz and /metrics endpoints.
package main

import (
	"fmt"
	"os"

	"mpcgraph/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpcgraphd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	return cli.Run(append([]string{"serve"}, args...),
		cli.Env{Stdin: os.Stdin, Stdout: os.Stdout, Stderr: os.Stderr})
}
