# Pre-merge check for this repository. `make ci` is the documented gate:
# it checks formatting, vets every package, runs the full test suite
# under the race detector (the determinism tests in parallel_test.go
# double as the parallel-engine oracle; the parity tests in
# solve_test.go pin the deprecated wrappers to Solve; the round-trip
# tests in solvefile_test.go pin the file formats to bit-identical
# reports), smoke-runs the benchmarks, proves the CLIs enumerate the
# algorithm registry and that every registered (Problem, Model) pair has
# a working benchmark entry, pipes `mpcgraph gen` into `mpcgraph solve`
# for one scenario per problem, boots a real mpcgraphd daemon and proves
# the deterministic result cache serves bit-identical hits for every
# problem before draining it with SIGTERM, SIGKILLs a daemon mid-queue
# and proves the persistent cache tier recovers every completed result
# bit-identically with zero recomputation, and builds every Go code
# block of README.md and docs/service.md against the current API. The
# lint gate is the type-checked static-analysis suite of
# internal/analysis (see docs/analysis.md): determinism, lock
# discipline, and error hygiene over typed ASTs, tests included.
#
# Targets:
#   make ci         - fmt + vet + lint + race tests + fuzz/benchmark/registry/CLI/service/scale/docs smoke
#   make fmt        - fail if any file needs gofmt
#   make lint       - static-analysis suite (internal/analysis), tests included
#   make lint-fast  - same suite, production files only (no test files)
#   make fuzz-smoke - short -fuzz run of every graphio structured-reader fuzzer
#   make test       - fast test suite
#   make race       - full test suite under -race
#   make cover      - enforce the per-package coverage floors of
#                     coverage_floors.txt (internal/service, internal/cli)
#   make bench      - full benchmark pass with allocation counts
#   make tables     - regenerate the experiment tables (text) at quick scale
#   make json       - machine-readable experiment rows (BENCH_*.json input)
#   make bench-json - run the smoke sweep with -json and write BENCH_PR10.json
#   make list-smoke - mpcbench -list + registry/benchmark coverage check
#   make cli-smoke  - mpcgraph gen|solve pipe, one scenario per problem
#   make service-smoke - boot mpcgraphd, one job per problem, cache-hit
#                     bit-identity, metrics, graceful SIGTERM drain,
#                     429 + Retry-After on a saturated daemon
#   make chaos-smoke - SIGKILL mpcgraphd mid-queue, restart on the same
#                     cache dir, prove crash recovery against the goldens
#   make scale-smoke - ~10⁷-edge R-MAT write→read→solve under pinned
#                     wall-time and peak-RSS ceilings (alias: make scale);
#                     ci runs a race-instrumented ~10⁶-edge short variant
#   make docs-check - compile every ```go block of README.md and docs/service.md

GO ?= go

# cli-smoke relies on gen|solve pipelines; without pipefail a failing
# gen would be masked by solve accepting empty stdin as an empty graph.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: ci fmt vet lint lint-fast test race cover bench bench-smoke bench-json fuzz-smoke list-smoke cli-smoke service-smoke chaos-smoke scale-smoke scale-smoke-short scale allocs-guard docs-check tables json

ci: fmt vet lint race cover allocs-guard fuzz-smoke bench-smoke list-smoke cli-smoke service-smoke chaos-smoke scale-smoke-short docs-check

fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./internal/analysis/cmd/lint .

# The same analyzers without test files: a faster inner-loop gate when
# iterating on production code.
lint-fast:
	$(GO) run ./internal/analysis/cmd/lint -tests=false .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Statement-coverage floors for the packages whose behavior is pinned
# by end-to-end suites (the daemon and its CLI): each package listed in
# coverage_floors.txt must meet its checked-in minimum.
cover:
	@fail=0; \
	while read -r pkg floor; do \
		case "$$pkg" in ""|\#*) continue;; esac; \
		pct=$$($(GO) test -cover "$$pkg" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage output for $$pkg (test failure?)"; fail=1; continue; fi; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN { print (p >= f) ? 1 : 0 }'); \
		if [ "$$ok" = 1 ]; then \
			echo "cover: $$pkg $$pct% (floor $$floor%)"; \
		else \
			echo "cover: $$pkg $$pct% BELOW floor $$floor%"; fail=1; \
		fi; \
	done < coverage_floors.txt; \
	exit $$fail

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./internal/graph/ ./internal/mpc/ ./internal/mis/

# The perf trajectory artifact: the E1..E18 smoke sweep in machine-
# readable form, committed as BENCH_PR10.json so successive PRs can diff
# audited costs (BENCH_PR4.json and BENCH_PR9.json are the retained
# earlier snapshots). Regenerate after any intentional cost change.
bench-json:
	$(GO) run ./cmd/mpcbench -quick -trials 1 -json > BENCH_PR10.json

# Short-run fuzz smoke of the structured graph readers, so the strict
# parse/error grammars of docs/formats.md stay exercised pre-merge
# (each fuzzer also runs its corpus as ordinary seed tests in `race`).
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzReadWEL -fuzztime=3s ./internal/graphio/
	$(GO) test -run=NONE -fuzz=FuzzReadDIMACS -fuzztime=3s ./internal/graphio/
	$(GO) test -run=NONE -fuzz=FuzzReadMETIS -fuzztime=3s ./internal/graphio/
	$(GO) test -run=NONE -fuzz=FuzzReadMatrixMarket -fuzztime=3s ./internal/graphio/

list-smoke:
	$(GO) run ./cmd/mpcbench -list
	$(GO) run ./cmd/mpcbench -check

# One gen|solve pipe per problem, each through a different scenario and
# on-disk format, so the whole (catalog, format, registry) surface stays
# wired. Weighted matching ships through the weighted edge list.
cli-smoke:
	$(GO) build -o /tmp/mpcgraph-ci ./cmd/mpcgraph
	/tmp/mpcgraph-ci list > /dev/null
	/tmp/mpcgraph-ci gen -scenario gnp -n 600 -seed 1 -format el -out - | /tmp/mpcgraph-ci solve -problem mis -in - -format el -json > /dev/null
	/tmp/mpcgraph-ci gen -scenario rmat -n 600 -seed 2 -format dimacs -out - | /tmp/mpcgraph-ci solve -problem maximal-matching -in - -format dimacs -json > /dev/null
	/tmp/mpcgraph-ci gen -scenario chung-lu -n 600 -seed 3 -format metis -out - | /tmp/mpcgraph-ci solve -problem approx-matching -in - -format metis -json > /dev/null
	/tmp/mpcgraph-ci gen -scenario ring-of-cliques -n 600 -seed 4 -format mm -out - | /tmp/mpcgraph-ci solve -problem one-plus-eps-matching -in - -format mm -json > /dev/null
	/tmp/mpcgraph-ci gen -scenario high-girth -n 600 -seed 5 -format el -out - | /tmp/mpcgraph-ci solve -problem vertex-cover -model congested-clique -in - -format el -json > /dev/null
	/tmp/mpcgraph-ci gen -scenario weighted-gnp -n 400 -seed 6 -format wel -out - | /tmp/mpcgraph-ci solve -problem weighted-matching -in - -format wel -json > /dev/null
	rm -f /tmp/mpcgraph-ci

# The daemon acceptance gate: a race-instrumented mpcgraphd on an
# ephemeral port, one cold job plus one cached re-submit per problem
# (bit-identity asserted on the wire), metrics counters, then a
# graceful SIGTERM drain with required zero exit.
service-smoke:
	$(GO) build -race -o /tmp/mpcgraphd-ci ./cmd/mpcgraphd
	$(GO) run ./internal/tools/servicesmoke -bin /tmp/mpcgraphd-ci
	rm -f /tmp/mpcgraphd-ci

# The crash-safety gate: fill a persistent-cache daemon's queue, SIGKILL
# it mid-drain, restart on the same directory, and require every
# persisted result to come back as a disk-tier hit bit-identical to
# testdata/golden_reports.json with zero recomputation — then corrupt an
# entry in place and require quarantine + self-healing. Deliberately NOT
# race-instrumented: the kill must land on the production binary's
# timing, and `race` already covers the data-race surface.
chaos-smoke:
	$(GO) build -o /tmp/mpcgraphd-chaos-ci ./cmd/mpcgraphd
	$(GO) run ./internal/tools/chaossmoke -bin /tmp/mpcgraphd-chaos-ci
	rm -f /tmp/mpcgraphd-chaos-ci

# The cold-path scale gate: generate a ~10⁷-edge R-MAT instance, write
# it to disk, read it back, solve MIS, and fail unless wall time and
# peak RSS stay under the pinned ceilings (rationale in
# docs/performance.md). `make ci` runs the race-instrumented short
# variant at ~10⁶ edges with proportionally relaxed ceilings (the race
# runtime multiplies both time and memory); the full-size production
# gate is `make scale-smoke` (alias `make scale`).
scale-smoke:
	$(GO) run ./internal/tools/scalesmoke

scale: scale-smoke

scale-smoke-short:
	$(GO) run -race ./internal/tools/scalesmoke -edges 1000000 -wall 30s -rss-mb 512

# The allocation-ceiling guards skip themselves under -race (the race
# runtime allocates on its own behalf), so ci runs them explicitly
# without instrumentation; see docs/performance.md.
allocs-guard:
	$(GO) test -run AllocsCeiling ./internal/graph/ ./internal/graphio/ ./internal/mpc/

docs-check:
	$(GO) run ./internal/tools/readmecheck README.md docs/service.md

tables:
	$(GO) run ./cmd/mpcbench -quick -trials 1

json:
	$(GO) run ./cmd/mpcbench -quick -trials 1 -json
