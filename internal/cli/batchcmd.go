package cli

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mpcgraph"
	"mpcgraph/internal/service"
)

// runBatch drives the POST /v1/batches API: it submits many jobs as
// one unit — an explicit spec file, or a sweep assembled from flags
// (scenarios × a seed range × problems) mirroring the bench harness's
// registry sweep — then optionally follows the batch to completion.
//
//	mpcgraph batch -scenarios gnp,ring -seeds 1:50 -problems mis -wait
//	mpcgraph batch -spec sweep.json -stream
//	mpcgraph batch -cancel b000003
//
// The daemon dedups batch members against its result cache and
// in-flight jobs before enqueueing, so resubmitting a sweep whose
// cells are cached performs zero new solves; the final view's dedup
// block reports exactly what was served from where.
func runBatch(args []string, env Env) error {
	fs := flag.NewFlagSet("mpcgraph batch", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	var (
		server      = fs.String("server", "http://127.0.0.1:8080", "base URL of the mpcgraphd daemon")
		specPath    = fs.String("spec", "", "submit a raw BatchRequest JSON file ('-' reads stdin); exclusive with the sweep flags")
		scenarios   = fs.String("scenarios", "", "comma-separated catalog scenarios to sweep")
		n           = fs.Int("n", 0, "scenario vertex count (0 = each scenario's default)")
		seeds       = fs.String("seeds", "1:1", "inclusive seed range from:to (a single value means one seed)")
		problems    = fs.String("problems", "", "comma-separated problems to sweep (empty = every registered pair)")
		modelName   = fs.String("model", "", "restrict the sweep to one model (empty = both where registered)")
		eps         = fs.Float64("eps", 0.1, "approximation slack where applicable")
		memFactor   = fs.Float64("memory-factor", 0, "per-machine memory = factor*n words (0 = default 16)")
		strict      = fs.Bool("strict", false, "fail member jobs on any simulated memory/bandwidth violation")
		workers     = fs.Int("workers", 0, "per-job parallel workers (0 = the server's default)")
		timeout     = fs.Duration("timeout", 0, "server-side deadline per member job (0 = none)")
		noCache     = fs.Bool("no-cache", false, "force cold runs past the deterministic result cache")
		wait        = fs.Bool("wait", false, "poll the batch until every member settles, print the final view")
		stream      = fs.Bool("stream", false, "follow per-job completions as NDJSON until the batch settles")
		cancelID    = fs.String("cancel", "", "cancel the remainder of this batch id and exit")
		statusID    = fs.String("status", "", "print the view of this batch id and exit")
		retries     = fs.Int("retries", 8, "submission retries on 503 before giving up (exit code 6)")
		retryBudget = fs.Duration("retry-budget", 2*time.Minute, "total planned retry sleep before giving up (exit code 6)")
		params      = paramFlag{}
	)
	fs.Var(params, "param", "scenario parameter key=value, applied to every swept scenario (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	switch {
	case *cancelID != "":
		view, err := cancelBatch(*server, *cancelID)
		return printBatchJSON(env, view, err)
	case *statusID != "" && !*stream:
		body, err := getJSON(*server, "/v1/batches/"+*statusID)
		if err != nil {
			return err
		}
		return printRaw(env, body)
	case *statusID != "": // -status ID -stream: follow an existing batch
		return streamBatch(env, *server, *statusID)
	}

	req, seedFrom, err := buildBatchRequest(env, fs, *specPath, *scenarios, *n, *seeds, *problems, *modelName,
		params, *eps, *memFactor, *strict, *workers, *timeout, *noCache)
	if err != nil {
		return err
	}

	// Submission retry loop. Batches are admitted whole or rejected
	// whole: the feeder applies queue backpressure server-side, so the
	// only retryable rejection is 503 (draining behind a balancer).
	bo := newBackoff(seedFrom, "batch-submit", 100*time.Millisecond, 5*time.Second, *retries, *retryBudget)
	var view *service.BatchView
	for {
		view, err = postBatch(*server, req)
		if err == nil {
			break
		}
		var he *httpError
		if !errors.As(err, &he) || !he.retryable() {
			return err
		}
		delay, ok := bo.next(he.retryAfter)
		if !ok {
			return fmt.Errorf("batch: %v: %w after %d attempts", err, ErrRetriesExhausted, bo.attempts+1)
		}
		fmt.Fprintf(env.Stderr, "mpcgraph: batch rejected (%d), retrying in %v\n", he.status, delay.Round(time.Millisecond))
		time.Sleep(delay)
	}

	switch {
	case *stream:
		return streamBatch(env, *server, view.ID)
	case *wait:
		view, err = waitBatch(*server, view.ID, seedFrom)
		if err != nil {
			return err
		}
	}
	if err := printBatchJSON(env, view, nil); err != nil {
		return err
	}
	if view.Counts.Failed > 0 {
		return fmt.Errorf("batch %s: %d member job(s) failed", view.ID, view.Counts.Failed)
	}
	return nil
}

// buildBatchRequest assembles the wire request from -spec or the sweep
// flags, and picks the backoff seed (the low end of the seed range, so
// a scripted sweep plans one reproducible delay sequence).
func buildBatchRequest(env Env, fs *flag.FlagSet, specPath, scenarios string, n int, seeds, problems, modelName string,
	params paramFlag, eps, memFactor float64, strict bool, workers int, timeout time.Duration, noCache bool,
) (*service.BatchRequest, uint64, error) {
	if specPath != "" {
		if scenarios != "" {
			return nil, 0, fmt.Errorf("-spec and -scenarios are mutually exclusive")
		}
		raw, err := readAll(env, specPath)
		if err != nil {
			return nil, 0, err
		}
		var req service.BatchRequest
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, 0, fmt.Errorf("bad batch spec %s: %v", specPath, err)
		}
		var seedFrom uint64
		if req.Sweep != nil && req.Sweep.Seeds != nil {
			seedFrom = req.Sweep.Seeds.From
		}
		return &req, seedFrom, nil
	}
	if scenarios == "" {
		fmt.Fprintln(env.Stderr, "need a sweep: -scenarios <names> (plus -seeds, -problems) or -spec <file>")
		fs.Usage()
		return nil, 0, fmt.Errorf("batch requires -scenarios or -spec")
	}
	from, to, err := parseSeedRange(seeds)
	if err != nil {
		return nil, 0, err
	}
	sweep := &service.SweepRequest{
		Seeds: &service.SeedRange{From: from, To: to},
		Options: service.OptionsRequest{
			Eps:          eps,
			MemoryFactor: memFactor,
			Strict:       strict,
			Workers:      workers,
		},
	}
	for _, name := range strings.Split(scenarios, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		sweep.Scenarios = append(sweep.Scenarios, service.ScenarioRequest{Name: name, N: n, Params: params})
	}
	if problems != "" {
		model := modelName
		if model == "" {
			model = mpcgraph.ModelMPC.String()
		}
		for _, p := range strings.Split(problems, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			sweep.Pairs = append(sweep.Pairs, service.PairRequest{Problem: p, Model: model})
		}
	} else if modelName != "" {
		return nil, 0, fmt.Errorf("-model needs -problems (an empty problem list sweeps every registered pair)")
	}
	return &service.BatchRequest{
		Sweep:     sweep,
		TimeoutMs: timeout.Milliseconds(),
		NoCache:   noCache,
	}, from, nil
}

// parseSeedRange reads "from:to" (inclusive) or a single seed.
func parseSeedRange(s string) (from, to uint64, err error) {
	lo, hi, ranged := strings.Cut(s, ":")
	from, err = strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad -seeds %q: %v", s, err)
	}
	if !ranged {
		return from, from, nil
	}
	to, err = strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad -seeds %q: %v", s, err)
	}
	if to < from {
		return 0, 0, fmt.Errorf("bad -seeds %q: to < from", s)
	}
	return from, to, nil
}

// postBatch submits the batch and decodes the admission view.
func postBatch(server string, req *service.BatchRequest) (*service.BatchView, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(strings.TrimSuffix(server, "/")+"/v1/batches", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	return decodeBatchResponse(resp, "batch")
}

// cancelBatch cancels the remainder of a batch (idempotent).
func cancelBatch(server, id string) (*service.BatchView, error) {
	req, err := http.NewRequest(http.MethodDelete, strings.TrimSuffix(server, "/")+"/v1/batches/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	return decodeBatchResponse(resp, "cancel")
}

func decodeBatchResponse(resp *http.Response, op string) (*service.BatchView, error) {
	defer resp.Body.Close()
	body, err := readAllBody(resp)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, &httpError{
			status:     resp.StatusCode,
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			msg:        fmt.Sprintf("%s: %s: %s", op, resp.Status, serverError(body)),
		}
	}
	var view service.BatchView
	if err := json.Unmarshal(body, &view); err != nil {
		return nil, fmt.Errorf("%s: bad response: %v", op, err)
	}
	return &view, nil
}

// waitBatch polls the batch view until every member settles, pacing
// like waitJob: jittered backoff from 20ms toward a 1s cap, tolerating
// a bounded run of retryable errors from a proxy.
func waitBatch(server, id string, seed uint64) (*service.BatchView, error) {
	pace := newBackoff(seed, "batch-poll", 20*time.Millisecond, time.Second, int(^uint(0)>>1), 0)
	consecutive := 0
	for {
		body, err := getJSON(server, "/v1/batches/"+id)
		var retryAfter time.Duration
		if err != nil {
			var he *httpError
			if !errors.As(err, &he) || !he.retryable() {
				return nil, err
			}
			consecutive++
			if consecutive > 10 {
				return nil, fmt.Errorf("batch wait: %v: %w", err, ErrRetriesExhausted)
			}
			retryAfter = he.retryAfter
		} else {
			consecutive = 0
			var view service.BatchView
			if err := json.Unmarshal(body, &view); err != nil {
				return nil, fmt.Errorf("batch wait: bad response: %v", err)
			}
			if view.State == "done" {
				return &view, nil
			}
		}
		delay, _ := pace.next(retryAfter)
		time.Sleep(delay)
	}
}

// streamBatch follows GET /v1/batches/{id}/stream, copying the NDJSON
// per-job completion lines through to stdout until the final done
// marker. The final line carries the aggregate batch view; a batch
// with failed members exits non-zero after the full stream has been
// relayed.
func streamBatch(env Env, server, id string) error {
	resp, err := http.Get(strings.TrimSuffix(server, "/") + "/v1/batches/" + id + "/stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := readAllBody(resp)
		return &httpError{
			status: resp.StatusCode,
			msg:    fmt.Sprintf("stream: %s: %s", resp.Status, serverError(body)),
		}
	}
	var finalBatch *service.BatchView
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		raw := sc.Bytes()
		if _, err := env.Stdout.Write(append(raw, '\n')); err != nil {
			return err
		}
		// The done marker is the only line whose top-level "batch" is an
		// object (member lines carry the batch id as a string, so they
		// fail this decode and fall through).
		var line struct {
			Done  bool               `json:"done"`
			Batch *service.BatchView `json:"batch"`
		}
		if json.Unmarshal(raw, &line) == nil && line.Done {
			finalBatch = line.Batch
			break
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream: %v", err)
	}
	if finalBatch != nil && finalBatch.Counts.Failed > 0 {
		return fmt.Errorf("batch %s: %d member job(s) failed", finalBatch.ID, finalBatch.Counts.Failed)
	}
	return nil
}

func readAllBody(resp *http.Response) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

func printBatchJSON(env Env, view *service.BatchView, err error) error {
	if err != nil {
		return err
	}
	enc := json.NewEncoder(env.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(view)
}

func printRaw(env Env, body []byte) error {
	_, err := env.Stdout.Write(body)
	return err
}
