// Command mpcgraph is the unified CLI over the paper reproduction: it
// materializes catalog scenarios to portable graph files, solves any
// registered (problem, model) pair on instances from disk or from the
// catalog, regenerates the experiment tables, lists every registry it
// dispatches on, and drives a running mpcgraphd — submitting jobs and
// batches, streaming traces, and rendering a live `top` dashboard of
// queue depth, cache hit rates, and latency percentiles.
//
// Usage:
//
//	mpcgraph gen -scenario rmat -n 65536 -seed 1 -out web.mtx.gz
//	mpcgraph solve -problem mis -model mpc -in web.mtx.gz -json
//	mpcgraph solve -problem weighted-matching -scenario weighted-gnp -seed 7
//	mpcgraph bench -experiment E5 -quick
//	mpcgraph batch -scenarios gnp,ring -seeds 1:50 -problems mis -wait
//	mpcgraph bench -experiment E18 -remote http://127.0.0.1:8080
//	mpcgraph top -interval 2s
//	mpcgraph list
//
// Run "mpcgraph <command> -h" for per-command flags. The deprecated
// mpcmis and mpcmatch commands are thin shims over this tool.
//
// # Exit codes
//
// Dispatch failures are sentinel errors (errors.Is-able through the
// public mpcgraph package), each mapped to its own exit code so scripts
// can distinguish "you typo'd the problem" from "that pair has no
// algorithm":
//
//	0  success
//	1  generic failure (I/O, malformed input, flag errors, strict-mode
//	   capacity/budget violations)
//	2  unknown problem or model name (mpcgraph.ErrUnknownProblem,
//	   mpcgraph.ErrUnknownModel)
//	3  no algorithm registered for the requested (problem, model) pair
//	   (mpcgraph.ErrUnsupported — e.g. weighted-matching on
//	   congested-clique, which Corollary 1.4 does not state)
//	4  the problem requires a weighted instance
//	   (mpcgraph.ErrNeedWeightedGraph)
//	5  the solve exceeded its deadline (`solve -timeout`,
//	   context.DeadlineExceeded — the run was aborted between
//	   simulated rounds)
//	6  a retryable daemon rejection (HTTP 429 queue-full / 503
//	   draining) outlasted `submit -retries`/`-retry-budget`
//	   (cli.ErrRetriesExhausted — the daemon is saturated, retry
//	   later with coarser pacing)
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"mpcgraph"
	"mpcgraph/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpcgraph:", err)
		os.Exit(exitCode(err))
	}
}

func run(args []string) error {
	return cli.Run(args, cli.Env{Stdin: os.Stdin, Stdout: os.Stdout, Stderr: os.Stderr})
}

// exitCode maps the dispatch sentinels onto the documented exit codes.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, mpcgraph.ErrUnknownProblem), errors.Is(err, mpcgraph.ErrUnknownModel):
		return 2
	case errors.Is(err, mpcgraph.ErrUnsupported):
		return 3
	case errors.Is(err, mpcgraph.ErrNeedWeightedGraph):
		return 4
	case errors.Is(err, context.DeadlineExceeded):
		return 5
	case errors.Is(err, cli.ErrRetriesExhausted):
		return 6
	}
	return 1
}
