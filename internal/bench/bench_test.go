package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs()[%d] = %s, want %s (numeric ordering)", i, got[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", Config{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestAllExperimentsQuick is tiered rather than skipped: a full -short
// run still smokes the registry sweep (E18, the cheapest experiment and
// the one that exercises every registered pair), while the default run
// sweeps all of E1–E18 at quick scale.
func TestAllExperimentsQuick(t *testing.T) {
	ids := IDs()
	if testing.Short() {
		ids = []string{RegistryExperimentID}
	}
	cfg := Config{Seed: 1, Trials: 1, Quick: true}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", id)
			}
			if tab.Claim == "" || tab.Title == "" {
				t.Error("missing claim or title")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("row width %d != %d columns: %v", len(row), len(tab.Columns), row)
				}
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			if !strings.Contains(buf.String(), id+":") {
				t.Error("render missing experiment id")
			}
		})
	}
}

func TestNoExperimentViolatesAudits(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments")
	}
	// Meta-assertion: every experiment that reports a "violations" column
	// must report zero — the paper's memory/bandwidth claims hold across
	// the whole suite.
	cfg := Config{Seed: 3, Trials: 1, Quick: true}
	for _, id := range IDs() {
		tab, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		col := -1
		for i, c := range tab.Columns {
			if c == "violations" {
				col = i
			}
		}
		if col == -1 {
			continue
		}
		for _, row := range tab.Rows {
			if row[col] != "0" {
				t.Errorf("%s: violations = %s in row %v", id, row[col], row)
			}
		}
	}
}

// TestSolveRegistryBenchmarkCoverage is the CI gate of the unified
// Solve redesign: every (Problem, Model) pair registered in
// internal/registry must produce a valid row in the registry sweep.
// A pair that errors, validates false, or is silently skipped fails
// the build.
func TestSolveRegistryBenchmarkCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registered algorithm at quick scale")
	}
	if err := VerifyRegistryCoverage(Config{Seed: 5, Trials: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full experiments")
	}
	cfg := Config{Seed: 7, Trials: 1, Quick: true}
	a, err := Run("E5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("E5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	a.Render(&ba)
	b.Render(&bb)
	if ba.String() != bb.String() {
		t.Error("same config produced different tables")
	}
}

func TestRenderFormatting(t *testing.T) {
	tab := &Table{
		ID:      "EX",
		Title:   "demo",
		Claim:   "none",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "hello",
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== EX: demo", "claim: none", "a    bbbb", "333  4", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestHelperStats(t *testing.T) {
	if mean(nil) != 0 {
		t.Error("mean(nil) != 0")
	}
	if mean([]float64{1, 3}) != 2 {
		t.Error("mean wrong")
	}
	if maxf([]float64{1, 5, 2}) != 5 {
		t.Error("maxf wrong")
	}
	if ll := loglog(1 << 16); ll != 4 {
		t.Errorf("loglog(2^16) = %v, want 4", ll)
	}
}

func TestRenderJSONRoundTrips(t *testing.T) {
	tab := &Table{
		ID:      "E0",
		Title:   "json smoke",
		Claim:   "rows survive the round trip",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
		Notes:   "note",
	}
	var buf bytes.Buffer
	if err := tab.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got.ID != "E0" || len(got.Rows) != 2 || got.Rows[1][1] != "4" {
		t.Fatalf("round trip mangled the table: %+v", got)
	}
}
