package graph

import (
	"fmt"

	"mpcgraph/internal/rng"
)

// Weighted is a simple undirected graph with positive edge weights,
// represented as an explicit edge list next to its CSR skeleton. It is
// the input type for the weighted-matching corollary (Corollary 1.4).
type Weighted struct {
	*Graph

	// W[id] is the weight of the edge with the given EdgeIndex id.
	W []float64
	// Ix indexes the edges of Graph.
	Ix *EdgeIndex
}

// NewWeighted wraps g with the given per-edge weights (indexed by
// NewEdgeIndex order). All weights must be positive.
func NewWeighted(g *Graph, w []float64) (*Weighted, error) {
	ix := NewEdgeIndex(g)
	if len(w) != ix.NumEdges() {
		return nil, fmt.Errorf("graph: %d weights for %d edges", len(w), ix.NumEdges())
	}
	for i, x := range w {
		if x <= 0 {
			u, v := ix.Endpoints(int32(i))
			return nil, fmt.Errorf("graph: non-positive weight %v on edge {%d,%d}", x, u, v)
		}
	}
	return &Weighted{Graph: g, W: w, Ix: ix}, nil
}

// RandomWeights attaches independent uniform weights in [lo, hi) to g.
func RandomWeights(g *Graph, lo, hi float64, src *rng.Source) *Weighted {
	ix := NewEdgeIndex(g)
	w := make([]float64, ix.NumEdges())
	for i := range w {
		w[i] = src.UniformIn(lo, hi)
	}
	return &Weighted{Graph: g, W: w, Ix: ix}
}

// EdgeWeight returns the weight of edge {u, v}.
func (wg *Weighted) EdgeWeight(u, v int32) float64 {
	return wg.W[wg.Ix.ID(u, v)]
}

// MatchingWeight returns the total weight of the matched edges.
func (wg *Weighted) MatchingWeight(m Matching) float64 {
	total := 0.0
	for v, u := range m {
		if u >= 0 && int32(v) < u {
			total += wg.EdgeWeight(int32(v), u)
		}
	}
	return total
}

// MaxWeight returns the largest edge weight, or 0 on the empty graph.
func (wg *Weighted) MaxWeight() float64 {
	max := 0.0
	for _, w := range wg.W {
		if w > max {
			max = w
		}
	}
	return max
}
