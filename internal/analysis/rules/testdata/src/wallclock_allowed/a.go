// Package service poses as mpcgraph/internal/service, which is on the
// no-wall-clock allow list: job lifecycle timestamps and uptime are
// operational metadata that never enters audited costs. No findings.
package service

import "time"

func uptimeSince() time.Time { return time.Now() }
