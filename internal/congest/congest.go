// Package congest simulates the CONGESTED-CLIQUE model of distributed
// computing [LPPSP03] as used by the paper: n players communicate in
// synchronous rounds, and in each round every player may send O(log n)
// bits — one machine word in this simulator — to every other player.
//
// The simulator meters rounds and per-pair bandwidth, and implements
// Lenzen's routing scheme [Len13] as a constant-round primitive with its
// precondition (no player sends or receives more than n words) validated,
// exactly as the paper invokes it in Section 2.
package congest

import (
	"context"
	"errors"
	"fmt"

	"mpcgraph/internal/model"
	"mpcgraph/internal/par"
)

// Config describes a clique deployment.
type Config struct {
	// Players is n, the number of players (one per vertex).
	Players int
	// PairBudgetWords is how many words each ordered pair may carry per
	// round; 1 corresponds to the standard O(log n)-bit model.
	PairBudgetWords int
	// Strict makes budget violations fail the round.
	Strict bool
	// Workers bounds the goroutines used to process a round's outboxes
	// (0 = all cores, 1 = sequential). Every setting produces identical
	// inboxes, metrics and errors.
	Workers int
	// Ctx, when non-nil, is checked at the start of every round-charging
	// operation; a cancelled context aborts the operation with ctx.Err(),
	// making long simulated runs cancellable between rounds.
	Ctx context.Context
	// Trace, when non-nil, receives one TraceEvent per metered
	// communication step (Round and ChargeRound emit one each; the
	// Lenzen primitives emit one event covering their constant rounds).
	// Tracing never changes results, metrics or errors.
	Trace model.TraceFunc
}

// Metrics aggregates the model costs incurred so far.
type Metrics struct {
	// Rounds counts communication rounds, including the constant-round
	// charges of the routing primitives.
	Rounds int
	// MaxPlayerIn is the largest per-round receive volume of any player.
	MaxPlayerIn int64
	// MaxPlayerOut is the largest per-round send volume of any player.
	MaxPlayerOut int64
	// TotalWords is the total communication volume.
	TotalWords int64
	// Violations counts budget/precondition violations (non-strict mode).
	Violations int
}

// Message is one unit of communication between players.
type Message struct {
	From    int
	To      int
	Words   int
	Payload any
}

// BudgetError reports a violated bandwidth constraint.
type BudgetError struct {
	Round  int
	Detail string
}

// Error implements the error interface.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("congest: round %d: %s", e.Round, e.Detail)
}

// Clique is a simulated CONGESTED-CLIQUE network.
type Clique struct {
	cfg    Config
	met    Metrics
	active int // algorithm-reported undecided-vertex gauge (SetActive)
}

// New validates cfg and returns a fresh clique.
func New(cfg Config) (*Clique, error) {
	if cfg.Players <= 0 {
		return nil, errors.New("congest: need at least one player")
	}
	if cfg.PairBudgetWords <= 0 {
		return nil, errors.New("congest: pair budget must be positive")
	}
	return &Clique{cfg: cfg}, nil
}

// Players returns n.
func (q *Clique) Players() int { return q.cfg.Players }

// Metrics returns a snapshot of the accumulated metrics.
func (q *Clique) Metrics() Metrics { return q.met }

// SetActive records the algorithm's current count of undecided vertices,
// reported on subsequent TraceEvents. Observational only.
func (q *Clique) SetActive(vertices int) { q.active = vertices }

// interrupted returns the configured context's error, if any.
func (q *Clique) interrupted() error {
	if q.cfg.Ctx == nil {
		return nil
	}
	return q.cfg.Ctx.Err()
}

// emit delivers one trace event for a step that moved words of volume.
func (q *Clique) emit(words int64) {
	if q.cfg.Trace != nil {
		q.cfg.Trace(model.TraceEvent{Round: q.met.Rounds, LiveWords: words, ActiveVertices: q.active})
	}
}

// Round executes one synchronous round. out[i] holds player i's messages;
// the per-ordered-pair budget is enforced. Delivery order is by sender.
// The per-player accounting fans out across Workers goroutines; inboxes,
// metrics and errors are bit-identical for every Workers setting.
func (q *Clique) Round(out [][]Message) ([][]Message, error) {
	if len(out) != q.cfg.Players {
		return nil, fmt.Errorf("congest: Round got %d outboxes for %d players", len(out), q.cfg.Players)
	}
	if err := q.interrupted(); err != nil {
		return nil, err
	}
	q.met.Rounds++
	n := q.cfg.Players
	shards := par.ShardCount(q.cfg.Workers, n)
	outWords := make([]int64, n)
	shardIn := make([][]int64, shards)
	shardCnt := make([][]int32, shards)
	shardTotal := make([]int64, shards)
	shardViol := make([]int, shards)
	shardErr := make([]error, shards)       // malformed messages: abort the round
	shardBudgetErr := make([]error, shards) // first budget violation, by sender order
	for w := 0; w < shards; w++ {
		shardIn[w] = make([]int64, n)
		shardCnt[w] = make([]int32, n)
	}
	par.For(q.cfg.Workers, n, func(lo, hi, w int) {
		iw, cw := shardIn[w], shardCnt[w]
		// The pair budget only aggregates within one sender's box, so a
		// worker-local tally with per-sender reset suffices.
		pw := make([]int, n)
		touched := make([]int, 0, 16)
		for i := lo; i < hi; i++ {
			var ow int64
			for k := range out[i] {
				msg := &out[i][k]
				if msg.To < 0 || msg.To >= n {
					shardErr[w] = fmt.Errorf("congest: player %d sent to invalid player %d", i, msg.To)
					return
				}
				if msg.To == i {
					shardErr[w] = fmt.Errorf("congest: player %d sent to itself", i)
					return
				}
				if msg.Words < 0 {
					shardErr[w] = fmt.Errorf("congest: player %d sent negative-size message", i)
					return
				}
				if pw[msg.To] == 0 {
					touched = append(touched, msg.To)
				}
				pw[msg.To] += msg.Words
				if pw[msg.To] > q.cfg.PairBudgetWords {
					shardViol[w]++
					if shardBudgetErr[w] == nil {
						shardBudgetErr[w] = &BudgetError{
							Round:  q.met.Rounds,
							Detail: fmt.Sprintf("pair (%d,%d) carries %d words, budget %d", i, msg.To, pw[msg.To], q.cfg.PairBudgetWords),
						}
					}
				}
				ow += int64(msg.Words)
				iw[msg.To] += int64(msg.Words)
				cw[msg.To]++
				shardTotal[w] += int64(msg.Words)
			}
			outWords[i] = ow
			for _, t := range touched {
				pw[t] = 0
			}
			touched = touched[:0]
		}
	})
	for _, err := range shardErr {
		if err != nil {
			return nil, err
		}
	}
	var firstErr error
	var roundWords int64
	for w := 0; w < shards; w++ {
		q.met.TotalWords += shardTotal[w]
		roundWords += shardTotal[w]
		q.met.Violations += shardViol[w]
		if firstErr == nil {
			firstErr = shardBudgetErr[w]
		}
	}
	q.emit(roundWords)
	in := make([][]Message, n)
	inWords := make([]int64, n)
	par.For(q.cfg.Workers, n, func(lo, hi, _ int) {
		for j := lo; j < hi; j++ {
			var words int64
			var cnt int32
			for w := 0; w < shards; w++ {
				words += shardIn[w][j]
				base := cnt
				cnt += shardCnt[w][j]
				shardCnt[w][j] = base
			}
			inWords[j] = words
			if cnt > 0 {
				in[j] = make([]Message, cnt)
			}
		}
	})
	par.For(q.cfg.Workers, n, func(lo, hi, w int) {
		cur := shardCnt[w]
		for i := lo; i < hi; i++ {
			for k := range out[i] {
				msg := out[i][k]
				msg.From = i
				in[msg.To][cur[msg.To]] = msg
				cur[msg.To]++
			}
		}
	})
	for _, ow := range outWords {
		if ow > q.met.MaxPlayerOut {
			q.met.MaxPlayerOut = ow
		}
	}
	for _, w := range inWords {
		if w > q.met.MaxPlayerIn {
			q.met.MaxPlayerIn = w
		}
	}
	if firstErr != nil && q.cfg.Strict {
		return nil, firstErr
	}
	return in, nil
}

// LenzenRoute routes an arbitrary multiset of messages in O(1) rounds
// (charged as lenzenRounds) provided no player sends more than n words and
// no player is the destination of more than n words — the guarantee of
// Lenzen's deterministic routing scheme [Len13]. The precondition is
// validated; violations are findings about the calling algorithm.
func (q *Clique) LenzenRoute(out [][]Message) ([][]Message, error) {
	const lenzenRounds = 2
	if len(out) != q.cfg.Players {
		return nil, fmt.Errorf("congest: LenzenRoute got %d outboxes for %d players", len(out), q.cfg.Players)
	}
	if err := q.interrupted(); err != nil {
		return nil, err
	}
	n := q.cfg.Players
	limit := int64(n) * int64(q.cfg.PairBudgetWords)
	q.met.Rounds += lenzenRounds
	shards := par.ShardCount(q.cfg.Workers, n)
	outWords := make([]int64, n)
	shardIn := make([][]int64, shards)
	shardCnt := make([][]int32, shards)
	shardTotal := make([]int64, shards)
	shardErr := make([]error, shards)
	for w := 0; w < shards; w++ {
		shardIn[w] = make([]int64, n)
		shardCnt[w] = make([]int32, n)
	}
	par.For(q.cfg.Workers, n, func(lo, hi, w int) {
		iw, cw := shardIn[w], shardCnt[w]
		for i := lo; i < hi; i++ {
			var ow int64
			for k := range out[i] {
				msg := &out[i][k]
				if msg.To < 0 || msg.To >= n {
					shardErr[w] = fmt.Errorf("congest: player %d routes to invalid player %d", i, msg.To)
					return
				}
				if msg.Words < 0 {
					shardErr[w] = fmt.Errorf("congest: player %d routes negative-size message", i)
					return
				}
				ow += int64(msg.Words)
				iw[msg.To] += int64(msg.Words)
				cw[msg.To]++
				shardTotal[w] += int64(msg.Words)
			}
			outWords[i] = ow
		}
	})
	for _, err := range shardErr {
		if err != nil {
			return nil, err
		}
	}
	var routeWords int64
	for _, t := range shardTotal {
		q.met.TotalWords += t
		routeWords += t
	}
	q.emit(routeWords)
	in := make([][]Message, n)
	inWords := make([]int64, n)
	par.For(q.cfg.Workers, n, func(lo, hi, _ int) {
		for j := lo; j < hi; j++ {
			var words int64
			var cnt int32
			for w := 0; w < shards; w++ {
				words += shardIn[w][j]
				base := cnt
				cnt += shardCnt[w][j]
				shardCnt[w][j] = base
			}
			inWords[j] = words
			if cnt > 0 {
				in[j] = make([]Message, cnt)
			}
		}
	})
	par.For(q.cfg.Workers, n, func(lo, hi, w int) {
		cur := shardCnt[w]
		for i := lo; i < hi; i++ {
			for k := range out[i] {
				msg := out[i][k]
				msg.From = i
				in[msg.To][cur[msg.To]] = msg
				cur[msg.To]++
			}
		}
	})
	var firstErr error
	for i, ow := range outWords {
		if ow > limit {
			q.met.Violations++
			if firstErr == nil {
				firstErr = &BudgetError{
					Round:  q.met.Rounds,
					Detail: fmt.Sprintf("player %d sends %d words, Lenzen limit %d", i, ow, limit),
				}
			}
		}
		if ow > q.met.MaxPlayerOut {
			q.met.MaxPlayerOut = ow
		}
	}
	for j, w := range inWords {
		if w > limit {
			q.met.Violations++
			if firstErr == nil {
				firstErr = &BudgetError{
					Round:  q.met.Rounds,
					Detail: fmt.Sprintf("player %d receives %d words, Lenzen limit %d", j, w, limit),
				}
			}
		}
		if w > q.met.MaxPlayerIn {
			q.met.MaxPlayerIn = w
		}
	}
	if firstErr != nil && q.cfg.Strict {
		return nil, firstErr
	}
	return in, nil
}

// ChargeRound records one synchronous round with the given volume profile
// without materializing per-message payloads. Algorithms that only need
// cost accounting (round counts, loads) at large n use this instead of
// Round, which is O(#messages). maxPairWords is the largest volume any
// ordered pair carries; maxOut/maxIn are the largest per-player send and
// receive volumes; total is the overall volume.
func (q *Clique) ChargeRound(maxPairWords int, maxOut, maxIn, total int64) error {
	if err := q.interrupted(); err != nil {
		return err
	}
	q.met.Rounds++
	q.met.TotalWords += total
	q.emit(total)
	if maxOut > q.met.MaxPlayerOut {
		q.met.MaxPlayerOut = maxOut
	}
	if maxIn > q.met.MaxPlayerIn {
		q.met.MaxPlayerIn = maxIn
	}
	if maxPairWords > q.cfg.PairBudgetWords {
		q.met.Violations++
		if q.cfg.Strict {
			return &BudgetError{
				Round:  q.met.Rounds,
				Detail: fmt.Sprintf("some pair carries %d words, budget %d", maxPairWords, q.cfg.PairBudgetWords),
			}
		}
	}
	return nil
}

// ChargeLenzen records one invocation of Lenzen's routing scheme (two
// rounds) with the given volume profile, validating the scheme's
// precondition that no player sends or receives more than n·budget words.
func (q *Clique) ChargeLenzen(maxOut, maxIn, total int64) error {
	const lenzenRounds = 2
	if err := q.interrupted(); err != nil {
		return err
	}
	q.met.Rounds += lenzenRounds
	q.met.TotalWords += total
	q.emit(total)
	if maxOut > q.met.MaxPlayerOut {
		q.met.MaxPlayerOut = maxOut
	}
	if maxIn > q.met.MaxPlayerIn {
		q.met.MaxPlayerIn = maxIn
	}
	limit := int64(q.cfg.Players) * int64(q.cfg.PairBudgetWords)
	if maxOut > limit || maxIn > limit {
		q.met.Violations++
		if q.cfg.Strict {
			return &BudgetError{
				Round:  q.met.Rounds,
				Detail: fmt.Sprintf("Lenzen volume out=%d in=%d exceeds limit %d", maxOut, maxIn, limit),
			}
		}
	}
	return nil
}

// AllBroadcast has every player send the same wordsEach-sized payload to
// all other players in one round (legal whenever wordsEach fits the pair
// budget). payloads[i] is player i's value; the result received[j][i] is
// payloads[i] for every j != i, nil at i == j.
func (q *Clique) AllBroadcast(wordsEach int, payloads []any) ([][]any, error) {
	n := q.cfg.Players
	if len(payloads) != n {
		return nil, fmt.Errorf("congest: AllBroadcast got %d payloads for %d players", len(payloads), n)
	}
	if err := q.interrupted(); err != nil {
		return nil, err
	}
	if wordsEach > q.cfg.PairBudgetWords {
		q.met.Violations++
		if q.cfg.Strict {
			return nil, &BudgetError{Round: q.met.Rounds + 1, Detail: fmt.Sprintf("broadcast of %d words exceeds pair budget %d", wordsEach, q.cfg.PairBudgetWords)}
		}
	}
	q.met.Rounds++
	per := int64(wordsEach) * int64(n-1)
	q.met.TotalWords += per * int64(n)
	q.emit(per * int64(n))
	if per > q.met.MaxPlayerOut {
		q.met.MaxPlayerOut = per
	}
	if per > q.met.MaxPlayerIn {
		q.met.MaxPlayerIn = per
	}
	received := make([][]any, n)
	par.For(q.cfg.Workers, n, func(lo, hi, _ int) {
		for j := lo; j < hi; j++ {
			row := make([]any, n)
			for i := 0; i < n; i++ {
				if i != j {
					row[i] = payloads[i]
				}
			}
			received[j] = row
		}
	})
	return received, nil
}
