package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"mpcgraph"
	"mpcgraph/internal/graph"
	"mpcgraph/internal/model"
	"mpcgraph/internal/registry"
)

// The disk tier persists Reports in a canonical, versioned binary
// serialization. The format must round-trip a Report bit-for-bit —
// recovery after a restart is only sound because a decoded Report is
// indistinguishable from the one the cold run produced — so floats are
// stored as their exact IEEE-754 bit patterns and every collection is
// written in its in-memory order (which is itself deterministic by the
// Workers-invariance contract).
//
// Entry layout:
//
//	magic   "mpcgraphd-report-v1\n"
//	body    the fields of registry.Report, little-endian (see encode)
//	trailer SHA-256 over magic+body (32 bytes)
//
// The trailing checksum is what makes torn or bit-rotted entries
// detectable: a crash between write and rename never produces a
// visible file at all (writes are temp+fsync+rename), and a file
// damaged in place fails the checksum and is quarantined, never
// served. Unknown magic versions are quarantined the same way, so a
// future layout change (bump reportCodecVersion) cannot misparse old
// entries.

// reportCodecVersion tags the on-disk entry layout; bump on any change.
const reportCodecVersion = "mpcgraphd-report-v1\n"

// checksumLen is the length of the SHA-256 trailer.
const checksumLen = sha256.Size

// encodeReport renders rep in the canonical entry layout, checksum
// included.
func encodeReport(rep *mpcgraph.Report) []byte {
	var b bytes.Buffer
	b.WriteString(reportCodecVersion)
	w := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		b.Write(buf[:])
	}
	ws := func(s string) {
		w(uint64(len(s)))
		b.WriteString(s)
	}
	wbools := func(set []bool) { // nil encoded as 0, non-nil as len+1
		if set == nil {
			w(0)
			return
		}
		w(uint64(len(set)) + 1)
		for _, v := range set {
			if v {
				b.WriteByte(1)
			} else {
				b.WriteByte(0)
			}
		}
	}

	ws(rep.Problem.String())
	ws(rep.Model.String())
	wbools(rep.InMIS)
	if rep.M == nil {
		w(0)
	} else {
		w(uint64(len(rep.M)) + 1)
		for _, mate := range rep.M {
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], uint32(mate))
			b.Write(buf[:])
		}
	}
	wbools(rep.InCover)
	w(math.Float64bits(rep.FractionalWeight))
	w(math.Float64bits(rep.Value))
	w(uint64(rep.Rounds))
	w(uint64(rep.Phases))
	w(uint64(rep.MaxMachineWords))
	w(uint64(rep.TotalWords))
	w(uint64(rep.Violations))
	w(uint64(rep.Wall.Nanoseconds()))
	w(uint64(len(rep.Stages)))
	for _, st := range rep.Stages {
		ws(st.Name)
		w(uint64(st.Rounds))
		w(uint64(st.Words))
	}

	sum := sha256.Sum256(b.Bytes())
	b.Write(sum[:])
	return b.Bytes()
}

// decodeReport parses one entry, validating version and checksum. Any
// error means the entry must be quarantined, not served.
func decodeReport(data []byte) (*mpcgraph.Report, error) {
	if len(data) < len(reportCodecVersion)+checksumLen {
		return nil, fmt.Errorf("entry truncated (%d bytes)", len(data))
	}
	if string(data[:len(reportCodecVersion)]) != reportCodecVersion {
		return nil, fmt.Errorf("unknown entry version %q", string(data[:min(len(data), 24)]))
	}
	payload, trailer := data[:len(data)-checksumLen], data[len(data)-checksumLen:]
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("checksum mismatch (torn or corrupted entry)")
	}

	rd := payload[len(reportCodecVersion):]
	fail := func() error { return fmt.Errorf("entry body truncated") }
	r := func() (uint64, error) {
		if len(rd) < 8 {
			return 0, fail()
		}
		v := binary.LittleEndian.Uint64(rd[:8])
		rd = rd[8:]
		return v, nil
	}
	rs := func() (string, error) {
		n, err := r()
		if err != nil {
			return "", err
		}
		if uint64(len(rd)) < n {
			return "", fail()
		}
		s := string(rd[:n])
		rd = rd[n:]
		return s, nil
	}
	rbools := func() ([]bool, error) {
		n, err := r()
		if err != nil || n == 0 {
			return nil, err
		}
		n--
		if uint64(len(rd)) < n {
			return nil, fail()
		}
		set := make([]bool, n)
		for i := range set {
			set[i] = rd[i] != 0
		}
		rd = rd[n:]
		return set, nil
	}

	rep := &mpcgraph.Report{}
	problemName, err := rs()
	if err != nil {
		return nil, err
	}
	if rep.Problem, err = registry.ParseProblem(problemName); err != nil {
		return nil, fmt.Errorf("entry names %v", err)
	}
	modelName, err := rs()
	if err != nil {
		return nil, err
	}
	if rep.Model, err = model.ParseModel(modelName); err != nil {
		return nil, fmt.Errorf("entry names %v", err)
	}
	if rep.InMIS, err = rbools(); err != nil {
		return nil, err
	}
	mLen, err := r()
	if err != nil {
		return nil, err
	}
	if mLen > 0 {
		mLen--
		// Divide rather than multiply: 4*mLen can wrap for a crafted
		// count near 2^62, turning an oversized length into a small one
		// and the make below into a panic instead of a decode error.
		if mLen > uint64(len(rd))/4 {
			return nil, fail()
		}
		rep.M = make(graph.Matching, mLen)
		for i := range rep.M {
			rep.M[i] = int32(binary.LittleEndian.Uint32(rd[4*i:]))
		}
		rd = rd[4*mLen:]
	}
	if rep.InCover, err = rbools(); err != nil {
		return nil, err
	}
	words := make([]uint64, 8)
	for i := range words {
		if words[i], err = r(); err != nil {
			return nil, err
		}
	}
	rep.FractionalWeight = math.Float64frombits(words[0])
	rep.Value = math.Float64frombits(words[1])
	rep.Rounds = int(words[2])
	rep.Phases = int(words[3])
	rep.MaxMachineWords = int64(words[4])
	rep.TotalWords = int64(words[5])
	rep.Violations = int(words[6])
	rep.Wall = time.Duration(words[7])
	stageCount, err := r()
	if err != nil {
		return nil, err
	}
	if stageCount > uint64(len(rd)) { // each stage is ≥ 24 bytes
		return nil, fail()
	}
	for i := uint64(0); i < stageCount; i++ {
		name, err := rs()
		if err != nil {
			return nil, err
		}
		rounds, err := r()
		if err != nil {
			return nil, err
		}
		stageWords, err := r()
		if err != nil {
			return nil, err
		}
		rep.Stages = append(rep.Stages, mpcgraph.StageCost{Name: name, Rounds: int(rounds), Words: int64(stageWords)})
	}
	if len(rd) != 0 {
		return nil, fmt.Errorf("entry carries %d trailing bytes", len(rd))
	}
	return rep, nil
}
