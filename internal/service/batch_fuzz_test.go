package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

// FuzzBatchRequest fuzzes the batch-spec decoder and expander with
// hostile JSON. The invariant under attack: expansion either fails —
// hostile cross-product sizes with the documented limit in the error —
// or yields between 1 and MaxBatchJobs member specs. It must never
// allocate work proportional to an attacker-chosen product (the 413
// guard fires before any spec slice is sized from it), so arbitrary
// inputs cannot OOM the daemon or enqueue unbounded work.
func FuzzBatchRequest(f *testing.F) {
	seed := func(v any) {
		data, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seed(&BatchRequest{Jobs: []JobRequest{{
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 100, Seed: 1},
	}}})
	seed(&BatchRequest{Sweep: &SweepRequest{
		Scenarios: []ScenarioRequest{{Name: "gnp", N: 100}},
		Seeds:     &SeedRange{From: 1, To: 4},
		Pairs:     []PairRequest{{Problem: "mis"}, {Problem: "vertex-cover"}},
	}})
	// The hostile shapes the guard exists for: a full-width seed range
	// and a cross product just past the limit.
	seed(&BatchRequest{Sweep: &SweepRequest{
		Scenarios: []ScenarioRequest{{Name: "gnp"}},
		Seeds:     &SeedRange{From: 0, To: math.MaxUint64},
		Pairs:     []PairRequest{{Problem: "mis"}},
	}})
	seed(&BatchRequest{Sweep: &SweepRequest{
		Scenarios: []ScenarioRequest{{Name: "gnp"}, {Name: "ring"}, {Name: "grid"}},
		Seeds:     &SeedRange{From: 0, To: 9999},
	}})
	f.Add([]byte(`{"sweep":{"scenarios":[{"name":"gnp"}],"seeds":{"from":18446744073709551615,"to":0}}}`))
	f.Add([]byte(`{"jobs":[],"sweep":null}`))

	cfg := Config{}.withDefaults()
	f.Fuzz(func(t *testing.T, data []byte) {
		var req BatchRequest
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return // the handler rejects it with 400 before expansion
		}
		specs, err := req.expand(cfg)
		if err != nil {
			if errors.Is(err, ErrBatchTooLarge) {
				if !strings.Contains(err.Error(), "limit") {
					t.Fatalf("413 error does not name the documented limit: %v", err)
				}
				if batchErrorStatus(err) != 413 {
					t.Fatalf("ErrBatchTooLarge mapped to %d, want 413", batchErrorStatus(err))
				}
			}
			return
		}
		if len(specs) == 0 {
			t.Fatalf("expansion accepted an empty batch: %s", data)
		}
		if len(specs) > cfg.MaxBatchJobs {
			t.Fatalf("expansion yielded %d specs past the %d-job limit: %s",
				len(specs), cfg.MaxBatchJobs, data)
		}
		for i, spec := range specs {
			if spec.req == nil {
				t.Fatalf("spec %d has no request", i)
			}
		}
	})
}
