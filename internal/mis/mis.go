// Package mis implements Section 3 of the paper: the O(log log Δ)-round
// simulation of the sequential randomized greedy maximal-independent-set
// algorithm in the MPC model and in the CONGESTED-CLIQUE model.
//
// The simulation processes the random vertex permutation in rank prefixes
// n/Δ^α, n/Δ^(α²), ... with α = 3/4: each phase gathers the induced
// subgraph on the newly exposed alive ranks onto one machine (O(n) edges
// w.h.p. — Lemma 3.1 and Eq. (1) of the paper), extends the greedy MIS
// there, and broadcasts the additions. Once the prefix reaches n divided
// by a poly-logarithmic factor, the residual graph has poly-logarithmic
// degree and the sparsified MIS algorithm of [Gha17] (Ghaffari's local
// dynamics plus a final gather) finishes the job.
package mis

import (
	"context"
	"math"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/model"
)

// Options configures the MIS simulations. The zero value is usable; all
// fields have documented defaults.
type Options struct {
	// Seed drives every random choice (permutation, dynamics coins).
	Seed uint64
	// Alpha is the prefix exponent; the paper fixes α = 3/4.
	Alpha float64
	// PolylogDegree is the degree threshold D(n) at which the simulation
	// hands over to the sparsified algorithm. The paper uses log^10 n,
	// which exceeds n at any feasible simulation scale; the default
	// max(8, ⌈log2 n⌉) keeps the asymptotic regime observable (every
	// such substitution is recorded where it is made, not hidden).
	PolylogDegree func(n int) int
	// MemoryFactor sets the per-machine memory S = MemoryFactor·n words.
	// Default 16. The paper's claim is S = O(n log n) bits = O(n) words.
	MemoryFactor float64
	// Machines overrides the machine count; default ⌈2m/S⌉+1 (just
	// enough total memory for the input, plus the leader).
	Machines int
	// Strict makes capacity violations abort with an error.
	Strict bool
	// MaxDynamicsIterations caps the sparsified stage; 0 means the
	// default 10·(log2 Δ'+2).
	MaxDynamicsIterations int
	// Workers bounds the goroutines used for the per-machine round
	// bodies (0 = all cores, 1 = the exact sequential path). Results are
	// bit-identical for every setting.
	Workers int
	// Ctx, when non-nil, cancels the simulation between rounds; the run
	// returns ctx.Err().
	Ctx context.Context
	// Trace, when non-nil, observes every metered round (round index,
	// live words, active vertices). Never changes results.
	Trace model.TraceFunc
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.75
	}
	if o.PolylogDegree == nil {
		o.PolylogDegree = DefaultPolylogDegree
	}
	if o.MemoryFactor == 0 {
		o.MemoryFactor = 16
	}
	return o
}

// DefaultPolylogDegree is the default sparsification threshold
// max(8, ⌈log2 n⌉) — the stand-in for the paper's log^10 n chosen so that
// the prefix-phase regime is visible at simulation scale.
func DefaultPolylogDegree(n int) int {
	d := 8
	if n > 1 {
		if l := int(math.Ceil(math.Log2(float64(n)))); l > d {
			d = l
		}
	}
	return d
}

// PhaseInfo records the per-phase instrumentation used by experiments
// E2 and E3.
type PhaseInfo struct {
	// Rank is the prefix rank processed through this phase.
	Rank int
	// GatheredVertices is the number of alive vertices in the new range.
	GatheredVertices int
	// GatheredEdgeWords is the number of words delivered to the leader
	// for this phase's induced subgraph (2 words per edge).
	GatheredEdgeWords int64
	// NewMISVertices counts the MIS additions of the phase.
	NewMISVertices int
	// ResidualMaxDegree is the maximum degree among alive vertices after
	// the phase (the quantity bounded by Lemma 3.1).
	ResidualMaxDegree int
}

// Result is the output of the MIS simulations.
type Result struct {
	// InMIS marks the computed maximal independent set.
	InMIS []bool
	// Phases is the number of rank-prefix phases executed.
	Phases int
	// SparsifiedIterations counts the [Gha17] dynamics iterations run in
	// the residual stage.
	SparsifiedIterations int
	// Rounds is the total number of model rounds charged.
	Rounds int
	// MaxMachineWords is the largest per-round load observed on any
	// machine (the memory claim of Theorem 1.1).
	MaxMachineWords int64
	// TotalWords is the total communication volume.
	TotalWords int64
	// PhaseInfos carries per-phase instrumentation.
	PhaseInfos []PhaseInfo
	// Stages is the audited per-stage cost breakdown: one entry per
	// prefix phase, plus the sparsified dynamics and the final gather
	// when they run. Rounds and Words sum to the run totals.
	Stages []model.StageCost
	// Violations counts capacity violations in non-strict mode.
	Violations int
}

// SequentialRandGreedy runs the reference sequential algorithm: greedy
// MIS over a uniformly random permutation drawn from seed. The MPC and
// CONGESTED-CLIQUE simulations must reproduce its output exactly when
// given the same seed, which the tests assert.
func SequentialRandGreedy(g *graph.Graph, perm []int32) []bool {
	n := g.NumVertices()
	inMIS := make([]bool, n)
	blocked := make([]bool, n)
	for _, v := range perm {
		if blocked[v] {
			continue
		}
		inMIS[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return inMIS
}

// ResidualAfterRank simulates greedy up to the given rank prefix and
// returns the alive mask (vertices neither in the MIS nor dominated) and
// the maximum degree of the residual graph — the quantity Lemma 3.1
// bounds by O(n log n / r). Experiment E3 sweeps this.
func ResidualAfterRank(g *graph.Graph, perm []int32, r int) (alive []bool, maxDeg int) {
	n := g.NumVertices()
	alive = make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for i := 0; i < r && i < n; i++ {
		v := perm[i]
		if !alive[v] {
			continue
		}
		alive[v] = false // joins MIS, leaves the residual instance
		for _, u := range g.Neighbors(v) {
			alive[u] = false
		}
	}
	for v := int32(0); v < int32(n); v++ {
		if !alive[v] {
			continue
		}
		d := 0
		for _, u := range g.Neighbors(v) {
			if alive[u] {
				d++
			}
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	return alive, maxDeg
}

// prefixRanks returns the increasing sequence of rank prefixes
// r_i = n/Δ^(α^i) capped at n/D, the point where the paper switches to
// the sparsified algorithm.
func prefixRanks(n, maxDeg, polylogDeg int, alpha float64) []int {
	if n == 0 || maxDeg <= polylogDeg {
		return nil
	}
	cut := n / polylogDeg
	if cut < 1 {
		return nil
	}
	var ranks []int
	exp := alpha
	prev := 0
	for len(ranks) < 64 {
		r := int(float64(n) * math.Pow(float64(maxDeg), -exp))
		if r >= cut {
			if cut > prev {
				ranks = append(ranks, cut)
			}
			break
		}
		if r > prev {
			ranks = append(ranks, r)
			prev = r
		}
		exp *= alpha
	}
	return ranks
}

// stageCost builds one StageCost entry from the round and word deltas
// between two metric snapshots (shared by the MPC and clique paths).
func stageCost(name string, beforeRounds, afterRounds int, beforeWords, afterWords int64) model.StageCost {
	return model.StageCost{Name: name, Rounds: afterRounds - beforeRounds, Words: afterWords - beforeWords}
}

// defaultDynamicsCap returns the iteration cap for the sparsified stage.
func defaultDynamicsCap(maxDeg int, override int) int {
	if override > 0 {
		return override
	}
	return 10 * (int(math.Log2(float64(maxDeg+2))) + 2)
}
