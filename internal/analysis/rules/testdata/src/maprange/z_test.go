package maprange

// Test files are exempt from maprange: assertions already pin the
// observable order, and helpers may legitimately walk maps.

func keysAnyOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
