package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGenerated(t *testing.T) {
	if err := run([]string{"-n", "500", "-p", "0.02", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunClique(t *testing.T) {
	if err := run([]string{"-n", "300", "-p", "0.03", "-clique"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStrict(t *testing.T) {
	if err := run([]string{"-n", "400", "-p", "0.02", "-strict"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunHistoricalPClamping: the pre-shim RandomGraph accepted any p,
// treating p <= 0 as the empty graph and p >= 1 as the complete one;
// the shim must keep those scripts working.
func TestRunHistoricalPClamping(t *testing.T) {
	for _, p := range []string{"0", "-0.5", "1.5"} {
		if err := run([]string{"-n", "50", "-p", p}); err != nil {
			t.Errorf("-p %s: %v", p, err)
		}
	}
}

// TestRunZeroN: n <= 0 must error loudly rather than silently pick up
// the gnp scenario's default 4096-vertex size.
func TestRunZeroN(t *testing.T) {
	if err := run([]string{"-n", "0"}); err == nil {
		t.Error("-n 0 accepted")
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("n 4\n0 1\n1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "mis.txt")
	if err := run([]string{"-input", path, "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(strings.TrimSpace(string(data)))
	if len(lines) == 0 {
		t.Error("no MIS vertices written")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"-input", "/nonexistent/graph.txt"}); err == nil {
		t.Error("missing input file accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunMalformedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(path, []byte("1 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", path}); err == nil {
		t.Error("self-loop file accepted")
	}
}
