package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpcgraph/internal/obs"
	"mpcgraph/internal/service"
)

// runServe starts the mpcgraphd daemon: the internal/service job API
// bound to one listener, with graceful drain on SIGINT/SIGTERM. The
// standalone cmd/mpcgraphd binary is a thin shim over this subcommand,
// so both entry points share one flag surface and lifecycle.
func runServe(args []string, env Env) error {
	fs := flag.NewFlagSet("mpcgraph serve", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address; port 0 picks an ephemeral port")
		workers      = fs.Int("workers", 2, "concurrent solve workers draining the job queue")
		queueDepth   = fs.Int("queue", 64, "job queue bound; a full queue rejects submissions with 429")
		cacheEntries = fs.Int("cache", 1024, "result-cache entry bound (negative disables caching)")
		cacheDir     = fs.String("cache-dir", "", "persistent result-cache directory; results survive restarts and crashes (empty disables the disk tier)")
		diskEntries  = fs.Int("disk-entries", 0, "persistent-tier entry bound (0 = default 65536); oldest entries by access time are evicted")
		jobWorkers   = fs.Int("job-workers", 0, "per-job parallel workers when a request leaves workers unset (0 = all cores); results are identical for every value")
		drainWait    = fs.Duration("drain", 30*time.Second, "graceful-drain deadline on shutdown before running jobs are canceled")
		pprofAddr    = fs.String("pprof-addr", "", "listen address for net/http/pprof profiling endpoints (empty disables; keep it loopback-only)")
		logLevel     = fs.String("log-level", "info", "structured-log threshold: debug, info, warn or error")
		logFormat    = fs.String("log-format", "json", "structured-log encoding on stderr: json (one object per line) or text (key=value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	jsonLines, err := obs.ParseLogFormat(*logFormat)
	if err != nil {
		return err
	}

	// Fault injection is an env var, not a flag: it exists for the
	// chaos harness and must be impossible to arm by flag typo.
	srv, err := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		CacheEntries:      *cacheEntries,
		CacheDir:          *cacheDir,
		DiskEntries:       *diskEntries,
		DefaultJobWorkers: *jobWorkers,
		Failpoints:        os.Getenv("MPCGRAPHD_FAILPOINTS"),
		Logger:            obs.NewLogger(env.Stderr, level, jsonLines),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		// The profiler gets its own listener and mux: the job API mux
		// stays free of debug handlers, and a firewalled deployment can
		// bind profiling to loopback while serving jobs externally.
		pprofLn, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(env.Stdout, "mpcgraphd pprof on http://%s/debug/pprof/\n", pprofLn.Addr())
		go func() {
			// net.ErrClosed is the normal shutdown path: the deferred
			// listener close fires when serve returns.
			if err := http.Serve(pprofLn, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(env.Stderr, "mpcgraphd: pprof server stopped: %v\n", err)
			}
		}()
		defer pprofLn.Close()
	}
	// The one parseable line scripts (and the service-smoke harness)
	// wait for before submitting.
	fmt.Fprintf(env.Stdout, "mpcgraphd listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(env.Stderr, "mpcgraphd: draining (new submissions rejected, running jobs finishing)")
	srv.Drain(*drainWait)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	fmt.Fprintln(env.Stderr, "mpcgraphd: drained, exiting")
	return nil
}
