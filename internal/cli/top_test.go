package cli

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"mpcgraph/internal/service"
)

func writeTestJSON(t *testing.T, w http.ResponseWriter, v any) {
	t.Helper()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		t.Errorf("encode fake response: %v", err)
	}
}

// fakeTopDaemon serves a scripted /metrics and /v1/jobs: the first
// scrape shows 100 solves all in the (8.192ms, 16.384ms] bucket, the
// second adds 200 solves in the (0, 1.024ms] bucket. Bucket bounds are
// identical across scrapes, matching the daemon's fixed layout — which
// is what makes positional Snapshot.Sub valid.
func fakeTopDaemon(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var scrapes atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		n := scrapes.Add(1)
		solves, lowBucket, inf := 100, 0, 100
		if n > 1 {
			solves, lowBucket, inf = 300, 200, 300
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprintf(w, `# TYPE mpcgraphd_up gauge
mpcgraphd_up 1
# TYPE mpcgraphd_uptime_seconds gauge
mpcgraphd_uptime_seconds 10
# TYPE mpcgraphd_queue_depth gauge
mpcgraphd_queue_depth 3
# TYPE mpcgraphd_queue_capacity gauge
mpcgraphd_queue_capacity 64
# TYPE mpcgraphd_jobs_inflight gauge
mpcgraphd_jobs_inflight 2
# TYPE mpcgraphd_workers gauge
mpcgraphd_workers 2
# TYPE go_goroutines gauge
go_goroutines 12
# TYPE go_heap_inuse_bytes gauge
go_heap_inuse_bytes 3145728
# TYPE mpcgraphd_jobs gauge
mpcgraphd_jobs{state="queued"} 3
mpcgraphd_jobs{state="running"} 2
mpcgraphd_jobs{state="done"} 40
mpcgraphd_jobs{state="failed"} 0
mpcgraphd_jobs{state="canceled"} 1
# TYPE mpcgraphd_jobs_submitted_total counter
mpcgraphd_jobs_submitted_total %d
# TYPE mpcgraphd_solves_total counter
mpcgraphd_solves_total %d
# TYPE mpcgraphd_coalesced_total counter
mpcgraphd_coalesced_total 0
# TYPE mpcgraphd_cache_hits_total counter
mpcgraphd_cache_hits_total{tier="memory"} 40
mpcgraphd_cache_hits_total{tier="disk"} 5
# TYPE mpcgraphd_cache_misses_total counter
mpcgraphd_cache_misses_total 5
# TYPE mpcgraphd_solve_seconds histogram
mpcgraphd_solve_seconds_bucket{problem="mis",model="mpc",le="0.001024"} %d
mpcgraphd_solve_seconds_bucket{problem="mis",model="mpc",le="0.008192"} %d
mpcgraphd_solve_seconds_bucket{problem="mis",model="mpc",le="0.016384"} %d
mpcgraphd_solve_seconds_bucket{problem="mis",model="mpc",le="+Inf"} %d
mpcgraphd_solve_seconds_sum{problem="mis",model="mpc"} 1.2
mpcgraphd_solve_seconds_count{problem="mis",model="mpc"} %d
`, solves, solves, lowBucket, lowBucket, inf, inf, inf)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeTestJSON(t, w, map[string]any{
			"jobs": []*service.JobView{{
				ID: "j00000007", State: service.StateDone, Problem: "mis", Model: "mpc",
				CacheHit: true, CacheTier: service.TierMemory,
			}},
		})
	})
	return httptest.NewServer(mux), &scrapes
}

// TestTopFrames drives two frames against the fake daemon and pins the
// dashboard numbers: gauges on both frames, lifetime percentiles on the
// first, interval-delta percentiles and counter rates on the second.
func TestTopFrames(t *testing.T) {
	ts, scrapes := fakeTopDaemon(t)
	defer ts.Close()
	env, out, _ := testEnv("")
	err := Run([]string{"top", "-server", ts.URL, "-count", "2", "-interval", "100ms", "-plain"}, env)
	if err != nil {
		t.Fatal(err)
	}
	if got := scrapes.Load(); got != 2 {
		t.Fatalf("scraped /metrics %d times, want 2", got)
	}
	text := out.String()
	if strings.Contains(text, "\x1b[") {
		t.Errorf("-plain output contains ANSI escapes:\n%s", text)
	}
	frames := strings.Split(strings.TrimRight(text, "\n"), "\n\n")
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2:\n%s", len(frames), text)
	}

	for i, frame := range frames {
		for _, want := range []string{
			"mpcgraphd up",
			"queue 3/64",
			"inflight 2/2 workers",
			"goroutines 12",
			"heap 3.0MiB",
			"jobs: queued 3   running 2   done 40   failed 0   canceled 1",
			"cache: memory 80.0% (40)   disk 10.0% (5)   miss 10.0% (5)",
			"j00000007  done      mis",
			"hit:memory",
		} {
			if !strings.Contains(frame, want) {
				t.Errorf("frame %d missing %q:\n%s", i+1, want, frame)
			}
		}
	}

	// Frame 1: no previous scrape, so the percentiles quantile the
	// lifetime distribution — 100 observations in (8.192ms, 16.384ms]:
	// p50 = 8.192+8.192·0.50, p95 = ·0.95, p99 = ·0.99.
	for _, want := range []string{
		"latency (lifetime):",
		"rates (lifetime): 10.00 submits/s   10.00 solves/s",
		"12.29ms", "15.97ms", "16.30ms",
		"solves (lifetime): mis/mpc 100×12.29ms",
	} {
		if !strings.Contains(frames[0], want) {
			t.Errorf("frame 1 missing %q:\n%s", want, frames[0])
		}
	}

	// Frame 2: the interval delta is 200 observations, all in
	// (0, 1.024ms] — the first frame's 100 slower solves subtract out —
	// and the solve counter moved 100→300 over the nominal 100ms:
	// p50 = 1.024ms·0.50 = 512µs, p95 = 973µs, p99 = 1.01ms.
	for _, want := range []string{
		"latency (interval):",
		"rates (interval): 2000.00 submits/s   2000.00 solves/s",
		"512µs", "973µs", "1.01ms",
		"solves (interval): mis/mpc 200×512µs",
	} {
		if !strings.Contains(frames[1], want) {
			t.Errorf("frame 2 missing %q:\n%s", want, frames[1])
		}
	}
	if strings.Contains(frames[1], "12.29ms") {
		t.Errorf("frame 2 still shows the lifetime p50 — interval delta not applied:\n%s", frames[1])
	}
}

// TestTopClearsScreenByDefault: without -plain each frame starts with
// the ANSI clear+home sequence.
func TestTopClearsScreenByDefault(t *testing.T) {
	ts, _ := fakeTopDaemon(t)
	defer ts.Close()
	env, out, _ := testEnv("")
	if err := Run([]string{"top", "-server", ts.URL, "-count", "1", "-interval", "1ms"}, env); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "\x1b[2J\x1b[H") {
		t.Errorf("default top frame does not clear the screen")
	}
}

// TestTopBadFlags: argument validation fails fast.
func TestTopBadFlags(t *testing.T) {
	env, _, _ := testEnv("")
	if err := Run([]string{"top", "-interval", "0s", "-count", "1"}, env); err == nil {
		t.Errorf("zero interval accepted")
	}
	if err := Run([]string{"top", "extra"}, env); err == nil {
		t.Errorf("positional arguments accepted")
	}
}
