package congest

import "testing"

func TestChargeRoundAccounting(t *testing.T) {
	q, _ := New(Config{Players: 8, PairBudgetWords: 1, Strict: true})
	if err := q.ChargeRound(1, 7, 3, 20); err != nil {
		t.Fatal(err)
	}
	m := q.Metrics()
	if m.Rounds != 1 || m.TotalWords != 20 || m.MaxPlayerOut != 7 || m.MaxPlayerIn != 3 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestChargeRoundBudgetViolation(t *testing.T) {
	q, _ := New(Config{Players: 4, PairBudgetWords: 1, Strict: true})
	if err := q.ChargeRound(2, 1, 1, 2); err == nil {
		t.Error("pair budget violation accepted")
	}
	q2, _ := New(Config{Players: 4, PairBudgetWords: 1})
	if err := q2.ChargeRound(2, 1, 1, 2); err != nil {
		t.Errorf("non-strict charge errored: %v", err)
	}
	if q2.Metrics().Violations != 1 {
		t.Error("violation not recorded")
	}
}

func TestChargeLenzenAccounting(t *testing.T) {
	q, _ := New(Config{Players: 10, PairBudgetWords: 1, Strict: true})
	if err := q.ChargeLenzen(10, 10, 50); err != nil {
		t.Fatal(err)
	}
	if q.Metrics().Rounds != 2 {
		t.Errorf("Lenzen charge = %d rounds, want 2", q.Metrics().Rounds)
	}
	if err := q.ChargeLenzen(11, 5, 11); err == nil {
		t.Error("send volume beyond n accepted")
	}
	if err := q.ChargeLenzen(5, 11, 11); err == nil {
		t.Error("receive volume beyond n accepted")
	}
}

func TestChargeMatchesExplicitRound(t *testing.T) {
	// Conformance: charging a volume profile must produce the same
	// metrics as a materialized round with those volumes.
	explicit, _ := New(Config{Players: 3, PairBudgetWords: 2})
	out := make([][]Message, 3)
	out[0] = []Message{{To: 1, Words: 2}, {To: 2, Words: 1}}
	out[2] = []Message{{To: 1, Words: 2}}
	if _, err := explicit.Round(out); err != nil {
		t.Fatal(err)
	}

	charged, _ := New(Config{Players: 3, PairBudgetWords: 2})
	// Profile of the round above: max pair volume 2, max out 3 (player
	// 0), max in 4 (player 1), total 5.
	if err := charged.ChargeRound(2, 3, 4, 5); err != nil {
		t.Fatal(err)
	}

	if explicit.Metrics() != charged.Metrics() {
		t.Errorf("metrics diverge:\nexplicit %+v\ncharged  %+v", explicit.Metrics(), charged.Metrics())
	}
}

func TestChargeLenzenMatchesExplicitLenzen(t *testing.T) {
	explicit, _ := New(Config{Players: 4, PairBudgetWords: 1})
	out := make([][]Message, 4)
	out[1] = []Message{{To: 0, Words: 3}}
	out[2] = []Message{{To: 0, Words: 1}}
	if _, err := explicit.LenzenRoute(out); err != nil {
		t.Fatal(err)
	}

	charged, _ := New(Config{Players: 4, PairBudgetWords: 1})
	if err := charged.ChargeLenzen(3, 4, 4); err != nil {
		t.Fatal(err)
	}

	if explicit.Metrics() != charged.Metrics() {
		t.Errorf("metrics diverge:\nexplicit %+v\ncharged  %+v", explicit.Metrics(), charged.Metrics())
	}
}
