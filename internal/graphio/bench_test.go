package graphio

import (
	"bytes"
	"io"
	"testing"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

// benchData is a mid-size G(n, p) instance (~1M edges), the same
// density regime as internal/graph's builder benchmarks; the read
// benchmarks measure pure parse throughput from memory.
func benchData(b *testing.B) *graph.Graph {
	b.Helper()
	g := graph.GNP(1<<14, 1/float64(int(1)<<7), rng.New(99))
	return g
}

func renderEL(b *testing.B, g *graph.Graph) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func renderWEL(b *testing.B, g *graph.Graph) []byte {
	b.Helper()
	weights := make([]float64, g.NumEdges())
	src := rng.New(7)
	for i := range weights {
		weights[i] = src.Float64() + 0.5
	}
	wg, err := graph.NewWeighted(g, weights)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeWeightedEdgeList(&buf, wg); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkReadEdgeList(b *testing.B) {
	data := renderEL(b, benchData(b))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadEdgeList(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadWEL(b *testing.B) {
	data := renderWEL(b, benchData(b))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data), FormatWeightedEdgeList); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteEdgeList(b *testing.B) {
	g := benchData(b)
	data := renderEL(b, g)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteEdgeList(io.Discard, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteWEL(b *testing.B) {
	g := benchData(b)
	weights := make([]float64, g.NumEdges())
	src := rng.New(7)
	for i := range weights {
		weights[i] = src.Float64() + 0.5
	}
	wg, err := graph.NewWeighted(g, weights)
	if err != nil {
		b.Fatal(err)
	}
	data := renderWEL(b, g)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := writeWeightedEdgeList(io.Discard, wg); err != nil {
			b.Fatal(err)
		}
	}
}
