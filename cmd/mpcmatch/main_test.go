package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunGenerated(t *testing.T) {
	if err := run([]string{"-n", "400", "-p", "0.01", "-eps", "0.2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnePlusEps(t *testing.T) {
	if err := run([]string{"-n", "300", "-p", "0.02", "-one-plus-eps", "-eps", "0.25"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 3\n3 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"-input", "/nonexistent/graph.txt"}); err == nil {
		t.Error("missing input accepted")
	}
}

// TestRunHistoricalPClamping: pre-shim RandomGraph semantics (p <= 0
// empty, p >= 1 complete) must survive the translation onto the gnp
// scenario.
func TestRunHistoricalPClamping(t *testing.T) {
	for _, p := range []string{"0", "1.5"} {
		if err := run([]string{"-n", "40", "-p", p}); err != nil {
			t.Errorf("-p %s: %v", p, err)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
