# Pre-merge check for this repository. `make ci` is the documented gate:
# it vets every package, runs the full test suite under the race
# detector (the determinism tests in parallel_test.go double as the
# parallel-engine oracle), and smoke-runs the benchmarks so the
# parallelized hot paths keep compiling and terminating.
#
# Targets:
#   make ci     - go vet + race tests + benchmark smoke (run before merging)
#   make test   - fast test suite
#   make race   - full test suite under -race
#   make bench  - full benchmark pass with allocation counts
#   make tables - regenerate the experiment tables (text) at quick scale
#   make json   - machine-readable experiment rows (BENCH_*.json input)

GO ?= go

.PHONY: ci vet test race bench bench-smoke tables json

ci: vet race bench-smoke

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./internal/graph/ ./internal/mpc/ ./internal/mis/

tables:
	$(GO) run ./cmd/mpcbench -quick -trials 1

json:
	$(GO) run ./cmd/mpcbench -quick -trials 1 -json
