package service

import (
	"bytes"
	"encoding/base64"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"mpcgraph"
	"mpcgraph/internal/graphio"
	"mpcgraph/internal/model"
	"mpcgraph/internal/registry"
)

// JobRequest is the POST /v1/jobs body. Exactly one of Scenario and
// Graph supplies the instance; Problem is required, Model defaults to
// "mpc". See docs/service.md for the full wire contract.
type JobRequest struct {
	// Problem is the kebab-case problem name (see GET /v1/catalog).
	Problem string `json:"problem"`
	// Model is "mpc" (default) or "congested-clique".
	Model string `json:"model,omitempty"`
	// Scenario generates the instance from the workload catalog.
	Scenario *ScenarioRequest `json:"scenario,omitempty"`
	// Graph uploads the instance in any supported graphio format.
	Graph *GraphRequest `json:"graph,omitempty"`
	// Options are the solve options; zero values select the documented
	// defaults.
	Options OptionsRequest `json:"options,omitempty"`
	// TimeoutMs is a per-job deadline in milliseconds from submission
	// (0 = none), bounding queue wait plus execution. A job exceeding
	// it is canceled between metered rounds.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// NoCache forces a cold run: the deterministic result cache is
	// neither consulted nor trusted for this job, but the fresh result
	// still refreshes it.
	NoCache bool `json:"noCache,omitempty"`
}

// ScenarioRequest names a catalog scenario, mirroring `mpcgraph gen`.
type ScenarioRequest struct {
	Name   string             `json:"name"`
	N      int                `json:"n,omitempty"`
	Seed   uint64             `json:"seed,omitempty"`
	Params map[string]float64 `json:"params,omitempty"`
}

// GraphRequest uploads an instance. Content carries the file bytes in
// the named format (any graphio format name; gzip payloads are detected
// from their magic bytes); Base64 marks Content as base64-encoded, the
// transport for compressed uploads.
type GraphRequest struct {
	Format  string `json:"format"`
	Content string `json:"content"`
	Base64  bool   `json:"base64,omitempty"`
}

// OptionsRequest mirrors the Workers-invariant mpcgraph.Options plus
// the scheduling-only Workers knob.
type OptionsRequest struct {
	Seed         uint64  `json:"seed,omitempty"`
	Eps          float64 `json:"eps,omitempty"`
	MemoryFactor float64 `json:"memoryFactor,omitempty"`
	Strict       bool    `json:"strict,omitempty"`
	// Workers bounds the job's in-process fan-out (0 = the server's
	// default). It never changes results, costs or the cache key.
	Workers int `json:"workers,omitempty"`
}

// resolvePair validates the problem/model names and that the pair is
// registered — the cheap half of resolve, shared by batch expansion so
// a malformed sweep cell rejects the whole batch before any job record
// exists.
func (req *JobRequest) resolvePair() (mpcgraph.Problem, mpcgraph.Model, error) {
	var (
		problem mpcgraph.Problem
		mod     mpcgraph.Model
	)
	if req.Problem == "" {
		return problem, mod, fmt.Errorf("service: request needs a problem (see GET /v1/catalog)")
	}
	problem, err := registry.ParseProblem(req.Problem)
	if err != nil {
		return problem, mod, err
	}
	modelName := req.Model
	if modelName == "" {
		modelName = mpcgraph.ModelMPC.String()
	}
	mod, err = model.ParseModel(modelName)
	if err != nil {
		return problem, mod, err
	}
	if _, registered := registry.Lookup(problem, mod); !registered {
		return problem, mod, fmt.Errorf("%w: %s/%s", mpcgraph.ErrUnsupported, problem, mod)
	}
	return problem, mod, nil
}

// resolve validates the request and materializes the instance. The
// returned source string describes the instance origin for job views.
func (req *JobRequest) resolve(cfg Config) (mpcgraph.Problem, mpcgraph.Model, mpcgraph.Options, mpcgraph.Instance, string, error) {
	var (
		opts     mpcgraph.Options
		instance mpcgraph.Instance
		source   string
	)
	problem, mod, err := req.resolvePair()
	if err != nil {
		return problem, mod, opts, nil, "", err
	}

	switch {
	case req.Scenario != nil && req.Graph != nil:
		return problem, mod, opts, nil, "", fmt.Errorf("service: scenario and graph are mutually exclusive")
	case req.Scenario != nil:
		if req.Scenario.Name == "" {
			return problem, mod, opts, nil, "", fmt.Errorf("service: scenario needs a name (see GET /v1/catalog)")
		}
		instance, err = mpcgraph.GenerateScenario(req.Scenario.Name, req.Scenario.N, req.Scenario.Seed, req.Scenario.Params)
		if err != nil {
			return problem, mod, opts, nil, "", err
		}
		source = fmt.Sprintf("scenario %s (n=%d seed=%d)", req.Scenario.Name, instance.NumVertices(), req.Scenario.Seed)
	case req.Graph != nil:
		instance, err = req.Graph.parse()
		if err != nil {
			return problem, mod, opts, nil, "", err
		}
		source = fmt.Sprintf("upload (%s, n=%d m=%d)", req.Graph.Format, instance.NumVertices(), instance.NumEdges())
	default:
		return problem, mod, opts, nil, "", fmt.Errorf("service: request needs an instance: scenario or graph")
	}

	if _, weighted := instance.(*mpcgraph.WeightedGraph); !weighted && problem == mpcgraph.ProblemWeightedMatching {
		return problem, mod, opts, nil, "", fmt.Errorf("%w: %s", mpcgraph.ErrNeedWeightedGraph, problem)
	}

	opts = mpcgraph.Options{
		Seed:         req.Options.Seed,
		Eps:          req.Options.Eps,
		MemoryFactor: req.Options.MemoryFactor,
		Strict:       req.Options.Strict,
		Workers:      req.Options.Workers,
		Model:        mod,
	}
	if opts.Workers == 0 {
		opts.Workers = cfg.DefaultJobWorkers
	}
	return problem, mod, opts, instance, source, nil
}

// parse materializes an uploaded graph through the graphio layer.
func (g *GraphRequest) parse() (mpcgraph.Instance, error) {
	if g.Format == "" {
		return nil, fmt.Errorf("service: graph upload needs a format (one of the graphio format names)")
	}
	f, err := graphio.ParseFormat(g.Format)
	if err != nil {
		return nil, err
	}
	raw := []byte(g.Content)
	if g.Base64 {
		raw, err = base64.StdEncoding.DecodeString(g.Content)
		if err != nil {
			return nil, fmt.Errorf("service: graph content is not valid base64: %v", err)
		}
	}
	r, err := graphio.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	d, err := graphio.Read(r, f)
	if err != nil {
		return nil, err
	}
	if d.WG != nil {
		return d.WG, nil
	}
	return d.G, nil
}

// requestErrorStatus maps resolution failures onto HTTP statuses,
// mirroring the CLI's sentinel-to-exit-code table: unknown names are
// client errors (400), structurally valid but unservable requests are
// 422.
func requestErrorStatus(err error) int {
	switch {
	case errors.Is(err, mpcgraph.ErrUnknownProblem), errors.Is(err, mpcgraph.ErrUnknownModel):
		return 400
	case errors.Is(err, mpcgraph.ErrUnsupported), errors.Is(err, mpcgraph.ErrNeedWeightedGraph):
		return 422
	}
	return 400
}

// JobView is the wire rendering of a job (GET /v1/jobs/{id} and the
// elements of GET /v1/jobs). Timestamps are RFC 3339; they and
// report.wallMs are the only fields that vary between identical runs.
type JobView struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Problem  string   `json:"problem"`
	Model    string   `json:"model"`
	Source   string   `json:"source"`
	CacheKey string   `json:"cacheKey"`
	CacheHit bool     `json:"cacheHit"`
	// CacheTier is where a cacheHit was served from: "memory" (L1 LRU)
	// or "disk" (the persistent tier, i.e. a restart survivor or an L1
	// eviction); "none" for computed results.
	CacheTier CacheTier `json:"cacheTier"`
	// Coalesced marks a job that rode another job's identical in-flight
	// computation instead of occupying a queue slot itself. Like cache
	// hits, coalesced jobs carry no trace of their own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Batch is the id of the batch this job was expanded from, when it
	// was admitted through POST /v1/batches.
	Batch      string `json:"batch,omitempty"`
	Error      string `json:"error,omitempty"`
	CreatedAt  string `json:"createdAt"`
	StartedAt  string `json:"startedAt,omitempty"`
	FinishedAt string `json:"finishedAt,omitempty"`
	TraceLen   int    `json:"traceLen"`
	// Timings is the per-phase lifecycle timing block: monotonic
	// millisecond offsets from submission for each phase the job went
	// through, ordered, plus cache-probe durations. Like the
	// timestamps, it varies between identical runs and is operational
	// metadata only.
	Timings *TimingsView `json:"timings,omitempty"`
	Report  *ReportView  `json:"report,omitempty"`
}

// ReportView is the wire rendering of a Report: the audited costs, the
// solution summary, and an FNV-1a fingerprint of the full solution
// payload (the same hash the golden suite pins), so bit-identity of a
// cache hit is checkable from the wire alone. The full solution is
// served by GET /v1/jobs/{id}/solution.
type ReportView struct {
	Problem          string      `json:"problem"`
	Model            string      `json:"model"`
	N                int         `json:"n"`
	M                int         `json:"m"`
	MISSize          *int        `json:"misSize,omitempty"`
	MatchingSize     *int        `json:"matchingSize,omitempty"`
	CoverSize        *int        `json:"coverSize,omitempty"`
	FractionalWeight *float64    `json:"dualLowerBound,omitempty"`
	Value            *float64    `json:"value,omitempty"`
	SolutionHash     string      `json:"solutionHash"`
	Rounds           int         `json:"rounds"`
	Phases           int         `json:"phases"`
	MaxMachineWords  int64       `json:"maxMachineWords"`
	TotalWords       int64       `json:"totalWords"`
	Violations       int         `json:"violations"`
	WallMs           float64     `json:"wallMs"`
	Stages           []StageView `json:"stages"`
}

// StageView mirrors model.StageCost on the wire.
type StageView struct {
	Name   string `json:"name"`
	Rounds int    `json:"rounds"`
	Words  int64  `json:"words"`
}

// solutionHash fingerprints the Report payload exactly like the golden
// suite (golden_test.go): FNV-1a over the member vertex ids or the
// matched pairs in deterministic order.
func solutionHash(rep *mpcgraph.Report) uint64 {
	h := fnv.New64a()
	write := func(vals ...int64) {
		var buf [8]byte
		for _, v := range vals {
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	switch {
	case rep.InMIS != nil:
		for v, in := range rep.InMIS {
			if in {
				write(int64(v))
			}
		}
	case rep.InCover != nil:
		for v, in := range rep.InCover {
			if in {
				write(int64(v))
			}
		}
	default:
		for _, e := range rep.M.Edges() {
			write(int64(e[0]), int64(e[1]))
		}
	}
	return h.Sum64()
}

func countTrue(set []bool) int {
	n := 0
	for _, in := range set {
		if in {
			n++
		}
	}
	return n
}

// reportView renders rep for the wire.
func reportView(rep *mpcgraph.Report, in mpcgraph.Instance) *ReportView {
	out := &ReportView{
		Problem:         rep.Problem.String(),
		Model:           rep.Model.String(),
		N:               in.NumVertices(),
		M:               in.NumEdges(),
		SolutionHash:    fmt.Sprintf("%016x", solutionHash(rep)),
		Rounds:          rep.Rounds,
		Phases:          rep.Phases,
		MaxMachineWords: rep.MaxMachineWords,
		TotalWords:      rep.TotalWords,
		Violations:      rep.Violations,
		WallMs:          float64(rep.Wall.Microseconds()) / 1000,
		Stages:          make([]StageView, 0, len(rep.Stages)),
	}
	for _, st := range rep.Stages {
		out.Stages = append(out.Stages, StageView{Name: st.Name, Rounds: st.Rounds, Words: st.Words})
	}
	switch rep.Problem {
	case mpcgraph.ProblemMIS:
		size := countTrue(rep.InMIS)
		out.MISSize = &size
	case mpcgraph.ProblemVertexCover:
		size := countTrue(rep.InCover)
		out.CoverSize = &size
		fw := rep.FractionalWeight
		out.FractionalWeight = &fw
	case mpcgraph.ProblemWeightedMatching:
		size := rep.M.Size()
		out.MatchingSize = &size
		v := rep.Value
		out.Value = &v
	default:
		size := rep.M.Size()
		out.MatchingSize = &size
	}
	return out
}

// view snapshots the job for the wire.
func (j *Job) view() *JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := &JobView{
		ID:        j.ID,
		State:     j.state,
		Problem:   j.problem.String(),
		Model:     j.model.String(),
		Source:    j.source,
		CacheKey:  j.cacheKey,
		CacheHit:  j.cacheHit,
		CacheTier: j.cacheTier,
		Coalesced: j.coalesced,
		Batch:     j.batchID,
		Error:     j.err,
		CreatedAt: j.created.UTC().Format("2006-01-02T15:04:05.000Z"),
		TraceLen:  len(j.trace),
		Timings:   j.timings.view(),
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format("2006-01-02T15:04:05.000Z")
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format("2006-01-02T15:04:05.000Z")
	}
	if j.report != nil {
		v.Report = reportView(j.report, j.instance)
	}
	return v
}

// renderSolution writes the full solution payload: one vertex id per
// line for vertex sets, one "u v" pair per line for matchings —
// identical to `mpcgraph solve -solution`.
func renderSolution(rep *mpcgraph.Report) string {
	var b strings.Builder
	switch rep.Problem {
	case mpcgraph.ProblemMIS, mpcgraph.ProblemVertexCover:
		set := rep.InMIS
		if rep.Problem == mpcgraph.ProblemVertexCover {
			set = rep.InCover
		}
		for v, in := range set {
			if in {
				fmt.Fprintln(&b, v)
			}
		}
	default:
		for _, e := range rep.M.Edges() {
			fmt.Fprintf(&b, "%d %d\n", e[0], e[1])
		}
	}
	return b.String()
}
