package mpcgraph_test

// One benchmark per experiment in the E1–E18 index. Each
// iteration regenerates the experiment's full table, so
//
//	go test -bench=E5 -benchmem
//
// reproduces the corresponding rows. `go run ./cmd/mpcbench` renders the
// same tables human-readably.

import (
	"io"
	"testing"

	"mpcgraph/internal/bench"
)

// benchConfig keeps per-iteration cost bounded while exercising the
// non-quick instance sizes.
func benchConfig() bench.Config {
	return bench.Config{Seed: 2018, Trials: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	if testing.Short() {
		cfg.Quick = true
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := bench.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		tab.Render(io.Discard)
	}
}

func BenchmarkE1MISRounds(b *testing.B)        { runExperiment(b, "E1") }
func BenchmarkE2MISMemory(b *testing.B)        { runExperiment(b, "E2") }
func BenchmarkE3ResidualDegree(b *testing.B)   { runExperiment(b, "E3") }
func BenchmarkE4Central(b *testing.B)          { runExperiment(b, "E4") }
func BenchmarkE5PhaseCount(b *testing.B)       { runExperiment(b, "E5") }
func BenchmarkE6Approximation(b *testing.B)    { runExperiment(b, "E6") }
func BenchmarkE7InducedSize(b *testing.B)      { runExperiment(b, "E7") }
func BenchmarkE8Rounding(b *testing.B)         { runExperiment(b, "E8") }
func BenchmarkE9OnePlusEps(b *testing.B)       { runExperiment(b, "E9") }
func BenchmarkE10Weighted(b *testing.B)        { runExperiment(b, "E10") }
func BenchmarkE11CongestedClique(b *testing.B) { runExperiment(b, "E11") }
func BenchmarkE12Deviation(b *testing.B)       { runExperiment(b, "E12") }
func BenchmarkE13BaselineRounds(b *testing.B)  { runExperiment(b, "E13") }
func BenchmarkE14GreedyDepth(b *testing.B)     { runExperiment(b, "E14") }
func BenchmarkE15AlphaAblation(b *testing.B)   { runExperiment(b, "E15") }
func BenchmarkE16BetaAblation(b *testing.B)    { runExperiment(b, "E16") }
func BenchmarkE17FilteringMemory(b *testing.B) { runExperiment(b, "E17") }
