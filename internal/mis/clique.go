package mis

import (
	"mpcgraph/internal/graph"
	"mpcgraph/internal/model"
)

// RandGreedyCongestedClique computes a maximal independent set in the
// CONGESTED-CLIQUE model, following Section 3.2 of the paper: the
// unified randGreedy trajectory charged through the clique deployment
// (permutation scatter + position broadcast, chunked Lenzen phase
// gathers, verdict scatter + neighbor notification, one round per
// dynamics iteration, final Lenzen gather + scatter). All bandwidth is
// metered by the congest simulator; the result reports rounds, loads,
// and any budget violations.
//
// The independent set is bit-identical to RandGreedyMPC on the same
// seed — the model only changes the meter, which is the paper's claim
// that one technique serves both models.
func RandGreedyCongestedClique(g *graph.Graph, opts Options) (*Result, error) {
	return randGreedy(g, opts, model.CongestedClique)
}
