package service

import (
	"container/list"
	"sync"

	"mpcgraph"
)

// resultCache is the deterministic result cache: an LRU map from
// content-addressed cache key (see CacheKey) to the completed *Report.
// Reports are treated as immutable once stored — every consumer of a
// Report (the job views, the solution renderer, the trace endpoint)
// only reads it, so a cache hit can hand out the same pointer and still
// be bit-identical to the cold run that produced it.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	rep *mpcgraph.Report
}

// newResultCache builds a cache bounded to capEntries entries;
// capEntries < 0 disables caching entirely (every Get misses, Put is a
// no-op — the daemon then recomputes every job).
func newResultCache(capEntries int) *resultCache {
	return &resultCache{
		cap:     capEntries,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Get returns the cached Report for key, updating recency and the
// hit/miss counters.
func (c *resultCache) Get(key string) (*mpcgraph.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).rep, true
}

// Put stores rep under key, evicting the least recently used entries
// beyond capacity.
func (c *resultCache) Put(key string, rep *mpcgraph.Report) {
	if c.cap < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Determinism makes any two Reports under one key bit-identical;
		// keep the first and just refresh recency.
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, rep: rep})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// cacheStats is a point-in-time snapshot for /metrics and /healthz.
type cacheStats struct {
	Entries   int
	Capacity  int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

func (c *resultCache) Stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Entries:   c.lru.Len(),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// CacheTier names where a job's result came from, exposed on the job
// view as cacheTier.
type CacheTier string

const (
	// TierMemory: served from the in-memory LRU (L1).
	TierMemory CacheTier = "memory"
	// TierDisk: recovered from the persistent store (L2) — a restart
	// survivor or an L1 eviction — and promoted back into memory.
	TierDisk CacheTier = "disk"
	// TierNone: computed by this job (or ridden on another job's
	// computation; see the coalesced marker).
	TierNone CacheTier = "none"
)

// tieredCache layers the in-memory LRU (L1) over the persistent disk
// store (L2, optional). Both tiers are content-addressed by the same
// mpcgraph-key-v1 digest and hold bit-identical Reports — L1 trades
// capacity for latency, L2 survives restarts — so a Get may be served
// from either tier with full fidelity. Disk hits are promoted into
// memory; puts write through to both tiers.
type tieredCache struct {
	mem  *resultCache
	disk *diskStore // nil when the persistent tier is disabled
}

// Get returns the cached Report for key and the tier that served it.
// It may perform disk I/O on an L1 miss; callers on a lock-sensitive
// path should probe memGet under their lock and diskGet outside it.
func (c *tieredCache) Get(key string) (*mpcgraph.Report, CacheTier, bool) {
	if rep, ok := c.memGet(key); ok {
		return rep, TierMemory, true
	}
	if rep, ok := c.diskGet(key); ok {
		return rep, TierDisk, true
	}
	return nil, TierNone, false
}

// memGet probes only the in-memory tier. It never touches the disk, so
// it is safe to call while holding Server.mu.
func (c *tieredCache) memGet(key string) (*mpcgraph.Report, bool) {
	return c.mem.Get(key)
}

// diskGet probes the persistent tier, promoting a hit into memory for
// the next identical submission. It reads the disk — never call it
// while holding Server.mu.
func (c *tieredCache) diskGet(key string) (*mpcgraph.Report, bool) {
	if c.disk == nil {
		return nil, false
	}
	rep, ok := c.disk.Get(key)
	if !ok {
		return nil, false
	}
	c.mem.Put(key, rep)
	return rep, true
}

// Put stores rep in both tiers.
func (c *tieredCache) Put(key string, rep *mpcgraph.Report) {
	c.mem.Put(key, rep)
	if c.disk != nil {
		c.disk.Put(key, rep)
	}
}
