package cli

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"mpcgraph"
	"mpcgraph/internal/service"
)

// The daemon client subcommands: `mpcgraph submit` posts one job to a
// running mpcgraphd and (with -wait) polls it to completion; `mpcgraph
// status` inspects the daemon's job table. Together with `mpcgraph
// serve` they make the service drivable end-to-end from the one CLI.

// runSubmit posts one job to a running daemon.
func runSubmit(args []string, env Env) error {
	fs := flag.NewFlagSet("mpcgraph submit", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	var (
		server       = fs.String("server", "http://127.0.0.1:8080", "base URL of the mpcgraphd daemon")
		problemName  = fs.String("problem", "", "problem to solve (see mpcgraph list)")
		modelName    = fs.String("model", mpcgraph.ModelMPC.String(), "computation model: mpc or congested-clique")
		inPath       = fs.String("in", "", "instance file to upload ('-' reads stdin); any supported format")
		formatName   = fs.String("format", "", "upload format (el, wel, dimacs, metis, mm); required with -in")
		scenarioName = fs.String("scenario", "", "generate the instance server-side from this catalog scenario")
		n            = fs.Int("n", 0, "scenario vertex count (0 = the scenario's default)")
		seed         = fs.Uint64("seed", 1, "seed for scenario generation and the algorithm's random choices")
		eps          = fs.Float64("eps", 0.1, "approximation slack where applicable")
		memFactor    = fs.Float64("memory-factor", 0, "per-machine memory = factor*n words (0 = default 16)")
		strict       = fs.Bool("strict", false, "fail on any simulated memory/bandwidth violation")
		workers      = fs.Int("workers", 0, "per-job parallel workers (0 = the server's default); results identical for every value")
		timeout      = fs.Duration("timeout", 0, "server-side deadline for the job (0 = none)")
		noCache      = fs.Bool("no-cache", false, "force a cold run past the deterministic result cache")
		wait         = fs.Bool("wait", false, "poll the job until it reaches a terminal state")
		params       = paramFlag{}
	)
	fs.Var(params, "param", "scenario parameter key=value (repeatable, comma-separable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *problemName == "" {
		return fmt.Errorf("submit requires -problem (see mpcgraph list)")
	}

	req := service.JobRequest{
		Problem: *problemName,
		Model:   *modelName,
		Options: service.OptionsRequest{
			Seed:         *seed,
			Eps:          *eps,
			MemoryFactor: *memFactor,
			Strict:       *strict,
			Workers:      *workers,
		},
		TimeoutMs: timeout.Milliseconds(),
		NoCache:   *noCache,
	}
	switch {
	case *scenarioName != "" && *inPath != "":
		return fmt.Errorf("-scenario and -in are mutually exclusive")
	case *scenarioName != "":
		req.Scenario = &service.ScenarioRequest{Name: *scenarioName, N: *n, Seed: *seed, Params: params}
	case *inPath != "":
		if *formatName == "" {
			return fmt.Errorf("-in requires -format (the upload does not have a file extension server-side)")
		}
		raw, err := readAll(env, *inPath)
		if err != nil {
			return err
		}
		req.Graph = &service.GraphRequest{
			Format:  *formatName,
			Content: base64.StdEncoding.EncodeToString(raw),
			Base64:  true,
		}
	default:
		return fmt.Errorf("need an instance: -in <file> or -scenario <name> (see mpcgraph list)")
	}

	view, err := postJob(*server, &req)
	if err != nil {
		return err
	}
	if *wait {
		view, err = waitJob(*server, view.ID)
		if err != nil {
			return err
		}
	}
	enc := json.NewEncoder(env.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(view); err != nil {
		return err
	}
	if view.State == service.StateFailed || view.State == service.StateCanceled {
		return fmt.Errorf("job %s %s: %s", view.ID, view.State, view.Error)
	}
	return nil
}

// runStatus inspects a running daemon: one job with -job, the newest
// page of the job table otherwise.
func runStatus(args []string, env Env) error {
	fs := flag.NewFlagSet("mpcgraph status", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	var (
		server = fs.String("server", "http://127.0.0.1:8080", "base URL of the mpcgraphd daemon")
		jobID  = fs.String("job", "", "job id to fetch (default: list jobs)")
		state  = fs.String("state", "", "filter the listing by lifecycle state")
		limit  = fs.Int("limit", 100, "page size of the listing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	path := fmt.Sprintf("/v1/jobs?limit=%d", *limit)
	if *state != "" {
		path += "&state=" + *state
	}
	if *jobID != "" {
		path = "/v1/jobs/" + *jobID
	}
	body, err := getJSON(*server, path)
	if err != nil {
		return err
	}
	_, err = env.Stdout.Write(body)
	return err
}

// readAll reads a file or stdin ("-").
func readAll(env Env, path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(env.Stdin)
	}
	return os.ReadFile(path)
}

// postJob submits req and decodes the job view; non-2xx responses
// surface the server's error body.
func postJob(server string, req *service.JobRequest) (*service.JobView, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(strings.TrimSuffix(server, "/")+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("submit: %s: %s", resp.Status, serverError(body))
	}
	var view service.JobView
	if err := json.Unmarshal(body, &view); err != nil {
		return nil, fmt.Errorf("submit: bad response: %v", err)
	}
	return &view, nil
}

// waitJob polls until the job reaches a terminal state.
func waitJob(server, id string) (*service.JobView, error) {
	for {
		body, err := getJSON(server, "/v1/jobs/"+id)
		if err != nil {
			return nil, err
		}
		var view service.JobView
		if err := json.Unmarshal(body, &view); err != nil {
			return nil, fmt.Errorf("status: bad response: %v", err)
		}
		switch view.State {
		case service.StateDone, service.StateFailed, service.StateCanceled:
			return &view, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// getJSON fetches one daemon endpoint, surfacing error bodies.
func getJSON(server, path string) ([]byte, error) {
	resp, err := http.Get(strings.TrimSuffix(server, "/") + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("%s: %s", resp.Status, serverError(body))
	}
	return body, nil
}

// serverError extracts the daemon's {"error": ...} body, falling back
// to the raw bytes.
func serverError(body []byte) string {
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	return strings.TrimSpace(string(body))
}
