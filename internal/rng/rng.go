// Package rng provides the deterministic, splittable randomness used by
// every algorithm in this repository.
//
// All randomness in the reproduction flows from a single 64-bit seed.
// Derived streams are keyed by a purpose label and an index, so two
// components never consume from the same stream and every experiment is
// reproducible bit-for-bit. The package also provides the stateless
// threshold oracle T_{v,t} required by the Central-Rand / MPC-Simulation
// coupling of Section 4.4 of the paper: both algorithms must observe the
// exact same random thresholds, which a stateful generator cannot
// guarantee once the two processes interleave differently.
package rng

import (
	"math"
	"math/bits"
)

// golden is the SplitMix64 increment (2^64 / phi, rounded to odd).
const golden = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 output function: a strong 64-bit mixer used both
// to advance streams and as a stateless hash for oracle lookups.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash mixes an arbitrary sequence of words into a single well-distributed
// 64-bit value. It is the basis of all stateless oracles in this package.
func Hash(parts ...uint64) uint64 {
	h := uint64(0x8ce4c72dd4ff1ea1)
	for _, p := range parts {
		h = mix64(h + golden + p)
	}
	return mix64(h)
}

// Source is a deterministic pseudo-random stream based on SplitMix64.
// It is intentionally not safe for concurrent use; derive independent
// streams with Split instead of sharing one.
type Source struct {
	state uint64
}

// New returns a stream seeded with seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Source {
	return &Source{state: mix64(seed + golden)}
}

// Split derives an independent child stream keyed by label. The parent
// stream is not advanced, so splitting is itself deterministic.
func (s *Source) Split(label uint64) *Source {
	return &Source{state: Hash(s.state, label)}
}

// SplitString derives an independent child stream keyed by a string label.
func (s *Source) SplitString(label string) *Source {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return s.Split(h)
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix64(s.state)
}

// Int63 returns a uniformly random non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0,
// matching the contract of math/rand.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling with rejection.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(s.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// UniformIn returns a uniformly random float64 in [lo, hi).
func (s *Source) UniformIn(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) as a slice of
// int32, which is the vertex-index width used throughout the repository.
func (s *Source) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Geometric returns a sample from the geometric distribution with success
// probability p: the number of failures before the first success. It is
// used for skip-sampling in the G(n,p) generator. Returns math.MaxInt32
// for degenerate p <= 0.
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt32
	}
	u := s.Float64()
	// Avoid log(0); Float64 is in [0,1) so 1-u is in (0,1].
	g := math.Floor(math.Log1p(-u) / math.Log1p(-p))
	if g < 0 {
		return 0
	}
	if g > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(g)
}

// Exp returns an exponentially distributed sample with rate 1.
func (s *Source) Exp() float64 {
	u := s.Float64()
	return -math.Log1p(-u)
}
