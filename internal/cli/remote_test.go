package cli

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"mpcgraph/internal/service"
)

// fetchMetric scrapes one gauge/counter from the daemon's /metrics.
func fetchMetric(t *testing.T, server, name string) float64 {
	t.Helper()
	body, err := getJSON(server, "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestRemoteBenchBitIdentical is the acceptance gate of `mpcgraph bench
// -remote`: the registry sweep (E18) routed through a live daemon must
// produce byte-identical -json output to the in-process run. The
// experiment's columns are derived entirely from Report fields that
// round-trip the wire (costs, violations, solution payloads), so any
// divergence is a serialization or reconstruction bug, not tolerance.
func TestRemoteBenchBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the registry sweep twice (once per transport)")
	}
	url := startDaemon(t)

	local, _, err := runCLI(t, "bench", "-experiment", "E18", "-quick", "-seed", "11", "-json")
	if err != nil {
		t.Fatalf("in-process bench: %v", err)
	}
	remote, _, err := runCLI(t, "bench", "-experiment", "E18", "-quick", "-seed", "11", "-json", "-remote", url)
	if err != nil {
		t.Fatalf("remote bench: %v", err)
	}
	if local != remote {
		t.Errorf("remote sweep diverges from in-process:\n--- local ---\n%s--- remote ---\n%s", local, remote)
	}
	// The daemon really did the solving: one solve per registered pair
	// (every (scenario, seed, pair) cell is distinct, so no dedup).
	if solves := fetchMetric(t, url, "mpcgraphd_solves_total"); solves <= 0 {
		t.Errorf("daemon performed %v solves; the remote run did not go through it", solves)
	}

	// A second remote run is served entirely by the daemon's result
	// cache — still bit-identical, zero new solves.
	before := fetchMetric(t, url, "mpcgraphd_solves_total")
	again, _, err := runCLI(t, "bench", "-experiment", "E18", "-quick", "-seed", "11", "-json", "-remote", url)
	if err != nil {
		t.Fatalf("second remote bench: %v", err)
	}
	if again != local {
		t.Error("cached remote sweep diverges from in-process")
	}
	if after := fetchMetric(t, url, "mpcgraphd_solves_total"); after != before {
		t.Errorf("cached remote sweep performed %v new solves, want 0", after-before)
	}
}

// TestBatchCLISweepWait drives `mpcgraph batch` end-to-end: submit a
// sweep, wait for settlement, and check the dedup accounting that the
// daemon reports.
func TestBatchCLISweepWait(t *testing.T) {
	url := startDaemon(t)
	stdout, _, err := runCLI(t,
		"batch", "-server", url, "-scenarios", "gnp", "-n", "200",
		"-seeds", "1:3", "-problems", "mis", "-wait")
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	var view service.BatchView
	if err := json.Unmarshal([]byte(stdout), &view); err != nil {
		t.Fatalf("batch output not a batch view: %v\n%s", err, stdout)
	}
	if view.State != "done" || view.Total != 3 || view.Counts.Done != 3 {
		t.Fatalf("batch not fully done: %+v", view)
	}
	if got := view.Dedup.Enqueued + view.Dedup.CacheHits.Memory + view.Dedup.CacheHits.Disk + view.Dedup.Coalesced; got != 3 {
		t.Errorf("dedup accounting covers %d of 3 members: %+v", got, view.Dedup)
	}

	// Resubmitting the same sweep is fully cache-served.
	stdout, _, err = runCLI(t,
		"batch", "-server", url, "-scenarios", "gnp", "-n", "200",
		"-seeds", "1:3", "-problems", "mis", "-wait")
	if err != nil {
		t.Fatalf("batch resubmit: %v", err)
	}
	if err := json.Unmarshal([]byte(stdout), &view); err != nil {
		t.Fatalf("batch resubmit output: %v\n%s", err, stdout)
	}
	if view.Dedup.Enqueued != 0 {
		t.Errorf("resubmitted sweep enqueued %d jobs, want 0 (all cached)", view.Dedup.Enqueued)
	}

	// -status round-trips the same view; -cancel on a settled batch is
	// an idempotent no-op.
	stdout, _, err = runCLI(t, "batch", "-server", url, "-status", view.ID)
	if err != nil {
		t.Fatalf("batch -status: %v", err)
	}
	if !strings.Contains(stdout, view.ID) {
		t.Errorf("-status output missing batch id %s:\n%s", view.ID, stdout)
	}
	stdout, _, err = runCLI(t, "batch", "-server", url, "-cancel", view.ID)
	if err != nil {
		t.Fatalf("batch -cancel: %v", err)
	}
	var canceled service.BatchView
	if err := json.Unmarshal([]byte(stdout), &canceled); err != nil {
		t.Fatalf("-cancel output: %v\n%s", err, stdout)
	}
	if canceled.Counts.Done != 3 {
		t.Errorf("cancel after settlement disturbed members: %+v", canceled.Counts)
	}
}

// TestBatchCLIStream follows the NDJSON stream: one line per member
// completion plus the final done marker.
func TestBatchCLIStream(t *testing.T) {
	url := startDaemon(t)
	stdout, _, err := runCLI(t,
		"batch", "-server", url, "-scenarios", "gnp", "-n", "200",
		"-seeds", "5:6", "-problems", "mis", "-stream")
	if err != nil {
		t.Fatalf("batch -stream: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 3 {
		t.Fatalf("stream printed %d lines, want 2 members + done marker:\n%s", len(lines), stdout)
	}
	var done struct {
		Done  bool               `json:"done"`
		Batch *service.BatchView `json:"batch"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &done); err != nil || !done.Done || done.Batch == nil {
		t.Fatalf("last stream line is not the done marker: %v\n%s", err, lines[2])
	}
	if done.Batch.Counts.Done != 2 {
		t.Errorf("done marker counts: %+v", done.Batch.Counts)
	}
}

// TestBatchCLISpecFile submits a raw BatchRequest spec via -spec -.
func TestBatchCLISpecFile(t *testing.T) {
	url := startDaemon(t)
	spec := `{"sweep":{"scenarios":[{"name":"gnp","n":200}],"seeds":{"from":9,"to":9},"pairs":[{"problem":"mis"}]}}`
	var stdout, stderr strings.Builder
	err := Run([]string{"batch", "-server", url, "-spec", "-", "-wait"},
		Env{Stdin: strings.NewReader(spec), Stdout: &stdout, Stderr: &stderr})
	if err != nil {
		t.Fatalf("batch -spec: %v\n%s", err, stderr.String())
	}
	var view service.BatchView
	if err := json.Unmarshal([]byte(stdout.String()), &view); err != nil {
		t.Fatalf("output: %v\n%s", err, stdout.String())
	}
	if view.State != "done" || view.Counts.Done != 1 {
		t.Fatalf("spec batch not done: %+v", view)
	}
}

// TestBatchCLIFlagErrors pins the client-side validation.
func TestBatchCLIFlagErrors(t *testing.T) {
	cases := [][]string{
		{"batch"}, // no sweep, no spec
		{"batch", "-spec", "x.json", "-scenarios", "gnp"},                               // mutually exclusive
		{"batch", "-seeds", "5:1", "-scenarios", "gnp"},                                 // inverted range
		{"batch", "-seeds", "abc", "-scenarios", "gnp"},                                 // unparseable
		{"batch", "-model", "mpc", "-scenarios", "gnp"},                                 // -model without -problems
		{"batch", "-scenarios", "gnp", "-cancel", "", "-status", "", "-seeds", "1:2:3"}, // malformed range
	}
	for _, args := range cases {
		if _, _, err := runCLI(t, args...); err == nil {
			t.Errorf("%v accepted, want error", args)
		}
	}
}
