package matching

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mpcgraph/internal/baseline"
	"mpcgraph/internal/graph"
	"mpcgraph/internal/machine/meter"
	"mpcgraph/internal/model"
	"mpcgraph/internal/mpc"
	"mpcgraph/internal/rng"
)

// WeightedResult is the output of ApproxMaxWeightedMatching.
type WeightedResult struct {
	// M is the computed matching.
	M graph.Matching
	// Value is its total weight.
	Value float64
	// Improvements counts the improvement iterations executed (each one
	// maximal-matching invocation, realized in O(log log n) MPC rounds by
	// Theorem 1.2 per Corollary 1.4).
	Improvements int
}

// ApproxMaxWeightedMatching computes a (2+eps)-approximate maximum weight
// matching following the reduction of Lotker, Patt-Shamir and Rosén
// [LPSR09] that Corollary 1.4 invokes: starting from the empty matching,
// repeat O(log(1/eps)/eps) times — collect the "profitable" edges, those
// whose weight beats (1+eps) times the weight of the incident matched
// edges, compute a maximal matching among them, and swap it in. Each
// improvement round is one unweighted matching invocation, so the MPC
// cost is O(log log n · 1/eps) rounds.
func ApproxMaxWeightedMatching(wg *graph.Weighted, eps float64, seed uint64) *WeightedResult {
	if eps <= 0 {
		eps = 0.1
	}
	n := wg.NumVertices()
	res := &WeightedResult{M: graph.NewMatching(n)}
	iters := int(math.Ceil(math.Log(1/eps)/eps)) + 1
	if iters < 2 {
		iters = 2
	}
	edges := wg.EdgeList()
	for k := 0; k < iters; k++ {
		// Profitable edges under the current matching.
		gain := func(e [2]int32) float64 {
			conflict := 0.0
			if mu := res.M[e[0]]; mu != -1 {
				conflict += wg.EdgeWeight(e[0], mu)
			}
			if mv := res.M[e[1]]; mv != -1 {
				conflict += wg.EdgeWeight(e[1], mv)
			}
			return wg.EdgeWeight(e[0], e[1]) - (1+eps)*conflict
		}
		profitable := make([][2]int32, 0, 64)
		for _, e := range edges {
			if gain(e) > 0 {
				profitable = append(profitable, e)
			}
		}
		if len(profitable) == 0 {
			break
		}
		// Maximal matching among profitable edges, heavy edges first (the
		// order that drives the [LPSR09] convergence), with a seeded
		// deterministic tie-break.
		type pedge struct {
			e   [2]int32
			w   float64
			tie uint64
		}
		list := make([]pedge, len(profitable))
		for i, e := range profitable {
			list[i] = pedge{
				e:   e,
				w:   wg.EdgeWeight(e[0], e[1]),
				tie: rng.Hash(seed, uint64(k), uint64(uint32(e[0])), uint64(uint32(e[1]))),
			}
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].w != list[j].w {
				return list[i].w > list[j].w
			}
			return list[i].tie < list[j].tie
		})
		inAug := graph.NewMatching(n)
		for _, pe := range list {
			if inAug[pe.e[0]] == -1 && inAug[pe.e[1]] == -1 {
				inAug.Match(pe.e[0], pe.e[1])
			}
		}
		// Swap in: remove conflicting matched edges, add the new ones.
		for _, e := range inAug.Edges() {
			res.M.Unmatch(e[0])
			res.M.Unmatch(e[1])
		}
		for _, e := range inAug.Edges() {
			res.M.Match(e[0], e[1])
		}
		res.Improvements++
	}
	res.Value = wg.MatchingWeight(res.M)
	return res
}

// WeightedMPCOptions configures ApproxMaxWeightedMatchingMPC.
type WeightedMPCOptions struct {
	// Seed drives all randomness.
	Seed uint64
	// Eps is the approximation slack (default 0.1).
	Eps float64
	// MemoryFactor sets per-machine memory to MemoryFactor·n words
	// (default 16).
	MemoryFactor float64
	// Strict makes capacity violations fail the run.
	Strict bool
	// Workers bounds goroutine fan-out in the metered cluster.
	Workers int
	// Ctx, when non-nil, cancels the run between rounds.
	Ctx context.Context
	// Trace, when non-nil, observes every metered round.
	Trace model.TraceFunc
}

// WeightedMPCResult augments the weighted matching with audited MPC
// costs: Corollary 1.4 claims O(log log n · 1/eps) rounds, realized as
// O(log(1/eps)/eps) maximal-matching invocations, each O(log n) rounds
// with Israeli–Itai here (the corollary's O(log log n) per invocation
// follows from substituting Theorem 1.2; the invocation count is the
// measured quantity either way).
type WeightedMPCResult struct {
	WeightedResult

	// Rounds is the audited MPC round total.
	Rounds int
	// MaxMachineWords is the largest per-round machine load.
	MaxMachineWords int64
	// TotalWords is the total communication volume.
	TotalWords int64
	// Violations counts capacity violations (non-strict mode).
	Violations int
	// Stages is the audited per-improvement cost breakdown.
	Stages []model.StageCost
}

// ApproxMaxWeightedMatchingMPC is ApproxMaxWeightedMatching with every
// improvement iteration's maximal matching executed on a metered MPC
// cluster (propose/accept, two rounds per iteration) instead of the
// heavy-first greedy. Quality remains (2+eps) by the same [LPSR09]
// argument — any maximal matching of the profitable subgraph suffices.
func ApproxMaxWeightedMatchingMPC(wg *graph.Weighted, opts WeightedMPCOptions) (*WeightedMPCResult, error) {
	eps := opts.Eps
	if eps <= 0 {
		eps = 0.1
	}
	opts.MemoryFactor = meter.ResolveMemoryFactor(opts.MemoryFactor)
	n := wg.NumVertices()
	cluster, err := mpc.NewCluster(mpc.Config{
		Machines:      int(math.Sqrt(float64(n))) + 1,
		CapacityWords: int64(opts.MemoryFactor * float64(n)),
		Strict:        opts.Strict,
		Workers:       opts.Workers,
		Ctx:           opts.Ctx,
		Trace:         opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	cluster.SetActive(n)
	res := &WeightedMPCResult{WeightedResult: WeightedResult{M: graph.NewMatching(n)}}
	iters := int(math.Ceil(math.Log(1/eps)/eps)) + 1
	if iters < 2 {
		iters = 2
	}
	edges := wg.EdgeList()
	for k := 0; k < iters; k++ {
		b := graph.NewBuilder(n)
		profitableCount := 0
		for _, e := range edges {
			conflict := 0.0
			if mu := res.M[e[0]]; mu != -1 {
				conflict += wg.EdgeWeight(e[0], mu)
			}
			if mv := res.M[e[1]]; mv != -1 {
				conflict += wg.EdgeWeight(e[1], mv)
			}
			if wg.EdgeWeight(e[0], e[1]) > (1+eps)*conflict {
				b.AddEdge(e[0], e[1])
				profitableCount++
			}
		}
		if profitableCount == 0 {
			break
		}
		sub := b.MustBuild()
		cluster.SetActive(n - 2*res.M.Size())
		before := cluster.Metrics()
		ii, err := baseline.IsraeliItaiOnCluster(sub, rng.New(rng.Hash(opts.Seed, uint64(k))), cluster)
		if err != nil {
			return nil, fmt.Errorf("improvement %d: %w", k, err)
		}
		after := cluster.Metrics()
		res.Stages = append(res.Stages, model.StageCost{
			Name:   fmt.Sprintf("improvement-%d", k),
			Rounds: after.Rounds - before.Rounds,
			Words:  after.TotalWords - before.TotalWords,
		})
		for _, e := range ii.M.Edges() {
			res.M.Unmatch(e[0])
			res.M.Unmatch(e[1])
		}
		for _, e := range ii.M.Edges() {
			res.M.Match(e[0], e[1])
		}
		res.Improvements++
	}
	res.Value = wg.MatchingWeight(res.M)
	met := cluster.Metrics()
	res.Rounds = met.Rounds
	res.MaxMachineWords = met.MaxInWords
	if met.MaxOutWords > res.MaxMachineWords {
		res.MaxMachineWords = met.MaxOutWords
	}
	res.TotalWords = met.TotalWords
	res.Violations = met.Violations
	return res, nil
}

// GreedyWeightedMatching is the classical heavy-first greedy, a
// 2-approximation used as the weighted baseline in experiment E10.
func GreedyWeightedMatching(wg *graph.Weighted) *WeightedResult {
	edges := wg.EdgeList()
	sort.Slice(edges, func(i, j int) bool {
		return wg.EdgeWeight(edges[i][0], edges[i][1]) > wg.EdgeWeight(edges[j][0], edges[j][1])
	})
	m := graph.NewMatching(wg.NumVertices())
	for _, e := range edges {
		if m[e[0]] == -1 && m[e[1]] == -1 {
			m.Match(e[0], e[1])
		}
	}
	return &WeightedResult{M: m, Value: wg.MatchingWeight(m)}
}
