//go:build !race

package raceflag

// Enabled is true when the binary is built with -race.
const Enabled = false
