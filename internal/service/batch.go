package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mpcgraph"
	"mpcgraph/internal/obs"
	"mpcgraph/internal/registry"
	"mpcgraph/internal/scenario"
)

// The batch API: POST /v1/batches admits many jobs as one unit — an
// explicit job list or a cross-product sweep spec (scenarios × seed
// range × (problem, model) pairs, the shape of internal/bench's
// E-series experiments). The server expands the spec, creates every
// member job record up front, and a per-batch feeder goroutine then
// runs each member through the same cache-aware dedup ladder as a
// single submission (memory probe, single-flight attach, disk probe —
// see place), so a batch whose keys are already cached or coalescible
// enqueues no new solves at all. Unlike single submissions, a feeder
// blocks on a full queue instead of failing with 429: the batch is the
// admission unit, its POST either rejects whole (413 over the job
// limit, 503 while draining) or accepts whole.
//
// GET /v1/batches/{id} aggregates the batch (counts by member state,
// cache-hit tiers, dedup accounting, wall time), GET .../stream follows
// member completions as NDJSON, and DELETE cancels the remainder. See
// docs/service.md.

// ErrBatchTooLarge reports a batch whose explicit job list or sweep
// cross-product exceeds Config.MaxBatchJobs — the documented admission
// limit that keeps a hostile spec from materializing unbounded work.
var ErrBatchTooLarge = errors.New("batch exceeds the job limit")

// BatchRequest is the POST /v1/batches body. Exactly one of Jobs and
// Sweep describes the members.
type BatchRequest struct {
	// Jobs is an explicit member list.
	Jobs []JobRequest `json:"jobs,omitempty"`
	// Sweep expands server-side into the cross product of its scenarios,
	// seed range and (problem, model) pairs.
	Sweep *SweepRequest `json:"sweep,omitempty"`
	// TimeoutMs is the per-member deadline in milliseconds (0 = none).
	// Explicit jobs that carry their own timeoutMs keep it.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// NoCache forces a cold run for every member (explicit jobs may also
	// set it individually).
	NoCache bool `json:"noCache,omitempty"`
}

// SweepRequest is the cross-product half of BatchRequest. One member
// job is generated per (scenario, seed, pair) cell; the seed drives
// both the scenario instance and the algorithm's random choices, the
// way `mpcgraph submit -seed` does.
type SweepRequest struct {
	// Scenarios names the catalog scenarios to sweep. The per-entry Seed
	// field is ignored: the sweep's seed range overrides it per cell.
	Scenarios []ScenarioRequest `json:"scenarios"`
	// Seeds is the inclusive seed range; omitted, the sweep runs the
	// single seed in Options.Seed.
	Seeds *SeedRange `json:"seeds,omitempty"`
	// Pairs restricts the (problem, model) pairs; omitted, every
	// registered pair is swept. Pairs that require a weighted instance
	// are skipped for unweighted scenarios (and vice versa never: an
	// unweighted problem runs fine on a weighted instance).
	Pairs []PairRequest `json:"pairs,omitempty"`
	// Options applies to every member; its Seed is overridden by the
	// sweep seed per cell.
	Options OptionsRequest `json:"options,omitempty"`
}

// SeedRange is an inclusive [From, To] seed interval.
type SeedRange struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// PairRequest names one (problem, model) pair; Model defaults to "mpc".
type PairRequest struct {
	Problem string `json:"problem"`
	Model   string `json:"model,omitempty"`
}

// batchSpec is one expanded member: the request plus its pre-validated
// pair, stamped on the job record at creation so views show the right
// problem/model before the feeder resolves the instance.
type batchSpec struct {
	req     *JobRequest
	problem mpcgraph.Problem
	model   mpcgraph.Model
}

// expand validates the request and materializes the member specs. It
// never generates an instance — expansion cost is proportional to the
// (bounded) member count, not to instance sizes — and it rejects a
// cross product over Config.MaxBatchJobs before allocating anything
// proportional to it.
func (r *BatchRequest) expand(cfg Config) ([]batchSpec, error) {
	switch {
	case len(r.Jobs) > 0 && r.Sweep != nil:
		return nil, fmt.Errorf("service: jobs and sweep are mutually exclusive")
	case len(r.Jobs) == 0 && r.Sweep == nil:
		return nil, fmt.Errorf("service: batch needs members: jobs or sweep")
	case len(r.Jobs) > 0:
		if len(r.Jobs) > cfg.MaxBatchJobs {
			return nil, fmt.Errorf("service: %w: %d jobs, limit %d (see docs/service.md)",
				ErrBatchTooLarge, len(r.Jobs), cfg.MaxBatchJobs)
		}
		specs := make([]batchSpec, 0, len(r.Jobs))
		for i := range r.Jobs {
			req := r.Jobs[i] // copy: the batch-level defaults must not alias
			if req.TimeoutMs == 0 {
				req.TimeoutMs = r.TimeoutMs
			}
			if r.NoCache {
				req.NoCache = true
			}
			problem, model, err := req.resolvePair()
			if err != nil {
				return nil, fmt.Errorf("job %d: %w", i, err)
			}
			specs = append(specs, batchSpec{req: &req, problem: problem, model: model})
		}
		return specs, nil
	}
	return r.Sweep.expand(cfg, r.TimeoutMs, r.NoCache)
}

// expand materializes the sweep cross product.
func (sw *SweepRequest) expand(cfg Config, timeoutMs int64, noCache bool) ([]batchSpec, error) {
	if len(sw.Scenarios) == 0 {
		return nil, fmt.Errorf("service: sweep needs at least one scenario")
	}
	weighted := make([]bool, len(sw.Scenarios))
	for i, scr := range sw.Scenarios {
		if scr.Name == "" {
			return nil, fmt.Errorf("service: sweep scenario %d needs a name (see GET /v1/catalog)", i)
		}
		sc, ok := scenario.Lookup(scr.Name)
		if !ok {
			return nil, fmt.Errorf("service: unknown scenario %q (see GET /v1/catalog)", scr.Name)
		}
		weighted[i] = sc.Weighted
	}

	from, to := sw.Options.Seed, sw.Options.Seed
	if sw.Seeds != nil {
		from, to = sw.Seeds.From, sw.Seeds.To
		if to < from {
			return nil, fmt.Errorf("service: sweep seed range is empty (to %d < from %d)", to, from)
		}
	}
	// Guarded before the int conversion: to-from is a uint64 an attacker
	// controls end to end.
	if to-from >= uint64(cfg.MaxBatchJobs) {
		return nil, fmt.Errorf("service: %w: %d seeds alone exceed the %d-job limit (see docs/service.md)",
			ErrBatchTooLarge, to-from+1, cfg.MaxBatchJobs)
	}
	seedCount := int(to-from) + 1

	type pairCell struct {
		req     PairRequest
		problem mpcgraph.Problem
		model   mpcgraph.Model
	}
	var pairs []pairCell
	if len(sw.Pairs) == 0 {
		for _, p := range registry.Pairs() {
			pairs = append(pairs, pairCell{
				req:     PairRequest{Problem: p.Problem.String(), Model: p.Model.String()},
				problem: mpcgraph.Problem(p.Problem),
				model:   p.Model,
			})
		}
	} else {
		for i, pr := range sw.Pairs {
			probe := JobRequest{Problem: pr.Problem, Model: pr.Model}
			problem, model, err := probe.resolvePair()
			if err != nil {
				return nil, fmt.Errorf("pair %d: %w", i, err)
			}
			pairs = append(pairs, pairCell{req: pr, problem: problem, model: model})
		}
	}

	// Overflow-safe product bound: reject as soon as the running product
	// would exceed the limit, before multiplying further.
	count := 1
	for _, factor := range []int{len(sw.Scenarios), seedCount, len(pairs)} {
		if factor == 0 {
			count = 0
			break
		}
		if count > cfg.MaxBatchJobs/factor {
			return nil, fmt.Errorf("service: %w: %d scenarios x %d seeds x %d pairs exceeds the %d-job limit (see docs/service.md)",
				ErrBatchTooLarge, len(sw.Scenarios), seedCount, len(pairs), cfg.MaxBatchJobs)
		}
		count *= factor
	}

	specs := make([]batchSpec, 0, count)
	for i, scr := range sw.Scenarios {
		for seed := from; ; seed++ {
			for _, pc := range pairs {
				if pc.problem == mpcgraph.ProblemWeightedMatching && !weighted[i] {
					continue // no weighted instance to solve on; documented skip
				}
				opts := sw.Options
				opts.Seed = seed
				specs = append(specs, batchSpec{
					req: &JobRequest{
						Problem:   pc.req.Problem,
						Model:     pc.req.Model,
						Scenario:  &ScenarioRequest{Name: scr.Name, N: scr.N, Seed: seed, Params: scr.Params},
						Options:   opts,
						TimeoutMs: timeoutMs,
						NoCache:   noCache,
					},
					problem: pc.problem,
					model:   pc.model,
				})
			}
			if seed == to {
				// The explicit break (not seed <= to) keeps a range ending at
				// the maximum uint64 from wrapping into an infinite loop.
				break
			}
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("service: sweep expands to zero jobs (every pair was skipped for its scenario)")
	}
	return specs, nil
}

// batchErrorStatus maps expansion failures onto HTTP statuses: over the
// job limit is 413, everything else follows the single-job table.
func batchErrorStatus(err error) int {
	if errors.Is(err, ErrBatchTooLarge) {
		return 413
	}
	return requestErrorStatus(err)
}

// Batch is one POST /v1/batches expansion: the member records plus the
// feeder's dedup accounting. specs and jobs are immutable after
// creation; everything else is guarded by mu.
type Batch struct {
	ID string

	created time.Time
	specs   []batchSpec
	jobs    []*Job // member records, same order as specs
	// tel records the settle-time histogram when the last member turns
	// terminal; lg is the batch-correlated logger. Set before the batch
	// is visible; both tolerate a zero-telemetry test server.
	tel *telemetry
	lg  *obs.Logger

	mu       sync.Mutex
	canceled bool
	finished time.Time
	// completions lists members in terminal order — the stream's replay
	// buffer. changed is closed and replaced on every completion, so
	// stream followers can select on it with their client's context.
	completions []*Job
	changed     chan struct{}

	// Feeder dedup accounting.
	resolved      int // members past instance resolution (failures included)
	uniqueKeys    int // distinct cache keys among resolved members
	memoryHits    int // settled by the L1 probe
	diskHits      int // settled by the persistent-tier probe
	coalesced     int // attached to an identical in-flight computation
	enqueued      int // became a new flight's leader (the solves a batch costs)
	failedResolve int // failed validation or instance materialization
}

// noteTerminal is every member's Job.notify hook. The last member's
// terminal transition settles the batch: the settle-time histogram and
// the batch.settled log event both fire here, exactly once.
func (b *Batch) noteTerminal(j *Job) {
	b.mu.Lock()
	b.completions = append(b.completions, j)
	settled := len(b.completions) == len(b.jobs)
	if settled {
		b.finished = time.Now()
	}
	finished := b.finished
	close(b.changed)
	b.changed = make(chan struct{})
	b.mu.Unlock()
	if settled {
		elapsed := finished.Sub(b.created)
		if b.tel != nil {
			b.tel.batchSettle.With().Observe(elapsed)
		}
		b.lg.Info(context.Background(), "batch.settled",
			obs.F("jobs", len(b.jobs)),
			obs.F("ms", durMs(elapsed)))
	}
}

// isCanceled reports whether DELETE hit the batch.
func (b *Batch) isCanceled() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.canceled
}

// done reports whether every member is terminal.
func (b *Batch) done() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.completions) == len(b.jobs)
}

// cancelRemainder marks the batch canceled and cancels every member not
// already terminal. Idempotent; returns how many members it canceled.
func (b *Batch) cancelRemainder(reason string) int {
	b.mu.Lock()
	b.canceled = true
	b.mu.Unlock()
	n := 0
	for _, j := range b.jobs {
		if j.cancelJob(reason) {
			n++
		}
	}
	return n
}

// BatchView is the wire rendering of a batch (GET /v1/batches/{id}).
type BatchView struct {
	ID string `json:"id"`
	// State is "running" until every member is terminal, then "done".
	State    string `json:"state"`
	Canceled bool   `json:"canceled,omitempty"`
	Total    int    `json:"total"`
	// Counts aggregates the members by lifecycle state.
	Counts BatchCounts `json:"counts"`
	// Dedup is the cache-aware dedup accounting: how members settled
	// without a new solve. enqueued is the number of solves the batch
	// actually cost.
	Dedup      BatchDedup `json:"dedup"`
	CreatedAt  string     `json:"createdAt"`
	FinishedAt string     `json:"finishedAt,omitempty"`
	// WallMs is creation to last completion (so far, while running).
	WallMs float64  `json:"wallMs"`
	Jobs   []string `json:"jobs"`
}

// BatchCounts aggregates member lifecycle states.
type BatchCounts struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
}

// BatchDedup is the feeder's dedup accounting (see Batch).
type BatchDedup struct {
	Resolved      int           `json:"resolved"`
	UniqueKeys    int           `json:"uniqueKeys"`
	CacheHits     BatchTierHits `json:"cacheHits"`
	Coalesced     int           `json:"coalesced"`
	Enqueued      int           `json:"enqueued"`
	FailedResolve int           `json:"failedResolve,omitempty"`
}

// BatchTierHits splits batch cache hits by serving tier.
type BatchTierHits struct {
	Memory int `json:"memory"`
	Disk   int `json:"disk"`
}

// view snapshots the batch for the wire.
func (b *Batch) view() *BatchView {
	// Member states first: b.jobs is immutable and currentState takes
	// only j.mu, so no batch lock is held while touching job locks that
	// a notify path could need... (the lock order is b.mu then j.mu
	// anyway; this just keeps the b.mu hold short).
	var counts BatchCounts
	for _, j := range b.jobs {
		switch j.currentState() {
		case StateQueued:
			counts.Queued++
		case StateRunning:
			counts.Running++
		case StateDone:
			counts.Done++
		case StateFailed:
			counts.Failed++
		case StateCanceled:
			counts.Canceled++
		}
	}
	b.mu.Lock()
	v := &BatchView{
		ID:       b.ID,
		State:    "running",
		Canceled: b.canceled,
		Total:    len(b.jobs),
		Counts:   counts,
		Dedup: BatchDedup{
			Resolved:      b.resolved,
			UniqueKeys:    b.uniqueKeys,
			CacheHits:     BatchTierHits{Memory: b.memoryHits, Disk: b.diskHits},
			Coalesced:     b.coalesced,
			Enqueued:      b.enqueued,
			FailedResolve: b.failedResolve,
		},
		CreatedAt: b.created.UTC().Format("2006-01-02T15:04:05.000Z"),
	}
	if len(b.completions) == len(b.jobs) {
		v.State = "done"
	}
	finished := b.finished
	b.mu.Unlock()
	if !finished.IsZero() {
		v.FinishedAt = finished.UTC().Format("2006-01-02T15:04:05.000Z")
		v.WallMs = float64(finished.Sub(b.created).Microseconds()) / 1000
	} else {
		v.WallMs = float64(time.Since(b.created).Microseconds()) / 1000
	}
	v.Jobs = make([]string, len(b.jobs))
	for i, j := range b.jobs {
		v.Jobs[i] = j.ID
	}
	return v
}

// submitBatch expands the request, creates every member record under
// one lock (cheap: no instances are materialized here), and starts the
// feeder. Like submit it returns an HTTP status hint for failures.
func (s *Server) submitBatch(req *BatchRequest) (*Batch, int, error) {
	specs, err := req.expand(s.cfg)
	if err != nil {
		return nil, batchErrorStatus(err), err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, 503, fmt.Errorf("service: draining, not accepting jobs")
	}
	s.nextBatchID++
	b := &Batch{
		ID:      fmt.Sprintf("b%06d", s.nextBatchID),
		created: time.Now(),
		specs:   specs,
		jobs:    make([]*Job, len(specs)),
		changed: make(chan struct{}),
		tel:     s.tel,
	}
	b.lg = s.tel.log.With(obs.F("batch", b.ID))
	for i, spec := range specs {
		s.nextID++
		job := newJob(fmt.Sprintf("j%08d", s.nextID), s.tel)
		job.problem, job.model = spec.problem, spec.model
		job.source = fmt.Sprintf("batch %s [%d/%d]", b.ID, i+1, len(specs))
		job.timeout = time.Duration(spec.req.TimeoutMs) * time.Millisecond
		job.noCache = spec.req.NoCache
		job.batchID = b.ID
		job.notify = b.noteTerminal
		job.lg = job.lg.With(obs.F("batch", b.ID))
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		b.jobs[i] = job
	}
	s.batchJobs += uint64(len(specs))
	s.batches[b.ID] = b
	s.batchOrder = append(s.batchOrder, b.ID)
	s.evictTerminalLocked()
	s.evictBatchesLocked()
	// Registered under the draining check: Drain sets draining before it
	// waits on feeders, so the counter can never go 0->1 concurrently
	// with that Wait.
	s.feeders.Add(1)
	s.mu.Unlock()

	for _, job := range b.jobs {
		job.armDeadline()
	}
	b.lg.Info(context.Background(), "batch.submit", obs.F("jobs", len(b.jobs)))
	go s.feedBatch(b)
	return b, 0, nil
}

// feedBatch is the batch's feeder goroutine: it resolves each member
// and runs it through the dedup ladder, blocking on a full queue. A
// drain cancels the unfed remainder; so does DELETE on the batch.
func (s *Server) feedBatch(b *Batch) {
	defer s.feeders.Done()
	seen := make(map[string]bool, len(b.specs))
	for i, spec := range b.specs {
		job := b.jobs[i]
		if job.terminal() {
			continue // a deadline or client cancel landed before feeding
		}
		if b.isCanceled() {
			job.cancelJob("batch canceled")
			continue
		}
		select {
		case <-s.quit:
			job.cancelJob("server draining")
			continue
		default:
		}

		problem, model, opts, instance, source, err := spec.req.resolve(s.cfg)
		var key string
		if err == nil {
			key, err = CacheKey(instance, problem, model, opts)
		}
		if err != nil {
			b.mu.Lock()
			b.resolved++
			b.failedResolve++
			b.mu.Unlock()
			job.fail(err)
			continue
		}
		job.setResolved(problem, model, opts, instance, source, key)
		b.mu.Lock()
		b.resolved++
		if !seen[key] {
			seen[key] = true
			b.uniqueKeys++
		}
		b.mu.Unlock()

		f, p := s.place(job)
		settled := true
		b.mu.Lock()
		switch p {
		case placedMemory:
			b.memoryHits++
		case placedDisk:
			b.diskHits++
		case placedCoalesced:
			b.coalesced++
		default:
			settled = false
		}
		b.mu.Unlock()
		if settled {
			continue
		}

		// The blocking enqueue: the batch was admitted as a whole, so its
		// leaders wait for queue slots instead of bouncing with 429. quit
		// unblocks the send when a drain starts mid-batch. The queued
		// stamp lands before the send so the worker's dequeued stamp can
		// never precede it.
		job.stampQueued()
		select {
		case s.queue <- job:
			b.mu.Lock()
			b.enqueued++
			b.mu.Unlock()
		case <-s.quit:
			for _, r := range s.dropFlight(f) {
				r.cancelJob("server draining")
			}
		}
	}
}

// setResolved installs the resolved request fields on a batch member.
// Single-job submissions set these before the record is visible; a
// batch member is visible from creation, so the write synchronizes
// with view() via j.mu. The worker reads them lock-free, ordered by
// the queue send that follows this call.
func (j *Job) setResolved(problem mpcgraph.Problem, model mpcgraph.Model, opts mpcgraph.Options,
	instance mpcgraph.Instance, source, key string) {
	j.mu.Lock()
	j.problem, j.model, j.opts = problem, model, opts
	j.instance, j.source = instance, source
	j.cacheKey = key
	j.mu.Unlock()
}

// lookupBatch returns the batch by id.
func (s *Server) lookupBatch(id string) (*Batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	return b, ok
}

// evictBatchesLocked drops the oldest fully terminal batches beyond the
// retention bound. Called with s.mu held after every batch submission.
// Member job records are retained and evicted independently by
// evictTerminalLocked.
func (s *Server) evictBatchesLocked() {
	excess := len(s.batchOrder) - s.cfg.MaxBatchesRetained
	if excess <= 0 {
		return
	}
	kept := s.batchOrder[:0]
	for _, id := range s.batchOrder {
		if excess > 0 && s.batches[id].done() {
			delete(s.batches, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.batchOrder = kept
}

// handleBatchSubmit is POST /v1/batches: expand and admit one batch.
// 201 with the batch view on success; 400/422 for bad requests, 413
// over the job limit, 503 (with Retry-After) while draining.
func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, 400, fmt.Errorf("service: bad request body: %v", err))
		return
	}
	b, status, err := s.submitBatch(&req)
	if err != nil {
		if status == 503 {
			w.Header().Set("Retry-After", "5")
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, 201, b.view())
}

// handleBatchList is GET /v1/batches: newest-last batch views.
// Query: limit=<n> caps the page from the newest end (default 100).
func (s *Server) handleBatchList(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if raw := r.URL.Query().Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, 400, fmt.Errorf("service: bad limit %q", raw))
			return
		}
		limit = v
	}
	s.mu.Lock()
	ids := append([]string(nil), s.batchOrder...)
	batches := make([]*Batch, 0, len(ids))
	for _, id := range ids {
		batches = append(batches, s.batches[id])
	}
	s.mu.Unlock()
	if len(batches) > limit {
		batches = batches[len(batches)-limit:]
	}
	views := make([]*BatchView, 0, len(batches))
	for _, b := range batches {
		views = append(views, b.view())
	}
	writeJSON(w, 200, struct {
		Batches []*BatchView `json:"batches"`
	}{views})
}

// handleBatchGet is GET /v1/batches/{id}.
func (s *Server) handleBatchGet(w http.ResponseWriter, r *http.Request) {
	b, ok := s.lookupBatch(r.PathValue("id"))
	if !ok {
		writeError(w, 404, fmt.Errorf("service: no batch %q", r.PathValue("id")))
		return
	}
	writeJSON(w, 200, b.view())
}

// handleBatchCancel is DELETE /v1/batches/{id}: cancel every member not
// already terminal (queued, running, or not yet fed). Idempotent — a
// second DELETE (or one against a finished batch) returns the view with
// nothing left to cancel.
func (s *Server) handleBatchCancel(w http.ResponseWriter, r *http.Request) {
	b, ok := s.lookupBatch(r.PathValue("id"))
	if !ok {
		writeError(w, 404, fmt.Errorf("service: no batch %q", r.PathValue("id")))
		return
	}
	b.cancelRemainder("batch canceled by client")
	writeJSON(w, 200, b.view())
}

// batchStreamEnd terminates a batch completion stream.
type batchStreamEnd struct {
	Done  bool       `json:"done"`
	Batch *BatchView `json:"batch"`
}

// handleBatchStream is GET /v1/batches/{id}/stream: one NDJSON line per
// member completion — members already terminal replayed first, in
// completion order, then live completions as they land — terminated by
// a {"done":true,"batch":{...}} line once every member is terminal.
func (s *Server) handleBatchStream(w http.ResponseWriter, r *http.Request) {
	b, ok := s.lookupBatch(r.PathValue("id"))
	if !ok {
		writeError(w, 404, fmt.Errorf("service: no batch %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(200)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	emit := func(v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "%s\n", data); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	next := 0
	for {
		b.mu.Lock()
		pending := append([]*Job(nil), b.completions[next:]...)
		finished := len(b.completions) == len(b.jobs)
		changed := b.changed
		b.mu.Unlock()

		for _, j := range pending {
			if !emit(j.view()) {
				return
			}
			next++
		}
		if finished {
			emit(batchStreamEnd{Done: true, Batch: b.view()})
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
