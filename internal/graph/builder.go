package graph

import (
	"errors"
	"fmt"

	"mpcgraph/internal/par"
)

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges are deduplicated at Build time; self-loops are rejected eagerly
// because no algorithm in the paper is defined on them.
//
// Edges are held as packed uint64 keys (min endpoint in the high word,
// max in the low word) so that Build can sort them with a byte-wise
// radix sort and the accumulation slice costs one word per edge.
type Builder struct {
	n    int
	keys []uint64 // u<<32 | v with u < v
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// NewBuilderCap is NewBuilder with an edge-capacity hint: generators
// and readers that know (or can bound) their edge count ahead of time
// allocate the accumulation slice once instead of growing it
// incrementally. The hint is only a capacity — exceeding it is legal.
func NewBuilderCap(n, edgeCap int) *Builder {
	b := NewBuilder(n)
	if edgeCap > 0 {
		b.keys = make([]uint64, 0, edgeCap)
	}
	return b
}

// NumVertices returns the number of vertices the built graph will have.
func (b *Builder) NumVertices() int { return b.n }

// AddEdge records the undirected edge {u, v}. It panics on out-of-range
// endpoints or self-loops; both indicate caller bugs rather than runtime
// conditions.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u > v {
		u, v = v, u
	}
	b.keys = append(b.keys, uint64(u)<<32|uint64(v))
}

// AddEdges bulk-records a batch of undirected edges, growing the
// accumulation slice once. It validates exactly like AddEdge.
func (b *Builder) AddEdges(edges [][2]int32) {
	if need := len(b.keys) + len(edges); need > cap(b.keys) {
		grown := make([]uint64, len(b.keys), need)
		copy(grown, b.keys)
		b.keys = grown
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
}

// Build constructs the graph, deduplicating parallel edges. It runs on
// all cores; BuildWorkers takes an explicit worker count.
func (b *Builder) Build() (*Graph, error) {
	return b.BuildWorkers(0)
}

// BuildWorkers is Build with an explicit Workers knob (0 = all cores,
// 1 = sequential). The packed edge keys are sorted with a parallel LSD
// radix sort (see sortPackedKeys), deduplicated in place, and the CSR
// arrays are filled with one sharded counting pass that lands every
// adjacency entry directly in its final, sorted slot:
//
// In the sorted key order, the entries of vertex x's list arrive as
// (a) back entries — keys (u, x) with u < x, in increasing u — and
// (b) forward entries — keys (x, w) with w > x, in increasing w.
// Every back neighbor is smaller than every forward neighbor, so
// writing back entries from offsets[x] and forward entries from
// offsets[x] + backDeg(x), each in arrival order, produces each list
// fully sorted with no per-vertex fixup. Shards write in shard order
// through shard-major cursors, so the output is bit-identical for every
// worker count — and identical to the unique sorted-CSR form.
func (b *Builder) BuildWorkers(workers int) (*Graph, error) {
	if b.n == 0 && len(b.keys) > 0 {
		return nil, errors.New("graph: edges on zero vertices")
	}
	sortPackedKeys(workers, b.keys)
	// Deduplicate in place, lazily: scan to the first duplicate before
	// moving anything — generator and reader inputs are usually
	// duplicate-free, making this a read-only pass.
	keys := b.keys
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[i-1] {
			continue
		}
		w := i
		for i++; i < len(keys); i++ {
			if keys[i] != keys[w-1] {
				keys[w] = keys[i]
				w++
			}
		}
		keys = keys[:w]
		break
	}
	b.keys = keys

	m := len(keys)
	n := b.n
	shards := par.ShardCount(workers, m)
	// cur[w][x] is shard w's back-entry cursor for vertex x and
	// cur[w][n+x] its forward-entry cursor; the first pass counts into
	// the same layout, the prefix pass converts counts to cursors.
	// Both passes exploit that the sorted keys group each high word u
	// into one run, touching u's forward slot once per run.
	cur := make([][]int32, shards)
	for w := range cur {
		cur[w] = make([]int32, 2*n)
	}
	par.For(workers, m, func(lo, hi, w int) {
		c := cur[w]
		for i := lo; i < hi; {
			hiWord := keys[i] >> 32
			run := int32(0)
			for ; i < hi && keys[i]>>32 == hiWord; i++ {
				c[uint32(keys[i])]++ // back entry in v's list
				run++
			}
			c[n+int(hiWord)] += run // forward entries in u's list
		}
	})
	offsets := make([]int32, n+1)
	for x := 0; x < n; x++ {
		base := offsets[x]
		// Back entries first (all neighbors < x), then forward.
		for w := 0; w < shards; w++ {
			c := cur[w][x]
			cur[w][x] = base
			base += c
		}
		for w := 0; w < shards; w++ {
			c := cur[w][n+x]
			cur[w][n+x] = base
			base += c
		}
		offsets[x+1] = base
	}
	adj := make([]int32, 2*m)
	par.For(workers, m, func(lo, hi, w int) {
		c := cur[w]
		for i := lo; i < hi; {
			hiWord := keys[i] >> 32
			u := int32(hiWord)
			pos := c[n+int(hiWord)]
			for ; i < hi && keys[i]>>32 == hiWord; i++ {
				v := int32(uint32(keys[i]))
				adj[pos] = v // forward entries land sequentially
				pos++
				adj[c[v]] = u // back entries scatter through v cursors
				c[v]++
			}
			c[n+int(hiWord)] = pos
		}
	})
	return &Graph{n: n, m: m, offsets: offsets, adj: adj}, nil
}

// MustBuild is Build for programmatic construction where failure is a bug.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges constructs a graph directly from an edge list.
func FromEdges(n int, edges [][2]int32) (*Graph, error) {
	b := NewBuilderCap(n, len(edges))
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || int(e[0]) >= n || int(e[1]) >= n || e[0] == e[1] {
			return nil, fmt.Errorf("graph: invalid edge {%d,%d} for n=%d", e[0], e[1], n)
		}
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// PackEdge packs an undirected edge into the builder's key form: the
// smaller endpoint in the high 32 bits, the larger in the low 32 bits.
func PackEdge(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// FromPackedEdges constructs a graph from a slice of PackEdge keys —
// the zero-copy bulk path for the graphio readers. The slice is taken
// over and sorted in place. Callers must have validated every edge
// (0 ≤ u < v < n), exactly as AddEdge would; endpoints at or beyond n
// fail the CSR fill's bounds checks, they are never built silently.
func FromPackedEdges(n int, keys []uint64) (*Graph, error) {
	b := &Builder{n: n, keys: keys}
	return b.Build()
}
