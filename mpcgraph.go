// Package mpcgraph is a reproduction of "Improved Massively Parallel
// Computation Algorithms for MIS, Matching, and Vertex Cover" (Ghaffari,
// Gouleakis, Konrad, Mitrović, Rubinfeld; PODC 2018).
//
// It provides O(log log n)-round algorithms — executed on a metered MPC
// simulator with Õ(n) words of memory per machine, and on a metered
// CONGESTED-CLIQUE simulator — for:
//
//   - maximal independent set (Theorem 1.1),
//   - (2+ε)-approximate maximum matching and minimum vertex cover
//     (Theorem 1.2),
//   - (1+ε)-approximate maximum matching (Corollary 1.3), and
//   - (2+ε)-approximate maximum weighted matching (Corollary 1.4).
//
// Every result reports the simulated round count and per-machine load, so
// the paper's round/space claims are observable outputs. Build graphs
// with NewGraphBuilder or the generator helpers, then call the top-level
// functions. All algorithms are deterministic given Options.Seed.
//
// # Concurrency and determinism
//
// The model is bulk-synchronous: within a round every simulated machine
// computes independently, so the simulators execute each round body in
// parallel across real cores (see internal/par). Options.Workers
// controls the fan-out: 0 uses every core, 1 forces the exact
// sequential path, and any other value caps the goroutine count.
// Results are bit-identical for every Workers setting — parallel index
// ranges are sharded deterministically, integer accounting merges in
// shard order, and every floating-point sum is computed entirely inside
// one vertex's loop body — so Workers trades wall-clock time only,
// never reproducibility. A *Graph is safe for concurrent readers; the
// algorithm entry points may be called from different goroutines on
// different graphs.
package mpcgraph

import (
	"fmt"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/matching"
	"mpcgraph/internal/mis"
	"mpcgraph/internal/rng"
)

// Graph is an immutable simple undirected graph. Construct one with
// NewGraphBuilder, FromEdgeList, or the generators in this package.
type Graph = graph.Graph

// Matching is a mate array: Matching[v] is v's partner or -1.
type Matching = graph.Matching

// Builder incrementally assembles a Graph.
type Builder = graph.Builder

// NewGraphBuilder returns a builder for a graph on n vertices.
func NewGraphBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdgeList builds a graph from explicit undirected edges.
func FromEdgeList(n int, edges [][2]int32) (*Graph, error) {
	return graph.FromEdges(n, edges)
}

// RandomGraph samples an Erdős–Rényi G(n, p) graph from the given seed.
func RandomGraph(n int, p float64, seed uint64) *Graph {
	return graph.GNP(n, p, rng.New(seed))
}

// Options configures the top-level algorithms.
type Options struct {
	// Seed makes every random choice reproducible. Two runs with equal
	// seeds return identical results.
	Seed uint64
	// Eps is the approximation slack ε where applicable (default 0.1).
	Eps float64
	// MemoryFactor sets the per-machine memory to MemoryFactor·n words
	// (default 16), the constant behind the paper's Õ(n).
	MemoryFactor float64
	// Strict makes simulated memory/bandwidth violations return errors
	// instead of being recorded silently.
	Strict bool
	// Workers bounds the goroutines used to execute round bodies and
	// graph constructions: 0 (the default) uses every core, 1 is the
	// exact legacy sequential path, larger values cap the fan-out.
	// Results are bit-identical for every setting; see the package
	// comment.
	Workers int
}

// Stats reports the simulated model costs of a run.
type Stats struct {
	// Rounds is the number of MPC (or CONGESTED-CLIQUE) rounds used.
	Rounds int
	// MaxMachineWords is the largest per-round load on any machine.
	MaxMachineWords int64
	// TotalWords is the total communication volume.
	TotalWords int64
}

// MISResult is the result of MIS and MISCongestedClique.
type MISResult struct {
	// InMIS marks the maximal independent set.
	InMIS []bool
	// Stats carries the audited model costs.
	Stats Stats
	// Phases is the number of rank-prefix phases (O(log log Δ)).
	Phases int
}

// MIS computes a maximal independent set in the simulated MPC model using
// the paper's O(log log Δ)-round randomized greedy simulation.
func MIS(g *Graph, opts Options) (*MISResult, error) {
	res, err := mis.RandGreedyMPC(g, mis.Options{
		Seed:         opts.Seed,
		MemoryFactor: opts.MemoryFactor,
		Strict:       opts.Strict,
		Workers:      opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("mpcgraph: MIS: %w", err)
	}
	return &MISResult{
		InMIS:  res.InMIS,
		Stats:  Stats{Rounds: res.Rounds, MaxMachineWords: res.MaxMachineWords, TotalWords: res.TotalWords},
		Phases: res.Phases,
	}, nil
}

// MISCongestedClique computes a maximal independent set in the simulated
// CONGESTED-CLIQUE model (Theorem 1.1, second part).
func MISCongestedClique(g *Graph, opts Options) (*MISResult, error) {
	res, err := mis.RandGreedyCongestedClique(g, mis.Options{
		Seed:         opts.Seed,
		MemoryFactor: opts.MemoryFactor,
		Strict:       opts.Strict,
		Workers:      opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("mpcgraph: MISCongestedClique: %w", err)
	}
	return &MISResult{
		InMIS:  res.InMIS,
		Stats:  Stats{Rounds: res.Rounds, MaxMachineWords: res.MaxMachineWords, TotalWords: res.TotalWords},
		Phases: res.Phases,
	}, nil
}

// MatchingResult is the result of the matching algorithms.
type MatchingResult struct {
	// M is the computed matching.
	M Matching
	// Stats carries the audited model costs (MPC rounds include all
	// fractional-simulation invocations).
	Stats Stats
}

// ApproxMaxMatching computes a (2+ε)-approximate maximum matching
// (Theorem 1.2): fractional weight-raising simulation, randomized
// rounding, and the small-matching completion.
func ApproxMaxMatching(g *Graph, opts Options) (*MatchingResult, error) {
	res, err := matching.ApproxMaxMatching(g, matching.PipelineOptions{
		Seed:         opts.Seed,
		Eps:          opts.Eps,
		MemoryFactor: opts.MemoryFactor,
		Strict:       opts.Strict,
		Workers:      opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("mpcgraph: ApproxMaxMatching: %w", err)
	}
	return &MatchingResult{
		M:     res.M,
		Stats: Stats{Rounds: res.Rounds()},
	}, nil
}

// OnePlusEpsMatching computes a (1+ε)-approximate maximum matching
// (Corollary 1.3): the (2+ε) pipeline followed by short augmenting-path
// boosting. Exact on bipartite inputs; a measured heuristic on general
// graphs (see EXPERIMENTS.md, E9).
func OnePlusEpsMatching(g *Graph, opts Options) (*MatchingResult, error) {
	base, err := matching.ApproxMaxMatching(g, matching.PipelineOptions{
		Seed:         opts.Seed,
		Eps:          opts.Eps,
		MemoryFactor: opts.MemoryFactor,
		Strict:       opts.Strict,
		Workers:      opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("mpcgraph: OnePlusEpsMatching: %w", err)
	}
	eps := opts.Eps
	if eps == 0 {
		eps = 0.1
	}
	boost := matching.BoostToOnePlusEps(g, base.M, eps)
	return &MatchingResult{
		M:     boost.M,
		Stats: Stats{Rounds: base.Rounds() + boost.Passes},
	}, nil
}

// VertexCoverResult is the result of ApproxMinVertexCover.
type VertexCoverResult struct {
	// InCover marks the vertex cover.
	InCover []bool
	// FractionalWeight is the weight of the dual fractional matching, a
	// lower bound on the optimum cover size. It can be loose on dense
	// inputs with small Eps (see EXPERIMENTS.md, caveat 6); for a robust
	// per-run certificate compare the cover against any maximal matching
	// instead.
	FractionalWeight float64
	// Stats carries the audited model costs.
	Stats Stats
}

// ApproxMinVertexCover computes a (2+ε)-approximate minimum vertex cover
// (Theorem 1.2) in O(log log n) simulated MPC rounds.
func ApproxMinVertexCover(g *Graph, opts Options) (*VertexCoverResult, error) {
	res, err := matching.ApproxMinVertexCover(g, matching.PipelineOptions{
		Seed:         opts.Seed,
		Eps:          opts.Eps,
		MemoryFactor: opts.MemoryFactor,
		Strict:       opts.Strict,
		Workers:      opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("mpcgraph: ApproxMinVertexCover: %w", err)
	}
	return &VertexCoverResult{
		InCover:          res.Frac.Cover,
		FractionalWeight: res.Frac.Weight(),
		Stats: Stats{
			Rounds:          res.Rounds,
			MaxMachineWords: res.MaxMachineWords,
			TotalWords:      res.TotalWords,
		},
	}, nil
}

// WeightedGraph is a graph with positive edge weights.
type WeightedGraph = graph.Weighted

// NewWeightedGraph attaches weights (in edge-index order) to g.
func NewWeightedGraph(g *Graph, weights []float64) (*WeightedGraph, error) {
	return graph.NewWeighted(g, weights)
}

// RandomWeightedGraph samples G(n, p) with uniform weights in [lo, hi).
func RandomWeightedGraph(n int, p, lo, hi float64, seed uint64) *WeightedGraph {
	src := rng.New(seed)
	return graph.RandomWeights(graph.GNP(n, p, src), lo, hi, src)
}

// WeightedMatchingResult is the result of ApproxMaxWeightedMatching.
type WeightedMatchingResult struct {
	// M is the computed matching and Value its total weight.
	M     Matching
	Value float64
}

// ApproxMaxWeightedMatching computes a (2+ε)-approximate maximum weight
// matching (Corollary 1.4).
func ApproxMaxWeightedMatching(wg *WeightedGraph, opts Options) *WeightedMatchingResult {
	eps := opts.Eps
	if eps == 0 {
		eps = 0.1
	}
	res := matching.ApproxMaxWeightedMatching(wg, eps, opts.Seed)
	return &WeightedMatchingResult{M: res.M, Value: res.Value}
}

// IsMaximalIndependentSet validates an MIS result against g.
func IsMaximalIndependentSet(g *Graph, set []bool) bool {
	return graph.IsMaximalIndependentSet(g, set)
}

// IsMatching validates a matching against g.
func IsMatching(g *Graph, m Matching) bool { return graph.IsMatching(g, m) }

// IsVertexCover validates a vertex cover against g.
func IsVertexCover(g *Graph, cover []bool) bool { return graph.IsVertexCover(g, cover) }
