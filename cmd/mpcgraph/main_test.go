package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The subcommand logic is tested exhaustively in internal/cli; these
// tests pin the binary's wiring: args pass through, errors surface.

func TestRunGenSolve(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.mtx")
	if err := run([]string{"gen", "-scenario", "gnp", "-n", "200", "-seed", "1", "-out", path}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"solve", "-problem", "mis", "-in", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown command accepted")
	}
}

// TestExitCodes pins the documented sentinel-to-exit-code mapping by
// driving real invocations through run and classifying their errors.
func TestExitCodes(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"success", []string{"list"}, 0},
		{"unknown command", []string{"frobnicate"}, 1},
		{"missing instance", []string{"solve", "-problem", "mis"}, 1},
		{"unknown problem", []string{"solve", "-problem", "shortest-path", "-scenario", "gnp", "-n", "50"}, 2},
		{"unknown model", []string{"solve", "-problem", "mis", "-model", "pram", "-scenario", "gnp", "-n", "50"}, 2},
		{"unsupported pair", []string{"solve", "-problem", "weighted-matching", "-model", "congested-clique", "-scenario", "weighted-gnp", "-n", "50"}, 3},
		{"needs weighted instance", []string{"solve", "-problem", "weighted-matching", "-scenario", "gnp", "-n", "50"}, 4},
		// A 1ns deadline is always exceeded before the first metered
		// round, so the case is deterministic.
		{"deadline exceeded", []string{"solve", "-problem", "mis", "-scenario", "gnp", "-n", "400", "-timeout", "1ns"}, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := exitCode(run(tc.args)); got != tc.want {
				t.Errorf("exit code = %d, want %d", got, tc.want)
			}
		})
	}
}
