package service

import (
	"net/http"
	"strings"
	"testing"

	"mpcgraph/internal/obs"
)

// phaseIndex is the canonical lifecycle order the timings block must
// follow; equal offsets keep this order, so index order is the
// assertion, not just atMs.
var phaseIndex = map[string]int{
	"received":  0,
	"queued":    1,
	"attached":  2,
	"dequeued":  3,
	"solving":   4,
	"persisted": 5,
	"detached":  6,
	"settled":   7,
}

func assertOrderedTimings(t *testing.T, v *JobView, wantPhases ...string) {
	t.Helper()
	if v.Timings == nil {
		t.Fatalf("job %s (%s) has no timings block", v.ID, v.State)
	}
	prevIdx, prevAt := -1, -1.0
	seen := map[string]bool{}
	for _, p := range v.Timings.Phases {
		idx, ok := phaseIndex[p.Phase]
		if !ok {
			t.Errorf("unknown phase %q", p.Phase)
			continue
		}
		if seen[p.Phase] {
			t.Errorf("phase %q appears twice", p.Phase)
		}
		seen[p.Phase] = true
		if idx <= prevIdx {
			t.Errorf("phase %q out of lifecycle order", p.Phase)
		}
		if p.AtMs < prevAt {
			t.Errorf("phase %q atMs %.3f decreased (prev %.3f)", p.Phase, p.AtMs, prevAt)
		}
		if p.AtMs < 0 {
			t.Errorf("phase %q has negative offset %.3f", p.Phase, p.AtMs)
		}
		prevIdx, prevAt = idx, p.AtMs
	}
	for _, want := range wantPhases {
		if !seen[want] {
			t.Errorf("phase %q missing from %v", want, v.Timings.Phases)
		}
	}
}

// TestJobTimingsColdRun: a cold run's terminal view carries the full
// leader lifecycle — received through settled — in order, plus both
// cache-tier probes (memory missed, disk missed).
func TestJobTimingsColdRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	view := submitWait(t, ts.URL, &JobRequest{
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 200, Seed: 3},
		Options:  OptionsRequest{Seed: 3},
	})
	if view.State != StateDone {
		t.Fatalf("state %s (%s)", view.State, view.Error)
	}
	assertOrderedTimings(t, view,
		"received", "queued", "dequeued", "solving", "persisted", "settled")
	tiers := map[string]bool{}
	for _, p := range view.Timings.CacheProbes {
		if p.DurMs < 0 {
			t.Errorf("probe %s has negative duration", p.Tier)
		}
		tiers[p.Tier] = true
	}
	if !tiers["memory"] || !tiers["disk"] {
		t.Errorf("cold run should probe memory and disk, got %v", view.Timings.CacheProbes)
	}
}

// TestJobTimingsCacheHit: a memory-tier hit settles straight from
// place() — received and settled only, one memory probe, no queueing.
func TestJobTimingsCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := &JobRequest{
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 200, Seed: 5},
		Options:  OptionsRequest{Seed: 5},
	}
	if cold := submitWait(t, ts.URL, req); cold.State != StateDone {
		t.Fatalf("cold run: state %s (%s)", cold.State, cold.Error)
	}
	hit := submitWait(t, ts.URL, req)
	if !hit.CacheHit {
		t.Fatalf("re-submission missed the cache")
	}
	assertOrderedTimings(t, hit, "received", "settled")
	for _, p := range hit.Timings.Phases {
		if p.Phase == "queued" || p.Phase == "dequeued" || p.Phase == "solving" {
			t.Errorf("cache hit should not carry phase %q", p.Phase)
		}
	}
}

// TestMetricsHistogramExposition: after traffic, /metrics carries the
// obs histogram families and the Go runtime gauges, and the whole
// exposition passes the format invariants (HELP/TYPE per family,
// cumulative-monotone buckets, le="+Inf" == _count).
func TestMetricsHistogramExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if v := submitWait(t, ts.URL, &JobRequest{
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 200, Seed: 8},
		Options:  OptionsRequest{Seed: 8},
	}); v.State != StateDone {
		t.Fatalf("state %s (%s)", v.State, v.Error)
	}
	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	exp, err := obs.ParseExposition(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	if problems := obs.ValidateExposition(exp); len(problems) > 0 {
		lines := make([]string, len(problems))
		for i, p := range problems {
			lines[i] = p.Error()
		}
		t.Fatalf("exposition invariants violated:\n  %s", strings.Join(lines, "\n  "))
	}
	for _, name := range []string{
		"mpcgraphd_http_request_seconds",
		"mpcgraphd_queue_wait_seconds",
		"mpcgraphd_solve_seconds",
		"mpcgraphd_job_e2e_seconds",
		"mpcgraphd_cache_probe_seconds",
	} {
		if exp.Type[name] != "histogram" {
			t.Errorf("family %s missing or not a histogram (type %q)", name, exp.Type[name])
		}
	}
	if got, ok := exp.Value("mpcgraphd_solve_seconds_count", "problem", "mis"); !ok || got < 1 {
		t.Errorf("solve histogram count %v (present %t), want >= 1", got, ok)
	}
	for _, name := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_cycles_total"} {
		if _, ok := exp.Type[name]; !ok {
			t.Errorf("runtime family %s missing from /metrics", name)
		}
	}
}
