package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// coalesceRequest is the fixed request the flight tests share.
func coalesceRequest() *JobRequest {
	return &JobRequest{
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 300, Seed: 13},
		Options:  OptionsRequest{Seed: 13},
	}
}

// submitIdle posts one job to an idle (worker-less) server and returns
// its view.
func submitIdle(t *testing.T, ts *httptest.Server, req *JobRequest) *JobView {
	t.Helper()
	resp, data := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != 201 {
		t.Fatalf("submit: %s: %s", resp.Status, data)
	}
	return decodeView(t, data)
}

func cancelJobHTTP(t *testing.T, ts *httptest.Server, id string) int {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestCoalescedFollowerSharesLeaderResult: two identical submissions
// against an idle server occupy ONE queue slot; running the leader
// completes both with bit-identical reports, and exactly one Solve ran.
func TestCoalescedFollowerSharesLeaderResult(t *testing.T) {
	s := idleServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	leader := submitIdle(t, ts, coalesceRequest())
	follower := submitIdle(t, ts, coalesceRequest())
	if leader.Coalesced {
		t.Fatalf("leader marked coalesced")
	}
	if !follower.Coalesced {
		t.Fatalf("follower not marked coalesced")
	}
	if len(s.queue) != 1 {
		t.Fatalf("%d queue slots used by 2 coalesced submissions, want 1", len(s.queue))
	}

	job := <-s.queue
	job.run(s)

	lv := awaitTerminal(t, ts.URL, leader.ID)
	fv := awaitTerminal(t, ts.URL, follower.ID)
	if lv.State != StateDone || fv.State != StateDone {
		t.Fatalf("states %s/%s, want done/done", lv.State, fv.State)
	}
	if !bytes.Equal(mustJSON(t, stripVolatile(lv)), mustJSON(t, stripVolatile(fv))) {
		t.Errorf("follower result differs from leader result")
	}
	s.mu.Lock()
	solves, coalesces := s.solves, s.coalesces
	s.mu.Unlock()
	if solves != 1 || coalesces != 1 {
		t.Errorf("solves %d coalesces %d, want 1/1", solves, coalesces)
	}
}

// TestCancelFollowerKeepsLeader: canceling a coalesced follower
// terminates only that record — the leader still runs and completes.
func TestCancelFollowerKeepsLeader(t *testing.T) {
	s := idleServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	leader := submitIdle(t, ts, coalesceRequest())
	follower := submitIdle(t, ts, coalesceRequest())
	if code := cancelJobHTTP(t, ts, follower.ID); code != 200 {
		t.Fatalf("cancel follower: %d", code)
	}

	job := <-s.queue
	job.run(s)

	if lv := awaitTerminal(t, ts.URL, leader.ID); lv.State != StateDone {
		t.Errorf("leader state %s after follower cancel, want done", lv.State)
	}
	if fv := awaitTerminal(t, ts.URL, follower.ID); fv.State != StateCanceled {
		t.Errorf("follower state %s, want canceled", fv.State)
	}
}

// TestCancelLeaderKeepsFollower: canceling the leader record lets the
// follower ride the computation to completion.
func TestCancelLeaderKeepsFollower(t *testing.T) {
	s := idleServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	leader := submitIdle(t, ts, coalesceRequest())
	follower := submitIdle(t, ts, coalesceRequest())
	if code := cancelJobHTTP(t, ts, leader.ID); code != 200 {
		t.Fatalf("cancel leader: %d", code)
	}

	job := <-s.queue
	job.run(s)

	if lv := awaitTerminal(t, ts.URL, leader.ID); lv.State != StateCanceled {
		t.Errorf("leader state %s, want canceled", lv.State)
	}
	fv := awaitTerminal(t, ts.URL, follower.ID)
	if fv.State != StateDone || fv.Report == nil {
		t.Errorf("follower state %s (report %v) after leader cancel, want done", fv.State, fv.Report != nil)
	}
}

// TestAllRidersCanceledAbortsSolve: when every rider cancels before the
// worker arrives, the computation never runs at all.
func TestAllRidersCanceledAbortsSolve(t *testing.T) {
	s := idleServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	leader := submitIdle(t, ts, coalesceRequest())
	follower := submitIdle(t, ts, coalesceRequest())
	cancelJobHTTP(t, ts, leader.ID)
	cancelJobHTTP(t, ts, follower.ID)

	job := <-s.queue
	job.run(s)

	s.mu.Lock()
	solves := s.solves
	flights := len(s.flights)
	s.mu.Unlock()
	if solves != 0 {
		t.Errorf("%d solves ran for fully-canceled riders, want 0", solves)
	}
	if flights != 0 {
		t.Errorf("%d flights leaked", flights)
	}
}

// TestResubmitAfterCancelDoesNotRideDeadFlight: canceling every rider
// of a queued leader kills the flight's context, but the flight stays
// registered until a worker dequeues the leader. A resubmission in
// that window must start a fresh computation — attaching would strand
// it on a flight that completes no one (it used to hang forever).
func TestResubmitAfterCancelDoesNotRideDeadFlight(t *testing.T) {
	s := idleServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := submitIdle(t, ts, coalesceRequest())
	if code := cancelJobHTTP(t, ts, first.ID); code != 200 {
		t.Fatalf("cancel: %d", code)
	}

	second := submitIdle(t, ts, coalesceRequest())
	if second.Coalesced {
		t.Fatalf("resubmission coalesced onto a dead flight")
	}

	// Drain in queue order: the dead leader first, then the fresh one.
	(<-s.queue).run(s)
	(<-s.queue).run(s)

	if v := awaitTerminal(t, ts.URL, second.ID); v.State != StateDone {
		t.Fatalf("resubmitted job state %s (%s), want done", v.State, v.Error)
	}
}

// TestRidersOnDeadFlightFailInsteadOfHanging: if a flight's context
// dies while a non-terminal rider is attached (the losing side of the
// attach-vs-final-detach race), the worker must fail that rider rather
// than discard it into a forever-queued record.
func TestRidersOnDeadFlightFailInsteadOfHanging(t *testing.T) {
	s := idleServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	leader := submitIdle(t, ts, coalesceRequest())
	follower := submitIdle(t, ts, coalesceRequest())

	// Kill the context out from under both live riders, as the race
	// would: a straggler attaches just after the last rider detached.
	s.mu.Lock()
	f := s.jobs[leader.ID].flight
	s.mu.Unlock()
	f.cancel()

	(<-s.queue).run(s)

	for _, id := range []string{leader.ID, follower.ID} {
		if v := awaitTerminal(t, ts.URL, id); v.State != StateFailed {
			t.Errorf("rider %s state %s on a dead flight, want failed", id, v.State)
		}
	}
	s.mu.Lock()
	if len(s.flights) != 0 {
		t.Errorf("%d flights leaked", len(s.flights))
	}
	s.mu.Unlock()
}

// TestFlightRetiresBeforeResultVisible: once a rider observes done, a
// new identical submission must hit the cache, never attach to the
// retired flight.
func TestFlightRetiresBeforeResultVisible(t *testing.T) {
	s := idleServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	leader := submitIdle(t, ts, coalesceRequest())
	job := <-s.queue
	job.run(s)
	if lv := awaitTerminal(t, ts.URL, leader.ID); lv.State != StateDone {
		t.Fatalf("leader state %s", lv.State)
	}

	hit := submitIdle(t, ts, coalesceRequest())
	if !hit.CacheHit || hit.Coalesced {
		t.Errorf("post-completion submit: cacheHit %t coalesced %t, want hit, not coalesced", hit.CacheHit, hit.Coalesced)
	}
	if hit.CacheTier != TierMemory {
		t.Errorf("cache tier %q, want memory", hit.CacheTier)
	}
}

// TestNoCacheNeverCoalesces: a noCache submission must not ride an
// in-flight computation (its contract is a forced cold run), and an
// in-flight noCache job must not accept riders.
func TestNoCacheNeverCoalesces(t *testing.T) {
	s := idleServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submitIdle(t, ts, coalesceRequest())
	nc := coalesceRequest()
	nc.NoCache = true
	v := submitIdle(t, ts, nc)
	if v.Coalesced {
		t.Errorf("noCache submission coalesced onto a flight")
	}
	if len(s.queue) != 2 {
		t.Errorf("noCache submission did not occupy its own queue slot")
	}
}

// TestConcurrentBurstCoalesces is the end-to-end race: N identical
// submissions race against a live server whose solve is slowed by a
// failpoint; exactly one Solve runs, the rest coalesce, and every view
// is bit-identical.
func TestConcurrentBurstCoalesces(t *testing.T) {
	const burst = 6
	s, ts := newTestServer(t, Config{Workers: 2, Failpoints: "solve-delay=150ms"})

	var wg sync.WaitGroup
	views := make([]*JobView, burst)
	for i := 0; i < burst; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/jobs", coalesceRequest())
			if resp.StatusCode != 201 {
				t.Errorf("burst submit %d: %s: %s", i, resp.Status, data)
				return
			}
			views[i] = decodeView(t, data)
		}()
	}
	wg.Wait()

	leaders, followers := 0, 0
	for i, v := range views {
		if v == nil {
			t.Fatalf("burst submit %d failed", i)
		}
		final := awaitTerminal(t, ts.URL, v.ID)
		if final.State != StateDone {
			t.Fatalf("burst job %s state %s (%s)", v.ID, final.State, final.Error)
		}
		if final.Coalesced {
			followers++
		} else {
			leaders++
		}
		views[i] = final
	}
	// Cache hits count as leaders here (they didn't coalesce); with a
	// 150ms solve delay and near-simultaneous submissions the common
	// outcome is 1 leader + 5 followers, but a straggler that arrives
	// after completion legitimately hits the cache instead.
	if leaders < 1 || followers < 1 {
		t.Fatalf("burst split %d leaders / %d followers — no coalescing happened", leaders, followers)
	}
	s.mu.Lock()
	solves, coalesces := s.solves, s.coalesces
	s.mu.Unlock()
	if solves != 1 {
		t.Errorf("burst of %d identical jobs ran %d solves, want 1", burst, solves)
	}
	if int(coalesces) != followers {
		t.Errorf("coalesce counter %d, but %d followers", coalesces, followers)
	}
	base := mustJSON(t, stripVolatile(views[0]))
	for _, v := range views[1:] {
		if !bytes.Equal(base, mustJSON(t, stripVolatile(v))) {
			a, _ := json.Marshal(stripVolatile(views[0]))
			b, _ := json.Marshal(stripVolatile(v))
			t.Errorf("burst results diverge:\n %s\n %s", a, b)
		}
	}

	// The deterministic-timers invariant: no deadline timers leak.
	time.Sleep(10 * time.Millisecond)
	s.mu.Lock()
	if len(s.flights) != 0 {
		t.Errorf("%d flights leaked after the burst", len(s.flights))
	}
	s.mu.Unlock()
}
