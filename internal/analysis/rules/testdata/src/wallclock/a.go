// Package wallclock poses as mpcgraph/internal/mis, a deterministic
// core package where every reference to time.Now must be flagged —
// including the method-value form the old syntax linter missed.
package wallclock

import "time"

func stamp() time.Time {
	return time.Now() // want "no-wall-clock: reference to time.Now"
}

func stampFn() func() time.Time {
	now := time.Now // want "no-wall-clock: reference to time.Now"
	return now
}

func planned() time.Duration {
	//lint:ignore no-wall-clock the value is discarded; this documents the suppressed negative case
	_ = time.Now
	return 0
}
