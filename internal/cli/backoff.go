package cli

import (
	"errors"
	"time"

	"mpcgraph/internal/rng"
)

// ErrRetriesExhausted is returned when a retryable daemon rejection
// (HTTP 429 or 503) outlasts the client's retry budget. cmd/mpcgraph
// maps it to exit code 6 so scripts can tell "the daemon is saturated"
// from a plain failure and apply their own, coarser backoff.
var ErrRetriesExhausted = errors.New("retries exhausted")

// backoff plans the jittered exponential retry delays of the client
// subcommands. It follows the repo's determinism discipline: the jitter
// comes from an internal/rng stream seeded by stable inputs (not
// math/rand, not the clock), so a replayed invocation plans the exact
// same delay sequence. The budget is likewise the *sum of planned
// sleeps*, not elapsed wall time — package cli never reads the wall
// clock (the no-wall-clock analyzer, docs/analysis.md) — which keeps the exhaustion
// point reproducible too.
//
// Delays double from base to cap with jitter drawn uniformly from
// [d/2, d), decorrelating clients that were rejected by the same
// admission-control event. A Retry-After hint from the server
// overrides the planned delay for that attempt: the server knows its
// queue, the client only guesses.
type backoff struct {
	src  *rng.Source
	base time.Duration
	cap  time.Duration

	attempts    int
	maxAttempts int
	slept       time.Duration // sum of every delay handed out so far
	budget      time.Duration // bound on slept; <= 0 means unbounded
}

// newBackoff plans up to maxAttempts retries for the purpose-labeled
// stream derived from seed.
func newBackoff(seed uint64, purpose string, base, cap time.Duration, maxAttempts int, budget time.Duration) *backoff {
	return &backoff{
		src:         rng.New(seed).SplitString("cli-backoff-" + purpose),
		base:        base,
		cap:         cap,
		maxAttempts: maxAttempts,
		budget:      budget,
	}
}

// next returns the delay to sleep before the upcoming retry, or false
// when the attempt or sleep budget is spent. retryAfter is the
// server's Retry-After hint (0 = none), which wins over the planned
// delay.
func (b *backoff) next(retryAfter time.Duration) (time.Duration, bool) {
	if b.attempts >= b.maxAttempts {
		return 0, false
	}
	d := b.base << b.attempts
	if d > b.cap || d <= 0 { // <= 0 guards shift overflow
		d = b.cap
	}
	// Jitter in [d/2, d): never sleeps longer than the exponential
	// envelope, never collapses below half of it.
	d = d/2 + time.Duration(b.src.Float64()*float64(d/2))
	if retryAfter > 0 {
		d = retryAfter
	}
	if b.budget > 0 && b.slept+d > b.budget {
		return 0, false
	}
	b.attempts++
	b.slept += d
	return d, true
}
