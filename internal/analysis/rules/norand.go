package rules

import (
	"strconv"

	"mpcgraph/internal/analysis"
)

// NewNoMathRand returns the no-math-rand analyzer: importing math/rand
// or math/rand/v2 is forbidden everywhere, test files included. All
// randomness goes through the seeded internal/rng primitives, whose
// stateless hashing keeps runs bit-identical for every Workers setting
// and across processes; an unseeded or globally-seeded generator in any
// package — even a test — breaks the reproducibility the golden-report
// and cache bit-identity suites rely on.
func NewNoMathRand() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "no-math-rand",
		Doc: "forbids importing math/rand and math/rand/v2 anywhere in the module; " +
			"all randomness must flow through the seeded internal/rng primitives",
		Run: func(pass *analysis.Pass) {
			for _, f := range pass.Files {
				for _, imp := range f.Imports {
					p, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if p == "math/rand" || p == "math/rand/v2" {
						pass.Reportf(imp.Pos(),
							"import of %s (use the seeded internal/rng primitives; see the determinism contract in docs/design.md)", p)
					}
				}
			}
		},
	}
}
