package mpcgraph

import (
	"mpcgraph/internal/model"
	"mpcgraph/internal/registry"
)

// Report is the uniform result of Solve: the problem-specific payload
// (InMIS, M, InCover/FractionalWeight, Value) plus the complete audited
// model costs — Rounds, Phases, MaxMachineWords, TotalWords, Violations,
// host wall time, and the per-stage breakdown in Stages — for every
// algorithm, under both models. Unlike the deprecated per-problem entry
// points, no Report ever drops a cost field: a metered run always
// carries its max per-machine load and total communication volume.
type Report = registry.Report

// StageCost is one entry of Report.Stages: the audited rounds and
// communication volume of a named algorithm stage. Stage Rounds and
// Words sum to the Report totals.
type StageCost = model.StageCost

// TraceEvent is the per-round observation delivered to Options.Trace:
// the cumulative round index, the words moved by the step, and the
// algorithm's most recently reported count of still-undecided vertices.
type TraceEvent = model.TraceEvent

// TraceFunc observes TraceEvents; see Options.Trace.
type TraceFunc = model.TraceFunc

// statsOf lifts a Report's cost totals into the legacy Stats shape used
// by the deprecated entry points.
func statsOf(rep *Report) Stats {
	return Stats{
		Rounds:          rep.Rounds,
		MaxMachineWords: rep.MaxMachineWords,
		TotalWords:      rep.TotalWords,
	}
}
