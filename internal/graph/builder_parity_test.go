package graph

import (
	"fmt"
	"sort"
	"testing"

	"mpcgraph/internal/par"
	"mpcgraph/internal/rng"
)

// referenceBuild is the pre-radix builder (parallel merge sort, sharded
// counting fill, per-vertex sort fixup), kept verbatim as the parity
// oracle: the radix builder must reproduce its CSR bytes exactly, for
// every worker count.
func referenceBuild(n int, edges [][2]int32, workers int) (*Graph, error) {
	if n == 0 && len(edges) > 0 {
		return nil, fmt.Errorf("graph: edges on zero vertices")
	}
	norm := make([][2]int32, len(edges))
	for i, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		norm[i] = [2]int32{u, v}
	}
	par.Sort(workers, norm, func(x, y [2]int32) bool {
		if x[0] != y[0] {
			return x[0] < y[0]
		}
		return x[1] < y[1]
	})
	dedup := norm[:0]
	for i, e := range norm {
		if i == 0 || e != norm[i-1] {
			dedup = append(dedup, e)
		}
	}
	norm = dedup

	m := len(norm)
	shards := par.ShardCount(workers, m)
	counts := make([][]int32, shards)
	for w := range counts {
		counts[w] = make([]int32, n)
	}
	par.For(workers, m, func(lo, hi, w int) {
		c := counts[w]
		for _, e := range norm[lo:hi] {
			c[e[0]]++
			c[e[1]]++
		}
	})
	offsets := make([]int32, n+1)
	cursors := make([][]int32, shards)
	for w := range cursors {
		cursors[w] = make([]int32, n)
	}
	for v := 0; v < n; v++ {
		deg := int32(0)
		for w := 0; w < shards; w++ {
			cursors[w][v] = deg
			deg += counts[w][v]
		}
		offsets[v+1] = offsets[v] + deg
	}
	adj := make([]int32, 2*m)
	par.For(workers, m, func(lo, hi, w int) {
		cur := cursors[w]
		for _, e := range norm[lo:hi] {
			u, v := e[0], e[1]
			adj[offsets[u]+cur[u]] = v
			cur[u]++
			adj[offsets[v]+cur[v]] = u
			cur[v]++
		}
	})
	g := &Graph{n: n, m: m, offsets: offsets, adj: adj}
	par.For(workers, n, func(lo, hi, _ int) {
		for v := lo; v < hi; v++ {
			nb := g.adj[g.offsets[v]:g.offsets[v+1]]
			sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		}
	})
	return g, nil
}

// csrEqual asserts two graphs have byte-identical CSR arrays.
func csrEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.n != got.n || want.m != got.m {
		t.Fatalf("shape mismatch: want n=%d m=%d, got n=%d m=%d", want.n, want.m, got.n, got.m)
	}
	for i := range want.offsets {
		if want.offsets[i] != got.offsets[i] {
			t.Fatalf("offsets[%d]: want %d, got %d", i, want.offsets[i], got.offsets[i])
		}
	}
	for i := range want.adj {
		if want.adj[i] != got.adj[i] {
			t.Fatalf("adj[%d]: want %d, got %d", i, want.adj[i], got.adj[i])
		}
	}
}

// parityEdgeSets enumerates adversarial edge multisets: empty, single,
// heavy duplication, stars (skewed degree), reversed insertion order,
// dense blocks, and random multigraphs big enough to cross both the
// radix threshold and par's minParallel.
func parityEdgeSets() map[string]struct {
	n     int
	edges [][2]int32
} {
	sets := map[string]struct {
		n     int
		edges [][2]int32
	}{}
	add := func(name string, n int, edges [][2]int32) {
		sets[name] = struct {
			n     int
			edges [][2]int32
		}{n, edges}
	}
	add("empty", 0, nil)
	add("isolated", 17, nil)
	add("single", 2, [][2]int32{{1, 0}})
	add("triangle-dup", 3, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {1, 0}, {0, 2}, {0, 1}})

	star := make([][2]int32, 0, 4096)
	for i := int32(1); i < 2049; i++ {
		star = append(star, [2]int32{i, 0}, [2]int32{0, i})
	}
	add("star-dup", 2049, star)

	var block [][2]int32
	for u := int32(0); u < 64; u++ {
		for v := u + 1; v < 64; v++ {
			block = append(block, [2]int32{v, u})
		}
	}
	add("dense-block-reversed", 64, block)

	src := rng.New(42)
	rand := make([][2]int32, 0, 1<<16)
	for i := 0; i < 1<<16; i++ {
		u := int32(src.Uint64() % 1500)
		v := int32(src.Uint64() % 1500)
		if u == v {
			v = (v + 1) % 1500
		}
		rand = append(rand, [2]int32{u, v})
	}
	add("random-multigraph", 1500, rand)

	// Vertex ids above 2^16 make the third byte of both packed halves
	// informative, exercising the higher radix digits.
	big := make([][2]int32, 0, 4096)
	for i := 0; i < 4096; i++ {
		u := int32(src.Uint64() % (1 << 22))
		v := int32(src.Uint64() % (1 << 22))
		if u == v {
			continue
		}
		big = append(big, [2]int32{u, v})
	}
	add("sparse-huge-ids", 1<<22, big)
	return sets
}

// TestBuilderRadixParity pins the radix builder against the pre-radix
// reference for every worker setting on every adversarial edge set.
func TestBuilderRadixParity(t *testing.T) {
	for name, tc := range parityEdgeSets() {
		for _, workers := range []int{1, 4, 0} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				want, err := referenceBuild(tc.n, tc.edges, workers)
				if err != nil {
					t.Fatal(err)
				}
				b := NewBuilderCap(tc.n, len(tc.edges))
				for _, e := range tc.edges {
					b.AddEdge(e[0], e[1])
				}
				got, err := b.BuildWorkers(workers)
				if err != nil {
					t.Fatal(err)
				}
				csrEqual(t, want, got)
			})
		}
	}
}

// TestBuilderWorkersInvariant cross-checks the radix builder against
// itself: every worker count (sequential, forced multi-shard, all
// cores) must emit byte-identical CSR.
func TestBuilderWorkersInvariant(t *testing.T) {
	for name, tc := range parityEdgeSets() {
		t.Run(name, func(t *testing.T) {
			build := func(workers int) *Graph {
				b := NewBuilderCap(tc.n, len(tc.edges))
				b.AddEdges(tc.edges)
				g, err := b.BuildWorkers(workers)
				if err != nil {
					t.Fatal(err)
				}
				return g
			}
			want := build(1)
			csrEqual(t, want, build(4))
			csrEqual(t, want, build(0))
		})
	}
}

// TestBuilderBulkPaths pins AddEdges and FromPackedEdges against the
// incremental AddEdge path.
func TestBuilderBulkPaths(t *testing.T) {
	for name, tc := range parityEdgeSets() {
		t.Run(name, func(t *testing.T) {
			inc := NewBuilder(tc.n)
			for _, e := range tc.edges {
				inc.AddEdge(e[0], e[1])
			}
			want, err := inc.Build()
			if err != nil {
				t.Fatal(err)
			}

			bulk := NewBuilderCap(tc.n, len(tc.edges))
			bulk.AddEdges(tc.edges)
			got, err := bulk.Build()
			if err != nil {
				t.Fatal(err)
			}
			csrEqual(t, want, got)

			keys := make([]uint64, 0, len(tc.edges))
			for _, e := range tc.edges {
				keys = append(keys, PackEdge(e[0], e[1]))
			}
			packed, err := FromPackedEdges(tc.n, keys)
			if err != nil {
				t.Fatal(err)
			}
			csrEqual(t, want, packed)
		})
	}
}
