package matching

import (
	"context"
	"math"
	"testing"

	"mpcgraph/internal/baseline"
	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

const eps = 0.1

func coverIsValid(t *testing.T, g *graph.Graph, cover []bool) {
	t.Helper()
	if !graph.IsVertexCover(g, cover) {
		t.Fatal("output cover does not cover all edges")
	}
}

func fracIsFeasible(t *testing.T, frac *FracResult) {
	t.Helper()
	for v, y := range frac.Y {
		if y > 1+1e-9 {
			t.Fatalf("vertex %d has weight %v > 1", v, y)
		}
	}
	for e, x := range frac.X {
		if x < 0 || x > 1+1e-9 {
			t.Fatalf("edge %d has weight %v outside [0,1]", e, x)
		}
	}
}

func TestCentralTerminatesAndCovers(t *testing.T) {
	g := graph.GNP(400, 0.03, rng.New(1))
	res := Central(g, eps)
	coverIsValid(t, g, res.Cover)
	fracIsFeasible(t, res)
	bound := maxCentralIterations(400, eps)
	if res.Iterations >= bound {
		t.Errorf("iterations = %d, expected < %d", res.Iterations, bound)
	}
}

func TestCentralIterationScaling(t *testing.T) {
	// Lemma 4.1: O(log n / eps) iterations.
	for _, n := range []int{256, 1024, 4096} {
		g := graph.GNP(n, 8/float64(n), rng.New(2))
		res := Central(g, eps)
		want := math.Log(float64(n)) / (-math.Log1p(-eps))
		if float64(res.Iterations) > 1.5*want+5 {
			t.Errorf("n=%d: iterations %d far above log-scale %f", n, res.Iterations, want)
		}
	}
}

func TestCentralLemma41Ratios(t *testing.T) {
	// (A) |C| <= 2(1+5eps) W_M; (B) W_M >= |M*|/(2+5eps).
	for seed := uint64(0); seed < 5; seed++ {
		g := graph.GNP(200, 0.05, rng.New(seed))
		res := Central(g, eps)
		w := res.Weight()
		c := float64(res.CoverSize())
		if c > 2*(1+5*eps)*w+1e-9 {
			t.Errorf("seed %d: |C|=%v > 2(1+5eps)W=%v", seed, c, 2*(1+5*eps)*w)
		}
		opt := float64(baseline.MaxMatchingGeneral(g).Size())
		if w < opt/(2+5*eps)-1e-9 {
			t.Errorf("seed %d: W=%v < |M*|/(2+5eps)=%v", seed, w, opt/(2+5*eps))
		}
		// Duality sandwich: W_M <= |C*| <= |C|.
		if w > c+1e-9 {
			t.Errorf("seed %d: fractional weight %v exceeds cover size %v", seed, w, c)
		}
	}
}

func TestCentralRandMatchesStructure(t *testing.T) {
	g := graph.GNP(300, 0.04, rng.New(3))
	oracle := rng.NewThresholdOracle(7, 1-4*eps, 1-2*eps)
	res := CentralRand(g, eps, oracle)
	coverIsValid(t, g, res.Cover)
	fracIsFeasible(t, res)
}

func TestCentralOnDegenerateGraphs(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"empty":  graph.Empty(10),
		"single": graph.Path(2),
		"star":   graph.Star(50),
		"k4":     graph.Complete(4),
	} {
		t.Run(name, func(t *testing.T) {
			res := Central(g, eps)
			coverIsValid(t, g, res.Cover)
			fracIsFeasible(t, res)
		})
	}
}

func TestSimulateFeasibleAndCovers(t *testing.T) {
	families := map[string]*graph.Graph{
		"gnp-sparse": graph.GNP(1000, 0.004, rng.New(4)),
		"gnp-dense":  graph.GNP(300, 0.1, rng.New(5)),
		"bipartite":  graph.RandomBipartite(300, 300, 0.01, rng.New(6)).Graph,
		"ring":       graph.Ring(500),
		"star":       graph.Star(500),
		"powerlaw":   graph.PreferentialAttachment(500, 3, rng.New(7)),
		"empty":      graph.Empty(50),
		"single":     graph.Path(2),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			res, err := Simulate(g, SimOptions{Seed: 11, Eps: eps})
			if err != nil {
				t.Fatal(err)
			}
			coverIsValid(t, g, res.Frac.Cover)
			fracIsFeasible(t, res.Frac)
		})
	}
}

func TestSimulateDeterministic(t *testing.T) {
	g := graph.GNP(500, 0.02, rng.New(8))
	a, err := Simulate(g, SimOptions{Seed: 5, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(g, SimOptions{Seed: 5, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Phases != b.Phases {
		t.Fatal("same seed produced different metrics")
	}
	for e := range a.Frac.X {
		if a.Frac.X[e] != b.Frac.X[e] {
			t.Fatalf("edge %d weight differs across identical runs", e)
		}
	}
}

func TestSimulatePhaseScaling(t *testing.T) {
	// Lemma 4.8: O(log log n) phases.
	for _, n := range []int{1 << 10, 1 << 13} {
		g := graph.GNP(n, 10/float64(n)*math.Sqrt(float64(n))/2, rng.New(9))
		res, err := Simulate(g, SimOptions{Seed: 13, Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		if res.Phases > 14 {
			t.Errorf("n=%d: %d phases, want O(log log n)", n, res.Phases)
		}
		if res.Rounds > 250 {
			t.Errorf("n=%d: %d rounds", n, res.Rounds)
		}
	}
}

func TestSimulateInducedSubgraphsBounded(t *testing.T) {
	// Lemma 4.7: per-machine induced subgraphs have O(n) words.
	n := 1 << 12
	g := graph.GNP(n, 0.008, rng.New(10))
	res, err := Simulate(g, SimOptions{Seed: 17, Eps: eps, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Errorf("capacity violations: %d", res.Violations)
	}
	for i, ps := range res.PhaseStats {
		if ps.MaxInducedWords > int64(16*n) {
			t.Errorf("phase %d: induced subgraph %d words > 16n", i, ps.MaxInducedWords)
		}
	}
}

func TestSimulateCoverQuality(t *testing.T) {
	// Lemma 4.2 quality on bipartite instances where Kőnig gives the
	// exact optimum.
	for seed := uint64(0); seed < 4; seed++ {
		bg := graph.RandomBipartite(150, 150, 0.03, rng.New(seed))
		res, err := Simulate(bg.Graph, SimOptions{Seed: seed, Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		coverIsValid(t, bg.Graph, res.Frac.Cover)
		opt := baseline.HopcroftKarp(bg).Size() // = |C*| by Kőnig
		if opt == 0 {
			continue
		}
		ratio := float64(res.Frac.CoverSize()) / float64(opt)
		if ratio > 2+50*eps {
			t.Errorf("seed %d: cover ratio %.3f > 2+50eps", seed, ratio)
		}
	}
}

func TestSimulateMatchingWeightQuality(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.GNP(200, 0.05, rng.New(seed+40))
		res, err := Simulate(g, SimOptions{Seed: seed, Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		opt := float64(baseline.MaxMatchingGeneral(g).Size())
		if opt == 0 {
			continue
		}
		if w := res.Frac.Weight(); w < opt/(2+50*eps) {
			t.Errorf("seed %d: fractional weight %v below |M*|/(2+50eps) = %v", seed, w, opt/(2+50*eps))
		}
	}
}

func TestSimulatePaperConstantsMode(t *testing.T) {
	g := graph.GNP(400, 0.05, rng.New(12))
	res, err := Simulate(g, SimOptions{Seed: 3, Eps: eps, PaperConstants: true})
	if err != nil {
		t.Fatal(err)
	}
	coverIsValid(t, g, res.Frac.Cover)
	fracIsFeasible(t, res.Frac)
	// With the literal constants, I floors at 1 iteration per phase.
	for _, ps := range res.PhaseStats {
		if ps.Iterations != 1 {
			t.Errorf("paper-constants phase ran %d iterations, want 1", ps.Iterations)
		}
	}
}

func TestSimulateFixedThresholdAblation(t *testing.T) {
	g := graph.GNP(400, 0.05, rng.New(13))
	res, err := Simulate(g, SimOptions{Seed: 3, Eps: eps, FixedThreshold: true})
	if err != nil {
		t.Fatal(err)
	}
	coverIsValid(t, g, res.Frac.Cover)
	fracIsFeasible(t, res.Frac)
}

func TestSimulateDeviationProbe(t *testing.T) {
	probe := &DeviationProbe{}
	g := graph.GNP(1<<11, 0.01, rng.New(14))
	res, err := Simulate(g, SimOptions{Seed: 23, Eps: eps, Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases == 0 {
		t.Skip("instance too small for phases")
	}
	if len(probe.PhaseMaxDev) != res.Phases || len(probe.PhaseMaxDiff) != res.Phases {
		t.Fatalf("probe recorded %d/%d phases, simulation ran %d",
			len(probe.PhaseMaxDev), len(probe.PhaseMaxDiff), res.Phases)
	}
	if probe.Compared == 0 {
		t.Fatal("probe compared nothing")
	}
	for i, d := range probe.PhaseMaxDiff {
		if d < 0 || math.IsNaN(d) {
			t.Errorf("phase %d: invalid diff %v", i, d)
		}
	}
	// Lemma 4.15: |y - ỹ| stays below m^{-0.1} ≈ small; allow a lenient
	// envelope since constants differ at simulation scale.
	for i, dev := range probe.PhaseMaxDev {
		if dev > 0.5 {
			t.Errorf("phase %d: max deviation %v is implausibly large", i, dev)
		}
	}
	// Bad vertices must be a small fraction of comparisons.
	totalBad := 0
	for _, b := range probe.PhaseBad {
		totalBad += b
	}
	if float64(totalBad) > 0.05*float64(probe.Compared) {
		t.Errorf("bad fraction %v too large", float64(totalBad)/float64(probe.Compared))
	}
}

func TestRoundFractionalValidAndSized(t *testing.T) {
	g := graph.GNP(2000, 0.005, rng.New(15))
	res, err := Simulate(g, SimOptions{Seed: 9, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	candidate := CandidateSet(res.Frac, 5*eps)
	cSize := graph.CountMarked(candidate)
	if cSize == 0 {
		t.Skip("no heavy cover vertices on this instance")
	}
	m := RoundFractional(g, res.Frac, candidate, rng.New(16))
	if !graph.IsMatching(g, m) {
		t.Fatal("rounding produced an invalid matching")
	}
	if m.Size() < cSize/50 {
		t.Errorf("rounded matching %d below |C̃|/50 = %d", m.Size(), cSize/50)
	}
}

func TestRoundFractionalEmptyCandidates(t *testing.T) {
	g := graph.Path(5)
	res := Central(g, eps)
	m := RoundFractional(g, res, make([]bool, 5), rng.New(1))
	if m.Size() != 0 {
		t.Error("rounding with no candidates produced edges")
	}
}

func TestCandidateSet(t *testing.T) {
	frac := &FracResult{
		Y:     []float64{0.99, 0.5, 0.97, 0.99},
		Cover: []bool{true, true, false, true},
	}
	got := CandidateSet(frac, 0.05)
	want := []bool{true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("candidate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestApproxMaxMatchingQuality(t *testing.T) {
	families := map[string]*graph.Graph{
		"gnp":       graph.GNP(300, 0.03, rng.New(17)),
		"bipartite": graph.RandomBipartite(150, 150, 0.03, rng.New(18)).Graph,
		"ring":      graph.Ring(301),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			res, err := ApproxMaxMatching(g, PipelineOptions{Seed: 21, Eps: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			if !graph.IsMatching(g, res.M) {
				t.Fatal("invalid matching")
			}
			if !graph.IsMaximalMatching(g, res.M) {
				t.Fatal("pipeline with finish must be maximal")
			}
			opt := baseline.MaxMatchingGeneral(g).Size()
			if opt == 0 {
				return
			}
			ratio := float64(opt) / float64(res.M.Size())
			if ratio > 2.1 {
				t.Errorf("matching ratio %.3f > 2+eps", ratio)
			}
		})
	}
}

func TestApproxMaxMatchingSkipFinish(t *testing.T) {
	g := graph.GNP(400, 0.02, rng.New(19))
	res, err := ApproxMaxMatching(g, PipelineOptions{Seed: 22, Eps: 0.1, SkipFinish: true})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMatching(g, res.M) {
		t.Fatal("invalid matching")
	}
	if res.CoreSize != res.M.Size() {
		t.Errorf("CoreSize %d != size %d with SkipFinish", res.CoreSize, res.M.Size())
	}
}

func TestApproxMaxMatchingEmpty(t *testing.T) {
	res, err := ApproxMaxMatching(graph.Empty(10), PipelineOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Size() != 0 || res.Invocations != 0 {
		t.Errorf("empty graph: size=%d invocations=%d", res.M.Size(), res.Invocations)
	}
}

func TestApproxMinVertexCoverQuality(t *testing.T) {
	bg := graph.RandomBipartite(200, 200, 0.02, rng.New(23))
	res, err := ApproxMinVertexCover(bg.Graph, PipelineOptions{Seed: 24, Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	coverIsValid(t, bg.Graph, res.Frac.Cover)
	opt := baseline.HopcroftKarp(bg).Size()
	if opt > 0 {
		ratio := float64(res.Frac.CoverSize()) / float64(opt)
		// eps=0.1 runs the simulation at eps'=0.02: Lemma 4.2's bound is
		// 2+50eps' = 3; measured ratios are typically near 2.2.
		if ratio > 3.0 {
			t.Errorf("cover ratio %.3f > 3.0", ratio)
		}
	}
}

func TestFilteringMaximalMatching(t *testing.T) {
	g := graph.GNP(800, 0.02, rng.New(25))
	res := FilteringMaximalMatching(g, int64(4*800), rng.New(26))
	if !graph.IsMaximalMatching(g, res.M) {
		t.Fatal("filtering output not maximal")
	}
	if res.MaxSampleWords > 4*800 {
		t.Errorf("sample %d words exceeded memory", res.MaxSampleWords)
	}
	if res.Rounds > 40 {
		t.Errorf("filtering took %d rounds", res.Rounds)
	}
}

func TestFilteringTinyMemory(t *testing.T) {
	g := graph.GNP(200, 0.1, rng.New(27))
	res := FilteringMaximalMatching(g, 64, rng.New(28))
	if !graph.IsMaximalMatching(g, res.M) {
		t.Fatal("filtering with tiny memory not maximal")
	}
}

func TestFilteringRoundsLogarithmic(t *testing.T) {
	// At S = Θ(n), rounds should grow like log(m/n): the E13 contrast.
	r1 := FilteringMaximalMatching(graph.GNP(500, 0.05, rng.New(29)), 2*500, rng.New(1)).Rounds
	r2 := FilteringMaximalMatching(graph.GNP(4000, 0.05, rng.New(30)), 2*4000, rng.New(1)).Rounds
	if r2 < r1 {
		t.Logf("rounds did not grow: %d -> %d (acceptable, probabilistic)", r1, r2)
	}
	if r2 > 60 {
		t.Errorf("filtering rounds %d implausibly many", r2)
	}
}

func TestBoostBipartiteReachesOnePlusEps(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		bg := graph.RandomBipartite(120, 120, 0.04, rng.New(seed+60))
		start := baseline.GreedyMaximalMatching(bg.Graph, bg.EdgeList())
		res, _ := BoostToOnePlusEps(context.Background(), bg.Graph, start, 0.1)
		if !graph.IsMatching(bg.Graph, res.M) {
			t.Fatal("boost produced invalid matching")
		}
		opt := baseline.HopcroftKarp(bg).Size()
		if opt == 0 {
			continue
		}
		if float64(res.M.Size()) < float64(opt)/1.12 {
			t.Errorf("seed %d: boosted %d vs opt %d not within 1+eps", seed, res.M.Size(), opt)
		}
		if res.M.Size() < start.Size() {
			t.Error("boost shrank the matching")
		}
	}
}

func TestBoostGeneralImproves(t *testing.T) {
	g := graph.GNP(200, 0.04, rng.New(31))
	start := baseline.GreedyMaximalMatching(g, g.EdgeList())
	res, _ := BoostToOnePlusEps(context.Background(), g, start, 0.2)
	if !graph.IsMatching(g, res.M) {
		t.Fatal("invalid matching")
	}
	if res.M.Size() < start.Size() {
		t.Error("boost shrank the matching")
	}
}

func TestBoostPathCap(t *testing.T) {
	res, _ := BoostToOnePlusEps(context.Background(), graph.Path(2), graph.NewMatching(2), 0.25)
	if res.PathCap != 2*4+1 {
		t.Errorf("path cap = %d, want 9", res.PathCap)
	}
	if res.M.Size() != 1 {
		t.Errorf("single edge not matched by boost")
	}
}

func TestWeightedMatchingQualitySmall(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		src := rng.New(seed + 80)
		g := graph.GNP(12, 0.4, src)
		if g.NumEdges() == 0 {
			continue
		}
		wg := graph.RandomWeights(g, 1, 10, src)
		res := ApproxMaxWeightedMatching(wg, 0.1, seed)
		if !graph.IsMatching(g, res.M) {
			t.Fatal("invalid weighted matching")
		}
		opt := baseline.BruteForceMaxWeightMatching(wg)
		if res.Value < opt/(2+0.5)-1e-9 {
			t.Errorf("seed %d: weight %v below opt/2.5 = %v", seed, res.Value, opt/2.5)
		}
	}
}

func TestWeightedMatchingBeatsOrMatchesGreedyOften(t *testing.T) {
	src := rng.New(90)
	g := graph.GNP(300, 0.03, src)
	wg := graph.RandomWeights(g, 1, 100, src)
	ours := ApproxMaxWeightedMatching(wg, 0.05, 1)
	greedy := GreedyWeightedMatching(wg)
	if ours.Value < 0.8*greedy.Value {
		t.Errorf("weighted matching %v far below greedy %v", ours.Value, greedy.Value)
	}
}

func TestWeightedMatchingValueConsistency(t *testing.T) {
	src := rng.New(91)
	g := graph.GNP(100, 0.05, src)
	wg := graph.RandomWeights(g, 1, 10, src)
	res := ApproxMaxWeightedMatching(wg, 0.1, 2)
	if math.Abs(res.Value-wg.MatchingWeight(res.M)) > 1e-9 {
		t.Error("reported value inconsistent with matching")
	}
}

func TestDefaultDCut(t *testing.T) {
	if DefaultDCut(1) != 16 {
		t.Error("DCut floor wrong")
	}
	if got := DefaultDCut(1 << 16); got != 256 {
		t.Errorf("DCut(2^16) = %v, want 256", got)
	}
}

func BenchmarkSimulate(b *testing.B) {
	g := graph.GNP(1<<13, 0.002, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(g, SimOptions{Seed: uint64(i), Eps: eps}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproxMaxMatching(b *testing.B) {
	g := graph.GNP(1<<11, 0.005, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApproxMaxMatching(g, PipelineOptions{Seed: uint64(i), Eps: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}
