package matching

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

// TestCentralRandDegenerateOracleEqualsCentral couples the two
// algorithms: with a zero-width threshold interval at 1-2eps,
// Central-Rand is definitionally Central.
func TestCentralRandDegenerateOracleEqualsCentral(t *testing.T) {
	g := graph.GNP(200, 0.05, rng.New(1))
	fixed := Central(g, eps)
	oracle := rng.NewThresholdOracle(9, 1-2*eps, 1-2*eps)
	randed := CentralRand(g, eps, oracle)
	if fixed.Iterations != randed.Iterations {
		t.Errorf("iterations differ: %d vs %d", fixed.Iterations, randed.Iterations)
	}
	for e := range fixed.X {
		if fixed.X[e] != randed.X[e] {
			t.Fatalf("edge %d weights differ: %v vs %v", e, fixed.X[e], randed.X[e])
		}
	}
	for v := range fixed.Cover {
		if fixed.Cover[v] != randed.Cover[v] {
			t.Fatalf("cover differs at vertex %d", v)
		}
	}
}

// TestCentralWeightsAreQuantized checks the structural invariant that
// every final edge weight is exactly (1/n)·(1/(1-eps))^k for some
// integer 0 <= k <= iterations — the weight ladder the analysis builds
// on (Observation 4.3).
func TestCentralWeightsAreQuantized(t *testing.T) {
	g := graph.GNP(150, 0.06, rng.New(2))
	res := Central(g, eps)
	n := float64(g.NumVertices())
	for e, x := range res.X {
		k := math.Log(x*n) / -math.Log1p(-eps)
		rounded := math.Round(k)
		if math.Abs(k-rounded) > 1e-6 || rounded < 0 || int(rounded) > res.Iterations {
			t.Fatalf("edge %d weight %v is not on the ladder (k=%v, iters=%d)", e, x, k, res.Iterations)
		}
	}
}

// TestSimulateWeightsAreQuantized checks the same ladder for the MPC
// simulation with w0 = (1-2eps)/n (Line (2) of the pseudocode).
func TestSimulateWeightsAreQuantized(t *testing.T) {
	g := graph.GNP(300, 0.05, rng.New(3))
	res, err := Simulate(g, SimOptions{Seed: 4, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	w0 := (1 - 2*eps) / float64(g.NumVertices())
	for e, x := range res.Frac.X {
		if x == 0 {
			continue // incident to a removed heavy vertex
		}
		k := math.Log(x/w0) / -math.Log1p(-eps)
		rounded := math.Round(k)
		if math.Abs(k-rounded) > 1e-6 || rounded < 0 || int(rounded) > res.Frac.Iterations {
			t.Fatalf("edge %d weight %v off ladder (k=%v)", e, x, k)
		}
	}
}

// TestSimulateEveryEdgeFrozenOrRemoved verifies the termination
// condition: each edge has a frozen endpoint or an endpoint removed for
// exceeding weight 1.
func TestSimulateEveryEdgeFrozenOrRemoved(t *testing.T) {
	check := func(seed uint64) bool {
		g := graph.GNP(120, 0.08, rng.New(seed))
		res, err := Simulate(g, SimOptions{Seed: seed, Eps: eps})
		if err != nil {
			return false
		}
		ok := true
		g.ForEachEdge(func(u, v int32) {
			if !res.Frac.Cover[u] && !res.Frac.Cover[v] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSimulateDualitySandwich checks |M_frac| <= |C| on random inputs
// (weak duality between the fractional matching and any vertex cover).
func TestSimulateDualitySandwich(t *testing.T) {
	check := func(seed uint64) bool {
		g := graph.GNP(100, 0.06, rng.New(seed))
		res, err := Simulate(g, SimOptions{Seed: seed + 7, Eps: eps})
		if err != nil {
			return false
		}
		return res.Frac.Weight() <= float64(res.Frac.CoverSize())+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSimulateLemma46ActiveDegreeBound asserts Lemma 4.6 directly: at
// every phase start, the maximum active degree in G'[V'] is at most the
// algorithm's degree bound d. The invariant is schedule-independent
// because Observation 4.3 (d·w_t = 1-2eps) holds for any per-phase
// iteration count, and Line (j) freezes any vertex whose weight reaches
// 1-2eps.
func TestSimulateLemma46ActiveDegreeBound(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{name: "dense", g: graph.GNP(800, 0.2, rng.New(50))},
		{name: "sqrt-degree", g: graph.GNP(2048, 1/math.Sqrt(2048), rng.New(51))},
		{name: "powerlaw", g: graph.PreferentialAttachment(1500, 8, rng.New(52))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Simulate(tc.g, SimOptions{Seed: 53, Eps: eps})
			if err != nil {
				t.Fatal(err)
			}
			for i, ps := range res.PhaseStats {
				if float64(ps.MaxActiveDegree) > ps.D+1e-9 {
					t.Errorf("phase %d: active degree %d exceeds bound d=%.1f (Lemma 4.6)",
						i, ps.MaxActiveDegree, ps.D)
				}
			}
		})
	}
}

// TestSimulateEpsClamping verifies the documented clamping of extreme
// epsilon values.
func TestSimulateEpsClamping(t *testing.T) {
	g := graph.GNP(100, 0.05, rng.New(5))
	for _, badEps := range []float64{-1, 0.00001, 0.9} {
		res, err := Simulate(g, SimOptions{Seed: 6, Eps: badEps})
		if err != nil {
			t.Fatalf("eps=%v: %v", badEps, err)
		}
		if !graph.IsVertexCover(g, res.Frac.Cover) {
			t.Errorf("eps=%v produced an invalid cover", badEps)
		}
	}
}

// TestSimulateStrictMemoryFailureInjection forces a capacity violation.
func TestSimulateStrictMemoryFailureInjection(t *testing.T) {
	g := graph.GNP(400, 0.2, rng.New(7)) // dense: phase shuffles are big
	_, err := Simulate(g, SimOptions{Seed: 8, Eps: eps, MemoryFactor: 0.02, Strict: true})
	if err == nil {
		t.Error("expected capacity error with S = 0.02 n")
	}
}

// TestRoundFractionalDisjointness: rounding output is always a valid
// matching regardless of the candidate set handed in.
func TestRoundFractionalDisjointness(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		g := graph.GNP(80, 0.1, src)
		res := Central(g, eps)
		// Adversarial candidate set: everyone, not just the heavy cover.
		candidate := make([]bool, g.NumVertices())
		for i := range candidate {
			candidate[i] = true
		}
		m := RoundFractional(g, res, candidate, src)
		return graph.IsMatching(g, m)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPipelineMatchingNeverOverlapsItself: across invocations the
// pipeline must never match a vertex twice.
func TestPipelineMatchingNeverOverlapsItself(t *testing.T) {
	check := func(seed uint64) bool {
		g := graph.GNP(150, 0.05, rng.New(seed))
		res, err := ApproxMaxMatching(g, PipelineOptions{Seed: seed, Eps: 0.2})
		if err != nil {
			return false
		}
		return graph.IsMatching(g, res.M)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestBoostNeverInvalidates: boosting preserves matching validity on
// arbitrary random inputs and never shrinks the matching.
func TestBoostNeverInvalidates(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		g := graph.GNP(100, 0.07, src)
		start := FilteringMaximalMatching(g, 256, src).M
		res, _ := BoostToOnePlusEps(context.Background(), g, start, 0.25)
		return graph.IsMatching(g, res.M) && res.M.Size() >= start.Size()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestWeightedMPCVariant: the metered variant produces a valid matching
// with the same local-optimality certificate and audited rounds.
func TestWeightedMPCVariant(t *testing.T) {
	src := rng.New(300)
	g := graph.GNP(250, 0.04, src)
	wg := graph.RandomWeights(g, 1, 20, src)
	res, err := ApproxMaxWeightedMatchingMPC(wg, WeightedMPCOptions{Eps: 0.1, Seed: 5, MemoryFactor: 16, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMatching(g, res.M) {
		t.Fatal("metered weighted matching invalid")
	}
	if res.Rounds == 0 && g.NumEdges() > 0 {
		t.Error("no rounds audited")
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
	// Local-optimality certificate at the profit margin eps.
	violations := 0
	g.ForEachEdge(func(u, v int32) {
		conflict := 0.0
		if mu := res.M[u]; mu != -1 {
			conflict += wg.EdgeWeight(u, mu)
		}
		if mv := res.M[v]; mv != -1 {
			conflict += wg.EdgeWeight(v, mv)
		}
		if wg.EdgeWeight(u, v) > (1+0.1)*conflict+1e-9 {
			violations++
		}
	})
	if violations > 0 {
		t.Errorf("%d profitable edges remain", violations)
	}
}

// TestWeightedMPCComparableToSequential: both variants satisfy the same
// guarantee; their values should be in the same ballpark.
func TestWeightedMPCComparableToSequential(t *testing.T) {
	src := rng.New(301)
	g := graph.GNP(200, 0.05, src)
	wg := graph.RandomWeights(g, 1, 50, src)
	seq := ApproxMaxWeightedMatching(wg, 0.1, 7)
	met, err := ApproxMaxWeightedMatchingMPC(wg, WeightedMPCOptions{Eps: 0.1, Seed: 7, MemoryFactor: 16})
	if err != nil {
		t.Fatal(err)
	}
	if met.Value < 0.6*seq.Value {
		t.Errorf("metered value %v far below sequential %v", met.Value, seq.Value)
	}
}

// TestWeightedLocalOptimalityCertificate checks the termination
// postcondition of the [LPSR09] improvement loop: when the loop drains
// (no profitable edge remains), every edge satisfies
// w(e) <= (1+eps)·(w(M at u) + w(M at v)), which is exactly the local
// condition that certifies w(M*) <= (2+2eps)·w(M). The loop can also
// stop at its iteration budget, so the test uses a small eps whose
// budget comfortably exceeds the instance's convergence needs.
func TestWeightedLocalOptimalityCertificate(t *testing.T) {
	const wEps = 0.1
	for seed := uint64(0); seed < 5; seed++ {
		src := rng.New(seed + 200)
		g := graph.GNP(150, 0.05, src)
		wg := graph.RandomWeights(g, 1, 50, src)
		res := ApproxMaxWeightedMatching(wg, wEps, seed)
		violations := 0
		g.ForEachEdge(func(u, v int32) {
			conflict := 0.0
			if mu := res.M[u]; mu != -1 {
				conflict += wg.EdgeWeight(u, mu)
			}
			if mv := res.M[v]; mv != -1 {
				conflict += wg.EdgeWeight(v, mv)
			}
			if wg.EdgeWeight(u, v) > (1+wEps)*conflict+1e-9 {
				violations++
			}
		})
		if violations > 0 {
			t.Errorf("seed %d: %d profitable edges remain after convergence", seed, violations)
		}
	}
}
