package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos  token.Position
	rule string
	why  string
}

// ApplySuppressions matches findings against //lint:ignore directives
// in files and returns the updated slice: findings covered by a
// directive are marked Suppressed with its justification, and every
// malformed directive (missing rule or missing justification) is
// appended as an unsuppressable "lint-ignore" finding.
//
// A directive covers findings for its named rule on its own line (a
// trailing comment) and on the line directly below (a comment on its
// own line above the flagged statement). The justification is the
// directive's load-bearing half: it must state the invariant that makes
// the site safe, because it is all a reviewer sees when auditing the
// suppression inventory in docs/analysis.md's catalog order.
func ApplySuppressions(fset *token.FileSet, files []*ast.File, findings []Finding) []Finding {
	const prefix = "//lint:ignore"
	type key struct {
		file string
		line int
		rule string
	}
	directives := map[key]*ignoreDirective{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, prefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other //lint:ignoreXYZ token
				}
				pos := fset.Position(c.Pos())
				parts := strings.Fields(rest)
				if len(parts) < 2 {
					findings = append(findings, Finding{
						Pos:  pos,
						Rule: "lint-ignore",
						Msg:  "malformed directive: want //lint:ignore <rule> <justification naming the invariant that makes the site safe>",
					})
					continue
				}
				d := &ignoreDirective{
					pos:  pos,
					rule: parts[0],
					why:  strings.Join(parts[1:], " "),
				}
				directives[key{pos.Filename, pos.Line, d.rule}] = d
			}
		}
	}
	for i := range findings {
		f := &findings[i]
		if f.Rule == "lint-ignore" {
			continue // the meta-rule cannot be suppressed
		}
		d := directives[key{f.Pos.Filename, f.Pos.Line, f.Rule}]
		if d == nil {
			d = directives[key{f.Pos.Filename, f.Pos.Line - 1, f.Rule}]
		}
		if d != nil {
			f.Suppressed = true
			f.Why = d.why
		}
	}
	return findings
}
