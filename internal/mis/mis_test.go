package mis

import (
	"math"
	"testing"
	"testing/quick"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

func TestSequentialRandGreedyValid(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		g := graph.GNP(90, 0.07, src)
		mis := SequentialRandGreedy(g, src.Perm(90))
		return graph.IsMaximalIndependentSet(g, mis)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPrefixRanksShape(t *testing.T) {
	ranks := prefixRanks(1<<16, 1024, 16, 0.75)
	if len(ranks) == 0 {
		t.Fatal("no ranks for a large instance")
	}
	for i := 1; i < len(ranks); i++ {
		if ranks[i] <= ranks[i-1] {
			t.Fatalf("ranks not increasing: %v", ranks)
		}
	}
	if last := ranks[len(ranks)-1]; last != (1<<16)/16 {
		t.Errorf("last rank = %d, want n/D = %d", last, (1<<16)/16)
	}
	// Growth is doubly exponential, so the count is O(log log Δ).
	if len(ranks) > 12 {
		t.Errorf("too many phases: %d (%v)", len(ranks), ranks)
	}
}

func TestPrefixRanksDegenerate(t *testing.T) {
	if r := prefixRanks(100, 4, 8, 0.75); r != nil {
		t.Errorf("low-degree graph got ranks %v", r)
	}
	if r := prefixRanks(0, 10, 8, 0.75); r != nil {
		t.Errorf("empty graph got ranks %v", r)
	}
	if r := prefixRanks(10, 100, 20, 0.75); r != nil {
		t.Errorf("n/D < 1 got ranks %v", r)
	}
}

func TestRandGreedyMPCValidAcrossFamilies(t *testing.T) {
	families := map[string]*graph.Graph{
		"gnp-sparse":  graph.GNP(800, 0.005, rng.New(1)),
		"gnp-dense":   graph.GNP(300, 0.2, rng.New(2)),
		"ring":        graph.Ring(500),
		"star":        graph.Star(400),
		"complete":    graph.Complete(60),
		"empty":       graph.Empty(100),
		"grid":        graph.Grid(20, 25),
		"powerlaw":    graph.PreferentialAttachment(600, 3, rng.New(3)),
		"single-edge": graph.Path(2),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			res, err := RandGreedyMPC(g, Options{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if !graph.IsMaximalIndependentSet(g, res.InMIS) {
				t.Error("output is not a maximal independent set")
			}
		})
	}
}

func TestRandGreedyMPCDeterministic(t *testing.T) {
	g := graph.GNP(400, 0.05, rng.New(9))
	a, err := RandGreedyMPC(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandGreedyMPC(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			t.Fatalf("same seed diverged at vertex %d", v)
		}
	}
	if a.Rounds != b.Rounds || a.Phases != b.Phases {
		t.Error("same seed produced different metrics")
	}
}

func TestRandGreedyMPCSeedsDiffer(t *testing.T) {
	g := graph.GNP(400, 0.05, rng.New(9))
	a, _ := RandGreedyMPC(g, Options{Seed: 1})
	b, _ := RandGreedyMPC(g, Options{Seed: 2})
	same := true
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical MIS (suspicious)")
	}
}

func TestRandGreedyMPCStrictMemory(t *testing.T) {
	// With the default memory factor, a random graph must fit the audit.
	g := graph.GNP(2000, 0.02, rng.New(11))
	res, err := RandGreedyMPC(g, Options{Seed: 3, Strict: true})
	if err != nil {
		t.Fatalf("strict mode failed: %v", err)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
	if !graph.IsMaximalIndependentSet(g, res.InMIS) {
		t.Error("invalid MIS")
	}
}

func TestRandGreedyMPCTightMemoryFails(t *testing.T) {
	// Failure injection: with machine memory set far below what any phase
	// gather needs, the strict audit must fire.
	g := graph.GNP(500, 0.1, rng.New(99))
	_, err := RandGreedyMPC(g, Options{Seed: 3, Strict: true, MemoryFactor: 0.05, Machines: 4})
	if err == nil {
		t.Error("expected a capacity error with S = 0.05 n")
	}
}

func TestRandGreedyMPCPhaseGrowth(t *testing.T) {
	// Phases should grow like log log Δ: single digits for any feasible n.
	for _, n := range []int{1 << 10, 1 << 13} {
		g := graph.GNP(n, 20.0/float64(n)*math.Sqrt(float64(n)), rng.New(5))
		res, err := RandGreedyMPC(g, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Phases > 10 {
			t.Errorf("n=%d: %d phases, want O(log log Δ)", n, res.Phases)
		}
		if res.Rounds > 80 {
			t.Errorf("n=%d: %d rounds", n, res.Rounds)
		}
	}
}

func TestRandGreedyMPCGatherBounded(t *testing.T) {
	// Lemma 4.7-analogue for MIS (Eq. (1)): each phase gathers O(n) words.
	n := 1 << 12
	g := graph.GNP(n, 0.01, rng.New(6))
	res, err := RandGreedyMPC(g, Options{Seed: 6, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range res.PhaseInfos {
		if ph.GatheredEdgeWords > int64(16*n) {
			t.Errorf("phase at rank %d gathered %d words (> 16n)", ph.Rank, ph.GatheredEdgeWords)
		}
	}
}

func TestResidualAfterRankLemma31(t *testing.T) {
	// Lemma 3.1: after rank r, max residual degree <= 20 n ln n / r w.h.p.
	n := 4000
	src := rng.New(13)
	g := graph.GNP(n, 0.02, src)
	perm := src.Perm(n)
	for _, r := range []int{100, 400, 1600} {
		_, maxDeg := ResidualAfterRank(g, perm, r)
		bound := 20 * float64(n) * math.Log(float64(n)) / float64(r)
		if float64(maxDeg) > bound {
			t.Errorf("r=%d: residual degree %d exceeds Lemma 3.1 bound %.0f", r, maxDeg, bound)
		}
	}
}

func TestResidualAfterRankMonotone(t *testing.T) {
	n := 1000
	src := rng.New(14)
	g := graph.GNP(n, 0.05, src)
	perm := src.Perm(n)
	_, d1 := ResidualAfterRank(g, perm, 50)
	_, d2 := ResidualAfterRank(g, perm, 500)
	if d2 > d1 {
		t.Errorf("residual degree grew with rank: %d -> %d", d1, d2)
	}
	alive, _ := ResidualAfterRank(g, perm, n)
	for v, a := range alive {
		if a {
			t.Fatalf("vertex %d alive after full processing", v)
		}
	}
}

func TestDynamicsDecidesEverything(t *testing.T) {
	g := graph.GNP(300, 0.03, rng.New(15))
	alive := make([]bool, 300)
	for i := range alive {
		alive[i] = true
	}
	inMIS := make([]bool, 300)
	d := newDynamics(g, alive, inMIS, 99, 0)
	for t := 0; t < 200 && d.undecided() > 0; t++ {
		d.step(t)
	}
	if d.undecided() != 0 {
		t.Fatalf("%d vertices undecided after 200 iterations", d.undecided())
	}
	if !graph.IsIndependentSet(g, inMIS) {
		t.Error("dynamics output not independent")
	}
	// Dynamics alone decides (vertex in MIS or dominated); check domination.
	for v := int32(0); v < 300; v++ {
		if inMIS[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if inMIS[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("vertex %d neither in MIS nor dominated", v)
		}
	}
}

func TestDynamicsFinishGreedy(t *testing.T) {
	g := graph.Ring(50)
	alive := make([]bool, 50)
	for i := range alive {
		alive[i] = true
	}
	inMIS := make([]bool, 50)
	d := newDynamics(g, alive, inMIS, 1, 0)
	perm := rng.New(2).Perm(50)
	d.finishGreedy(perm)
	if d.undecided() != 0 {
		t.Error("finishGreedy left undecided vertices")
	}
	if !graph.IsMaximalIndependentSet(g, inMIS) {
		t.Error("finishGreedy output invalid")
	}
}

func TestCliqueMISValid(t *testing.T) {
	families := map[string]*graph.Graph{
		"gnp":      graph.GNP(600, 0.02, rng.New(21)),
		"ring":     graph.Ring(300),
		"complete": graph.Complete(50),
		"empty":    graph.Empty(40),
		"powerlaw": graph.PreferentialAttachment(400, 2, rng.New(22)),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			res, err := RandGreedyCongestedClique(g, Options{Seed: 31})
			if err != nil {
				t.Fatal(err)
			}
			if !graph.IsMaximalIndependentSet(g, res.InMIS) {
				t.Error("clique output is not a maximal independent set")
			}
		})
	}
}

func TestCliqueMISNoViolations(t *testing.T) {
	g := graph.GNP(1500, 0.01, rng.New(23))
	res, err := RandGreedyCongestedClique(g, Options{Seed: 33, Strict: true})
	if err != nil {
		t.Fatalf("strict clique run failed: %v", err)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
	if res.Rounds > 120 {
		t.Errorf("clique rounds = %d, unexpectedly many", res.Rounds)
	}
}

func TestCliqueMISDeterministic(t *testing.T) {
	g := graph.GNP(300, 0.05, rng.New(24))
	a, _ := RandGreedyCongestedClique(g, Options{Seed: 8})
	b, _ := RandGreedyCongestedClique(g, Options{Seed: 8})
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			t.Fatal("same seed diverged")
		}
	}
	if a.Rounds != b.Rounds {
		t.Error("same seed produced different round counts")
	}
}

func TestMPCAndCliqueAgreeOnPrefixStructure(t *testing.T) {
	// Both simulations share the permutation seed, so the prefix phases —
	// which are deterministic given the permutation — must agree exactly.
	// (The residual stages may diverge: the two models switch from
	// dynamics to the final gather at different residue sizes.)
	g := graph.GNP(500, 0.04, rng.New(25))
	a, err := RandGreedyMPC(g, Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandGreedyCongestedClique(g, Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if a.Phases != b.Phases {
		t.Fatalf("phase counts differ: MPC %d vs clique %d", a.Phases, b.Phases)
	}
	for i := range a.PhaseInfos {
		am, bm := a.PhaseInfos[i], b.PhaseInfos[i]
		if am.Rank != bm.Rank || am.NewMISVertices != bm.NewMISVertices ||
			am.GatheredVertices != bm.GatheredVertices {
			t.Errorf("phase %d differs: MPC %+v vs clique %+v", i, am, bm)
		}
	}
	if !graph.IsMaximalIndependentSet(g, a.InMIS) || !graph.IsMaximalIndependentSet(g, b.InMIS) {
		t.Error("one of the outputs is invalid")
	}
}

func TestDefaultPolylogDegree(t *testing.T) {
	if d := DefaultPolylogDegree(2); d != 8 {
		t.Errorf("D(2) = %d, want floor 8", d)
	}
	if d := DefaultPolylogDegree(1 << 16); d != 16 {
		t.Errorf("D(2^16) = %d, want 16", d)
	}
	if d := DefaultPolylogDegree(0); d != 8 {
		t.Errorf("D(0) = %d, want 8", d)
	}
}

func BenchmarkCliqueMIS(b *testing.B) {
	g := graph.GNP(1<<12, 0.008, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RandGreedyCongestedClique(g, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
