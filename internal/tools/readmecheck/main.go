// Command readmecheck compiles every ```go fence of a markdown file, so
// documentation code blocks cannot drift from the API. It is the docs
// half of `make ci` (the docs-check target).
//
// Contract: each ```go block must be a complete, self-contained program
// (package clause, imports, func main) — the same text a reader would
// paste into a file and `go run`. Blocks fenced with any other info
// string (```bash, ```text, ...) are ignored. A block whose first line
// is "// readmecheck:ignore" is skipped (for deliberately elided
// sketches).
//
// Implementation: blocks are written to a throwaway module that
// `replace`s the mpcgraph module onto this repository, then built with
// `go build ./...` (GOPROXY=off — the check must work offline).
//
// Usage:
//
//	go run ./internal/tools/readmecheck README.md [more.md ...]
package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: readmecheck <file.md> [file.md ...]")
		os.Exit(2)
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "readmecheck:", err)
		os.Exit(1)
	}
}

func run(paths []string) error {
	repoRoot, err := moduleRoot()
	if err != nil {
		return err
	}
	for _, path := range paths {
		blocks, err := goBlocks(path)
		if err != nil {
			return err
		}
		if len(blocks) == 0 {
			fmt.Printf("%s: no go blocks\n", path)
			continue
		}
		if err := buildBlocks(repoRoot, path, blocks); err != nil {
			return err
		}
		fmt.Printf("%s: %d go block(s) build\n", path, len(blocks))
	}
	return nil
}

// moduleRoot resolves the directory of the enclosing module so the
// throwaway module can replace onto it by absolute path.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}

// block is one fenced code block with its source location.
type block struct {
	startLine int
	text      string
}

// goBlocks extracts the ```go fences from a markdown file.
func goBlocks(path string) ([]block, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var (
		blocks  []block
		current []string
		start   int
		inGo    bool
		inOther bool
		lineNo  int
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case inGo:
			if trimmed == "```" {
				text := strings.Join(current, "\n") + "\n"
				if !strings.HasPrefix(text, "// readmecheck:ignore") {
					blocks = append(blocks, block{startLine: start, text: text})
				}
				inGo, current = false, nil
				continue
			}
			current = append(current, line)
		case inOther:
			if trimmed == "```" {
				inOther = false
			}
		case strings.HasPrefix(trimmed, "```"):
			info := strings.TrimPrefix(trimmed, "```")
			if info == "go" {
				inGo, start = true, lineNo+1
			} else {
				inOther = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if inGo || inOther {
		return nil, fmt.Errorf("%s: unterminated code fence", path)
	}
	return blocks, nil
}

// buildBlocks writes each block as its own main package in a throwaway
// module and builds them all in one `go build ./...`.
func buildBlocks(repoRoot, source string, blocks []block) error {
	dir, err := os.MkdirTemp("", "readmecheck")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	gomod := fmt.Sprintf("module readmecheck\n\ngo 1.24\n\nrequire mpcgraph v0.0.0\n\nreplace mpcgraph => %s\n", repoRoot)
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		return err
	}
	for i, b := range blocks {
		text := b.text
		if !strings.Contains(text, "package ") {
			return fmt.Errorf("%s: go block at line %d has no package clause; documentation blocks must be complete programs", source, b.startLine)
		}
		sub := filepath.Join(dir, fmt.Sprintf("block%02d", i))
		if err := os.Mkdir(sub, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(sub, "main.go"), []byte(text), 0o644); err != nil {
			return err
		}
	}
	// Build into a scratch bin directory: with exactly one main package
	// in the module, a bare `go build ./...` would write the binary into
	// the working directory, where it collides with the block directory
	// of the same name.
	binDir := filepath.Join(dir, "bin")
	if err := os.Mkdir(binDir, 0o755); err != nil {
		return err
	}
	cmd := exec.Command("go", "build", "-o", binDir, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOFLAGS=-mod=mod", "GOWORK=off")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("%s: go block failed to build:\n%s", source, annotate(string(out), blocks))
	}
	return nil
}

// annotate maps temp-dir paths in compiler output back to README block
// line numbers so failures are actionable.
func annotate(out string, blocks []block) string {
	for i, b := range blocks {
		needle := fmt.Sprintf("block%02d%cmain.go", i, os.PathSeparator)
		out = strings.ReplaceAll(out, needle, fmt.Sprintf("<block starting at markdown line %d>", b.startLine))
	}
	return out
}
