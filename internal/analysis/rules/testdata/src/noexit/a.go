// Package noexit exercises the no-exit analyzer: os.Exit referenced
// outside package main bypasses deferred cleanup and the CLI's exit
// code contract, whether called directly or captured as a value.
package noexit

import "os"

func fail() {
	os.Exit(2) // want "no-exit: reference to os.Exit"
}

func failer() func(int) {
	die := os.Exit // want "no-exit: reference to os.Exit"
	return die
}
