package baseline

import (
	"mpcgraph/internal/graph"
)

// MaxMatchingGeneral computes a maximum matching of an arbitrary graph
// with Edmonds' blossom algorithm in O(V^3) time. It supplies the exact
// optimum for approximation-ratio measurements on non-bipartite inputs
// (experiments E6, E9, E10) at the scales where O(V^3) is affordable.
func MaxMatchingGeneral(g *graph.Graph) graph.Matching {
	n := g.NumVertices()
	match := graph.NewMatching(n)
	// Greedy warm start: reduces the number of augmenting searches.
	g.ForEachEdge(func(u, v int32) {
		if match[u] == -1 && match[v] == -1 {
			match.Match(u, v)
		}
	})

	p := make([]int32, n)    // parent in the alternating forest
	base := make([]int32, n) // base vertex of the blossom containing v
	used := make([]bool, n)  // v is an outer (even) vertex
	blossom := make([]bool, n)
	queue := make([]int32, 0, n)

	// lca finds the lowest common ancestor of the blossom bases of a and
	// b in the alternating tree, walking matched/parent pointers.
	lca := func(a, b int32) int32 {
		onPath := make(map[int32]bool)
		for {
			a = base[a]
			onPath[a] = true
			if match[a] == -1 {
				break
			}
			a = p[match[a]]
		}
		for {
			b = base[b]
			if onPath[b] {
				return b
			}
			b = p[match[b]]
		}
	}

	// markPath marks blossom membership along the path from v down to
	// base b, re-rooting parent pointers through child.
	markPath := func(v, b, child int32) {
		for base[v] != b {
			blossom[base[v]] = true
			blossom[base[match[v]]] = true
			p[v] = child
			child = match[v]
			v = p[match[v]]
		}
	}

	// findPath grows an alternating tree from root and returns the free
	// vertex ending an augmenting path, or -1.
	findPath := func(root int32) int32 {
		for i := 0; i < n; i++ {
			used[i] = false
			p[i] = -1
			base[i] = int32(i)
		}
		used[root] = true
		queue = queue[:0]
		queue = append(queue, root)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, to := range g.Neighbors(v) {
				if base[v] == base[to] || match[v] == to {
					continue
				}
				if to == root || (match[to] != -1 && p[match[to]] != -1) {
					// An odd cycle (blossom) closes at to: contract it.
					curBase := lca(v, to)
					for i := 0; i < n; i++ {
						blossom[i] = false
					}
					markPath(v, curBase, to)
					markPath(to, curBase, v)
					for i := int32(0); i < int32(n); i++ {
						if blossom[base[i]] {
							base[i] = curBase
							if !used[i] {
								used[i] = true
								queue = append(queue, i)
							}
						}
					}
				} else if p[to] == -1 {
					p[to] = v
					if match[to] == -1 {
						return to
					}
					used[match[to]] = true
					queue = append(queue, match[to])
				}
			}
		}
		return -1
	}

	for v := int32(0); v < int32(n); v++ {
		if match[v] != -1 {
			continue
		}
		u := findPath(v)
		for u != -1 {
			pv := p[u]
			ppv := match[pv]
			match[u] = pv
			match[pv] = u
			u = ppv
		}
	}
	return match
}
