package service

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"mpcgraph/internal/obs"
)

// telemetry bundles the daemon's latency histograms and its structured
// logger. One instance lives on the Server, created by build, and is
// threaded into every job and batch record — so instrumentation points
// never reach for globals and tests can assert on a private registry.
//
// Recording discipline: histograms observe at operation boundaries —
// an HTTP request, a queue wait, one Solve call, one disk op — never
// inside the metered round loop, so the audited cost model and the
// routing benchmarks see zero instrumentation overhead.
type telemetry struct {
	log *obs.Logger
	reg *obs.Registry

	httpReq     *obs.HistogramVec // route, status
	queueWait   *obs.HistogramVec
	solve       *obs.HistogramVec // problem, model
	jobE2E      *obs.HistogramVec // state
	diskOp      *obs.HistogramVec // op
	batchSettle *obs.HistogramVec
	cacheProbe  *obs.HistogramVec // tier
}

// newTelemetry builds the daemon's metric families. log may be nil
// (tests, library use): the obs.Logger no-ops on a nil receiver.
func newTelemetry(log *obs.Logger) *telemetry {
	reg := obs.NewRegistry()
	return &telemetry{
		log: log,
		reg: reg,
		httpReq: reg.Histogram("mpcgraphd_http_request_seconds",
			"HTTP request latency by route pattern and response status.", "route", "status"),
		queueWait: reg.Histogram("mpcgraphd_queue_wait_seconds",
			"Queue wait: admission to the job queue until a worker dequeues."),
		solve: reg.Histogram("mpcgraphd_solve_seconds",
			"Solve duration by problem and model (actual computations; cache hits and coalesced riders excluded).", "problem", "model"),
		jobE2E: reg.Histogram("mpcgraphd_job_e2e_seconds",
			"End-to-end job latency, submission to terminal state, by terminal state.", "state"),
		diskOp: reg.Histogram("mpcgraphd_disk_op_seconds",
			"Persistent cache-tier operation latency by operation.", "op"),
		batchSettle: reg.Histogram("mpcgraphd_batch_settle_seconds",
			"Batch settle time: creation until the last member reached a terminal state."),
		cacheProbe: reg.Histogram("mpcgraphd_cache_probe_seconds",
			"Result-cache probe latency by tier (every submission probes memory; misses probe disk).", "tier"),
	}
}

// statusWriter captures the response status for the request histogram.
// It forwards Flush so the NDJSON/SSE streaming endpoints keep working
// behind the middleware — losing http.Flusher here would silently turn
// live trace streams into fully buffered responses.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = 200
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the API mux with the request middleware: a request
// ID threaded through the context (so handler logs correlate), the
// per-route/status latency histogram, and a debug-level access line.
//
// The route label is the mux pattern (e.g. "GET /v1/jobs/{id}"), not
// the raw path — raw paths would explode label cardinality with every
// distinct job id. mux.Handler is the documented way to recover the
// pattern for a request the outer middleware sees (r.Pattern is only
// populated on the clone the mux hands to the matched handler).
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		route := "unmatched"
		if _, pattern := mux.Handler(r); pattern != "" {
			route = pattern
		}
		s.mu.Lock()
		s.nextReqID++
		reqID := fmt.Sprintf("r%08d", s.nextReqID)
		s.mu.Unlock()
		ctx := obs.WithFields(r.Context(), obs.F("req", reqID))
		sw := &statusWriter{ResponseWriter: w}
		mux.ServeHTTP(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = 200
		}
		elapsed := time.Since(start)
		s.tel.httpReq.With(route, strconv.Itoa(sw.status)).Observe(elapsed)
		s.tel.log.Debug(ctx, "http.request",
			obs.F("route", route),
			obs.F("status", sw.status),
			obs.F("ms", durMs(elapsed)))
	})
}

// durMs renders a duration in milliseconds at microsecond precision,
// the same convention as report.wallMs.
func durMs(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// jobTimings is the per-phase monotonic timing record of one job:
// wall-clock stamps taken at each lifecycle transition, exposed as
// offsets from received in the job view's timings block. Guarded by
// Job.mu like the rest of the job's mutable state. Stamps are
// operational metadata only — like created/started/finished they never
// enter a Report's audited costs or the cache key.
type jobTimings struct {
	received  time.Time // record created (== Job.created)
	queued    time.Time // admitted to the job queue (leaders only)
	attached  time.Time // coalesced onto an existing flight (followers only)
	dequeued  time.Time // picked up by a worker (leaders only)
	solving   time.Time // the flight's computation started
	persisted time.Time // result written through the cache tiers
	detached  time.Time // rider canceled off its flight
	settled   time.Time // terminal transition (== Job.finished)

	memProbe   time.Duration // L1 probe duration (zero: not probed)
	diskProbe  time.Duration // L2 probe duration (zero: not probed)
	memProbed  bool
	diskProbed bool
}

// TimingsView is the wire rendering of a job's lifecycle timings: the
// phases the job actually went through, in order, as millisecond
// offsets from received, plus the per-tier cache probe durations. The
// phase list is always ordered by atMs (equal stamps keep lifecycle
// order), which the service-smoke gate asserts.
type TimingsView struct {
	Phases      []PhaseView `json:"phases"`
	CacheProbes []ProbeView `json:"cacheProbes,omitempty"`
}

// PhaseView is one lifecycle phase stamp.
type PhaseView struct {
	Phase string  `json:"phase"`
	AtMs  float64 `json:"atMs"`
}

// ProbeView is one cache-tier probe duration.
type ProbeView struct {
	Tier  string  `json:"tier"`
	DurMs float64 `json:"durMs"`
}

// view renders the timings block. Callers hold j.mu.
func (t *jobTimings) view() *TimingsView {
	if t.received.IsZero() {
		return nil
	}
	out := &TimingsView{}
	add := func(phase string, at time.Time) {
		if at.IsZero() {
			return
		}
		out.Phases = append(out.Phases, PhaseView{Phase: phase, AtMs: durMs(at.Sub(t.received))})
	}
	// Canonical lifecycle order; every path stamps a monotone subset of
	// it, so atMs is non-decreasing down the list.
	add("received", t.received)
	add("queued", t.queued)
	add("attached", t.attached)
	add("dequeued", t.dequeued)
	add("solving", t.solving)
	add("persisted", t.persisted)
	add("detached", t.detached)
	add("settled", t.settled)
	if t.memProbed {
		out.CacheProbes = append(out.CacheProbes, ProbeView{Tier: "memory", DurMs: durMs(t.memProbe)})
	}
	if t.diskProbed {
		out.CacheProbes = append(out.CacheProbes, ProbeView{Tier: "disk", DurMs: durMs(t.diskProbe)})
	}
	return out
}
