// Package graphio reads and writes graph instances in the portable
// on-disk formats understood by the mpcgraph CLI: the repository's
// native edge list, a weighted edge list, DIMACS edge format, the
// METIS/Chaco adjacency format, and MatrixMarket coordinate files —
// each optionally gzip-compressed, detected from the stream's magic
// bytes. Read/Write take an explicit Format; ReadFile/WriteFile resolve
// the format from the file extension (with a content sniff as the read
// fallback) and handle compression. Readers stream line-by-line into
// the parallel graph.Builder, so a parsed instance is bit-identical to
// one constructed in-process from the same edge set. The full grammar,
// limits and error behavior of every format are documented in
// docs/formats.md.
//
// The native edge-list dialect is: an optional header line "n <count>",
// then one "u v" pair per line (0-based vertex ids); '#' starts a
// comment. Without a header, n is one plus the largest vertex id seen.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mpcgraph/internal/graph"
)

// ReadEdgeList parses the edge-list format from r. It is the
// chunk-parallel fast path (see fastread.go); readEdgeListScanner is
// the line-by-line reference implementation it is pinned against.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	return readEdgeListFast(r, 0)
}

// readEdgeListScanner is the bufio.Scanner-based reference reader. The
// fast path must match it bit for bit — same graphs, same error
// strings — on every input; the parity and fuzz suites enforce that.
func readEdgeListScanner(r io.Reader) (*graph.Graph, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var (
		edges   [][2]int32
		n       = -1
		maxSeen = int32(-1)
		lineNo  int
	)
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: header must be 'n <count>'", lineNo)
			}
			v, err := parseVertexCount(fields[1], lineNo)
			if err != nil {
				return nil, err
			}
			n = v
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphio: line %d: want 'u v', got %q", lineNo, line)
		}
		u, err := parseVertex(fields[0], 0, -1, lineNo)
		if err != nil {
			return nil, err
		}
		v, err := parseVertex(fields[1], 0, -1, lineNo)
		if err != nil {
			return nil, err
		}
		if u == v {
			return nil, fmt.Errorf("graphio: line %d: self-loop at %d", lineNo, u)
		}
		if u > maxSeen {
			maxSeen = u
		}
		if v > maxSeen {
			maxSeen = v
		}
		edges = append(edges, [2]int32{u, v})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if n < 0 {
		n = int(maxSeen) + 1
	}
	if int(maxSeen) >= n {
		return nil, fmt.Errorf("graphio: vertex %d out of range for declared n=%d", maxSeen, n)
	}
	return graph.FromEdges(n, edges)
}

// writeFlush is the fast writers' flush threshold: integer rendering
// appends into one reused buffer that is written out in large chunks,
// replacing a fmt.Fprintf (reflection + interface allocs) per edge.
const writeFlush = 1 << 16

// WriteEdgeList writes g in the edge-list format with a header line.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	buf := make([]byte, 0, writeFlush+64)
	buf = append(buf, 'n', ' ')
	buf = strconv.AppendInt(buf, int64(g.NumVertices()), 10)
	buf = append(buf, '\n')
	var writeErr error
	g.ForEachEdge(func(u, v int32) {
		if writeErr != nil {
			return
		}
		buf = strconv.AppendInt(buf, int64(u), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, '\n')
		if len(buf) >= writeFlush {
			_, writeErr = w.Write(buf)
			buf = buf[:0]
		}
	})
	if writeErr != nil {
		return writeErr
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
