package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mpcgraph"
	"mpcgraph/internal/graphio"
)

// runSolve dispatches one problem through the unified Solve API and
// reports the full audited Report.
func runSolve(args []string, env Env) error {
	fs := flag.NewFlagSet("mpcgraph solve", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	var (
		problemName  = fs.String("problem", "", "problem to solve (see mpcgraph list)")
		modelName    = fs.String("model", mpcgraph.ModelMPC.String(), "computation model: mpc or congested-clique")
		inPath       = fs.String("in", "", "instance file in any supported format ('-' reads stdin)")
		formatName   = fs.String("format", "", "input format override (el, wel, dimacs, metis, mm); required with -in -")
		scenarioName = fs.String("scenario", "", "generate the instance from this catalog scenario instead of a file")
		n            = fs.Int("n", 0, "scenario vertex count (0 = the scenario's default)")
		seed         = fs.Uint64("seed", 1, "seed for scenario generation and the algorithm's random choices")
		eps          = fs.Float64("eps", 0.1, "approximation slack where applicable")
		memFactor    = fs.Float64("memory-factor", 0, "per-machine memory = factor*n words (0 = default 16)")
		strict       = fs.Bool("strict", false, "fail on any simulated memory/bandwidth violation")
		workers      = fs.Int("workers", 0, "parallel workers (0 = all cores, 1 = sequential); results identical for every value")
		timeout      = fs.Duration("timeout", 0, "wall-clock deadline for the solve (0 = none); exceeding it aborts between simulated rounds with exit code 5")
		jsonOut      = fs.Bool("json", false, "emit the report as one JSON object on stdout")
		solutionPath = fs.String("solution", "", "write the solution (vertex ids or matched pairs) to this file ('-' for stdout)")
		trace        = fs.Bool("trace", false, "stream per-round progress to stderr")
		params       = paramFlag{}
	)
	fs.Var(params, "param", "scenario parameter key=value (repeatable, comma-separable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *problemName == "" {
		return fmt.Errorf("solve requires -problem (see mpcgraph list)")
	}
	if *jsonOut && *solutionPath == "-" {
		return fmt.Errorf("-solution - would interleave with the -json report on stdout; write the solution to a file")
	}
	problem, err := parseProblem(*problemName)
	if err != nil {
		return err
	}
	model, err := parseModel(*modelName)
	if err != nil {
		return err
	}
	d, source, err := loadInstance(env, *inPath, *formatName, *scenarioName, *n, *seed, params)
	if err != nil {
		return err
	}

	opts := mpcgraph.Options{
		Seed:         *seed,
		Eps:          *eps,
		MemoryFactor: *memFactor,
		Strict:       *strict,
		Workers:      *workers,
		Model:        model,
	}
	if *trace {
		opts.Trace = func(ev mpcgraph.TraceEvent) {
			fmt.Fprintf(env.Stderr, "round %d: words=%d active=%d\n", ev.Round, ev.LiveWords, ev.ActiveVertices)
		}
	}
	var instance mpcgraph.Instance = d.G
	if d.WG != nil {
		instance = d.WG
	}
	if !*jsonOut {
		fmt.Fprintf(env.Stdout, "instance: n=%d m=%d maxdeg=%d (%s)\n",
			d.G.NumVertices(), d.G.NumEdges(), d.G.MaxDegree(), source)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := mpcgraph.Solve(ctx, instance, problem, opts)
	if err != nil {
		return err
	}
	valid, summary := validateReport(d, rep)
	if !valid {
		return fmt.Errorf("internal error: %s output failed validation", problem)
	}
	if *jsonOut {
		if err := writeJSONReport(env.Stdout, d, rep); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(env.Stdout, "%s/%s: %s (validated)\n", rep.Problem, rep.Model, summary)
		fmt.Fprintf(env.Stdout, "cost: rounds=%d phases=%d maxMachineLoad=%d words totalComm=%d words violations=%d\n",
			rep.Rounds, rep.Phases, rep.MaxMachineWords, rep.TotalWords, rep.Violations)
		for _, st := range rep.Stages {
			fmt.Fprintf(env.Stdout, "  stage %-16s rounds=%-4d words=%d\n", st.Name, st.Rounds, st.Words)
		}
	}
	if *solutionPath != "" {
		return writeSolution(*solutionPath, env, rep)
	}
	return nil
}

// validateReport checks the payload against the instance and renders the
// one-line text summary.
func validateReport(d *graphio.Data, rep *mpcgraph.Report) (bool, string) {
	g := d.G
	switch rep.Problem {
	case mpcgraph.ProblemMIS:
		return mpcgraph.IsMaximalIndependentSet(g, rep.InMIS),
			fmt.Sprintf("MIS size=%d", countTrue(rep.InMIS))
	case mpcgraph.ProblemMaximalMatching:
		return mpcgraph.IsMaximalMatching(g, rep.M),
			fmt.Sprintf("maximal matching size=%d", rep.M.Size())
	case mpcgraph.ProblemApproxMatching, mpcgraph.ProblemOnePlusEpsMatching:
		return mpcgraph.IsMatching(g, rep.M),
			fmt.Sprintf("matching size=%d", rep.M.Size())
	case mpcgraph.ProblemVertexCover:
		return mpcgraph.IsVertexCover(g, rep.InCover),
			fmt.Sprintf("vertex cover size=%d dualLowerBound=%.1f", countTrue(rep.InCover), rep.FractionalWeight)
	case mpcgraph.ProblemWeightedMatching:
		return mpcgraph.IsMatching(g, rep.M),
			fmt.Sprintf("weighted matching size=%d value=%.4g", rep.M.Size(), rep.Value)
	default:
		return false, fmt.Sprintf("unknown problem %v", rep.Problem)
	}
}

func countTrue(set []bool) int {
	n := 0
	for _, in := range set {
		if in {
			n++
		}
	}
	return n
}

// jsonReport is the machine-readable Report shape emitted by -json. The
// cost fields are exactly the audited Report totals; wallMs is the only
// field that varies between identical runs.
type jsonReport struct {
	Problem          string      `json:"problem"`
	Model            string      `json:"model"`
	N                int         `json:"n"`
	M                int         `json:"m"`
	Valid            bool        `json:"valid"`
	MISSize          *int        `json:"misSize,omitempty"`
	MatchingSize     *int        `json:"matchingSize,omitempty"`
	CoverSize        *int        `json:"coverSize,omitempty"`
	FractionalWeight *float64    `json:"dualLowerBound,omitempty"`
	Value            *float64    `json:"value,omitempty"`
	Rounds           int         `json:"rounds"`
	Phases           int         `json:"phases"`
	MaxMachineWords  int64       `json:"maxMachineWords"`
	TotalWords       int64       `json:"totalWords"`
	Violations       int         `json:"violations"`
	WallMs           float64     `json:"wallMs"`
	Stages           []jsonStage `json:"stages"`
}

type jsonStage struct {
	Name   string `json:"name"`
	Rounds int    `json:"rounds"`
	Words  int64  `json:"words"`
}

func writeJSONReport(w io.Writer, d *graphio.Data, rep *mpcgraph.Report) error {
	out := jsonReport{
		Problem:         rep.Problem.String(),
		Model:           rep.Model.String(),
		N:               d.G.NumVertices(),
		M:               d.G.NumEdges(),
		Valid:           true,
		Rounds:          rep.Rounds,
		Phases:          rep.Phases,
		MaxMachineWords: rep.MaxMachineWords,
		TotalWords:      rep.TotalWords,
		Violations:      rep.Violations,
		WallMs:          float64(rep.Wall.Microseconds()) / 1000,
		Stages:          make([]jsonStage, 0, len(rep.Stages)),
	}
	for _, st := range rep.Stages {
		out.Stages = append(out.Stages, jsonStage{Name: st.Name, Rounds: st.Rounds, Words: st.Words})
	}
	switch rep.Problem {
	case mpcgraph.ProblemMIS:
		size := countTrue(rep.InMIS)
		out.MISSize = &size
	case mpcgraph.ProblemVertexCover:
		size := countTrue(rep.InCover)
		out.CoverSize = &size
		out.FractionalWeight = &rep.FractionalWeight
	case mpcgraph.ProblemWeightedMatching:
		size := rep.M.Size()
		out.MatchingSize = &size
		out.Value = &rep.Value
	default:
		size := rep.M.Size()
		out.MatchingSize = &size
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// writeSolution renders the solution payload: one vertex id per line for
// vertex sets (MIS, vertex cover), one "u v" pair per line for
// matchings.
func writeSolution(path string, env Env, rep *mpcgraph.Report) error {
	w := env.Stdout
	var f *os.File
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return err
		}
		w = f
	}
	if err := renderSolution(w, rep); err != nil {
		if f != nil {
			_ = f.Close() // the render error is the one worth reporting
		}
		return err
	}
	if f != nil {
		// A failed flush on Close would otherwise report a truncated
		// solution file as success.
		return f.Close()
	}
	return nil
}

func renderSolution(w io.Writer, rep *mpcgraph.Report) error {
	switch rep.Problem {
	case mpcgraph.ProblemMIS, mpcgraph.ProblemVertexCover:
		set := rep.InMIS
		if rep.Problem == mpcgraph.ProblemVertexCover {
			set = rep.InCover
		}
		for v, in := range set {
			if in {
				if _, err := fmt.Fprintln(w, v); err != nil {
					return err
				}
			}
		}
	default:
		for _, e := range rep.M.Edges() {
			if _, err := fmt.Fprintf(w, "%d %d\n", e[0], e[1]); err != nil {
				return err
			}
		}
	}
	return nil
}
