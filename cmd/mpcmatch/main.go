// Command mpcmatch computes approximate maximum matchings and minimum
// vertex covers with the paper's O(log log n)-round algorithms.
//
// Usage:
//
//	mpcmatch -input graph.txt                 # (2+eps) matching + cover
//	mpcmatch -n 8192 -p 0.002 -eps 0.05
//	mpcmatch -n 4096 -p 0.004 -one-plus-eps   # Corollary 1.3 boosting
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"mpcgraph"
	"mpcgraph/internal/graphio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpcmatch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpcmatch", flag.ContinueOnError)
	var (
		input   = fs.String("input", "", "edge-list file; empty generates G(n,p)")
		n       = fs.Int("n", 1<<12, "vertices for the generated instance")
		p       = fs.Float64("p", 0.004, "edge probability for the generated instance")
		eps     = fs.Float64("eps", 0.1, "approximation slack")
		seed    = fs.Uint64("seed", 1, "random seed")
		onePlus = fs.Bool("one-plus-eps", false, "boost to a (1+eps) matching (Corollary 1.3)")
		strict  = fs.Bool("strict", false, "fail on any memory violation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := loadOrGenerate(*input, *n, *p, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// Both problems run through the unified Solve pipeline.
	opts := mpcgraph.Options{Seed: *seed, Eps: *eps, Strict: *strict}
	ctx := context.Background()

	problem := mpcgraph.ProblemApproxMatching
	kind := "(2+eps)"
	if *onePlus {
		problem = mpcgraph.ProblemOnePlusEpsMatching
		kind = "(1+eps)"
	}
	mrep, err := mpcgraph.Solve(ctx, g, problem, opts)
	if err != nil {
		return err
	}
	if !mpcgraph.IsMatching(g, mrep.M) {
		return fmt.Errorf("internal error: matching failed validation")
	}
	fmt.Printf("matching %s: size=%d rounds=%d maxMachineLoad=%d words totalComm=%d words\n",
		kind, mrep.M.Size(), mrep.Rounds, mrep.MaxMachineWords, mrep.TotalWords)

	crep, err := mpcgraph.Solve(ctx, g, mpcgraph.ProblemVertexCover, opts)
	if err != nil {
		return err
	}
	if !mpcgraph.IsVertexCover(g, crep.InCover) {
		return fmt.Errorf("internal error: cover failed validation")
	}
	size := 0
	for _, in := range crep.InCover {
		if in {
			size++
		}
	}
	fmt.Printf("vertex cover (2+eps): size=%d dualLowerBound=%.1f rounds=%d maxMachineLoad=%d words\n",
		size, crep.FractionalWeight, crep.Rounds, crep.MaxMachineWords)
	return nil
}

func loadOrGenerate(path string, n int, p float64, seed uint64) (*mpcgraph.Graph, error) {
	if path == "" {
		return mpcgraph.RandomGraph(n, p, seed), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graphio.ReadEdgeList(f)
}
