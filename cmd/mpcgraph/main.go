// Command mpcgraph is the unified CLI over the paper reproduction: it
// materializes catalog scenarios to portable graph files, solves any
// registered (problem, model) pair on instances from disk or from the
// catalog, regenerates the experiment tables, and lists every registry
// it dispatches on.
//
// Usage:
//
//	mpcgraph gen -scenario rmat -n 65536 -seed 1 -out web.mtx.gz
//	mpcgraph solve -problem mis -model mpc -in web.mtx.gz -json
//	mpcgraph solve -problem weighted-matching -scenario weighted-gnp -seed 7
//	mpcgraph bench -experiment E5 -quick
//	mpcgraph list
//
// Run "mpcgraph <command> -h" for per-command flags. The deprecated
// mpcmis and mpcmatch commands are thin shims over this tool.
package main

import (
	"fmt"
	"os"

	"mpcgraph/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpcgraph:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	return cli.Run(args, cli.Env{Stdin: os.Stdin, Stdout: os.Stdout, Stderr: os.Stderr})
}
