package mpcgraph

import (
	"testing"
	"testing/quick"
)

func TestFacadeMIS(t *testing.T) {
	g := RandomGraph(500, 0.02, 1)
	res, err := MIS(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !IsMaximalIndependentSet(g, res.InMIS) {
		t.Error("facade MIS invalid")
	}
	if res.Stats.Rounds == 0 {
		t.Error("no rounds recorded")
	}
}

func TestFacadeMISCongestedClique(t *testing.T) {
	g := RandomGraph(400, 0.03, 3)
	res, err := MISCongestedClique(g, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !IsMaximalIndependentSet(g, res.InMIS) {
		t.Error("facade clique MIS invalid")
	}
}

func TestFacadeMatching(t *testing.T) {
	g := RandomGraph(400, 0.02, 5)
	res, err := ApproxMaxMatching(g, Options{Seed: 6, Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !IsMatching(g, res.M) {
		t.Error("facade matching invalid")
	}
}

func TestFacadeOnePlusEps(t *testing.T) {
	g := RandomGraph(300, 0.03, 7)
	res, err := OnePlusEpsMatching(g, Options{Seed: 8, Eps: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !IsMatching(g, res.M) {
		t.Error("facade 1+eps matching invalid")
	}
}

func TestFacadeVertexCover(t *testing.T) {
	g := RandomGraph(400, 0.02, 9)
	res, err := ApproxMinVertexCover(g, Options{Seed: 10, Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !IsVertexCover(g, res.InCover) {
		t.Error("facade cover invalid")
	}
	covered := 0
	for _, c := range res.InCover {
		if c {
			covered++
		}
	}
	if res.FractionalWeight > float64(covered)+1e-9 {
		t.Error("dual weight exceeds cover size")
	}
}

func TestFacadeWeightedMatching(t *testing.T) {
	wg := RandomWeightedGraph(200, 0.05, 1, 10, 11)
	res := ApproxMaxWeightedMatching(wg, Options{Seed: 12, Eps: 0.1})
	if !IsMatching(wg.Graph, res.M) {
		t.Error("facade weighted matching invalid")
	}
	if res.Value <= 0 && wg.NumEdges() > 0 {
		t.Error("weighted matching has zero value on a non-empty graph")
	}
}

func TestFacadeBuilderAndEdgeList(t *testing.T) {
	b := NewGraphBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if g.NumEdges() != 2 {
		t.Fatal("builder lost edges")
	}
	g2, err := FromEdgeList(3, [][2]int32{{0, 1}, {1, 2}})
	if err != nil || g2.NumEdges() != 2 {
		t.Fatalf("FromEdgeList failed: %v", err)
	}
	if _, err := FromEdgeList(2, [][2]int32{{0, 5}}); err == nil {
		t.Error("invalid edge accepted")
	}
}

func TestFacadeDeterminism(t *testing.T) {
	g := RandomGraph(300, 0.03, 13)
	a, _ := ApproxMaxMatching(g, Options{Seed: 14})
	b, _ := ApproxMaxMatching(g, Options{Seed: 14})
	if a.M.Size() != b.M.Size() {
		t.Error("same seed produced different matchings")
	}
	for v := range a.M {
		if a.M[v] != b.M[v] {
			t.Fatal("matchings differ elementwise")
		}
	}
}

func TestFacadeStrictErrorsPropagate(t *testing.T) {
	// A dense graph with starved machines must surface the capacity
	// error through every facade entry point that meters memory.
	g := RandomGraph(500, 0.2, 15)
	opts := Options{Seed: 16, Strict: true, MemoryFactor: 0.02}
	if _, err := MIS(g, opts); err == nil {
		t.Error("MIS did not propagate the capacity error")
	}
	if _, err := ApproxMinVertexCover(g, opts); err == nil {
		t.Error("ApproxMinVertexCover did not propagate the capacity error")
	}
	if _, err := ApproxMaxMatching(g, opts); err == nil {
		t.Error("ApproxMaxMatching did not propagate the capacity error")
	}
	if _, err := OnePlusEpsMatching(g, opts); err == nil {
		t.Error("OnePlusEpsMatching did not propagate the capacity error")
	}
}

func TestFacadeCliqueStats(t *testing.T) {
	g := RandomGraph(600, 0.02, 17)
	res, err := MISCongestedClique(g, Options{Seed: 18, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds == 0 || res.Stats.TotalWords == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
	if res.Stats.MaxMachineWords > int64(g.NumVertices()) {
		t.Errorf("per-player load %d exceeds the clique's n-word Lenzen limit", res.Stats.MaxMachineWords)
	}
}

func TestFacadeWeightedGraphErrors(t *testing.T) {
	g := RandomGraph(10, 0.5, 19)
	if _, err := NewWeightedGraph(g, []float64{1}); err == nil {
		t.Error("mismatched weight count accepted")
	}
	wg := RandomWeightedGraph(50, 0.2, 2, 9, 20)
	for _, w := range wg.W {
		if w < 2 || w >= 9 {
			t.Fatalf("weight %v outside [2,9)", w)
		}
	}
}

func TestFacadePropertyAllOutputsValid(t *testing.T) {
	check := func(seed uint64) bool {
		g := RandomGraph(120, 0.05, seed)
		misRes, err := MIS(g, Options{Seed: seed})
		if err != nil || !IsMaximalIndependentSet(g, misRes.InMIS) {
			return false
		}
		mRes, err := ApproxMaxMatching(g, Options{Seed: seed})
		if err != nil || !IsMatching(g, mRes.M) {
			return false
		}
		cRes, err := ApproxMinVertexCover(g, Options{Seed: seed})
		if err != nil || !IsVertexCover(g, cRes.InCover) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
