package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"mpcgraph/internal/obs"
	"mpcgraph/internal/service"
)

// runTop is the live daemon dashboard: it scrapes /metrics and the job
// table every interval and renders queue depth, in-flight work, cache
// hit rates by tier, solve throughput and latency percentiles. The
// percentiles come from histogram deltas — each frame subtracts the
// previous scrape's bucket counts, so p50/p95/p99 describe the last
// interval, not the daemon's lifetime (the first frame, with nothing to
// subtract, shows the lifetime distribution and says so).
//
// Rates are computed over the nominal -interval, not a measured clock:
// this package is lint-barred from reading wall time (see
// docs/analysis.md), and for a dashboard the nominal pace is accurate
// to the sleep jitter, which is noise at 2s intervals.
func runTop(args []string, env Env) error {
	fs := flag.NewFlagSet("mpcgraph top", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	var (
		server   = fs.String("server", "http://127.0.0.1:8080", "base URL of the mpcgraphd daemon")
		interval = fs.Duration("interval", 2*time.Second, "refresh pace between frames")
		count    = fs.Int("count", 0, "frames to render before exiting (0 = until interrupted)")
		plain    = fs.Bool("plain", false, "append frames instead of redrawing in place (no ANSI escapes; script-friendly)")
		jobsN    = fs.Int("jobs", 8, "recent jobs shown per frame")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *interval <= 0 {
		return fmt.Errorf("top requires a positive -interval")
	}

	var prev *topSample
	for frame := 0; *count <= 0 || frame < *count; frame++ {
		if frame > 0 {
			time.Sleep(*interval)
		}
		cur, err := scrapeTop(*server, *jobsN)
		if err != nil {
			return err
		}
		if !*plain {
			// Clear and home: each frame redraws the whole dashboard.
			fmt.Fprint(env.Stdout, "\x1b[2J\x1b[H")
		}
		renderTop(env.Stdout, *server, cur, prev, *interval)
		prev = cur
	}
	return nil
}

// topSample is one scrape: the parsed exposition plus the newest slice
// of the job table.
type topSample struct {
	exp  *obs.Exposition
	hist map[string][]obs.HistogramSeries
	jobs []*service.JobView
}

// gauge reads one unlabeled sample, 0 if absent.
func (s *topSample) gauge(name string, kv ...string) float64 {
	v, _ := s.exp.Value(name, kv...)
	return v
}

// merged folds every series of one histogram family into a single
// snapshot (valid because every obs histogram shares one bucket
// layout).
func (s *topSample) merged(family string) obs.Snapshot {
	return obs.MergedSnapshot(s.hist[family])
}

func scrapeTop(server string, jobsN int) (*topSample, error) {
	raw, err := getJSON(server, "/metrics")
	if err != nil {
		return nil, err
	}
	exp, err := obs.ParseExposition(strings.NewReader(string(raw)))
	if err != nil {
		return nil, fmt.Errorf("top: bad /metrics exposition: %v", err)
	}
	body, err := getJSON(server, fmt.Sprintf("/v1/jobs?limit=%d", max(jobsN, 1)))
	if err != nil {
		return nil, err
	}
	var list struct {
		Jobs []*service.JobView `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		return nil, fmt.Errorf("top: bad job listing: %v", err)
	}
	return &topSample{exp: exp, hist: exp.Histograms(), jobs: list.Jobs}, nil
}

// latencyRow is one family of the percentile table.
type latencyRow struct {
	label  string
	family string
}

var topLatencyRows = []latencyRow{
	{"http request", "mpcgraphd_http_request_seconds"},
	{"queue wait", "mpcgraphd_queue_wait_seconds"},
	{"solve", "mpcgraphd_solve_seconds"},
	{"job e2e", "mpcgraphd_job_e2e_seconds"},
}

func renderTop(w io.Writer, server string, cur, prev *topSample, interval time.Duration) {
	secs := interval.Seconds()
	up := "up"
	if cur.gauge("mpcgraphd_up") == 0 {
		up = "DRAINING"
	}
	fmt.Fprintf(w, "mpcgraphd %s — %s — uptime %s\n",
		up, server, formatSecs(cur.gauge("mpcgraphd_uptime_seconds")))
	fmt.Fprintf(w, "queue %d/%d   inflight %d/%d workers   goroutines %d   heap %s\n",
		int(cur.gauge("mpcgraphd_queue_depth")), int(cur.gauge("mpcgraphd_queue_capacity")),
		int(cur.gauge("mpcgraphd_jobs_inflight")), int(cur.gauge("mpcgraphd_workers")),
		int(cur.gauge("go_goroutines")), formatBytes(cur.gauge("go_heap_inuse_bytes")))

	states := []string{"queued", "running", "done", "failed", "canceled"}
	parts := make([]string, 0, len(states))
	for _, st := range states {
		parts = append(parts, fmt.Sprintf("%s %d", st, int(cur.gauge("mpcgraphd_jobs", "state", st))))
	}
	fmt.Fprintf(w, "jobs: %s\n", strings.Join(parts, "   "))

	// Throughput from counter deltas over the nominal interval; the
	// first frame has no previous scrape, so it shows lifetime averages
	// over the daemon's uptime instead.
	window := "interval"
	rate := func(name string) float64 {
		v := cur.gauge(name)
		if prev == nil {
			if uptime := cur.gauge("mpcgraphd_uptime_seconds"); uptime > 0 {
				return v / uptime
			}
			return 0
		}
		return (v - prev.gauge(name)) / secs
	}
	if prev == nil {
		window = "lifetime"
	}
	fmt.Fprintf(w, "rates (%s): %.2f submits/s   %.2f solves/s   %.2f coalesced/s\n",
		window, rate("mpcgraphd_jobs_submitted_total"), rate("mpcgraphd_solves_total"),
		rate("mpcgraphd_coalesced_total"))

	memHits := cur.gauge("mpcgraphd_cache_hits_total", "tier", "memory")
	diskHits := cur.gauge("mpcgraphd_cache_hits_total", "tier", "disk")
	misses := cur.gauge("mpcgraphd_cache_misses_total")
	lookups := memHits + diskHits + misses
	pct := func(v float64) string {
		if lookups == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*v/lookups)
	}
	fmt.Fprintf(w, "cache: memory %s (%d)   disk %s (%d)   miss %s (%d)\n",
		pct(memHits), int(memHits), pct(diskHits), int(diskHits), pct(misses), int(misses))

	fmt.Fprintf(w, "latency (%s):%17s%12s%12s%12s\n", window, "p50", "p95", "p99", "count")
	for _, row := range topLatencyRows {
		snap := cur.merged(row.family)
		if prev != nil {
			snap = snap.Sub(prev.merged(row.family))
		}
		if snap.Count == 0 {
			fmt.Fprintf(w, "  %-14s%15s%12s%12s%12d\n", row.label, "-", "-", "-", 0)
			continue
		}
		fmt.Fprintf(w, "  %-14s%15s%12s%12s%12d\n", row.label,
			formatQuantile(snap, 0.50), formatQuantile(snap, 0.95), formatQuantile(snap, 0.99),
			snap.Count)
	}

	// Hottest solve pairs of the window, by observation count.
	if pairs := solvePairs(cur, prev); len(pairs) > 0 {
		fmt.Fprintf(w, "solves (%s): %s\n", window, strings.Join(pairs, "   "))
	}

	if len(cur.jobs) > 0 {
		fmt.Fprintln(w, "recent jobs:")
		for _, j := range cur.jobs {
			origin := "computed"
			switch {
			case j.CacheHit:
				origin = "hit:" + string(j.CacheTier)
			case j.Coalesced:
				origin = "coalesced"
			}
			fmt.Fprintf(w, "  %-10s %-9s %-18s %-17s %s\n", j.ID, j.State, j.Problem, j.Model, origin)
		}
	}
	fmt.Fprintln(w)
}

// solvePairs summarizes the window's solve activity per (problem,
// model) child, busiest first.
func solvePairs(cur, prev *topSample, limitOpt ...int) []string {
	limit := 4
	if len(limitOpt) > 0 {
		limit = limitOpt[0]
	}
	type pair struct {
		label string
		count uint64
	}
	var pairs []pair
	for _, series := range cur.hist["mpcgraphd_solve_seconds"] {
		snap := series.Snapshot()
		if prev != nil {
			for _, prevSeries := range prev.hist["mpcgraphd_solve_seconds"] {
				if sameLabels(series.Labels, prevSeries.Labels) {
					snap = snap.Sub(prevSeries.Snapshot())
					break
				}
			}
		}
		if snap.Count == 0 {
			continue
		}
		pairs = append(pairs, pair{
			label: fmt.Sprintf("%s/%s %d×%s", series.Labels["problem"], series.Labels["model"],
				snap.Count, formatQuantile(snap, 0.50)),
			count: snap.Count,
		})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].count != pairs[j].count {
			return pairs[i].count > pairs[j].count
		}
		return pairs[i].label < pairs[j].label
	})
	if len(pairs) > limit {
		pairs = pairs[:limit]
	}
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = p.label
	}
	return out
}

func sameLabels(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// formatQuantile renders a quantile estimate (seconds) with a unit
// fitting its magnitude.
func formatQuantile(s obs.Snapshot, q float64) string {
	return formatSeconds(s.Quantile(q))
}

func formatSeconds(v float64) string {
	switch {
	case v < 0.001:
		return fmt.Sprintf("%.0fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.2fms", v*1e3)
	default:
		return fmt.Sprintf("%.2fs", v)
	}
}

func formatSecs(v float64) string {
	d := time.Duration(v * float64(time.Second))
	if d >= time.Minute {
		return d.Round(time.Second).String()
	}
	return d.Round(10 * time.Millisecond).String()
}

func formatBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}
