// Package service implements mpcgraphd, the long-running solve daemon:
// the full registry surface (problems × models × scenario catalog ×
// graph upload in any graphio format) exposed as an HTTP job API.
//
// The daemon is three registry-shaped layers over the public Solve
// entry point:
//
//   - a bounded job queue drained by a fixed worker pool, with per-job
//     context cancellation and deadlines threaded into Solve, so a
//     resident process has admission control instead of unbounded
//     goroutine fan-out;
//   - a content-addressed deterministic result cache: because Solve is
//     a pure function of (instance, problem, model, seed, eps,
//     memory-factor, strict) — bit-identical for every Workers setting
//     — a Report can be replayed from cache with full fidelity. The
//     key is a digest of the canonical instance bytes plus the
//     Workers-invariant solve options (see CacheKey), so the same
//     logical instance hits the cache whether it arrived as a catalog
//     scenario, an uploaded edge list, or a MatrixMarket file. The
//     cache is tiered: an in-memory LRU (L1) over an optional
//     persistent disk store (L2, -cache-dir) that writes entries
//     atomically and survives crashes — a restarted daemon serves
//     previously computed results without recomputation (store.go,
//     codec.go). The same determinism argument powers single-flight
//     coalescing: concurrent submissions of one cache key share one
//     computation (flight.go);
//   - job lifecycle and operational endpoints: submit, poll, cancel,
//     list, per-round TraceEvent streaming as NDJSON or SSE, /healthz,
//     and Prometheus-style /metrics (queue depth, in-flight gauge,
//     cache hit/miss/eviction counters).
//
// Everything dispatches through the registries — the algorithm table,
// the scenario catalog, the format table — so a new (Problem, Model)
// pair, scenario or format appears in the service automatically, with
// no service change. See docs/service.md for the wire API.
//
// This package records wall-clock job timestamps (created/started/
// finished, uptime); those are operational metadata only and never
// enter a Report's audited costs or the cache key.
package service

import (
	"context"
	"net/http"
	"sync"
	"time"

	"mpcgraph/internal/obs"
)

// Config sizes the daemon. The zero value is usable: every field has a
// documented default applied by New.
type Config struct {
	// Workers is the number of concurrent solve workers draining the job
	// queue (default 2). Each running job additionally fans out across
	// cores according to its own per-job Workers option; results are
	// bit-identical either way, so this knob trades latency against
	// throughput only.
	Workers int
	// QueueDepth bounds the number of queued (admitted but not yet
	// running) jobs (default 64). A full queue rejects submissions with
	// HTTP 429 rather than buffering without bound.
	QueueDepth int
	// CacheEntries bounds the result cache (default 1024 entries; < 0
	// disables caching).
	CacheEntries int
	// MaxJobsRetained bounds the number of finished jobs kept for
	// GET /v1/jobs inspection (default 4096). The oldest terminal jobs
	// are evicted first; queued and running jobs are never evicted.
	MaxJobsRetained int
	// DefaultJobWorkers is the per-job Workers option applied when a
	// request leaves workers at 0 (default 0 = all cores). Results are
	// Workers-invariant, so this changes scheduling only — never
	// payloads, costs or cache keys.
	DefaultJobWorkers int
	// CacheDir, when non-empty, enables the persistent result-cache tier
	// (L2): one file per cache key under this directory, written
	// atomically and recovered on restart. Empty disables persistence;
	// the in-memory LRU then stands alone.
	CacheDir string
	// DiskEntries bounds the persistent tier (default 65536 entries;
	// <= 0 keeps the default). The oldest entries by access time are
	// evicted when the bound is exceeded.
	DiskEntries int
	// Failpoints arms fault-injection points for crash testing, in the
	// same comma-separated syntax as the MPCGRAPHD_FAILPOINTS
	// environment variable (see failpoint.go). Empty disables them all;
	// production deployments leave this empty.
	Failpoints string
	// MaxBatchJobs bounds the number of jobs one POST /v1/batches may
	// expand to (default 4096). A request whose explicit job list or
	// cross-product exceeds it is rejected with 413 before any job is
	// created — the admission-control guard against hostile sweep specs.
	MaxBatchJobs int
	// MaxBatchesRetained bounds the number of finished batches kept for
	// GET /v1/batches inspection (default 256). The oldest fully
	// terminal batches are evicted first; live batches never are.
	MaxBatchesRetained int
	// Logger receives the daemon's structured event stream (job
	// lifecycle, HTTP access at debug level, drain). Nil disables
	// logging; mpcgraphd wires one from -log-level/-log-format.
	Logger *obs.Logger
}

// withDefaults resolves the documented defaults.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxJobsRetained <= 0 {
		c.MaxJobsRetained = 4096
	}
	if c.DiskEntries <= 0 {
		c.DiskEntries = 65536
	}
	if c.MaxBatchJobs <= 0 {
		c.MaxBatchJobs = 4096
	}
	if c.MaxBatchesRetained <= 0 {
		c.MaxBatchesRetained = 256
	}
	return c
}

// Server is one daemon instance: the job table, the queue, the worker
// pool and the result cache behind an http.Handler. Create with New,
// serve Handler, and stop with Drain.
type Server struct {
	cfg   Config
	cache *tieredCache
	fp    *failpoints
	tel   *telemetry
	start time.Time

	mu          sync.Mutex
	jobs        map[string]*Job
	order       []string           // job ids in submission order (pagination, eviction)
	flights     map[string]*flight // in-progress computations by cache key
	batches     map[string]*Batch
	batchOrder  []string // batch ids in submission order (listing, eviction)
	nextID      uint64
	nextBatchID uint64
	nextReqID   uint64 // HTTP request ids for log correlation
	batchJobs   uint64 // jobs ever admitted through POST /v1/batches
	inflight    int
	solves      uint64 // Solve calls actually made (excludes cache hits and coalesced riders)
	coalesces   uint64 // submissions that rode an existing flight
	draining    bool

	queue chan *Job
	// quit is closed by Drain. Workers select on it next to the queue:
	// once it closes they finish the backlog already admitted and exit.
	// Batch feeders select on it in their blocking queue sends, so a
	// drain can never leave a feeder wedged against full admission.
	quit    chan struct{}
	wg      sync.WaitGroup // worker goroutines
	feeders sync.WaitGroup // batch feeder goroutines
}

// New constructs a Server and starts its worker pool. It fails only on
// an unusable cache directory or a malformed failpoint spec; a damaged
// cache dir contents is recovered from, never fatal (see openDiskStore).
func New(cfg Config) (*Server, error) {
	s, err := build(cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// build assembles a Server without starting workers; tests use it to
// construct a fully inert daemon they drive by hand.
func build(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	fp, err := parseFailpoints(cfg.Failpoints)
	if err != nil {
		return nil, err
	}
	tel := newTelemetry(cfg.Logger)
	var disk *diskStore
	if cfg.CacheDir != "" {
		if disk, err = openDiskStore(cfg.CacheDir, cfg.DiskEntries, fp); err != nil {
			return nil, err
		}
		// The store times its own reads and writes; the hook keeps the
		// obs dependency out of the store's construction path.
		disk.observe = func(op string, d time.Duration) {
			tel.diskOp.With(op).Observe(d)
		}
	}
	return &Server{
		cfg:     cfg,
		cache:   &tieredCache{mem: newResultCache(cfg.CacheEntries), disk: disk},
		fp:      fp,
		tel:     tel,
		start:   time.Now(),
		jobs:    make(map[string]*Job),
		flights: make(map[string]*flight),
		batches: make(map[string]*Batch),
		queue:   make(chan *Job, cfg.QueueDepth),
		quit:    make(chan struct{}),
	}, nil
}

// Handler returns the daemon's HTTP API, wrapped in the telemetry
// middleware (per-route latency histogram, request-id log
// correlation). See docs/service.md.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/solution", s.handleSolution)
	mux.HandleFunc("POST /v1/batches", s.handleBatchSubmit)
	mux.HandleFunc("GET /v1/batches", s.handleBatchList)
	mux.HandleFunc("GET /v1/batches/{id}", s.handleBatchGet)
	mux.HandleFunc("DELETE /v1/batches/{id}", s.handleBatchCancel)
	mux.HandleFunc("GET /v1/batches/{id}/stream", s.handleBatchStream)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.instrument(mux)
}

// Drain gracefully stops the server: new submissions are rejected with
// 503, queued and running jobs are given until deadline to finish, and
// any still running after that are canceled. Drain returns when every
// worker and every batch feeder has exited. It is the SIGTERM path of
// mpcgraphd.
func (s *Server) Drain(deadline time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	// The queue channel itself is never closed: workers and feeders
	// observe the drain through quit, so a racing feeder send can never
	// panic on a closed channel.
	close(s.quit)
	s.mu.Unlock()
	s.tel.log.Info(context.Background(), "daemon.drain.start",
		obs.F("deadlineMs", durMs(deadline)))

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.feeders.Wait()
		close(done)
	}()
	var timeout <-chan time.Time
	if deadline > 0 {
		t := time.NewTimer(deadline)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-done:
	case <-timeout:
		// Deadline passed: cancel everything still live and wait for the
		// workers to observe it. Cancellation is checked between metered
		// rounds, so this converges quickly.
		s.cancelAllJobs()
		<-done
	}
	// A feeder's queue send can win its race against quit, parking one
	// last job in the queue after the workers exited. Nothing will ever
	// run it — cancel any such straggler so every admitted job is
	// terminal when Drain returns.
	s.cancelAllJobs()
	s.tel.log.Info(context.Background(), "daemon.drain.done")
}

// cancelAllJobs cancels every retained non-terminal job; cancelJob is a
// no-op on terminal ones.
func (s *Server) cancelAllJobs() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		s.jobs[id].cancelJob("server draining")
	}
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// worker drains the queue until Drain signals quit, then finishes the
// backlog admitted before the drain and exits.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case job := <-s.queue:
			s.runJob(job)
		case <-s.quit:
			for {
				select {
				case job := <-s.queue:
					s.runJob(job)
				default:
					return
				}
			}
		}
	}
}

// runJob executes one dequeued job, maintaining the inflight gauge and
// the queue-wait histogram.
func (s *Server) runJob(job *Job) {
	if wait, ok := job.stampDequeued(); ok {
		s.tel.queueWait.With().Observe(wait)
	}
	s.mu.Lock()
	s.inflight++
	s.mu.Unlock()
	job.run(s)
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
}

// snapshotCounts returns (queued, inflight) for health and metrics.
func (s *Server) snapshotCounts() (queued, inflight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.inflight
}

// evictTerminalLocked drops the oldest terminal jobs beyond the
// retention bound. Called with s.mu held after every submission.
func (s *Server) evictTerminalLocked() {
	excess := len(s.order) - s.cfg.MaxJobsRetained
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if excess > 0 && s.jobs[id].terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}
