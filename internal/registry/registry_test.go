package registry

import (
	"context"
	"errors"
	"testing"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/model"
	"mpcgraph/internal/rng"
)

func testInput(t *testing.T, weighted bool) Input {
	t.Helper()
	src := rng.New(11)
	g := graph.GNP(300, 0.03, src)
	in := Input{G: g}
	if weighted {
		in.WG = graph.RandomWeights(g, 1, 10, src)
	}
	return in
}

func TestPairsCoverPaperSurface(t *testing.T) {
	have := map[Pair]bool{}
	for _, p := range Pairs() {
		have[p] = true
	}
	// Every problem under MPC.
	for _, p := range Problems() {
		if !have[Pair{Problem: p, Model: model.MPC}] {
			t.Errorf("no MPC runner for %s", p)
		}
	}
	// The unweighted problems also under the congested clique.
	for _, p := range []Problem{MIS, MaximalMatching, ApproxMatching, OnePlusEpsMatching, VertexCover} {
		if !have[Pair{Problem: p, Model: model.CongestedClique}] {
			t.Errorf("no congested-clique runner for %s", p)
		}
	}
}

func TestPairsSorted(t *testing.T) {
	pairs := Pairs()
	for i := 1; i < len(pairs); i++ {
		a, b := pairs[i-1], pairs[i]
		if a.Problem > b.Problem || (a.Problem == b.Problem && a.Model >= b.Model) {
			t.Fatalf("Pairs not sorted: %s before %s", a, b)
		}
	}
}

func TestSolveUnsupportedPair(t *testing.T) {
	_, err := Solve(context.Background(), testInput(t, true), WeightedMatching, model.CongestedClique, Options{Seed: 1})
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
}

func TestSolveWeightedNeedsWeights(t *testing.T) {
	_, err := Solve(context.Background(), testInput(t, false), WeightedMatching, model.MPC, Options{Seed: 1})
	if !errors.Is(err, ErrNeedWeighted) {
		t.Fatalf("want ErrNeedWeighted, got %v", err)
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(MIS, model.MPC, Runner{Run: runMISMPC})
}

// TestEveryRunnerReportsFullCosts is the acceptance criterion of the
// unified Report: every registered pair must return nonzero audited
// costs and a stage breakdown whose rounds and words sum to the totals.
func TestEveryRunnerReportsFullCosts(t *testing.T) {
	for _, pair := range Pairs() {
		pair := pair
		t.Run(pair.String(), func(t *testing.T) {
			in := testInput(t, pair.Problem == WeightedMatching)
			rep, err := Solve(context.Background(), in, pair.Problem, pair.Model, Options{Seed: 3, Eps: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Problem != pair.Problem || rep.Model != pair.Model {
				t.Errorf("report identity %s/%s does not match pair %s", rep.Problem, rep.Model, pair)
			}
			if rep.Rounds == 0 {
				t.Error("Rounds is zero")
			}
			if rep.MaxMachineWords == 0 {
				t.Error("MaxMachineWords is zero")
			}
			if rep.TotalWords == 0 {
				t.Error("TotalWords is zero")
			}
			if rep.Wall <= 0 {
				t.Error("Wall not stamped")
			}
			var stageRounds int
			var stageWords int64
			for _, s := range rep.Stages {
				stageRounds += s.Rounds
				stageWords += s.Words
			}
			if stageRounds != rep.Rounds {
				t.Errorf("stage rounds sum %d != report rounds %d (%v)", stageRounds, rep.Rounds, rep.Stages)
			}
			if stageWords != rep.TotalWords {
				t.Errorf("stage words sum %d != report total %d (%v)", stageWords, rep.TotalWords, rep.Stages)
			}
		})
	}
}

// TestMatchingFamilyModelInvariance asserts the cross-model determinism
// contract: the congested-clique backend only changes the meter, so the
// output must be bit-identical to the MPC run.
func TestMatchingFamilyModelInvariance(t *testing.T) {
	for _, p := range []Problem{MaximalMatching, ApproxMatching, OnePlusEpsMatching, VertexCover} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			in := testInput(t, false)
			opts := Options{Seed: 9, Eps: 0.1}
			mpcRep, err := Solve(context.Background(), in, p, model.MPC, opts)
			if err != nil {
				t.Fatal(err)
			}
			cliqueRep, err := Solve(context.Background(), in, p, model.CongestedClique, opts)
			if err != nil {
				t.Fatal(err)
			}
			for v := range mpcRep.M {
				if mpcRep.M[v] != cliqueRep.M[v] {
					t.Fatalf("matching differs at vertex %d across models", v)
				}
			}
			for v := range mpcRep.InCover {
				if mpcRep.InCover[v] != cliqueRep.InCover[v] {
					t.Fatalf("cover differs at vertex %d across models", v)
				}
			}
		})
	}
}

func TestSolveNilGraph(t *testing.T) {
	if _, err := Solve(context.Background(), Input{}, MIS, model.MPC, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestSolveCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Solve(ctx, testInput(t, false), MIS, model.MPC, Options{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
