package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Level
		ok   bool
	}{
		{"debug", LevelDebug, true},
		{"INFO", LevelInfo, true},
		{" warn ", LevelWarn, true},
		{"warning", LevelWarn, true},
		{"error", LevelError, true},
		{"verbose", LevelInfo, false},
	} {
		got, err := ParseLevel(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if _, err := ParseLogFormat("yaml"); err == nil {
		t.Error("ParseLogFormat(yaml) did not error")
	}
	if j, err := ParseLogFormat("json"); err != nil || !j {
		t.Errorf("ParseLogFormat(json) = %v, %v", j, err)
	}
	if j, err := ParseLogFormat("text"); err != nil || j {
		t.Errorf("ParseLogFormat(text) = %v, %v", j, err)
	}
}

func TestLoggerJSONLines(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo, true)
	ctx := WithFields(context.Background(), F("req", "r-1"))
	ctx = WithFields(ctx, F("job", "j-9"))
	l.Info(ctx, "job.submit", F("problem", "mis"), F("n", 128))
	l.Debug(ctx, "dropped.below.level")

	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1 (debug filtered):\n%s", len(lines), b.String())
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, lines[0])
	}
	for k, want := range map[string]any{
		"level":   "info",
		"event":   "job.submit",
		"req":     "r-1",
		"job":     "j-9",
		"problem": "mis",
		"n":       float64(128),
	} {
		if m[k] != want {
			t.Errorf("field %q = %v, want %v", k, m[k], want)
		}
	}
	// up is a monotonic elapsed-seconds number, never a timestamp.
	up, ok := m["up"].(float64)
	if !ok || up < 0 || up > 3600 {
		t.Errorf("up = %v, want small non-negative float", m["up"])
	}
}

func TestLoggerTextFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelDebug, false)
	l.Warn(context.Background(), "queue.full", F("depth", 64))
	line := strings.TrimSpace(b.String())
	for _, want := range []string{"warn", "queue.full", "depth=64"} {
		if !strings.Contains(line, want) {
			t.Errorf("text line missing %q: %s", want, line)
		}
	}
}

func TestLoggerWithAndNil(t *testing.T) {
	var nilLogger *Logger
	// Every method on a nil logger is a no-op, not a panic.
	nilLogger.Info(context.Background(), "ignored")
	nilLogger.Error(nil, "ignored") //nolint:staticcheck // nil ctx tolerated by design
	if nilLogger.With(F("a", 1)) != nil {
		t.Error("nil.With did not stay nil")
	}
	if nilLogger.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}

	var b strings.Builder
	l := NewLogger(&b, LevelInfo, true).With(F("component", "daemon"))
	l.Info(context.Background(), "start")
	var m map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(b.String())), &m); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if m["component"] != "daemon" {
		t.Errorf("With field missing: %v", m)
	}
}

func TestLoggerUnmarshalableValue(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo, true)
	l.Info(context.Background(), "weird", F("ch", make(chan int)))
	var m map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(b.String())), &m); err != nil {
		t.Fatalf("line with unmarshalable value is not JSON: %v\n%s", err, b.String())
	}
	if _, ok := m["ch"].(string); !ok {
		t.Errorf("unmarshalable value not stringified: %v", m["ch"])
	}
}

// TestLoggerConcurrent exercises interleaved writes from derived
// loggers under -race: every emitted line must still be whole JSON.
func TestLoggerConcurrent(t *testing.T) {
	// The logger's own mutex is the only thing serializing writes to
	// this builder — the test fails under -race if it does not.
	var b strings.Builder
	l := NewLogger(&b, LevelInfo, true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dl := l.With(F("g", g))
			for i := 0; i < 50; i++ {
				dl.Info(context.Background(), "tick", F("i", i))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("torn line: %v\n%s", err, line)
		}
	}
}

func TestContextFields(t *testing.T) {
	if got := ContextFields(nil); got != nil { //nolint:staticcheck // nil ctx tolerated by design
		t.Errorf("ContextFields(nil) = %v", got)
	}
	ctx := context.Background()
	if got := ContextFields(ctx); len(got) != 0 {
		t.Errorf("empty ctx fields = %v", got)
	}
	if WithFields(ctx) != ctx {
		t.Error("WithFields with no fields did not return ctx unchanged")
	}
	ctx2 := WithFields(ctx, F("a", 1))
	ctx3 := WithFields(ctx2, F("b", 2))
	if got := ContextFields(ctx3); len(got) != 2 || got[0].Key != "a" || got[1].Key != "b" {
		t.Errorf("stacked fields = %v", got)
	}
	// The parent context is not mutated.
	if got := ContextFields(ctx2); len(got) != 1 {
		t.Errorf("parent ctx fields = %v", got)
	}
}
