// Package par is the deterministic parallel execution engine shared by
// the simulators and the graph layer. The paper's models are
// bulk-synchronous: within a round every machine (or player) computes
// independently on its local words, so a round body is an embarrassingly
// parallel loop over machines or vertices. This package turns those
// loops into multi-core loops without giving up reproducibility.
//
// # Determinism contract
//
// Every helper shards the index range [0, n) into at most `workers`
// contiguous, disjoint shards and hands each shard to one goroutine.
// Results are combined in ascending shard order, so:
//
//   - writes to element-indexed state (out[i] for i in the shard) are
//     race-free and land exactly where the sequential loop would put
//     them;
//   - integer folds (sums, maxes, first-error selection) are exact and
//     therefore bit-identical to the sequential loop for every worker
//     count;
//   - floating-point folds are deterministic for a fixed worker count,
//     and bit-identical across worker counts only when each individual
//     value is computed entirely inside one element's body (the
//     "per-vertex gather" pattern used throughout this repository) —
//     never split one float sum across shard boundaries.
//
// workers follows the public Options.Workers convention: 0 means
// runtime.NumCPU(), 1 means the exact sequential path on the calling
// goroutine, and n > 1 caps the fan-out at n goroutines.
package par

import (
	"runtime"
	"sort"
	"sync"
)

// minParallel is the smallest range worth fanning out; below it the
// goroutine handoff costs more than the shard work it buys.
const minParallel = 64

// Resolve maps the public Workers knob onto a concrete worker count:
// 0 selects runtime.GOMAXPROCS(0) — the cores this process may
// actually use, which respects cgroup/user caps — and anything below 1
// clamps to 1.
func Resolve(workers int) int {
	if workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// ShardCount returns the number of shards For, Reduce and Collect will
// use for a range of length n — the size callers need for per-worker
// scratch buffers. It is always at least 1.
func ShardCount(workers, n int) int {
	w := Resolve(workers)
	if n < minParallel || w <= 1 {
		return 1
	}
	if w > n {
		w = n
	}
	return w
}

// shardRange returns the half-open range of shard w out of `shards`
// covering [0, n): ranges are contiguous, disjoint, cover [0, n)
// exactly, and differ in length by at most one.
func shardRange(n, shards, w int) (lo, hi int) {
	q, r := n/shards, n%shards
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

// For runs body over [0, n) split into ShardCount(workers, n) contiguous
// shards, one goroutine per shard. body receives the half-open range
// [lo, hi) and the shard index w (usable to index per-worker scratch).
// With workers <= 1, or a range too small to be worth fanning out, body
// runs once as body(0, n, 0) on the calling goroutine — the exact
// sequential path.
func For(workers, n int, body func(lo, hi, w int)) {
	if n <= 0 {
		return
	}
	shards := ShardCount(workers, n)
	if shards == 1 {
		body(0, n, 0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(shards)
	for w := 0; w < shards; w++ {
		lo, hi := shardRange(n, shards, w)
		go func() {
			defer wg.Done()
			body(lo, hi, w)
		}()
	}
	wg.Wait()
}

// Reduce runs body once per shard of [0, n) to produce a per-shard
// accumulator, then folds the accumulators with merge in ascending
// shard order. For associative integer folds the result is bit-identical
// to the sequential loop at every worker count. n <= 0 returns the zero
// value of A.
func Reduce[A any](workers, n int, body func(lo, hi, w int) A, merge func(a, b A) A) A {
	if n <= 0 {
		var zero A
		return zero
	}
	shards := ShardCount(workers, n)
	if shards == 1 {
		return body(0, n, 0)
	}
	accs := make([]A, shards)
	var wg sync.WaitGroup
	wg.Add(shards)
	for w := 0; w < shards; w++ {
		lo, hi := shardRange(n, shards, w)
		go func() {
			defer wg.Done()
			accs[w] = body(lo, hi, w)
		}()
	}
	wg.Wait()
	out := accs[0]
	for w := 1; w < shards; w++ {
		out = merge(out, accs[w])
	}
	return out
}

// Collect concatenates the per-shard slices produced by body in
// ascending shard order — the deterministic parallel form of the
// filter-append loop. When body appends indices in ascending order
// within its shard, the result is the exact sequence the sequential
// loop would build.
func Collect[T any](workers, n int, body func(lo, hi, w int) []T) []T {
	if n <= 0 {
		return nil
	}
	shards := ShardCount(workers, n)
	if shards == 1 {
		return body(0, n, 0)
	}
	parts := make([][]T, shards)
	var wg sync.WaitGroup
	wg.Add(shards)
	for w := 0; w < shards; w++ {
		lo, hi := shardRange(n, shards, w)
		go func() {
			defer wg.Done()
			parts[w] = body(lo, hi, w)
		}()
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Sort sorts data with a parallel stable merge sort: shards are
// stable-sorted concurrently, then neighboring runs merge (preferring
// the left run on ties) until one remains. The output is identical to
// sort.SliceStable at every worker count.
func Sort[T any](workers int, data []T, less func(a, b T) bool) {
	n := len(data)
	shards := ShardCount(workers, n)
	if shards == 1 {
		sort.SliceStable(data, func(i, j int) bool { return less(data[i], data[j]) })
		return
	}
	// Run boundaries: bounds[w] .. bounds[w+1] is run w.
	bounds := make([]int, shards+1)
	for w := 0; w < shards; w++ {
		lo, _ := shardRange(n, shards, w)
		bounds[w] = lo
	}
	bounds[shards] = n
	For(workers, n, func(lo, hi, _ int) {
		part := data[lo:hi]
		sort.SliceStable(part, func(i, j int) bool { return less(part[i], part[j]) })
	})
	// Pairwise merge rounds, alternating between data and a scratch
	// buffer; each pair merges on its own goroutine.
	buf := make([]T, n)
	src, dst := data, buf
	for len(bounds) > 2 {
		pairs := (len(bounds) - 1) / 2
		var wg sync.WaitGroup
		wg.Add(pairs)
		for p := 0; p < pairs; p++ {
			lo, mid, hi := bounds[2*p], bounds[2*p+1], bounds[2*p+2]
			go func() {
				defer wg.Done()
				mergeRuns(src, dst, lo, mid, hi, less)
			}()
		}
		// An odd trailing run is copied through unchanged.
		if (len(bounds)-1)%2 == 1 {
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			copy(dst[lo:hi], src[lo:hi])
		}
		wg.Wait()
		next := make([]int, 0, pairs+2)
		for i := 0; i < len(bounds); i += 2 {
			next = append(next, bounds[i])
		}
		if next[len(next)-1] != n {
			next = append(next, n)
		}
		bounds = next
		src, dst = dst, src
	}
	if &src[0] != &data[0] {
		copy(data, src)
	}
}

// mergeRuns merges src[lo:mid] and src[mid:hi] into dst[lo:hi], taking
// from the left run on ties so the merge is stable.
func mergeRuns[T any](src, dst []T, lo, mid, hi int, less func(a, b T) bool) {
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		if i < mid && (j >= hi || !less(src[j], src[i])) {
			dst[k] = src[i]
			i++
		} else {
			dst[k] = src[j]
			j++
		}
	}
}
