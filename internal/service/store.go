package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"mpcgraph"
)

// diskStore is the persistent tier (L2) of the result cache: one file
// per mpcgraph-key-v1 digest under the -cache-dir root, holding the
// versioned canonical Report serialization of codec.go. Writes are
// atomic — temp file, fsync, rename — so a crash at any instant leaves
// either the complete previous state or the complete new entry, never
// a torn file; the startup scan therefore only ever sees whole entries
// plus (possibly) leftover temp files, which it deletes.
//
// Entries that fail validation anyway (in-place corruption, truncation
// by an operator, a foreign or future entry version) are quarantined
// into the quarantine/ subdirectory — recovery is never fatal, a
// damaged entry just costs one recompute. The store reads the wall
// clock only to stamp file mtimes for its size janitor (recency-based
// eviction); wall time never enters cache keys or the Report bytes
// themselves (see the no-wall-clock analyzer in docs/analysis.md).
type diskStore struct {
	dir        string
	maxEntries int
	fp         *failpoints
	// observe, when non-nil, receives the duration of each disk
	// operation ("read" for Get loads, "write" for Put persists) — the
	// telemetry hook build wires to the disk-op histogram. It keeps the
	// store free of any obs dependency.
	observe func(op string, d time.Duration)

	mu      sync.Mutex
	keys    map[string]struct{} // validated entries present on disk
	writing map[string]struct{} // keys with a write in progress (dedupe only)

	hits        uint64
	writes      uint64
	writeErrors uint64
	quarantined uint64
	degraded    bool
	lastErr     string
}

// quarantineDir is the subdirectory corrupt entries are moved into.
const quarantineDir = "quarantine"

// tmpPrefix marks in-progress writes; scan deletes any leftovers.
const tmpPrefix = "tmp-"

// openDiskStore opens (creating if needed) the persistent tier rooted
// at dir and scans it: valid entries join the index, temp leftovers are
// deleted, and anything else — corrupt, truncated, unknown version —
// is quarantined. Only an unusable root directory is an error; damaged
// entries never are.
func openDiskStore(dir string, maxEntries int, fp *failpoints) (*diskStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("service: cache dir: %v", err)
	}
	d := &diskStore{dir: dir, maxEntries: maxEntries, fp: fp, keys: make(map[string]struct{}), writing: make(map[string]struct{})}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: cache dir: %v", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		path := filepath.Join(dir, name)
		if len(name) >= len(tmpPrefix) && name[:len(tmpPrefix)] == tmpPrefix {
			_ = os.Remove(path) // a write the crash interrupted before rename
			continue
		}
		if !validKeyName(name) {
			d.quarantine(name, fmt.Errorf("not a cache-key file name"))
			continue
		}
		if fp.enabled("scan-corrupt") {
			d.quarantine(name, fmt.Errorf("injected scan corruption (failpoint)"))
			continue
		}
		if _, err := d.load(name); err != nil {
			d.quarantine(name, err)
			continue
		}
		d.keys[name] = struct{}{}
	}
	return d, nil
}

// validKeyName accepts exactly the hex SHA-256 shape of CacheKey.
func validKeyName(name string) bool {
	if len(name) != 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// load reads and decodes one entry file.
func (d *diskStore) load(key string) (*mpcgraph.Report, error) {
	data, err := os.ReadFile(filepath.Join(d.dir, key))
	if err != nil {
		return nil, err
	}
	return decodeReport(data)
}

// quarantine moves a damaged entry aside (falling back to deletion) so
// it is never scanned, served, or overwritten-in-place again. The file
// moves happen before d.mu is taken, so a slow disk never stalls the
// index; racing quarantines of one key are harmless (the second rename
// fails, the fallback remove finds nothing).
func (d *diskStore) quarantine(name string, reason error) {
	src := filepath.Join(d.dir, name)
	if err := os.Rename(src, filepath.Join(d.dir, quarantineDir, name)); err != nil {
		_ = os.Remove(src) // best effort: the entry may already be gone
	}
	d.mu.Lock()
	d.quarantined++
	d.lastErr = fmt.Sprintf("%s: %v", name, reason)
	d.mu.Unlock()
}

// Get returns the persisted Report for key. A present-but-invalid
// entry is quarantined and reported as a miss (the caller recomputes).
//
// Like Put, the disk I/O — read, quarantine rename, recency mtime —
// runs outside d.mu: the lock covers only the index probe and counter
// updates, so one slow read never serializes every other Get, Put and
// Stats. Completed entries are immutable (atomic rename, re-puts are
// no-ops), so an unlocked read is safe; the only unlocked/index race is
// a janitor eviction between the probe and the read, which surfaces as
// ENOENT and is treated as the miss it is.
func (d *diskStore) Get(key string) (*mpcgraph.Report, bool) {
	d.mu.Lock()
	_, ok := d.keys[key]
	d.mu.Unlock()
	if !ok {
		return nil, false
	}
	loadStart := time.Now()
	rep, err := d.load(key)
	if d.observe != nil {
		d.observe("read", time.Since(loadStart))
	}
	if err != nil {
		d.mu.Lock()
		delete(d.keys, key)
		d.mu.Unlock()
		if !os.IsNotExist(err) {
			d.quarantine(key, err)
		}
		return nil, false
	}
	d.mu.Lock()
	d.hits++
	d.mu.Unlock()
	// Recency for the janitor only; never part of keys or entry bytes.
	now := time.Now()
	_ = os.Chtimes(filepath.Join(d.dir, key), now, now) // best-effort recency
	return rep, true
}

// Put persists rep under key atomically. Determinism makes re-puts
// no-ops: any two Reports under one key are bit-identical, so the
// first persisted entry is kept. Failures degrade the tier (counted,
// surfaced in /healthz) instead of failing the job.
//
// The write itself — encode, temp file, fsync, rename, dir fsync —
// runs outside d.mu so a slow disk serializes only same-key puts, not
// every Get and Stats against one fsync. The writing set dedupes
// concurrent same-key puts; racing writes of one key would be harmless
// anyway (bit-identical bytes, atomic rename) but would waste fsyncs.
func (d *diskStore) Put(key string, rep *mpcgraph.Report) {
	d.mu.Lock()
	if _, ok := d.keys[key]; ok {
		d.mu.Unlock()
		return
	}
	if _, ok := d.writing[key]; ok {
		d.mu.Unlock()
		return
	}
	d.writing[key] = struct{}{}
	d.mu.Unlock()

	writeStart := time.Now()
	err := d.write(key, rep)
	if d.observe != nil {
		d.observe("write", time.Since(writeStart))
	}

	d.mu.Lock()
	delete(d.writing, key)
	if err != nil {
		d.writeErrors++
		d.degraded = true
		d.lastErr = err.Error()
		d.mu.Unlock()
		return
	}
	d.keys[key] = struct{}{}
	d.writes++
	overflow := d.maxEntries > 0 && len(d.keys) > d.maxEntries
	d.mu.Unlock()
	if overflow {
		d.janitor()
	}
}

// write performs the atomic temp+fsync+rename sequence.
func (d *diskStore) write(key string, rep *mpcgraph.Report) error {
	if d.fp.enabled("disk-write-error") {
		return fmt.Errorf("injected disk-write-error (failpoint)")
	}
	f, err := os.CreateTemp(d.dir, tmpPrefix+key+"-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err = f.Write(encodeReport(rep)); err == nil {
		err = f.Sync()
	}
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(d.dir, key))
	}
	if err != nil {
		_ = os.Remove(tmp) // the write already failed; report that error
		return err
	}
	// Make the rename itself durable (best effort: not all platforms
	// support fsync on directories).
	if dirf, dirErr := os.Open(d.dir); dirErr == nil {
		_ = dirf.Sync()
		_ = dirf.Close()
	}
	return nil
}

// janitor evicts the oldest-mtime entries beyond maxEntries. Called
// after a successful write pushed the index past capacity. The stats
// and removals run outside d.mu against an index snapshot: eviction is
// recency policy, not correctness, so racing a concurrent Get (which
// treats a vanished file as a miss) or Put (whose new entry is counted
// by the next janitor pass) is benign, and a slow disk never holds up
// the index.
func (d *diskStore) janitor() {
	d.mu.Lock()
	max := d.maxEntries
	keys := make([]string, 0, len(d.keys))
	for key := range d.keys {
		keys = append(keys, key)
	}
	d.mu.Unlock()
	if max <= 0 || len(keys) <= max {
		return
	}
	type aged struct {
		key   string
		mtime time.Time
	}
	entries := make([]aged, 0, len(keys))
	var drop []string
	for _, key := range keys {
		info, err := os.Stat(filepath.Join(d.dir, key))
		if err != nil {
			drop = append(drop, key) // vanished underneath us; drop the index entry
			continue
		}
		entries = append(entries, aged{key, info.ModTime()})
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].key < entries[j].key
	})
	for _, ent := range entries[:max0(len(entries)-max)] {
		_ = os.Remove(filepath.Join(d.dir, ent.key)) // eviction is best effort
		drop = append(drop, ent.key)
	}
	d.mu.Lock()
	for _, key := range drop {
		delete(d.keys, key)
	}
	d.mu.Unlock()
}

func max0(n int) int {
	if n < 0 {
		return 0
	}
	return n
}

// diskStats is the /metrics and /healthz snapshot of the tier.
type diskStats struct {
	Entries     int
	Capacity    int
	Hits        uint64
	Writes      uint64
	WriteErrors uint64
	Quarantined uint64
	Degraded    bool
	LastErr     string
}

func (d *diskStore) Stats() diskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return diskStats{
		Entries:     len(d.keys),
		Capacity:    d.maxEntries,
		Hits:        d.hits,
		Writes:      d.writes,
		WriteErrors: d.writeErrors,
		Quarantined: d.quarantined,
		Degraded:    d.degraded,
		LastErr:     d.lastErr,
	}
}
