// Package graphio reads and writes graph instances in the portable
// on-disk formats understood by the mpcgraph CLI: the repository's
// native edge list, a weighted edge list, DIMACS edge format, the
// METIS/Chaco adjacency format, and MatrixMarket coordinate files —
// each optionally gzip-compressed, detected from the stream's magic
// bytes. Read/Write take an explicit Format; ReadFile/WriteFile resolve
// the format from the file extension (with a content sniff as the read
// fallback) and handle compression. Readers stream line-by-line into
// the parallel graph.Builder, so a parsed instance is bit-identical to
// one constructed in-process from the same edge set. The full grammar,
// limits and error behavior of every format are documented in
// docs/formats.md.
//
// The native edge-list dialect is: an optional header line "n <count>",
// then one "u v" pair per line (0-based vertex ids); '#' starts a
// comment. Without a header, n is one plus the largest vertex id seen.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"mpcgraph/internal/graph"
)

// ReadEdgeList parses the edge-list format from r.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var (
		edges   [][2]int32
		n       = -1
		maxSeen = int32(-1)
		lineNo  int
	)
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: header must be 'n <count>'", lineNo)
			}
			v, err := parseVertexCount(fields[1], lineNo)
			if err != nil {
				return nil, err
			}
			n = v
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphio: line %d: want 'u v', got %q", lineNo, line)
		}
		u, err := parseVertex(fields[0], 0, -1, lineNo)
		if err != nil {
			return nil, err
		}
		v, err := parseVertex(fields[1], 0, -1, lineNo)
		if err != nil {
			return nil, err
		}
		if u == v {
			return nil, fmt.Errorf("graphio: line %d: self-loop at %d", lineNo, u)
		}
		if u > maxSeen {
			maxSeen = u
		}
		if v > maxSeen {
			maxSeen = v
		}
		edges = append(edges, [2]int32{u, v})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if n < 0 {
		n = int(maxSeen) + 1
	}
	if int(maxSeen) >= n {
		return nil, fmt.Errorf("graphio: vertex %d out of range for declared n=%d", maxSeen, n)
	}
	return graph.FromEdges(n, edges)
}

// WriteEdgeList writes g in the edge-list format with a header line.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.NumVertices()); err != nil {
		return err
	}
	var writeErr error
	g.ForEachEdge(func(u, v int32) {
		if writeErr == nil {
			_, writeErr = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}
