package mis

import (
	"fmt"

	"mpcgraph/internal/congest"
	"mpcgraph/internal/graph"
	"mpcgraph/internal/machine/meter"
	"mpcgraph/internal/par"
)

// cliqueMISMeter charges the Section 3.2 CONGESTED-CLIQUE deployment:
// the lowest-id player draws the permutation and scatters positions,
// per phase the in-range players Lenzen-route their in-range edges to
// the leader (chunked at the scheme's n-word receive limit), verdicts
// scatter and new MIS members notify their neighbors, the sparsified
// dynamics cost one round per iteration (desire level and mark fit one
// word per neighbor), and the shattered residue Lenzen-routes to the
// leader followed by a final verdict scatter.
type cliqueMISMeter struct {
	q       *congest.Clique
	g       *graph.Graph
	workers int
}

func newCliqueMISMeter(g *graph.Graph, opts Options) (*cliqueMISMeter, error) {
	q, err := congest.New(congest.Config{
		Players:         g.NumVertices(),
		PairBudgetWords: 1,
		Strict:          opts.Strict,
		Workers:         opts.Workers,
		Ctx:             opts.Ctx,
		Trace:           opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &cliqueMISMeter{q: q, g: g, workers: opts.Workers}, nil
}

// Setup charges the permutation distribution: the leader scatters
// positions (one round), then every player broadcasts its position so
// everyone knows the order (one round) — the setup of §3.2.
func (cm *cliqueMISMeter) Setup() error {
	n := cm.q.Players()
	if err := cm.q.ChargeRound(1, int64(n-1), 1, int64(n-1)); err != nil {
		return fmt.Errorf("scatter permutation: %w", err)
	}
	if err := cm.q.ChargeRound(1, int64(n-1), int64(n-1), int64(n)*int64(n-1)); err != nil {
		return fmt.Errorf("broadcast positions: %w", err)
	}
	return nil
}

// TinyCapacity is 0: the clique leader is a player with the same O(n)
// Lenzen budget every phase already uses, so there is no gather-all
// shortcut distinct from the ordinary final gather.
func (cm *cliqueMISMeter) TinyCapacity() int64 { return 0 }

// ResidualLimit is one Lenzen invocation's receive budget.
func (cm *cliqueMISMeter) ResidualLimit() int64 { return int64(cm.q.Players()) }

// lenzenGatherChunks routes total words to the leader in chunks of at
// most n words, maxOut being the largest per-player contribution.
func (cm *cliqueMISMeter) lenzenGatherChunks(total, maxOut int64) error {
	n := int64(cm.q.Players())
	for remaining := total; ; {
		chunk := remaining
		if chunk > n {
			chunk = n
		}
		if err := cm.q.ChargeLenzen(min(maxOut, chunk), chunk, chunk); err != nil {
			return err
		}
		remaining -= chunk
		if remaining <= 0 {
			return nil
		}
	}
}

// PhaseGather: every in-range vertex ships its in-range incident edges
// (2 words each, counted once for the smaller endpoint) plus its own
// id. The scan is read-only, so it fans out with integer accumulators
// merged in shard order.
func (cm *cliqueMISMeter) PhaseGather(r int, inRange func(v int32) bool) (int, int64, error) {
	g := cm.g
	type volAcc struct {
		total, maxOut, edgeWords int64
		vertices                 int
	}
	acc := par.Reduce(cm.workers, g.NumVertices(), func(lo, hi, _ int) volAcc {
		var a volAcc
		for u := int32(lo); u < int32(hi); u++ {
			if !inRange(u) {
				continue
			}
			a.vertices++
			var out int64 = 1 // its own id
			for _, v := range g.Neighbors(u) {
				if u < v && inRange(v) {
					out += 2
				}
			}
			a.total += out
			a.edgeWords += out - 1
			if out > a.maxOut {
				a.maxOut = out
			}
		}
		return a
	}, func(a, b volAcc) volAcc {
		a.total += b.total
		a.edgeWords += b.edgeWords
		a.vertices += b.vertices
		if b.maxOut > a.maxOut {
			a.maxOut = b.maxOut
		}
		return a
	})
	if err := cm.lenzenGatherChunks(acc.total, acc.maxOut); err != nil {
		return acc.vertices, acc.edgeWords, fmt.Errorf("phase Lenzen gather at rank %d: %w", r, err)
	}
	return acc.vertices, acc.edgeWords, nil
}

// PhaseCommit: the leader scatters verdicts (one word per player), then
// new MIS members notify their neighbors (one word per incident pair).
func (cm *cliqueMISMeter) PhaseCommit(r int, newMIS []int32) error {
	n := cm.q.Players()
	if err := cm.q.ChargeRound(1, int64(n-1), 1, int64(n-1)); err != nil {
		return fmt.Errorf("phase scatter at rank %d: %w", r, err)
	}
	var notifyMax, notifyTotal int64
	for _, v := range newMIS {
		deg := int64(cm.g.Degree(v))
		notifyTotal += deg
		if deg > notifyMax {
			notifyMax = deg
		}
	}
	if err := cm.q.ChargeRound(1, notifyMax, notifyMax, notifyTotal); err != nil {
		return fmt.Errorf("phase notify at rank %d: %w", r, err)
	}
	return nil
}

// DynamicsRound charges one dynamics iteration: one word per live edge
// direction (desire level and mark packed).
func (cm *cliqueMISMeter) DynamicsRound(alive []bool) error {
	maxDeg, edges := aliveDegreeProfile(cm.g, alive, cm.workers)
	if err := cm.q.ChargeRound(1, int64(maxDeg), int64(maxDeg), 2*edges); err != nil {
		return fmt.Errorf("dynamics round: %w", err)
	}
	return nil
}

// FinalGather routes the alive-induced residue to the leader in n-word
// chunks, then the leader scatters the final verdicts.
func (cm *cliqueMISMeter) FinalGather(alive []bool) error {
	g := cm.g
	n := cm.q.Players()
	acc := par.Reduce(cm.workers, g.NumVertices(), func(lo, hi, _ int) [2]int64 {
		var a [2]int64
		for u := int32(lo); u < int32(hi); u++ {
			if !alive[u] {
				continue
			}
			var out int64 = 1
			for _, v := range g.Neighbors(u) {
				if u < v && alive[v] {
					out += 2
				}
			}
			a[0] += out
			if out > a[1] {
				a[1] = out
			}
		}
		return a
	}, func(a, b [2]int64) [2]int64 {
		a[0] += b[0]
		if b[1] > a[1] {
			a[1] = b[1]
		}
		return a
	})
	if err := cm.lenzenGatherChunks(acc[0], acc[1]); err != nil {
		return fmt.Errorf("residual Lenzen gather: %w", err)
	}
	if err := cm.q.ChargeRound(1, int64(n-1), 1, int64(n-1)); err != nil {
		return fmt.Errorf("final scatter: %w", err)
	}
	return nil
}

func (cm *cliqueMISMeter) SetActive(vertices int) { cm.q.SetActive(vertices) }

func (cm *cliqueMISMeter) Costs() meter.Costs {
	met := cm.q.Metrics()
	return meter.FoldCosts(met.Rounds, met.MaxPlayerIn, met.MaxPlayerOut, met.TotalWords, met.Violations)
}

func (cm *cliqueMISMeter) Close() { cm.q.Close() }

// aliveDegreeProfile returns the maximum alive-induced degree and the
// number of alive-induced edges.
func aliveDegreeProfile(g *graph.Graph, alive []bool, workers int) (maxDeg int, edges int64) {
	type profAcc struct {
		maxDeg int
		edges  int64
	}
	acc := par.Reduce(workers, g.NumVertices(), func(lo, hi, _ int) profAcc {
		var a profAcc
		for u := int32(lo); u < int32(hi); u++ {
			if !alive[u] {
				continue
			}
			deg := 0
			for _, v := range g.Neighbors(u) {
				if alive[v] {
					deg++
					if u < v {
						a.edges++
					}
				}
			}
			if deg > a.maxDeg {
				a.maxDeg = deg
			}
		}
		return a
	}, func(a, b profAcc) profAcc {
		if b.maxDeg > a.maxDeg {
			a.maxDeg = b.maxDeg
		}
		a.edges += b.edges
		return a
	})
	return acc.maxDeg, acc.edges
}
