// Social-network scheduling: pick a maximum-size set of creators who can
// all premiere simultaneously, where an edge means two creators share an
// audience and must not clash. This is exactly a maximal independent set
// on a heavy-tailed "shared audience" graph — the workload class
// (MapReduce-scale graphs with power-law degrees) that motivates the
// paper's O(log log Δ) MPC algorithm.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"mpcgraph"
)

// buildAudienceGraph grows a preferential-attachment network: each new
// creator collides with k existing ones, preferring popular creators —
// a standard heavy-tail model a user of the library would write.
func buildAudienceGraph(n, k int) *mpcgraph.Graph {
	b := mpcgraph.NewGraphBuilder(n)
	// Deterministic LCG so the example is reproducible without flags.
	state := uint64(88172645463325252)
	next := func(bound int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(bound))
	}
	targets := []int32{0}
	for v := 1; v < n; v++ {
		added := map[int32]bool{}
		for len(added) < k && len(added) < v {
			t := targets[next(len(targets))]
			if int(t) == v || added[t] {
				t = int32(next(v))
				if int(t) == v || added[t] {
					continue
				}
			}
			added[t] = true
			b.AddEdge(int32(v), t)
			targets = append(targets, t)
		}
		targets = append(targets, int32(v))
	}
	return b.MustBuild()
}

func main() {
	const creators = 20000
	g := buildAudienceGraph(creators, 3)
	fmt.Printf("audience-collision graph: %d creators, %d conflicts, max degree %d (heavy tail)\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// MemoryFactor 4 models machines that cannot hold the whole graph, so
	// the rank-prefix phases actually distribute the work.
	res, err := mpcgraph.MIS(g, mpcgraph.Options{Seed: 2018, Strict: true, MemoryFactor: 4})
	if err != nil {
		log.Fatal(err)
	}
	if !mpcgraph.IsMaximalIndependentSet(g, res.InMIS) {
		log.Fatal("schedule failed validation")
	}
	selected := 0
	for _, in := range res.InMIS {
		if in {
			selected++
		}
	}
	fmt.Printf("schedule: %d creators premiere simultaneously with zero conflicts\n", selected)
	fmt.Printf("cluster cost: %d MPC rounds (%d prefix phases), max %d words on any machine\n",
		res.Stats.Rounds, res.Phases, res.Stats.MaxMachineWords)
	fmt.Printf("for contrast, a Luby-style schedule would need Θ(log n) ≈ 15 rounds of full-graph traffic\n")
}
