package congest

import (
	"errors"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Players: 0, PairBudgetWords: 1}); err == nil {
		t.Error("zero players accepted")
	}
	if _, err := New(Config{Players: 3, PairBudgetWords: 0}); err == nil {
		t.Error("zero budget accepted")
	}
	q, err := New(Config{Players: 4, PairBudgetWords: 1})
	if err != nil || q.Players() != 4 {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestRoundDelivery(t *testing.T) {
	q, _ := New(Config{Players: 3, PairBudgetWords: 2, Strict: true})
	out := make([][]Message, 3)
	out[0] = []Message{{To: 1, Words: 1, Payload: "x"}}
	out[2] = []Message{{To: 1, Words: 2, Payload: "y"}, {To: 0, Words: 1, Payload: "z"}}
	in, err := q.Round(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(in[1]) != 2 || in[1][0].Payload != "x" || in[1][1].Payload != "y" {
		t.Errorf("player 1 inbox = %+v", in[1])
	}
	if len(in[0]) != 1 || in[0][0].From != 2 {
		t.Errorf("player 0 inbox = %+v", in[0])
	}
	m := q.Metrics()
	if m.Rounds != 1 || m.TotalWords != 4 {
		t.Errorf("metrics = %+v", m)
	}
	if m.MaxPlayerOut != 3 || m.MaxPlayerIn != 3 {
		t.Errorf("max out/in = %d/%d, want 3/3", m.MaxPlayerOut, m.MaxPlayerIn)
	}
}

func TestRoundBudgetViolation(t *testing.T) {
	q, _ := New(Config{Players: 2, PairBudgetWords: 1, Strict: true})
	out := make([][]Message, 2)
	out[0] = []Message{{To: 1, Words: 1}, {To: 1, Words: 1}}
	_, err := q.Round(out)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected BudgetError, got %v", err)
	}
	if be.Error() == "" {
		t.Error("empty error string")
	}
}

func TestRoundBudgetNonStrict(t *testing.T) {
	q, _ := New(Config{Players: 2, PairBudgetWords: 1})
	out := make([][]Message, 2)
	out[0] = []Message{{To: 1, Words: 5}}
	if _, err := q.Round(out); err != nil {
		t.Fatalf("non-strict errored: %v", err)
	}
	if q.Metrics().Violations != 1 {
		t.Errorf("violations = %d, want 1", q.Metrics().Violations)
	}
}

func TestRoundRejectsSelfAndInvalid(t *testing.T) {
	q, _ := New(Config{Players: 2, PairBudgetWords: 1})
	if _, err := q.Round([][]Message{{{To: 0, Words: 1}}, nil}); err == nil {
		t.Error("self-message accepted")
	}
	if _, err := q.Round([][]Message{{{To: 9, Words: 1}}, nil}); err == nil {
		t.Error("invalid destination accepted")
	}
	if _, err := q.Round([][]Message{nil}); err == nil {
		t.Error("wrong outbox count accepted")
	}
	if _, err := q.Round([][]Message{{{To: 1, Words: -1}}, nil}); err == nil {
		t.Error("negative words accepted")
	}
}

func TestLenzenRouteWithinLimit(t *testing.T) {
	// 4 players, everyone sends 2 words to player 0: total 6 <= n = 4?
	// No — receive limit is n * budget = 4. Send 1 word each: receive 3.
	q, _ := New(Config{Players: 4, PairBudgetWords: 1, Strict: true})
	out := make([][]Message, 4)
	for i := 1; i < 4; i++ {
		out[i] = []Message{{To: 0, Words: 1, Payload: i}}
	}
	in, err := q.LenzenRoute(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(in[0]) != 3 {
		t.Fatalf("player 0 received %d messages", len(in[0]))
	}
	if q.Metrics().Rounds != 2 {
		t.Errorf("Lenzen routing cost %d rounds, want 2", q.Metrics().Rounds)
	}
}

func TestLenzenRouteSendLimit(t *testing.T) {
	q, _ := New(Config{Players: 3, PairBudgetWords: 1, Strict: true})
	out := make([][]Message, 3)
	out[0] = []Message{{To: 1, Words: 4}} // sends 4 > n = 3
	if _, err := q.LenzenRoute(out); err == nil {
		t.Error("Lenzen send-limit violation accepted")
	}
}

func TestLenzenRouteReceiveLimit(t *testing.T) {
	q, _ := New(Config{Players: 3, PairBudgetWords: 1, Strict: true})
	out := make([][]Message, 3)
	out[0] = []Message{{To: 2, Words: 2}}
	out[1] = []Message{{To: 2, Words: 2}}
	// Player 2 receives 4 > n = 3.
	if _, err := q.LenzenRoute(out); err == nil {
		t.Error("Lenzen receive-limit violation accepted")
	}
}

func TestLenzenRouteSelfDeliveryAllowed(t *testing.T) {
	// Routing a message to yourself is free in reality; the primitive
	// accepts it (From == To) since Lenzen routing is about volume.
	q, _ := New(Config{Players: 2, PairBudgetWords: 1, Strict: true})
	out := make([][]Message, 2)
	out[0] = []Message{{To: 0, Words: 1, Payload: "me"}}
	in, err := q.LenzenRoute(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(in[0]) != 1 || in[0][0].Payload != "me" {
		t.Errorf("self-routing failed: %+v", in[0])
	}
}

func TestAllBroadcast(t *testing.T) {
	q, _ := New(Config{Players: 3, PairBudgetWords: 1, Strict: true})
	payloads := []any{10, 20, 30}
	recv, err := q.AllBroadcast(1, payloads)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			if i == j {
				if recv[j][i] != nil {
					t.Errorf("recv[%d][%d] = %v, want nil", j, i, recv[j][i])
				}
				continue
			}
			if recv[j][i] != payloads[i] {
				t.Errorf("recv[%d][%d] = %v, want %v", j, i, recv[j][i], payloads[i])
			}
		}
	}
	if q.Metrics().Rounds != 1 {
		t.Errorf("AllBroadcast cost %d rounds, want 1", q.Metrics().Rounds)
	}
}

func TestAllBroadcastBudget(t *testing.T) {
	q, _ := New(Config{Players: 3, PairBudgetWords: 1, Strict: true})
	if _, err := q.AllBroadcast(2, make([]any, 3)); err == nil {
		t.Error("oversized broadcast accepted")
	}
	if _, err := q.AllBroadcast(1, make([]any, 2)); err == nil {
		t.Error("wrong payload count accepted")
	}
}

func TestMetricsAccumulation(t *testing.T) {
	q, _ := New(Config{Players: 2, PairBudgetWords: 1})
	for i := 0; i < 3; i++ {
		out := make([][]Message, 2)
		out[0] = []Message{{To: 1, Words: 1}}
		if _, err := q.Round(out); err != nil {
			t.Fatal(err)
		}
	}
	if q.Metrics().Rounds != 3 || q.Metrics().TotalWords != 3 {
		t.Errorf("metrics = %+v", q.Metrics())
	}
}
