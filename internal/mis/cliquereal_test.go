package mis

import (
	"testing"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

func TestRealMessageCliqueMISValid(t *testing.T) {
	families := map[string]*graph.Graph{
		"gnp":      graph.GNP(300, 0.05, rng.New(1)),
		"ring":     graph.Ring(200),
		"star":     graph.Star(150),
		"complete": graph.Complete(40),
		"empty":    graph.Empty(30),
		"powerlaw": graph.PreferentialAttachment(250, 3, rng.New(2)),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			res, err := RealMessageCliqueMIS(g, Options{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if !graph.IsMaximalIndependentSet(g, res.InMIS) {
				t.Error("real-message clique MIS invalid")
			}
		})
	}
}

// TestRealMessageMatchesChargedSimulation is the conformance theorem of
// the whole accounting design: the scalable charge-based clique
// simulation and the fully materialized message-passing execution are
// the same algorithm, so with equal seeds they must produce identical
// independent sets and identical prefix phase structures.
func TestRealMessageMatchesChargedSimulation(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := graph.GNP(400, 0.04, rng.New(seed+30))
		real, err := RealMessageCliqueMIS(g, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		charged, err := RandGreedyCongestedClique(g, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if real.Phases != charged.Phases {
			t.Fatalf("seed %d: phases differ: real %d vs charged %d", seed, real.Phases, charged.Phases)
		}
		if real.SparsifiedIterations != charged.SparsifiedIterations {
			t.Fatalf("seed %d: sparsified iterations differ: %d vs %d",
				seed, real.SparsifiedIterations, charged.SparsifiedIterations)
		}
		for i := range real.PhaseInfos {
			rp, cp := real.PhaseInfos[i], charged.PhaseInfos[i]
			if rp.Rank != cp.Rank || rp.NewMISVertices != cp.NewMISVertices ||
				rp.GatheredVertices != cp.GatheredVertices ||
				rp.GatheredEdgeWords != cp.GatheredEdgeWords {
				t.Fatalf("seed %d phase %d differs: real %+v vs charged %+v", seed, i, rp, cp)
			}
		}
		for v := range real.InMIS {
			if real.InMIS[v] != charged.InMIS[v] {
				t.Fatalf("seed %d: MIS membership differs at vertex %d", seed, v)
			}
		}
	}
}

func TestRealMessageBudgetCompliance(t *testing.T) {
	g := graph.GNP(500, 0.03, rng.New(9))
	res, err := RealMessageCliqueMIS(g, Options{Seed: 11, Strict: true})
	if err != nil {
		t.Fatalf("strict real-message run failed: %v", err)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
}

func TestRealMessageDeterministic(t *testing.T) {
	g := graph.GNP(250, 0.05, rng.New(13))
	a, err := RealMessageCliqueMIS(g, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RealMessageCliqueMIS(g, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds {
		t.Error("round counts differ across identical runs")
	}
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			t.Fatal("MIS differs across identical runs")
		}
	}
}

func TestRealMessageDenseRegime(t *testing.T) {
	// Dense graph: prefix phases carry real weight; all constraints and
	// equivalences must still hold.
	g := graph.GNP(200, 0.3, rng.New(15))
	real, err := RealMessageCliqueMIS(g, Options{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	charged, err := RandGreedyCongestedClique(g, Options{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalIndependentSet(g, real.InMIS) {
		t.Fatal("invalid MIS")
	}
	for v := range real.InMIS {
		if real.InMIS[v] != charged.InMIS[v] {
			t.Fatalf("dense regime: MIS differs at %d", v)
		}
	}
}
