package mpcgraph

import (
	"math"
	"testing"

	"mpcgraph/internal/baseline"
)

// TestScaleLargeInstance exercises the headline claims at the largest
// sweep size of the experiments (n = 2^16, expected degree √n ≈ 8.4M
// edges): the MIS must stay valid with a round count that is flat in n,
// and the matching simulation must stay within its memory audit.
// Skipped under -short.
func TestScaleLargeInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale stress test")
	}
	const n = 1 << 16
	g := RandomGraph(n, 1/math.Sqrt(n), 2018)
	if g.NumEdges() < 4_000_000 {
		t.Fatalf("unexpectedly sparse instance: %d edges", g.NumEdges())
	}

	res, err := MIS(g, Options{Seed: 1, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !IsMaximalIndependentSet(g, res.InMIS) {
		t.Fatal("large-scale MIS invalid")
	}
	if res.Stats.Rounds > 20 {
		t.Errorf("rounds = %d at n=2^16; the O(log log Δ) claim expects ~10", res.Stats.Rounds)
	}
	if res.Stats.MaxMachineWords > int64(16*n) {
		t.Errorf("per-machine load %d exceeds 16n", res.Stats.MaxMachineWords)
	}

	vc, err := ApproxMinVertexCover(g, Options{Seed: 2, Eps: 0.1, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !IsVertexCover(g, vc.InCover) {
		t.Fatal("large-scale cover invalid")
	}
	covered := 0
	for _, in := range vc.InCover {
		if in {
			covered++
		}
	}
	// Weak duality must hold for the reported certificate.
	if vc.FractionalWeight > float64(covered)+1e-6 {
		t.Errorf("dual weight %.0f exceeds cover size %d", vc.FractionalWeight, covered)
	}
	// Quality against the robust lower bound: any maximal matching
	// lower-bounds the optimum cover, so cover/|M| bounds the true ratio
	// from above. (The fractional dual itself can go loose at this scale
	// in dense regimes under the compressed phase schedule — a measured
	// finding measured by experiment E6.)
	m := baseline.GreedyMaximalMatching(g, g.EdgeList())
	if m.Size() == 0 {
		t.Fatal("no matching on a dense graph")
	}
	ratio := float64(covered) / float64(m.Size())
	if ratio > 2.3 {
		t.Errorf("cover %d / matching bound %d = %.2f exceeds the 2+eps envelope", covered, m.Size(), ratio)
	}
}
