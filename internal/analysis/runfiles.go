package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// FilesConfig parameterizes RunFiles: a single synthetic package,
// type-checked against the real dependency closure.
type FilesConfig struct {
	// Dir holds the package's .go files (every .go file is used; names
	// ending in _test.go are treated as test files, so testdata can
	// exercise the analyzers' test-file exemptions).
	Dir string

	// ModulePath and ImportPath place the synthetic package: analyzers
	// that key off module-relative paths (maprange's core-package set,
	// no-wall-clock's allow list) see RelPath derived from these, so a
	// testdata package can impersonate e.g. mpcgraph/internal/registry.
	ModulePath string
	ImportPath string

	// ListDir is where `go list` resolves the imports (any directory
	// inside a module; testdata directories qualify). Defaults to Dir.
	ListDir string

	Analyzers []*Analyzer
	GoCmd     string
}

// RunFiles type-checks the synthetic package described by cfg — its
// imports (standard library or real module packages alike) are loaded
// and type-checked from source exactly as in Run, but only the
// synthetic package is analyzed — then runs the analyzers and applies
// suppressions. It is the engine behind the analysistest harness.
func RunFiles(cfg FilesConfig) (*Result, error) {
	goCmd := cfg.GoCmd
	if goCmd == "" {
		goCmd = "go"
	}
	listDir := cfg.ListDir
	if listDir == "" {
		listDir = cfg.Dir
	}

	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	var fileNames []string
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".go") {
			fileNames = append(fileNames, ent.Name())
		}
	}
	sort.Strings(fileNames)
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", cfg.Dir)
	}

	// A first imports-only parse learns the dependency set to hand to
	// `go list`; the loader then re-parses the files as its own unit.
	importSet := map[string]bool{}
	scratch := token.NewFileSet()
	for _, name := range fileNames {
		f, err := parser.ParseFile(scratch, filepath.Join(cfg.Dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p != "unsafe" && p != "C" {
				importSet[p] = true
			}
		}
	}

	var pkgs []*listPkg
	if len(importSet) > 0 {
		pkgs, err = goList(goCmd, listDir, false, depKeys(importSet)...)
		if err != nil {
			return nil, err
		}
	}
	// Pass an unmatchable module path so every listed package — even a
	// real module package a testdata file imports — is type-checked but
	// not analyzed; the synthetic unit below is the only analysis
	// target. Its key is distinct from its import path so it can
	// impersonate a real package (maprange testdata posing as
	// internal/registry) without shadowing the real one in the import
	// resolution map.
	units, _ := buildUnits(pkgs, "\x00none", false)
	u := &unit{
		key:       cfg.ImportPath + " [synthetic]",
		checkPath: cfg.ImportPath,
		relPath:   RelFromImportPath(cfg.ImportPath, cfg.ModulePath),
		dir:       cfg.Dir,
		files:     fileNames,
		module:    true,
		done:      make(chan struct{}),
	}
	u.testFrom = len(fileNames) // recomputed by name below
	for _, d := range depKeys(importSet) {
		if _, ok := units[d]; ok {
			u.deps = append(u.deps, d)
		}
	}
	units[u.key] = u

	fset := token.NewFileSet()
	if err := checkAll(fset, units); err != nil {
		return nil, err
	}
	// Test files are interleaved by name in the synthetic unit, so mark
	// them by file name rather than by the loader's testFrom split.
	u.tests = map[*ast.File]bool{}
	for _, f := range u.syntax {
		name := filepath.Base(fset.Position(f.Pos()).Filename)
		u.tests[f] = strings.HasSuffix(name, "_test.go")
	}

	mod := &Module{Fset: fset, Path: cfg.ModulePath}
	var findings []Finding
	pass := &Pass{
		Fset:      fset,
		Files:     u.syntax,
		Pkg:       u.tpkg,
		Info:      u.info,
		RelPath:   u.relPath,
		Module:    mod,
		testFiles: u.tests,
		report:    func(f Finding) { findings = append(findings, f) },
	}
	mod.Pkgs = []*Pass{pass}

	for _, a := range cfg.Analyzers {
		if a.Init != nil {
			a.Init(mod)
		}
	}
	for _, a := range cfg.Analyzers {
		pass.rule = a.Name
		a.Run(pass)
	}
	findings = ApplySuppressions(fset, u.syntax, findings)
	sortFindings(findings)
	return &Result{Findings: findings, Module: mod}, nil
}
