package wallclock

// A dot import hides the package qualifier entirely — the other blind
// spot of the old text-matching linter. The type-resolved analyzer
// still sees the reference.

import . "time"

func dotStamp() Time {
	return Now() // want "no-wall-clock: reference to time.Now"
}
