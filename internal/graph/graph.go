// Package graph provides the static graph representation, random graph
// generators, and structural validators shared by every algorithm in the
// reproduction.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected,
// matching the model of the paper. Vertices are identified by dense int32
// indices in [0, n). The core representation is CSR (compressed sparse
// row): an offsets array plus a flattened, per-vertex-sorted adjacency
// array, which gives cache-friendly iteration and O(log deg) edge lookup
// while keeping memory at 2m+n+O(1) words.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph in CSR form.
// The zero value is the empty graph on zero vertices.
type Graph struct {
	n       int
	m       int
	offsets []int32 // length n+1; neighbors of v are adj[offsets[v]:offsets[v+1]]
	adj     []int32 // length 2m; each undirected edge appears twice, lists sorted
}

// NumVertices returns n, the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns m, the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge. Runs in O(log deg(u)).
func (g *Graph) HasEdge(u, v int32) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// MaxDegree returns the maximum vertex degree, or 0 on the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := int32(0); v < int32(g.n); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average vertex degree 2m/n, or 0 when n = 0.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// ForEachEdge calls fn once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v int32)) {
	for u := int32(0); u < int32(g.n); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// EdgeList materializes all undirected edges with u < v, in lexicographic
// order. The result has length NumEdges.
func (g *Graph) EdgeList() [][2]int32 {
	edges := make([][2]int32, 0, g.m)
	g.ForEachEdge(func(u, v int32) { edges = append(edges, [2]int32{u, v}) })
	return edges
}

// EdgeIndex assigns each undirected edge {u,v}, u < v, a dense id in
// [0, m) in lexicographic order, and provides O(log deg) lookup. It is the
// indexing used for per-edge fractional weights x_e.
type EdgeIndex struct {
	g     *Graph
	start []int32 // start[u] = id of the first edge whose smaller endpoint is u
}

// NewEdgeIndex builds the edge index for g in O(n + m).
func NewEdgeIndex(g *Graph) *EdgeIndex {
	start := make([]int32, g.n+1)
	var id int32
	for u := int32(0); u < int32(g.n); u++ {
		start[u] = id
		nb := g.Neighbors(u)
		// Neighbors are sorted, so the ones greater than u form a suffix.
		i := sort.Search(len(nb), func(i int) bool { return nb[i] > u })
		id += int32(len(nb) - i)
	}
	start[g.n] = id
	return &EdgeIndex{g: g, start: start}
}

// ID returns the dense id of edge {u, v}. It panics if the edge does not
// exist, which indicates a logic error in the caller.
func (ix *EdgeIndex) ID(u, v int32) int32 {
	if u > v {
		u, v = v, u
	}
	nb := ix.g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] > u })
	suffix := nb[i:]
	j := sort.Search(len(suffix), func(j int) bool { return suffix[j] >= v })
	if j == len(suffix) || suffix[j] != v {
		panic(fmt.Sprintf("graph: edge {%d,%d} not present", u, v))
	}
	return ix.start[u] + int32(j)
}

// Endpoints returns the endpoints (u < v) of the edge with the given id.
func (ix *EdgeIndex) Endpoints(id int32) (u, v int32) {
	// Binary search over start for the owning vertex.
	lo, hi := 0, ix.g.n
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if ix.start[mid] <= id {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	u = int32(lo)
	nb := ix.g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] > u })
	return u, nb[i+int(id-ix.start[u])]
}

// NumEdges returns the number of indexed edges.
func (ix *EdgeIndex) NumEdges() int { return int(ix.start[ix.g.n]) }

// Subgraph returns the subgraph on the same vertex set containing exactly
// the edges with both endpoints marked in keep. Vertices outside keep
// become isolated; vertex ids are preserved. This is the "remove vertices,
// keep the id space" operation the greedy MIS simulation relies on.
func (g *Graph) Subgraph(keep []bool) *Graph {
	if len(keep) != g.n {
		panic("graph: Subgraph mask has wrong length")
	}
	offsets := make([]int32, g.n+1)
	for u := int32(0); u < int32(g.n); u++ {
		cnt := int32(0)
		if keep[u] {
			for _, v := range g.Neighbors(u) {
				if keep[v] {
					cnt++
				}
			}
		}
		offsets[u+1] = offsets[u] + cnt
	}
	adj := make([]int32, offsets[g.n])
	for u := int32(0); u < int32(g.n); u++ {
		if !keep[u] {
			continue
		}
		w := offsets[u]
		for _, v := range g.Neighbors(u) {
			if keep[v] {
				adj[w] = v
				w++
			}
		}
	}
	return &Graph{n: g.n, m: int(offsets[g.n]) / 2, offsets: offsets, adj: adj}
}

// CompactInduced returns the induced subgraph on the given vertices with a
// fresh dense id space, plus the mapping from new ids back to original
// ids. Vertices must be distinct and in range.
func (g *Graph) CompactInduced(vertices []int32) (*Graph, []int32) {
	inv := make([]int32, g.n)
	for i := range inv {
		inv[i] = -1
	}
	orig := make([]int32, len(vertices))
	for i, v := range vertices {
		if v < 0 || int(v) >= g.n {
			panic(fmt.Sprintf("graph: vertex %d out of range", v))
		}
		if inv[v] != -1 {
			panic(fmt.Sprintf("graph: duplicate vertex %d", v))
		}
		inv[v] = int32(i)
		orig[i] = v
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		for _, w := range g.Neighbors(v) {
			if j := inv[w]; j >= 0 && int32(i) < j {
				b.AddEdge(int32(i), j)
			}
		}
	}
	return b.MustBuild(), orig
}

// LineGraph returns the line graph L(G): one vertex per edge of g, with
// two line-graph vertices adjacent when the underlying edges share an
// endpoint. The edge ids follow NewEdgeIndex(g). This is the classical
// reduction (Luby on L(G) yields a maximal matching of G) discussed in the
// paper's introduction.
func (g *Graph) LineGraph() (*Graph, *EdgeIndex) {
	ix := NewEdgeIndex(g)
	b := NewBuilder(g.m)
	// Edges of L(G): for every vertex, all pairs of incident edges.
	ids := make([]int32, 0, g.MaxDegree())
	for v := int32(0); v < int32(g.n); v++ {
		ids = ids[:0]
		for _, u := range g.Neighbors(v) {
			ids = append(ids, ix.ID(v, u))
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				b.AddEdge(ids[i], ids[j])
			}
		}
	}
	return b.MustBuild(), ix
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	offsets := make([]int32, len(g.offsets))
	copy(offsets, g.offsets)
	adj := make([]int32, len(g.adj))
	copy(adj, g.adj)
	return &Graph{n: g.n, m: g.m, offsets: offsets, adj: adj}
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, maxdeg=%d)", g.n, g.m, g.MaxDegree())
}
