package cli

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/graphio"
	"mpcgraph/internal/model"
	reg "mpcgraph/internal/registry"
	"mpcgraph/internal/service"
)

// remoteSolver adapts a running mpcgraphd into a registry.SolveFunc:
// the instance is uploaded as a (weighted) edge list, the job is
// submitted and polled to completion under the documented retry
// convention, and the Report is reconstructed from the job view plus
// the solution endpoint. Because Solve is deterministic and the wire
// round-trips every Report field the bench tables read (costs,
// violations, solution payloads — floats via shortest-round-trip JSON),
// a remote solve is bit-identical to the in-process call it replaces;
// `mpcgraph bench -remote` leans on exactly that. Wall is left zero:
// wall time is the one field the wire cannot promise to reproduce, and
// no table reads it.
func remoteSolver(server string, retries int, retryBudget time.Duration) reg.SolveFunc {
	return func(ctx context.Context, in reg.Input, p reg.Problem, m model.Model, opts reg.Options) (*reg.Report, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		req, err := uploadRequest(in, p, m, opts)
		if err != nil {
			return nil, err
		}
		// The jitter stream is seeded by the job seed, so one scripted
		// sweep plans one reproducible delay sequence per cell.
		bo := newBackoff(opts.Seed, "remote-solve", 100*time.Millisecond, 5*time.Second, retries, retryBudget)
		var view *service.JobView
		for {
			view, err = postJob(server, req)
			if err == nil {
				break
			}
			var he *httpError
			if !errors.As(err, &he) || !he.retryable() {
				return nil, err
			}
			delay, ok := bo.next(he.retryAfter)
			if !ok {
				return nil, fmt.Errorf("remote solve: %v: %w after %d attempts", err, ErrRetriesExhausted, bo.attempts+1)
			}
			time.Sleep(delay)
		}
		view, err = waitJob(server, view.ID, opts.Seed)
		if err != nil {
			return nil, err
		}
		if view.State != service.StateDone {
			return nil, fmt.Errorf("remote solve: job %s %s: %s", view.ID, view.State, view.Error)
		}
		if view.Report == nil {
			return nil, fmt.Errorf("remote solve: job %s done without a report", view.ID)
		}
		solution, err := getJSON(server, "/v1/jobs/"+view.ID+"/solution")
		if err != nil {
			return nil, err
		}
		return remoteReport(in, p, m, view.Report, string(solution))
	}
}

// uploadRequest serializes the in-process instance as a graph upload.
// Edge lists carry the exact edge set (and, for wel, weights in
// shortest-round-trip float form), so the daemon reconstructs the
// bit-identical instance — and therefore the identical cache key — that
// an in-process run would use.
func uploadRequest(in reg.Input, p reg.Problem, m model.Model, opts reg.Options) (*service.JobRequest, error) {
	var (
		buf    bytes.Buffer
		format graphio.Format
		data   *graphio.Data
	)
	if in.WG != nil {
		format, data = graphio.FormatWeightedEdgeList, graphio.FromWeighted(in.WG)
	} else {
		format, data = graphio.FormatEdgeList, graphio.Unweighted(in.G)
	}
	if err := graphio.Write(&buf, data, format); err != nil {
		return nil, err
	}
	return &service.JobRequest{
		Problem: p.String(),
		Model:   m.String(),
		Graph: &service.GraphRequest{
			Format:  format.String(),
			Content: base64.StdEncoding.EncodeToString(buf.Bytes()),
			Base64:  true,
		},
		Options: service.OptionsRequest{
			Seed:         opts.Seed,
			Eps:          opts.Eps,
			MemoryFactor: opts.MemoryFactor,
			Strict:       opts.Strict,
			Workers:      opts.Workers,
		},
	}, nil
}

// remoteReport reassembles a registry Report from the wire view and the
// rendered solution payload.
func remoteReport(in reg.Input, p reg.Problem, m model.Model, rv *service.ReportView, solution string) (*reg.Report, error) {
	rep := &reg.Report{
		Problem:         p,
		Model:           m,
		Rounds:          rv.Rounds,
		Phases:          rv.Phases,
		MaxMachineWords: rv.MaxMachineWords,
		TotalWords:      rv.TotalWords,
		Violations:      rv.Violations,
	}
	for _, st := range rv.Stages {
		rep.Stages = append(rep.Stages, model.StageCost{Name: st.Name, Rounds: st.Rounds, Words: st.Words})
	}
	n := in.G.NumVertices()
	var err error
	switch p {
	case reg.MIS:
		rep.InMIS, err = parseVertexSet(solution, n)
	case reg.VertexCover:
		rep.InCover, err = parseVertexSet(solution, n)
		if rv.FractionalWeight != nil {
			rep.FractionalWeight = *rv.FractionalWeight
		}
	case reg.WeightedMatching:
		rep.M, err = parseMatching(solution, n)
		if rv.Value != nil {
			rep.Value = *rv.Value
		}
	default:
		rep.M, err = parseMatching(solution, n)
	}
	if err != nil {
		return nil, fmt.Errorf("remote solve: bad solution payload: %w", err)
	}
	return rep, nil
}

// parseVertexSet reads the one-id-per-line solution form.
func parseVertexSet(text string, n int) ([]bool, error) {
	set := make([]bool, n)
	for _, tok := range strings.Fields(text) {
		v, err := strconv.Atoi(tok)
		if err != nil || v < 0 || v >= n {
			return nil, fmt.Errorf("vertex %q out of range [0,%d)", tok, n)
		}
		set[v] = true
	}
	return set, nil
}

// parseMatching reads the "u v" pair-per-line solution form.
func parseMatching(text string, n int) (graph.Matching, error) {
	toks := strings.Fields(text)
	if len(toks)%2 != 0 {
		return nil, fmt.Errorf("odd token count %d in matching payload", len(toks))
	}
	match := graph.NewMatching(n)
	for i := 0; i < len(toks); i += 2 {
		u, err1 := strconv.Atoi(toks[i])
		v, err2 := strconv.Atoi(toks[i+1])
		if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("edge %q %q out of range [0,%d)", toks[i], toks[i+1], n)
		}
		match.Match(int32(u), int32(v))
	}
	return match, nil
}
