package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The histograms use one fixed, log-spaced bucket layout: upper bounds
// at 1µs·2^i for i = 0..numFiniteBuckets-1 (1µs up to ~134s), plus the
// implicit +Inf bucket. One layout for every metric keeps exposition
// cheap (no per-histogram bound storage), makes cross-metric quantiles
// comparable, and lets `mpcgraph top` merge label sets by summing
// bucket counts without re-bucketing. Doubling bounds bound the
// quantile estimation error at one bucket width — a factor of 2 in the
// worst case — which is the right resolution for latency percentiles
// (the interesting differences are orders of magnitude, not percents).
const numFiniteBuckets = 28

// baseBucketNanos is the first upper bound: 1µs in nanoseconds.
const baseBucketNanos = 1000

// BucketBounds returns the finite upper bounds in seconds, ascending.
// The slice is freshly allocated; callers may keep it.
func BucketBounds() []float64 {
	bounds := make([]float64, numFiniteBuckets)
	for i := range bounds {
		bounds[i] = float64(int64(baseBucketNanos)<<uint(i)) / 1e9
	}
	return bounds
}

// bucketIndex returns the bucket for a duration of nanos nanoseconds:
// the smallest i with nanos <= 1000·2^i, or numFiniteBuckets (+Inf)
// when it exceeds the last finite bound. ceil(nanos/1000) rounded up
// to a power of two is exactly bits.Len64 of the predecessor.
func bucketIndex(nanos int64) int {
	if nanos <= baseBucketNanos {
		return 0
	}
	q := (uint64(nanos) + baseBucketNanos - 1) / baseBucketNanos
	i := bits.Len64(q - 1)
	if i >= numFiniteBuckets {
		return numFiniteBuckets
	}
	return i
}

// Histogram is a lock-free fixed-bucket latency histogram: Observe is
// two atomic adds, cheap enough for any request path (though the solve
// path still records only at Solve boundaries, never per metered
// round). The zero value is ready to use.
type Histogram struct {
	counts [numFiniteBuckets + 1]atomic.Uint64 // per-bucket; last is +Inf
	sum    atomic.Int64                        // nanoseconds
}

// Observe records one duration. Negative durations (a clock that
// jumped mid-measurement can in principle produce one through a
// non-monotonic source; ours are monotonic) clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d.Nanoseconds())].Add(1)
	h.sum.Add(d.Nanoseconds())
}

// Snapshot is a point-in-time copy of a histogram: per-bucket (not
// cumulative) counts over the shared bucket layout. Reads are atomic
// per bucket but not a consistent cut across buckets — an Observe
// racing the snapshot may appear in the count but not yet the sum, or
// vice versa. For monitoring that skew is at most the in-flight
// observations; nothing here feeds audited costs.
type Snapshot struct {
	Bounds     []float64 // finite upper bounds in seconds, ascending
	Counts     []uint64  // len(Bounds)+1; last is the +Inf bucket
	SumSeconds float64
	Count      uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{Bounds: BucketBounds(), Counts: make([]uint64, numFiniteBuckets+1)}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.SumSeconds = float64(h.sum.Load()) / 1e9
	return s
}

// Sub returns the per-bucket difference s - prev: the observations
// recorded between the two snapshots. `mpcgraph top` quantiles these
// deltas so the percentiles describe the last interval, not the
// process lifetime.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Bounds:     s.Bounds,
		Counts:     make([]uint64, len(s.Counts)),
		SumSeconds: s.SumSeconds - prev.SumSeconds,
	}
	for i := range s.Counts {
		c := s.Counts[i]
		if i < len(prev.Counts) && prev.Counts[i] <= c {
			c -= prev.Counts[i]
		}
		out.Counts[i] = c
		out.Count += c
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) in seconds by linear
// interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes. The estimate is
// within one bucket width of the exact value; observations beyond the
// last finite bound report that bound. An empty snapshot reports 0.
func (s Snapshot) Quantile(q float64) float64 {
	return quantileFromBuckets(s.Bounds, s.Counts, s.Count, q)
}

// quantileFromBuckets is the shared interpolation over per-bucket
// counts, reused by the promtext side for parsed exposition data.
func quantileFromBuckets(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	if target < 1 {
		target = 1 // the rank of the first observation
	}
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i >= len(bounds) {
				// +Inf bucket: the best point estimate is the largest
				// finite bound.
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			return lo + (hi-lo)*(target-cum)/float64(c)
		}
		cum = next
	}
	return bounds[len(bounds)-1]
}

// HistogramVec is a histogram family sharing one name and label-key
// set, one child histogram per label-value tuple. With is the hot
// call: an RLock map probe on the established path, a short exclusive
// section only the first time a tuple appears.
type HistogramVec struct {
	name   string
	help   string
	labels []string

	mu       sync.RWMutex
	children map[string]*vecChild
}

type vecChild struct {
	values []string
	hist   Histogram
}

// With returns the child histogram for the given label values (their
// order matches the label keys the vec was registered with). It panics
// on an arity mismatch — that is a programming error, not input.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return &c.hist
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c == nil {
		c = &vecChild{values: append([]string(nil), values...)}
		v.children[key] = c
	}
	return &c.hist
}

// Registry holds histogram families for exposition. Families render in
// registration order; children render sorted by label values, so one
// state always exposes one byte stream.
type Registry struct {
	mu   sync.Mutex
	vecs []*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Histogram registers (or returns the existing) family under name.
// Re-registration must repeat the same label keys.
func (r *Registry) Histogram(name, help string, labels ...string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range r.vecs {
		if v.name == name {
			if len(v.labels) != len(labels) {
				panic(fmt.Sprintf("obs: %s re-registered with different labels", name))
			}
			return v
		}
	}
	v := &HistogramVec{
		name:     name,
		help:     help,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*vecChild),
	}
	r.vecs = append(r.vecs, v)
	return v
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format: # HELP / # TYPE histogram, cumulative
// _bucket series with an le label per bound plus le="+Inf", then _sum
// and _count per child.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	vecs := append([]*HistogramVec(nil), r.vecs...)
	r.mu.Unlock()
	bounds := BucketBounds()
	for _, v := range vecs {
		v.writeProm(w, bounds)
	}
}

func (v *HistogramVec) writeProm(w io.Writer, bounds []float64) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	children := make([]*vecChild, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		children = append(children, v.children[k])
	}
	v.mu.RUnlock()
	if len(children) == 0 {
		return // a family no one observed yet exposes nothing
	}
	fmt.Fprintf(w, "# HELP %s %s\n", v.name, v.help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", v.name)
	for _, c := range children {
		snap := c.hist.Snapshot()
		cum := uint64(0)
		for i, bound := range bounds {
			cum += snap.Counts[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", v.name, v.labelPairs(c.values, formatBound(bound)), cum)
		}
		cum += snap.Counts[len(bounds)]
		fmt.Fprintf(w, "%s_bucket%s %d\n", v.name, v.labelPairs(c.values, "+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", v.name, v.labelPairs(c.values, ""), strconv.FormatFloat(snap.SumSeconds, 'g', -1, 64))
		fmt.Fprintf(w, "%s_count%s %d\n", v.name, v.labelPairs(c.values, ""), snap.Count)
	}
}

// formatBound renders a bucket bound so it parses back to the same
// float64 ('g', full precision).
func formatBound(bound float64) string {
	return strconv.FormatFloat(bound, 'g', -1, 64)
}

// labelPairs renders the label block for one series: the vec's own
// labels in key order plus, when le is non-empty, the bucket bound.
func (v *HistogramVec) labelPairs(values []string, le string) string {
	if len(values) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, key := range v.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q produces exactly the \\, \" and \n escaping the text format
		// wants (and keeps any other control byte visible); the promtext
		// parser unquotes with strconv.Unquote, its inverse.
		fmt.Fprintf(&b, "%s=%q", key, values[i])
	}
	if le != "" {
		if len(values) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}
