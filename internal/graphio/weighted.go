package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"mpcgraph/internal/graph"
)

// Weighted edge list: the native edge-list dialect with a third
// positive-real weight column.
//
//	# <comment>
//	n <count>           (optional header; otherwise n = 1 + max id seen)
//	<u> <v> <w>         (0-based endpoints, w > 0)
//
// Duplicate edges are collapsed and must agree on the weight.
// See docs/formats.md.

func readWeightedEdgeList(r io.Reader) (*Data, error) {
	sc := newScanner(r)
	var (
		edges   [][2]int32
		weights []float64
		n       = -1
		maxSeen = int32(-1)
		lineNo  int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: header must be 'n <count>'", lineNo)
			}
			v, err := parseVertexCount(fields[1], lineNo)
			if err != nil {
				return nil, err
			}
			n = v
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graphio: line %d: want 'u v w', got %q", lineNo, line)
		}
		u, err := parseVertex(fields[0], 0, -1, lineNo)
		if err != nil {
			return nil, err
		}
		v, err := parseVertex(fields[1], 0, -1, lineNo)
		if err != nil {
			return nil, err
		}
		if u == v {
			return nil, fmt.Errorf("graphio: line %d: self-loop at %d", lineNo, u)
		}
		wt, err := parseWeight(fields[2], lineNo)
		if err != nil {
			return nil, err
		}
		if u > maxSeen {
			maxSeen = u
		}
		if v > maxSeen {
			maxSeen = v
		}
		edges = append(edges, [2]int32{u, v})
		weights = append(weights, wt)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if n < 0 {
		n = int(maxSeen) + 1
	}
	if int(maxSeen) >= n {
		return nil, fmt.Errorf("graphio: vertex %d out of range for declared n=%d", maxSeen, n)
	}
	return assembleWeighted(n, edges, weights)
}

func writeWeightedEdgeList(w io.Writer, wg *graph.Weighted) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", wg.NumVertices()); err != nil {
		return err
	}
	if err := forEachWeightedEdge(wg, func(u, v int32, wt float64) error {
		_, err := fmt.Fprintf(bw, "%d %d %s\n", u, v, formatWeight(wt))
		return err
	}); err != nil {
		return err
	}
	return bw.Flush()
}
