// Marketplace assignment: advertisers bid on ad slots; each advertiser
// takes at most one slot and each slot serves at most one advertiser.
// Unweighted: maximize the number of filled slots with the paper's (1+ε)
// matching (Corollary 1.3). Weighted: maximize revenue with the (2+ε)
// weighted matching (Corollary 1.4).
//
//	go run ./examples/marketplace
package main

import (
	"fmt"
	"log"

	"mpcgraph"
)

const (
	advertisers = 3000
	slots       = 2500
	bidsPer     = 6
)

func main() {
	n := advertisers + slots
	b := mpcgraph.NewGraphBuilder(n)
	state := uint64(0x9e3779b97f4a7c15)
	next := func(bound int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(bound))
	}
	// Each advertiser bids on a handful of slots; bid values in cents.
	type bid struct {
		adv, slot int32
		cents     int
	}
	var bids []bid
	seen := map[[2]int32]bool{}
	for a := 0; a < advertisers; a++ {
		for k := 0; k < bidsPer; k++ {
			s := int32(advertisers + next(slots))
			key := [2]int32{int32(a), s}
			if seen[key] {
				continue
			}
			seen[key] = true
			b.AddEdge(int32(a), s)
			bids = append(bids, bid{adv: int32(a), slot: s, cents: 50 + next(950)})
		}
	}
	g := b.MustBuild()
	fmt.Printf("marketplace: %d advertisers, %d slots, %d bids\n", advertisers, slots, g.NumEdges())

	// Fill as many slots as possible: (1+eps) maximum matching.
	fill, err := mpcgraph.OnePlusEpsMatching(g, mpcgraph.Options{Seed: 1, Eps: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	if !mpcgraph.IsMatching(g, fill.M) {
		log.Fatal("assignment failed validation")
	}
	fmt.Printf("coverage objective: %d / %d slots filled (within 1.05 of optimal), %d simulated rounds\n",
		fill.M.Size(), slots, fill.Stats.Rounds)

	// Maximize revenue: weighted matching over the bid values.
	weights := make([]float64, 0, len(bids))
	// Edge-index order is lexicographic (advertiser, slot); rebuild the
	// per-edge weights in that order.
	cents := map[[2]int32]int{}
	for _, bd := range bids {
		cents[[2]int32{bd.adv, bd.slot}] = bd.cents
	}
	g.ForEachEdge(func(u, v int32) {
		weights = append(weights, float64(cents[[2]int32{u, v}]))
	})
	wg, err := mpcgraph.NewWeightedGraph(g, weights)
	if err != nil {
		log.Fatal(err)
	}
	rev := mpcgraph.ApproxMaxWeightedMatching(wg, mpcgraph.Options{Seed: 2, Eps: 0.1})
	if !mpcgraph.IsMatching(g, rev.M) {
		log.Fatal("revenue assignment failed validation")
	}
	fmt.Printf("revenue objective: %d assignments worth $%.2f (within 2.1 of optimal)\n",
		rev.M.Size(), rev.Value/100)
}
