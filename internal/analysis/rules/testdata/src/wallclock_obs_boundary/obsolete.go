// Package obsolete poses as mpcgraph/internal/obsolete: a path that
// merely shares the "internal/obs" prefix as a string but is a
// different package, so the allow list's path-segment matching must
// still flag it.
package obsolete

import "time"

func stamp() time.Time {
	return time.Now() // want "no-wall-clock: reference to time.Now"
}
