package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mpcgraph/internal/graph"
)

// MatrixMarket coordinate format, reading a square sparse matrix as the
// adjacency matrix of an undirected graph:
//
//	%%MatrixMarket matrix coordinate <field> <symmetry>
//	% <comment>
//	<rows> <cols> <nnz>
//	<i> <j> [<value>]     (1-based; nnz entry lines)
//
// field must be pattern (unweighted), real or integer (weighted;
// values must be positive); symmetry must be symmetric or general. The
// matrix must be square; diagonal entries (self-loops) are rejected;
// under general symmetry the two orientations of an edge are collapsed
// and must agree on the value. Exactly nnz entry lines are required.
// See docs/formats.md.

func readMatrixMarket(r io.Reader) (*Data, error) {
	sc := newScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
		return nil, fmt.Errorf("graphio: missing MatrixMarket banner")
	}
	lineNo := 1
	banner := strings.Fields(strings.ToLower(sc.Text()))
	if len(banner) != 5 || banner[0] != "%%matrixmarket" || banner[1] != "matrix" || banner[2] != "coordinate" {
		return nil, fmt.Errorf("graphio: line 1: want '%%%%MatrixMarket matrix coordinate <field> <symmetry>', got %q", sc.Text())
	}
	var weighted bool
	switch banner[3] {
	case "pattern":
	case "real", "integer":
		weighted = true
	default:
		return nil, fmt.Errorf("graphio: line 1: unsupported MatrixMarket field %q (want pattern, real or integer)", banner[3])
	}
	switch banner[4] {
	case "symmetric", "general":
	default:
		return nil, fmt.Errorf("graphio: line 1: unsupported MatrixMarket symmetry %q (want symmetric or general)", banner[4])
	}

	// Size line: first non-comment, non-blank line after the banner.
	var size []string
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		size = strings.Fields(line)
		break
	}
	if size == nil {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
		return nil, fmt.Errorf("graphio: missing MatrixMarket size line")
	}
	if len(size) != 3 {
		return nil, fmt.Errorf("graphio: line %d: want '<rows> <cols> <nnz>', got %q", lineNo, strings.Join(size, " "))
	}
	n, err := parseVertexCount(size[0], lineNo)
	if err != nil {
		return nil, err
	}
	cols, err := strconv.ParseInt(size[1], 10, 64)
	if err != nil || cols < 0 {
		return nil, fmt.Errorf("graphio: line %d: bad column count %q", lineNo, size[1])
	}
	if int64(n) != cols {
		return nil, fmt.Errorf("graphio: line %d: adjacency matrix must be square, got %dx%d", lineNo, n, cols)
	}
	nnz, err := strconv.ParseInt(size[2], 10, 64)
	if err != nil || nnz < 0 {
		return nil, fmt.Errorf("graphio: line %d: bad entry count %q", lineNo, size[2])
	}

	var (
		edges   [][2]int32
		weights []float64
		b       *graph.Builder
		entries int64
	)
	if !weighted {
		b = graph.NewBuilder(n)
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 2
		if weighted {
			want = 3
		}
		if len(fields) != want {
			return nil, fmt.Errorf("graphio: line %d: want %d fields, got %q", lineNo, want, line)
		}
		i, err := parseVertex(fields[0], 1, n, lineNo)
		if err != nil {
			return nil, err
		}
		j, err := parseVertex(fields[1], 1, n, lineNo)
		if err != nil {
			return nil, err
		}
		if i == j {
			return nil, fmt.Errorf("graphio: line %d: diagonal entry (self-loop) at %d", lineNo, i+1)
		}
		entries++
		if entries > nnz {
			return nil, fmt.Errorf("graphio: line %d: more than the declared %d entries", lineNo, nnz)
		}
		if weighted {
			wt, err := parseWeight(fields[2], lineNo)
			if err != nil {
				return nil, err
			}
			edges = append(edges, [2]int32{i, j})
			weights = append(weights, wt)
		} else {
			b.AddEdge(i, j)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if entries != nnz {
		return nil, fmt.Errorf("graphio: %d entries but size line declared %d", entries, nnz)
	}
	if weighted {
		return assembleWeighted(n, edges, weights)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return Unweighted(g), nil
}

// writeMatrixMarket writes the lower triangle of the symmetric adjacency
// matrix: pattern for plain graphs, real for weighted ones.
func writeMatrixMarket(w io.Writer, d *Data) error {
	g := d.G
	bw := bufio.NewWriter(w)
	field := "pattern"
	if d.WG != nil {
		field = "real"
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate %s symmetric\n", field); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", g.NumVertices(), g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var writeErr error
	g.ForEachEdge(func(u, v int32) {
		if writeErr != nil {
			return
		}
		// Lower triangle: row > column, so the larger endpoint leads.
		if d.WG != nil {
			_, writeErr = fmt.Fprintf(bw, "%d %d %s\n", v+1, u+1, formatWeight(d.WG.EdgeWeight(u, v)))
		} else {
			_, writeErr = fmt.Fprintf(bw, "%d %d\n", v+1, u+1)
		}
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}
