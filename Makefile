# Pre-merge check for this repository. `make ci` is the documented gate:
# it checks formatting, vets every package, runs the full test suite
# under the race detector (the determinism tests in parallel_test.go
# double as the parallel-engine oracle; the parity tests in
# solve_test.go pin the deprecated wrappers to Solve), smoke-runs the
# benchmarks, and proves the mpcbench CLI enumerates the algorithm
# registry and that every registered (Problem, Model) pair has a
# working benchmark entry.
#
# Targets:
#   make ci         - fmt + vet + race tests + benchmark smoke + registry smoke
#   make fmt        - fail if any file needs gofmt
#   make test       - fast test suite
#   make race       - full test suite under -race
#   make bench      - full benchmark pass with allocation counts
#   make tables     - regenerate the experiment tables (text) at quick scale
#   make json       - machine-readable experiment rows (BENCH_*.json input)
#   make list-smoke - mpcbench -list + registry/benchmark coverage check

GO ?= go

.PHONY: ci fmt vet test race bench bench-smoke list-smoke tables json

ci: fmt vet race bench-smoke list-smoke

fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./internal/graph/ ./internal/mpc/ ./internal/mis/

list-smoke:
	$(GO) run ./cmd/mpcbench -list
	$(GO) run ./cmd/mpcbench -check

tables:
	$(GO) run ./cmd/mpcbench -quick -trials 1

json:
	$(GO) run ./cmd/mpcbench -quick -trials 1 -json
