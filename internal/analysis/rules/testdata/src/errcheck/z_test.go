package errcheck

import "os"

// Test files are exempt from errcheck: t.Fatal-style handling makes
// the discard explicit enough.
func helperCleanup(path string) {
	os.Remove(path)
}
