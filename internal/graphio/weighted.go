package graphio

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"mpcgraph/internal/graph"
)

// Weighted edge list: the native edge-list dialect with a third
// positive-real weight column.
//
//	# <comment>
//	n <count>           (optional header; otherwise n = 1 + max id seen)
//	<u> <v> <w>         (0-based endpoints, w > 0)
//
// Duplicate edges are collapsed and must agree on the weight.
// See docs/formats.md.

func readWeightedEdgeList(r io.Reader) (*Data, error) {
	return readWELFast(r, 0)
}

// readWELScanner is the bufio.Scanner-based reference reader; the fast
// path in fastread.go is pinned against it by the parity and fuzz
// suites.
func readWELScanner(r io.Reader) (*Data, error) {
	sc := newScanner(r)
	var (
		edges   [][2]int32
		weights []float64
		n       = -1
		maxSeen = int32(-1)
		lineNo  int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: header must be 'n <count>'", lineNo)
			}
			v, err := parseVertexCount(fields[1], lineNo)
			if err != nil {
				return nil, err
			}
			n = v
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graphio: line %d: want 'u v w', got %q", lineNo, line)
		}
		u, err := parseVertex(fields[0], 0, -1, lineNo)
		if err != nil {
			return nil, err
		}
		v, err := parseVertex(fields[1], 0, -1, lineNo)
		if err != nil {
			return nil, err
		}
		if u == v {
			return nil, fmt.Errorf("graphio: line %d: self-loop at %d", lineNo, u)
		}
		wt, err := parseWeight(fields[2], lineNo)
		if err != nil {
			return nil, err
		}
		if u > maxSeen {
			maxSeen = u
		}
		if v > maxSeen {
			maxSeen = v
		}
		edges = append(edges, [2]int32{u, v})
		weights = append(weights, wt)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if n < 0 {
		n = int(maxSeen) + 1
	}
	if int(maxSeen) >= n {
		return nil, fmt.Errorf("graphio: vertex %d out of range for declared n=%d", maxSeen, n)
	}
	return assembleWeighted(n, edges, weights)
}

func writeWeightedEdgeList(w io.Writer, wg *graph.Weighted) error {
	buf := make([]byte, 0, writeFlush+96)
	buf = append(buf, 'n', ' ')
	buf = strconv.AppendInt(buf, int64(wg.NumVertices()), 10)
	buf = append(buf, '\n')
	if err := forEachWeightedEdge(wg, func(u, v int32, wt float64) error {
		buf = strconv.AppendInt(buf, int64(u), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, ' ')
		// AppendFloat('g', -1, 64) renders the same shortest round-trip
		// form as formatWeight.
		buf = strconv.AppendFloat(buf, wt, 'g', -1, 64)
		buf = append(buf, '\n')
		if len(buf) >= writeFlush {
			_, err := w.Write(buf)
			buf = buf[:0]
			return err
		}
		return nil
	}); err != nil {
		return err
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
