package graphio

import (
	"bytes"
	"strings"
	"testing"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := "# comment\nn 4\n0 1\n2 3\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Errorf("n=%d m=%d, want 4, 3", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListInfersN(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 {
		t.Errorf("inferred n = %d, want 6", g.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"self-loop":    "1 1\n",
		"bad-token":    "a b\n",
		"negative":     "-1 2\n",
		"wide-line":    "1 2 3\n",
		"bad-header":   "n x\n",
		"n-too-small":  "n 2\n0 5\n",
		"short-header": "n\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
				t.Errorf("input %q accepted", in)
			}
		})
	}
}

func TestReadEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Error("empty input should give empty graph")
	}
}

func TestRoundTrip(t *testing.T) {
	g := graph.GNP(100, 0.05, rng.New(1))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed graph: %v vs %v", g2, g)
	}
	ok := true
	g.ForEachEdge(func(u, v int32) {
		if !g2.HasEdge(u, v) {
			ok = false
		}
	})
	if !ok {
		t.Error("round trip lost edges")
	}
}
