// Package congest simulates the CONGESTED-CLIQUE model of distributed
// computing [LPPSP03] as used by the paper: n players communicate in
// synchronous rounds, and in each round every player may send O(log n)
// bits — one machine word in this simulator — to every other player.
//
// The simulator meters rounds and per-pair bandwidth, and implements
// Lenzen's routing scheme [Len13] as a constant-round primitive with its
// precondition (no player sends or receives more than n words) validated,
// exactly as the paper invokes it in Section 2.
//
// The round loop, routing and accounting live in internal/machine; this
// package is the clique charge policy over that core: self-sends are
// illegal, plain rounds audit every ordered pair against the per-round
// word budget, and Lenzen routings audit per-player volumes against the
// scheme's n-word limit.
package congest

import (
	"context"
	"errors"
	"fmt"

	"mpcgraph/internal/machine"
	"mpcgraph/internal/model"
	"mpcgraph/internal/par"
)

// Config describes a clique deployment.
type Config struct {
	// Players is n, the number of players (one per vertex).
	Players int
	// PairBudgetWords is how many words each ordered pair may carry per
	// round; 1 corresponds to the standard O(log n)-bit model.
	PairBudgetWords int
	// Strict makes budget violations fail the round.
	Strict bool
	// Workers bounds the goroutines used to process a round's outboxes
	// (0 = all cores, 1 = sequential). Every setting produces identical
	// inboxes, metrics and errors.
	Workers int
	// Ctx, when non-nil, is checked at the start of every round-charging
	// operation; a cancelled context aborts the operation with ctx.Err(),
	// making long simulated runs cancellable between rounds.
	Ctx context.Context
	// Trace, when non-nil, receives one TraceEvent per metered
	// communication step (Round and ChargeRound emit one each; the
	// Lenzen primitives emit one event covering their constant rounds).
	// Tracing never changes results, metrics or errors.
	Trace model.TraceFunc
}

// Metrics aggregates the model costs incurred so far.
type Metrics struct {
	// Rounds counts communication rounds, including the constant-round
	// charges of the routing primitives.
	Rounds int
	// MaxPlayerIn is the largest per-round receive volume of any player.
	MaxPlayerIn int64
	// MaxPlayerOut is the largest per-round send volume of any player.
	MaxPlayerOut int64
	// TotalWords is the total communication volume.
	TotalWords int64
	// Violations counts budget/precondition violations (non-strict mode).
	Violations int
}

// Message is one unit of communication between players.
type Message = machine.Message

// BudgetError reports a violated bandwidth constraint.
type BudgetError struct {
	Round  int
	Detail string
}

// Error implements the error interface.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("congest: round %d: %s", e.Round, e.Detail)
}

// Clique is a simulated CONGESTED-CLIQUE network.
type Clique struct {
	cfg  Config
	core *machine.Core
}

// New validates cfg and returns a fresh clique.
func New(cfg Config) (*Clique, error) {
	if cfg.Players <= 0 {
		return nil, errors.New("congest: need at least one player")
	}
	if cfg.PairBudgetWords <= 0 {
		return nil, errors.New("congest: pair budget must be positive")
	}
	core := machine.NewCore(machine.Config{
		Nodes:   cfg.Players,
		Workers: cfg.Workers,
		Strict:  cfg.Strict,
		Ctx:     cfg.Ctx,
		Trace:   cfg.Trace,
		Name:    "congest",
		Unit:    "player",
	})
	return &Clique{cfg: cfg, core: core}, nil
}

// Players returns n.
func (q *Clique) Players() int { return q.cfg.Players }

// Close releases the clique's pooled routing scratch for reuse by the
// next network. Call it when the metered computation is finished; the
// clique must not be used afterwards. Idempotent.
func (q *Clique) Close() { q.core.Release() }

// Metrics returns a snapshot of the accumulated metrics.
func (q *Clique) Metrics() Metrics {
	m := q.core.Metrics()
	return Metrics{
		Rounds:       m.Rounds,
		MaxPlayerIn:  m.MaxInWords,
		MaxPlayerOut: m.MaxOutWords,
		TotalWords:   m.TotalWords,
		Violations:   m.Violations,
	}
}

// SetActive records the algorithm's current count of undecided vertices,
// reported on subsequent TraceEvents. Observational only.
func (q *Clique) SetActive(vertices int) { q.core.SetActive(vertices) }

// pairErr builds the per-pair budget violation for Round.
func (q *Clique) pairErr(round, from, to int, words, budget int64) error {
	return &BudgetError{
		Round:  round,
		Detail: fmt.Sprintf("pair (%d,%d) carries %d words, budget %d", from, to, words, budget),
	}
}

// lenzenLimit is the per-player volume Lenzen's scheme can route.
func (q *Clique) lenzenLimit() int64 {
	return int64(q.cfg.Players) * int64(q.cfg.PairBudgetWords)
}

// lenzenAudit validates the routing precondition per player.
func (q *Clique) lenzenAudit(round, player int, words int64, in bool) error {
	limit := q.lenzenLimit()
	if words <= limit {
		return nil
	}
	verb := "sends"
	if in {
		verb = "receives"
	}
	return &BudgetError{
		Round:  round,
		Detail: fmt.Sprintf("player %d %s %d words, Lenzen limit %d", player, verb, words, limit),
	}
}

// Round executes one synchronous round. out[i] holds player i's messages;
// the per-ordered-pair budget is enforced. Delivery order is by sender.
// The per-player accounting fans out across Workers goroutines; inboxes,
// metrics and errors are bit-identical for every Workers setting.
func (q *Clique) Round(out [][]Message) ([][]Message, error) {
	if len(out) != q.cfg.Players {
		return nil, fmt.Errorf("congest: Round got %d outboxes for %d players", len(out), q.cfg.Players)
	}
	return q.core.Route(out, machine.RouteSpec{
		Rounds:     1,
		Verb:       "sent",
		ForbidSelf: true,
		PairBudget: int64(q.cfg.PairBudgetWords),
		PairErr:    q.pairErr,
	})
}

// LenzenRoute routes an arbitrary multiset of messages in O(1) rounds
// (charged as two) provided no player sends more than n words and no
// player is the destination of more than n words — the guarantee of
// Lenzen's deterministic routing scheme [Len13]. The precondition is
// validated; violations are findings about the calling algorithm.
func (q *Clique) LenzenRoute(out [][]Message) ([][]Message, error) {
	if len(out) != q.cfg.Players {
		return nil, fmt.Errorf("congest: LenzenRoute got %d outboxes for %d players", len(out), q.cfg.Players)
	}
	return q.core.Route(out, machine.RouteSpec{
		Rounds: 2,
		Verb:   "routes",
		Audit:  q.lenzenAudit,
	})
}

// ChargeRound records one synchronous round with the given volume profile
// without materializing per-message payloads. Algorithms that only need
// cost accounting (round counts, loads) at large n use this instead of
// Round, which is O(#messages). maxPairWords is the largest volume any
// ordered pair carries; maxOut/maxIn are the largest per-player send and
// receive volumes; total is the overall volume.
func (q *Clique) ChargeRound(maxPairWords int, maxOut, maxIn, total int64) error {
	if err := q.core.Interrupted(); err != nil {
		return err
	}
	q.core.AddRounds(1)
	q.core.AddTotal(total)
	q.core.Emit(total)
	q.core.ObserveOut(maxOut)
	q.core.ObserveIn(maxIn)
	if maxPairWords > q.cfg.PairBudgetWords {
		q.core.Violation()
		if q.cfg.Strict {
			return &BudgetError{
				Round:  q.core.Rounds(),
				Detail: fmt.Sprintf("some pair carries %d words, budget %d", maxPairWords, q.cfg.PairBudgetWords),
			}
		}
	}
	return nil
}

// ChargeLenzen records one invocation of Lenzen's routing scheme (two
// rounds) with the given volume profile, validating the scheme's
// precondition that no player sends or receives more than n·budget words.
func (q *Clique) ChargeLenzen(maxOut, maxIn, total int64) error {
	if err := q.core.Interrupted(); err != nil {
		return err
	}
	q.core.AddRounds(2)
	q.core.AddTotal(total)
	q.core.Emit(total)
	q.core.ObserveOut(maxOut)
	q.core.ObserveIn(maxIn)
	limit := q.lenzenLimit()
	if maxOut > limit || maxIn > limit {
		q.core.Violation()
		if q.cfg.Strict {
			return &BudgetError{
				Round:  q.core.Rounds(),
				Detail: fmt.Sprintf("Lenzen volume out=%d in=%d exceeds limit %d", maxOut, maxIn, limit),
			}
		}
	}
	return nil
}

// AllBroadcast has every player send the same wordsEach-sized payload to
// all other players in one round (legal whenever wordsEach fits the pair
// budget). payloads[i] is player i's value; the result received[j][i] is
// payloads[i] for every j != i, nil at i == j.
func (q *Clique) AllBroadcast(wordsEach int, payloads []any) ([][]any, error) {
	n := q.cfg.Players
	if len(payloads) != n {
		return nil, fmt.Errorf("congest: AllBroadcast got %d payloads for %d players", len(payloads), n)
	}
	if err := q.core.Interrupted(); err != nil {
		return nil, err
	}
	if wordsEach > q.cfg.PairBudgetWords {
		q.core.Violation()
		if q.cfg.Strict {
			return nil, &BudgetError{
				Round:  q.core.Rounds() + 1,
				Detail: fmt.Sprintf("broadcast of %d words exceeds pair budget %d", wordsEach, q.cfg.PairBudgetWords),
			}
		}
	}
	q.core.AddRounds(1)
	per := int64(wordsEach) * int64(n-1)
	q.core.AddTotal(per * int64(n))
	q.core.Emit(per * int64(n))
	q.core.ObserveOut(per)
	q.core.ObserveIn(per)
	received := make([][]any, n)
	par.For(q.cfg.Workers, n, func(lo, hi, _ int) {
		for j := lo; j < hi; j++ {
			row := make([]any, n)
			for i := 0; i < n; i++ {
				if i != j {
					row[i] = payloads[i]
				}
			}
			received[j] = row
		}
	})
	return received, nil
}
