// Command mpcmatch computes approximate maximum matchings and minimum
// vertex covers with the paper's O(log log n)-round algorithms.
//
// Deprecated: mpcmatch is a thin shim over the unified mpcgraph CLI; use
//
//	mpcgraph solve -problem approx-matching ...
//	mpcgraph solve -problem vertex-cover ...
//
// which adds every on-disk format, the scenario catalog and JSON
// reports. The shim translates its historical flags onto two `mpcgraph
// solve` runs — note each run loads (or regenerates) the instance
// independently, so large -input files parse twice; call mpcgraph
// directly to avoid that. The shim will not gain new features (see
// CHANGES.md for the deprecation policy).
//
// Usage:
//
//	mpcmatch -input graph.txt                 # (2+eps) matching + cover
//	mpcmatch -n 8192 -p 0.002 -eps 0.05
//	mpcmatch -n 4096 -p 0.004 -one-plus-eps   # Corollary 1.3 boosting
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"mpcgraph/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpcmatch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpcmatch", flag.ContinueOnError)
	var (
		input   = fs.String("input", "", "edge-list file; empty generates G(n,p)")
		n       = fs.Int("n", 1<<12, "vertices for the generated instance")
		p       = fs.Float64("p", 0.004, "edge probability for the generated instance")
		eps     = fs.Float64("eps", 0.1, "approximation slack")
		seed    = fs.Uint64("seed", 1, "random seed")
		onePlus = fs.Bool("one-plus-eps", false, "boost to a (1+eps) matching (Corollary 1.3)")
		strict  = fs.Bool("strict", false, "fail on any memory violation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "mpcmatch: deprecated; use `mpcgraph solve -problem approx-matching` and `-problem vertex-cover`")

	problem := "approx-matching"
	if *onePlus {
		problem = "one-plus-eps-matching"
	}
	common := []string{
		"-seed", strconv.FormatUint(*seed, 10),
		"-eps", strconv.FormatFloat(*eps, 'g', -1, 64),
	}
	if *input != "" {
		common = append(common, "-in", *input, "-format", "el")
	} else {
		// The gnp scenario treats n <= 0 as "use the default size", which
		// would silently swap the historical 0-vertex instance for a
		// 4096-vertex one; fail loudly instead.
		if *n < 1 {
			return fmt.Errorf("-n %d: n must be positive", *n)
		}
		// Preserve the historical RandomGraph clamping: p >= 1 meant the
		// complete graph and p <= 0 the empty one, both legitimate values
		// of the gnp recipe's p parameter.
		prob := *p
		if prob > 1 {
			prob = 1
		}
		if prob < 0 {
			prob = 0
		}
		common = append(common,
			"-scenario", "gnp",
			"-n", strconv.Itoa(*n),
			"-param", "p="+strconv.FormatFloat(prob, 'g', -1, 64),
		)
	}
	if *strict {
		common = append(common, "-strict")
	}
	env := cli.Env{Stdin: os.Stdin, Stdout: os.Stdout, Stderr: os.Stderr}
	if err := cli.Run(append([]string{"solve", "-problem", problem}, common...), env); err != nil {
		return err
	}
	return cli.Run(append([]string{"solve", "-problem", "vertex-cover"}, common...), env)
}
