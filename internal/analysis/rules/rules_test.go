package rules_test

import (
	"path/filepath"
	"testing"

	"mpcgraph/internal/analysis"
	"mpcgraph/internal/analysis/analysistest"
	"mpcgraph/internal/analysis/rules"
)

// The testdata packages impersonate real module import paths (via the
// harness's ImportPath knob) so the path-sensitive analyzers —
// maprange's core-package set, no-wall-clock's allow list — fire or
// stay quiet exactly as they would in the tree they guard.
func TestRules(t *testing.T) {
	cases := []struct {
		dir        string
		importPath string
		analyzers  []*analysis.Analyzer
	}{
		{"norand", "mpcgraph/internal/graph", []*analysis.Analyzer{rules.NewNoMathRand()}},
		{"wallclock", "mpcgraph/internal/mis", []*analysis.Analyzer{rules.NewNoWallClock()}},
		{"wallclock_allowed", "mpcgraph/internal/service", []*analysis.Analyzer{rules.NewNoWallClock()}},
		{"wallclock_main", "mpcgraph/cmd/testdata", []*analysis.Analyzer{rules.NewNoWallClock(), rules.NewNoExit()}},
		{"wallclock_obs", "mpcgraph/internal/obs", []*analysis.Analyzer{rules.NewNoWallClock()}},
		{"wallclock_obs_boundary", "mpcgraph/internal/obsolete", []*analysis.Analyzer{rules.NewNoWallClock()}},
		{"noexit", "mpcgraph/internal/cli", []*analysis.Analyzer{rules.NewNoExit()}},
		{"maprange", "mpcgraph/internal/registry", []*analysis.Analyzer{rules.NewMapRange()}},
		{"maprange_noncore", "mpcgraph/internal/graphio", []*analysis.Analyzer{rules.NewMapRange()}},
		{"lockedio", "mpcgraph/internal/service", []*analysis.Analyzer{rules.NewLockedIO()}},
		{"errcheck", "mpcgraph/internal/graphio", []*analysis.Analyzer{rules.NewErrCheck()}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			analysistest.Run(t, filepath.Join("testdata", "src", tc.dir),
				"mpcgraph", tc.importPath, tc.analyzers...)
		})
	}
}
