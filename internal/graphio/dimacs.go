package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mpcgraph/internal/graph"
)

// DIMACS edge format (the clique/coloring challenge dialect):
//
//	c <comment>
//	p edge <n> <m>
//	e <u> <v>          (1-based endpoints)
//
// The problem line must precede every edge line; exactly m edge lines
// are required (a mismatch indicates a truncated or concatenated file);
// duplicate edges and both orientations are tolerated and collapsed;
// self-loops are rejected. "p col ..." is accepted as a problem-name
// synonym found in older instances. See docs/formats.md.

func readDIMACS(r io.Reader) (*Data, error) {
	sc := newScanner(r)
	var (
		b        *graph.Builder
		n        int
		declared int64 = -1
		edges    int64
		lineNo   int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch line[0] {
		case 'c':
			continue
		case 'p':
			if b != nil {
				return nil, fmt.Errorf("graphio: line %d: duplicate problem line", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || (fields[1] != "edge" && fields[1] != "col") {
				return nil, fmt.Errorf("graphio: line %d: want 'p edge <n> <m>', got %q", lineNo, line)
			}
			nn, err := parseVertexCount(fields[2], lineNo)
			if err != nil {
				return nil, err
			}
			mm, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil || mm < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad edge count %q", lineNo, fields[3])
			}
			n, declared = nn, mm
			b = graph.NewBuilder(n)
		case 'e':
			if b == nil {
				return nil, fmt.Errorf("graphio: line %d: edge before problem line", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return nil, fmt.Errorf("graphio: line %d: want 'e <u> <v>', got %q", lineNo, line)
			}
			u, err := parseVertex(fields[1], 1, n, lineNo)
			if err != nil {
				return nil, err
			}
			v, err := parseVertex(fields[2], 1, n, lineNo)
			if err != nil {
				return nil, err
			}
			if u == v {
				return nil, fmt.Errorf("graphio: line %d: self-loop at %d", lineNo, u+1)
			}
			b.AddEdge(u, v)
			edges++
		default:
			return nil, fmt.Errorf("graphio: line %d: unknown DIMACS line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graphio: missing DIMACS problem line")
	}
	if edges != declared {
		return nil, fmt.Errorf("graphio: %d edge lines but problem line declared %d", edges, declared)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return Unweighted(g), nil
}

func writeDIMACS(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var writeErr error
	g.ForEachEdge(func(u, v int32) {
		if writeErr == nil {
			_, writeErr = fmt.Fprintf(bw, "e %d %d\n", u+1, v+1)
		}
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}
