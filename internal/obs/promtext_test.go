package obs

import (
	"strings"
	"testing"
)

const sampleExposition = `# HELP mpcgraphd_up Whether the daemon is up.
# TYPE mpcgraphd_up gauge
mpcgraphd_up 1
# HELP test_seconds Test histogram.
# TYPE test_seconds histogram
test_seconds_bucket{route="/a",le="0.001"} 1
test_seconds_bucket{route="/a",le="0.01"} 3
test_seconds_bucket{route="/a",le="+Inf"} 4
test_seconds_sum{route="/a"} 0.55
test_seconds_count{route="/a"} 4
`

func TestParseExposition(t *testing.T) {
	e, err := ParseExposition(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Value("mpcgraphd_up"); !ok || v != 1 {
		t.Errorf("up = %v, ok=%v", v, ok)
	}
	if v, ok := e.Value("test_seconds_bucket", "route", "/a", "le", "0.01"); !ok || v != 3 {
		t.Errorf("bucket = %v, ok=%v", v, ok)
	}
	if e.Type["test_seconds"] != "histogram" {
		t.Errorf("TYPE = %q", e.Type["test_seconds"])
	}
	if e.Help["mpcgraphd_up"] != "Whether the daemon is up." {
		t.Errorf("HELP = %q", e.Help["mpcgraphd_up"])
	}
	if errs := ValidateExposition(e); len(errs) != 0 {
		t.Errorf("unexpected violations: %v", errs)
	}
	series := e.Histograms()["test_seconds"]
	if len(series) != 1 {
		t.Fatalf("series = %d, want 1", len(series))
	}
	h := series[0]
	if h.Count != 4 || h.Sum != 0.55 {
		t.Errorf("count=%d sum=%g", h.Count, h.Sum)
	}
	deltas := h.Deltas()
	if len(deltas) != 3 || deltas[0] != 1 || deltas[1] != 2 || deltas[2] != 1 {
		t.Errorf("deltas = %v, want [1 2 1]", deltas)
	}
	snap := h.Snapshot()
	if q := snap.Quantile(0.5); q <= 0.001 || q > 0.01 {
		t.Errorf("parsed median = %g, want in (0.001, 0.01]", q)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"metric_without_value\n",
		`metric{unterminated="x 1` + "\n",
		"metric not_a_number\n",
		"metric 1 1700000000\n", // timestamps are not in our dialect
		`metric{key=unquoted} 1` + "\n",
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseExposition accepted %q", bad)
		}
	}
}

func TestValidateExpositionCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{
			"missing help",
			"# TYPE orphan gauge\norphan 1\n",
			"no # HELP",
		},
		{
			"missing type",
			"# HELP orphan Orphan.\norphan 1\n",
			"no # TYPE",
		},
		{
			"non-monotone buckets",
			"# HELP h H.\n# TYPE h histogram\n" +
				`h_bucket{le="0.1"} 5` + "\n" +
				`h_bucket{le="1"} 3` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\n" +
				"h_sum 1\nh_count 5\n",
			"cumulative-monotone",
		},
		{
			"missing +Inf",
			"# HELP h H.\n# TYPE h histogram\n" +
				`h_bucket{le="0.1"} 5` + "\n" +
				"h_sum 1\nh_count 5\n",
			`missing le="+Inf"`,
		},
		{
			"+Inf != count",
			"# HELP h H.\n# TYPE h histogram\n" +
				`h_bucket{le="0.1"} 5` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\n" +
				"h_sum 1\nh_count 7\n",
			"!= _count",
		},
	}
	for _, c := range cases {
		e, err := ParseExposition(strings.NewReader(c.text))
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		errs := ValidateExposition(e)
		found := false
		for _, err := range errs {
			if strings.Contains(err.Error(), c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v missing %q", c.name, errs, c.want)
		}
	}
}

func TestMergedSnapshot(t *testing.T) {
	text := "# HELP h H.\n# TYPE h histogram\n" +
		`h_bucket{r="a",le="0.001"} 2` + "\n" +
		`h_bucket{r="a",le="+Inf"} 2` + "\n" +
		`h_sum{r="a"} 0.001` + "\n" +
		`h_count{r="a"} 2` + "\n" +
		`h_bucket{r="b",le="0.001"} 0` + "\n" +
		`h_bucket{r="b",le="+Inf"} 3` + "\n" +
		`h_sum{r="b"} 3` + "\n" +
		`h_count{r="b"} 3` + "\n"
	e, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	m := MergedSnapshot(e.Histograms()["h"])
	if m.Count != 5 {
		t.Errorf("merged count = %d, want 5", m.Count)
	}
	if m.SumSeconds != 3.001 {
		t.Errorf("merged sum = %g, want 3.001", m.SumSeconds)
	}
	if MergedSnapshot(nil).Count != 0 {
		t.Error("empty merge not zero")
	}
}
