package mpcgraph_test

import (
	"fmt"
	"reflect"
	"testing"

	"mpcgraph"
	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

// The parallel execution engine's contract is that Workers only trades
// wall-clock time: for a fixed seed, every Workers setting must produce
// bit-identical results. Running these tests under -race also exercises
// the engine's shard disjointness.

// detGraphs returns named deterministic instances spanning the
// generators (random, heavy-tailed, bipartite, structured).
func detGraphs(seed uint64) map[string]*mpcgraph.Graph {
	src := rng.New(seed)
	return map[string]*mpcgraph.Graph{
		"gnp-sparse":   mpcgraph.RandomGraph(3000, 4.0/3000, seed),
		"gnp-dense":    mpcgraph.RandomGraph(600, 0.2, seed+1),
		"powerlaw":     graph.PreferentialAttachment(2000, 3, src.SplitString("pa")),
		"bipartite":    graph.RandomBipartite(800, 800, 0.01, src.SplitString("bip")).Graph,
		"ring":         graph.Ring(2048),
		"complete-256": graph.Complete(256),
	}
}

// workerSweep is the set of Workers values compared against Workers: 1.
var workerSweep = []int{0, 2, 5}

func TestMISDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{3, 2018} {
		for name, g := range detGraphs(seed) {
			want, err := mpcgraph.MIS(g, mpcgraph.Options{Seed: seed, Workers: 1})
			if err != nil {
				t.Fatalf("%s: sequential MIS: %v", name, err)
			}
			for _, w := range workerSweep {
				got, err := mpcgraph.MIS(g, mpcgraph.Options{Seed: seed, Workers: w})
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, w, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s seed=%d: MIS with Workers=%d diverged from Workers=1", name, seed, w)
				}
			}
		}
	}
}

func TestCliqueMISDeterministicAcrossWorkers(t *testing.T) {
	for name, g := range detGraphs(7) {
		want, err := mpcgraph.MISCongestedClique(g, mpcgraph.Options{Seed: 7, Workers: 1})
		if err != nil {
			t.Fatalf("%s: sequential clique MIS: %v", name, err)
		}
		for _, w := range workerSweep {
			got, err := mpcgraph.MISCongestedClique(g, mpcgraph.Options{Seed: 7, Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: clique MIS with Workers=%d diverged from Workers=1", name, w)
			}
		}
	}
}

func TestMatchingDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{11, 99} {
		for name, g := range detGraphs(seed) {
			want, err := mpcgraph.ApproxMaxMatching(g, mpcgraph.Options{Seed: seed, Workers: 1})
			if err != nil {
				t.Fatalf("%s: sequential matching: %v", name, err)
			}
			for _, w := range workerSweep {
				got, err := mpcgraph.ApproxMaxMatching(g, mpcgraph.Options{Seed: seed, Workers: w})
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, w, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s seed=%d: matching with Workers=%d diverged from Workers=1", name, seed, w)
				}
			}
		}
	}
}

func TestVertexCoverDeterministicAcrossWorkers(t *testing.T) {
	for name, g := range detGraphs(23) {
		want, err := mpcgraph.ApproxMinVertexCover(g, mpcgraph.Options{Seed: 23, Workers: 1})
		if err != nil {
			t.Fatalf("%s: sequential cover: %v", name, err)
		}
		for _, w := range workerSweep {
			got, err := mpcgraph.ApproxMinVertexCover(g, mpcgraph.Options{Seed: 23, Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: cover with Workers=%d diverged from Workers=1", name, w)
			}
		}
	}
}

func TestOnePlusEpsDeterministicAcrossWorkers(t *testing.T) {
	g := mpcgraph.RandomGraph(1500, 8.0/1500, 5)
	want, err := mpcgraph.OnePlusEpsMatching(g, mpcgraph.Options{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerSweep {
		got, err := mpcgraph.OnePlusEpsMatching(g, mpcgraph.Options{Seed: 5, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("1+eps matching with Workers=%d diverged from Workers=1", w)
		}
	}
}

// TestGraphConstructorsDeterministicAcrossWorkers pins the graph-layer
// parallel count-then-fill paths to their sequential outputs.
func TestGraphConstructorsDeterministicAcrossWorkers(t *testing.T) {
	g := mpcgraph.RandomGraph(4000, 10.0/4000, 77)
	keep := make([]bool, g.NumVertices())
	var vertices []int32
	src := rng.New(8)
	for i := range keep {
		keep[i] = src.Bool(0.6)
		if i%3 != 0 {
			vertices = append(vertices, int32(i))
		}
	}
	subSeq := g.SubgraphWorkers(keep, 1)
	compSeq, origSeq := g.CompactInducedWorkers(vertices, 1)
	lineSeq, _ := g.LineGraphWorkers(1)
	for _, w := range workerSweep {
		if got := g.SubgraphWorkers(keep, w); !graphEqual(got, subSeq) {
			t.Errorf("Subgraph with workers=%d diverged", w)
		}
		gotComp, gotOrig := g.CompactInducedWorkers(vertices, w)
		if !graphEqual(gotComp, compSeq) || !reflect.DeepEqual(gotOrig, origSeq) {
			t.Errorf("CompactInduced with workers=%d diverged", w)
		}
		if gotLine, _ := g.LineGraphWorkers(w); !graphEqual(gotLine, lineSeq) {
			t.Errorf("LineGraph with workers=%d diverged", w)
		}
	}
}

// graphEqual compares two graphs structurally (vertices, edges, and the
// full sorted adjacency of every vertex).
func graphEqual(a, b *mpcgraph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := int32(0); v < int32(a.NumVertices()); v++ {
		if !reflect.DeepEqual(a.Neighbors(v), b.Neighbors(v)) {
			return false
		}
	}
	return true
}

func ExampleOptions_workers() {
	g := mpcgraph.RandomGraph(512, 0.05, 1)
	seq, _ := mpcgraph.MIS(g, mpcgraph.Options{Seed: 9, Workers: 1})
	all, _ := mpcgraph.MIS(g, mpcgraph.Options{Seed: 9, Workers: 0})
	fmt.Println(reflect.DeepEqual(seq, all))
	// Output: true
}
