package matching

import (
	"context"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/machine/meter"
	"mpcgraph/internal/model"
	"mpcgraph/internal/rng"
)

// MaximalOptions configures MaximalMatching.
type MaximalOptions struct {
	// Seed drives the edge sampling.
	Seed uint64
	// MemoryFactor sets the coordinator memory to MemoryFactor·n words
	// (default 16).
	MemoryFactor float64
	// Strict makes capacity violations fail the run.
	Strict bool
	// Workers bounds goroutine fan-out in the metered backend.
	Workers int
	// Model selects the metered backend; outputs are identical across
	// models.
	Model model.Model
	// Ctx, when non-nil, cancels the run between rounds.
	Ctx context.Context
	// Trace, when non-nil, observes every metered round.
	Trace model.TraceFunc
}

// MaximalResult is the output of MaximalMatching.
type MaximalResult struct {
	// M is the computed maximal matching.
	M graph.Matching
	// Rounds, MaxMachineWords, TotalWords and Violations are the audited
	// model costs.
	Rounds          int
	MaxMachineWords int64
	TotalWords      int64
	Violations      int
	// Stages is the audited per-stage breakdown (one "filtering" entry).
	Stages []model.StageCost
}

// MaximalMatching computes an exact maximal matching with the [LMSV11]
// filtering technique the paper invokes for small-matching instances
// (Section 4.4.5), metered on the selected backend: each filtering round
// ships its edge sample to the coordinator. At S = Θ(n) the round count
// is O(log n) — the baseline regime of Section 1.2 — which is why this
// problem rides the registry next to the paper's O(log log n)
// algorithms.
func MaximalMatching(g *graph.Graph, opts MaximalOptions) (*MaximalResult, error) {
	opts.MemoryFactor = meter.ResolveMemoryFactor(opts.MemoryFactor)
	n := g.NumVertices()
	mt, err := meter.New(opts.Model, meter.Config{
		N:            n,
		MemoryFactor: opts.MemoryFactor,
		Strict:       opts.Strict,
		Workers:      opts.Workers,
		Ctx:          opts.Ctx,
		Trace:        opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	defer mt.Close()
	mt.SetActive(n)
	fr := FilteringMaximalMatching(g, int64(opts.MemoryFactor*float64(n)), rng.New(opts.Seed).SplitString("maximal"))
	for _, w := range fr.RoundWords {
		if err := mt.Gather(w); err != nil {
			return nil, err
		}
	}
	mt.SetActive(0)
	c := mt.Costs()
	res := &MaximalResult{
		M:               fr.M,
		Rounds:          c.Rounds,
		MaxMachineWords: c.MaxMachineWords,
		TotalWords:      c.TotalWords,
		Violations:      c.Violations,
	}
	if c.Rounds > 0 {
		res.Stages = append(res.Stages, model.StageCost{Name: "filtering", Rounds: c.Rounds, Words: c.TotalWords})
	}
	return res, nil
}
