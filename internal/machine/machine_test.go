package machine

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func testCore(nodes, workers int, strict bool) *Core {
	return NewCore(Config{Nodes: nodes, Workers: workers, Strict: strict, Name: "test", Unit: "node"})
}

func pairSpec(budget int64) RouteSpec {
	return RouteSpec{
		Rounds:     1,
		Verb:       "sent",
		ForbidSelf: true,
		PairBudget: budget,
		PairErr: func(round, from, to int, words, budget int64) error {
			return fmt.Errorf("round %d: pair (%d,%d) carries %d words, budget %d", round, from, to, words, budget)
		},
	}
}

// TestRoutePairTalliesSurviveAbortedRound is the regression test for the
// pooled pair-budget scratch: a round aborted mid-sender by a malformed
// message must not leak its partial tallies into later rounds — the
// pre-substrate congest.Round allocated the tally fresh per round, and
// the pooled Core must behave identically.
func TestRoutePairTalliesSurviveAbortedRound(t *testing.T) {
	c := testCore(4, 1, false)
	// Sender 0 tallies one word to node 3, then aborts the round on an
	// invalid destination.
	bad := make([][]Message, 4)
	bad[0] = []Message{{To: 3, Words: 1}, {To: 99, Words: 1}}
	if _, err := c.Route(bad, pairSpec(1)); err == nil {
		t.Fatal("invalid destination accepted")
	}
	// A budget-compliant round must now pass cleanly: one word on the
	// same ordered pair is within budget 1.
	good := make([][]Message, 4)
	good[0] = []Message{{To: 3, Words: 1}}
	if _, err := c.Route(good, pairSpec(1)); err != nil {
		t.Fatalf("clean round failed after aborted round: %v", err)
	}
	if v := c.Metrics().Violations; v != 0 {
		t.Errorf("spurious violations recorded: %d", v)
	}
}

// TestRoutePairBudgetStillEnforced: the per-round zeroing must not relax
// the budget within one round.
func TestRoutePairBudgetStillEnforced(t *testing.T) {
	c := testCore(3, 1, true)
	out := make([][]Message, 3)
	out[0] = []Message{{To: 1, Words: 1}, {To: 1, Words: 1}}
	if _, err := c.Route(out, pairSpec(1)); err == nil {
		t.Fatal("pair budget violation accepted")
	}
	if v := c.Metrics().Violations; v != 1 {
		t.Errorf("violations = %d, want 1", v)
	}
}

// TestRouteDeliveryOrderAndMetrics pins the routing contract: delivery
// ordered by sender then submission order, From stamped, loads audited.
func TestRouteDeliveryOrderAndMetrics(t *testing.T) {
	c := testCore(3, 1, false)
	out := make([][]Message, 3)
	out[2] = []Message{{To: 1, Words: 2, Payload: "late"}}
	out[0] = []Message{{To: 1, Words: 1, Payload: "early"}, {To: 0, Words: 3}}
	in, err := c.Route(out, RouteSpec{Rounds: 1, Verb: "sent"})
	if err != nil {
		t.Fatal(err)
	}
	if len(in[1]) != 2 || in[1][0].Payload != "early" || in[1][1].Payload != "late" {
		t.Fatalf("delivery order wrong: %+v", in[1])
	}
	if in[1][0].From != 0 || in[1][1].From != 2 {
		t.Fatalf("From not stamped: %+v", in[1])
	}
	m := c.Metrics()
	if m.Rounds != 1 || m.TotalWords != 6 || m.MaxOutWords != 4 || m.MaxInWords != 3 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestRouteAuditViolations: the per-node audit counts one violation per
// violating direction and returns the first error in strict mode while
// completing the metrics.
func TestRouteAuditViolations(t *testing.T) {
	audit := func(round, node int, words int64, in bool) error {
		if words > 2 {
			return fmt.Errorf("node %d over", node)
		}
		return nil
	}
	c := testCore(2, 1, true)
	out := make([][]Message, 2)
	out[0] = []Message{{To: 1, Words: 5}}
	_, err := c.Route(out, RouteSpec{Rounds: 1, Verb: "sent", Audit: audit})
	if err == nil {
		t.Fatal("audit violation accepted in strict mode")
	}
	m := c.Metrics()
	if m.Violations != 2 { // outbox of 0 and inbox of 1
		t.Errorf("violations = %d, want 2", m.Violations)
	}
	if m.Rounds != 1 || m.TotalWords != 5 {
		t.Errorf("metrics not committed before strict failure: %+v", m)
	}
}

// TestRouteCancellation: a cancelled context aborts before charging.
func TestRouteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCore(Config{Nodes: 2, Workers: 1, Ctx: ctx, Name: "test", Unit: "node"})
	if _, err := c.Route(make([][]Message, 2), RouteSpec{Rounds: 1, Verb: "sent"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.Metrics().Rounds != 0 {
		t.Error("round charged despite cancellation")
	}
}
