package mis

import (
	"fmt"
	"testing"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

// The cross-model parity suite mirrors the matching family's invariance
// tests on the unified randGreedy trajectory: for the same seeds,
// generators and Workers grid, both models must compute bit-identical
// independent sets with identical phase structure, every model's
// audited costs must be bit-identical across every Workers setting, and
// each per-stage breakdown must sum to the run totals. Run under -race
// (make ci), this doubles as the race check on the machine substrate.

// misParityGraphs is the generator grid shared with the matching suite:
// a sparse random graph, a skewed-degree graph, and a bounded-degree
// structured graph.
func misParityGraphs(seed uint64) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		// Sized so 2m+n exceeds the 16n tiny-input threshold on the two
		// random families (the grid stays small: with max degree 4 it
		// exercises the no-phase sparsified path instead).
		"gnp":          graph.GNP(500, 0.04, rng.New(seed)),
		"preferential": graph.PreferentialAttachment(600, 10, rng.New(seed+1)),
		"grid":         graph.Grid(20, 20),
	}
}

// misRun captures everything the parity assertions compare.
type misRun struct {
	res *Result
}

func (r misRun) costs() string {
	return fmt.Sprintf("rounds=%d phases=%d max=%d total=%d viol=%d spars=%d",
		r.res.Rounds, r.res.Phases, r.res.MaxMachineWords, r.res.TotalWords,
		r.res.Violations, r.res.SparsifiedIterations)
}

// TestMISCrossModelParity is the headline invariance on the default
// configuration: each model's output and audited costs are bit-identical
// across the Workers grid, every output is a valid maximal independent
// set bit-identical to its own pre-refactor behavior (pinned by the
// golden suite), and the rank-prefix phase structure — everything the
// trajectory decides before the deployment-specific residue handover —
// is bit-identical across models.
func TestMISCrossModelParity(t *testing.T) {
	workersGrid := []int{1, 2, 0}
	for _, seed := range []uint64{3, 17, 88} {
		for name, g := range misParityGraphs(seed) {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				ref := make(map[string]misRun) // per model, workers=1 reference
				for _, workers := range workersGrid {
					mpcRun, err := RandGreedyMPC(g, Options{Seed: seed, Workers: workers})
					if err != nil {
						t.Fatalf("mpc workers=%d: %v", workers, err)
					}
					cliqueRun, err := RandGreedyCongestedClique(g, Options{Seed: seed, Workers: workers})
					if err != nil {
						t.Fatalf("clique workers=%d: %v", workers, err)
					}
					for model, run := range map[string]misRun{"mpc": {mpcRun}, "clique": {cliqueRun}} {
						if !graph.IsMaximalIndependentSet(g, run.res.InMIS) {
							t.Fatalf("%s workers=%d: output is not a maximal independent set", model, workers)
						}
						base, ok := ref[model]
						if !ok {
							ref[model] = run
							continue
						}
						for v := range run.res.InMIS {
							if run.res.InMIS[v] != base.res.InMIS[v] {
								t.Fatalf("%s workers=%d: vertex %d differs across Workers", model, workers, v)
							}
						}
						if got, want := run.costs(), base.costs(); got != want {
							t.Errorf("%s workers=%d: costs diverged across Workers\n got: %s\nwant: %s", model, workers, got, want)
						}
						if len(run.res.Stages) != len(base.res.Stages) {
							t.Fatalf("%s workers=%d: stage count diverged", model, workers)
						}
						for i, st := range run.res.Stages {
							if st != base.res.Stages[i] {
								t.Errorf("%s workers=%d: stage %d = %+v, want %+v", model, workers, i, st, base.res.Stages[i])
							}
						}
					}
				}

				// Cross-model: the prefix phases are meter-independent, so
				// their count and instrumentation must agree exactly. (The
				// residue handover threshold is deployment-specific, so the
				// sparsified stage may differ; see
				// TestMISPrefixOnlyCrossModelBitIdentical for the regime
				// where the whole output is provably shared.)
				mpcRef, cliqueRef := ref["mpc"].res, ref["clique"].res
				if mpcRef.Phases != cliqueRef.Phases {
					t.Fatalf("phase count differs across models: mpc %d, clique %d", mpcRef.Phases, cliqueRef.Phases)
				}
				for i := range mpcRef.PhaseInfos {
					if mpcRef.PhaseInfos[i] != cliqueRef.PhaseInfos[i] {
						t.Errorf("phase %d instrumentation differs across models:\n  mpc %+v\n  clique %+v",
							i, mpcRef.PhaseInfos[i], cliqueRef.PhaseInfos[i])
					}
				}
			})
		}
	}
}

// TestMISStagesSumToTotals pins the Report invariant on the unified
// trajectory: the per-stage breakdown accounts for every charged round
// and word in both models.
func TestMISStagesSumToTotals(t *testing.T) {
	g := graph.GNP(700, 0.05, rng.New(23))
	for model, run := range map[string]func() (*Result, error){
		"mpc":    func() (*Result, error) { return RandGreedyMPC(g, Options{Seed: 23}) },
		"clique": func() (*Result, error) { return RandGreedyCongestedClique(g, Options{Seed: 23}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		var rounds int
		var words int64
		for _, st := range res.Stages {
			rounds += st.Rounds
			words += st.Words
		}
		if rounds != res.Rounds || words != res.TotalWords {
			t.Errorf("%s: stages sum to rounds=%d words=%d, totals rounds=%d words=%d",
				model, rounds, words, res.Rounds, res.TotalWords)
		}
	}
}

// TestMISPrefixOnlyCrossModelBitIdentical is the strongest form of the
// cross-model claim: forcing the polylog cutoff to 1 makes the prefix
// phases cover every rank, and there the trajectory is fully
// model-independent — both deployments must output exactly the
// sequential randomized greedy set on the whole grid. (In the default
// configuration the sparsified handover threshold is a deployment
// parameter — leader memory S for MPC, the Lenzen budget n for the
// clique — so on instances whose residue straddles the two thresholds
// the models legitimately run different dynamics iteration counts.)
func TestMISPrefixOnlyCrossModelBitIdentical(t *testing.T) {
	prefixOnly := func(int) int { return 1 }
	for _, seed := range []uint64{3, 17, 88} {
		for name, g := range misParityGraphs(seed) {
			perm := rng.New(seed).SplitString("mis-perm").Perm(g.NumVertices())
			want := SequentialRandGreedy(g, perm)
			for _, workers := range []int{1, 0} {
				opts := Options{Seed: seed, Workers: workers, PolylogDegree: prefixOnly}
				mpcRun, err := RandGreedyMPC(g, opts)
				if err != nil {
					t.Fatalf("%s/seed=%d mpc: %v", name, seed, err)
				}
				cliqueRun, err := RandGreedyCongestedClique(g, opts)
				if err != nil {
					t.Fatalf("%s/seed=%d clique: %v", name, seed, err)
				}
				for v := range want {
					if mpcRun.InMIS[v] != want[v] || cliqueRun.InMIS[v] != want[v] {
						t.Fatalf("%s/seed=%d workers=%d: models diverge from sequential greedy at vertex %d",
							name, seed, workers, v)
					}
				}
			}
		}
	}
}

// TestMISTinyFastPathParity: the MPC gather-all shortcut for inputs
// that fit one machine must not change the computed set — it equals the
// sequential reference, and the clique trajectory agrees whenever its
// own (prefix-only) path covers every rank.
func TestMISTinyFastPathParity(t *testing.T) {
	g := graph.GNP(60, 0.1, rng.New(31)) // 2m+n well under 16n
	mpcRun, err := RandGreedyMPC(g, Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if len(mpcRun.Stages) != 1 || mpcRun.Stages[0].Name != "gather-all" {
		t.Fatalf("expected the gather-all fast path, got stages %+v", mpcRun.Stages)
	}
	perm := rng.New(31).SplitString("mis-perm").Perm(g.NumVertices())
	want := SequentialRandGreedy(g, perm)
	for v := range want {
		if mpcRun.InMIS[v] != want[v] {
			t.Fatalf("fast path diverged from sequential greedy at vertex %d", v)
		}
	}
	cliqueRun, err := RandGreedyCongestedClique(g, Options{Seed: 31, PolylogDegree: func(int) int { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if cliqueRun.InMIS[v] != want[v] {
			t.Fatalf("prefix-only clique trajectory diverged from the fast path at vertex %d", v)
		}
	}
}

// TestMISStrictCleanAcrossModels: at the default memory factor neither
// deployment may violate its budget on the parity grid — the Theorem
// 1.1 space claim as a test.
func TestMISStrictCleanAcrossModels(t *testing.T) {
	for _, seed := range []uint64{5, 41} {
		for name, g := range misParityGraphs(seed) {
			if _, err := RandGreedyMPC(g, Options{Seed: seed, Strict: true}); err != nil {
				t.Errorf("mpc strict on %s/seed=%d: %v", name, seed, err)
			}
			if _, err := RandGreedyCongestedClique(g, Options{Seed: seed, Strict: true}); err != nil {
				t.Errorf("clique strict on %s/seed=%d: %v", name, seed, err)
			}
		}
	}
}
