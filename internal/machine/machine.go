// Package machine is the metered execution core shared by every
// simulated computation model in this repository. One Core implements
// the machinery that is identical across models — the synchronous round
// loop, deterministic outbox-to-inbox routing, per-node load
// observation, cumulative metrics, context cancellation, trace events,
// the SetActive progress gauge, and Workers-bounded sharding — while a
// small per-step RouteSpec carries the semantics that differ between
// models: what counts as a malformed message, whether per-ordered-pair
// bandwidth budgets apply (CONGESTED-CLIQUE), and how per-node loads
// are audited against capacity (MPC) or routing limits (Lenzen).
//
// internal/mpc and internal/congest are thin policy instantiations of
// this core: they own their Config/Metrics vocabulary and error types,
// and delegate every metered step here. Algorithm packages never import
// machine directly — they drive the model packages, which all charge
// the same core. See docs/design.md for the architecture.
//
// # Determinism contract
//
// Routing fans out across Workers goroutines in contiguous shards
// merged in shard order, so inboxes (ordered by sender, then submission
// order), metrics and errors are bit-identical for every Workers
// setting. A Core is driven from one goroutine, exactly like the
// bulk-synchronous models it meters; the internal scratch reuse relies
// on that.
//
// # Allocation discipline
//
// The routing hot path reuses all tally scratch (per-shard inbox words,
// message counts, delivery cursors, per-pair budget tallies) across
// rounds, and delivers each round's messages out of a single flat arena
// allocation sliced per receiver, instead of one allocation per inbox.
// Outboxes for charge-style callers are pooled via Outboxes.
package machine

import (
	"context"
	"fmt"
	"sync"

	"mpcgraph/internal/model"
	"mpcgraph/internal/par"
)

// Message is one unit of simulated communication. Words is the size of
// Payload in machine words as accounted by the model; the core trusts
// but records it. Payload is opaque.
type Message struct {
	From    int
	To      int
	Words   int64
	Payload any
}

// Metrics aggregates the model costs a Core has accumulated. Model
// packages translate these into their own vocabulary (machines vs
// players).
type Metrics struct {
	// Rounds is the number of communication rounds executed, including
	// the constant-round charges of multi-round primitives.
	Rounds int
	// MaxInWords is the largest per-round receive volume of any node.
	MaxInWords int64
	// MaxOutWords is the largest per-round send volume of any node.
	MaxOutWords int64
	// TotalWords is the total communication volume across all rounds.
	TotalWords int64
	// Violations counts capacity/budget violations (in non-strict mode
	// they are recorded here instead of failing the operation).
	Violations int
}

// Config parameterizes a Core.
type Config struct {
	// Nodes is the number of machines or players. Must be positive
	// (validated by the owning model package).
	Nodes int
	// Workers bounds the goroutines used to process a round's outboxes
	// (0 = all cores, 1 = sequential).
	Workers int
	// Strict makes violations fail the offending operation instead of
	// only being recorded in Metrics.
	Strict bool
	// Ctx, when non-nil, is checked at the start of every round-charging
	// operation; a cancelled context aborts with ctx.Err().
	Ctx context.Context
	// Trace, when non-nil, receives one TraceEvent per metered step.
	Trace model.TraceFunc
	// Name is the owning package's error prefix ("mpc", "congest").
	Name string
	// Unit is the model's noun for one node ("machine", "player").
	Unit string
}

// RouteSpec carries the per-step policy of one Route call — everything
// that distinguishes an MPC exchange from a clique round from a Lenzen
// routing invocation.
type RouteSpec struct {
	// Rounds is the model round cost of the step (1 for a plain
	// synchronous round, 2 for Lenzen's constant-round scheme).
	Rounds int
	// Verb is the malformed-message verb ("sent", "routes").
	Verb string
	// ForbidSelf rejects self-addressed messages (clique rounds).
	ForbidSelf bool
	// PairBudget, when positive, audits the volume each ordered
	// (sender, receiver) pair carries within one round; every message
	// that lands above the budget records one violation, and PairErr
	// builds the error for the first such message in sender order.
	PairBudget int64
	// PairErr builds the per-pair budget violation error. round is the
	// cumulative round count of the step.
	PairErr func(round, from, to int, words, budget int64) error
	// Audit, when non-nil, audits one node's per-round load (in=false
	// for the outbox, true for the inbox) after delivery. A non-nil
	// return records one violation; the first error in (all outboxes,
	// then all inboxes) order aborts the step when Strict.
	Audit func(round, node int, words int64, in bool) error
}

// Core is one metered network. Drive it from a single goroutine; within
// a round it fans the per-node accounting out across Workers goroutines
// itself (nodes are independent inside a round, which is exactly the
// parallelism the models grant).
type Core struct {
	cfg    Config
	met    Metrics
	active int // algorithm-reported undecided-vertex gauge

	// Pooled routing scratch, reused across rounds. Sized once in
	// NewCore: the shard count is a pure function of (Workers, Nodes),
	// both fixed for the Core's lifetime.
	shards     int
	outWords   []int64
	inWords    []int64
	recvCnt    []int32
	shardIn    [][]int64
	shardCnt   [][]int32
	shardTotal []int64
	shardErr   []error
	shardAux   []error
	shardViol  []int
	pairWords  [][]int64 // lazily allocated per-shard pair tallies
	pairTouch  [][]int   // per-shard scratch listing the dirtied tallies
	outbox     [][]Message
	released   bool
}

// corePool recycles routing scratch across Cores. Solve-style callers
// build one network per job; without the pool, every job re-allocates
// the full O(shards × nodes) tally scratch just to drop it at job end.
// Release feeds a finished Core back; NewCore re-sizes whatever it
// gets, so pooled scratch survives changes in node or worker counts.
var corePool = sync.Pool{}

// grow returns s with length n, reusing its backing array when the
// capacity suffices. Contents are unspecified; every consumer either
// zeroes or fully overwrites its scratch per round.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// NewCore builds a core for cfg, reusing pooled routing scratch from a
// Released core when available. The owning model package validates
// cfg.Nodes before calling.
func NewCore(cfg Config) *Core {
	shards := par.ShardCount(cfg.Workers, cfg.Nodes)
	c, _ := corePool.Get().(*Core)
	if c == nil {
		c = &Core{}
	}
	n := cfg.Nodes
	*c = Core{
		cfg:        cfg,
		shards:     shards,
		outWords:   grow(c.outWords, n),
		inWords:    grow(c.inWords, n),
		recvCnt:    grow(c.recvCnt, n),
		shardIn:    grow(c.shardIn, shards),
		shardCnt:   grow(c.shardCnt, shards),
		shardTotal: grow(c.shardTotal, shards),
		shardErr:   grow(c.shardErr, shards),
		shardAux:   grow(c.shardAux, shards),
		shardViol:  grow(c.shardViol, shards),
		outbox:     c.outbox,
		// pairWords/pairTouch stay lazily allocated: their shape depends
		// on the spec of the first budgeted Route, and only clique-style
		// callers ever need them.
	}
	if c.outbox != nil {
		// Keep pooled outboxes too; Outboxes() re-trims them per call and
		// Release cleared their contents.
		c.outbox = grow(c.outbox, n)
	}
	for w := 0; w < shards; w++ {
		c.shardIn[w] = grow(c.shardIn[w], n)
		c.shardCnt[w] = grow(c.shardCnt[w], n)
	}
	return c
}

// Release returns the Core's routing scratch to the pool. Callers that
// are done metering (job finished, cluster torn down) call it to let
// the next NewCore skip the scratch allocations; the Core must not be
// used afterwards. Release is idempotent and keeps no caller-visible
// state: pooled outboxes are cleared so no message Payload stays
// reachable through the pool.
func (c *Core) Release() {
	if c == nil || c.released {
		return
	}
	c.released = true
	for i := range c.outbox {
		b := c.outbox[i][:cap(c.outbox[i])]
		for k := range b {
			b[k] = Message{}
		}
		c.outbox[i] = c.outbox[i][:0]
	}
	c.cfg = Config{} // drop context and trace references
	corePool.Put(c)
}

// Nodes returns the node count.
func (c *Core) Nodes() int { return c.cfg.Nodes }

// Workers returns the configured worker bound.
func (c *Core) Workers() int { return c.cfg.Workers }

// Strict reports whether violations fail operations.
func (c *Core) Strict() bool { return c.cfg.Strict }

// Metrics returns a snapshot of the accumulated metrics.
func (c *Core) Metrics() Metrics { return c.met }

// Rounds returns the cumulative round count.
func (c *Core) Rounds() int { return c.met.Rounds }

// SetActive records the algorithm's current count of undecided
// vertices. Observational only: it rides along on TraceEvents so
// observers can correlate round costs with algorithmic progress.
func (c *Core) SetActive(vertices int) { c.active = vertices }

// Interrupted returns the configured context's error, if any.
func (c *Core) Interrupted() error {
	if c.cfg.Ctx == nil {
		return nil
	}
	return c.cfg.Ctx.Err()
}

// AddRounds charges k model rounds.
func (c *Core) AddRounds(k int) { c.met.Rounds += k }

// AddTotal adds words to the cumulative communication volume.
func (c *Core) AddTotal(words int64) { c.met.TotalWords += words }

// ObserveOut folds one node's per-round send volume into the maximum.
func (c *Core) ObserveOut(words int64) {
	if words > c.met.MaxOutWords {
		c.met.MaxOutWords = words
	}
}

// ObserveIn folds one node's per-round receive volume into the maximum.
func (c *Core) ObserveIn(words int64) {
	if words > c.met.MaxInWords {
		c.met.MaxInWords = words
	}
}

// Violation records one capacity/budget violation.
func (c *Core) Violation() { c.met.Violations++ }

// Emit delivers one trace event for a step that moved words of volume,
// stamped with the current cumulative round count and active gauge.
func (c *Core) Emit(words int64) {
	if c.cfg.Trace != nil {
		c.cfg.Trace(model.TraceEvent{Round: c.met.Rounds, LiveWords: words, ActiveVertices: c.active})
	}
}

// Outboxes returns a pooled outbox set (one empty slice per node,
// capacity retained across calls) for charge-style callers that
// materialize synthetic messages every round. The contents are consumed
// by the next Route call on this core; callers must not retain them.
func (c *Core) Outboxes() [][]Message {
	if c.outbox == nil {
		c.outbox = make([][]Message, c.cfg.Nodes)
	}
	for i := range c.outbox {
		c.outbox[i] = c.outbox[i][:0]
	}
	return c.outbox
}

// Route executes one metered communication step: it validates and
// tallies every outbox, commits volume metrics, emits one trace event,
// delivers the messages (ordered by sender, then submission order), and
// audits per-node loads per spec. out[i] holds the messages node i
// emits; From fields are overwritten with i. The returned slice in[j]
// holds the messages delivered to node j.
//
// The per-node accounting fans out across Workers goroutines: each
// worker validates and tallies a contiguous shard of senders, the
// shard-order prefix sums fix every delivery slot, and a second
// parallel pass writes the inboxes in exactly the order the sequential
// loop would. Malformed messages abort the step (the round still
// counts); budget/capacity violations complete the step and, in strict
// mode, fail it afterwards — the nodes did communicate; that the model
// was violated is the finding.
func (c *Core) Route(out [][]Message, spec RouteSpec) ([][]Message, error) {
	n := c.cfg.Nodes
	if len(out) != n {
		return nil, fmt.Errorf("%s: routing got %d outboxes for %d %ss", c.cfg.Name, len(out), n, c.cfg.Unit)
	}
	if err := c.Interrupted(); err != nil {
		return nil, err
	}
	c.met.Rounds += spec.Rounds
	shards := c.shards
	for w := 0; w < shards; w++ {
		c.shardTotal[w] = 0
		c.shardErr[w] = nil
		c.shardAux[w] = nil
		c.shardViol[w] = 0
	}
	if spec.PairBudget > 0 && c.pairWords == nil {
		c.pairWords = make([][]int64, shards)
		c.pairTouch = make([][]int, shards)
		for w := 0; w < shards; w++ {
			c.pairWords[w] = make([]int64, n)
			c.pairTouch[w] = make([]int, 0, 16)
		}
	}
	round := c.met.Rounds
	par.For(c.cfg.Workers, n, func(lo, hi, w int) {
		iw, cw := c.shardIn[w], c.shardCnt[w]
		for j := range iw {
			iw[j] = 0
			cw[j] = 0
		}
		// The pair budget only aggregates within one sender's box, so a
		// worker-local tally with per-sender reset suffices. A malformed
		// message aborts the worker mid-sender, so the pooled tally is
		// re-zeroed on entry — the per-sender resets keep it clean only
		// on complete rounds.
		var pw []int64
		var touched []int
		if spec.PairBudget > 0 {
			pw = c.pairWords[w]
			for j := range pw {
				pw[j] = 0
			}
			touched = c.pairTouch[w][:0]
		}
		for i := lo; i < hi; i++ {
			var ow int64
			for k := range out[i] {
				msg := &out[i][k]
				if msg.To < 0 || msg.To >= n {
					c.shardErr[w] = fmt.Errorf("%s: %s %d %s to invalid %s %d",
						c.cfg.Name, c.cfg.Unit, i, spec.Verb, c.cfg.Unit, msg.To)
					return
				}
				if spec.ForbidSelf && msg.To == i {
					c.shardErr[w] = fmt.Errorf("%s: %s %d sent to itself", c.cfg.Name, c.cfg.Unit, i)
					return
				}
				if msg.Words < 0 {
					c.shardErr[w] = fmt.Errorf("%s: %s %d %s negative-size message",
						c.cfg.Name, c.cfg.Unit, i, spec.Verb)
					return
				}
				if pw != nil {
					if pw[msg.To] == 0 {
						touched = append(touched, msg.To)
					}
					pw[msg.To] += msg.Words
					if pw[msg.To] > spec.PairBudget {
						c.shardViol[w]++
						if c.shardAux[w] == nil {
							c.shardAux[w] = spec.PairErr(round, i, msg.To, pw[msg.To], spec.PairBudget)
						}
					}
				}
				ow += msg.Words
				iw[msg.To] += msg.Words
				cw[msg.To]++
				c.shardTotal[w] += msg.Words
			}
			c.outWords[i] = ow
			if pw != nil {
				for _, t := range touched {
					pw[t] = 0
				}
				touched = touched[:0]
			}
		}
		if pw != nil {
			c.pairTouch[w] = touched // keep any growth for the next round
		}
	})
	for _, err := range c.shardErr {
		if err != nil {
			return nil, err
		}
	}
	// Commit volume metrics and deferred violations in shard order.
	var firstErr error
	var roundWords int64
	for w := 0; w < shards; w++ {
		c.met.TotalWords += c.shardTotal[w]
		roundWords += c.shardTotal[w]
		c.met.Violations += c.shardViol[w]
		if firstErr == nil {
			firstErr = c.shardAux[w]
		}
	}
	c.Emit(roundWords)
	// Turn the per-shard counts into delivery cursors: shardCnt[w][j]
	// becomes the first slot of in[j] that shard w writes, so the
	// parallel fill reproduces sender order exactly.
	par.For(c.cfg.Workers, n, func(lo, hi, _ int) {
		for j := lo; j < hi; j++ {
			var words int64
			var cnt int32
			for w := 0; w < shards; w++ {
				words += c.shardIn[w][j]
				base := cnt
				cnt += c.shardCnt[w][j]
				c.shardCnt[w][j] = base
			}
			c.inWords[j] = words
			c.recvCnt[j] = cnt
		}
	})
	// One flat arena holds every delivered message; inboxes are
	// per-receiver windows into it (one allocation per round instead of
	// one per non-empty inbox).
	var totalCnt int64
	for j := 0; j < n; j++ {
		totalCnt += int64(c.recvCnt[j])
	}
	in := make([][]Message, n)
	arena := make([]Message, totalCnt)
	var off int64
	for j := 0; j < n; j++ {
		if cnt := int64(c.recvCnt[j]); cnt > 0 {
			in[j] = arena[off : off+cnt : off+cnt]
			off += cnt
		}
	}
	par.For(c.cfg.Workers, n, func(lo, hi, w int) {
		cur := c.shardCnt[w]
		for i := lo; i < hi; i++ {
			for k := range out[i] {
				msg := out[i][k]
				msg.From = i
				in[msg.To][cur[msg.To]] = msg
				cur[msg.To]++
			}
		}
	})
	for i := 0; i < n; i++ {
		ow := c.outWords[i]
		c.ObserveOut(ow)
		if spec.Audit != nil {
			if err := spec.Audit(round, i, ow, false); err != nil {
				c.met.Violations++
				if firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	for j := 0; j < n; j++ {
		iw := c.inWords[j]
		c.ObserveIn(iw)
		if spec.Audit != nil {
			if err := spec.Audit(round, j, iw, true); err != nil {
				c.met.Violations++
				if firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	if firstErr != nil && c.cfg.Strict {
		return nil, firstErr
	}
	return in, nil
}
