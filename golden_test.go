package mpcgraph

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// The golden parity suite pins the audited Report of every registered
// (Problem, Model) pair, for fixed (scenario, seed, Workers), to the
// exact costs produced before the internal/machine substrate refactor.
// Any change to round counting, load auditing, volume accounting, stage
// attribution or the algorithm trajectory itself shows up as a diff
// against testdata/golden_reports.json.
//
// Regenerate (only when a cost change is intended and documented) with:
//
//	go test -run TestReportGoldens -update-goldens .
var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/golden_reports.json from the current implementation")

const goldenPath = "testdata/golden_reports.json"

// goldenStage mirrors model.StageCost for the JSON pin.
type goldenStage struct {
	Name   string `json:"name"`
	Rounds int    `json:"rounds"`
	Words  int64  `json:"words"`
}

// goldenReport is the pinned shape: every audited cost plus a
// fingerprint of the solution payload, so both the meter and the
// algorithm trajectory are pinned bit-for-bit.
type goldenReport struct {
	Case            string        `json:"case"`
	Rounds          int           `json:"rounds"`
	Phases          int           `json:"phases"`
	MaxMachineWords int64         `json:"maxMachineWords"`
	TotalWords      int64         `json:"totalWords"`
	Violations      int           `json:"violations"`
	Stages          []goldenStage `json:"stages"`
	SolutionHash    uint64        `json:"solutionHash"`
}

// goldenCase is one pinned run. The grid covers every registered pair
// on two scenarios, so both models of every problem are exercised on a
// sparse random graph and a skewed-degree graph.
type goldenCase struct {
	scenario string
	n        int
	seed     uint64
	problem  Problem
	model    Model
}

func goldenCases(t *testing.T) []goldenCase {
	t.Helper()
	var cases []goldenCase
	for _, scen := range []struct {
		name string
		n    int
	}{
		{"gnp", 600},
		{"preferential", 500},
	} {
		for _, alg := range Algorithms() {
			sc := scen.name
			if alg.Problem == ProblemWeightedMatching {
				// Weighted matching needs a weighted scenario.
				sc = "weighted-gnp"
			}
			cases = append(cases, goldenCase{
				scenario: sc,
				n:        scen.n,
				seed:     7,
				problem:  alg.Problem,
				model:    alg.Model,
			})
		}
	}
	return cases
}

func (c goldenCase) String() string {
	return fmt.Sprintf("%s-n%d-seed%d/%s/%s", c.scenario, c.n, c.seed, c.problem, c.model)
}

// solutionHash fingerprints the Report payload: the MIS / cover
// memberships or the matched pairs, in deterministic order.
func solutionHash(rep *Report) uint64 {
	h := fnv.New64a()
	write := func(vals ...int64) {
		var buf [8]byte
		for _, v := range vals {
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	switch {
	case rep.InMIS != nil:
		for v, in := range rep.InMIS {
			if in {
				write(int64(v))
			}
		}
	case rep.InCover != nil:
		for v, in := range rep.InCover {
			if in {
				write(int64(v))
			}
		}
	default:
		for _, e := range rep.M.Edges() {
			write(int64(e[0]), int64(e[1]))
		}
	}
	return h.Sum64()
}

func runGoldenCase(t *testing.T, c goldenCase, workers int) *Report {
	t.Helper()
	in, err := GenerateScenario(c.scenario, c.n, c.seed, nil)
	if err != nil {
		t.Fatalf("%s: generate: %v", c, err)
	}
	rep, err := Solve(context.Background(), in, c.problem, Options{
		Seed:    c.seed,
		Model:   c.model,
		Workers: workers,
	})
	if err != nil {
		t.Fatalf("%s: solve: %v", c, err)
	}
	return rep
}

func toGolden(c goldenCase, rep *Report) goldenReport {
	g := goldenReport{
		Case:            c.String(),
		Rounds:          rep.Rounds,
		Phases:          rep.Phases,
		MaxMachineWords: rep.MaxMachineWords,
		TotalWords:      rep.TotalWords,
		Violations:      rep.Violations,
		SolutionHash:    solutionHash(rep),
	}
	for _, st := range rep.Stages {
		g.Stages = append(g.Stages, goldenStage{Name: st.Name, Rounds: st.Rounds, Words: st.Words})
	}
	return g
}

// TestReportGoldens asserts every registered pair still produces the
// pinned pre-refactor Report, at Workers=1 (the exact sequential path)
// and Workers=0 (full fan-out) — the determinism contract makes both
// identical, and the pin makes them identical across time too.
func TestReportGoldens(t *testing.T) {
	cases := goldenCases(t)

	if *updateGoldens {
		var out []goldenReport
		for _, c := range cases {
			out = append(out, toGolden(c, runGoldenCase(t, c, 1)))
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Case < out[j].Case })
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d goldens to %s", len(out), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens (run with -update-goldens to create): %v", err)
	}
	var pinned []goldenReport
	if err := json.Unmarshal(data, &pinned); err != nil {
		t.Fatal(err)
	}
	want := make(map[string]goldenReport, len(pinned))
	for _, g := range pinned {
		want[g.Case] = g
	}
	if len(want) != len(cases) {
		t.Errorf("golden file has %d cases, grid has %d (regenerate with -update-goldens)", len(want), len(cases))
	}
	for _, c := range cases {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			g, ok := want[c.String()]
			if !ok {
				t.Fatalf("no golden for %s (regenerate with -update-goldens)", c)
			}
			for _, workers := range []int{1, 0} {
				got := toGolden(c, runGoldenCase(t, c, workers))
				got.Case = g.Case
				if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", g) {
					t.Errorf("workers=%d: report diverged from pre-refactor golden\n got: %+v\nwant: %+v", workers, got, g)
				}
			}
		})
	}
}
