package mis

import (
	"mpcgraph/internal/graph"
	"mpcgraph/internal/par"
	"mpcgraph/internal/rng"
)

// dynamics is Ghaffari's local MIS process [Gha16], the engine inside the
// "Sparsified MIS Algorithm of [Gha17]" that the paper invokes as a black
// box (Theorem 2.1). Every undecided vertex v keeps a desire level p_v,
// initially 1/2. Per iteration:
//
//   - v marks itself with probability p_v (coins come from a stateless
//     oracle so all simulation layers observe identical randomness);
//   - a marked vertex with no marked undecided neighbor joins the MIS and
//     its neighborhood becomes decided;
//   - with effective degree d_v = Σ_{undecided u ~ v} p_u, the desire
//     level updates to p_v/2 when d_v ≥ 2 and min(2 p_v, 1/2) otherwise.
//
// On poly-logarithmic-degree graphs the process shatters the instance
// within O(log Δ) iterations w.h.p.; [Gha17] compresses those iterations
// into O(log log Δ) CONGESTED-CLIQUE rounds via neighborhood doubling.
// The simulations here execute the iterations directly (each one model
// round) and gather the shattered residue to a leader; the direct
// iteration count upper-bounds the paper's at simulation scale.
type dynamics struct {
	g       *graph.Graph
	seed    uint64
	workers int
	alive   []bool // undecided vertices
	p       []float64
	inMIS   []bool
	marked  []bool
	effDeg  []float64 // per-iteration scratch, allocated once
	undec   int       // number of undecided vertices
}

// newDynamics starts the process on the alive-induced subgraph of g.
// inMIS is shared with the caller and accumulates MIS additions; alive is
// owned by the dynamics afterwards. workers follows the Options.Workers
// convention; every setting computes the same process.
func newDynamics(g *graph.Graph, alive []bool, inMIS []bool, seed uint64, workers int) *dynamics {
	n := g.NumVertices()
	d := &dynamics{
		g:       g,
		seed:    seed,
		workers: workers,
		alive:   alive,
		p:       make([]float64, n),
		inMIS:   inMIS,
		marked:  make([]bool, n),
		effDeg:  make([]float64, n),
	}
	for v := 0; v < n; v++ {
		if alive[v] {
			d.p[v] = 0.5
			d.undec++
		}
	}
	return d
}

// coin returns the marking coin for vertex v at iteration t, a pure
// function of (seed, v, t).
func (d *dynamics) coin(v int32, t int) float64 {
	return float64(rng.Hash(d.seed, 0xd1a0, uint64(uint32(v)), uint64(t))>>11) / (1 << 53)
}

// step executes one iteration and returns the number of vertices decided.
// The mark, effective-degree, lonely-scan and desire-update passes are
// read-only over the pre-step state (the coins are a stateless hash), so
// they run in parallel; only the join application, whose writes cascade
// through neighborhoods, stays sequential. Each vertex's effective degree
// is summed entirely inside its own loop body, so the floating-point
// results are bit-identical for every worker count.
func (d *dynamics) step(t int) int {
	g := d.g
	n := g.NumVertices()
	// Mark.
	par.For(d.workers, n, func(lo, hi, _ int) {
		for v := int32(lo); v < int32(hi); v++ {
			d.marked[v] = d.alive[v] && d.coin(v, t) < d.p[v]
		}
	})
	// Effective degrees from the pre-step state (used for the p update).
	effDeg := d.effDeg
	par.For(d.workers, n, func(lo, hi, _ int) {
		for v := int32(lo); v < int32(hi); v++ {
			if !d.alive[v] {
				effDeg[v] = 0
				continue
			}
			s := 0.0
			for _, u := range g.Neighbors(v) {
				if d.alive[u] {
					s += d.p[u]
				}
			}
			effDeg[v] = s
		}
	})
	// Lonely marked vertices join the MIS. The scan is read-only; the
	// per-shard candidate lists concatenate in shard order, reproducing
	// the sequential ascending-vertex order exactly.
	join := par.Collect(d.workers, n, func(lo, hi, _ int) []int32 {
		var out []int32
		for v := int32(lo); v < int32(hi); v++ {
			if !d.marked[v] || !d.alive[v] {
				continue
			}
			lonely := true
			for _, u := range g.Neighbors(v) {
				if d.alive[u] && d.marked[u] {
					lonely = false
					break
				}
			}
			if lonely {
				out = append(out, v)
			}
		}
		return out
	})
	decided := 0
	for _, v := range join {
		if !d.alive[v] {
			continue // dominated by an earlier joiner this iteration
		}
		// Two joiners are never adjacent (both marked), so v is safe.
		d.inMIS[v] = true
		d.alive[v] = false
		decided++
		for _, u := range g.Neighbors(v) {
			if d.alive[u] {
				d.alive[u] = false
				decided++
			}
		}
	}
	// Desire-level update for survivors.
	par.For(d.workers, n, func(lo, hi, _ int) {
		for v := int32(lo); v < int32(hi); v++ {
			if !d.alive[v] {
				continue
			}
			if effDeg[v] >= 2 {
				d.p[v] /= 2
			} else if d.p[v] < 0.5 {
				d.p[v] *= 2
				if d.p[v] > 0.5 {
					d.p[v] = 0.5
				}
			}
		}
	})
	d.undec -= decided
	return decided
}

// undecided returns the number of still-undecided vertices.
func (d *dynamics) undecided() int { return d.undec }

// residualEdgeWords returns 2·|E(residual)| — the gather cost of shipping
// the undecided graph to one machine — plus the undecided vertex count.
func (d *dynamics) residualEdgeWords() int64 {
	return par.Reduce(d.workers, d.g.NumVertices(), func(lo, hi, _ int) int64 {
		var words int64
		for v := int32(lo); v < int32(hi); v++ {
			if !d.alive[v] {
				continue
			}
			words++
			for _, u := range d.g.Neighbors(v) {
				if d.alive[u] && u > v {
					words += 2
				}
			}
		}
		return words
	}, func(a, b int64) int64 { return a + b })
}

// finishGreedy completes the MIS on the undecided residue sequentially in
// permutation order — the "deliver the remaining graph on a single
// machine and find its MIS" final step of the paper's algorithm.
func (d *dynamics) finishGreedy(perm []int32) {
	for _, v := range perm {
		if !d.alive[v] {
			continue
		}
		d.inMIS[v] = true
		d.alive[v] = false
		for _, u := range d.g.Neighbors(v) {
			d.alive[u] = false
		}
	}
	d.undec = 0
}
