package lockedio

import (
	"context"
	"sync"

	"mpcgraph/internal/model"
	"mpcgraph/internal/registry"
)

// solveUnderLock holds a lock across a whole solve — the worst
// offender of the class: a multi-second computation inside a critical
// section. registry.Solve is an I/O root by decree.
func solveUnderLock(mu *sync.Mutex, ctx context.Context, in registry.Input, p registry.Problem, m model.Model, o registry.Options) error {
	mu.Lock()
	defer mu.Unlock()
	_, err := registry.Solve(ctx, in, p, m, o) // want "lockedio: call reaches I/O"
	return err
}
