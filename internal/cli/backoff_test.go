package cli

import (
	"testing"
	"time"
)

// TestBackoffDeterministic: identical seeds plan identical delay
// sequences — a replayed invocation retries at the same instants.
func TestBackoffDeterministic(t *testing.T) {
	plan := func() []time.Duration {
		b := newBackoff(42, "submit", 100*time.Millisecond, 5*time.Second, 8, 0)
		var ds []time.Duration
		for {
			d, ok := b.next(0)
			if !ok {
				break
			}
			ds = append(ds, d)
		}
		return ds
	}
	a, b := plan(), plan()
	if len(a) != 8 {
		t.Fatalf("planned %d delays, want 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs between identical plans: %v vs %v", i, a[i], b[i])
		}
	}
	// The exponential envelope with [d/2, d) jitter.
	for i, d := range a {
		env := 100 * time.Millisecond << i
		if env > 5*time.Second {
			env = 5 * time.Second
		}
		if d < env/2 || d >= env {
			t.Errorf("delay %d = %v outside [%v, %v)", i, d, env/2, env)
		}
	}
}

// TestBackoffHonorsRetryAfter: the server hint replaces the planned
// delay for that attempt.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	b := newBackoff(7, "submit", 100*time.Millisecond, 5*time.Second, 4, 0)
	d, ok := b.next(3 * time.Second)
	if !ok || d != 3*time.Second {
		t.Errorf("retry-after hint not honored: %v %t", d, ok)
	}
}

// TestParseRetryAfterEdgeCases: mpcgraphd only emits the delay-seconds
// form, but the client can sit behind proxies that rewrite the header —
// anything unparseable, negative, or exotic (HTTP-date form) must
// degrade to "no hint" rather than a surprise sleep.
func TestParseRetryAfterEdgeCases(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"0", 0},
		{"5", 5 * time.Second},
		{" 7 ", 7 * time.Second}, // surrounding whitespace tolerated
		{"-3", 0},                // negative means no hint, never a negative sleep
		{"2.5", 0},               // non-integer seconds is not the delay-seconds form
		{"1e3", 0},
		{"+2", 0},                            // Atoi accepts "+2" but proxies never emit it; either 0 or 2s is safe — pin current behavior
		{"Fri, 07 Aug 2026 12:00:00 GMT", 0}, // HTTP-date form unsupported by design
		{"soon", 0},
		{"9223372036854775808", 0}, // overflows int64 seconds
	}
	for _, tc := range cases {
		got := parseRetryAfter(tc.header)
		if tc.header == "+2" {
			if got != 0 && got != 2*time.Second {
				t.Errorf("parseRetryAfter(%q) = %v, want 0 or 2s", tc.header, got)
			}
			continue
		}
		if got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestBackoffRetryAfterZeroAndNegative: a zero or negative hint means
// "no hint" — the planned jittered delay applies, and a negative
// duration never reaches time.Sleep.
func TestBackoffRetryAfterZeroAndNegative(t *testing.T) {
	for _, hint := range []time.Duration{0, -time.Second} {
		b := newBackoff(7, "submit", 100*time.Millisecond, 5*time.Second, 4, 0)
		d, ok := b.next(hint)
		if !ok {
			t.Fatalf("hint %v: first attempt refused", hint)
		}
		if d < 50*time.Millisecond || d >= 100*time.Millisecond {
			t.Errorf("hint %v: delay %v outside the planned [50ms, 100ms) envelope", hint, d)
		}
	}
}

// TestBackoffRetryAfterExceedsBudget: a server hint larger than the
// remaining sleep budget exhausts the backoff immediately — the client
// must not honor a hint it cannot afford, and must not sleep a
// truncated delay either (that would hammer a server that asked for
// patience).
func TestBackoffRetryAfterExceedsBudget(t *testing.T) {
	b := newBackoff(7, "submit", 100*time.Millisecond, 5*time.Second, 100, time.Second)
	if d, ok := b.next(2 * time.Second); ok {
		t.Fatalf("hint beyond the whole budget was granted a %v sleep", d)
	}
	// Partially spent budget: a hint that exceeds the *remainder* is
	// refused even though it is below the original budget.
	b = newBackoff(7, "submit", 100*time.Millisecond, 5*time.Second, 100, time.Second)
	if d, ok := b.next(700 * time.Millisecond); !ok || d != 700*time.Millisecond {
		t.Fatalf("affordable hint refused: %v %t", d, ok)
	}
	if d, ok := b.next(600 * time.Millisecond); ok {
		t.Fatalf("hint beyond the remaining budget was granted a %v sleep", d)
	}
	// The refusal does not consume the attempt budget's remaining
	// affordable attempts: a smaller follow-up hint still fits.
	if d, ok := b.next(200 * time.Millisecond); !ok || d != 200*time.Millisecond {
		t.Fatalf("affordable follow-up hint refused after an unaffordable one: %v %t", d, ok)
	}
}

// TestBackoffRetryAfterAboveCap: the hint deliberately wins over the
// exponential cap — the server knows its queue better than the
// client's envelope does.
func TestBackoffRetryAfterAboveCap(t *testing.T) {
	b := newBackoff(7, "submit", 100*time.Millisecond, 5*time.Second, 4, 0)
	if d, ok := b.next(30 * time.Second); !ok || d != 30*time.Second {
		t.Errorf("hint above cap not honored: %v %t", d, ok)
	}
}

// TestBackoffBudget: the budget bounds the sum of planned sleeps, and
// exhaustion is reported before the overflowing sleep, not after.
func TestBackoffBudget(t *testing.T) {
	b := newBackoff(7, "submit", 100*time.Millisecond, 5*time.Second, 100, 250*time.Millisecond)
	var total time.Duration
	n := 0
	for {
		d, ok := b.next(0)
		if !ok {
			break
		}
		total += d
		n++
	}
	if total > 250*time.Millisecond {
		t.Errorf("planned sleeps total %v, budget 250ms", total)
	}
	if n == 0 || n >= 100 {
		t.Errorf("budget allowed %d attempts", n)
	}
}
