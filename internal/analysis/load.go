package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Config parameterizes a driver run.
type Config struct {
	// Dir is the module root (any directory inside the module works:
	// `go list` resolves the enclosing module).
	Dir string

	// Tests merges in-package _test.go files into their package and
	// checks external _test packages as separate units, so analyzers
	// see test code too. `make lint-fast` disables it.
	Tests bool

	// Analyzers is the rule suite to run.
	Analyzers []*Analyzer

	// GoCmd overrides the go tool binary (default "go").
	GoCmd string
}

// Result is a completed driver run.
type Result struct {
	// Findings is every diagnostic, suppressed or not, sorted by
	// position. Unsuppressed returns the failing subset.
	Findings []Finding

	// Module is the analyzed module, for callers (tests) that want the
	// typed packages.
	Module *Module

	// Notes records non-fatal loader degradations, e.g. a package whose
	// test files were skipped because merging them would create an
	// import cycle.
	Notes []string
}

// Unsuppressed returns the findings not covered by a //lint:ignore
// justification — the set that fails the lint gate.
func (r *Result) Unsuppressed() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	Standard     bool
	ForTest      string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	ImportMap    map[string]string
	Module       *struct{ Path string }
}

// unit is one type-checking work item: a package's compiled files (for
// module packages, with in-package test files merged when Tests is on)
// or an external _test package.
type unit struct {
	key       string // units map key: ImportPath, or ImportPath+" [xtest]"
	checkPath string // path handed to types.Config.Check
	relPath   string // module-relative path ("" outside the module)
	dir       string
	files     []string // file names relative to dir
	testFrom  int      // index in files where _test.go files begin
	deps      []string // unit keys this unit must wait for
	importMap map[string]string
	module    bool // belongs to the module under analysis (analyzed)

	done   chan struct{} // closed once tpkg/info/syntax are final
	tpkg   *types.Package
	info   *types.Info
	syntax []*ast.File
	tests  map[*ast.File]bool
	errs   []error
}

// Run loads the module at cfg.Dir, type-checks its full dependency
// closure from source in parallel, runs the analyzer suite over every
// module package, and applies //lint:ignore suppressions.
func Run(cfg Config) (*Result, error) {
	goCmd := cfg.GoCmd
	if goCmd == "" {
		goCmd = "go"
	}
	pkgs, err := goList(goCmd, cfg.Dir, cfg.Tests, "./...")
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, p := range pkgs {
		if p.Module != nil {
			modPath = p.Module.Path
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module packages found under %s", cfg.Dir)
	}

	units, notes := buildUnits(pkgs, modPath, cfg.Tests)
	fset := token.NewFileSet()
	if err := checkAll(fset, units); err != nil {
		return nil, err
	}

	mod := &Module{Fset: fset, Path: modPath}
	var findings []Finding
	var mu sync.Mutex
	report := func(f Finding) {
		mu.Lock()
		findings = append(findings, f)
		mu.Unlock()
	}
	for _, u := range units {
		if !u.module {
			continue
		}
		mod.Pkgs = append(mod.Pkgs, &Pass{
			Fset:      fset,
			Files:     u.syntax,
			Pkg:       u.tpkg,
			Info:      u.info,
			RelPath:   u.relPath,
			Module:    mod,
			testFiles: u.tests,
			report:    report,
		})
	}

	for _, a := range cfg.Analyzers {
		if a.Init != nil {
			a.Init(mod)
		}
	}
	for _, p := range mod.Pkgs {
		for _, a := range cfg.Analyzers {
			p.rule = a.Name
			a.Run(p)
		}
	}

	var allFiles []*ast.File
	for _, p := range mod.Pkgs {
		allFiles = append(allFiles, p.Files...)
	}
	findings = ApplySuppressions(fset, allFiles, findings)
	sortFindings(findings)
	return &Result{Findings: findings, Module: mod, Notes: notes}, nil
}

// goList enumerates the module's packages plus their full dependency
// closure. CGO is disabled so every package (net, os/user, ...) resolves
// to its pure-Go files and the whole closure is type-checkable from
// source. With tests, `-test` widens the closure to test dependencies
// (testing, net/http/httptest, ...); the synthesized "p [p.test]"
// variants it also prints are filtered out — the loader does its own
// test-file merging so it controls cycle handling.
func goList(goCmd, dir string, tests bool, patterns ...string) ([]*listPkg, error) {
	args := []string{"list", "-deps"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, "-json=ImportPath,Dir,Name,Standard,ForTest,GoFiles,TestGoFiles,XTestGoFiles,Imports,TestImports,XTestImports,ImportMap,Module")
	args = append(args, patterns...)
	cmd := exec.Command(goCmd, args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: %s %s: %v\n%s", goCmd, strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	seen := map[string]bool{}
	var pkgs []*listPkg
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		// Skip the synthesized test variants: "p.test" mains, "p [p.test]"
		// rebuilds, and packages listed as compiled-for-test.
		if p.ForTest != "" || strings.Contains(p.ImportPath, " [") || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if seen[p.ImportPath] {
			continue
		}
		seen[p.ImportPath] = true
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// buildUnits turns the package list into type-checking units. Module
// packages absorb their in-package test files (so analyzers see them
// with full type information) unless doing so would create an import
// cycle — a test importing a package that already imports the package
// under test — in which case the package is checked without its tests
// and a note records the gap. External _test packages become separate
// trailing units.
func buildUnits(pkgs []*listPkg, modPath string, tests bool) (map[string]*unit, []string) {
	byPath := map[string]*listPkg{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}

	// reaches reports whether from's transitive (non-test) imports
	// include target, for the augmentation cycle check.
	memo := map[string]map[string]bool{}
	var closure func(path string) map[string]bool
	closure = func(path string) map[string]bool {
		if c, ok := memo[path]; ok {
			return c
		}
		c := map[string]bool{}
		memo[path] = c // break accidental cycles defensively
		p := byPath[path]
		if p == nil {
			return c
		}
		for _, raw := range p.Imports {
			imp := resolveImport(p, raw)
			if imp == "unsafe" || imp == path {
				continue
			}
			c[imp] = true
			for t := range closure(imp) {
				c[t] = true
			}
		}
		return c
	}

	units := map[string]*unit{}
	var notes []string
	for _, p := range pkgs {
		if p.ImportPath == "unsafe" {
			continue
		}
		isMod := p.Module != nil && p.Module.Path == modPath
		u := &unit{
			key:       p.ImportPath,
			checkPath: p.ImportPath,
			relPath:   "",
			dir:       p.Dir,
			files:     append([]string{}, p.GoFiles...),
			deps:      nil,
			importMap: p.ImportMap,
			module:    isMod,
			done:      make(chan struct{}),
		}
		if isMod {
			u.relPath = RelFromImportPath(p.ImportPath, modPath)
		}
		deps := map[string]bool{}
		for _, raw := range p.Imports {
			deps[resolveImport(p, raw)] = true
		}
		u.testFrom = len(u.files)
		if tests && isMod && len(p.TestGoFiles) > 0 {
			cycle := false
			for _, raw := range p.TestImports {
				if closure(resolveImport(p, raw))[p.ImportPath] {
					cycle = true
					break
				}
			}
			if cycle {
				notes = append(notes, fmt.Sprintf("%s: in-package test files skipped (test imports cycle back through the package)", p.ImportPath))
			} else {
				u.files = append(u.files, p.TestGoFiles...)
				for _, raw := range p.TestImports {
					deps[resolveImport(p, raw)] = true
				}
			}
		}
		u.deps = depKeys(deps)
		units[u.key] = u

		if tests && isMod && len(p.XTestGoFiles) > 0 {
			x := &unit{
				key:       p.ImportPath + " [xtest]",
				checkPath: p.ImportPath + "_test",
				relPath:   u.relPath,
				dir:       p.Dir,
				files:     append([]string{}, p.XTestGoFiles...),
				importMap: p.ImportMap,
				module:    true,
				done:      make(chan struct{}),
			}
			xdeps := map[string]bool{}
			for _, raw := range p.XTestImports {
				xdeps[resolveImport(p, raw)] = true
			}
			x.deps = depKeys(xdeps)
			units[x.key] = x
		}
	}
	// Drop dependencies on units that do not exist (unsafe, packages
	// outside the listed closure) so no goroutine waits forever.
	for _, u := range units {
		kept := u.deps[:0]
		for _, d := range u.deps {
			if _, ok := units[d]; ok {
				kept = append(kept, d)
			}
		}
		u.deps = kept
	}
	return units, notes
}

func resolveImport(p *listPkg, raw string) string {
	if mapped, ok := p.ImportMap[raw]; ok {
		return mapped
	}
	return raw
}

func depKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for d := range set {
		if d != "unsafe" && d != "C" {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// checkAll parses and type-checks every unit, in parallel, in
// dependency order: each unit waits on its imports' done channels, so a
// package only ever sees fully-checked dependencies, and the closed
// channel provides the happens-before edge that makes reading the
// dependency's *types.Package race-free. Type errors in module packages
// are fatal — analyzers must not run over half-typed syntax; errors in
// the standard-library closure would indicate a toolchain/loader
// mismatch and are fatal too, except that there are none in practice
// (the whole stdlib closure checks clean from source).
func checkAll(fset *token.FileSet, units map[string]*unit) error {
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, u := range units {
		wg.Add(1)
		go func(u *unit) {
			defer wg.Done()
			defer close(u.done)
			for _, d := range u.deps {
				<-units[d].done
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			checkUnit(fset, units, u, sizes)
		}(u)
	}
	wg.Wait()

	var errs []string
	keys := make([]string, 0, len(units))
	for k := range units {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, e := range units[k].errs {
			errs = append(errs, fmt.Sprintf("%s: %v", k, e))
		}
	}
	if len(errs) > 0 {
		const max = 20
		if len(errs) > max {
			errs = append(errs[:max], fmt.Sprintf("... and %d more", len(errs)-max))
		}
		return fmt.Errorf("analysis: type-checking failed:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

func checkUnit(fset *token.FileSet, units map[string]*unit, u *unit, sizes types.Sizes) {
	u.tests = map[*ast.File]bool{}
	for i, name := range u.files {
		f, err := parser.ParseFile(fset, filepath.Join(u.dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			u.errs = append(u.errs, err)
			continue
		}
		u.syntax = append(u.syntax, f)
		if i >= u.testFrom {
			u.tests[f] = true
		}
	}
	if len(u.errs) > 0 {
		return
	}
	u.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Sizes: sizes,
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if mapped, ok := u.importMap[path]; ok {
				path = mapped
			}
			dep := units[path]
			if dep == nil {
				return nil, fmt.Errorf("import %q outside the loaded closure", path)
			}
			select {
			case <-dep.done:
			default:
				return nil, fmt.Errorf("import %q not yet checked (loader ordering bug)", path)
			}
			if dep.tpkg == nil {
				return nil, fmt.Errorf("import %q failed to check", path)
			}
			return dep.tpkg, nil
		}),
		Error: func(err error) {
			u.errs = append(u.errs, err)
		},
	}
	u.tpkg, _ = conf.Check(u.checkPath, fset, u.syntax, u.info)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
