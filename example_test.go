package mpcgraph_test

// Runnable godoc examples for the public API. The Output comments are
// asserted by `go test`, so these double as end-to-end regression tests
// with fixed seeds. The ExampleSolve_* family demonstrates the unified
// Solve entry point for every Problem; the remaining examples cover the
// deprecated per-problem wrappers.

import (
	"context"
	"fmt"

	"mpcgraph"
)

// ExampleSolve runs the Theorem 1.1 MIS algorithm through the unified
// entry point and reads the audited costs off the Report.
func ExampleSolve() {
	g := mpcgraph.RandomGraph(1000, 0.01, 42)
	rep, err := mpcgraph.Solve(context.Background(), g, mpcgraph.ProblemMIS, mpcgraph.Options{Seed: 7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", mpcgraph.IsMaximalIndependentSet(g, rep.InMIS))
	fmt.Println("rounds are doubly logarithmic:", rep.Rounds < 20)
	fmt.Println("costs audited:", rep.MaxMachineWords > 0 && rep.TotalWords > 0)
	// Output:
	// valid: true
	// rounds are doubly logarithmic: true
	// costs audited: true
}

// ExampleSolve_maximalMatching computes an exact maximal matching with
// the [LMSV11] filtering subroutine (Section 4.4.5).
func ExampleSolve_maximalMatching() {
	g := mpcgraph.RandomGraph(1000, 0.01, 42)
	rep, err := mpcgraph.Solve(context.Background(), g, mpcgraph.ProblemMaximalMatching, mpcgraph.Options{Seed: 7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("maximal:", mpcgraph.IsMaximalMatching(g, rep.M))
	// Output:
	// maximal: true
}

// ExampleSolve_approxMatching computes the Theorem 1.2 (2+ε)-approximate
// maximum matching.
func ExampleSolve_approxMatching() {
	g := mpcgraph.RandomGraph(1000, 0.01, 42)
	rep, err := mpcgraph.Solve(context.Background(), g, mpcgraph.ProblemApproxMatching, mpcgraph.Options{Seed: 7, Eps: 0.1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", mpcgraph.IsMatching(g, rep.M))
	fmt.Println("non-trivial:", rep.M.Size() > 300)
	// Output:
	// valid: true
	// non-trivial: true
}

// ExampleSolve_onePlusEpsMatching boosts the (2+ε) matching to (1+ε)
// via short augmenting paths (Corollary 1.3).
func ExampleSolve_onePlusEpsMatching() {
	g := mpcgraph.RandomGraph(1000, 0.01, 42)
	base, err := mpcgraph.Solve(context.Background(), g, mpcgraph.ProblemApproxMatching, mpcgraph.Options{Seed: 7, Eps: 0.2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep, err := mpcgraph.Solve(context.Background(), g, mpcgraph.ProblemOnePlusEpsMatching, mpcgraph.Options{Seed: 7, Eps: 0.2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", mpcgraph.IsMatching(g, rep.M))
	fmt.Println("no smaller than the base matching:", rep.M.Size() >= base.M.Size())
	// Output:
	// valid: true
	// no smaller than the base matching: true
}

// ExampleSolve_vertexCover computes the Theorem 1.2 (2+ε)-approximate
// minimum vertex cover, certified by the dual fractional matching.
func ExampleSolve_vertexCover() {
	g := mpcgraph.RandomGraph(1000, 0.01, 42)
	rep, err := mpcgraph.Solve(context.Background(), g, mpcgraph.ProblemVertexCover, mpcgraph.Options{Seed: 7, Eps: 0.1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	covered := 0
	for _, in := range rep.InCover {
		if in {
			covered++
		}
	}
	fmt.Println("valid:", mpcgraph.IsVertexCover(g, rep.InCover))
	fmt.Println("certified ratio below 2.2:", float64(covered) <= 2.2*rep.FractionalWeight)
	// Output:
	// valid: true
	// certified ratio below 2.2: true
}

// ExampleSolve_weightedMatching computes the Corollary 1.4
// (2+ε)-approximate maximum weight matching; the weighted instance is
// passed directly to Solve.
func ExampleSolve_weightedMatching() {
	b := mpcgraph.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	wg, err := mpcgraph.NewWeightedGraph(g, []float64{1.0, 10.0})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep, err := mpcgraph.Solve(context.Background(), wg, mpcgraph.ProblemWeightedMatching, mpcgraph.Options{Seed: 1, Eps: 0.1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("value:", rep.Value)
	// Output:
	// value: 10
}

// ExampleSolve_congestedClique runs the same MIS under the
// CONGESTED-CLIQUE model by flipping Options.Model.
func ExampleSolve_congestedClique() {
	g := mpcgraph.RandomGraph(600, 0.02, 42)
	rep, err := mpcgraph.Solve(context.Background(), g, mpcgraph.ProblemMIS,
		mpcgraph.Options{Seed: 7, Model: mpcgraph.ModelCongestedClique})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", mpcgraph.IsMaximalIndependentSet(g, rep.InMIS))
	fmt.Println("per-player load within the Lenzen limit:", rep.MaxMachineWords <= int64(g.NumVertices()))
	// Output:
	// valid: true
	// per-player load within the Lenzen limit: true
}

func ExampleMIS() {
	g := mpcgraph.RandomGraph(1000, 0.01, 42)
	res, err := mpcgraph.MIS(g, mpcgraph.Options{Seed: 7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", mpcgraph.IsMaximalIndependentSet(g, res.InMIS))
	fmt.Println("rounds are doubly logarithmic:", res.Stats.Rounds < 20)
	// Output:
	// valid: true
	// rounds are doubly logarithmic: true
}

func ExampleApproxMaxMatching() {
	g := mpcgraph.RandomGraph(1000, 0.01, 42)
	res, err := mpcgraph.ApproxMaxMatching(g, mpcgraph.Options{Seed: 7, Eps: 0.1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", mpcgraph.IsMatching(g, res.M))
	// A maximal matching on this instance has at least ~380 edges; 2+eps
	// approximation guarantees at least opt/(2+eps).
	fmt.Println("non-trivial:", res.M.Size() > 300)
	// Output:
	// valid: true
	// non-trivial: true
}

func ExampleApproxMinVertexCover() {
	g := mpcgraph.RandomGraph(1000, 0.01, 42)
	res, err := mpcgraph.ApproxMinVertexCover(g, mpcgraph.Options{Seed: 7, Eps: 0.1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	covered := 0
	for _, in := range res.InCover {
		if in {
			covered++
		}
	}
	fmt.Println("valid:", mpcgraph.IsVertexCover(g, res.InCover))
	// The dual fractional matching certifies the quality of this exact
	// run: |cover| <= (2+eps)·dual <= (2+eps)·opt.
	fmt.Println("certified ratio below 2.2:", float64(covered) <= 2.2*res.FractionalWeight)
	// Output:
	// valid: true
	// certified ratio below 2.2: true
}

func ExampleNewGraphBuilder() {
	b := mpcgraph.NewGraphBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	fmt.Println(g.NumVertices(), "vertices,", g.NumEdges(), "edges")
	// Output:
	// 4 vertices, 3 edges
}

func ExampleApproxMaxWeightedMatching() {
	// Two edges sharing vertex 1: the heavy one must win.
	b := mpcgraph.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	wg, err := mpcgraph.NewWeightedGraph(g, []float64{1.0, 10.0})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res := mpcgraph.ApproxMaxWeightedMatching(wg, mpcgraph.Options{Seed: 1, Eps: 0.1})
	fmt.Println("value:", res.Value)
	// Output:
	// value: 10
}
