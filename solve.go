package mpcgraph

import (
	"context"
	"fmt"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/model"
	"mpcgraph/internal/registry"
)

// Problem identifies one of the graph problems the library solves. The
// set mirrors the paper's results: Theorem 1.1 (MIS), Theorem 1.2
// (approximate matching and vertex cover), Corollary 1.3 ((1+ε)
// matching), Corollary 1.4 (weighted matching), plus the [LMSV11]
// maximal-matching subroutine as an explicit problem so the O(log n)
// baseline regime is callable through the same API.
type Problem = registry.Problem

// The problems accepted by Solve.
const (
	// ProblemMIS: maximal independent set in O(log log Δ) rounds
	// (Theorem 1.1). Report payload: InMIS.
	ProblemMIS Problem = registry.MIS
	// ProblemMaximalMatching: exact maximal matching via [LMSV11]
	// filtering (Section 4.4.5; Θ(log n) rounds at S = Θ(n)). Report
	// payload: M.
	ProblemMaximalMatching Problem = registry.MaximalMatching
	// ProblemApproxMatching: (2+ε)-approximate maximum matching
	// (Theorem 1.2). Report payload: M.
	ProblemApproxMatching Problem = registry.ApproxMatching
	// ProblemOnePlusEpsMatching: (1+ε)-approximate maximum matching
	// (Corollary 1.3). Report payload: M.
	ProblemOnePlusEpsMatching Problem = registry.OnePlusEpsMatching
	// ProblemVertexCover: (2+ε)-approximate minimum vertex cover
	// (Theorem 1.2). Report payload: InCover, FractionalWeight.
	ProblemVertexCover Problem = registry.VertexCover
	// ProblemWeightedMatching: (2+ε)-approximate maximum weight matching
	// (Corollary 1.4). Requires a *WeightedGraph input. Report payload:
	// M, Value.
	ProblemWeightedMatching Problem = registry.WeightedMatching
)

// Model selects the simulated computation model.
type Model = model.Model

// The models accepted by Solve.
const (
	// ModelMPC is the Õ(n)-memory Massively Parallel Computation model
	// [KSV10] — the default.
	ModelMPC Model = model.MPC
	// ModelCongestedClique is the CONGESTED-CLIQUE model [LPPSP03] with
	// Lenzen routing as an O(1)-round primitive. Algorithm outputs are
	// bit-identical to the MPC model; only the audited costs change.
	ModelCongestedClique Model = model.CongestedClique
)

// Algorithm identifies one registered (Problem, Model) pair.
type Algorithm = registry.Pair

// Errors returned by Solve for dispatch failures. Use errors.Is.
var (
	// ErrUnsupported: no algorithm is registered for the requested
	// (Problem, Model) pair (e.g. ProblemWeightedMatching under
	// ModelCongestedClique — Corollary 1.4 is stated for MPC).
	ErrUnsupported = registry.ErrUnsupported
	// ErrNeedWeightedGraph: a weighted problem was invoked on an
	// unweighted instance.
	ErrNeedWeightedGraph = registry.ErrNeedWeighted
	// ErrUnknownProblem: a problem name resolved against the registry
	// (e.g. by the mpcgraph CLI) names no defined problem.
	ErrUnknownProblem = registry.ErrUnknownProblem
	// ErrUnknownModel: a model name names no defined model.
	ErrUnknownModel = model.ErrUnknownModel
)

// Instance is the input of Solve: a *Graph or a *WeightedGraph.
type Instance interface {
	NumVertices() int
	NumEdges() int
}

// Algorithms enumerates every registered (Problem, Model) pair in
// stable order — the same table the mpcbench CLI and the experiment
// harness iterate, so new registrations appear everywhere at once.
func Algorithms() []Algorithm { return registry.Pairs() }

// Solve runs the algorithm registered for (p, opts.Model) on the given
// instance and returns one uniform Report. It is the single entry point
// behind every problem and both models:
//
//	rep, err := mpcgraph.Solve(ctx, g, mpcgraph.ProblemMIS, mpcgraph.Options{Seed: 7})
//
// The run is deterministic in opts.Seed for every Workers setting, and
// matching-family outputs are bit-identical across models. A cancelled
// ctx aborts the run between simulated rounds with ctx.Err(); a nil ctx
// means context.Background(). Pass a *WeightedGraph for
// ProblemWeightedMatching (a plain *Graph yields ErrNeedWeightedGraph);
// unweighted problems accept either input and ignore the weights.
func Solve(ctx context.Context, in Instance, p Problem, opts Options) (*Report, error) {
	input, err := toInput(in)
	if err != nil {
		return nil, err
	}
	rep, err := registry.Solve(ctx, input, p, opts.Model, registry.Options{
		Seed:         opts.Seed,
		Eps:          opts.Eps,
		MemoryFactor: opts.MemoryFactor,
		Strict:       opts.Strict,
		Workers:      opts.Workers,
		Trace:        opts.Trace,
	})
	if err != nil {
		return nil, fmt.Errorf("mpcgraph: Solve: %w", err)
	}
	return rep, nil
}

// toInput maps the public instance types onto the registry input.
func toInput(in Instance) (registry.Input, error) {
	switch g := in.(type) {
	case *graph.Weighted:
		if g == nil {
			return registry.Input{}, fmt.Errorf("mpcgraph: Solve on nil instance")
		}
		return registry.Input{G: g.Graph, WG: g}, nil
	case *graph.Graph:
		if g == nil {
			return registry.Input{}, fmt.Errorf("mpcgraph: Solve on nil instance")
		}
		return registry.Input{G: g}, nil
	case nil:
		return registry.Input{}, fmt.Errorf("mpcgraph: Solve on nil instance")
	default:
		return registry.Input{}, fmt.Errorf("mpcgraph: Solve on unsupported instance type %T (want *Graph or *WeightedGraph)", in)
	}
}
