package service

import (
	"fmt"
	"net/http"
	"time"

	"mpcgraph/internal/obs"
)

// The operational endpoints. /metrics speaks the Prometheus text
// exposition format (hand-written gauges and counters plus the
// internal/obs latency histograms and Go runtime telemetry — no client
// dependency) so any standard scraper can watch a resident daemon;
// /healthz is the liveness/readiness probe — 200 while serving, 503
// once draining.

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, inflight := s.snapshotCounts()
	draining := s.Draining()
	// The disk tier degrading (write failures) never fails the probe:
	// the daemon still serves correctly, it just stops persisting. The
	// status string surfaces it for operators.
	cacheDisk := "disabled"
	var diskErr string
	if s.cache.disk != nil {
		st := s.cache.disk.Stats()
		cacheDisk = "ok"
		if st.Degraded {
			cacheDisk = "degraded"
			diskErr = st.LastErr
		}
	}
	body := struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
		QueueDepth    int     `json:"queueDepth"`
		Inflight      int     `json:"inflight"`
		Draining      bool    `json:"draining"`
		CacheDisk     string  `json:"cacheDisk"`
		CacheDiskErr  string  `json:"cacheDiskError,omitempty"`
	}{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		QueueDepth:    queued,
		Inflight:      inflight,
		Draining:      draining,
		CacheDisk:     cacheDisk,
		CacheDiskErr:  diskErr,
	}
	status := 200
	if draining {
		body.Status = "draining"
		status = 503
		w.Header().Set("Retry-After", "5")
	}
	writeJSON(w, status, body)
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	queued, inflight := s.snapshotCounts()
	mem := s.cache.mem.Stats()
	var disk diskStats
	if s.cache.disk != nil {
		disk = s.cache.disk.Stats()
	}
	// Overall misses: every L1 miss probes L2, so submissions that
	// missed both tiers are the L1 misses not recovered by a disk hit.
	misses := mem.Misses - disk.Hits

	// Only the lifecycle state is read per job — never the full view,
	// whose report rendering is O(solution size) and would make every
	// scrape stall the submit path while s.mu is held.
	s.mu.Lock()
	byState := map[JobState]int{}
	for _, id := range s.order {
		byState[s.jobs[id].currentState()]++
	}
	total := s.nextID
	solves := s.solves
	coalesces := s.coalesces
	draining := s.draining
	batchesTotal := s.nextBatchID
	batchJobs := s.batchJobs
	batchesActive := 0
	// done takes b.mu under s.mu — the established lock order (s.mu
	// before b.mu, see batch.go).
	for _, id := range s.batchOrder {
		if !s.batches[id].done() {
			batchesActive++
		}
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP mpcgraphd_up Whether the daemon is serving (1) or draining (0).\n")
	p("# TYPE mpcgraphd_up gauge\n")
	up := 1
	if draining {
		up = 0
	}
	p("mpcgraphd_up %d\n", up)
	p("# HELP mpcgraphd_uptime_seconds Seconds since the daemon started.\n")
	p("# TYPE mpcgraphd_uptime_seconds gauge\n")
	p("mpcgraphd_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
	p("# HELP mpcgraphd_queue_depth Jobs admitted but not yet running.\n")
	p("# TYPE mpcgraphd_queue_depth gauge\n")
	p("mpcgraphd_queue_depth %d\n", queued)
	p("# HELP mpcgraphd_queue_capacity Bound of the job queue.\n")
	p("# TYPE mpcgraphd_queue_capacity gauge\n")
	p("mpcgraphd_queue_capacity %d\n", s.cfg.QueueDepth)
	p("# HELP mpcgraphd_jobs_inflight Jobs currently running on a worker.\n")
	p("# TYPE mpcgraphd_jobs_inflight gauge\n")
	p("mpcgraphd_jobs_inflight %d\n", inflight)
	p("# HELP mpcgraphd_jobs_submitted_total Jobs ever submitted.\n")
	p("# TYPE mpcgraphd_jobs_submitted_total counter\n")
	p("mpcgraphd_jobs_submitted_total %d\n", total)
	p("# HELP mpcgraphd_jobs Retained jobs by lifecycle state.\n")
	p("# TYPE mpcgraphd_jobs gauge\n")
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		p("mpcgraphd_jobs{state=%q} %d\n", st, byState[st])
	}
	p("# HELP mpcgraphd_solves_total Solve calls actually executed (cache hits and coalesced riders excluded).\n")
	p("# TYPE mpcgraphd_solves_total counter\n")
	p("mpcgraphd_solves_total %d\n", solves)
	p("# HELP mpcgraphd_coalesced_total Submissions that rode an identical in-flight computation.\n")
	p("# TYPE mpcgraphd_coalesced_total counter\n")
	p("mpcgraphd_coalesced_total %d\n", coalesces)
	p("# HELP mpcgraphd_batches_total Batches ever admitted through POST /v1/batches.\n")
	p("# TYPE mpcgraphd_batches_total counter\n")
	p("mpcgraphd_batches_total %d\n", batchesTotal)
	p("# HELP mpcgraphd_batch_jobs_total Jobs ever admitted as batch members.\n")
	p("# TYPE mpcgraphd_batch_jobs_total counter\n")
	p("mpcgraphd_batch_jobs_total %d\n", batchJobs)
	p("# HELP mpcgraphd_batches_active Retained batches with at least one non-terminal member.\n")
	p("# TYPE mpcgraphd_batches_active gauge\n")
	p("mpcgraphd_batches_active %d\n", batchesActive)
	p("# HELP mpcgraphd_cache_entries Resident entries of the result cache, by tier.\n")
	p("# TYPE mpcgraphd_cache_entries gauge\n")
	p("mpcgraphd_cache_entries{tier=\"memory\"} %d\n", mem.Entries)
	p("mpcgraphd_cache_entries{tier=\"disk\"} %d\n", disk.Entries)
	p("# HELP mpcgraphd_cache_capacity Entry bound of the result cache, by tier (disk 0 = tier disabled).\n")
	p("# TYPE mpcgraphd_cache_capacity gauge\n")
	p("mpcgraphd_cache_capacity{tier=\"memory\"} %d\n", mem.Capacity)
	p("mpcgraphd_cache_capacity{tier=\"disk\"} %d\n", disk.Capacity)
	p("# HELP mpcgraphd_cache_hits_total Result-cache hits, by serving tier.\n")
	p("# TYPE mpcgraphd_cache_hits_total counter\n")
	p("mpcgraphd_cache_hits_total{tier=\"memory\"} %d\n", mem.Hits)
	p("mpcgraphd_cache_hits_total{tier=\"disk\"} %d\n", disk.Hits)
	p("# HELP mpcgraphd_cache_misses_total Lookups that missed every cache tier.\n")
	p("# TYPE mpcgraphd_cache_misses_total counter\n")
	p("mpcgraphd_cache_misses_total %d\n", misses)
	p("# HELP mpcgraphd_cache_evictions_total Memory-tier LRU evictions.\n")
	p("# TYPE mpcgraphd_cache_evictions_total counter\n")
	p("mpcgraphd_cache_evictions_total %d\n", mem.Evictions)
	p("# HELP mpcgraphd_cache_disk_writes_total Entries persisted to the disk tier.\n")
	p("# TYPE mpcgraphd_cache_disk_writes_total counter\n")
	p("mpcgraphd_cache_disk_writes_total %d\n", disk.Writes)
	p("# HELP mpcgraphd_cache_disk_write_errors_total Failed disk-tier writes (the tier degrades, jobs are unaffected).\n")
	p("# TYPE mpcgraphd_cache_disk_write_errors_total counter\n")
	p("mpcgraphd_cache_disk_write_errors_total %d\n", disk.WriteErrors)
	p("# HELP mpcgraphd_cache_disk_quarantined_total Damaged disk entries moved aside instead of served.\n")
	p("# TYPE mpcgraphd_cache_disk_quarantined_total counter\n")
	p("mpcgraphd_cache_disk_quarantined_total %d\n", disk.Quarantined)
	p("# HELP mpcgraphd_workers Solve workers draining the queue.\n")
	p("# TYPE mpcgraphd_workers gauge\n")
	p("mpcgraphd_workers %d\n", s.cfg.Workers)

	// The latency histograms (HTTP by route/status, queue wait, solve by
	// problem/model, end-to-end, disk ops, batch settle, cache probes)
	// and the Go runtime telemetry. Families with no observations yet
	// expose nothing — a fresh daemon's scrape stays small.
	s.tel.reg.WritePrometheus(w)
	obs.WriteRuntimeProm(w)
}
