package cli

import (
	"flag"
	"fmt"

	"mpcgraph/internal/graphio"
	"mpcgraph/internal/scenario"
)

// runGen materializes a catalog scenario to a graph file (or stdout).
// The path is memory-flat in the output size: every catalog generator
// passes an edge-capacity hint to the builder (no re-grow churn while
// generating), and the graphio writers stream through a small reused
// buffer rather than rendering the file in memory — peak RSS is pinned
// by the scale-smoke gate (see docs/performance.md).
func runGen(args []string, env Env) error {
	fs := flag.NewFlagSet("mpcgraph gen", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	var (
		name       = fs.String("scenario", "", "catalog scenario to materialize (see mpcgraph list)")
		n          = fs.Int("n", 0, "vertex count (0 = the scenario's default)")
		seed       = fs.Uint64("seed", 1, "generation seed; same (scenario, n, seed, params) = same instance")
		out        = fs.String("out", "", "output path; extension selects the format, '.gz' compresses, '-' writes stdout")
		formatName = fs.String("format", "", "output format override (el, wel, dimacs, metis, mm); required with -out -")
		params     = paramFlag{}
	)
	fs.Var(params, "param", "scenario parameter key=value (repeatable, comma-separable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *name == "" {
		return fmt.Errorf("gen requires -scenario (see mpcgraph list)")
	}
	if *out == "" {
		return fmt.Errorf("gen requires -out (a path, or '-' with -format for stdout)")
	}
	in, err := scenario.Generate(*name, *n, *seed, params)
	if err != nil {
		return err
	}
	d := &graphio.Data{G: in.G, WG: in.WG}
	if *out == "-" {
		if *formatName == "" {
			return fmt.Errorf("-out - (stdout) requires -format")
		}
		f, err := graphio.ParseFormat(*formatName)
		if err != nil {
			return err
		}
		return graphio.Write(env.Stdout, d, f)
	}
	if *formatName != "" {
		f, err := graphio.ParseFormat(*formatName)
		if err != nil {
			return err
		}
		if err := graphio.WriteFileFormat(*out, d, f); err != nil {
			return err
		}
	} else if err := graphio.WriteFile(*out, d); err != nil {
		return err
	}
	fmt.Fprintf(env.Stderr, "wrote %s: n=%d m=%d\n", *out, d.G.NumVertices(), d.G.NumEdges())
	return nil
}
