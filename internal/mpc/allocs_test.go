package mpc

import (
	"testing"

	"mpcgraph/internal/raceflag"
	"mpcgraph/internal/rng"
)

// TestRoutingAllocsCeiling pins the machine core's steady-state routing
// cost: after the first round has sized the pooled scratch (per-machine
// word tallies, shard cursors, outbox buckets), subsequent rounds on the
// same shape must run in a constant, near-zero number of allocations.
// This is the property the PR 9 daemon work bought — per-Solve scratch
// comes from a pool and round bodies reuse it — and the ceiling keeps a
// per-round make() from regressing it. Skipped under race.
func TestRoutingAllocsCeiling(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race runtime")
	}
	const machines = 256
	const fanout = 64
	c, err := NewCluster(Config{Machines: machines})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([][]Message, machines)
	for i := range out {
		for k := 0; k < fanout; k++ {
			to := int(rng.Hash(uint64(i), uint64(k)) % machines)
			if to == i {
				to = (to + 1) % machines
			}
			out[i] = append(out[i], Message{To: to, Words: 3})
		}
	}
	// Warm the scratch: the first rounds grow the pooled buffers.
	for i := 0; i < 3; i++ {
		if _, err := c.Exchange(out); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := c.Exchange(out); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 16
	if allocs > ceiling {
		t.Errorf("Exchange: %.0f allocs/op steady state, ceiling %d", allocs, ceiling)
	}

	vol := make([]int64, machines*machines)
	for i := range vol {
		vol[i] = int64(i % 7)
	}
	if _, err := c.ChargeVolumeMatrix(vol); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(10, func() {
		if _, err := c.ChargeVolumeMatrix(vol); err != nil {
			t.Fatal(err)
		}
	})
	const volCeiling = 16
	if allocs > volCeiling {
		t.Errorf("ChargeVolumeMatrix: %.0f allocs/op steady state, ceiling %d", allocs, volCeiling)
	}
}
