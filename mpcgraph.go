// Package mpcgraph is a reproduction of "Improved Massively Parallel
// Computation Algorithms for MIS, Matching, and Vertex Cover" (Ghaffari,
// Gouleakis, Konrad, Mitrović, Rubinfeld; PODC 2018).
//
// The paper's headline claim is uniform: every problem it treats —
// maximal independent set (Theorem 1.1), (2+ε)-approximate maximum
// matching and minimum vertex cover (Theorem 1.2), (1+ε)-approximate
// matching (Corollary 1.3), and (2+ε)-approximate maximum weighted
// matching (Corollary 1.4) — is solved in O(log log n) rounds under the
// same Õ(n)-memory MPC model, and the techniques carry over to the
// CONGESTED-CLIQUE. The API mirrors that uniformity with a single entry
// point:
//
//	g := mpcgraph.RandomGraph(1<<14, 16.0/(1<<14), 42)
//	rep, err := mpcgraph.Solve(ctx, g, mpcgraph.ProblemApproxMatching,
//		mpcgraph.Options{Seed: 7, Eps: 0.1})
//
// Solve dispatches (Problem, Model) through an internal algorithm
// registry and returns one Report carrying the problem's payload plus
// the complete audited model costs: rounds, outer phases, the maximum
// per-machine (or per-player) load, total communication volume, wall
// time, and a per-stage breakdown — so the paper's round and space
// claims are observable outputs of every run. Options.Model selects the
// simulated model (ModelMPC or ModelCongestedClique); matching-family
// outputs are bit-identical across models, only the audited costs
// change. Runs are cancellable between simulated rounds through the
// context, and Options.Trace streams per-round progress (round index,
// live words, active vertices). Algorithms enumerates the registered
// pairs.
//
// Build graphs with NewGraphBuilder, FromEdgeList or the generator
// helpers; attach weights with NewWeightedGraph for
// ProblemWeightedMatching. All algorithms are deterministic given
// Options.Seed.
//
// Instances also come from the scenario engine: GenerateScenario
// materializes any recipe of the named workload catalog (Scenarios
// enumerates it), and ReadInstanceFile/WriteInstanceFile round-trip
// instances through the portable on-disk formats — edge list, weighted
// edge list, DIMACS, METIS, MatrixMarket, each optionally gzipped (see
// docs/formats.md). Both paths feed Solve interchangeably: generation
// and parsing are deterministic, so the same (scenario, n, seed,
// params) yields bit-identical Reports whether the instance stayed
// in-process or was round-tripped through any format. The cmd/mpcgraph
// CLI (gen, solve, bench, list) is a thin shell over exactly this API.
//
// The original per-problem functions (MIS, MISCongestedClique,
// ApproxMaxMatching, OnePlusEpsMatching, ApproxMinVertexCover,
// ApproxMaxWeightedMatching) remain as deprecated thin wrappers over
// Solve and produce bit-identical results; new code should call Solve.
//
// # Concurrency and determinism
//
// The model is bulk-synchronous: within a round every simulated machine
// computes independently, so the simulators execute each round body in
// parallel across real cores (see internal/par). Options.Workers
// controls the fan-out: 0 uses every core, 1 forces the exact
// sequential path, and any other value caps the goroutine count.
// Results are bit-identical for every Workers setting — parallel index
// ranges are sharded deterministically, integer accounting merges in
// shard order, and every floating-point sum is computed entirely inside
// one vertex's loop body — so Workers trades wall-clock time only,
// never reproducibility. A *Graph is safe for concurrent readers; the
// algorithm entry points may be called from different goroutines on
// different graphs.
package mpcgraph

import (
	"context"
	"fmt"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

// Graph is an immutable simple undirected graph. Construct one with
// NewGraphBuilder, FromEdgeList, or the generators in this package.
type Graph = graph.Graph

// Matching is a mate array: Matching[v] is v's partner or -1.
type Matching = graph.Matching

// Builder incrementally assembles a Graph.
type Builder = graph.Builder

// NewGraphBuilder returns a builder for a graph on n vertices.
func NewGraphBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdgeList builds a graph from explicit undirected edges.
func FromEdgeList(n int, edges [][2]int32) (*Graph, error) {
	return graph.FromEdges(n, edges)
}

// RandomGraph samples an Erdős–Rényi G(n, p) graph from the given seed.
func RandomGraph(n int, p float64, seed uint64) *Graph {
	return graph.GNP(n, p, rng.New(seed))
}

// Options configures Solve and the deprecated per-problem functions.
type Options struct {
	// Seed makes every random choice reproducible. Two runs with equal
	// seeds return identical results.
	Seed uint64
	// Eps is the approximation slack ε where applicable (default 0.1).
	Eps float64
	// MemoryFactor sets the per-machine memory to MemoryFactor·n words
	// (default 16), the constant behind the paper's Õ(n).
	MemoryFactor float64
	// Strict makes simulated memory/bandwidth violations return errors
	// instead of being recorded silently.
	Strict bool
	// Workers bounds the goroutines used to execute round bodies and
	// graph constructions: 0 (the default) uses every core, 1 is the
	// exact legacy sequential path, larger values cap the fan-out.
	// Results are bit-identical for every setting; see the package
	// comment.
	Workers int
	// Model selects the simulated computation model for Solve: ModelMPC
	// (the zero value) or ModelCongestedClique. The deprecated
	// per-problem functions override it to match their historical model.
	Model Model
	// Trace, when non-nil, receives one TraceEvent per metered
	// communication step of the run — the observability hook for long
	// simulations. Tracing never changes results, costs or errors.
	Trace TraceFunc
}

// Stats reports the simulated model costs of a run (legacy shape; Solve
// returns the richer Report).
type Stats struct {
	// Rounds is the number of MPC (or CONGESTED-CLIQUE) rounds used.
	Rounds int
	// MaxMachineWords is the largest per-round load on any machine.
	MaxMachineWords int64
	// TotalWords is the total communication volume.
	TotalWords int64
}

// MISResult is the result of MIS and MISCongestedClique.
type MISResult struct {
	// InMIS marks the maximal independent set.
	InMIS []bool
	// Stats carries the audited model costs.
	Stats Stats
	// Phases is the number of rank-prefix phases (O(log log Δ)).
	Phases int
}

// MIS computes a maximal independent set in the simulated MPC model using
// the paper's O(log log Δ)-round randomized greedy simulation.
//
// Deprecated: use Solve with ProblemMIS; this wrapper is equivalent to
// Solve(context.Background(), g, ProblemMIS, opts) with opts.Model
// forced to ModelMPC, and produces bit-identical results.
func MIS(g *Graph, opts Options) (*MISResult, error) {
	opts.Model = ModelMPC
	rep, err := Solve(context.Background(), g, ProblemMIS, opts)
	if err != nil {
		return nil, fmt.Errorf("mpcgraph: MIS: %w", err)
	}
	return &MISResult{InMIS: rep.InMIS, Stats: statsOf(rep), Phases: rep.Phases}, nil
}

// MISCongestedClique computes a maximal independent set in the simulated
// CONGESTED-CLIQUE model (Theorem 1.1, second part).
//
// Deprecated: use Solve with ProblemMIS and ModelCongestedClique.
func MISCongestedClique(g *Graph, opts Options) (*MISResult, error) {
	opts.Model = ModelCongestedClique
	rep, err := Solve(context.Background(), g, ProblemMIS, opts)
	if err != nil {
		return nil, fmt.Errorf("mpcgraph: MISCongestedClique: %w", err)
	}
	return &MISResult{InMIS: rep.InMIS, Stats: statsOf(rep), Phases: rep.Phases}, nil
}

// MatchingResult is the result of the matching algorithms.
type MatchingResult struct {
	// M is the computed matching.
	M Matching
	// Stats carries the audited model costs (rounds include all
	// fractional-simulation invocations and the completion).
	Stats Stats
}

// ApproxMaxMatching computes a (2+ε)-approximate maximum matching
// (Theorem 1.2): fractional weight-raising simulation, randomized
// rounding, and the small-matching completion.
//
// Deprecated: use Solve with ProblemApproxMatching. The wrapper now
// surfaces the full audited costs (historically it reported only
// Rounds).
func ApproxMaxMatching(g *Graph, opts Options) (*MatchingResult, error) {
	opts.Model = ModelMPC
	rep, err := Solve(context.Background(), g, ProblemApproxMatching, opts)
	if err != nil {
		return nil, fmt.Errorf("mpcgraph: ApproxMaxMatching: %w", err)
	}
	return &MatchingResult{M: rep.M, Stats: statsOf(rep)}, nil
}

// OnePlusEpsMatching computes a (1+ε)-approximate maximum matching
// (Corollary 1.3): the (2+ε) pipeline followed by short augmenting-path
// boosting. Exact on bipartite inputs; a measured heuristic on general
// graphs (see experiment E9: `mpcgraph bench -experiment E9`).
//
// Deprecated: use Solve with ProblemOnePlusEpsMatching. The wrapper now
// surfaces the full audited costs (historically it reported only
// Rounds).
func OnePlusEpsMatching(g *Graph, opts Options) (*MatchingResult, error) {
	opts.Model = ModelMPC
	rep, err := Solve(context.Background(), g, ProblemOnePlusEpsMatching, opts)
	if err != nil {
		return nil, fmt.Errorf("mpcgraph: OnePlusEpsMatching: %w", err)
	}
	return &MatchingResult{M: rep.M, Stats: statsOf(rep)}, nil
}

// VertexCoverResult is the result of ApproxMinVertexCover.
type VertexCoverResult struct {
	// InCover marks the vertex cover.
	InCover []bool
	// FractionalWeight is the weight of the dual fractional matching, a
	// lower bound on the optimum cover size. It can be loose on dense
	// inputs with small Eps (measured in experiment E6, `mpcgraph bench
	// -experiment E6`); for a robust per-run certificate compare the
	// cover against any maximal matching instead.
	FractionalWeight float64
	// Stats carries the audited model costs.
	Stats Stats
}

// ApproxMinVertexCover computes a (2+ε)-approximate minimum vertex cover
// (Theorem 1.2) in O(log log n) simulated MPC rounds.
//
// Deprecated: use Solve with ProblemVertexCover.
func ApproxMinVertexCover(g *Graph, opts Options) (*VertexCoverResult, error) {
	opts.Model = ModelMPC
	rep, err := Solve(context.Background(), g, ProblemVertexCover, opts)
	if err != nil {
		return nil, fmt.Errorf("mpcgraph: ApproxMinVertexCover: %w", err)
	}
	return &VertexCoverResult{
		InCover:          rep.InCover,
		FractionalWeight: rep.FractionalWeight,
		Stats:            statsOf(rep),
	}, nil
}

// WeightedGraph is a graph with positive edge weights.
type WeightedGraph = graph.Weighted

// NewWeightedGraph attaches weights (in edge-index order) to g.
func NewWeightedGraph(g *Graph, weights []float64) (*WeightedGraph, error) {
	return graph.NewWeighted(g, weights)
}

// RandomWeightedGraph samples G(n, p) with uniform weights in [lo, hi).
func RandomWeightedGraph(n int, p, lo, hi float64, seed uint64) *WeightedGraph {
	src := rng.New(seed)
	return graph.RandomWeights(graph.GNP(n, p, src), lo, hi, src)
}

// WeightedMatchingResult is the result of ApproxMaxWeightedMatching.
type WeightedMatchingResult struct {
	// M is the computed matching and Value its total weight.
	M     Matching
	Value float64
}

// ApproxMaxWeightedMatching computes a (2+ε)-approximate maximum weight
// matching (Corollary 1.4).
//
// Deprecated: use Solve with ProblemWeightedMatching, which additionally
// returns the audited model costs and can fail loudly under
// Options.Strict. This wrapper keeps the historical no-error contract:
// it forces Strict off (the metered run then records violations instead
// of failing), coerces an invalid MemoryFactor to the default — the old
// implementation ignored the field entirely — and returns an empty
// matching in the then-impossible event of an internal error.
func ApproxMaxWeightedMatching(wg *WeightedGraph, opts Options) *WeightedMatchingResult {
	opts.Model = ModelMPC
	opts.Strict = false
	if opts.MemoryFactor < 0 {
		opts.MemoryFactor = 0
	}
	rep, err := Solve(context.Background(), wg, ProblemWeightedMatching, opts)
	if err != nil {
		return &WeightedMatchingResult{M: graph.NewMatching(wg.NumVertices())}
	}
	return &WeightedMatchingResult{M: rep.M, Value: rep.Value}
}

// IsMaximalIndependentSet validates an MIS result against g.
func IsMaximalIndependentSet(g *Graph, set []bool) bool {
	return graph.IsMaximalIndependentSet(g, set)
}

// IsMatching validates a matching against g.
func IsMatching(g *Graph, m Matching) bool { return graph.IsMatching(g, m) }

// IsMaximalMatching validates that m is a matching of g and no edge of g
// has both endpoints free.
func IsMaximalMatching(g *Graph, m Matching) bool { return graph.IsMaximalMatching(g, m) }

// IsVertexCover validates a vertex cover against g.
func IsVertexCover(g *Graph, cover []bool) bool { return graph.IsVertexCover(g, cover) }
