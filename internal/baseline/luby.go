package baseline

import (
	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

// LubyResult carries Luby's MIS output together with its round count,
// which is the quantity experiment E1 compares against the paper's
// O(log log Δ) algorithm.
type LubyResult struct {
	// InMIS marks the maximal independent set.
	InMIS []bool
	// Iterations is the number of parallel iterations executed; each is
	// O(1) MPC rounds, so this is the MPC round complexity up to a
	// constant.
	Iterations int
}

// LubyMIS runs Luby's classical randomized MIS algorithm [Lub86]: each
// round every live vertex marks itself with probability 1/(2 deg(v)); for
// every edge with both endpoints marked, the endpoint of smaller degree
// (ties by id) unmarks; surviving marked vertices join the MIS and are
// removed along with their neighbors. Terminates in O(log n) rounds with
// high probability.
func LubyMIS(g *graph.Graph, src *rng.Source) *LubyResult {
	n := g.NumVertices()
	inMIS := make([]bool, n)
	alive := make([]bool, n)
	deg := make([]int, n)
	remaining := 0
	for v := int32(0); v < int32(n); v++ {
		if g.Degree(v) == 0 {
			inMIS[v] = true // isolated vertices join immediately, costing no rounds
			continue
		}
		alive[v] = true
		deg[v] = g.Degree(v)
		remaining++
	}
	marked := make([]bool, n)
	iters := 0
	for remaining > 0 {
		iters++
		for v := int32(0); v < int32(n); v++ {
			if !alive[v] {
				marked[v] = false
				continue
			}
			if deg[v] == 0 {
				marked[v] = true
				continue
			}
			marked[v] = src.Bool(1 / (2 * float64(deg[v])))
		}
		// Conflict resolution: lower degree (then lower id) yields.
		for v := int32(0); v < int32(n); v++ {
			if !alive[v] || !marked[v] {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if !alive[u] || !marked[u] {
					continue
				}
				if deg[v] < deg[u] || (deg[v] == deg[u] && v < u) {
					marked[v] = false
					break
				}
			}
		}
		// Survivors join; remove closed neighborhoods and update degrees.
		for v := int32(0); v < int32(n); v++ {
			if !alive[v] || !marked[v] {
				continue
			}
			inMIS[v] = true
			alive[v] = false
			remaining--
			for _, u := range g.Neighbors(v) {
				if alive[u] {
					alive[u] = false
					remaining--
				}
			}
		}
		// Recompute live degrees (an O(m) pass, standard in the model).
		for v := int32(0); v < int32(n); v++ {
			if !alive[v] {
				continue
			}
			d := 0
			for _, u := range g.Neighbors(v) {
				if alive[u] {
					d++
				}
			}
			deg[v] = d
		}
	}
	return &LubyResult{InMIS: inMIS, Iterations: iters}
}
