package service

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// The end-to-end batch suite: sweep expansion, the dedup accounting the
// tentpole promises (a fully cached/coalescible batch performs zero new
// solves, proven against mpcgraphd_solves_total), mid-batch drain,
// per-job cancellation inside a live batch, the NDJSON completion
// stream, and a seeded-burst soak asserting coalesced+cached >=
// submitted - unique under -race.

// metricValue scrapes /metrics and returns the named sample.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, data := getBody(t, base+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed:\n%s", name, data)
	return 0
}

func decodeBatch(t *testing.T, data []byte) *BatchView {
	t.Helper()
	var v BatchView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("bad batch view %s: %v", data, err)
	}
	return &v
}

// submitBatchHTTP posts a batch and asserts 201.
func submitBatchHTTP(t *testing.T, base string, req *BatchRequest) *BatchView {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/batches", req)
	if resp.StatusCode != 201 {
		t.Fatalf("POST /v1/batches: %s: %s", resp.Status, data)
	}
	return decodeBatch(t, data)
}

// awaitBatch polls until every member of the batch is terminal.
func awaitBatch(t *testing.T, base, id string) *BatchView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := getBody(t, base+"/v1/batches/"+id)
		if resp.StatusCode != 200 {
			t.Fatalf("GET batch: %s: %s", resp.Status, data)
		}
		v := decodeBatch(t, data)
		if v.State == "done" {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("batch %s did not finish", id)
	return nil
}

// sweep builds the canonical test sweep: gnp instances over a seed
// range for the given pairs.
func sweep(n int, from, to uint64, pairs ...PairRequest) *BatchRequest {
	return &BatchRequest{Sweep: &SweepRequest{
		Scenarios: []ScenarioRequest{{Name: "gnp", N: n}},
		Seeds:     &SeedRange{From: from, To: to},
		Pairs:     pairs,
	}}
}

// TestBatchSweepExpandAndComplete: the cross product lands, every
// member completes, and the accounting is conserved.
func TestBatchSweepExpandAndComplete(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	b := submitBatchHTTP(t, ts.URL, sweep(200, 1, 3,
		PairRequest{Problem: "mis"}, PairRequest{Problem: "vertex-cover"}))
	if b.Total != 6 || len(b.Jobs) != 6 {
		t.Fatalf("sweep 1 scenario x 3 seeds x 2 pairs expanded to %d jobs", b.Total)
	}

	v := awaitBatch(t, ts.URL, b.ID)
	if v.Counts.Done != 6 {
		t.Fatalf("counts after completion: %+v", v.Counts)
	}
	d := v.Dedup
	if d.Resolved != 6 || d.UniqueKeys != 6 {
		t.Errorf("dedup accounting: %+v (want 6 resolved, 6 unique)", d)
	}
	if got := d.Enqueued + d.CacheHits.Memory + d.CacheHits.Disk + d.Coalesced + d.FailedResolve; got != 6 {
		t.Errorf("placement accounting not conserved: %+v sums to %d", d, got)
	}
	if v.FinishedAt == "" || v.WallMs < 0 {
		t.Errorf("finished batch has no wall time: finishedAt=%q wallMs=%v", v.FinishedAt, v.WallMs)
	}

	// Every member view names the batch and a distinct seed cell.
	seen := map[string]bool{}
	for _, id := range v.Jobs {
		resp, data := getBody(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != 200 {
			t.Fatalf("GET member %s: %s", id, resp.Status)
		}
		jv := decodeView(t, data)
		if jv.Batch != b.ID {
			t.Errorf("member %s carries batch %q, want %q", id, jv.Batch, b.ID)
		}
		if jv.State != StateDone {
			t.Errorf("member %s state %s (%s)", id, jv.State, jv.Error)
		}
		cell := jv.Problem + "/" + jv.Source
		if seen[cell] {
			t.Errorf("duplicate sweep cell %q", cell)
		}
		seen[cell] = true
	}

	// Batch listing and metrics agree.
	resp, data := getBody(t, ts.URL+"/v1/batches")
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/batches: %s", resp.Status)
	}
	var list struct {
		Batches []*BatchView `json:"batches"`
	}
	if err := json.Unmarshal(data, &list); err != nil || len(list.Batches) != 1 {
		t.Fatalf("batch listing: %v %s", err, data)
	}
	if got := metricValue(t, ts.URL, "mpcgraphd_batch_jobs_total"); got != 6 {
		t.Errorf("mpcgraphd_batch_jobs_total %v, want 6", got)
	}
	if got := metricValue(t, ts.URL, "mpcgraphd_batches_active"); got != 0 {
		t.Errorf("mpcgraphd_batches_active %v after completion", got)
	}
}

// TestBatchSweepSkipsUnweightedCells: weighted-matching cells are
// generated only for weighted scenarios.
func TestBatchSweepSkipsUnweightedCells(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	b := submitBatchHTTP(t, ts.URL, &BatchRequest{Sweep: &SweepRequest{
		Scenarios: []ScenarioRequest{{Name: "gnp", N: 200}, {Name: "weighted-gnp", N: 200}},
		Seeds:     &SeedRange{From: 5, To: 6},
		Pairs:     []PairRequest{{Problem: "weighted-matching"}, {Problem: "mis"}},
	}})
	// gnp x weighted-matching is skipped: 2 scenarios x 2 seeds x 2
	// pairs = 8 cells minus the 2 skipped.
	if b.Total != 6 {
		t.Fatalf("weighted skip: expanded to %d jobs, want 6", b.Total)
	}
	v := awaitBatch(t, ts.URL, b.ID)
	if v.Counts.Done != 6 || v.Counts.Failed != 0 {
		t.Fatalf("counts: %+v", v.Counts)
	}
}

// TestBatchFullyCachedZeroSolves is the tentpole acceptance criterion:
// resubmitting a completed sweep performs zero new solves, proven by
// mpcgraphd_solves_total.
func TestBatchFullyCachedZeroSolves(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := sweep(300, 1, 2, PairRequest{Problem: "mis"})
	first := awaitBatch(t, ts.URL, submitBatchHTTP(t, ts.URL, req).ID)
	if first.Counts.Done != 2 {
		t.Fatalf("warm-up batch: %+v", first.Counts)
	}
	solves := metricValue(t, ts.URL, "mpcgraphd_solves_total")

	second := awaitBatch(t, ts.URL, submitBatchHTTP(t, ts.URL, req).ID)
	if second.Counts.Done != 2 {
		t.Fatalf("replay batch: %+v", second.Counts)
	}
	if after := metricValue(t, ts.URL, "mpcgraphd_solves_total"); after != solves {
		t.Fatalf("fully cached batch performed %v new solves", after-solves)
	}
	d := second.Dedup
	if d.CacheHits.Memory+d.CacheHits.Disk != 2 || d.Enqueued != 0 {
		t.Errorf("replay dedup accounting: %+v (want 2 cache hits, 0 enqueued)", d)
	}
}

// TestBatchDedupWithinBatch: identical members of one batch share one
// solve — the leader runs, the rest ride the flight or the cache.
func TestBatchDedupWithinBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	job := JobRequest{
		Problem:  "mis",
		Scenario: &ScenarioRequest{Name: "gnp", N: 300, Seed: 11},
		Options:  OptionsRequest{Seed: 11},
	}
	req := &BatchRequest{Jobs: []JobRequest{job, job, job, job, job}}
	v := awaitBatch(t, ts.URL, submitBatchHTTP(t, ts.URL, req).ID)
	if v.Counts.Done != 5 {
		t.Fatalf("counts: %+v", v.Counts)
	}
	d := v.Dedup
	if d.UniqueKeys != 1 || d.Enqueued != 1 {
		t.Errorf("dedup: %+v (want 1 unique key, 1 enqueued)", d)
	}
	if settled := d.CacheHits.Memory + d.CacheHits.Disk + d.Coalesced; settled != 4 {
		t.Errorf("dedup: %+v (want 4 members settled without a queue slot)", d)
	}
	if solves := metricValue(t, ts.URL, "mpcgraphd_solves_total"); solves != 1 {
		t.Errorf("5 identical members cost %v solves, want 1", solves)
	}
}

// TestBatchMemberResolveFailure: a member that fails instance
// resolution fails alone; the batch still completes and accounts it.
func TestBatchMemberResolveFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	good := JobRequest{Problem: "mis", Scenario: &ScenarioRequest{Name: "gnp", N: 200, Seed: 3}}
	bad := JobRequest{Problem: "mis", Scenario: &ScenarioRequest{Name: "gnp", N: 200, Seed: 3,
		Params: map[string]float64{"nonsense": 1}}}
	v := awaitBatch(t, ts.URL, submitBatchHTTP(t, ts.URL, &BatchRequest{Jobs: []JobRequest{good, bad}}).ID)
	if v.Counts.Done != 1 || v.Counts.Failed != 1 {
		t.Fatalf("counts: %+v", v.Counts)
	}
	if v.Dedup.FailedResolve != 1 {
		t.Errorf("dedup: %+v (want 1 failedResolve)", v.Dedup)
	}
}

// TestBatchRejections: the admission table — hostile sizes are 413 with
// the documented limit, malformed specs 400/422, all before any job
// record exists.
func TestBatchRejections(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxBatchJobs: 8})
	job := JobRequest{Problem: "mis", Scenario: &ScenarioRequest{Name: "gnp", N: 100}}
	nineJobs := make([]JobRequest, 9)
	for i := range nineJobs {
		nineJobs[i] = job
	}
	cases := []struct {
		name   string
		req    *BatchRequest
		status int
	}{
		{"explicit list over limit", &BatchRequest{Jobs: nineJobs}, 413},
		{"seed range over limit", sweep(100, 0, math.MaxUint64, PairRequest{Problem: "mis"}), 413},
		{"cross product over limit", sweep(100, 1, 5, PairRequest{Problem: "mis"}, PairRequest{Problem: "vertex-cover"}), 413},
		{"jobs and sweep", &BatchRequest{Jobs: []JobRequest{job}, Sweep: sweep(100, 1, 1).Sweep}, 400},
		{"no members", &BatchRequest{}, 400},
		{"empty seed range", sweep(100, 9, 3, PairRequest{Problem: "mis"}), 400},
		{"unknown scenario", &BatchRequest{Sweep: &SweepRequest{
			Scenarios: []ScenarioRequest{{Name: "nope"}}}}, 400},
		{"unknown problem", sweep(100, 1, 1, PairRequest{Problem: "shortest-path"}), 400},
		{"unregistered pair", sweep(100, 1, 1, PairRequest{Problem: "weighted-matching", Model: "congested-clique"}), 422},
		{"zero cells after weighted skip", sweep(100, 1, 1, PairRequest{Problem: "weighted-matching"}), 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/batches", tc.req)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			if tc.status == 413 && !strings.Contains(string(data), "limit") {
				t.Errorf("413 body does not name the limit: %s", data)
			}
		})
	}
	// Nothing was admitted: no job records, no batches, no members.
	s.mu.Lock()
	jobs, batches := len(s.jobs), len(s.batches)
	s.mu.Unlock()
	if jobs != 0 || batches != 0 {
		t.Errorf("rejected batches left %d jobs and %d batches behind", jobs, batches)
	}
	// Unknown fields are rejected like the single-job endpoint.
	resp, _ := http.Post(ts.URL+"/v1/batches", "application/json",
		strings.NewReader(`{"sweepp": {}}`))
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// TestBatchCancelRemainder: DELETE on a live batch cancels every
// non-terminal member; a second DELETE is idempotent. The server is
// workerless, so members stay deterministically queued.
func TestBatchCancelRemainder(t *testing.T) {
	s := idleServer(t, Config{QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain(5 * time.Second)
	})

	b := submitBatchHTTP(t, ts.URL, sweep(100, 1, 4, PairRequest{Problem: "mis"}))
	// Wait for the feeder to enqueue all four (no workers ever run them).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, data := getBody(t, ts.URL+"/v1/batches/"+b.ID)
		if resp.StatusCode != 200 {
			t.Fatalf("GET batch: %s", resp.Status)
		}
		if decodeBatch(t, data).Dedup.Enqueued == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("feeder never enqueued the batch: %s", data)
		}
		time.Sleep(2 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/batches/"+b.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("DELETE batch: %s", resp.Status)
	}

	v := awaitBatch(t, ts.URL, b.ID)
	if !v.Canceled || v.Counts.Canceled != 4 {
		t.Fatalf("after cancel: canceled=%t counts=%+v", v.Canceled, v.Counts)
	}

	// Idempotent: canceling a finished batch changes nothing.
	resp2, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("second DELETE: %s", resp2.Status)
	}
}

// TestBatchMemberCancelInsideLiveBatch: canceling one member of a live
// batch cancels only that member — the rest complete and the batch
// itself is not marked canceled.
func TestBatchMemberCancelInsideLiveBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Failpoints: "solve-delay=100ms"})
	b := submitBatchHTTP(t, ts.URL, sweep(100, 1, 3, PairRequest{Problem: "mis"}))

	// The single delayed worker holds the first member for 100ms, so the
	// last member is still queued — cancel it through the job API.
	victim := b.Jobs[len(b.Jobs)-1]
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+victim, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 && resp.StatusCode != 409 {
		t.Fatalf("DELETE member: %s", resp.Status)
	}
	canceled := resp.StatusCode == 200

	v := awaitBatch(t, ts.URL, b.ID)
	if v.Canceled {
		t.Errorf("member cancel marked the whole batch canceled")
	}
	wantCanceled := 0
	if canceled {
		wantCanceled = 1
	}
	if v.Counts.Canceled != wantCanceled || v.Counts.Done != 3-wantCanceled {
		t.Errorf("counts after member cancel: %+v (member cancel won: %t)", v.Counts, canceled)
	}
	member := awaitTerminal(t, ts.URL, victim)
	if canceled && member.State != StateCanceled {
		t.Errorf("canceled member state %s", member.State)
	}
}

// TestBatchMidDrain: a drain that lands while a batch is feeding leaves
// every member terminal (finished or canceled, never stranded) and
// Drain itself returns — the feeder cannot wedge it.
func TestBatchMidDrain(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 2, Failpoints: "solve-delay=20ms"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 8 unique cells against a depth-2 queue: the feeder will be parked
	// in a blocking queue send when the drain starts.
	b := submitBatchHTTP(t, ts.URL, sweep(100, 1, 8, PairRequest{Problem: "mis"}))

	drained := make(chan struct{})
	go func() {
		s.Drain(30 * time.Second)
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(60 * time.Second):
		t.Fatal("Drain wedged behind the batch feeder")
	}

	v := awaitBatch(t, ts.URL, b.ID)
	if v.Counts.Done+v.Counts.Canceled+v.Counts.Failed != v.Total {
		t.Fatalf("drained batch left non-terminal members: %+v", v.Counts)
	}
	if v.Counts.Queued != 0 || v.Counts.Running != 0 {
		t.Fatalf("stranded members after drain: %+v", v.Counts)
	}
}

// batchStreamLine is one NDJSON line of the completion stream: either a
// member completion (ID set; batch is then the batch id string) or the
// terminal marker (Done set; batch is then the full batch view).
type batchStreamLine struct {
	ID    string          `json:"id"`
	State JobState        `json:"state"`
	Done  bool            `json:"done"`
	Batch json.RawMessage `json:"batch"`
}

// TestBatchStreamNDJSON: the stream replays members already terminal,
// follows live completions, and terminates with the batch view.
func TestBatchStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	b := submitBatchHTTP(t, ts.URL, sweep(200, 1, 4, PairRequest{Problem: "mis"}))

	resp, err := http.Get(ts.URL + "/v1/batches/" + b.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}

	var members []batchStreamLine
	var end *batchStreamLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line batchStreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if line.Done {
			end = &line
			break
		}
		members = append(members, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(members) != 4 {
		t.Fatalf("stream carried %d member completions, want 4", len(members))
	}
	for _, m := range members {
		if m.State != StateDone {
			t.Errorf("streamed member %s in state %s", m.ID, m.State)
		}
	}
	if end == nil || end.Batch == nil {
		t.Fatalf("stream never emitted the terminal marker")
	}
	final := decodeBatch(t, end.Batch)
	if final.State != "done" {
		t.Fatalf("terminal marker batch state %q", final.State)
	}

	// A second stream against the finished batch replays everything and
	// terminates immediately.
	resp2, data := getBody(t, ts.URL+"/v1/batches/"+b.ID+"/stream")
	if resp2.StatusCode != 200 {
		t.Fatalf("replay stream: %s", resp2.Status)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 {
		t.Fatalf("replay stream carried %d lines, want 5:\n%s", len(lines), data)
	}
}

// TestBatchSoakSeededBurst is the soak: concurrent batches with heavy
// key overlap, under -race in CI. The dedup inequality must hold —
// coalesced + cached >= submitted - unique — and the daemon must not
// solve more than the unique key count.
func TestBatchSoakSeededBurst(t *testing.T) {
	const (
		bursts = 6
		seeds  = 5 // unique keys per pair; shared across all bursts
	)
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256})

	views := make([]*BatchView, bursts)
	var wg sync.WaitGroup
	for i := 0; i < bursts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload, err := json.Marshal(sweep(200, 1, seeds, PairRequest{Problem: "mis"}))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(ts.URL+"/v1/batches", "application/json", strings.NewReader(string(payload)))
			if err != nil {
				t.Error(err)
				return
			}
			var v BatchView
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil || resp.StatusCode != 201 {
				t.Errorf("burst %d: status %d err %v", i, resp.StatusCode, err)
				return
			}
			views[i] = &v
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	submitted, settled, enqueued := 0, 0, 0
	for _, v := range views {
		final := awaitBatch(t, ts.URL, v.ID)
		if final.Counts.Done != final.Total {
			t.Fatalf("burst %s: %+v", v.ID, final.Counts)
		}
		submitted += final.Total
		settled += final.Dedup.CacheHits.Memory + final.Dedup.CacheHits.Disk + final.Dedup.Coalesced
		enqueued += final.Dedup.Enqueued
	}
	if submitted != bursts*seeds {
		t.Fatalf("submitted %d members, want %d", submitted, bursts*seeds)
	}
	// The soak inequality: every member beyond the unique keys settled
	// without a queue slot.
	if settled < submitted-seeds {
		t.Errorf("coalesced+cached = %d < submitted-unique = %d", settled, submitted-seeds)
	}
	if solves := metricValue(t, ts.URL, "mpcgraphd_solves_total"); solves > seeds {
		t.Errorf("%v solves for %d unique keys", solves, seeds)
	}
	if enqueued > seeds {
		t.Errorf("%d members enqueued for %d unique keys", enqueued, seeds)
	}
}

// TestBatchDrainingRejects: a draining server rejects new batches with
// 503 + Retry-After before creating anything.
func TestBatchDrainingRejects(t *testing.T) {
	s := idleServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	s.Drain(0)

	resp, _ := postJSON(t, ts.URL+"/v1/batches", sweep(100, 1, 1, PairRequest{Problem: "mis"}))
	if resp.StatusCode != 503 {
		t.Fatalf("draining submit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("503 rejection carries no Retry-After")
	}
}

// TestBatchEviction: finished batches beyond MaxBatchesRetained are
// evicted oldest-first; live batches never are.
func TestBatchEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBatchesRetained: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		b := submitBatchHTTP(t, ts.URL, sweep(100, uint64(i+1), uint64(i+1), PairRequest{Problem: "mis"}))
		awaitBatch(t, ts.URL, b.ID)
		ids = append(ids, b.ID)
	}
	if resp, _ := getBody(t, ts.URL+"/v1/batches/"+ids[0]); resp.StatusCode != 404 {
		t.Errorf("oldest finished batch still retained: %s", resp.Status)
	}
	for _, id := range ids[1:] {
		if resp, _ := getBody(t, ts.URL+"/v1/batches/"+id); resp.StatusCode != 200 {
			t.Errorf("batch %s evicted too eagerly: %s", id, resp.Status)
		}
	}
}
