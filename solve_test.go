package mpcgraph

import (
	"context"
	"errors"
	"testing"
)

// parityGraphs returns the generator table shared by the wrapper-parity
// tests: a sparse G(n,p), a dense G(n,p), and a structured ring.
func parityGraphs(seed uint64) map[string]*Graph {
	b := NewGraphBuilder(101)
	for v := int32(0); v < 101; v++ {
		b.AddEdge(v, (v+1)%101)
	}
	return map[string]*Graph{
		"gnp-sparse": RandomGraph(300, 0.02, seed),
		"gnp-dense":  RandomGraph(150, 0.15, seed+1),
		"ring":       b.MustBuild(),
	}
}

func sameBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameMatching(a, b Matching) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func reportStats(rep *Report) Stats {
	return Stats{Rounds: rep.Rounds, MaxMachineWords: rep.MaxMachineWords, TotalWords: rep.TotalWords}
}

// TestDeprecatedWrapperParity is the API-parity acceptance test: every
// deprecated per-problem wrapper must produce results bit-identical to
// its Solve equivalent, with identical audited costs, across seeds,
// generators and Workers settings.
func TestDeprecatedWrapperParity(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []uint64{2, 17} {
		for name, g := range parityGraphs(seed) {
			for _, workers := range []int{1, 0} {
				opts := Options{Seed: seed, Eps: 0.1, Workers: workers}
				label := func(fn string) string {
					return fn + "/" + name
				}

				t.Run(label("MIS"), func(t *testing.T) {
					old, err := MIS(g, opts)
					if err != nil {
						t.Fatal(err)
					}
					rep, err := Solve(ctx, g, ProblemMIS, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !sameBools(old.InMIS, rep.InMIS) {
						t.Error("MIS sets differ")
					}
					if old.Stats != reportStats(rep) || old.Phases != rep.Phases {
						t.Errorf("MIS costs differ: %+v vs %+v", old.Stats, reportStats(rep))
					}
				})

				t.Run(label("MISCongestedClique"), func(t *testing.T) {
					old, err := MISCongestedClique(g, opts)
					if err != nil {
						t.Fatal(err)
					}
					cliqueOpts := opts
					cliqueOpts.Model = ModelCongestedClique
					rep, err := Solve(ctx, g, ProblemMIS, cliqueOpts)
					if err != nil {
						t.Fatal(err)
					}
					if !sameBools(old.InMIS, rep.InMIS) {
						t.Error("clique MIS sets differ")
					}
					if old.Stats != reportStats(rep) {
						t.Errorf("clique MIS costs differ: %+v vs %+v", old.Stats, reportStats(rep))
					}
				})

				t.Run(label("ApproxMaxMatching"), func(t *testing.T) {
					old, err := ApproxMaxMatching(g, opts)
					if err != nil {
						t.Fatal(err)
					}
					rep, err := Solve(ctx, g, ProblemApproxMatching, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !sameMatching(old.M, rep.M) {
						t.Error("matchings differ")
					}
					if old.Stats != reportStats(rep) {
						t.Errorf("matching costs differ: %+v vs %+v", old.Stats, reportStats(rep))
					}
				})

				t.Run(label("OnePlusEpsMatching"), func(t *testing.T) {
					old, err := OnePlusEpsMatching(g, opts)
					if err != nil {
						t.Fatal(err)
					}
					rep, err := Solve(ctx, g, ProblemOnePlusEpsMatching, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !sameMatching(old.M, rep.M) {
						t.Error("boosted matchings differ")
					}
					if old.Stats != reportStats(rep) {
						t.Errorf("boosted costs differ: %+v vs %+v", old.Stats, reportStats(rep))
					}
				})

				t.Run(label("ApproxMinVertexCover"), func(t *testing.T) {
					old, err := ApproxMinVertexCover(g, opts)
					if err != nil {
						t.Fatal(err)
					}
					rep, err := Solve(ctx, g, ProblemVertexCover, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !sameBools(old.InCover, rep.InCover) {
						t.Error("covers differ")
					}
					if old.FractionalWeight != rep.FractionalWeight {
						t.Error("dual weights differ")
					}
					if old.Stats != reportStats(rep) {
						t.Errorf("cover costs differ: %+v vs %+v", old.Stats, reportStats(rep))
					}
				})
			}
		}

		t.Run("ApproxMaxWeightedMatching", func(t *testing.T) {
			wg := RandomWeightedGraph(200, 0.05, 1, 10, seed)
			opts := Options{Seed: seed, Eps: 0.1}
			old := ApproxMaxWeightedMatching(wg, opts)
			rep, err := Solve(ctx, wg, ProblemWeightedMatching, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !sameMatching(old.M, rep.M) {
				t.Error("weighted matchings differ")
			}
			if old.Value != rep.Value {
				t.Errorf("weighted values differ: %v vs %v", old.Value, rep.Value)
			}
		})
	}
}

// TestSolveWrapperStatsComplete pins the satellite fixes: the matching
// wrappers must surface the full audited costs, not just Rounds.
func TestSolveWrapperStatsComplete(t *testing.T) {
	g := RandomGraph(400, 0.02, 5)
	opts := Options{Seed: 6, Eps: 0.1}
	m, err := ApproxMaxMatching(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.MaxMachineWords == 0 || m.Stats.TotalWords == 0 {
		t.Errorf("ApproxMaxMatching stats still lossy: %+v", m.Stats)
	}
	b, err := OnePlusEpsMatching(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats.MaxMachineWords == 0 || b.Stats.TotalWords == 0 {
		t.Errorf("OnePlusEpsMatching stats still lossy: %+v", b.Stats)
	}
}

// TestSolveCancellation asserts the cancellable-runs acceptance
// criterion: cancelling mid-run surfaces context.Canceled promptly (the
// simulators check the context at every metered round).
func TestSolveCancellation(t *testing.T) {
	g := RandomGraph(4000, 0.01, 7)
	for _, p := range []Problem{ProblemMIS, ProblemApproxMatching} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			rounds := 0
			_, err := Solve(ctx, g, p, Options{Seed: 8, Trace: func(ev TraceEvent) {
				rounds++
				if rounds == 2 {
					cancel() // mid-run: the next round check must abort
				}
			}})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
		})
	}

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := Solve(ctx, g, ProblemVertexCover, Options{Seed: 9}); !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	})
}

// TestSolveTrace asserts the observability contract: rounds are
// non-decreasing, the last event matches the report's round total, and
// the event volumes sum to the report's total words.
func TestSolveTrace(t *testing.T) {
	g := RandomGraph(600, 0.02, 10)
	var events []TraceEvent
	rep, err := Solve(context.Background(), g, ProblemMIS, Options{Seed: 11, Trace: func(ev TraceEvent) {
		events = append(events, ev)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	var words int64
	sawActive := false
	for i, ev := range events {
		if i > 0 && ev.Round < events[i-1].Round {
			t.Fatal("trace rounds decreased")
		}
		if ev.ActiveVertices > 0 {
			sawActive = true
		}
		words += ev.LiveWords
	}
	if last := events[len(events)-1].Round; last != rep.Rounds {
		t.Errorf("last traced round %d != report rounds %d", last, rep.Rounds)
	}
	if words != rep.TotalWords {
		t.Errorf("traced words %d != report total %d", words, rep.TotalWords)
	}
	if !sawActive {
		t.Error("no trace event carried an active-vertex gauge")
	}
}

func TestSolveDispatchErrors(t *testing.T) {
	g := RandomGraph(50, 0.1, 12)
	if _, err := Solve(context.Background(), g, ProblemWeightedMatching, Options{Seed: 1}); !errors.Is(err, ErrNeedWeightedGraph) {
		t.Errorf("want ErrNeedWeightedGraph, got %v", err)
	}
	wg := RandomWeightedGraph(50, 0.1, 1, 2, 13)
	opts := Options{Seed: 1, Model: ModelCongestedClique}
	if _, err := Solve(context.Background(), wg, ProblemWeightedMatching, opts); !errors.Is(err, ErrUnsupported) {
		t.Errorf("want ErrUnsupported, got %v", err)
	}
	// A weighted instance is a valid input for unweighted problems.
	rep, err := Solve(context.Background(), wg, ProblemMIS, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !IsMaximalIndependentSet(wg.Graph, rep.InMIS) {
		t.Error("MIS on weighted instance invalid")
	}
}

func TestSolveAlgorithmsEnumeration(t *testing.T) {
	algos := Algorithms()
	if len(algos) == 0 {
		t.Fatal("no registered algorithms")
	}
	seen := map[Problem]bool{}
	for _, a := range algos {
		seen[a.Problem] = true
	}
	for _, p := range []Problem{ProblemMIS, ProblemMaximalMatching, ProblemApproxMatching,
		ProblemOnePlusEpsMatching, ProblemVertexCover, ProblemWeightedMatching} {
		if !seen[p] {
			t.Errorf("problem %s missing from Algorithms()", p)
		}
	}
}

func TestSolveMaximalMatching(t *testing.T) {
	g := RandomGraph(500, 0.02, 14)
	for _, m := range []Model{ModelMPC, ModelCongestedClique} {
		rep, err := Solve(context.Background(), g, ProblemMaximalMatching, Options{Seed: 15, Model: m})
		if err != nil {
			t.Fatal(err)
		}
		if !IsMaximalMatching(g, rep.M) {
			t.Errorf("model %s: not a maximal matching", m)
		}
		if rep.Rounds == 0 || rep.TotalWords == 0 {
			t.Errorf("model %s: costs not audited: %+v", m, reportStats(rep))
		}
	}
}
