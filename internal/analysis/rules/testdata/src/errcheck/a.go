// Package errcheck exercises the discarded-error analyzer: a call
// whose error result vanishes in statement position is flagged unless
// the discard is written down as `_ = ...`.
package errcheck

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"
)

func cleanup(path string) {
	os.Remove(path) // want "errcheck: os.Remove returns an error that is silently discarded"
}

// cleanupDeliberate records the decision: best-effort removal.
func cleanupDeliberate(path string) {
	_ = os.Remove(path)
}

// report uses the fmt printers, exempt by convention.
func report(n int) {
	fmt.Println("n =", n)
}

// digest writes to a hash.Hash, which never fails by contract.
func digest(data []byte) []byte {
	h := sha256.New()
	h.Write(data)
	return h.Sum(nil)
}

// join writes to a strings.Builder, which never fails by contract.
func join(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}

// readAll defers the Close; defer statements are exempt (the usual
// read-path idiom where the read error dominates).
func readAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
