// Package obs poses as mpcgraph/internal/obs, which is on the
// no-wall-clock allow list: the telemetry core touches the host clock
// only to form monotonic durations (histogram observations, the
// logger's seconds-since-start field). No findings.
package obs

import "time"

func observeSince(start time.Time) time.Duration { return time.Since(start) }

func stamp() time.Time { return time.Now() }
