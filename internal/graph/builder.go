package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges are deduplicated at Build time; self-loops are rejected eagerly
// because no algorithm in the paper is defined on them.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// NumVertices returns the number of vertices the built graph will have.
func (b *Builder) NumVertices() int { return b.n }

// AddEdge records the undirected edge {u, v}. It panics on out-of-range
// endpoints or self-loops; both indicate caller bugs rather than runtime
// conditions.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{u, v})
}

// Build constructs the graph, deduplicating parallel edges.
func (b *Builder) Build() (*Graph, error) {
	if b.n == 0 && len(b.edges) > 0 {
		return nil, errors.New("graph: edges on zero vertices")
	}
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			dedup = append(dedup, e)
		}
	}
	b.edges = dedup

	offsets := make([]int32, b.n+1)
	for _, e := range b.edges {
		offsets[e[0]+1]++
		offsets[e[1]+1]++
	}
	for i := 1; i <= b.n; i++ {
		offsets[i] += offsets[i-1]
	}
	adj := make([]int32, 2*len(b.edges))
	cursor := make([]int32, b.n)
	for _, e := range b.edges {
		u, v := e[0], e[1]
		adj[offsets[u]+cursor[u]] = v
		cursor[u]++
		adj[offsets[v]+cursor[v]] = u
		cursor[v]++
	}
	g := &Graph{n: b.n, m: len(b.edges), offsets: offsets, adj: adj}
	// Each per-vertex list must be sorted; inputs were sorted by (u,v) so
	// the lists of smaller endpoints are sorted, but entries pointing back
	// from larger endpoints interleave. Sort each list.
	for v := int32(0); int(v) < b.n; v++ {
		nb := g.adj[g.offsets[v]:g.offsets[v+1]]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return g, nil
}

// MustBuild is Build for programmatic construction where failure is a bug.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges constructs a graph directly from an edge list.
func FromEdges(n int, edges [][2]int32) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || int(e[0]) >= n || int(e[1]) >= n || e[0] == e[1] {
			return nil, fmt.Errorf("graph: invalid edge {%d,%d} for n=%d", e[0], e[1], n)
		}
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
