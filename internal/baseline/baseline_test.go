package baseline

import (
	"testing"
	"testing/quick"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

func TestGreedyMISValid(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		g := graph.GNP(80, 0.08, src)
		mis := GreedyMIS(g, src.Perm(80))
		return graph.IsMaximalIndependentSet(g, mis)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMISRespectsOrder(t *testing.T) {
	// On a path 0-1-2, order (1,0,2) must pick {1} first, blocking 0 and
	// 2... wait, 2 is not adjacent to 1? P3 edges: 0-1, 1-2. So picking 1
	// blocks both.
	g := graph.Path(3)
	mis := GreedyMIS(g, []int32{1, 0, 2})
	if !mis[1] || mis[0] || mis[2] {
		t.Errorf("mis = %v, want {1}", mis)
	}
	mis = GreedyMIS(g, []int32{0, 1, 2})
	if !mis[0] || mis[1] || !mis[2] {
		t.Errorf("mis = %v, want {0,2}", mis)
	}
}

func TestGreedyMaximalMatching(t *testing.T) {
	g := graph.Path(4)
	m := GreedyMaximalMatching(g, g.EdgeList())
	if !graph.IsMaximalMatching(g, m) {
		t.Error("greedy matching not maximal")
	}
	if m.Size() != 2 {
		t.Errorf("size = %d, want 2 on P4 with lexicographic order", m.Size())
	}
}

func TestVertexCoverFromMatching(t *testing.T) {
	g := graph.GNP(60, 0.1, rng.New(3))
	m := GreedyMaximalMatching(g, g.EdgeList())
	cover := VertexCoverFromMatching(g.NumVertices(), m)
	if !graph.IsVertexCover(g, cover) {
		t.Error("endpoints of maximal matching do not cover")
	}
	if graph.CountMarked(cover) != 2*m.Size() {
		t.Error("cover size != 2 |M|")
	}
}

func TestGreedyDependencyDepthPath(t *testing.T) {
	// On a path with increasing ranks the dependency chain is sequential:
	// each vertex must wait for its left neighbor, so depth is Θ(n).
	n := 64
	g := graph.Path(n)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	depth := GreedyDependencyDepth(g, order)
	if depth < n/4 {
		t.Errorf("adversarial path depth = %d, want Θ(n)", depth)
	}
	// Random order has depth O(log n) [FN18]; allow generous slack.
	rndDepth := GreedyDependencyDepth(g, rng.New(1).Perm(n))
	if rndDepth > 30 {
		t.Errorf("random-order depth = %d, want O(log n)", rndDepth)
	}
}

func TestLubyMISValid(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		g := graph.GNP(70, 0.1, src)
		res := LubyMIS(g, src)
		return graph.IsMaximalIndependentSet(g, res.InMIS)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLubyMISIsolatedVertices(t *testing.T) {
	res := LubyMIS(graph.Empty(10), rng.New(1))
	if res.Iterations != 0 {
		t.Errorf("edgeless graph took %d iterations", res.Iterations)
	}
	for v, in := range res.InMIS {
		if !in {
			t.Errorf("isolated vertex %d not in MIS", v)
		}
	}
}

func TestLubyRoundsLogarithmic(t *testing.T) {
	g := graph.GNP(2000, 0.01, rng.New(5))
	res := LubyMIS(g, rng.New(6))
	// log2(2000) ≈ 11; Luby should finish within a small multiple.
	if res.Iterations > 40 {
		t.Errorf("Luby took %d iterations on n=2000", res.Iterations)
	}
	if !graph.IsMaximalIndependentSet(g, res.InMIS) {
		t.Error("invalid MIS")
	}
}

func TestIsraeliItaiValid(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		g := graph.GNP(70, 0.1, src)
		res := IsraeliItaiMatching(g, src)
		return graph.IsMaximalMatching(g, res.M)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIsraeliItaiEmptyAndSingleEdge(t *testing.T) {
	res := IsraeliItaiMatching(graph.Empty(5), rng.New(1))
	if res.M.Size() != 0 || res.Iterations != 0 {
		t.Errorf("empty graph: size=%d iters=%d", res.M.Size(), res.Iterations)
	}
	res = IsraeliItaiMatching(graph.Path(2), rng.New(1))
	if res.M.Size() != 1 {
		t.Errorf("single edge unmatched")
	}
}

func TestHopcroftKarpKnownValues(t *testing.T) {
	// Perfect matching on an even cycle: C6 as bipartite.
	b := graph.NewBuilder(6)
	// bipartition {0,2,4} vs {1,3,5}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 0)
	g := b.MustBuild()
	bg := &graph.Bipartite{Graph: g, Left: []bool{true, false, true, false, true, false}}
	m := HopcroftKarp(bg)
	if m.Size() != 3 {
		t.Errorf("HK on C6 = %d, want 3", m.Size())
	}
	if !graph.IsMatching(g, m) {
		t.Error("invalid matching")
	}
}

func TestHopcroftKarpStarAndEmpty(t *testing.T) {
	bg := graph.RandomBipartite(1, 5, 1.0, rng.New(1)) // star from left vertex
	if m := HopcroftKarp(bg); m.Size() != 1 {
		t.Errorf("star HK = %d, want 1", m.Size())
	}
	empty := graph.RandomBipartite(3, 3, 0, rng.New(1))
	if m := HopcroftKarp(empty); m.Size() != 0 {
		t.Error("empty bipartite matched something")
	}
}

func TestHopcroftKarpAgainstBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		src := rng.New(seed)
		bg := graph.RandomBipartite(5, 5, 0.4, src)
		m := HopcroftKarp(bg)
		want := BruteForceMaxMatchingSize(bg.Graph)
		if m.Size() != want {
			t.Errorf("seed %d: HK = %d, brute = %d", seed, m.Size(), want)
		}
		if !graph.IsMatching(bg.Graph, m) {
			t.Errorf("seed %d: invalid matching", seed)
		}
	}
}

func TestKonigCover(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		src := rng.New(seed)
		bg := graph.RandomBipartite(6, 6, 0.3, src)
		m := HopcroftKarp(bg)
		cover := KonigVertexCover(bg, m)
		if !graph.IsVertexCover(bg.Graph, cover) {
			t.Fatalf("seed %d: Kőnig output is not a cover", seed)
		}
		if graph.CountMarked(cover) != m.Size() {
			t.Errorf("seed %d: |cover| = %d != |M| = %d (Kőnig equality)",
				seed, graph.CountMarked(cover), m.Size())
		}
	}
}

func TestBlossomOnOddCycle(t *testing.T) {
	// C5 has maximum matching 2; bipartite algorithms fail here, the
	// blossom algorithm must not.
	m := MaxMatchingGeneral(graph.Ring(5))
	if m.Size() != 2 {
		t.Errorf("blossom on C5 = %d, want 2", m.Size())
	}
}

func TestBlossomOnPetersenLikeStructure(t *testing.T) {
	// Two triangles joined by a bridge: max matching = 3 (one edge per
	// triangle + the bridge).
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if m := MaxMatchingGeneral(g); m.Size() != 3 {
		t.Errorf("two triangles + bridge = %d, want 3", m.Size())
	}
}

func TestBlossomAgainstBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		src := rng.New(seed)
		g := graph.GNP(10, 0.35, src)
		m := MaxMatchingGeneral(g)
		want := BruteForceMaxMatchingSize(g)
		if m.Size() != want {
			t.Errorf("seed %d: blossom = %d, brute = %d on %v", seed, m.Size(), want, g)
		}
		if !graph.IsMatching(g, m) {
			t.Errorf("seed %d: invalid matching", seed)
		}
	}
}

func TestBlossomMatchesHopcroftKarpOnBipartite(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		src := rng.New(seed)
		bg := graph.RandomBipartite(20, 20, 0.15, src)
		if hk, bl := HopcroftKarp(bg).Size(), MaxMatchingGeneral(bg.Graph).Size(); hk != bl {
			t.Errorf("seed %d: HK = %d, blossom = %d", seed, hk, bl)
		}
	}
}

func TestBruteForceVertexCover(t *testing.T) {
	if got := BruteForceMinVertexCoverSize(graph.Ring(5)); got != 3 {
		t.Errorf("VC(C5) = %d, want 3", got)
	}
	if got := BruteForceMinVertexCoverSize(graph.Star(6)); got != 1 {
		t.Errorf("VC(K_{1,5}) = %d, want 1", got)
	}
	if got := BruteForceMinVertexCoverSize(graph.Complete(5)); got != 4 {
		t.Errorf("VC(K5) = %d, want 4", got)
	}
	if got := BruteForceMinVertexCoverSize(graph.Empty(4)); got != 0 {
		t.Errorf("VC(empty) = %d, want 0", got)
	}
}

func TestVertexCoverMatchingDuality(t *testing.T) {
	// |max matching| <= |min vertex cover| <= 2 |max matching|.
	for seed := uint64(0); seed < 20; seed++ {
		g := graph.GNP(11, 0.3, rng.New(seed))
		mm := BruteForceMaxMatchingSize(g)
		vc := BruteForceMinVertexCoverSize(g)
		if vc < mm || vc > 2*mm {
			t.Errorf("seed %d: duality violated: mm=%d vc=%d", seed, mm, vc)
		}
	}
}

func TestBruteForceWeighted(t *testing.T) {
	g := graph.Path(3) // edges {0,1} w=1, {1,2} w=5
	wg, err := graph.NewWeighted(g, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := BruteForceMaxWeightMatching(wg); got != 5 {
		t.Errorf("max weight matching = %v, want 5", got)
	}
}

func BenchmarkLubyMIS(b *testing.B) {
	g := graph.GNP(5000, 0.002, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LubyMIS(g, rng.New(uint64(i)))
	}
}

func BenchmarkHopcroftKarp(b *testing.B) {
	bg := graph.RandomBipartite(2000, 2000, 0.002, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HopcroftKarp(bg)
	}
}

func BenchmarkBlossom(b *testing.B) {
	g := graph.GNP(300, 0.05, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MaxMatchingGeneral(g)
	}
}
