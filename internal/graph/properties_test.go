package graph

import (
	"testing"
	"testing/quick"

	"mpcgraph/internal/rng"
)

// TestLineGraphEdgeCountIdentity: |E(L(G))| = Σ_v C(deg(v), 2).
func TestLineGraphEdgeCountIdentity(t *testing.T) {
	check := func(seed uint64) bool {
		g := GNP(40, 0.15, rng.New(seed))
		lg, _ := g.LineGraph()
		want := 0
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			d := g.Degree(v)
			want += d * (d - 1) / 2
		}
		return lg.NumVertices() == g.NumEdges() && lg.NumEdges() == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestLineGraphMatchingCorrespondence: an independent set of L(G) maps
// to a matching of G — the classical reduction the paper's introduction
// cites (Luby on L(G) gives maximal matching).
func TestLineGraphMatchingCorrespondence(t *testing.T) {
	src := rng.New(3)
	g := GNP(60, 0.08, src)
	lg, ix := g.LineGraph()
	// Greedy MIS on the line graph.
	inMIS := make([]bool, lg.NumVertices())
	blocked := make([]bool, lg.NumVertices())
	for _, v := range src.Perm(lg.NumVertices()) {
		if blocked[v] {
			continue
		}
		inMIS[v] = true
		for _, u := range lg.Neighbors(v) {
			blocked[u] = true
		}
	}
	if !IsMaximalIndependentSet(lg, inMIS) {
		t.Fatal("line-graph MIS invalid")
	}
	// Translate to a matching of G.
	m := NewMatching(g.NumVertices())
	for id, in := range inMIS {
		if !in {
			continue
		}
		u, v := ix.Endpoints(int32(id))
		m.Match(u, v)
	}
	if !IsMaximalMatching(g, m) {
		t.Error("line-graph MIS did not induce a maximal matching")
	}
}

// TestCompactInducedPreservesAdjacency on random vertex subsets.
func TestCompactInducedPreservesAdjacency(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		g := GNP(50, 0.1, src)
		var vertices []int32
		for v := int32(0); v < 50; v++ {
			if src.Bool(0.4) {
				vertices = append(vertices, v)
			}
		}
		sub, orig := g.CompactInduced(vertices)
		// Every subgraph edge exists in g under the mapping; counts match.
		ok := true
		sub.ForEachEdge(func(u, v int32) {
			if !g.HasEdge(orig[u], orig[v]) {
				ok = false
			}
		})
		want := 0
		inSet := make(map[int32]bool, len(vertices))
		for _, v := range vertices {
			inSet[v] = true
		}
		g.ForEachEdge(func(u, v int32) {
			if inSet[u] && inSet[v] {
				want++
			}
		})
		return ok && sub.NumEdges() == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEdgeIndexDensity: ids are exactly 0..m-1 with no gaps, in
// lexicographic order of (u, v).
func TestEdgeIndexDensity(t *testing.T) {
	g := GNP(70, 0.1, rng.New(9))
	ix := NewEdgeIndex(g)
	next := int32(0)
	g.ForEachEdge(func(u, v int32) {
		if id := ix.ID(u, v); id != next {
			t.Fatalf("edge {%d,%d} has id %d, want %d", u, v, id, next)
		}
		next++
	})
	if int(next) != g.NumEdges() {
		t.Errorf("indexed %d edges, graph has %d", next, g.NumEdges())
	}
}

// TestGeneratorsProduceSimpleGraphs: no generator may emit self-loops or
// parallel edges (the builder enforces it; this guards the generators'
// own logic against index bugs).
func TestGeneratorsProduceSimpleGraphs(t *testing.T) {
	src := rng.New(11)
	gs := map[string]*Graph{
		"gnp":      GNP(80, 0.1, src),
		"gnm":      GNM(80, 200, src),
		"regular":  RandomRegular(80, 4, src),
		"powerlaw": PreferentialAttachment(80, 3, src),
		"bip":      RandomBipartite(40, 40, 0.1, src).Graph,
	}
	for name, g := range gs {
		t.Run(name, func(t *testing.T) {
			for v := int32(0); v < int32(g.NumVertices()); v++ {
				nb := g.Neighbors(v)
				for i, u := range nb {
					if u == v {
						t.Fatalf("self-loop at %d", v)
					}
					if i > 0 && nb[i-1] == u {
						t.Fatalf("parallel edge {%d,%d}", v, u)
					}
				}
			}
		})
	}
}

// TestMatchingEdgesSorted: Edges() returns edges in vertex order with
// u < v, the contract downstream consumers (pipeline union) rely on.
func TestMatchingEdgesSorted(t *testing.T) {
	m := NewMatching(8)
	m.Match(5, 2)
	m.Match(0, 7)
	edges := m.Edges()
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Errorf("edge %v not normalized", e)
		}
	}
	if edges[0][0] > edges[1][0] {
		t.Errorf("edges out of order: %v", edges)
	}
}
