package matching

import (
	"context"
	"math"

	"mpcgraph/internal/congest"
	"mpcgraph/internal/model"
	"mpcgraph/internal/mpc"
)

// Costs is a snapshot of a meter's audited totals.
type Costs struct {
	// Rounds is the number of model rounds charged so far.
	Rounds int
	// MaxMachineWords is the largest per-round load on any machine or
	// player observed so far.
	MaxMachineWords int64
	// TotalWords is the cumulative communication volume.
	TotalWords int64
	// Violations counts capacity/budget violations (non-strict mode).
	Violations int
}

// meter abstracts the simulator backend the matching algorithms charge
// their communication against. The algorithm state never reads anything
// back from the meter, so one algorithm run produces bit-identical
// outputs under every backend — only the audited costs differ, which is
// exactly the paper's claim that the same technique runs in the MPC
// model and (via Lenzen routing) in the CONGESTED-CLIQUE.
type meter interface {
	// Shuffle charges the phase-start repartitioning: machine class j of
	// the m classes receives its induced subgraph of inducedWords[j]
	// words (the Lemma 4.7 audit).
	Shuffle(m int, inducedWords []int64) error
	// ResultSync charges the end-of-phase freeze synchronization: a
	// gather of frozenWords words followed by a broadcast of the same.
	ResultSync(m int, frozenWords int64) error
	// DirectRound charges one direct Central-Rand iteration: one word
	// each way per active edge.
	DirectRound(activeEdges int64) error
	// Gather charges one coordinator gather of words words (the
	// filtering completion's per-round sample shipment).
	Gather(words int64) error
	// SetActive reports the current undecided-vertex count for tracing.
	SetActive(vertices int)
	// Costs returns the audited totals so far.
	Costs() Costs
}

// meterConfig carries everything needed to stand up either backend.
type meterConfig struct {
	n            int // vertices of the input graph
	machines     int // MPC machine count (also the phase-m cap)
	memoryFactor float64
	strict       bool
	workers      int
	ctx          context.Context
	trace        model.TraceFunc
}

// resolveMemoryFactor applies the package-wide per-machine memory
// default of 16·n words (the constant behind the paper's Õ(n)).
func resolveMemoryFactor(f float64) float64 {
	if f == 0 {
		return 16
	}
	return f
}

// simMachines returns the MPC machine count used by the simulation and
// as the per-phase partition cap: ⌈√n⌉+1. The cap is shared by every
// backend so the algorithm trajectory is identical across models.
func simMachines(n int) int {
	return int(math.Ceil(math.Sqrt(float64(n)))) + 1
}

// newMeter builds the backend for the selected model.
func newMeter(m model.Model, cfg meterConfig) (meter, error) {
	if cfg.machines == 0 {
		cfg.machines = simMachines(cfg.n)
	}
	if m == model.CongestedClique {
		return newCliqueMeter(cfg)
	}
	return newMPCMeter(cfg)
}

// mpcMeter charges an MPC cluster with ⌈√n⌉+1 machines of
// MemoryFactor·n words each — the deployment of Section 4.3.
type mpcMeter struct {
	cluster *mpc.Cluster
}

func newMPCMeter(cfg meterConfig) (*mpcMeter, error) {
	cluster, err := mpc.NewCluster(mpc.Config{
		Machines:      cfg.machines,
		CapacityWords: int64(cfg.memoryFactor * float64(cfg.n)),
		Strict:        cfg.strict,
		Workers:       cfg.workers,
		Ctx:           cfg.ctx,
		Trace:         cfg.trace,
	})
	if err != nil {
		return nil, err
	}
	return &mpcMeter{cluster: cluster}, nil
}

func (mm *mpcMeter) Shuffle(m int, inducedWords []int64) error {
	return chargeShuffle(mm.cluster, m, inducedWords)
}

func (mm *mpcMeter) ResultSync(m int, frozenWords int64) error {
	return chargeResultSync(mm.cluster, m, frozenWords)
}

func (mm *mpcMeter) DirectRound(activeEdges int64) error {
	return chargeDirectRound(mm.cluster, activeEdges)
}

func (mm *mpcMeter) Gather(words int64) error {
	m := mm.cluster.Machines()
	parts := make([]mpc.Message, m)
	share, rem := words/int64(m), words%int64(m)
	for i := 0; i < m; i++ {
		w := share
		if int64(i) < rem {
			w++
		}
		parts[i] = mpc.Message{Words: w}
	}
	_, err := mm.cluster.GatherTo(0, parts)
	return err
}

func (mm *mpcMeter) SetActive(vertices int) { mm.cluster.SetActive(vertices) }

func (mm *mpcMeter) Costs() Costs {
	met := mm.cluster.Metrics()
	maxWords := met.MaxInWords
	if met.MaxOutWords > maxWords {
		maxWords = met.MaxOutWords
	}
	return Costs{
		Rounds:          met.Rounds,
		MaxMachineWords: maxWords,
		TotalWords:      met.TotalWords,
		Violations:      met.Violations,
	}
}

// cliqueMeter charges a CONGESTED-CLIQUE of n players with the standard
// one-word pair budget. Bulk deliveries ride Lenzen's routing scheme in
// n-word chunks; broadcasts ride the relay tree at n-1 words per player
// per round — the standard simulation of Õ(n)-memory MPC algorithms in
// the clique (Section 2 of the paper).
type cliqueMeter struct {
	q *congest.Clique
}

func newCliqueMeter(cfg meterConfig) (*cliqueMeter, error) {
	players := cfg.n
	if players < 2 {
		players = 2
	}
	q, err := congest.New(congest.Config{
		Players:         players,
		PairBudgetWords: 1,
		Strict:          cfg.strict,
		Workers:         cfg.workers,
		Ctx:             cfg.ctx,
		Trace:           cfg.trace,
	})
	if err != nil {
		return nil, err
	}
	return &cliqueMeter{q: q}, nil
}

// lenzenDeliver charges the delivery of total words with per-receiver
// maximum maxIn, chunked into Lenzen invocations of at most n words per
// receiver: the heaviest receiver's load is split evenly across the
// chunks, so each invocation carries its actual share rather than the
// whole per-receiver maximum.
func (cm *cliqueMeter) lenzenDeliver(total, maxIn int64) error {
	n := int64(cm.q.Players())
	if maxIn <= 0 {
		// The synchronization still happens even when nothing moved.
		return cm.q.ChargeRound(1, 0, 0, 0)
	}
	k := (maxIn + n - 1) / n
	inShare := (maxIn + k - 1) / k
	share, rem := total/k, total%k
	for i := int64(0); i < k; i++ {
		t := share
		if i < rem {
			t++
		}
		if err := cm.q.ChargeLenzen(minWords(t, n), minWords(inShare, t), t); err != nil {
			return err
		}
	}
	return nil
}

// broadcast charges delivering words words to every player, n-1 words
// per player per relay round.
func (cm *cliqueMeter) broadcast(words int64) error {
	n := int64(cm.q.Players())
	for remaining := words; ; {
		chunk := minWords(remaining, n-1)
		if chunk < 0 {
			chunk = 0
		}
		if err := cm.q.ChargeRound(1, chunk, chunk, chunk*n); err != nil {
			return err
		}
		remaining -= chunk
		if remaining <= 0 {
			return nil
		}
	}
}

func (cm *cliqueMeter) Shuffle(m int, inducedWords []int64) error {
	var total, maxIn int64
	for _, w := range inducedWords {
		total += w
		if w > maxIn {
			maxIn = w
		}
	}
	return cm.lenzenDeliver(total, maxIn)
}

func (cm *cliqueMeter) ResultSync(m int, frozenWords int64) error {
	if err := cm.lenzenDeliver(frozenWords, frozenWords); err != nil {
		return err
	}
	return cm.broadcast(frozenWords)
}

func (cm *cliqueMeter) DirectRound(activeEdges int64) error {
	n := int64(cm.q.Players())
	words := 2 * activeEdges
	per := words/n + 1
	return cm.q.ChargeRound(1, per, per, words)
}

func (cm *cliqueMeter) Gather(words int64) error {
	return cm.lenzenDeliver(words, words)
}

func (cm *cliqueMeter) SetActive(vertices int) { cm.q.SetActive(vertices) }

func (cm *cliqueMeter) Costs() Costs {
	met := cm.q.Metrics()
	maxWords := met.MaxPlayerIn
	if met.MaxPlayerOut > maxWords {
		maxWords = met.MaxPlayerOut
	}
	return Costs{
		Rounds:          met.Rounds,
		MaxMachineWords: maxWords,
		TotalWords:      met.TotalWords,
		Violations:      met.Violations,
	}
}

func minWords(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
