package mis

import (
	"fmt"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/model"
	"mpcgraph/internal/mpc"
	"mpcgraph/internal/par"
	"mpcgraph/internal/rng"
)

// RandGreedyMPC computes a maximal independent set with the paper's
// Section 3 algorithm on a metered MPC cluster. Each rank-prefix phase
// costs one gather round plus one broadcast (two rounds in the tree
// model); the sparsified stage charges one round per dynamics iteration;
// the final residue is gathered once and finished on the leader. The
// returned Result carries the audited round and load figures.
//
// Through the prefix phases the computed set is bit-identical to
// SequentialRandGreedy restricted to those ranks — the simulation
// reorganizes the computation without changing it; the residue is decided
// by the sparsified stage exactly as in the paper's algorithm box.
func RandGreedyMPC(g *graph.Graph, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := g.NumVertices()
	res := &Result{InMIS: make([]bool, n)}
	if n == 0 {
		return res, nil
	}

	src := rng.New(opts.Seed)
	perm := src.SplitString("mis-perm").Perm(n)
	capacity := int64(opts.MemoryFactor * float64(n))
	machines := opts.Machines
	if machines == 0 {
		machines = int(2*int64(g.NumEdges())/max64(capacity, 1)) + 2
	}
	cluster, err := mpc.NewCluster(mpc.Config{
		Machines:      machines,
		CapacityWords: capacity,
		Strict:        opts.Strict,
		Workers:       opts.Workers,
		Ctx:           opts.Ctx,
		Trace:         opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	cluster.SetActive(n)

	// Edges are distributed across machines by hash — the initial data
	// layout of the model. homeOf(u,v) is the machine storing edge {u,v}.
	homeOf := func(u, v int32) int {
		return int(rng.Hash(opts.Seed, 0xed6e, uint64(uint32(u)), uint64(uint32(v))) % uint64(machines))
	}

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	rank := make([]int32, n)
	for i, v := range perm {
		rank[v] = int32(i)
	}

	// Tiny instance: one gather finishes the job, as any MPC deployment
	// would do when the input fits one machine.
	if int64(2*g.NumEdges()+n) <= capacity {
		if err := gatherAll(cluster, g, alive, homeOf, opts.Workers); err != nil {
			return nil, err
		}
		d := newDynamics(g, alive, res.InMIS, opts.Seed, opts.Workers)
		d.finishGreedy(perm)
		finalizeMetrics(res, cluster)
		res.Stages = append(res.Stages, model.StageCost{Name: "gather-all", Rounds: res.Rounds, Words: res.TotalWords})
		return res, nil
	}

	ranks := prefixRanks(n, g.MaxDegree(), opts.PolylogDegree(n), opts.Alpha)
	prev := 0
	for _, r := range ranks {
		before := cluster.Metrics()
		info, err := runPrefixPhase(cluster, g, perm, rank, alive, res.InMIS, prev, r, homeOf, opts.Workers)
		if err != nil {
			return nil, err
		}
		res.Phases++
		res.PhaseInfos = append(res.PhaseInfos, info)
		after := cluster.Metrics()
		res.Stages = append(res.Stages, stageCost(fmt.Sprintf("prefix@%d", r), before.Rounds, after.Rounds, before.TotalWords, after.TotalWords))
		cluster.SetActive(graph.CountMarked(alive))
		prev = r
	}

	// Sparsified stage on the poly-log-degree residue: Ghaffari dynamics,
	// one metered round per iteration (messages: one word of desire level
	// plus one mark bit per live edge direction, aggregated per machine
	// pair), until the residue fits comfortably on the leader.
	d := newDynamics(g, alive, res.InMIS, opts.Seed, opts.Workers)
	maxIter := defaultDynamicsCap(g.MaxDegree(), opts.MaxDynamicsIterations)
	beforeDyn := cluster.Metrics()
	for iter := 0; d.undecided() > 0 && d.residualEdgeWords() > capacity/2 && iter < maxIter; iter++ {
		cluster.SetActive(d.undecided())
		if err := chargeDynamicsRound(cluster, g, d.alive, machines, opts.Workers); err != nil {
			return nil, err
		}
		d.step(iter)
		res.SparsifiedIterations++
	}
	if res.SparsifiedIterations > 0 {
		afterDyn := cluster.Metrics()
		res.Stages = append(res.Stages, stageCost("sparsified", beforeDyn.Rounds, afterDyn.Rounds, beforeDyn.TotalWords, afterDyn.TotalWords))
	}
	// Final gather of the shattered residue, then finish on the leader.
	if d.undecided() > 0 {
		cluster.SetActive(d.undecided())
		beforeGather := cluster.Metrics()
		if err := gatherResidual(cluster, g, d.alive, homeOf, opts.Workers); err != nil {
			return nil, err
		}
		d.finishGreedy(perm)
		afterGather := cluster.Metrics()
		res.Stages = append(res.Stages, stageCost("final-gather", beforeGather.Rounds, afterGather.Rounds, beforeGather.TotalWords, afterGather.TotalWords))
	}
	cluster.SetActive(0)
	finalizeMetrics(res, cluster)
	return res, nil
}

// runPrefixPhase gathers the induced subgraph on alive vertices with rank
// in (prev, r], extends the greedy MIS on the leader, and broadcasts the
// additions.
func runPrefixPhase(
	cluster *mpc.Cluster,
	g *graph.Graph,
	perm []int32,
	rank []int32,
	alive, inMIS []bool,
	prev, r int,
	homeOf func(u, v int32) int,
	workers int,
) (PhaseInfo, error) {
	info := PhaseInfo{Rank: r}
	machines := cluster.Machines()
	inRange := func(v int32) bool {
		return alive[v] && int(rank[v]) >= prev && int(rank[v]) < r
	}
	// Words each machine ships to the leader: 2 per stored edge with both
	// endpoints in range, 1 per range vertex it owns (owner = home of the
	// vertex's id hashed alone). The scan is read-only (homeOf is a
	// stateless hash), so it fans out with per-worker tallies merged in
	// shard order — integer sums, bit-identical at every worker count.
	type gatherAcc struct {
		words     []int64
		vertices  int
		edgeWords int64
	}
	acc := par.Reduce(workers, g.NumVertices(), func(lo, hi, _ int) gatherAcc {
		a := gatherAcc{words: make([]int64, machines)}
		for u := int32(lo); u < int32(hi); u++ {
			if !inRange(u) {
				continue
			}
			a.vertices++
			a.words[int(rng.Hash(0xbeef, uint64(uint32(u)))%uint64(machines))]++
			for _, v := range g.Neighbors(u) {
				if u < v && inRange(v) {
					a.words[homeOf(u, v)] += 2
					a.edgeWords += 2
				}
			}
		}
		return a
	}, func(a, b gatherAcc) gatherAcc {
		for i, w := range b.words {
			a.words[i] += w
		}
		a.vertices += b.vertices
		a.edgeWords += b.edgeWords
		return a
	})
	words := acc.words
	if words == nil {
		words = make([]int64, machines)
	}
	info.GatheredVertices = acc.vertices
	info.GatheredEdgeWords = acc.edgeWords
	parts := make([]mpc.Message, machines)
	for i := range parts {
		parts[i] = mpc.Message{Words: words[i]}
	}
	if _, err := cluster.GatherTo(0, parts); err != nil {
		return info, fmt.Errorf("phase gather at rank %d: %w", r, err)
	}

	// Leader extends the greedy MIS over the gathered range in rank
	// order. Earlier ranks are fully settled (in MIS or dominated), so
	// only in-range neighbors can block.
	var newMIS []int32
	for i := prev; i < r && i < len(perm); i++ {
		v := perm[i]
		if !alive[v] {
			continue
		}
		blockedBy := false
		for _, u := range g.Neighbors(v) {
			if inMIS[u] {
				blockedBy = true
				break
			}
		}
		if blockedBy {
			continue
		}
		inMIS[v] = true
		newMIS = append(newMIS, v)
	}
	info.NewMISVertices = len(newMIS)

	// Broadcast the additions; every machine then kills dominated
	// vertices locally.
	if _, err := cluster.BroadcastFrom(0, int64(len(newMIS)), newMIS); err != nil {
		return info, fmt.Errorf("phase broadcast at rank %d: %w", r, err)
	}
	for _, v := range newMIS {
		alive[v] = false
		for _, u := range g.Neighbors(v) {
			alive[u] = false
		}
	}
	// Instrumentation: residual maximum degree (Lemma 3.1 quantity).
	info.ResidualMaxDegree = residualMaxDegree(g, alive, workers)
	return info, nil
}

// residualMaxDegree returns the maximum alive-induced degree.
func residualMaxDegree(g *graph.Graph, alive []bool, workers int) int {
	return par.Reduce(workers, g.NumVertices(), func(lo, hi, _ int) int {
		max := 0
		for v := int32(lo); v < int32(hi); v++ {
			if !alive[v] {
				continue
			}
			deg := 0
			for _, u := range g.Neighbors(v) {
				if alive[u] {
					deg++
				}
			}
			if deg > max {
				max = deg
			}
		}
		return max
	}, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
}

// chargeDynamicsRound meters one iteration of the local dynamics: every
// live edge carries one word each way (desire level and mark bit packed),
// aggregated into per-machine-pair messages. Vertices live on machine
// v mod machines.
func chargeDynamicsRound(cluster *mpc.Cluster, g *graph.Graph, alive []bool, machines, workers int) error {
	volume := par.Reduce(workers, g.NumVertices(), func(lo, hi, _ int) []int64 {
		vol := make([]int64, machines*machines)
		for u := int32(lo); u < int32(hi); u++ {
			if !alive[u] {
				continue
			}
			mu := int(u) % machines
			for _, v := range g.Neighbors(u) {
				if !alive[v] {
					continue
				}
				mv := int(v) % machines
				if mu != mv {
					vol[mu*machines+mv]++
				}
			}
		}
		return vol
	}, func(a, b []int64) []int64 {
		for i, w := range b {
			a[i] += w
		}
		return a
	})
	if volume == nil {
		volume = make([]int64, machines*machines)
	}
	_, err := cluster.ChargeVolumeMatrix(volume)
	return err
}

// gatherResidual charges the final residue shipment to the leader.
func gatherResidual(cluster *mpc.Cluster, g *graph.Graph, alive []bool, homeOf func(u, v int32) int, workers int) error {
	machines := cluster.Machines()
	words := par.Reduce(workers, g.NumVertices(), func(lo, hi, _ int) []int64 {
		w := make([]int64, machines)
		for u := int32(lo); u < int32(hi); u++ {
			if !alive[u] {
				continue
			}
			w[int(rng.Hash(0xbeef, uint64(uint32(u)))%uint64(machines))]++
			for _, v := range g.Neighbors(u) {
				if u < v && alive[v] {
					w[homeOf(u, v)] += 2
				}
			}
		}
		return w
	}, func(a, b []int64) []int64 {
		for i, w := range b {
			a[i] += w
		}
		return a
	})
	if words == nil {
		words = make([]int64, machines)
	}
	parts := make([]mpc.Message, machines)
	for i := range parts {
		parts[i] = mpc.Message{Words: words[i]}
	}
	_, err := cluster.GatherTo(0, parts)
	if err != nil {
		return fmt.Errorf("residual gather: %w", err)
	}
	return nil
}

// gatherAll charges shipping the entire graph to the leader (tiny-input
// fast path).
func gatherAll(cluster *mpc.Cluster, g *graph.Graph, alive []bool, homeOf func(u, v int32) int, workers int) error {
	return gatherResidual(cluster, g, alive, homeOf, workers)
}

// finalizeMetrics copies cluster metrics into the result.
func finalizeMetrics(res *Result, cluster *mpc.Cluster) {
	m := cluster.Metrics()
	res.Rounds = m.Rounds
	res.MaxMachineWords = m.MaxInWords
	if m.MaxOutWords > res.MaxMachineWords {
		res.MaxMachineWords = m.MaxOutWords
	}
	res.TotalWords = m.TotalWords
	res.Violations = m.Violations
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
