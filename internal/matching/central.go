// Package matching implements Sections 4 and 5 of the paper: the
// weight-raising fractional matching / vertex cover algorithms (Central
// and Central-Rand), their O(log log n)-round MPC simulation, the
// randomized rounding of Lemma 5.1, the integral (2+ε) matching and
// vertex cover pipeline of Theorem 1.2, and the corollaries — (1+ε)
// matching via augmenting-path boosting and (2+ε) weighted matching —
// plus the [LMSV11] filtering baseline used for small matchings.
package matching

import (
	"math"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

// FracResult is the output of the fractional matching algorithms: a
// per-edge weight vector, the final per-vertex weights, and the frozen
// vertex set, which is the vertex cover.
type FracResult struct {
	// Ix indexes edges of the input graph; X is indexed by it.
	Ix *graph.EdgeIndex
	// X is the fractional matching.
	X []float64
	// Y is the per-vertex weight sum of X.
	Y []float64
	// Cover marks the vertex cover (frozen vertices, plus any vertices
	// removed for exceeding weight 1 in the MPC simulation).
	Cover []bool
	// Iterations is the number of weight-raising iterations executed.
	Iterations int
}

// Weight returns the total fractional matching weight Σ_e x_e.
func (r *FracResult) Weight() float64 {
	w := 0.0
	for _, x := range r.X {
		w += x
	}
	return w
}

// CoverSize returns the number of cover vertices.
func (r *FracResult) CoverSize() int { return graph.CountMarked(r.Cover) }

// maxCentralIterations bounds the weight-raising process: an edge weight
// starts at ~1/n and never exceeds 1, growing by 1/(1-eps) per iteration.
func maxCentralIterations(n int, eps float64) int {
	if n < 2 {
		return 1
	}
	return int(math.Log(float64(n))/(-math.Log1p(-eps))) + 8
}

// Central runs the deterministic algorithm of Section 4.1: edge weights
// start at 1/n; each iteration freezes every vertex whose weight reached
// 1-2eps (with its edges) and multiplies every active edge weight by
// 1/(1-eps). The frozen set is a (2+5eps)-approximate vertex cover and X
// a (2+5eps)-approximate fractional matching (Lemma 4.1).
func Central(g *graph.Graph, eps float64) *FracResult {
	threshold := 1 - 2*eps
	return centralCore(g, eps, func(int32, int) float64 { return threshold })
}

// CentralRand runs the random-threshold variant of Section 4.3: vertex v
// freezes in iteration t when its weight reaches T_{v,t}, drawn uniformly
// from [1-4eps, 1-2eps) by the oracle. It is the process the MPC
// simulation tracks.
func CentralRand(g *graph.Graph, eps float64, oracle rng.ThresholdOracle) *FracResult {
	return centralCore(g, eps, oracle.At)
}

// centralCore is the shared weight-raising loop.
func centralCore(g *graph.Graph, eps float64, threshold func(v int32, t int) float64) *FracResult {
	n := g.NumVertices()
	ix := graph.NewEdgeIndex(g)
	mEdges := ix.NumEdges()
	res := &FracResult{
		Ix:    ix,
		X:     make([]float64, mEdges),
		Y:     make([]float64, n),
		Cover: make([]bool, n),
	}
	if mEdges == 0 {
		return res
	}
	x0 := 1 / float64(n)
	endpoints := make([][2]int32, mEdges)
	active := make([]int32, 0, mEdges)
	for e := int32(0); e < int32(mEdges); e++ {
		u, v := ix.Endpoints(e)
		endpoints[e] = [2]int32{u, v}
		res.X[e] = x0
		res.Y[u] += x0
		res.Y[v] += x0
		active = append(active, e)
	}
	frozen := res.Cover // frozen vertices are exactly the cover
	growth := eps / (1 - eps)
	maxIter := maxCentralIterations(n, eps)
	t := 0
	for ; len(active) > 0 && t < maxIter; t++ {
		// (A) freeze vertices whose weight reached their threshold.
		for v := int32(0); v < int32(n); v++ {
			if !frozen[v] && res.Y[v] >= threshold(v, t) {
				frozen[v] = true
			}
		}
		// Freeze edges incident to frozen vertices; compact the rest.
		kept := active[:0]
		for _, e := range active {
			if frozen[endpoints[e][0]] || frozen[endpoints[e][1]] {
				continue
			}
			kept = append(kept, e)
		}
		active = kept
		// (B) raise surviving active edges by 1/(1-eps).
		for _, e := range active {
			delta := res.X[e] * growth
			res.X[e] += delta
			res.Y[endpoints[e][0]] += delta
			res.Y[endpoints[e][1]] += delta
		}
	}
	// Defensive: the iteration bound guarantees the loop drains; if it
	// ever did not, freezing remaining endpoints preserves the cover
	// property.
	for _, e := range active {
		frozen[endpoints[e][0]] = true
		frozen[endpoints[e][1]] = true
	}
	res.Iterations = t
	return res
}
