// Command scalesmoke is the cold-path scale gate: generate an R-MAT
// instance of roughly -edges edges, write it to disk as an edge list,
// read it back, and solve MIS — then fail unless the write→read→solve
// wall time and the process peak RSS stay under pinned ceilings. It
// exists to catch the regressions micro-benchmarks miss: quadratic
// buffering in a writer, a reader that holds the whole file in memory,
// a builder that forgets its capacity hint. Run directly via `make
// scale-smoke` (~10⁷ edges) or race-instrumented at reduced size inside
// `make ci` (see the scale-smoke-short target for the ceiling
// rationale).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mpcgraph"
)

func main() {
	edges := flag.Int("edges", 10_000_000, "approximate edge count of the generated R-MAT instance")
	wall := flag.Duration("wall", time.Minute, "ceiling on write+read+solve wall time")
	rssMB := flag.Int("rss-mb", 1024, "ceiling on process peak RSS (VmHWM) in MiB; 0 disables")
	seed := flag.Uint64("seed", 2018, "generation and solve seed")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "scalesmoke: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	// R-MAT vertex counts are powers of two; aim for average degree ~16
	// (edge-factor ~8 before dedup), the skewed regime the experiments
	// use. The generator dedups and drops self-loops, so the realized
	// edge count lands a little under the target — reported, not pinned.
	n := 1
	for n*16 < *edges {
		n *= 2
	}
	ef := float64(*edges) / float64(n)

	start := time.Now()
	in, err := mpcgraph.GenerateScenario("rmat", n, *seed, map[string]float64{"edge-factor": ef})
	if err != nil {
		fail("generate: %v", err)
	}
	fmt.Printf("scalesmoke: gen    n=%d m=%d in %v\n", in.NumVertices(), in.NumEdges(), time.Since(start).Round(time.Millisecond))

	dir, err := os.MkdirTemp("", "scalesmoke")
	if err != nil {
		fail("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "scale.el")

	wStart := time.Now()
	if err := mpcgraph.WriteInstanceFile(path, in); err != nil {
		fail("write: %v", err)
	}
	wTime := time.Since(wStart)
	st, err := os.Stat(path)
	if err != nil {
		fail("stat: %v", err)
	}
	fmt.Printf("scalesmoke: write  %d bytes in %v\n", st.Size(), wTime.Round(time.Millisecond))

	rStart := time.Now()
	back, err := mpcgraph.ReadInstanceFile(path)
	if err != nil {
		fail("read: %v", err)
	}
	rTime := time.Since(rStart)
	if back.NumVertices() != in.NumVertices() || back.NumEdges() != in.NumEdges() {
		fail("round trip mismatch: wrote n=%d m=%d, read n=%d m=%d",
			in.NumVertices(), in.NumEdges(), back.NumVertices(), back.NumEdges())
	}
	fmt.Printf("scalesmoke: read   n=%d m=%d in %v\n", back.NumVertices(), back.NumEdges(), rTime.Round(time.Millisecond))

	sStart := time.Now()
	rep, err := mpcgraph.Solve(context.Background(), back, mpcgraph.ProblemMIS, mpcgraph.Options{Seed: *seed})
	if err != nil {
		fail("solve: %v", err)
	}
	sTime := time.Since(sStart)
	misSize := 0
	for _, v := range rep.InMIS {
		if v {
			misSize++
		}
	}
	fmt.Printf("scalesmoke: solve  mis=%d rounds=%d in %v\n", misSize, rep.Rounds, sTime.Round(time.Millisecond))

	cold := wTime + rTime + sTime
	peak, peakErr := peakRSSKiB()
	if peakErr != nil {
		fmt.Printf("scalesmoke: peak RSS unavailable (%v); skipping the memory ceiling\n", peakErr)
	} else {
		fmt.Printf("scalesmoke: cold path %v (ceiling %v), peak RSS %d MiB (ceiling %d MiB)\n",
			cold.Round(time.Millisecond), *wall, peak>>10, *rssMB)
	}
	if cold > *wall {
		fail("cold path took %v, ceiling %v", cold.Round(time.Millisecond), *wall)
	}
	if *rssMB > 0 && peakErr == nil && peak>>10 > int64(*rssMB) {
		fail("peak RSS %d MiB exceeds ceiling %d MiB", peak>>10, *rssMB)
	}
	fmt.Println("scalesmoke: PASS")
}

// peakRSSKiB reads the process high-water resident set from
// /proc/self/status (VmHWM) in KiB — Linux only, which is where this
// gate runs; other platforms skip the memory ceiling.
func peakRSSKiB() (int64, error) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		return strconv.ParseInt(fields[1], 10, 64)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("no VmHWM line in /proc/self/status")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalesmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
