// Package congest simulates the CONGESTED-CLIQUE model of distributed
// computing [LPPSP03] as used by the paper: n players communicate in
// synchronous rounds, and in each round every player may send O(log n)
// bits — one machine word in this simulator — to every other player.
//
// The simulator meters rounds and per-pair bandwidth, and implements
// Lenzen's routing scheme [Len13] as a constant-round primitive with its
// precondition (no player sends or receives more than n words) validated,
// exactly as the paper invokes it in Section 2.
package congest

import (
	"errors"
	"fmt"
)

// Config describes a clique deployment.
type Config struct {
	// Players is n, the number of players (one per vertex).
	Players int
	// PairBudgetWords is how many words each ordered pair may carry per
	// round; 1 corresponds to the standard O(log n)-bit model.
	PairBudgetWords int
	// Strict makes budget violations fail the round.
	Strict bool
}

// Metrics aggregates the model costs incurred so far.
type Metrics struct {
	// Rounds counts communication rounds, including the constant-round
	// charges of the routing primitives.
	Rounds int
	// MaxPlayerIn is the largest per-round receive volume of any player.
	MaxPlayerIn int64
	// MaxPlayerOut is the largest per-round send volume of any player.
	MaxPlayerOut int64
	// TotalWords is the total communication volume.
	TotalWords int64
	// Violations counts budget/precondition violations (non-strict mode).
	Violations int
}

// Message is one unit of communication between players.
type Message struct {
	From    int
	To      int
	Words   int
	Payload any
}

// BudgetError reports a violated bandwidth constraint.
type BudgetError struct {
	Round  int
	Detail string
}

// Error implements the error interface.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("congest: round %d: %s", e.Round, e.Detail)
}

// Clique is a simulated CONGESTED-CLIQUE network.
type Clique struct {
	cfg Config
	met Metrics
}

// New validates cfg and returns a fresh clique.
func New(cfg Config) (*Clique, error) {
	if cfg.Players <= 0 {
		return nil, errors.New("congest: need at least one player")
	}
	if cfg.PairBudgetWords <= 0 {
		return nil, errors.New("congest: pair budget must be positive")
	}
	return &Clique{cfg: cfg}, nil
}

// Players returns n.
func (q *Clique) Players() int { return q.cfg.Players }

// Metrics returns a snapshot of the accumulated metrics.
func (q *Clique) Metrics() Metrics { return q.met }

// Round executes one synchronous round. out[i] holds player i's messages;
// the per-ordered-pair budget is enforced. Delivery order is by sender.
func (q *Clique) Round(out [][]Message) ([][]Message, error) {
	if len(out) != q.cfg.Players {
		return nil, fmt.Errorf("congest: Round got %d outboxes for %d players", len(out), q.cfg.Players)
	}
	q.met.Rounds++
	n := q.cfg.Players
	in := make([][]Message, n)
	inWords := make([]int64, n)
	pairWords := make(map[[2]int]int)
	var firstErr error
	for i, box := range out {
		var outWords int64
		for k := range box {
			msg := box[k]
			if msg.To < 0 || msg.To >= n {
				return nil, fmt.Errorf("congest: player %d sent to invalid player %d", i, msg.To)
			}
			if msg.To == i {
				return nil, fmt.Errorf("congest: player %d sent to itself", i)
			}
			if msg.Words < 0 {
				return nil, fmt.Errorf("congest: player %d sent negative-size message", i)
			}
			msg.From = i
			key := [2]int{i, msg.To}
			pairWords[key] += msg.Words
			if pairWords[key] > q.cfg.PairBudgetWords {
				q.met.Violations++
				if firstErr == nil {
					firstErr = &BudgetError{
						Round:  q.met.Rounds,
						Detail: fmt.Sprintf("pair (%d,%d) carries %d words, budget %d", i, msg.To, pairWords[key], q.cfg.PairBudgetWords),
					}
				}
			}
			outWords += int64(msg.Words)
			inWords[msg.To] += int64(msg.Words)
			q.met.TotalWords += int64(msg.Words)
			in[msg.To] = append(in[msg.To], msg)
		}
		if outWords > q.met.MaxPlayerOut {
			q.met.MaxPlayerOut = outWords
		}
	}
	for _, w := range inWords {
		if w > q.met.MaxPlayerIn {
			q.met.MaxPlayerIn = w
		}
	}
	if firstErr != nil && q.cfg.Strict {
		return nil, firstErr
	}
	return in, nil
}

// LenzenRoute routes an arbitrary multiset of messages in O(1) rounds
// (charged as lenzenRounds) provided no player sends more than n words and
// no player is the destination of more than n words — the guarantee of
// Lenzen's deterministic routing scheme [Len13]. The precondition is
// validated; violations are findings about the calling algorithm.
func (q *Clique) LenzenRoute(out [][]Message) ([][]Message, error) {
	const lenzenRounds = 2
	if len(out) != q.cfg.Players {
		return nil, fmt.Errorf("congest: LenzenRoute got %d outboxes for %d players", len(out), q.cfg.Players)
	}
	n := q.cfg.Players
	limit := int64(n) * int64(q.cfg.PairBudgetWords)
	q.met.Rounds += lenzenRounds
	in := make([][]Message, n)
	inWords := make([]int64, n)
	var firstErr error
	for i, box := range out {
		var outWords int64
		for k := range box {
			msg := box[k]
			if msg.To < 0 || msg.To >= n {
				return nil, fmt.Errorf("congest: player %d routes to invalid player %d", i, msg.To)
			}
			if msg.Words < 0 {
				return nil, fmt.Errorf("congest: player %d routes negative-size message", i)
			}
			msg.From = i
			outWords += int64(msg.Words)
			inWords[msg.To] += int64(msg.Words)
			q.met.TotalWords += int64(msg.Words)
			in[msg.To] = append(in[msg.To], msg)
		}
		if outWords > limit {
			q.met.Violations++
			if firstErr == nil {
				firstErr = &BudgetError{
					Round:  q.met.Rounds,
					Detail: fmt.Sprintf("player %d sends %d words, Lenzen limit %d", i, outWords, limit),
				}
			}
		}
		if outWords > q.met.MaxPlayerOut {
			q.met.MaxPlayerOut = outWords
		}
	}
	for j, w := range inWords {
		if w > limit {
			q.met.Violations++
			if firstErr == nil {
				firstErr = &BudgetError{
					Round:  q.met.Rounds,
					Detail: fmt.Sprintf("player %d receives %d words, Lenzen limit %d", j, w, limit),
				}
			}
		}
		if w > q.met.MaxPlayerIn {
			q.met.MaxPlayerIn = w
		}
	}
	if firstErr != nil && q.cfg.Strict {
		return nil, firstErr
	}
	return in, nil
}

// ChargeRound records one synchronous round with the given volume profile
// without materializing per-message payloads. Algorithms that only need
// cost accounting (round counts, loads) at large n use this instead of
// Round, which is O(#messages). maxPairWords is the largest volume any
// ordered pair carries; maxOut/maxIn are the largest per-player send and
// receive volumes; total is the overall volume.
func (q *Clique) ChargeRound(maxPairWords int, maxOut, maxIn, total int64) error {
	q.met.Rounds++
	q.met.TotalWords += total
	if maxOut > q.met.MaxPlayerOut {
		q.met.MaxPlayerOut = maxOut
	}
	if maxIn > q.met.MaxPlayerIn {
		q.met.MaxPlayerIn = maxIn
	}
	if maxPairWords > q.cfg.PairBudgetWords {
		q.met.Violations++
		if q.cfg.Strict {
			return &BudgetError{
				Round:  q.met.Rounds,
				Detail: fmt.Sprintf("some pair carries %d words, budget %d", maxPairWords, q.cfg.PairBudgetWords),
			}
		}
	}
	return nil
}

// ChargeLenzen records one invocation of Lenzen's routing scheme (two
// rounds) with the given volume profile, validating the scheme's
// precondition that no player sends or receives more than n·budget words.
func (q *Clique) ChargeLenzen(maxOut, maxIn, total int64) error {
	const lenzenRounds = 2
	q.met.Rounds += lenzenRounds
	q.met.TotalWords += total
	if maxOut > q.met.MaxPlayerOut {
		q.met.MaxPlayerOut = maxOut
	}
	if maxIn > q.met.MaxPlayerIn {
		q.met.MaxPlayerIn = maxIn
	}
	limit := int64(q.cfg.Players) * int64(q.cfg.PairBudgetWords)
	if maxOut > limit || maxIn > limit {
		q.met.Violations++
		if q.cfg.Strict {
			return &BudgetError{
				Round:  q.met.Rounds,
				Detail: fmt.Sprintf("Lenzen volume out=%d in=%d exceeds limit %d", maxOut, maxIn, limit),
			}
		}
	}
	return nil
}

// AllBroadcast has every player send the same wordsEach-sized payload to
// all other players in one round (legal whenever wordsEach fits the pair
// budget). payloads[i] is player i's value; the result received[j][i] is
// payloads[i] for every j != i, nil at i == j.
func (q *Clique) AllBroadcast(wordsEach int, payloads []any) ([][]any, error) {
	n := q.cfg.Players
	if len(payloads) != n {
		return nil, fmt.Errorf("congest: AllBroadcast got %d payloads for %d players", len(payloads), n)
	}
	if wordsEach > q.cfg.PairBudgetWords {
		q.met.Violations++
		if q.cfg.Strict {
			return nil, &BudgetError{Round: q.met.Rounds + 1, Detail: fmt.Sprintf("broadcast of %d words exceeds pair budget %d", wordsEach, q.cfg.PairBudgetWords)}
		}
	}
	q.met.Rounds++
	per := int64(wordsEach) * int64(n-1)
	q.met.TotalWords += per * int64(n)
	if per > q.met.MaxPlayerOut {
		q.met.MaxPlayerOut = per
	}
	if per > q.met.MaxPlayerIn {
		q.met.MaxPlayerIn = per
	}
	received := make([][]any, n)
	for j := 0; j < n; j++ {
		row := make([]any, n)
		for i := 0; i < n; i++ {
			if i != j {
				row[i] = payloads[i]
			}
		}
		received[j] = row
	}
	return received, nil
}
