package mis

import (
	"fmt"

	"mpcgraph/internal/congest"
	"mpcgraph/internal/graph"
	"mpcgraph/internal/par"
	"mpcgraph/internal/rng"
)

// RandGreedyCongestedClique computes a maximal independent set in the
// CONGESTED-CLIQUE model, following Section 3.2 of the paper:
//
//  1. the lowest-id player draws the permutation and scatters positions
//     (one round), then every player broadcasts its position (one round);
//  2. per rank-prefix phase, in-range alive vertices ship their in-range
//     edges to the leader with Lenzen's routing (O(1) rounds; chunked when
//     the O(n) total exceeds one invocation's n-word limit), the leader
//     extends the greedy MIS, scatters verdicts (one round), and new MIS
//     members notify their neighbors (one round);
//  3. the sparsified [Gha17] stage runs Ghaffari's dynamics, one round per
//     iteration (desire level and mark fit one word per neighbor);
//  4. the shattered residue is Lenzen-routed to the leader and finished.
//
// All bandwidth is metered by the congest simulator; the result reports
// rounds, loads, and any budget violations.
func RandGreedyCongestedClique(g *graph.Graph, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := g.NumVertices()
	res := &Result{InMIS: make([]bool, n)}
	if n == 0 {
		return res, nil
	}

	clique, err := congest.New(congest.Config{
		Players:         n,
		PairBudgetWords: 1,
		Strict:          opts.Strict,
		Workers:         opts.Workers,
		Ctx:             opts.Ctx,
		Trace:           opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	clique.SetActive(n)

	src := rng.New(opts.Seed)
	perm := src.SplitString("mis-perm").Perm(n)
	rank := make([]int32, n)
	for i, v := range perm {
		rank[v] = int32(i)
	}

	// Permutation setup: leader scatters positions, everyone broadcasts.
	if err := clique.ChargeRound(1, int64(n-1), 1, int64(n-1)); err != nil {
		return nil, fmt.Errorf("scatter permutation: %w", err)
	}
	if err := clique.ChargeRound(1, int64(n-1), int64(n-1), int64(n)*int64(n-1)); err != nil {
		return nil, fmt.Errorf("broadcast positions: %w", err)
	}
	setup := clique.Metrics()
	res.Stages = append(res.Stages, stageCost("setup", 0, setup.Rounds, 0, setup.TotalWords))

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}

	ranks := prefixRanks(n, g.MaxDegree(), opts.PolylogDegree(n), opts.Alpha)
	prev := 0
	for _, r := range ranks {
		before := clique.Metrics()
		info, err := cliquePrefixPhase(clique, g, perm, rank, alive, res.InMIS, prev, r, opts.Workers)
		if err != nil {
			return nil, err
		}
		res.Phases++
		res.PhaseInfos = append(res.PhaseInfos, info)
		after := clique.Metrics()
		res.Stages = append(res.Stages, stageCost(fmt.Sprintf("prefix@%d", r), before.Rounds, after.Rounds, before.TotalWords, after.TotalWords))
		clique.SetActive(graph.CountMarked(alive))
		prev = r
	}

	// Sparsified stage: one round per dynamics iteration.
	d := newDynamics(g, alive, res.InMIS, opts.Seed, opts.Workers)
	maxIter := defaultDynamicsCap(g.MaxDegree(), opts.MaxDynamicsIterations)
	residualLimit := int64(n) // one Lenzen invocation's receive budget
	beforeDyn := clique.Metrics()
	for iter := 0; d.undecided() > 0 && d.residualEdgeWords() > residualLimit/2 && iter < maxIter; iter++ {
		clique.SetActive(d.undecided())
		maxDeg, edges := aliveDegreeProfile(g, d.alive, opts.Workers)
		if err := clique.ChargeRound(1, int64(maxDeg), int64(maxDeg), 2*edges); err != nil {
			return nil, fmt.Errorf("dynamics round: %w", err)
		}
		d.step(iter)
		res.SparsifiedIterations++
	}
	if res.SparsifiedIterations > 0 {
		afterDyn := clique.Metrics()
		res.Stages = append(res.Stages, stageCost("sparsified", beforeDyn.Rounds, afterDyn.Rounds, beforeDyn.TotalWords, afterDyn.TotalWords))
	}
	if d.undecided() > 0 {
		clique.SetActive(d.undecided())
		beforeGather := clique.Metrics()
		if err := chunkedLenzenGather(clique, g, d.alive, opts.Workers); err != nil {
			return nil, err
		}
		d.finishGreedy(perm)
		// Leader scatters final verdicts.
		if err := clique.ChargeRound(1, int64(n-1), 1, int64(n-1)); err != nil {
			return nil, fmt.Errorf("final scatter: %w", err)
		}
		afterGather := clique.Metrics()
		res.Stages = append(res.Stages, stageCost("final-gather", beforeGather.Rounds, afterGather.Rounds, beforeGather.TotalWords, afterGather.TotalWords))
	}
	clique.SetActive(0)

	m := clique.Metrics()
	res.Rounds = m.Rounds
	res.MaxMachineWords = m.MaxPlayerIn
	if m.MaxPlayerOut > res.MaxMachineWords {
		res.MaxMachineWords = m.MaxPlayerOut
	}
	res.TotalWords = m.TotalWords
	res.Violations = m.Violations
	return res, nil
}

// cliquePrefixPhase runs one rank-prefix phase in the clique model.
func cliquePrefixPhase(
	clique *congest.Clique,
	g *graph.Graph,
	perm []int32,
	rank []int32,
	alive, inMIS []bool,
	prev, r int,
	workers int,
) (PhaseInfo, error) {
	n := g.NumVertices()
	info := PhaseInfo{Rank: r}
	inRange := func(v int32) bool {
		return alive[v] && int(rank[v]) >= prev && int(rank[v]) < r
	}
	// Gather volume: every in-range vertex ships its in-range incident
	// edges (2 words each, counted once for the smaller endpoint). The
	// scan is read-only, so it fans out with integer accumulators merged
	// in shard order.
	type volAcc struct {
		total, maxOut, edgeWords int64
		vertices                 int
	}
	acc := par.Reduce(workers, n, func(lo, hi, _ int) volAcc {
		var a volAcc
		for u := int32(lo); u < int32(hi); u++ {
			if !inRange(u) {
				continue
			}
			a.vertices++
			var out int64 = 1 // its own id
			for _, v := range g.Neighbors(u) {
				if u < v && inRange(v) {
					out += 2
				}
			}
			a.total += out
			a.edgeWords += out - 1
			if out > a.maxOut {
				a.maxOut = out
			}
		}
		return a
	}, func(a, b volAcc) volAcc {
		a.total += b.total
		a.edgeWords += b.edgeWords
		a.vertices += b.vertices
		if b.maxOut > a.maxOut {
			a.maxOut = b.maxOut
		}
		return a
	})
	total, maxOut := acc.total, acc.maxOut
	info.GatheredVertices = acc.vertices
	info.GatheredEdgeWords = acc.edgeWords
	// Lenzen-route to the leader in chunks of at most n words.
	for remaining := total; ; {
		chunk := remaining
		if chunk > int64(n) {
			chunk = int64(n)
		}
		if err := clique.ChargeLenzen(min64(maxOut, chunk), chunk, chunk); err != nil {
			return info, fmt.Errorf("phase Lenzen gather at rank %d: %w", r, err)
		}
		remaining -= chunk
		if remaining <= 0 {
			break
		}
	}

	// Leader extends the greedy MIS.
	var newMIS []int32
	for i := prev; i < r && i < len(perm); i++ {
		v := perm[i]
		if !alive[v] {
			continue
		}
		blocked := false
		for _, u := range g.Neighbors(v) {
			if inMIS[u] {
				blocked = true
				break
			}
		}
		if !blocked {
			inMIS[v] = true
			newMIS = append(newMIS, v)
		}
	}
	info.NewMISVertices = len(newMIS)

	// Leader scatters verdicts: one word to each player.
	if err := clique.ChargeRound(1, int64(n-1), 1, int64(n-1)); err != nil {
		return info, fmt.Errorf("phase scatter at rank %d: %w", r, err)
	}
	// New MIS members notify neighbors: one word per incident pair.
	var notifyMax, notifyTotal int64
	for _, v := range newMIS {
		deg := int64(g.Degree(v))
		notifyTotal += deg
		if deg > notifyMax {
			notifyMax = deg
		}
	}
	if err := clique.ChargeRound(1, notifyMax, notifyMax, notifyTotal); err != nil {
		return info, fmt.Errorf("phase notify at rank %d: %w", r, err)
	}
	for _, v := range newMIS {
		alive[v] = false
		for _, u := range g.Neighbors(v) {
			alive[u] = false
		}
	}
	info.ResidualMaxDegree = residualMaxDegree(g, alive, workers)
	return info, nil
}

// chunkedLenzenGather routes the alive-induced residue to the leader in
// n-word chunks.
func chunkedLenzenGather(clique *congest.Clique, g *graph.Graph, alive []bool, workers int) error {
	n := int64(g.NumVertices())
	acc := par.Reduce(workers, g.NumVertices(), func(lo, hi, _ int) [2]int64 {
		var a [2]int64
		for u := int32(lo); u < int32(hi); u++ {
			if !alive[u] {
				continue
			}
			var out int64 = 1
			for _, v := range g.Neighbors(u) {
				if u < v && alive[v] {
					out += 2
				}
			}
			a[0] += out
			if out > a[1] {
				a[1] = out
			}
		}
		return a
	}, func(a, b [2]int64) [2]int64 {
		a[0] += b[0]
		if b[1] > a[1] {
			a[1] = b[1]
		}
		return a
	})
	total, maxOut := acc[0], acc[1]
	for remaining := total; ; {
		chunk := remaining
		if chunk > n {
			chunk = n
		}
		if err := clique.ChargeLenzen(min64(maxOut, chunk), chunk, chunk); err != nil {
			return fmt.Errorf("residual Lenzen gather: %w", err)
		}
		remaining -= chunk
		if remaining <= 0 {
			break
		}
	}
	return nil
}

// aliveDegreeProfile returns the maximum alive-induced degree and the
// number of alive-induced edges.
func aliveDegreeProfile(g *graph.Graph, alive []bool, workers int) (maxDeg int, edges int64) {
	type profAcc struct {
		maxDeg int
		edges  int64
	}
	acc := par.Reduce(workers, g.NumVertices(), func(lo, hi, _ int) profAcc {
		var a profAcc
		for u := int32(lo); u < int32(hi); u++ {
			if !alive[u] {
				continue
			}
			deg := 0
			for _, v := range g.Neighbors(u) {
				if alive[v] {
					deg++
					if u < v {
						a.edges++
					}
				}
			}
			if deg > a.maxDeg {
				a.maxDeg = deg
			}
		}
		return a
	}, func(a, b profAcc) profAcc {
		if b.maxDeg > a.maxDeg {
			a.maxDeg = b.maxDeg
		}
		a.edges += b.edges
		return a
	})
	return acc.maxDeg, acc.edges
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
