package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with distinct seeds collided %d times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := parent.Split(1)
	if c1.Uint64() == c2.Uint64() {
		t.Error("differently labelled children produced equal first draw")
	}
	want := New(7).Split(1).Uint64()
	if got := c1again.Uint64(); got != want {
		t.Errorf("Split is not a pure function of (parent, label): got %d want %d", got, want)
	}
}

func TestSplitString(t *testing.T) {
	p := New(3)
	if p.SplitString("a").Uint64() == p.SplitString("b").Uint64() {
		t.Error("string-labelled children collided")
	}
	if p.SplitString("x").Uint64() != p.SplitString("x").Uint64() {
		t.Error("SplitString is not deterministic")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(9)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d has count %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(13)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestUniformIn(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		f := s.UniformIn(0.8, 0.9)
		if f < 0.8 || f >= 0.9 {
			t.Fatalf("UniformIn(0.8, 0.9) = %v out of range", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, size uint16) bool {
		n := int(size%2048) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// The first element of a uniform permutation of [0,n) is uniform.
	const n, draws = 8, 80000
	s := New(23)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("first element %d occurred %d times, want about %.0f", i, c, want)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(29)
	const p, draws = 0.25, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(s.Geometric(p))
	}
	mean := sum / draws
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("Geometric(%v) mean = %v, want about %v", p, mean, want)
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	s := New(31)
	if g := s.Geometric(1.0); g != 0 {
		t.Errorf("Geometric(1) = %d, want 0", g)
	}
	if g := s.Geometric(0); g != math.MaxInt32 {
		t.Errorf("Geometric(0) = %d, want MaxInt32", g)
	}
	if g := s.Geometric(-0.5); g != math.MaxInt32 {
		t.Errorf("Geometric(-0.5) = %d, want MaxInt32", g)
	}
}

func TestExpMean(t *testing.T) {
	s := New(37)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += s.Exp()
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("Exp mean = %v, want about 1", mean)
	}
}

func TestHashStability(t *testing.T) {
	if Hash(1, 2, 3) != Hash(1, 2, 3) {
		t.Error("Hash is not deterministic")
	}
	if Hash(1, 2, 3) == Hash(3, 2, 1) {
		t.Error("Hash ignores argument order")
	}
	if Hash(0) == Hash(0, 0) {
		t.Error("Hash ignores argument count")
	}
}

func TestThresholdOracleRangeAndDeterminism(t *testing.T) {
	o := NewThresholdOracle(99, 0.6, 0.8)
	for v := int32(0); v < 100; v++ {
		for iter := 0; iter < 50; iter++ {
			th := o.At(v, iter)
			if th < 0.6 || th >= 0.8 {
				t.Fatalf("T_{%d,%d} = %v out of [0.6, 0.8)", v, iter, th)
			}
			if th != o.At(v, iter) {
				t.Fatalf("T_{%d,%d} is not stable", v, iter)
			}
		}
	}
}

func TestThresholdOracleIndependence(t *testing.T) {
	o := NewThresholdOracle(99, 0, 1)
	if o.At(1, 1) == o.At(1, 2) || o.At(1, 1) == o.At(2, 1) {
		t.Error("thresholds collide across vertices/iterations")
	}
	o2 := NewThresholdOracle(100, 0, 1)
	if o.At(5, 5) == o2.At(5, 5) {
		t.Error("thresholds collide across seeds")
	}
}

func TestThresholdOracleMean(t *testing.T) {
	o := NewThresholdOracle(7, 0.6, 0.8)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		sum += o.At(int32(i%317), i/317)
	}
	if mean := sum / draws; math.Abs(mean-0.7) > 0.002 {
		t.Errorf("threshold mean = %v, want about 0.7", mean)
	}
}

func TestThresholdOraclePanicsOnEmptyInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewThresholdOracle(hi < lo) did not panic")
		}
	}()
	NewThresholdOracle(1, 0.9, 0.8)
}

func TestThresholdOracleAccessors(t *testing.T) {
	o := NewThresholdOracle(1, 0.25, 0.75)
	if o.Lo() != 0.25 || o.Hi() != 0.75 {
		t.Errorf("Lo/Hi = %v/%v, want 0.25/0.75", o.Lo(), o.Hi())
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkPerm1e4(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Perm(10000)
	}
}

func BenchmarkThresholdOracle(b *testing.B) {
	o := NewThresholdOracle(1, 0.6, 0.8)
	for i := 0; i < b.N; i++ {
		_ = o.At(int32(i&1023), i>>10)
	}
}
