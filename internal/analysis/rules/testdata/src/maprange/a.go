// Package maprange poses as mpcgraph/internal/registry, a
// deterministic core package. listJobs reconstructs the PR-6 review
// bug class: a jobs map ranged directly into a list response, so the
// response byte order changed from process to process.
package maprange

import "sort"

type job struct{ id string }

func listJobs(jobs map[string]*job) []string {
	var ids []string
	for id := range jobs { // want "maprange: ranging over map"
		ids = append(ids, id)
	}
	return ids
}

// listJobsSorted is the fix shape: collect, then sort in the same
// block. The analyzer recognizes the idiom and stays quiet.
func listJobsSorted(jobs map[string]*job) []string {
	ids := make([]string, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// countJobs iterates without binding the key or value; a pure
// repetition cannot observe the order.
func countJobs(jobs map[string]*job) int {
	n := 0
	for range jobs {
		n++
	}
	return n
}

// sumIDLen documents the suppression path: the invariant (a
// commutative reduction) is stated next to the directive.
func sumIDLen(jobs map[string]*job) int {
	total := 0
	//lint:ignore maprange commutative sum; iteration order cannot reach the result
	for _, j := range jobs {
		total += len(j.id)
	}
	return total
}
