// Package graphio reads and writes the plain-text edge-list format used
// by the command-line tools: an optional header line "n <count>", then
// one "u v" pair per line (0-based vertex ids); '#' starts a comment.
// Without a header, n is one plus the largest vertex id seen.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mpcgraph/internal/graph"
)

// ReadEdgeList parses the edge-list format from r.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var (
		edges   [][2]int32
		n       = -1
		maxSeen = int32(-1)
		lineNo  int
	)
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: header must be 'n <count>'", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad vertex count %q", lineNo, fields[1])
			}
			n = v
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphio: line %d: want 'u v', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil || u < 0 {
			return nil, fmt.Errorf("graphio: line %d: bad vertex %q", lineNo, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("graphio: line %d: bad vertex %q", lineNo, fields[1])
		}
		if u == v {
			return nil, fmt.Errorf("graphio: line %d: self-loop at %d", lineNo, u)
		}
		if int32(u) > maxSeen {
			maxSeen = int32(u)
		}
		if int32(v) > maxSeen {
			maxSeen = int32(v)
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if n < 0 {
		n = int(maxSeen) + 1
	}
	if int(maxSeen) >= n {
		return nil, fmt.Errorf("graphio: vertex %d out of range for declared n=%d", maxSeen, n)
	}
	return graph.FromEdges(n, edges)
}

// WriteEdgeList writes g in the edge-list format with a header line.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.NumVertices()); err != nil {
		return err
	}
	var writeErr error
	g.ForEachEdge(func(u, v int32) {
		if writeErr == nil {
			_, writeErr = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}
