package mpcgraph_test

// Runnable godoc examples for the public API. The Output comments are
// asserted by `go test`, so these double as end-to-end regression tests
// with fixed seeds.

import (
	"fmt"

	"mpcgraph"
)

func ExampleMIS() {
	g := mpcgraph.RandomGraph(1000, 0.01, 42)
	res, err := mpcgraph.MIS(g, mpcgraph.Options{Seed: 7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", mpcgraph.IsMaximalIndependentSet(g, res.InMIS))
	fmt.Println("rounds are doubly logarithmic:", res.Stats.Rounds < 20)
	// Output:
	// valid: true
	// rounds are doubly logarithmic: true
}

func ExampleApproxMaxMatching() {
	g := mpcgraph.RandomGraph(1000, 0.01, 42)
	res, err := mpcgraph.ApproxMaxMatching(g, mpcgraph.Options{Seed: 7, Eps: 0.1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", mpcgraph.IsMatching(g, res.M))
	// A maximal matching on this instance has at least ~380 edges; 2+eps
	// approximation guarantees at least opt/(2+eps).
	fmt.Println("non-trivial:", res.M.Size() > 300)
	// Output:
	// valid: true
	// non-trivial: true
}

func ExampleApproxMinVertexCover() {
	g := mpcgraph.RandomGraph(1000, 0.01, 42)
	res, err := mpcgraph.ApproxMinVertexCover(g, mpcgraph.Options{Seed: 7, Eps: 0.1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	covered := 0
	for _, in := range res.InCover {
		if in {
			covered++
		}
	}
	fmt.Println("valid:", mpcgraph.IsVertexCover(g, res.InCover))
	// The dual fractional matching certifies the quality of this exact
	// run: |cover| <= (2+eps)·dual <= (2+eps)·opt.
	fmt.Println("certified ratio below 2.2:", float64(covered) <= 2.2*res.FractionalWeight)
	// Output:
	// valid: true
	// certified ratio below 2.2: true
}

func ExampleNewGraphBuilder() {
	b := mpcgraph.NewGraphBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	fmt.Println(g.NumVertices(), "vertices,", g.NumEdges(), "edges")
	// Output:
	// 4 vertices, 3 edges
}

func ExampleApproxMaxWeightedMatching() {
	// Two edges sharing vertex 1: the heavy one must win.
	b := mpcgraph.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	wg, err := mpcgraph.NewWeightedGraph(g, []float64{1.0, 10.0})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res := mpcgraph.ApproxMaxWeightedMatching(wg, mpcgraph.Options{Seed: 1, Eps: 0.1})
	fmt.Println("value:", res.Value)
	// Output:
	// value: 10
}
