package graph

// This file contains the structural predicates used to check algorithm
// outputs. Every algorithm test and every experiment validates its output
// through these, so they are written for clarity over speed.

// IsIndependentSet reports whether no two marked vertices are adjacent.
func IsIndependentSet(g *Graph, in []bool) bool {
	if len(in) != g.NumVertices() {
		return false
	}
	ok := true
	g.ForEachEdge(func(u, v int32) {
		if in[u] && in[v] {
			ok = false
		}
	})
	return ok
}

// IsMaximalIndependentSet reports whether the marked set is independent
// and every unmarked vertex has a marked neighbor.
func IsMaximalIndependentSet(g *Graph, in []bool) bool {
	if !IsIndependentSet(g, in) {
		return false
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if in[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// Matching is the standard mate-array encoding: mate[v] is the matched
// partner of v, or -1 when v is free.
type Matching []int32

// NewMatching returns an empty matching on n vertices.
func NewMatching(n int) Matching {
	m := make(Matching, n)
	for i := range m {
		m[i] = -1
	}
	return m
}

// Size returns the number of matched edges.
func (m Matching) Size() int {
	cnt := 0
	for v, u := range m {
		if u >= 0 && int32(v) < u {
			cnt++
		}
	}
	return cnt
}

// Edges returns the matched edges with u < v.
func (m Matching) Edges() [][2]int32 {
	out := make([][2]int32, 0, m.Size())
	for v, u := range m {
		if u >= 0 && int32(v) < u {
			out = append(out, [2]int32{int32(v), u})
		}
	}
	return out
}

// Match records the edge {u, v} in the matching. It panics if either
// endpoint is already matched, which indicates a caller bug.
func (m Matching) Match(u, v int32) {
	if m[u] != -1 || m[v] != -1 {
		panic("graph: Match on already-matched vertex")
	}
	m[u], m[v] = v, u
}

// Unmatch removes the edge covering u (and its mate).
func (m Matching) Unmatch(u int32) {
	if v := m[u]; v != -1 {
		m[u], m[v] = -1, -1
	}
}

// Clone returns a deep copy.
func (m Matching) Clone() Matching {
	c := make(Matching, len(m))
	copy(c, m)
	return c
}

// IsMatching reports whether m is a consistent matching whose edges all
// exist in g.
func IsMatching(g *Graph, m Matching) bool {
	if len(m) != g.NumVertices() {
		return false
	}
	for v := int32(0); v < int32(len(m)); v++ {
		u := m[v]
		if u == -1 {
			continue
		}
		if u < 0 || int(u) >= len(m) || m[u] != v || u == v {
			return false
		}
		if v < u && !g.HasEdge(v, u) {
			return false
		}
	}
	return true
}

// IsMaximalMatching reports whether m is a matching of g and no edge of g
// has both endpoints free.
func IsMaximalMatching(g *Graph, m Matching) bool {
	if !IsMatching(g, m) {
		return false
	}
	maximal := true
	g.ForEachEdge(func(u, v int32) {
		if m[u] == -1 && m[v] == -1 {
			maximal = false
		}
	})
	return maximal
}

// IsVertexCover reports whether every edge has a marked endpoint.
func IsVertexCover(g *Graph, cover []bool) bool {
	if len(cover) != g.NumVertices() {
		return false
	}
	ok := true
	g.ForEachEdge(func(u, v int32) {
		if !cover[u] && !cover[v] {
			ok = false
		}
	})
	return ok
}

// CountMarked returns the number of true entries; shared helper for set
// sizes.
func CountMarked(set []bool) int {
	cnt := 0
	for _, b := range set {
		if b {
			cnt++
		}
	}
	return cnt
}

// FractionalMatching is a per-edge weight vector indexed by an EdgeIndex.
type FractionalMatching struct {
	Index *EdgeIndex
	X     []float64
}

// NewFractionalMatching returns the all-zero fractional matching on g's
// edge index.
func NewFractionalMatching(ix *EdgeIndex) *FractionalMatching {
	return &FractionalMatching{Index: ix, X: make([]float64, ix.NumEdges())}
}

// VertexWeights returns y_v = sum of x_e over edges incident to v.
func (f *FractionalMatching) VertexWeights() []float64 {
	y := make([]float64, f.Index.g.NumVertices())
	for id, x := range f.X {
		if x == 0 {
			continue
		}
		u, v := f.Index.Endpoints(int32(id))
		y[u] += x
		y[v] += x
	}
	return y
}

// Weight returns the total weight sum_e x_e.
func (f *FractionalMatching) Weight() float64 {
	w := 0.0
	for _, x := range f.X {
		w += x
	}
	return w
}

// IsFeasible reports whether all x_e are in [0, 1] and every vertex weight
// satisfies y_v <= 1 + tol.
func (f *FractionalMatching) IsFeasible(tol float64) bool {
	for _, x := range f.X {
		if x < 0 || x > 1+tol {
			return false
		}
	}
	for _, y := range f.VertexWeights() {
		if y > 1+tol {
			return false
		}
	}
	return true
}
