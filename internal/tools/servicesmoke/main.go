// Command servicesmoke is the `make service-smoke` harness: it boots a
// real mpcgraphd binary on an ephemeral port (with a persistent cache
// directory), submits one job per registered problem over HTTP,
// re-submits each and verifies the deterministic result cache returned
// a hit whose job view is bit-identical to the cold run (volatile
// fields aside), checks the /metrics counters and the disk-tier health
// report, round-trips the same jobs once more as one POST /v1/batches
// (server-side dedup must serve every member from the memory cache
// tier with zero new solves, and the NDJSON stream must replay every
// completion), then sends SIGTERM and requires a clean graceful exit.
// Finally it boots a second, deliberately saturated daemon (one
// stalled worker, queue depth 1) and verifies the backpressure
// convention: overload produces HTTP 429 with a Retry-After header.
// It exercises exactly the production path: the shipped binary, a real
// TCP port, real signals. Crash-recovery of the disk tier has its own,
// deeper harness — see internal/tools/chaossmoke (`make chaos-smoke`).
//
// Usage: servicesmoke -bin <path-to-mpcgraphd>
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"mpcgraph/internal/obs"
)

func main() {
	bin := flag.String("bin", "", "path to the mpcgraphd binary")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "servicesmoke: -bin is required")
		os.Exit(2)
	}
	if err := run(*bin); err != nil {
		fmt.Fprintln(os.Stderr, "servicesmoke:", err)
		os.Exit(1)
	}
	fmt.Println("service-smoke OK")
}

// jobSpec is one cold-run/cache-hit probe.
type jobSpec struct {
	problem  string
	model    string
	scenario string
}

// specs covers every problem, both models where registered, and the
// weighted path.
var specs = []jobSpec{
	{"mis", "mpc", "gnp"},
	{"mis", "congested-clique", "gnp"},
	{"maximal-matching", "mpc", "rmat"},
	{"approx-matching", "congested-clique", "chung-lu"},
	{"one-plus-eps-matching", "mpc", "ring-of-cliques"},
	{"vertex-cover", "congested-clique", "high-girth"},
	{"weighted-matching", "mpc", "weighted-gnp"},
}

// startDaemon boots bin with args, waits for the "listening on" line,
// and returns the base URL plus the running process.
func startDaemon(bin string, env []string, args ...string) (string, *exec.Cmd, error) {
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), env...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}

	// The daemon's first stdout line carries the bound address.
	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return "", nil, fmt.Errorf("daemon never printed its address")
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return base, cmd, nil
}

func run(bin string) error {
	cacheDir, err := os.MkdirTemp("", "servicesmoke-cache-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)

	base, cmd, err := startDaemon(bin, nil, "-workers", "2", "-cache-dir", cacheDir)
	if err != nil {
		return err
	}
	defer func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	for _, spec := range specs {
		cold, err := submitAndWait(base, spec)
		if err != nil {
			return fmt.Errorf("%s/%s cold: %w", spec.problem, spec.model, err)
		}
		if cacheHit(cold) {
			return fmt.Errorf("%s/%s: cold run claimed a cache hit", spec.problem, spec.model)
		}
		hit, err := submitAndWait(base, spec)
		if err != nil {
			return fmt.Errorf("%s/%s hit: %w", spec.problem, spec.model, err)
		}
		if !cacheHit(hit) {
			return fmt.Errorf("%s/%s: re-submit missed the cache", spec.problem, spec.model)
		}
		a, b := canonical(cold), canonical(hit)
		if !bytes.Equal(a, b) {
			return fmt.Errorf("%s/%s: cache hit not bit-identical to cold run:\n cold: %s\n hit:  %s",
				spec.problem, spec.model, a, b)
		}
		// Every terminal view must carry an ordered lifecycle timings
		// block; the cold run's must show the full leader path.
		if err := checkTimings(cold, "received", "queued", "dequeued", "solving", "persisted", "settled"); err != nil {
			return fmt.Errorf("%s/%s cold timings: %w", spec.problem, spec.model, err)
		}
		if err := checkTimings(hit, "received", "settled"); err != nil {
			return fmt.Errorf("%s/%s hit timings: %w", spec.problem, spec.model, err)
		}
		fmt.Printf("  %-22s %-17s cold+hit bit-identical (rounds=%v)\n",
			spec.problem, spec.model, cold["report"].(map[string]any)["rounds"])
	}

	metrics, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	// Exposition-format invariants over the whole scrape: every series
	// under a HELP/TYPE header, histogram buckets cumulative-monotone,
	// le="+Inf" present and equal to _count.
	exp, err := obs.ParseExposition(bytes.NewReader(metrics))
	if err != nil {
		return fmt.Errorf("/metrics does not parse as text exposition: %w", err)
	}
	if problems := obs.ValidateExposition(exp); len(problems) > 0 {
		msgs := make([]string, len(problems))
		for i, p := range problems {
			msgs[i] = p.Error()
		}
		return fmt.Errorf("/metrics violates exposition invariants:\n  %s", strings.Join(msgs, "\n  "))
	}
	for _, family := range []string{
		"mpcgraphd_http_request_seconds", "mpcgraphd_queue_wait_seconds",
		"mpcgraphd_solve_seconds", "mpcgraphd_job_e2e_seconds",
		"mpcgraphd_disk_op_seconds", "mpcgraphd_cache_probe_seconds",
	} {
		if exp.Type[family] != "histogram" {
			return fmt.Errorf("/metrics family %s missing or not a histogram after traffic", family)
		}
	}
	fmt.Printf("  metrics: exposition invariants hold (%d samples)\n", len(exp.Samples))
	if !strings.Contains(string(metrics), fmt.Sprintf(`mpcgraphd_cache_hits_total{tier="memory"} %d`, len(specs))) {
		return fmt.Errorf("metrics do not report %d memory-tier cache hits:\n%s", len(specs), metrics)
	}
	if !strings.Contains(string(metrics), fmt.Sprintf("mpcgraphd_jobs_submitted_total %d", 2*len(specs))) {
		return fmt.Errorf("metrics do not report %d submissions", 2*len(specs))
	}
	if !strings.Contains(string(metrics), fmt.Sprintf("mpcgraphd_cache_disk_writes_total %d", len(specs))) {
		return fmt.Errorf("metrics do not report %d disk-tier writes:\n%s", len(specs), metrics)
	}
	health, err := get(base + "/healthz")
	if err != nil {
		return err
	}
	if !strings.Contains(string(health), `"status": "ok"`) {
		return fmt.Errorf("healthz not ok: %s", health)
	}
	if !strings.Contains(string(health), `"cacheDisk": "ok"`) {
		return fmt.Errorf("healthz does not report a healthy disk tier: %s", health)
	}

	if err := checkBatch(base); err != nil {
		return err
	}

	// Graceful drain: SIGTERM must produce a zero exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		_ = cmd.Process.Kill()
		return fmt.Errorf("daemon did not drain within 60s of SIGTERM")
	}

	return checkBackpressure(bin)
}

// checkBatch round-trips POST /v1/batches on the production binary:
// the batch resubmits exactly the jobs the per-problem probes already
// solved, so server-side dedup must serve every member from the memory
// cache tier and enqueue zero new solves — pinned by the dedup block
// of the batch view and an unchanged mpcgraphd_solves_total. The
// NDJSON stream of the settled batch must replay one line per member
// plus the final done marker.
func checkBatch(base string) error {
	solvesBefore, err := metricValue(base, "mpcgraphd_solves_total")
	if err != nil {
		return err
	}

	var jobs []string
	for _, spec := range specs {
		jobs = append(jobs, fmt.Sprintf(`{
			"problem": %q, "model": %q,
			"scenario": {"name": %q, "n": 500, "seed": 7},
			"options": {"seed": 7}
		}`, spec.problem, spec.model, spec.scenario))
	}
	body := `{"jobs": [` + strings.Join(jobs, ",") + `]}`
	resp, err := http.Post(base+"/v1/batches", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != 201 {
		return fmt.Errorf("batch submit: %s: %s", resp.Status, data)
	}
	var view map[string]any
	if err := json.Unmarshal(data, &view); err != nil {
		return err
	}
	id, _ := view["id"].(string)

	deadline := time.Now().Add(60 * time.Second)
	for {
		if state, _ := view["state"].(string); state == "done" {
			break
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("batch %s did not settle", id)
		}
		time.Sleep(20 * time.Millisecond)
		data, err := get(base + "/v1/batches/" + id)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &view); err != nil {
			return err
		}
	}

	counts, _ := view["counts"].(map[string]any)
	if done, _ := counts["done"].(float64); int(done) != len(specs) {
		return fmt.Errorf("batch %s: %v of %d members done: %s", id, done, len(specs), data)
	}
	dedup, _ := view["dedup"].(map[string]any)
	hits, _ := dedup["cacheHits"].(map[string]any)
	if mem, _ := hits["memory"].(float64); int(mem) != len(specs) {
		return fmt.Errorf("batch %s: %v memory-tier hits, want %d: %s", id, mem, len(specs), data)
	}
	if enq, _ := dedup["enqueued"].(float64); enq != 0 {
		return fmt.Errorf("batch %s: enqueued %v jobs, want 0 (all cached): %s", id, enq, data)
	}

	solvesAfter, err := metricValue(base, "mpcgraphd_solves_total")
	if err != nil {
		return err
	}
	if solvesAfter != solvesBefore {
		return fmt.Errorf("fully cached batch performed %v new solves, want 0", solvesAfter-solvesBefore)
	}

	stream, err := get(base + "/v1/batches/" + id + "/stream")
	if err != nil {
		return err
	}
	lines := strings.Split(strings.TrimSpace(string(stream)), "\n")
	if len(lines) != len(specs)+1 {
		return fmt.Errorf("batch stream replayed %d lines, want %d members + done marker", len(lines), len(specs))
	}
	var marker struct {
		Done bool `json:"done"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &marker); err != nil || !marker.Done {
		return fmt.Errorf("batch stream's last line is not the done marker: %s", lines[len(lines)-1])
	}

	fmt.Printf("  batch: %d members all memory-tier hits, 0 new solves, stream replay intact\n", len(specs))
	return nil
}

// metricValue scrapes one counter/gauge from /metrics.
func metricValue(base, name string) (float64, error) {
	data, err := get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, found := strings.CutPrefix(line, name+" "); found {
			var v float64
			if _, err := fmt.Sscanf(rest, "%f", &v); err != nil {
				return 0, fmt.Errorf("metric %s: bad value %q", name, rest)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("metric %s not found", name)
}

// checkBackpressure pins the overload convention against a saturated
// daemon: one worker stalled by a failpoint, queue depth 1, so the
// third identical-shape submission must be rejected with 429 and a
// Retry-After hint.
func checkBackpressure(bin string) error {
	base, cmd, err := startDaemon(bin, []string{"MPCGRAPHD_FAILPOINTS=solve-stall"},
		"-workers", "1", "-queue", "1")
	if err != nil {
		return err
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	saw429 := false
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{
			"problem": "mis", "noCache": true,
			"scenario": {"name": "gnp", "n": %d, "seed": 7},
			"options": {"seed": 7}
		}`, 200+i)
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		data, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		switch resp.StatusCode {
		case 201:
		case 429:
			saw429 = true
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				return fmt.Errorf("429 rejection carries no Retry-After header")
			}
			var view map[string]any
			if err := json.Unmarshal(data, &view); err != nil {
				return fmt.Errorf("429 body is not a job view: %s", data)
			}
			if state, _ := view["state"].(string); state != "canceled" {
				return fmt.Errorf("429-rejected job state %q, want canceled", state)
			}
		default:
			return fmt.Errorf("saturated submit %d: %s: %s", i, resp.Status, data)
		}
	}
	if !saw429 {
		return fmt.Errorf("4 submissions against workers=1/queue=1 stalled daemon never hit 429")
	}
	fmt.Println("  backpressure: 429 + Retry-After on saturated daemon")
	return nil
}

// submitAndWait posts one job and polls it to a terminal state,
// returning the job view as a generic map (so field comparison covers
// every wire field, including ones this tool does not know about).
func submitAndWait(base string, spec jobSpec) (map[string]any, error) {
	body := fmt.Sprintf(`{
		"problem": %q, "model": %q,
		"scenario": {"name": %q, "n": 500, "seed": 7},
		"options": {"seed": 7}
	}`, spec.problem, spec.model, spec.scenario)
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 201 {
		return nil, fmt.Errorf("submit: %s: %s", resp.Status, data)
	}
	var view map[string]any
	if err := json.Unmarshal(data, &view); err != nil {
		return nil, err
	}
	id, _ := view["id"].(string)
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		state, _ := view["state"].(string)
		switch state {
		case "done":
			return view, nil
		case "failed", "canceled":
			return nil, fmt.Errorf("job %s %s: %v", id, state, view["error"])
		}
		time.Sleep(20 * time.Millisecond)
		data, err := get(base + "/v1/jobs/" + id)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(data, &view); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("job %s did not finish", id)
}

func cacheHit(view map[string]any) bool {
	hit, _ := view["cacheHit"].(bool)
	return hit
}

// timingsOrder is the canonical lifecycle phase order; every timings
// block must list a subset of it, in order, with non-decreasing atMs.
var timingsOrder = map[string]int{
	"received": 0, "queued": 1, "attached": 2, "dequeued": 3,
	"solving": 4, "persisted": 5, "detached": 6, "settled": 7,
}

// checkTimings asserts the terminal view carries an ordered timings
// block containing at least the given phases.
func checkTimings(view map[string]any, wantPhases ...string) error {
	timings, ok := view["timings"].(map[string]any)
	if !ok {
		return fmt.Errorf("no timings block in view: %v", view)
	}
	phases, ok := timings["phases"].([]any)
	if !ok || len(phases) == 0 {
		return fmt.Errorf("timings block has no phases: %v", timings)
	}
	prevIdx, prevAt := -1, -1.0
	seen := map[string]bool{}
	for _, raw := range phases {
		p, _ := raw.(map[string]any)
		name, _ := p["phase"].(string)
		at, _ := p["atMs"].(float64)
		idx, known := timingsOrder[name]
		if !known {
			return fmt.Errorf("unknown phase %q", name)
		}
		if idx <= prevIdx {
			return fmt.Errorf("phase %q out of lifecycle order in %v", name, phases)
		}
		if at < prevAt {
			return fmt.Errorf("phase %q atMs %v decreased (prev %v)", name, at, prevAt)
		}
		seen[name] = true
		prevIdx, prevAt = idx, at
	}
	for _, want := range wantPhases {
		if !seen[want] {
			return fmt.Errorf("phase %q missing from %v", want, phases)
		}
	}
	return nil
}

// canonical renders a job view with the volatile fields (identity,
// timestamps, wall time, cache/trace bookkeeping) removed; everything
// left must be bit-identical between a cold run and its cache hit.
func canonical(view map[string]any) []byte {
	c := make(map[string]any, len(view))
	for k, v := range view {
		switch k {
		case "id", "cacheHit", "cacheTier", "coalesced", "createdAt", "startedAt", "finishedAt", "traceLen", "source", "timings":
			continue
		}
		c[k] = v
	}
	if rep, ok := c["report"].(map[string]any); ok {
		r := make(map[string]any, len(rep))
		for k, v := range rep {
			if k == "wallMs" {
				continue
			}
			r[k] = v
		}
		c["report"] = r
	}
	out, _ := json.Marshal(c)
	return out
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, data)
	}
	return data, nil
}
