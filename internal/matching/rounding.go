package matching

import (
	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

// RoundFractional implements the randomized rounding of Lemma 5.1: every
// candidate vertex v (the paper's C̃, vertices with fractional weight at
// least 1-β) draws X_v — neighbor u with probability x_{uv}/10, the
// symbol ⋆ with the remaining mass. H is the set of chosen edges; an edge
// is good when no other chosen edge touches it, and the good edges form
// the output matching. The lemma guarantees at least |C̃|/50 good edges
// with probability 1 - 2exp(-|C̃|/5000); experiment E8 measures the
// realized constant.
//
// Every decision is local to a vertex and its incident edges, so the
// procedure costs O(1) rounds in the MPC model, as Section 5 observes.
func RoundFractional(g *graph.Graph, frac *FracResult, candidate []bool, src *rng.Source) graph.Matching {
	n := g.NumVertices()
	chosen := make([]int32, n)
	for v := range chosen {
		chosen[v] = -1
	}
	for v := int32(0); v < int32(n); v++ {
		if !candidate[v] {
			continue
		}
		r := src.Float64()
		acc := 0.0
		for _, u := range g.Neighbors(v) {
			x := frac.X[frac.Ix.ID(v, u)]
			if x <= 0 {
				continue
			}
			acc += x / 10
			if r < acc {
				chosen[v] = u
				break
			}
		}
	}
	// H as a set of edges; degH counts incidences.
	degH := make([]int32, n)
	type edge struct{ u, v int32 }
	seen := make(map[edge]bool)
	var h []edge
	for v := int32(0); v < int32(n); v++ {
		u := chosen[v]
		if u == -1 {
			continue
		}
		a, b := v, u
		if a > b {
			a, b = b, a
		}
		e := edge{a, b}
		if seen[e] {
			continue // both endpoints picked the same edge: one copy in H
		}
		seen[e] = true
		h = append(h, e)
		degH[a]++
		degH[b]++
	}
	m := graph.NewMatching(n)
	for _, e := range h {
		if degH[e.u] == 1 && degH[e.v] == 1 {
			m.Match(e.u, e.v)
		}
	}
	return m
}

// CandidateSet returns the paper's C̃ for rounding: cover vertices whose
// fractional weight reaches 1-beta. Lemma 4.2 guarantees at least a third
// of the cover qualifies with beta = 5ε.
func CandidateSet(frac *FracResult, beta float64) []bool {
	out := make([]bool, len(frac.Y))
	for v := range out {
		out[v] = frac.Cover[v] && frac.Y[v] >= 1-beta
	}
	return out
}
