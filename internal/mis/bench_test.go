package mis

import (
	"fmt"
	"math"
	"testing"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

// BenchmarkPrefixPhase measures one rank-prefix phase of the Section 3
// MPC simulation — the gather-volume scan, leader extension, broadcast
// and residual-degree instrumentation — at the √n-degree density the
// experiments use.
func BenchmarkPrefixPhase(b *testing.B) {
	const n = 1 << 14
	g := graph.GNP(n, 1/math.Sqrt(float64(n)), rng.New(7))
	opts := Options{Seed: 7}.withDefaults()
	perm := rng.New(opts.Seed).SplitString("mis-perm").Perm(n)
	rank := make([]int32, n)
	for i, v := range perm {
		rank[v] = int32(i)
	}
	ranks := prefixRanks(n, g.MaxDegree(), opts.PolylogDegree(n), opts.Alpha)
	if len(ranks) == 0 {
		b.Fatal("no prefix phases at this scale")
	}
	r := ranks[0]
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				o := opts
				o.Workers = workers
				mt, err := newMPCMISMeter(g, o)
				if err != nil {
					b.Fatal(err)
				}
				alive := make([]bool, n)
				for j := range alive {
					alive[j] = true
				}
				inMIS := make([]bool, n)
				b.StartTimer()
				if _, err := runPrefixPhase(g, perm, rank, alive, inMIS, 0, r, mt, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRandGreedyMPC measures the full Theorem 1.1 simulation.
func BenchmarkRandGreedyMPC(b *testing.B) {
	const n = 1 << 13
	g := graph.GNP(n, 1/math.Sqrt(float64(n)), rng.New(11))
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RandGreedyMPC(g, Options{Seed: 11, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
