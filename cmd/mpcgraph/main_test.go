package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The subcommand logic is tested exhaustively in internal/cli; these
// tests pin the binary's wiring: args pass through, errors surface.

func TestRunGenSolve(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.mtx")
	if err := run([]string{"gen", "-scenario", "gnp", "-n", "200", "-seed", "1", "-out", path}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"solve", "-problem", "mis", "-in", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown command accepted")
	}
}
