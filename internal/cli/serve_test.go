package cli

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mpcgraph"
	"mpcgraph/internal/service"
)

// startDaemon runs the service directly behind httptest — the client
// subcommand tests talk to exactly what `mpcgraph serve` serves.
func startDaemon(t *testing.T) string {
	t.Helper()
	s, err := service.New(service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain(5 * time.Second)
	})
	return ts.URL
}

// runCLI executes one mpcgraph invocation hermetically.
func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := Run(args, Env{Stdin: strings.NewReader(""), Stdout: &stdout, Stderr: &stderr})
	return stdout.String(), stderr.String(), err
}

// TestSubmitScenarioAndStatus drives submit -wait and status against a
// live daemon.
func TestSubmitScenarioAndStatus(t *testing.T) {
	url := startDaemon(t)
	stdout, _, err := runCLI(t,
		"submit", "-server", url, "-problem", "mis",
		"-scenario", "gnp", "-n", "300", "-seed", "5", "-wait")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var view service.JobView
	if err := json.Unmarshal([]byte(stdout), &view); err != nil {
		t.Fatalf("submit output not a job view: %v\n%s", err, stdout)
	}
	if view.State != service.StateDone || view.Report == nil {
		t.Fatalf("job %+v not done with a report", view)
	}
	if view.Report.MISSize == nil || *view.Report.MISSize <= 0 {
		t.Errorf("report has no MIS size: %+v", view.Report)
	}

	// A second identical submit must be served from the cache.
	stdout, _, err = runCLI(t,
		"submit", "-server", url, "-problem", "mis",
		"-scenario", "gnp", "-n", "300", "-seed", "5", "-wait")
	if err != nil {
		t.Fatalf("re-submit: %v", err)
	}
	var hit service.JobView
	if err := json.Unmarshal([]byte(stdout), &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Errorf("re-submit was not a cache hit")
	}

	// status lists both jobs; status -job fetches one.
	stdout, _, err = runCLI(t, "status", "-server", url)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	var page struct {
		Jobs []service.JobView `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(stdout), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 2 {
		t.Errorf("status lists %d jobs, want 2", len(page.Jobs))
	}
	stdout, _, err = runCLI(t, "status", "-server", url, "-job", view.ID)
	if err != nil {
		t.Fatalf("status -job: %v", err)
	}
	var one service.JobView
	if err := json.Unmarshal([]byte(stdout), &one); err != nil {
		t.Fatal(err)
	}
	if one.ID != view.ID {
		t.Errorf("status -job returned %s, want %s", one.ID, view.ID)
	}
}

// TestSubmitUpload pushes a gzip-compressed file through the base64
// upload path and checks the daemon solves the identical instance.
func TestSubmitUpload(t *testing.T) {
	url := startDaemon(t)
	in, err := mpcgraph.GenerateScenario("gnp", 250, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.el.gz")
	if err := mpcgraph.WriteInstanceFile(path, in); err != nil {
		t.Fatal(err)
	}
	stdout, _, err := runCLI(t,
		"submit", "-server", url, "-problem", "vertex-cover",
		"-in", path, "-format", "el", "-seed", "11", "-wait")
	if err != nil {
		t.Fatalf("submit upload: %v", err)
	}
	var view service.JobView
	if err := json.Unmarshal([]byte(stdout), &view); err != nil {
		t.Fatal(err)
	}
	if view.State != service.StateDone || view.Report == nil || view.Report.CoverSize == nil {
		t.Fatalf("upload job did not produce a vertex cover: %+v", view)
	}
	if view.Report.N != 250 {
		t.Errorf("daemon solved n=%d, want 250", view.Report.N)
	}
}

// TestSubmitFlagErrors pins the client-side validation.
func TestSubmitFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"submit", "-scenario", "gnp"},                                   // no problem
		{"submit", "-problem", "mis"},                                    // no instance
		{"submit", "-problem", "mis", "-scenario", "gnp", "-in", "x.el"}, // both
		{"submit", "-problem", "mis", "-in", "x.el"},                     // -in without -format
	} {
		if _, _, err := runCLI(t, args...); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// TestServeLifecycle boots the real serve subcommand on an ephemeral
// port, submits one job through the client subcommand, then drains it
// with SIGTERM — the exact path cmd/mpcgraphd ships.
func TestServeLifecycle(t *testing.T) {
	// Register our own handler first so the SIGTERM below can never hit
	// the default action (process exit) if it races serve's own
	// registration.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	var stdout, stderr syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- Run([]string{"serve", "-addr", "127.0.0.1:0", "-workers", "1"},
			Env{Stdin: strings.NewReader(""), Stdout: &stdout, Stderr: &stderr})
	}()

	var url string
	for attempt := 0; url == "" && attempt < 2000; attempt++ { // ~10s
		if line := stdout.String(); strings.Contains(line, "listening on ") {
			url = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "mpcgraphd listening on "))
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if url == "" {
		t.Fatalf("serve never printed its address (stderr: %s)", stderr.String())
	}

	out, _, err := runCLI(t,
		"submit", "-server", url, "-problem", "approx-matching",
		"-scenario", "ring", "-n", "100", "-seed", "1", "-wait")
	if err != nil {
		t.Fatalf("submit against serve: %v", err)
	}
	var view service.JobView
	if err := json.Unmarshal([]byte(out), &view); err != nil {
		t.Fatal(err)
	}
	if view.State != service.StateDone {
		t.Fatalf("job state %s", view.State)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v (stderr: %s)", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain after SIGTERM")
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Errorf("drain message missing from stderr: %s", stderr.String())
	}
}

// TestServePprof boots serve with -pprof-addr and checks the profiling
// endpoints answer on their own listener, separate from the job API.
func TestServePprof(t *testing.T) {
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	var stdout, stderr syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- Run([]string{"serve", "-addr", "127.0.0.1:0", "-workers", "1", "-pprof-addr", "127.0.0.1:0"},
			Env{Stdin: strings.NewReader(""), Stdout: &stdout, Stderr: &stderr})
	}()

	var pprofURL string
	for attempt := 0; pprofURL == "" && attempt < 2000; attempt++ { // ~10s
		for _, line := range strings.Split(stdout.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "mpcgraphd pprof on "); ok {
				pprofURL = strings.TrimSpace(rest)
			}
		}
		if pprofURL == "" {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if pprofURL == "" {
		t.Fatalf("serve never printed the pprof address (stderr: %s)", stderr.String())
	}

	resp, err := http.Get(pprofURL) // the printed URL includes /debug/pprof/
	if err != nil {
		t.Fatalf("GET %s: %v", pprofURL, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d, body %q", resp.StatusCode, body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v (stderr: %s)", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain after SIGTERM")
	}
}

// TestServeStructuredLogs boots serve with JSON debug logging, runs one
// job through it, and checks the lifecycle shows up both as structured
// stderr events and as the ordered timings block on the wire view.
func TestServeStructuredLogs(t *testing.T) {
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	var stdout, stderr syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- Run([]string{"serve", "-addr", "127.0.0.1:0", "-workers", "1",
			"-log-level", "debug", "-log-format", "json"},
			Env{Stdin: strings.NewReader(""), Stdout: &stdout, Stderr: &stderr})
	}()

	var url string
	for attempt := 0; url == "" && attempt < 2000; attempt++ { // ~10s
		if line := stdout.String(); strings.Contains(line, "listening on ") {
			url = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "mpcgraphd listening on "))
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if url == "" {
		t.Fatalf("serve never printed its address (stderr: %s)", stderr.String())
	}

	out, _, err := runCLI(t,
		"submit", "-server", url, "-problem", "mis",
		"-scenario", "gnp", "-n", "200", "-seed", "3", "-wait")
	if err != nil {
		t.Fatalf("submit against serve: %v", err)
	}
	var view service.JobView
	if err := json.Unmarshal([]byte(out), &view); err != nil {
		t.Fatal(err)
	}
	if view.State != service.StateDone {
		t.Fatalf("job state %s", view.State)
	}
	// The timings block — what `mpcgraph status -job` renders — carries
	// the full cold-run lifecycle in order.
	if view.Timings == nil || len(view.Timings.Phases) == 0 {
		t.Fatalf("terminal view has no timings block: %s", out)
	}
	prev := -1.0
	var phases []string
	for _, p := range view.Timings.Phases {
		if p.AtMs < prev {
			t.Errorf("phase %s atMs %.3f out of order", p.Phase, p.AtMs)
		}
		prev = p.AtMs
		phases = append(phases, p.Phase)
	}
	for _, want := range []string{"received", "queued", "dequeued", "solving", "settled"} {
		if !strings.Contains(strings.Join(phases, ","), want) {
			t.Errorf("timings phases %v missing %q", phases, want)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v (stderr: %s)", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain after SIGTERM")
	}

	logs := stderr.String()
	for _, event := range []string{
		`"event":"job.submit"`, `"event":"job.queued"`, `"event":"job.solve.start"`,
		`"event":"job.solve.done"`, `"event":"job.terminal"`, `"event":"http.request"`,
		`"event":"daemon.drain.done"`,
	} {
		if !strings.Contains(logs, event) {
			t.Errorf("structured log stream missing %s:\n%s", event, logs)
		}
	}
	// Every line on stderr that is not the two human drain notices must
	// be a parseable JSON object carrying level and event.
	for _, line := range strings.Split(logs, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "mpcgraphd:") {
			continue
		}
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Errorf("non-JSON log line %q: %v", line, err)
			continue
		}
		if entry["level"] == nil || entry["event"] == nil {
			t.Errorf("log line missing level/event: %q", line)
		}
	}
}

// TestServeLogFlagErrors: bad logging flags fail before binding.
func TestServeLogFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"serve", "-log-level", "loud"},
		{"serve", "-log-format", "xml"},
	} {
		if _, _, err := runCLI(t, args...); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the serve goroutine's
// stdout.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
