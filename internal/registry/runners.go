package registry

import (
	"context"

	"mpcgraph/internal/matching"
	"mpcgraph/internal/mis"
	"mpcgraph/internal/model"
)

// This file registers the paper's algorithms. Every runner follows the
// same shape: translate the uniform Options into the algorithm package's
// option struct (threading ctx and trace into the metered simulator),
// run, and lift the package result into the uniform Report. Outputs are
// deterministic in Options.Seed, and for the matching family they are
// bit-identical across models (the model only changes the meter).

func init() {
	Register(MIS, model.MPC, Runner{Run: runMISMPC})
	Register(MIS, model.CongestedClique, Runner{Run: runMISClique})
	Register(MaximalMatching, model.MPC, Runner{Run: maximalRunner(model.MPC)})
	Register(MaximalMatching, model.CongestedClique, Runner{Run: maximalRunner(model.CongestedClique)})
	Register(ApproxMatching, model.MPC, Runner{Run: approxRunner(model.MPC)})
	Register(ApproxMatching, model.CongestedClique, Runner{Run: approxRunner(model.CongestedClique)})
	Register(OnePlusEpsMatching, model.MPC, Runner{Run: onePlusEpsRunner(model.MPC)})
	Register(OnePlusEpsMatching, model.CongestedClique, Runner{Run: onePlusEpsRunner(model.CongestedClique)})
	Register(VertexCover, model.MPC, Runner{Run: coverRunner(model.MPC)})
	Register(VertexCover, model.CongestedClique, Runner{Run: coverRunner(model.CongestedClique)})
	// Corollary 1.4 is stated for the MPC model; no clique runner.
	Register(WeightedMatching, model.MPC, Runner{Weighted: true, Run: runWeightedMPC})
}

func misOptions(ctx context.Context, opts Options) mis.Options {
	return mis.Options{
		Seed:         opts.Seed,
		MemoryFactor: opts.MemoryFactor,
		Strict:       opts.Strict,
		Workers:      opts.Workers,
		Ctx:          ctx,
		Trace:        opts.Trace,
	}
}

func misReport(res *mis.Result) *Report {
	return &Report{
		InMIS:           res.InMIS,
		Rounds:          res.Rounds,
		Phases:          res.Phases,
		MaxMachineWords: res.MaxMachineWords,
		TotalWords:      res.TotalWords,
		Violations:      res.Violations,
		Stages:          res.Stages,
	}
}

func runMISMPC(ctx context.Context, in Input, opts Options) (*Report, error) {
	res, err := mis.RandGreedyMPC(in.G, misOptions(ctx, opts))
	if err != nil {
		return nil, err
	}
	return misReport(res), nil
}

func runMISClique(ctx context.Context, in Input, opts Options) (*Report, error) {
	res, err := mis.RandGreedyCongestedClique(in.G, misOptions(ctx, opts))
	if err != nil {
		return nil, err
	}
	return misReport(res), nil
}

func maximalRunner(m model.Model) func(context.Context, Input, Options) (*Report, error) {
	return func(ctx context.Context, in Input, opts Options) (*Report, error) {
		res, err := matching.MaximalMatching(in.G, matching.MaximalOptions{
			Seed:         opts.Seed,
			MemoryFactor: opts.MemoryFactor,
			Strict:       opts.Strict,
			Workers:      opts.Workers,
			Model:        m,
			Ctx:          ctx,
			Trace:        opts.Trace,
		})
		if err != nil {
			return nil, err
		}
		return &Report{
			M:               res.M,
			Rounds:          res.Rounds,
			MaxMachineWords: res.MaxMachineWords,
			TotalWords:      res.TotalWords,
			Violations:      res.Violations,
			Stages:          res.Stages,
		}, nil
	}
}

func pipelineOptions(ctx context.Context, m model.Model, opts Options) matching.PipelineOptions {
	return matching.PipelineOptions{
		Seed:         opts.Seed,
		Eps:          opts.Eps,
		MemoryFactor: opts.MemoryFactor,
		Strict:       opts.Strict,
		Workers:      opts.Workers,
		Model:        m,
		Ctx:          ctx,
		Trace:        opts.Trace,
	}
}

func pipelineReport(res *matching.PipelineResult) *Report {
	return &Report{
		M:               res.M,
		Rounds:          res.Rounds(),
		Phases:          res.Phases,
		MaxMachineWords: res.MaxMachineWords,
		TotalWords:      res.TotalWords,
		Violations:      res.Violations,
		Stages:          res.Stages,
	}
}

func approxRunner(m model.Model) func(context.Context, Input, Options) (*Report, error) {
	return func(ctx context.Context, in Input, opts Options) (*Report, error) {
		res, err := matching.ApproxMaxMatching(in.G, pipelineOptions(ctx, m, opts))
		if err != nil {
			return nil, err
		}
		return pipelineReport(res), nil
	}
}

func onePlusEpsRunner(m model.Model) func(context.Context, Input, Options) (*Report, error) {
	return func(ctx context.Context, in Input, opts Options) (*Report, error) {
		base, err := matching.ApproxMaxMatching(in.G, pipelineOptions(ctx, m, opts))
		if err != nil {
			return nil, err
		}
		eps := opts.Eps
		if eps == 0 {
			eps = 0.1
		}
		boost, err := matching.BoostToOnePlusEps(ctx, in.G, base.M, eps)
		if err != nil {
			return nil, err
		}
		rep := pipelineReport(base)
		rep.M = boost.M
		// Each augmentation pass is O(path length) = O(1/ε) distributed
		// rounds; charge one round per pass as the deprecated entry
		// point always has.
		rep.Rounds += boost.Passes
		rep.Stages = append(rep.Stages, model.StageCost{Name: "boost", Rounds: boost.Passes})
		return rep, nil
	}
}

func coverRunner(m model.Model) func(context.Context, Input, Options) (*Report, error) {
	return func(ctx context.Context, in Input, opts Options) (*Report, error) {
		res, err := matching.ApproxMinVertexCover(in.G, pipelineOptions(ctx, m, opts))
		if err != nil {
			return nil, err
		}
		return &Report{
			InCover:          res.Frac.Cover,
			FractionalWeight: res.Frac.Weight(),
			Rounds:           res.Rounds,
			Phases:           res.Phases,
			MaxMachineWords:  res.MaxMachineWords,
			TotalWords:       res.TotalWords,
			Violations:       res.Violations,
			Stages:           res.Stages,
		}, nil
	}
}

func runWeightedMPC(ctx context.Context, in Input, opts Options) (*Report, error) {
	res, err := matching.ApproxMaxWeightedMatchingMPC(in.WG, matching.WeightedMPCOptions{
		Seed:         opts.Seed,
		Eps:          opts.Eps,
		MemoryFactor: opts.MemoryFactor,
		Strict:       opts.Strict,
		Workers:      opts.Workers,
		Ctx:          ctx,
		Trace:        opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		M:               res.M,
		Value:           res.Value,
		Rounds:          res.Rounds,
		Phases:          res.Improvements,
		MaxMachineWords: res.MaxMachineWords,
		TotalWords:      res.TotalWords,
		Violations:      res.Violations,
		Stages:          res.Stages,
	}, nil
}
