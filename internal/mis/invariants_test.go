package mis

import (
	"testing"
	"testing/quick"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/rng"
)

// TestDynamicsDesireLevelBounds: Ghaffari's process keeps every desire
// level in (0, 1/2] — halved under pressure, doubled back up to the cap.
func TestDynamicsDesireLevelBounds(t *testing.T) {
	g := graph.GNP(200, 0.05, rng.New(1))
	alive := make([]bool, 200)
	for i := range alive {
		alive[i] = true
	}
	d := newDynamics(g, alive, make([]bool, 200), 2, 0)
	for iter := 0; iter < 60 && d.undecided() > 0; iter++ {
		d.step(iter)
		for v := 0; v < 200; v++ {
			if !d.alive[v] {
				continue
			}
			if d.p[v] <= 0 || d.p[v] > 0.5 {
				t.Fatalf("iteration %d: p[%d] = %v out of (0, 1/2]", iter, v, d.p[v])
			}
		}
	}
}

// TestDynamicsUndecidedMonotone: the undecided count never increases and
// step's return value accounts for it exactly.
func TestDynamicsUndecidedMonotone(t *testing.T) {
	g := graph.GNP(300, 0.04, rng.New(3))
	alive := make([]bool, 300)
	for i := range alive {
		alive[i] = true
	}
	d := newDynamics(g, alive, make([]bool, 300), 4, 0)
	prev := d.undecided()
	for iter := 0; iter < 100 && d.undecided() > 0; iter++ {
		decided := d.step(iter)
		now := d.undecided()
		if now > prev {
			t.Fatalf("undecided grew: %d -> %d", prev, now)
		}
		if prev-now != decided {
			t.Fatalf("step reported %d decided but count moved %d -> %d", decided, prev, now)
		}
		prev = now
	}
}

// TestDynamicsIndependenceInvariant: at every step the accumulated MIS
// is independent and no undecided vertex neighbors an MIS vertex.
func TestDynamicsIndependenceInvariant(t *testing.T) {
	g := graph.GNP(250, 0.05, rng.New(5))
	alive := make([]bool, 250)
	for i := range alive {
		alive[i] = true
	}
	inMIS := make([]bool, 250)
	d := newDynamics(g, alive, inMIS, 6, 0)
	for iter := 0; iter < 80 && d.undecided() > 0; iter++ {
		d.step(iter)
		if !graph.IsIndependentSet(g, inMIS) {
			t.Fatalf("iteration %d: MIS not independent", iter)
		}
		for v := int32(0); v < 250; v++ {
			if !d.alive[v] {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if inMIS[u] {
					t.Fatalf("iteration %d: undecided vertex %d neighbors MIS vertex %d", iter, v, u)
				}
			}
		}
	}
}

// TestDynamicsDeterministicAcrossRestarts: the oracle-driven coins make
// the whole process a pure function of (graph, seed).
func TestDynamicsDeterministicAcrossRestarts(t *testing.T) {
	g := graph.GNP(150, 0.06, rng.New(7))
	run := func() []bool {
		alive := make([]bool, 150)
		for i := range alive {
			alive[i] = true
		}
		inMIS := make([]bool, 150)
		d := newDynamics(g, alive, inMIS, 99, 0)
		for iter := 0; iter < 100 && d.undecided() > 0; iter++ {
			d.step(iter)
		}
		return inMIS
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("dynamics diverged at vertex %d", v)
		}
	}
}

// TestResidualEdgeWordsConsistent: the gather-cost estimate must equal
// the hand-counted residual size.
func TestResidualEdgeWordsConsistent(t *testing.T) {
	g := graph.GNP(100, 0.1, rng.New(8))
	alive := make([]bool, 100)
	for i := 0; i < 100; i += 2 {
		alive[i] = true
	}
	d := newDynamics(g, alive, make([]bool, 100), 9, 0)
	var want int64
	for v := int32(0); v < 100; v++ {
		if !d.alive[v] {
			continue
		}
		want++
		for _, u := range g.Neighbors(v) {
			if d.alive[u] && u > v {
				want += 2
			}
		}
	}
	if got := d.residualEdgeWords(); got != want {
		t.Errorf("residualEdgeWords = %d, want %d", got, want)
	}
}

// TestMISMatchesSequentialOnPrefixOnlyInstances: when the polylog cutoff
// is forced to 1, prefix phases cover every rank, so the MPC result must
// equal plain sequential randomized greedy with the same permutation.
func TestMISMatchesSequentialOnPrefixOnlyInstances(t *testing.T) {
	g := graph.GNP(600, 0.05, rng.New(10))
	opts := Options{
		Seed:          42,
		PolylogDegree: func(int) int { return 1 },
	}
	res, err := RandGreedyMPC(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.New(42).SplitString("mis-perm").Perm(600)
	want := SequentialRandGreedy(g, perm)
	for v := range want {
		if want[v] != res.InMIS[v] {
			t.Fatalf("prefix-only simulation differs from sequential greedy at %d", v)
		}
	}
}

// TestCliqueMISPropertyRandom: property-based validity across seeds.
func TestCliqueMISPropertyRandom(t *testing.T) {
	check := func(seed uint64) bool {
		g := graph.GNP(150, 0.06, rng.New(seed))
		res, err := RandGreedyCongestedClique(g, Options{Seed: seed})
		if err != nil {
			return false
		}
		return graph.IsMaximalIndependentSet(g, res.InMIS)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
