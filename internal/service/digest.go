package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"mpcgraph"
)

// The deterministic result cache is content-addressed: its key is a
// SHA-256 digest of the canonical instance bytes plus the
// Workers-invariant solve options. Two properties make this sound:
//
//  1. Solve is a pure function of (instance, problem, model, seed, eps,
//     memory-factor, strict). Workers and Trace are excluded from the
//     key because the determinism contract guarantees bit-identical
//     Reports for every Workers setting, and tracing never changes
//     results (it only observes them).
//  2. The canonical instance bytes depend only on the logical graph —
//     vertex count, edge set, weights — not on how it was built. Every
//     reader reconstructs instances through the same order-insensitive
//     graph.Builder, so an instance digests identically whether it was
//     generated in-process from a scenario or round-tripped through any
//     on-disk format (pinned by digest_test.go, extending the
//     solvefile_test.go contract).

// instanceDigestVersion tags the canonical byte layout; bump it if the
// layout ever changes so stale keys cannot alias fresh ones.
const instanceDigestVersion = "mpcgraph-instance-v1"

// cacheKeyVersion tags the option serialization.
const cacheKeyVersion = "mpcgraph-key-v1"

// InstanceDigest returns the hex SHA-256 of the canonical byte
// rendering of in: the version tag, weightedness, n, m, then every
// undirected edge (u < v, lexicographic order) as little-endian int32
// pairs, each followed by its exact float64 weight bits when the
// instance is weighted.
func InstanceDigest(in mpcgraph.Instance) (string, error) {
	h := sha256.New()
	if err := writeInstance(h, in); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func writeInstance(h hash.Hash, in mpcgraph.Instance) error {
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writePair := func(u, v int32) {
		binary.LittleEndian.PutUint32(buf[:4], uint32(u))
		binary.LittleEndian.PutUint32(buf[4:], uint32(v))
		h.Write(buf[:])
	}
	h.Write([]byte(instanceDigestVersion))
	switch g := in.(type) {
	case *mpcgraph.WeightedGraph:
		if g == nil {
			return fmt.Errorf("service: digest of nil instance")
		}
		h.Write([]byte("weighted"))
		writeU64(uint64(g.NumVertices()))
		writeU64(uint64(g.NumEdges()))
		g.ForEachEdge(func(u, v int32) {
			writePair(u, v)
			writeU64(math.Float64bits(g.EdgeWeight(u, v)))
		})
		return nil
	case *mpcgraph.Graph:
		if g == nil {
			return fmt.Errorf("service: digest of nil instance")
		}
		h.Write([]byte("unweighted"))
		writeU64(uint64(g.NumVertices()))
		writeU64(uint64(g.NumEdges()))
		g.ForEachEdge(writePair)
		return nil
	default:
		return fmt.Errorf("service: digest of unsupported instance type %T", in)
	}
}

// canonicalOptions are the solve options that determine a Report
// bit-for-bit. Workers and Trace are deliberately absent (see the
// package comment); Eps and MemoryFactor are resolved to their
// documented defaults so "unset" and "explicit default" share a key.
type canonicalOptions struct {
	Seed         uint64
	Eps          float64
	MemoryFactor float64
	Strict       bool
}

// canonicalize resolves the documented Solve defaults.
func canonicalize(opts mpcgraph.Options) canonicalOptions {
	c := canonicalOptions{
		Seed:         opts.Seed,
		Eps:          opts.Eps,
		MemoryFactor: opts.MemoryFactor,
		Strict:       opts.Strict,
	}
	if c.Eps <= 0 {
		c.Eps = 0.1
	}
	if c.MemoryFactor <= 0 {
		c.MemoryFactor = 16
	}
	return c
}

// CacheKey returns the content-addressed cache key of one solve: the
// hex SHA-256 over the canonical instance bytes, the (problem, model)
// pair, and the canonicalized Workers-invariant options.
func CacheKey(in mpcgraph.Instance, p mpcgraph.Problem, m mpcgraph.Model, opts mpcgraph.Options) (string, error) {
	h := sha256.New()
	h.Write([]byte(cacheKeyVersion))
	if err := writeInstance(h, in); err != nil {
		return "", err
	}
	c := canonicalize(opts)
	fmt.Fprintf(h, "|%s|%s|seed=%d|eps=%x|mem=%x|strict=%t",
		p, m, c.Seed, math.Float64bits(c.Eps), math.Float64bits(c.MemoryFactor), c.Strict)
	return hex.EncodeToString(h.Sum(nil)), nil
}
