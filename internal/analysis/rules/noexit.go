package rules

import (
	"go/ast"
	"go/types"

	"mpcgraph/internal/analysis"
)

// NewNoExit returns the no-exit analyzer: referencing os.Exit is
// forbidden outside package main, so library errors surface as errors
// and the mpcgraph binary can map sentinel errors onto its documented
// exit codes (see cmd/mpcgraph). Like no-wall-clock, the rule matches
// the resolved object, so `die := os.Exit` and dot-imported `Exit` are
// caught too.
func NewNoExit() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "no-exit",
		Doc:  "forbids referencing os.Exit outside package main; return an error instead",
		Run: func(pass *analysis.Pass) {
			if pass.Pkg.Name() == "main" {
				return
			}
			for _, f := range pass.Files {
				eachUse(pass, f, func(id *ast.Ident, obj types.Object) {
					if fullName(obj) != "os.Exit" {
						return
					}
					pass.Reportf(id.Pos(), "reference to os.Exit outside package main (return an error instead)")
				})
			}
		},
	}
}
