package rng

// ThresholdOracle implements the per-vertex, per-iteration random freezing
// thresholds T_{v,t} of Central-Rand (Section 4.3 of the paper): each
// threshold is drawn independently and uniformly from [Lo, Hi), which the
// paper instantiates as [1-4eps, 1-2eps).
//
// The oracle is stateless: T_{v,t} is a pure function of (seed, v, t).
// This realizes the coupling assumed throughout the analysis of Section
// 4.4 — the hypothetical Central-Rand process and the MPC simulation must
// observe the *same* thresholds even though they evaluate them in
// different orders and at different times.
type ThresholdOracle struct {
	seed uint64
	lo   float64
	span float64
}

// NewThresholdOracle returns an oracle drawing from [lo, hi). It panics if
// hi < lo, which would indicate an epsilon bookkeeping bug in the caller.
func NewThresholdOracle(seed uint64, lo, hi float64) ThresholdOracle {
	if hi < lo {
		panic("rng: threshold interval is empty")
	}
	return ThresholdOracle{seed: seed, lo: lo, span: hi - lo}
}

// At returns T_{v,t}, the threshold for vertex v in global iteration t.
func (o ThresholdOracle) At(v int32, t int) float64 {
	u := float64(Hash(o.seed, uint64(uint32(v)), uint64(t))>>11) / (1 << 53)
	return o.lo + o.span*u
}

// Lo returns the lower end of the sampling interval.
func (o ThresholdOracle) Lo() float64 { return o.lo }

// Hi returns the upper end of the sampling interval.
func (o ThresholdOracle) Hi() float64 { return o.lo + o.span }
