package baseline

import (
	"fmt"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/mpc"
	"mpcgraph/internal/rng"
)

// MeteredResult augments a baseline run with audited MPC model costs, so
// experiment E13 compares the paper's algorithms and the classical
// baselines under the same accounting.
type MeteredResult struct {
	// InMIS is set by LubyMISOnCluster; M by IsraeliItaiOnCluster.
	InMIS []bool
	M     graph.Matching
	// Iterations is the algorithm's own loop count.
	Iterations int
	// Rounds, MaxMachineWords and TotalWords come from the cluster.
	Rounds          int
	MaxMachineWords int64
	TotalWords      int64
	// Violations counts capacity violations (non-strict clusters).
	Violations int
}

// edgeVolumeMatrix accumulates, for the live subgraph, one word per edge
// direction between the home machines of the endpoints (vertices live on
// machine v mod m). This is the per-iteration traffic of both Luby and
// Israeli–Itai: marks/proposals ride one word per incident live edge.
func edgeVolumeMatrix(g *graph.Graph, live []bool, m int) []int64 {
	vol := make([]int64, m*m)
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		if !live[u] {
			continue
		}
		mu := int(u) % m
		for _, v := range g.Neighbors(u) {
			if !live[v] {
				continue
			}
			mv := int(v) % m
			if mu != mv {
				vol[mu*m+mv]++
			}
		}
	}
	return vol
}

// LubyMISOnCluster runs Luby's algorithm with every iteration charged as
// two MPC rounds (mark exchange, then removal notification) on the given
// cluster. The MIS itself is identical to LubyMIS with the same source.
func LubyMISOnCluster(g *graph.Graph, src *rng.Source, cluster *mpc.Cluster) (*MeteredResult, error) {
	n := g.NumVertices()
	res := &MeteredResult{InMIS: make([]bool, n)}
	alive := make([]bool, n)
	deg := make([]int, n)
	remaining := 0
	for v := int32(0); v < int32(n); v++ {
		if g.Degree(v) == 0 {
			res.InMIS[v] = true
			continue
		}
		alive[v] = true
		deg[v] = g.Degree(v)
		remaining++
	}
	marked := make([]bool, n)
	m := cluster.Machines()
	for remaining > 0 {
		res.Iterations++
		// Round 1: every live vertex publishes its mark and degree to
		// the machines of its live neighbors.
		if _, err := cluster.ChargeVolumeMatrix(edgeVolumeMatrix(g, alive, m)); err != nil {
			return nil, fmt.Errorf("luby mark round %d: %w", res.Iterations, err)
		}
		for v := int32(0); v < int32(n); v++ {
			if !alive[v] {
				marked[v] = false
				continue
			}
			if deg[v] == 0 {
				marked[v] = true
				continue
			}
			marked[v] = src.Bool(1 / (2 * float64(deg[v])))
		}
		for v := int32(0); v < int32(n); v++ {
			if !alive[v] || !marked[v] {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if !alive[u] || !marked[u] {
					continue
				}
				if deg[v] < deg[u] || (deg[v] == deg[u] && v < u) {
					marked[v] = false
					break
				}
			}
		}
		// Round 2: winners notify their neighborhoods.
		if _, err := cluster.ChargeVolumeMatrix(edgeVolumeMatrix(g, alive, m)); err != nil {
			return nil, fmt.Errorf("luby removal round %d: %w", res.Iterations, err)
		}
		for v := int32(0); v < int32(n); v++ {
			if !alive[v] || !marked[v] {
				continue
			}
			res.InMIS[v] = true
			alive[v] = false
			remaining--
			for _, u := range g.Neighbors(v) {
				if alive[u] {
					alive[u] = false
					remaining--
				}
			}
		}
		for v := int32(0); v < int32(n); v++ {
			if !alive[v] {
				continue
			}
			d := 0
			for _, u := range g.Neighbors(v) {
				if alive[u] {
					d++
				}
			}
			deg[v] = d
		}
	}
	fillMetered(res, cluster)
	return res, nil
}

// IsraeliItaiOnCluster runs the propose/accept maximal matching with
// every iteration charged as two MPC rounds (proposals out, acceptances
// back).
func IsraeliItaiOnCluster(g *graph.Graph, src *rng.Source, cluster *mpc.Cluster) (*MeteredResult, error) {
	n := g.NumVertices()
	res := &MeteredResult{M: graph.NewMatching(n)}
	free := make([]bool, n)
	remaining := 0
	for v := int32(0); v < int32(n); v++ {
		free[v] = true
		if g.Degree(v) > 0 {
			remaining++
		}
	}
	proposal := make([]int32, n)
	accepted := make([]int32, n)
	m := cluster.Machines()
	for remaining > 0 {
		res.Iterations++
		if _, err := cluster.ChargeVolumeMatrix(edgeVolumeMatrix(g, free, m)); err != nil {
			return nil, fmt.Errorf("israeli-itai propose round %d: %w", res.Iterations, err)
		}
		for v := int32(0); v < int32(n); v++ {
			proposal[v] = -1
			if !free[v] {
				continue
			}
			seen := 0
			for _, u := range g.Neighbors(v) {
				if !free[u] {
					continue
				}
				seen++
				if src.Intn(seen) == 0 {
					proposal[v] = u
				}
			}
		}
		if _, err := cluster.ChargeVolumeMatrix(edgeVolumeMatrix(g, free, m)); err != nil {
			return nil, fmt.Errorf("israeli-itai accept round %d: %w", res.Iterations, err)
		}
		for v := range accepted {
			accepted[v] = -1
		}
		count := make(map[int32]int)
		for v := int32(0); v < int32(n); v++ {
			u := proposal[v]
			if u == -1 {
				continue
			}
			count[u]++
			if src.Intn(count[u]) == 0 {
				accepted[u] = v
			}
		}
		for u := int32(0); u < int32(n); u++ {
			v := accepted[u]
			if v == -1 || !free[u] || !free[v] {
				continue
			}
			res.M.Match(u, v)
			free[u], free[v] = false, false
		}
		remaining = 0
		for v := int32(0); v < int32(n); v++ {
			if !free[v] {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if free[u] {
					remaining++
					break
				}
			}
		}
	}
	fillMetered(res, cluster)
	return res, nil
}

func fillMetered(res *MeteredResult, cluster *mpc.Cluster) {
	met := cluster.Metrics()
	res.Rounds = met.Rounds
	res.MaxMachineWords = met.MaxInWords
	if met.MaxOutWords > res.MaxMachineWords {
		res.MaxMachineWords = met.MaxOutWords
	}
	res.TotalWords = met.TotalWords
	res.Violations = met.Violations
}
