package main

import "testing"

// The daemon lifecycle is tested end-to-end in internal/cli (serve +
// submit + drain) and by the `make service-smoke` harness, which drives
// this binary over HTTP and through SIGTERM. These tests pin the shim's
// wiring only: args pass through to the serve subcommand.

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunRejectsPositionalArgs(t *testing.T) {
	if err := run([]string{"unexpected"}); err == nil {
		t.Error("positional argument accepted")
	}
}
