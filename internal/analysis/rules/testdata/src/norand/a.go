// Package norand exercises the no-math-rand analyzer: importing
// math/rand or math/rand/v2 — plainly or under an alias — is flagged
// everywhere, because the seeded internal/rng primitives are the only
// sanctioned randomness. crypto/rand stays legal: it never feeds
// algorithmic choices.
package norand

import (
	crand "crypto/rand"
	"math/rand"       // want "no-math-rand: import of math/rand"
	mr "math/rand/v2" // want "no-math-rand: import of math/rand/v2"
)

func roll() int { return rand.Intn(6) + mr.IntN(6) }

func fill(b []byte) { _, _ = crand.Read(b) }
