package graphio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList exercises the parser with arbitrary inputs: it must
// never panic, and on success the resulting graph must survive a
// write/read round trip unchanged. Run with `go test -fuzz=FuzzRead` for
// active fuzzing; the seed corpus doubles as a regression suite.
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"",
		"n 4\n0 1\n2 3\n",
		"# comment only\n",
		"0 1\n1 0\n0 1\n",
		"n 0\n",
		"n 10\n\n\n9 8\n",
		"0 999999\n",
		"n x\n",
		"1 1\n",
		"a b\n",
		"0 1 2\n",
		"n 2\n0 5\n",
		"-3 4\n",
		"n 3\n0 1\nn 5\n2 4\n",
		strings.Repeat("0 1\n", 1000),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just need to not panic
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip re-read: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)",
				g.NumVertices(), g.NumEdges(), g2.NumVertices(), g2.NumEdges())
		}
	})
}
