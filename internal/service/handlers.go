package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"mpcgraph"
	"mpcgraph/internal/graphio"
	"mpcgraph/internal/registry"
	"mpcgraph/internal/scenario"
)

// writeJSON renders one JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already on the wire; an encode failure means
	// the client went away, and there is no second response to send.
	_ = enc.Encode(v)
}

// errorBody is the uniform error rendering.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// handleSubmit is POST /v1/jobs: admit one job (or serve it from the
// deterministic result cache). 201 with the job view on success; 400/
// 422 for bad requests, 429 when the queue is full, 503 while draining.
// The 429 and 503 rejections carry a Retry-After header (seconds) — the
// server-side half of the retry convention in docs/service.md: clients
// treat exactly these two statuses as retryable and honor the hint.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, 400, fmt.Errorf("service: bad request body: %v", err))
		return
	}
	job, status, err := s.submit(&req)
	if err != nil {
		switch status {
		case 429:
			// A full queue usually clears within a solve; a draining
			// server never recovers, but the client may be retrying
			// against a load balancer that will route elsewhere.
			w.Header().Set("Retry-After", "1")
		case 503:
			w.Header().Set("Retry-After", "5")
		}
		if job != nil {
			// Queue-full rejections retain the job; include its view so
			// the client can see the canceled record.
			writeJSON(w, status, job.view())
			return
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, 201, job.view())
}

// handleList is GET /v1/jobs: newest-last page of job views.
// Query: state=<JobState> filters; after=<id> starts the page after
// that id; limit=<n> caps the page (default 100, max 1000).
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 100
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, 400, fmt.Errorf("service: bad limit %q", raw))
			return
		}
		limit = min(v, 1000)
	}
	stateFilter := JobState(q.Get("state"))
	after := q.Get("after")

	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()

	type listBody struct {
		Jobs []*JobView `json:"jobs"`
		Next string     `json:"next,omitempty"`
	}
	var out listBody
	started := after == ""
	for _, j := range jobs {
		if !started {
			started = j.ID == after
			continue
		}
		view := j.view()
		if stateFilter != "" && view.State != stateFilter {
			continue
		}
		if len(out.Jobs) == limit {
			out.Next = out.Jobs[limit-1].ID
			break
		}
		out.Jobs = append(out.Jobs, view)
	}
	if !started {
		// The cursor job no longer exists (evicted or never valid). An
		// empty page here would read as "pagination complete" and
		// silently drop every newer job — fail loudly instead.
		writeError(w, 400, fmt.Errorf("service: unknown cursor %q (the job may have been evicted; restart the listing)", after))
		return
	}
	writeJSON(w, 200, out)
}

// handleGet is GET /v1/jobs/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, 404, fmt.Errorf("service: no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, 200, job.view())
}

// handleCancel is DELETE /v1/jobs/{id}: cancel a queued or running job.
// Terminal jobs return 409 with their unchanged view.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, 404, fmt.Errorf("service: no job %q", r.PathValue("id")))
		return
	}
	if !job.cancelJob("canceled by client") {
		writeJSON(w, 409, job.view())
		return
	}
	writeJSON(w, 200, job.view())
}

// handleSolution is GET /v1/jobs/{id}/solution: the full solution
// payload as text, exactly as `mpcgraph solve -solution` renders it.
func (s *Server) handleSolution(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, 404, fmt.Errorf("service: no job %q", r.PathValue("id")))
		return
	}
	job.mu.Lock()
	rep := job.report
	job.mu.Unlock()
	if rep == nil {
		writeError(w, 409, fmt.Errorf("service: job %s has no result (state %s)", job.ID, job.view().State))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, renderSolution(rep))
}

// traceEventView is the wire shape of one streamed TraceEvent.
type traceEventView struct {
	Round          int   `json:"round"`
	LiveWords      int64 `json:"liveWords"`
	ActiveVertices int   `json:"activeVertices"`
}

// traceEndView terminates a trace stream.
type traceEndView struct {
	Done    bool     `json:"done"`
	State   JobState `json:"state"`
	Dropped int      `json:"dropped,omitempty"`
}

// handleTrace is GET /v1/jobs/{id}/trace: stream the job's per-round
// TraceEvents — buffered events replayed first, then live events as the
// run produces them — until the job reaches a terminal state or the
// client disconnects. The default framing is NDJSON (one JSON object
// per line); an Accept header containing "text/event-stream" selects
// SSE framing ("event: trace" / "event: done"). Cache hits have no
// trace: the stream ends immediately after the terminal marker.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, 404, fmt.Errorf("service: no job %q", r.PathValue("id")))
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(200)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out before blocking on the first event, so a
		// follower connected to a queued job sees the stream open.
		flusher.Flush()
	}

	emit := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	next := 0
	for {
		job.mu.Lock()
		events := job.trace[next:]
		state := job.state
		dropped := job.traceDropped
		changed := job.changed
		job.mu.Unlock()

		for _, ev := range events {
			if !emit("trace", traceEventView{Round: ev.Round, LiveWords: ev.LiveWords, ActiveVertices: ev.ActiveVertices}) {
				return
			}
			next++
		}
		if state == StateDone || state == StateFailed || state == StateCanceled {
			// Drain any events appended between the snapshot and the
			// terminal transition before closing the stream.
			job.mu.Lock()
			tail := job.trace[next:]
			dropped = job.traceDropped
			job.mu.Unlock()
			for _, ev := range tail {
				if !emit("trace", traceEventView{Round: ev.Round, LiveWords: ev.LiveWords, ActiveVertices: ev.ActiveVertices}) {
					return
				}
			}
			emit("done", traceEndView{Done: true, State: state, Dropped: dropped})
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// catalogBody is GET /v1/catalog: every registry the daemon dispatches
// on, generated from the registries themselves so new entries appear
// with no service change.
type catalogBody struct {
	Algorithms []string          `json:"algorithms"`
	Problems   []string          `json:"problems"`
	Models     []string          `json:"models"`
	Scenarios  []catalogScenario `json:"scenarios"`
	Formats    []catalogFormat   `json:"formats"`
}

type catalogScenario struct {
	Name     string             `json:"name"`
	Doc      string             `json:"doc"`
	Weighted bool               `json:"weighted,omitempty"`
	DefaultN int                `json:"defaultN"`
	Params   map[string]float64 `json:"params,omitempty"`
}

type catalogFormat struct {
	Name       string   `json:"name"`
	Extensions []string `json:"extensions"`
	Weighted   bool     `json:"weighted"`
	Unweighted bool     `json:"unweighted"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	var body catalogBody
	for _, pair := range registry.Pairs() {
		body.Algorithms = append(body.Algorithms, pair.String())
	}
	for _, p := range registry.Problems() {
		body.Problems = append(body.Problems, p.String())
	}
	body.Models = []string{mpcgraph.ModelMPC.String(), mpcgraph.ModelCongestedClique.String()}
	for _, name := range scenario.Names() {
		sc, _ := scenario.Lookup(name)
		entry := catalogScenario{Name: sc.Name, Doc: sc.Doc, Weighted: sc.Weighted, DefaultN: sc.DefaultN}
		if len(sc.Params) > 0 {
			entry.Params = make(map[string]float64, len(sc.Params))
			for _, p := range sc.Params {
				entry.Params[p.Key] = p.Default
			}
		}
		body.Scenarios = append(body.Scenarios, entry)
	}
	for _, f := range graphio.Formats() {
		body.Formats = append(body.Formats, catalogFormat{
			Name:       f.String(),
			Extensions: f.Extensions(),
			Weighted:   f.Weighted(),
			Unweighted: f.Unweighted(),
		})
	}
	writeJSON(w, 200, body)
}
