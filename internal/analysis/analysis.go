// Package analysis is the repository's type-checked static-analysis
// framework: the engine behind `make lint` (internal/analysis/cmd/lint)
// and the analyzer suite in internal/analysis/rules.
//
// It exists because the determinism contract — bit-identical Reports
// across Workers settings, models, processes, and cache tiers — is
// enforced by conventions (seeded randomness through internal/rng, no
// wall clock in audited costs, no unordered map iteration in result
// paths, no blocking I/O under server locks) that a syntax-level linter
// cannot check reliably: aliased imports, dot imports, and method
// values like `f := time.Now` all evade name matching. This framework
// type-checks the whole module from source with go/types (stdlib only —
// no golang.org/x/tools, no export data, fully offline) and hands
// analyzers typed ASTs, so rules match semantic objects instead of
// spellings.
//
// # Architecture
//
// The driver (load.go) shells out to `go list -deps -test -json ./...`
// to enumerate the module's packages and their full dependency closure
// (including the standard library, with CGO disabled so every package
// resolves to pure Go files), topologically sorts the closure — test
// imports included, so `testing` is checked before any package whose
// test files need it — and type-checks packages in parallel in
// dependency order, each against the already-checked *types.Package of
// its imports. Module packages are checked with their in-package test
// files merged in and their external (_test package) files as a
// separate unit; standard-library packages are type-checked but never
// analyzed.
//
// Analyzers implement the Analyzer interface below: an optional Init
// hook that sees the whole typed module at once (used by
// interprocedural rules such as lockedio's I/O-reachability closure)
// and a Run hook invoked once per module package with a Pass carrying
// the typed syntax. Findings carry a rule name, position, and message.
//
// # Suppression
//
// A finding is suppressed — reported, but not a failure — by a
// directive comment on the same line or the line directly above:
//
//	//lint:ignore <rule> <justification>
//
// The justification is mandatory: it must name the invariant that makes
// the site safe (e.g. "keys are re-sorted by the caller"). A directive
// without one is itself a finding (rule "lint-ignore") that cannot be
// suppressed. docs/analysis.md catalogs every rule and its suppression
// etiquette.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos  token.Position // file:line:col of the offending node
	Rule string         // analyzer name, e.g. "maprange"
	Msg  string         // human-readable message

	// Suppressed reports whether a //lint:ignore directive with a
	// justification covers this finding. Suppressed findings do not
	// fail the lint gate; Why carries the justification.
	Suppressed bool
	Why        string
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
	if f.Suppressed {
		s += fmt.Sprintf(" [suppressed: %s]", f.Why)
	}
	return s
}

// An Analyzer is one rule of the suite.
type Analyzer struct {
	// Name identifies the rule in findings and //lint:ignore
	// directives, e.g. "no-wall-clock".
	Name string

	// Doc is the one-paragraph rule description surfaced by
	// `lint -rules` and docs/analysis.md.
	Doc string

	// Init, if non-nil, runs once per driver invocation after every
	// module package has been type-checked, before any Run call. It is
	// where whole-module state (call graphs, reachability closures) is
	// computed.
	Init func(m *Module)

	// Run is invoked once per module package.
	Run func(p *Pass)
}

// A Module is the fully type-checked module under analysis: every
// package that `go list ./...` reports, with test files merged in when
// the driver ran with Tests enabled.
type Module struct {
	Fset *token.FileSet
	Path string  // module path from go.mod, e.g. "mpcgraph"
	Pkgs []*Pass // analyzed packages in dependency order
}

// A Pass is one analyzed package handed to Analyzer.Run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// RelPath is the package's import path relative to the module root:
	// "" for the root package, "internal/graph", "cmd/mpcgraph", ... .
	// External test packages share the RelPath of the package they
	// test; their Pkg name carries the "_test" suffix.
	RelPath string

	Module *Module

	testFiles map[*ast.File]bool
	report    func(Finding)
	rule      string
}

// IsTestFile reports whether f was parsed from a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool { return p.testFiles[f] }

// Reportf records a finding for the currently running analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:  p.Fset.Position(pos),
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// CalleeFunc resolves the statically-known callee of call: a package
// function, a method (through any selector depth, including promoted
// embeddings), or a dot-imported function. It returns nil for calls
// through function-typed variables, interface values it cannot resolve
// to a *types.Func, conversions, and builtins.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	return CalleeFunc(p.Info, call)
}

// CalleeFunc is Pass.CalleeFunc for callers that hold only an Info.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			obj = info.Uses[id]
		}
	}
	fn, _ := obj.(*types.Func)
	if fn != nil {
		fn = fn.Origin()
	}
	return fn
}

// sortFindings orders findings by position then rule for stable output.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// RelFromImportPath derives a Pass.RelPath from an import path and the
// module path: "mpcgraph/internal/graph" -> "internal/graph".
func RelFromImportPath(importPath, modulePath string) string {
	if importPath == modulePath {
		return ""
	}
	return strings.TrimPrefix(importPath, modulePath+"/")
}
