package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"mpcgraph/internal/graph"
)

// maxLine bounds a single input line; adjacency formats (METIS) put a
// whole vertex neighborhood on one line, so the cap is generous.
const maxLine = 1 << 26

// MaxVertices caps declared or inferred vertex counts. Graph
// construction allocates O(n) memory even for an edgeless graph, so a
// tiny malicious file declaring n = 2^31 would otherwise force a
// multi-gigabyte allocation; 2^27 (~134M vertices) is far beyond any
// instance the simulators can process while keeping the worst-case
// header allocation around half a gigabyte.
const MaxVertices = 1 << 27

// newScanner returns a line scanner sized for graph files.
func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), maxLine)
	return sc
}

// parseVertex parses a vertex id with the given base (0 or 1) and range
// bound n (n < 0 means bounded only by MaxVertices), returning the
// 0-based id.
func parseVertex(tok string, base, n int, line int) (int32, error) {
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil || v < int64(base) {
		return 0, fmt.Errorf("graphio: line %d: bad vertex %q", line, tok)
	}
	v -= int64(base)
	if v >= MaxVertices || (n >= 0 && v >= int64(n)) {
		return 0, fmt.Errorf("graphio: line %d: vertex %s out of range", line, tok)
	}
	return int32(v), nil
}

// parseVertexCount parses a declared vertex count against MaxVertices.
func parseVertexCount(tok string, line int) (int, error) {
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil || v < 0 || v > MaxVertices {
		return 0, fmt.Errorf("graphio: line %d: bad vertex count %q (limit %d)", line, tok, MaxVertices)
	}
	return int(v), nil
}

// parseWeight parses a positive finite edge weight.
func parseWeight(tok string, line int) (float64, error) {
	w, err := strconv.ParseFloat(tok, 64)
	if err != nil || !(w > 0) || w > 1e308 {
		return 0, fmt.Errorf("graphio: line %d: edge weight %q must be a positive finite number", line, tok)
	}
	return w, nil
}

// formatWeight renders a weight so that parsing it back yields the exact
// same float64 (shortest round-trip form).
func formatWeight(w float64) string {
	return strconv.FormatFloat(w, 'g', -1, 64)
}

// edgeKey canonicalizes an undirected edge for map lookups.
func edgeKey(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

// assembleWeighted builds a weighted Data from parallel edge and weight
// slices. Duplicate mentions of an edge are collapsed but must agree on
// the weight; a conflict is an input error, not a silent overwrite.
func assembleWeighted(n int, edges [][2]int32, weights []float64) (*Data, error) {
	seen := make(map[[2]int32]float64, len(edges))
	b := graph.NewBuilder(n)
	for i, e := range edges {
		key := edgeKey(e[0], e[1])
		if prev, dup := seen[key]; dup {
			if prev != weights[i] {
				return nil, fmt.Errorf("graphio: conflicting weights %v and %v for edge {%d,%d}",
					prev, weights[i], e[0], e[1])
			}
			continue
		}
		seen[key] = weights[i]
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	ix := graph.NewEdgeIndex(g)
	w := make([]float64, ix.NumEdges())
	for key, weight := range seen {
		w[ix.ID(key[0], key[1])] = weight
	}
	wg, err := graph.NewWeighted(g, w)
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return FromWeighted(wg), nil
}

// forEachWeightedEdge iterates the undirected edges of wg with u < v in
// lexicographic order together with their weights.
func forEachWeightedEdge(wg *graph.Weighted, fn func(u, v int32, w float64) error) error {
	var err error
	wg.ForEachEdge(func(u, v int32) {
		if err == nil {
			err = fn(u, v, wg.EdgeWeight(u, v))
		}
	})
	return err
}
