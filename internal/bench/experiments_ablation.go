package bench

import (
	"fmt"
	"math"

	"mpcgraph/internal/baseline"
	"mpcgraph/internal/graph"
	"mpcgraph/internal/matching"
	"mpcgraph/internal/mis"
	"mpcgraph/internal/rng"
)

func init() {
	register(Experiment{ID: "E15", Title: "MIS prefix-exponent α ablation (§3.2)", Run: runE15})
	register(Experiment{ID: "E16", Title: "Matching phase-schedule ablation (§4.2/§4.3)", Run: runE16})
	register(Experiment{ID: "E17", Title: "Filtering memory regimes ([LMSV11], §1.2)", Run: runE17})
}

// runE15 sweeps the rank-prefix exponent α. Smaller α exposes bigger rank
// ranges per phase (fewer phases, larger gathers); larger α is gentler
// but needs more phases. The paper picks 3/4 to keep each gather at O(n)
// edges while preserving the doubly exponential schedule.
func runE15(cfg Config) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "MIS prefix-exponent ablation",
		Claim:   "Section 3.2 fixes α = 3/4: phases grow like log_{1/α} log Δ while each phase's gather stays O(n).",
		Columns: []string{"n", "alpha", "phases", "rounds", "maxGather/n", "violations"},
		Notes:   "the gather column is the largest per-phase subgraph shipped to the leader; α trades it against phase count exactly as the analysis predicts.",
	}
	n := 1 << 14
	if cfg.Quick {
		n = 1 << 11
	}
	for _, alpha := range []float64{0.55, 0.75, 0.9} {
		var phases, rounds, gather []float64
		viol := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := rng.Hash(cfg.Seed, 15, math.Float64bits(alpha), uint64(trial))
			g := sqrtDegGNP(n, rng.New(seed))
			res, err := mis.RandGreedyMPC(g, mis.Options{Seed: seed, Alpha: alpha, Workers: cfg.Workers})
			if err != nil {
				continue
			}
			phases = append(phases, float64(res.Phases))
			rounds = append(rounds, float64(res.Rounds))
			var worst int64
			for _, ph := range res.PhaseInfos {
				if ph.GatheredEdgeWords > worst {
					worst = ph.GatheredEdgeWords
				}
			}
			gather = append(gather, float64(worst)/float64(n))
			viol += res.Violations
		}
		t.Rows = append(t.Rows, []string{
			fi(n), f2(alpha), f1(mean(phases)), f1(mean(rounds)), f3(maxf(gather)), fi(viol),
		})
	}
	return t
}

// runE16 sweeps the per-phase iteration schedule of MPC-Simulation: the
// β parameter of the d → d^(1-β/2) schedule, plus the paper's literal
// I = log m/(10 log 5).
func runE16(cfg Config) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "Matching phase-schedule ablation",
		Claim:   "Section 4.2 sketches d → d^0.9 per phase (β = 0.2); the pseudocode's literal constants make I < 1 at feasible scale and degenerate to one iteration per phase.",
		Columns: []string{"n", "schedule", "phases", "totalIters", "rounds", "maxInduced/n", "coverRatio"},
		Notes:   "coverRatio against the Kőnig optimum on a bipartite instance; schedule changes trade phases against rounds without hurting quality.",
	}
	half := 1 << 12
	if cfg.Quick {
		half = 1 << 9
	}
	type sched struct {
		name  string
		beta  float64
		paper bool
	}
	for _, s := range []sched{
		{name: "beta=0.1", beta: 0.1},
		{name: "beta=0.2", beta: 0.2},
		{name: "beta=0.4", beta: 0.4},
		{name: "paper I", paper: true},
	} {
		seed := rng.Hash(cfg.Seed, 16, math.Float64bits(s.beta))
		bg := graph.RandomBipartite(half, half, 8/float64(half), rng.New(seed))
		res, err := matching.Simulate(bg.Graph, matching.SimOptions{
			Seed:           seed,
			Eps:            0.1,
			PhaseIterBeta:  s.beta,
			PaperConstants: s.paper,
			Workers:        cfg.Workers,
		})
		if err != nil {
			continue
		}
		var worst int64
		for _, ps := range res.PhaseStats {
			if ps.MaxInducedWords > worst {
				worst = ps.MaxInducedWords
			}
		}
		opt := baseline.HopcroftKarp(bg).Size()
		ratio := math.NaN()
		if opt > 0 {
			ratio = float64(res.Frac.CoverSize()) / float64(opt)
		}
		t.Rows = append(t.Rows, []string{
			fi(2 * half), s.name, fi(res.Phases), fi(res.TotalIterations), fi(res.Rounds),
			f3(float64(worst) / float64(2*half)), f3(ratio),
		})
	}
	return t
}

// runE17 sweeps the filtering baseline's machine memory: at S = n^(1+δ)
// the paper's related-work discussion credits [LMSV11] with O(1/δ)
// rounds; at S = Θ(n) it degrades to Θ(log n) — the gap the paper's
// O(log log n) algorithms close.
func runE17(cfg Config) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "Filtering memory regimes",
		Claim:   "[LMSV11]: maximal matching in O(1/δ) rounds with S = n^{1+δ}, but Θ(log n) rounds at S = Θ(n).",
		Columns: []string{"n", "m", "S(words)", "regime", "rounds", "predicted"},
	}
	n := 1 << 14
	if cfg.Quick {
		n = 1 << 11
	}
	// A dense-ish instance so log(m/S) is visible: expected degree √n.
	seed := rng.Hash(cfg.Seed, 17)
	g := sqrtDegGNP(n, rng.New(seed))
	m := g.NumEdges()
	type regime struct {
		name      string
		words     int64
		predicted string
	}
	fn := float64(n)
	regimes := []regime{
		{name: "S=2n", words: int64(2 * n), predicted: fmt.Sprintf("log2(2m/S)=%.1f", math.Log2(float64(2*m)/float64(2*n)))},
		{name: "S=n^1.2", words: int64(math.Pow(fn, 1.2)), predicted: "1/delta=5"},
		{name: "S=n^1.5", words: int64(math.Pow(fn, 1.5)), predicted: "1/delta=2"},
	}
	for _, r := range regimes {
		var rounds []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			res := matching.FilteringMaximalMatching(g, r.words, rng.New(rng.Hash(seed, uint64(trial))))
			rounds = append(rounds, float64(res.Rounds))
		}
		t.Rows = append(t.Rows, []string{
			fi(n), fi(m), fi(int(r.words)), r.name, f1(mean(rounds)), r.predicted,
		})
	}
	return t
}
