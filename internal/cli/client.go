package cli

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"mpcgraph"
	"mpcgraph/internal/service"
)

// The daemon client subcommands: `mpcgraph submit` posts one job to a
// running mpcgraphd and (with -wait) polls it to completion; `mpcgraph
// status` inspects the daemon's job table. Together with `mpcgraph
// serve` they make the service drivable end-to-end from the one CLI.
//
// Retry convention (see docs/service.md): exactly HTTP 429 (queue
// full) and 503 (draining) are retryable, both carry a Retry-After
// hint the client honors, and exhausting the retry budget returns
// ErrRetriesExhausted (exit code 6). Every other status fails fast.

// runSubmit posts one job to a running daemon.
func runSubmit(args []string, env Env) error {
	fs := flag.NewFlagSet("mpcgraph submit", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	var (
		server       = fs.String("server", "http://127.0.0.1:8080", "base URL of the mpcgraphd daemon")
		problemName  = fs.String("problem", "", "problem to solve (see mpcgraph list)")
		modelName    = fs.String("model", mpcgraph.ModelMPC.String(), "computation model: mpc or congested-clique")
		inPath       = fs.String("in", "", "instance file to upload ('-' reads stdin); any supported format")
		formatName   = fs.String("format", "", "upload format (el, wel, dimacs, metis, mm); required with -in")
		scenarioName = fs.String("scenario", "", "generate the instance server-side from this catalog scenario")
		n            = fs.Int("n", 0, "scenario vertex count (0 = the scenario's default)")
		seed         = fs.Uint64("seed", 1, "seed for scenario generation and the algorithm's random choices")
		eps          = fs.Float64("eps", 0.1, "approximation slack where applicable")
		memFactor    = fs.Float64("memory-factor", 0, "per-machine memory = factor*n words (0 = default 16)")
		strict       = fs.Bool("strict", false, "fail on any simulated memory/bandwidth violation")
		workers      = fs.Int("workers", 0, "per-job parallel workers (0 = the server's default); results identical for every value")
		timeout      = fs.Duration("timeout", 0, "server-side deadline for the job (0 = none)")
		noCache      = fs.Bool("no-cache", false, "force a cold run past the deterministic result cache")
		wait         = fs.Bool("wait", false, "poll the job until it reaches a terminal state")
		retries      = fs.Int("retries", 8, "submission retries on 429/503 before giving up (exit code 6)")
		retryBudget  = fs.Duration("retry-budget", 2*time.Minute, "total planned retry sleep before giving up (exit code 6)")
		params       = paramFlag{}
	)
	fs.Var(params, "param", "scenario parameter key=value (repeatable, comma-separable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *problemName == "" {
		return fmt.Errorf("submit requires -problem (see mpcgraph list)")
	}

	req := service.JobRequest{
		Problem: *problemName,
		Model:   *modelName,
		Options: service.OptionsRequest{
			Seed:         *seed,
			Eps:          *eps,
			MemoryFactor: *memFactor,
			Strict:       *strict,
			Workers:      *workers,
		},
		TimeoutMs: timeout.Milliseconds(),
		NoCache:   *noCache,
	}
	switch {
	case *scenarioName != "" && *inPath != "":
		return fmt.Errorf("-scenario and -in are mutually exclusive")
	case *scenarioName != "":
		req.Scenario = &service.ScenarioRequest{Name: *scenarioName, N: *n, Seed: *seed, Params: params}
	case *inPath != "":
		if *formatName == "" {
			return fmt.Errorf("-in requires -format (the upload does not have a file extension server-side)")
		}
		raw, err := readAll(env, *inPath)
		if err != nil {
			return err
		}
		req.Graph = &service.GraphRequest{
			Format:  *formatName,
			Content: base64.StdEncoding.EncodeToString(raw),
			Base64:  true,
		}
	default:
		return fmt.Errorf("need an instance: -in <file> or -scenario <name> (see mpcgraph list)")
	}

	// Submission retry loop: 429 (queue full) and 503 (draining behind
	// a balancer) back off and retry, everything else fails fast. The
	// jitter stream is seeded by the job seed, so one scripted
	// invocation plans one reproducible delay sequence.
	bo := newBackoff(*seed, "submit", 100*time.Millisecond, 5*time.Second, *retries, *retryBudget)
	var view *service.JobView
	for {
		var err error
		view, err = postJob(*server, &req)
		if err == nil {
			break
		}
		var he *httpError
		if !errors.As(err, &he) || !he.retryable() {
			return err
		}
		delay, ok := bo.next(he.retryAfter)
		if !ok {
			return fmt.Errorf("submit: %v: %w after %d attempts", err, ErrRetriesExhausted, bo.attempts+1)
		}
		fmt.Fprintf(env.Stderr, "mpcgraph: submit rejected (%d), retrying in %v\n", he.status, delay.Round(time.Millisecond))
		time.Sleep(delay)
	}
	if *wait {
		var err error
		view, err = waitJob(*server, view.ID, *seed)
		if err != nil {
			return err
		}
	}
	enc := json.NewEncoder(env.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(view); err != nil {
		return err
	}
	if view.State == service.StateFailed || view.State == service.StateCanceled {
		return fmt.Errorf("job %s %s: %s", view.ID, view.State, view.Error)
	}
	return nil
}

// runStatus inspects a running daemon: one job with -job, the newest
// page of the job table otherwise.
func runStatus(args []string, env Env) error {
	fs := flag.NewFlagSet("mpcgraph status", flag.ContinueOnError)
	fs.SetOutput(env.Stderr)
	var (
		server = fs.String("server", "http://127.0.0.1:8080", "base URL of the mpcgraphd daemon")
		jobID  = fs.String("job", "", "job id to fetch (default: list jobs)")
		state  = fs.String("state", "", "filter the listing by lifecycle state")
		limit  = fs.Int("limit", 100, "page size of the listing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	path := fmt.Sprintf("/v1/jobs?limit=%d", *limit)
	if *state != "" {
		path += "&state=" + *state
	}
	if *jobID != "" {
		path = "/v1/jobs/" + *jobID
	}
	body, err := getJSON(*server, path)
	if err != nil {
		return err
	}
	_, err = env.Stdout.Write(body)
	return err
}

// readAll reads a file or stdin ("-").
func readAll(env Env, path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(env.Stdin)
	}
	return os.ReadFile(path)
}

// httpError is a non-2xx daemon response, carrying the status and the
// Retry-After hint so callers can apply the documented retry
// convention.
type httpError struct {
	status     int
	retryAfter time.Duration
	msg        string
}

func (e *httpError) Error() string { return e.msg }

// retryable reports whether the convention allows retrying: exactly
// 429 (queue full, clears within a solve) and 503 (draining — this
// daemon won't recover, but a balancer may route the retry elsewhere).
func (e *httpError) retryable() bool { return e.status == 429 || e.status == 503 }

// parseRetryAfter reads the delay-seconds form of Retry-After (the
// only form mpcgraphd emits); anything else means no hint.
func parseRetryAfter(h string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// postJob submits req and decodes the job view; non-2xx responses
// surface the server's error body as an *httpError.
func postJob(server string, req *service.JobRequest) (*service.JobView, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(strings.TrimSuffix(server, "/")+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, &httpError{
			status:     resp.StatusCode,
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			msg:        fmt.Sprintf("submit: %s: %s", resp.Status, serverError(body)),
		}
	}
	var view service.JobView
	if err := json.Unmarshal(body, &view); err != nil {
		return nil, fmt.Errorf("submit: bad response: %v", err)
	}
	return &view, nil
}

// waitJob polls until the job reaches a terminal state. The poll pace
// backs off with jitter from 20ms toward a 1s cap — a short job is
// noticed almost immediately, a long one costs the daemon one request
// per second instead of twenty. Retryable statuses from the daemon
// (or a proxy in front of it) honor Retry-After and are tolerated up
// to a cap of consecutive failures; the overall wait is unbounded,
// because a live job may legitimately run long.
func waitJob(server, id string, seed uint64) (*service.JobView, error) {
	pace := newBackoff(seed, "wait-poll", 20*time.Millisecond, time.Second, int(^uint(0)>>1), 0)
	consecutive := 0
	for {
		body, err := getJSON(server, "/v1/jobs/"+id)
		var retryAfter time.Duration
		if err != nil {
			var he *httpError
			if !errors.As(err, &he) || !he.retryable() {
				return nil, err
			}
			consecutive++
			if consecutive > 10 {
				return nil, fmt.Errorf("wait: %v: %w", err, ErrRetriesExhausted)
			}
			retryAfter = he.retryAfter
		} else {
			consecutive = 0
			var view service.JobView
			if err := json.Unmarshal(body, &view); err != nil {
				return nil, fmt.Errorf("status: bad response: %v", err)
			}
			switch view.State {
			case service.StateDone, service.StateFailed, service.StateCanceled:
				return &view, nil
			}
		}
		delay, _ := pace.next(retryAfter)
		time.Sleep(delay)
	}
}

// getJSON fetches one daemon endpoint, surfacing error bodies as
// *httpError.
func getJSON(server, path string) ([]byte, error) {
	resp, err := http.Get(strings.TrimSuffix(server, "/") + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, &httpError{
			status:     resp.StatusCode,
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			msg:        fmt.Sprintf("%s: %s", resp.Status, serverError(body)),
		}
	}
	return body, nil
}

// serverError extracts the daemon's {"error": ...} body, falling back
// to the raw bytes.
func serverError(body []byte) string {
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	return strings.TrimSpace(string(body))
}
