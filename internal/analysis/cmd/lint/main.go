// Command lint is the repository's lint gate, run by `make lint`: it
// loads the module with full type information (internal/analysis) and
// runs the project analyzer suite (internal/analysis/rules) over every
// package. It replaces the old syntax-level internal/tools/lint, which
// matched import spellings and so missed aliased imports, dot imports,
// and method values like `now := time.Now`.
//
// Usage:
//
//	lint [-tests=false] [-rules] [-all] [dir]
//
// dir (default ".") is any directory inside the module. -tests=false
// skips loading _test.go files (the `make lint-fast` mode). -rules
// prints the rule catalog and exits. -all also prints suppressed
// findings with their justifications — the suppression inventory.
//
// Exit status: 0 when every finding is suppressed with a justification,
// 1 otherwise. See docs/analysis.md for the rule catalog and the
// //lint:ignore etiquette.
package main

import (
	"flag"
	"fmt"
	"os"

	"mpcgraph/internal/analysis"
	"mpcgraph/internal/analysis/rules"
)

func main() {
	tests := flag.Bool("tests", true, "type-check and analyze _test.go files too")
	listRules := flag.Bool("rules", false, "print the rule catalog and exit")
	all := flag.Bool("all", false, "also print suppressed findings with their justifications")
	flag.Parse()

	suite := rules.Suite()
	if *listRules {
		for _, a := range suite {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	res, err := analysis.Run(analysis.Config{
		Dir:       dir,
		Tests:     *tests,
		Analyzers: suite,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(1)
	}
	for _, note := range res.Notes {
		fmt.Fprintln(os.Stderr, "lint: note:", note)
	}
	if *all {
		for _, f := range res.Findings {
			if f.Suppressed {
				fmt.Fprintln(os.Stderr, f)
			}
		}
	}
	failing := res.Unsuppressed()
	for _, f := range failing {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", len(failing))
		os.Exit(1)
	}
}
