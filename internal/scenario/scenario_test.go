package scenario

import (
	"strings"
	"testing"
)

// TestCatalogMaterializesEverywhere: every catalog entry generates at a
// small size, matches its Weighted declaration, and is deterministic in
// the seed.
func TestCatalogMaterializesEverywhere(t *testing.T) {
	if len(Names()) < 10 {
		t.Fatalf("catalog unexpectedly small: %v", Names())
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s, ok := Lookup(name)
			if !ok {
				t.Fatal("listed scenario not found")
			}
			if s.DefaultN <= 0 {
				t.Errorf("DefaultN = %d", s.DefaultN)
			}
			if s.Doc == "" {
				t.Error("missing Doc")
			}
			in, err := Generate(name, 200, 5, nil)
			if err != nil {
				t.Fatal(err)
			}
			if in.G == nil {
				t.Fatal("nil graph")
			}
			if (in.WG != nil) != s.Weighted {
				t.Errorf("weighted mismatch: WG=%v, declared %v", in.WG != nil, s.Weighted)
			}
			if in.G.NumVertices() == 0 {
				t.Error("empty instance at n=200")
			}
			// Deterministic in the seed, sensitive to it for randomized
			// recipes (structured recipes like grid/ring legitimately
			// ignore the seed).
			again, err := Generate(name, 200, 5, nil)
			if err != nil {
				t.Fatal(err)
			}
			if in.G.NumEdges() != again.G.NumEdges() {
				t.Errorf("same seed produced different edge counts: %d vs %d", in.G.NumEdges(), again.G.NumEdges())
			}
			same := true
			in.G.ForEachEdge(func(u, v int32) {
				if !again.G.HasEdge(u, v) {
					same = false
				}
			})
			if !same {
				t.Error("same seed produced a different edge set")
			}
			if in.WG != nil {
				in.G.ForEachEdge(func(u, v int32) {
					if in.WG.EdgeWeight(u, v) != again.WG.EdgeWeight(u, v) {
						t.Fatalf("same seed produced different weight on {%d,%d}", u, v)
					}
					if in.WG.EdgeWeight(u, v) <= 0 {
						t.Fatalf("non-positive weight on {%d,%d}", u, v)
					}
				})
			}
		})
	}
}

// TestGenerateDefaults: n <= 0 selects the recipe default size.
func TestGenerateDefaults(t *testing.T) {
	s, _ := Lookup("complete")
	in, err := Generate("complete", 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if in.G.NumVertices() != s.DefaultN {
		t.Errorf("n = %d, want default %d", in.G.NumVertices(), s.DefaultN)
	}
}

// TestGenerateParamOverride: documented keys apply; the override must
// change the instance.
func TestGenerateParamOverride(t *testing.T) {
	dense, err := Generate("gnm", 100, 1, map[string]float64{"density": 8})
	if err != nil {
		t.Fatal(err)
	}
	if dense.G.NumEdges() != 800 {
		t.Errorf("density override ignored: m = %d", dense.G.NumEdges())
	}
	cliques, err := Generate("ring-of-cliques", 120, 1, map[string]float64{"clique": 6})
	if err != nil {
		t.Fatal(err)
	}
	if cliques.G.MaxDegree() != 6 {
		t.Errorf("clique override ignored: maxdeg = %d", cliques.G.MaxDegree())
	}
	// p = 0 is the legitimate empty graph (the historical mpcmis/mpcmatch
	// RandomGraph semantics), not "use the avg-deg default".
	empty, err := Generate("gnp", 100, 1, map[string]float64{"p": 0})
	if err != nil {
		t.Fatal(err)
	}
	if empty.G.NumEdges() != 0 {
		t.Errorf("gnp p=0 produced %d edges", empty.G.NumEdges())
	}
	full, err := Generate("gnp", 40, 1, map[string]float64{"p": 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.G.NumEdges() != 40*39/2 {
		t.Errorf("gnp p=1 produced %d edges, want complete graph", full.G.NumEdges())
	}
}

// TestScenarioSizeClamps: oversized shape parameters must clamp to the
// requested n instead of inflating (or hanging) the instance.
func TestScenarioSizeClamps(t *testing.T) {
	big, err := Generate("ring-of-cliques", 10, 1, map[string]float64{"clique": 1e8})
	if err != nil {
		t.Fatal(err)
	}
	if big.G.NumVertices() > 10 {
		t.Errorf("ring-of-cliques clique=1e8 produced n=%d for requested 10", big.G.NumVertices())
	}
	tall, err := Generate("grid", 100, 1, map[string]float64{"aspect": 1e10})
	if err != nil {
		t.Fatal(err)
	}
	if tall.G.NumVertices() > 100 {
		t.Errorf("grid aspect=1e10 produced n=%d for requested 100", tall.G.NumVertices())
	}
}

// TestGenerateErrors: unknown scenarios, unknown keys and invalid values
// report errors naming the offender.
func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("no-such-scenario", 100, 1, nil); err == nil || !strings.Contains(err.Error(), "no-such-scenario") {
		t.Errorf("unknown scenario: %v", err)
	}
	if _, err := Generate("gnp", 100, 1, map[string]float64{"zzz": 1}); err == nil || !strings.Contains(err.Error(), "zzz") {
		t.Errorf("unknown key: %v", err)
	}
	if _, err := Generate("ring", 100, 1, map[string]float64{"zzz": 1}); err == nil || !strings.Contains(err.Error(), "no parameters") {
		t.Errorf("param on parameterless scenario: %v", err)
	}
	cases := []struct {
		name   string
		params map[string]float64
	}{
		{"gnp", map[string]float64{"p": 1.5}},
		{"rmat", map[string]float64{"a": 0.9, "b": 0.9}},
		{"regular", map[string]float64{"d": 2.5}},
		{"regular", map[string]float64{"d": 500}},
		{"high-girth", map[string]float64{"girth": 2}},
		{"bipartite", map[string]float64{"left-frac": 1.5}},
		{"weighted-gnp", map[string]float64{"w-lo": -1}},
	}
	for _, tc := range cases {
		if _, err := Generate(tc.name, 100, 1, tc.params); err == nil {
			t.Errorf("%s with %v accepted", tc.name, tc.params)
		}
	}
}

// TestRegularOddProduct: the parity constraint errors instead of
// panicking.
func TestRegularOddProduct(t *testing.T) {
	if _, err := Generate("regular", 101, 1, map[string]float64{"d": 3}); err == nil {
		t.Error("odd n·d accepted")
	}
}
