package mpc

import (
	"testing"

	"mpcgraph/internal/rng"
)

func TestChargeVolumeMatrix(t *testing.T) {
	c, _ := NewCluster(Config{Machines: 3, CapacityWords: 100, Strict: true})
	vol := []int64{
		0, 5, 2,
		1, 0, 0,
		0, 7, 0,
	}
	in, err := c.ChargeVolumeMatrix(vol)
	if err != nil {
		t.Fatal(err)
	}
	if len(in[1]) != 2 { // from 0 (5 words) and from 2 (7 words)
		t.Errorf("machine 1 received %d messages", len(in[1]))
	}
	m := c.Metrics()
	if m.TotalWords != 15 {
		t.Errorf("total = %d, want 15", m.TotalWords)
	}
	if m.MaxInWords != 12 { // machine 1: 5+7
		t.Errorf("max in = %d, want 12", m.MaxInWords)
	}
	if m.MaxOutWords != 7 {
		t.Errorf("max out = %d, want 7", m.MaxOutWords)
	}
	if m.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", m.Rounds)
	}
}

func TestChargeVolumeMatrixValidation(t *testing.T) {
	c, _ := NewCluster(Config{Machines: 2})
	if _, err := c.ChargeVolumeMatrix([]int64{0, 1, 2}); err == nil {
		t.Error("wrong-size matrix accepted")
	}
}

func TestChargeVolumeMatrixEquivalentToExplicitMessages(t *testing.T) {
	// Conformance: bulk charging must account identically to sending the
	// same volumes as explicit messages.
	const machines = 4
	vol := make([]int64, machines*machines)
	src := rng.New(42)
	for i := 0; i < machines; i++ {
		for j := 0; j < machines; j++ {
			if i != j {
				vol[i*machines+j] = int64(src.Intn(20))
			}
		}
	}

	bulk, _ := NewCluster(Config{Machines: machines, CapacityWords: 1000})
	if _, err := bulk.ChargeVolumeMatrix(vol); err != nil {
		t.Fatal(err)
	}

	explicit, _ := NewCluster(Config{Machines: machines, CapacityWords: 1000})
	out := make([][]Message, machines)
	for i := 0; i < machines; i++ {
		for j := 0; j < machines; j++ {
			// Split each pair volume into single-word messages to prove
			// aggregation does not change the audit.
			for k := int64(0); k < vol[i*machines+j]; k++ {
				out[i] = append(out[i], Message{To: j, Words: 1})
			}
		}
	}
	if _, err := explicit.Exchange(out); err != nil {
		t.Fatal(err)
	}

	if bulk.Metrics() != explicit.Metrics() {
		t.Errorf("metrics diverge:\nbulk     %+v\nexplicit %+v", bulk.Metrics(), explicit.Metrics())
	}
}

func TestChargeVolumeMatrixStrictOverflow(t *testing.T) {
	c, _ := NewCluster(Config{Machines: 2, CapacityWords: 3, Strict: true})
	if _, err := c.ChargeVolumeMatrix([]int64{0, 9, 0, 0}); err == nil {
		t.Error("overflow volume accepted in strict mode")
	}
}
