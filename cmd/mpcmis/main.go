// Command mpcmis computes a maximal independent set with the paper's
// O(log log Δ)-round algorithm.
//
// Deprecated: mpcmis is a thin shim over the unified mpcgraph CLI; use
//
//	mpcgraph solve -problem mis [-model congested-clique] ...
//
// which adds every on-disk format, the scenario catalog and JSON
// reports. The shim translates its historical flags onto `mpcgraph
// solve` and will not gain new features (see CHANGES.md for the
// deprecation policy).
//
// Usage:
//
//	mpcmis -input graph.txt            # edge-list file ("u v" per line)
//	mpcmis -n 10000 -p 0.01            # G(n, p) instance
//	mpcmis -n 4096 -p 0.02 -clique     # CONGESTED-CLIQUE simulation
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"mpcgraph/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpcmis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpcmis", flag.ContinueOnError)
	var (
		input  = fs.String("input", "", "edge-list file; empty generates G(n,p)")
		n      = fs.Int("n", 1<<12, "vertices for the generated instance")
		p      = fs.Float64("p", 0.01, "edge probability for the generated instance")
		seed   = fs.Uint64("seed", 1, "random seed")
		clique = fs.Bool("clique", false, "simulate in the CONGESTED-CLIQUE model")
		strict = fs.Bool("strict", false, "fail on any memory/bandwidth violation")
		out    = fs.String("out", "", "write MIS vertex ids to this file ('-' for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "mpcmis: deprecated; use `mpcgraph solve -problem mis` (run `mpcgraph list` for the catalog)")

	// Translate the historical flags onto the unified CLI.
	solve := []string{
		"solve", "-problem", "mis",
		"-seed", strconv.FormatUint(*seed, 10),
	}
	if *input != "" {
		// The historical input dialect is the native edge list.
		solve = append(solve, "-in", *input, "-format", "el")
	} else {
		// The gnp scenario treats n <= 0 as "use the default size", which
		// would silently swap the historical 0-vertex instance for a
		// 4096-vertex one; fail loudly instead.
		if *n < 1 {
			return fmt.Errorf("-n %d: n must be positive", *n)
		}
		// Preserve the historical RandomGraph clamping: p >= 1 meant the
		// complete graph and p <= 0 the empty one, both legitimate values
		// of the gnp recipe's p parameter.
		prob := *p
		if prob > 1 {
			prob = 1
		}
		if prob < 0 {
			prob = 0
		}
		solve = append(solve,
			"-scenario", "gnp",
			"-n", strconv.Itoa(*n),
			"-param", "p="+strconv.FormatFloat(prob, 'g', -1, 64),
		)
	}
	if *clique {
		solve = append(solve, "-model", "congested-clique")
	}
	if *strict {
		solve = append(solve, "-strict")
	}
	if *out != "" {
		solve = append(solve, "-solution", *out)
	}
	return cli.Run(solve, cli.Env{Stdin: os.Stdin, Stdout: os.Stdout, Stderr: os.Stderr})
}
