package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "E3", "-quick", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	if err := run([]string{"-experiment", "E3, E17", "-quick", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "E3", "-quick", "-trials", "1", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkersSequential(t *testing.T) {
	if err := run([]string{"-experiment", "E3", "-quick", "-trials", "1", "-workers", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
