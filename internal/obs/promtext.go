package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the consumer side of the exposition format: a parser
// for the subset of the Prometheus text format the daemon emits
// (counters, gauges, histograms), plus the invariant validator the
// service-smoke gate runs against a live /metrics scrape. Keeping the
// parser next to the writer means one package owns both directions of
// the wire format, and the round-trip is testable without a network.

// Sample is one parsed series: a metric name, its label pairs, and a
// value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the value of one label, "" when absent.
func (s Sample) Label(key string) string { return s.Labels[key] }

// Exposition is a parsed /metrics payload.
type Exposition struct {
	Samples []Sample
	// Help and Type index the # HELP / # TYPE comment lines by metric
	// family name.
	Help map[string]string
	Type map[string]string
}

// Value returns the value of the first sample matching name and every
// given label pair (an even-length key, value list). ok is false when
// no sample matches.
func (e *Exposition) Value(name string, kv ...string) (float64, bool) {
	if len(kv)%2 != 0 {
		panic("obs: Value wants key/value pairs")
	}
next:
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		for i := 0; i < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				continue next
			}
		}
		return s.Value, true
	}
	return 0, false
}

// ParseExposition parses a Prometheus text-format payload. It accepts
// the grammar the daemon writes — HELP/TYPE comments, series lines
// with optional {label="value"} blocks, float values — and rejects
// anything it cannot account for, so a parse success is already a weak
// format check.
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{Help: make(map[string]string), Type: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			switch {
			case strings.HasPrefix(rest, "HELP "):
				name, help, _ := strings.Cut(strings.TrimPrefix(rest, "HELP "), " ")
				e.Help[name] = help
			case strings.HasPrefix(rest, "TYPE "):
				name, typ, _ := strings.Cut(strings.TrimPrefix(rest, "TYPE "), " ")
				e.Type[name] = strings.TrimSpace(typ)
			}
			// Other comments are legal and ignored.
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %w", lineNo, err)
		}
		e.Samples = append(e.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading metrics: %w", err)
	}
	return e, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	nameEnd := strings.IndexAny(line, "{ \t")
	if nameEnd <= 0 {
		return s, fmt.Errorf("malformed series %q", line)
	}
	s.Name = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := -1
		// Find the closing brace outside any quoted value.
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				i++ // skip the escaped byte
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	// A timestamp suffix would appear as a second field; the daemon
	// never writes one, so a remaining space is a malformed line.
	if valStr == "" || strings.ContainsAny(valStr, " \t") {
		return s, fmt.Errorf("malformed value %q", valStr)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(block string, into map[string]string) error {
	i := 0
	for i < len(block) {
		eq := strings.IndexByte(block[i:], '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair")
		}
		key := strings.TrimSpace(block[i : i+eq])
		i += eq + 1
		if i >= len(block) || block[i] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		// Scan the quoted value, honouring backslash escapes, then
		// invert the writer's %q with strconv.Unquote.
		j := i + 1
		for j < len(block) {
			if block[j] == '\\' {
				j += 2
				continue
			}
			if block[j] == '"' {
				break
			}
			j++
		}
		if j >= len(block) {
			return fmt.Errorf("unterminated label value")
		}
		val, err := strconv.Unquote(block[i : j+1])
		if err != nil {
			return fmt.Errorf("bad label value %s: %v", block[i:j+1], err)
		}
		into[key] = val
		i = j + 1
		if i < len(block) && block[i] == ',' {
			i++
		}
	}
	return nil
}

// HistogramSeries is one histogram child reconstructed from parsed
// exposition: the label set (without le) and per-bucket counts over
// ascending bounds.
type HistogramSeries struct {
	Name   string
	Labels map[string]string // le excluded
	Bounds []float64         // finite bounds, ascending
	// Cumulative counts per finite bound, then the +Inf count last.
	Cumulative []uint64
	Sum        float64
	Count      uint64
}

// Deltas returns the per-bucket (non-cumulative) counts including the
// +Inf bucket, the form quantile estimation wants.
func (h HistogramSeries) Deltas() []uint64 {
	out := make([]uint64, len(h.Cumulative))
	prev := uint64(0)
	for i, c := range h.Cumulative {
		out[i] = c - prev
		prev = c
	}
	return out
}

// Snapshot converts the series to the same Snapshot form live
// histograms produce, so `top` can diff scrape-over-scrape with
// Snapshot.Sub and quantile the interval.
func (h HistogramSeries) Snapshot() Snapshot {
	return Snapshot{Bounds: h.Bounds, Counts: h.Deltas(), SumSeconds: h.Sum, Count: h.Count}
}

// Histograms reassembles every histogram family in the exposition from
// its _bucket/_sum/_count series, keyed by base name. Series order
// within a family follows first appearance.
func (e *Exposition) Histograms() map[string][]HistogramSeries {
	type key struct {
		name   string
		labels string
	}
	index := map[key]*HistogramSeries{}
	order := []key{}
	get := func(name string, labels map[string]string) *HistogramSeries {
		rest := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		k := key{name, canonicalLabels(rest)}
		h := index[k]
		if h == nil {
			h = &HistogramSeries{Name: name, Labels: rest}
			index[k] = h
			order = append(order, k)
		}
		return h
	}
	for _, s := range e.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			base := strings.TrimSuffix(s.Name, "_bucket")
			if e.Type[base] != "histogram" {
				continue
			}
			h := get(base, s.Labels)
			le := s.Labels["le"]
			if le == "+Inf" {
				h.Bounds = append(h.Bounds, math.Inf(1))
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					continue
				}
				h.Bounds = append(h.Bounds, b)
			}
			h.Cumulative = append(h.Cumulative, uint64(s.Value))
		case strings.HasSuffix(s.Name, "_sum"):
			base := strings.TrimSuffix(s.Name, "_sum")
			if e.Type[base] != "histogram" {
				continue
			}
			get(base, s.Labels).Sum = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			base := strings.TrimSuffix(s.Name, "_count")
			if e.Type[base] != "histogram" {
				continue
			}
			get(base, s.Labels).Count = uint64(s.Value)
		}
	}
	out := map[string][]HistogramSeries{}
	for _, k := range order {
		h := index[k]
		// Sort buckets by bound and strip the +Inf bound so Bounds holds
		// finite bounds with the +Inf count last, matching Snapshot.
		sort.Sort(&bucketSorter{h.Bounds, h.Cumulative})
		if n := len(h.Bounds); n > 0 && math.IsInf(h.Bounds[n-1], 1) {
			h.Bounds = h.Bounds[:n-1]
		}
		out[h.Name] = append(out[h.Name], *h)
	}
	return out
}

type bucketSorter struct {
	bounds []float64
	counts []uint64
}

func (b *bucketSorter) Len() int           { return len(b.bounds) }
func (b *bucketSorter) Less(i, j int) bool { return b.bounds[i] < b.bounds[j] }
func (b *bucketSorter) Swap(i, j int) {
	b.bounds[i], b.bounds[j] = b.bounds[j], b.bounds[i]
	b.counts[i], b.counts[j] = b.counts[j], b.counts[i]
}

// MergedSnapshot sums every series of one histogram family into a
// single Snapshot — how `top` folds per-route or per-problem children
// into one overall latency distribution. The shared fixed bucket
// layout is what makes summation valid; series with mismatched bounds
// are skipped.
func MergedSnapshot(series []HistogramSeries) Snapshot {
	var out Snapshot
	for _, h := range series {
		s := h.Snapshot()
		if out.Bounds == nil {
			out.Bounds = s.Bounds
			out.Counts = make([]uint64, len(s.Counts))
		}
		if len(s.Counts) != len(out.Counts) {
			continue
		}
		for i, c := range s.Counts {
			out.Counts[i] += c
		}
		out.SumSeconds += s.SumSeconds
		out.Count += s.Count
	}
	return out
}

// canonicalLabels renders a label set as a sorted, unambiguous key.
func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// ValidateExposition checks the invariants the service-smoke gate
// enforces on a /metrics scrape:
//
//   - every sample's family has # HELP and # TYPE comments
//     (histogram sub-series resolve to their base family);
//   - within each histogram series, _bucket counts are
//     cumulative-monotone in ascending bound order;
//   - every histogram series has an le="+Inf" bucket and its count
//     equals the series' _count.
//
// It returns every violation found, not just the first.
func ValidateExposition(e *Exposition) []error {
	var errs []error
	seen := map[string]bool{}
	for _, s := range e.Samples {
		fam := s.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suffix)
			if base != s.Name && e.Type[base] == "histogram" {
				fam = base
				break
			}
		}
		if seen[fam] {
			continue
		}
		seen[fam] = true
		if _, ok := e.Help[fam]; !ok {
			errs = append(errs, fmt.Errorf("series %s: family %s has no # HELP", s.Name, fam))
		}
		if _, ok := e.Type[fam]; !ok {
			errs = append(errs, fmt.Errorf("series %s: family %s has no # TYPE", s.Name, fam))
		}
	}
	for name, series := range e.Histograms() {
		for _, h := range series {
			label := fmt.Sprintf("%s{%s}", name, canonicalLabels(h.Labels))
			prev := uint64(0)
			for i, c := range h.Cumulative {
				if c < prev {
					errs = append(errs, fmt.Errorf("%s: bucket %d count %d below previous %d (not cumulative-monotone)", label, i, c, prev))
				}
				prev = c
			}
			if n := len(h.Cumulative); n == 0 || len(h.Bounds) != n-1 {
				// After sorting, Bounds holds the finite bounds and the
				// last Cumulative entry must be the +Inf bucket.
				errs = append(errs, fmt.Errorf("%s: missing le=\"+Inf\" bucket", label))
				continue
			}
			if inf := h.Cumulative[len(h.Cumulative)-1]; inf != h.Count {
				errs = append(errs, fmt.Errorf("%s: le=\"+Inf\" bucket %d != _count %d", label, inf, h.Count))
			}
		}
	}
	return errs
}
