package graph

import (
	"testing"

	"mpcgraph/internal/raceflag"
	"mpcgraph/internal/rng"
)

// The allocation ceilings below are regression guards for the PR 9 cold
// path: the radix builder and the single-pass edge-list accessors run in
// a constant number of allocations regardless of edge count, and these
// tests pin that property so a reflection sort, a per-edge append, or a
// forgotten capacity hint cannot sneak back in. Ceilings are ~2× the
// measured steady state, loose enough to survive runtime drift but far
// below any O(m) regression. Skipped under race (raceflag): the race
// runtime adds allocations of its own.

func allocEdges(n, m int) [][2]int32 {
	src := rng.New(42)
	edges := make([][2]int32, 0, m)
	for len(edges) < m {
		u, v := int32(src.Intn(n)), int32(src.Intn(n))
		if u != v {
			edges = append(edges, [2]int32{u, v})
		}
	}
	return edges
}

func TestBuilderAllocsCeiling(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race runtime")
	}
	const n = 1 << 12
	edges := allocEdges(n, 4*n)
	for _, workers := range []int{1, 4} {
		allocs := testing.AllocsPerRun(10, func() {
			b := NewBuilderCap(n, len(edges))
			b.AddEdges(edges)
			if _, err := b.BuildWorkers(workers); err != nil {
				t.Fatal(err)
			}
		})
		const ceiling = 96
		if allocs > ceiling {
			t.Errorf("builder build (workers=%d): %.0f allocs/op, ceiling %d", workers, allocs, ceiling)
		}
	}
}

func TestEdgeListAllocsCeiling(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race runtime")
	}
	const n = 1 << 12
	g, err := FromEdges(n, allocEdges(n, 4*n))
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		_ = g.EdgeList()
	})
	const ceiling = 2
	if allocs > ceiling {
		t.Errorf("EdgeList: %.0f allocs/op, ceiling %d", allocs, ceiling)
	}
	allocs = testing.AllocsPerRun(10, func() {
		count := 0
		g.ForEachEdge(func(u, v int32) { count++ })
	})
	const iterCeiling = 1
	if allocs > iterCeiling {
		t.Errorf("ForEachEdge: %.0f allocs/op, ceiling %d", allocs, iterCeiling)
	}
}
