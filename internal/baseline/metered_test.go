package baseline

import (
	"math"
	"testing"

	"mpcgraph/internal/graph"
	"mpcgraph/internal/mpc"
	"mpcgraph/internal/rng"
)

func newTestCluster(t *testing.T, n int) *mpc.Cluster {
	t.Helper()
	c, err := mpc.NewCluster(mpc.Config{
		Machines:      int(math.Sqrt(float64(n))) + 1,
		CapacityWords: int64(16 * n),
		Strict:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLubyMISOnClusterValid(t *testing.T) {
	g := graph.GNP(600, 0.02, rng.New(1))
	c := newTestCluster(t, 600)
	res, err := LubyMISOnCluster(g, rng.New(2), c)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalIndependentSet(g, res.InMIS) {
		t.Error("metered Luby output invalid")
	}
	if res.Rounds != 2*res.Iterations {
		t.Errorf("rounds = %d, want 2 per iteration (%d iterations)", res.Rounds, res.Iterations)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
}

func TestLubyMeteredMatchesUnmetered(t *testing.T) {
	// Same source stream must produce the same MIS — the metering wraps
	// the identical algorithm.
	g := graph.GNP(300, 0.04, rng.New(3))
	plain := LubyMIS(g, rng.New(7))
	c := newTestCluster(t, 300)
	metered, err := LubyMISOnCluster(g, rng.New(7), c)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Iterations != metered.Iterations {
		t.Errorf("iterations differ: %d vs %d", plain.Iterations, metered.Iterations)
	}
	for v := range plain.InMIS {
		if plain.InMIS[v] != metered.InMIS[v] {
			t.Fatalf("MIS differs at vertex %d", v)
		}
	}
}

func TestIsraeliItaiOnClusterValid(t *testing.T) {
	g := graph.GNP(500, 0.02, rng.New(4))
	c := newTestCluster(t, 500)
	res, err := IsraeliItaiOnCluster(g, rng.New(5), c)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalMatching(g, res.M) {
		t.Error("metered Israeli–Itai output not maximal")
	}
	if res.Rounds != 2*res.Iterations {
		t.Errorf("rounds = %d, want 2 per iteration", res.Rounds)
	}
	if res.TotalWords == 0 {
		t.Error("no communication recorded")
	}
}

func TestIsraeliItaiMeteredMatchesUnmetered(t *testing.T) {
	g := graph.GNP(300, 0.04, rng.New(6))
	plain := IsraeliItaiMatching(g, rng.New(9))
	c := newTestCluster(t, 300)
	metered, err := IsraeliItaiOnCluster(g, rng.New(9), c)
	if err != nil {
		t.Fatal(err)
	}
	if plain.M.Size() != metered.M.Size() {
		t.Errorf("sizes differ: %d vs %d", plain.M.Size(), metered.M.Size())
	}
	for v := range plain.M {
		if plain.M[v] != metered.M[v] {
			t.Fatalf("matchings differ at vertex %d", v)
		}
	}
}

func TestMeteredEmptyGraphs(t *testing.T) {
	g := graph.Empty(20)
	c := newTestCluster(t, 20)
	luby, err := LubyMISOnCluster(g, rng.New(1), c)
	if err != nil || luby.Rounds != 0 {
		t.Errorf("empty graph Luby: rounds=%d err=%v", luby.Rounds, err)
	}
	c2 := newTestCluster(t, 20)
	ii, err := IsraeliItaiOnCluster(g, rng.New(1), c2)
	if err != nil || ii.Rounds != 0 {
		t.Errorf("empty graph II: rounds=%d err=%v", ii.Rounds, err)
	}
}

func TestMeteredCapacityFailure(t *testing.T) {
	// Failure injection: machines too small for the per-iteration traffic.
	g := graph.Complete(64)
	c, err := mpc.NewCluster(mpc.Config{Machines: 2, CapacityWords: 8, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LubyMISOnCluster(g, rng.New(1), c); err == nil {
		t.Error("expected capacity error on K64 with 8-word machines")
	}
}
